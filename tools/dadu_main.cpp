// Entry point of the `dadu` command-line tool (info/fk/solve/accel/
// pose/serve-bench); all logic lives in dadu::cli::run so it is
// unit-testable.
#include <iostream>
#include <string>
#include <vector>

#include "dadu/cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(argc > 0 ? static_cast<std::size_t>(argc - 1) : 0);
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return dadu::cli::run(args, std::cout, std::cerr);
}
