#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full unit-test
# suite.  This is the exact line CI (and the roadmap) treat as the
# gate for every PR.
#
#   tools/run_tier1.sh [BUILD_DIR]
#
# BUILD_DIR defaults to `build` at the repo root.  Extra CMake cache
# arguments can be passed via the DADU_CMAKE_ARGS environment variable.
#
# Sanitizer runs use the DADU_SANITIZE cache option added alongside the
# batched speculation kernel.  The batch-FK kernel test was verified
# under UBSan with:
#
#   cmake -B build-ubsan -S . -DDADU_SANITIZE=undefined -DDADU_BUILD_BENCH=OFF
#   cmake --build build-ubsan -j --target kinematics_batch_fk_test
#   ./build-ubsan/tests/kinematics_batch_fk_test
#
# (ASan is the same with -DDADU_SANITIZE=address.)  The wide
# speculation backends are covered the same way:
#
#   cmake --build build-ubsan -j --target kinematics_spec_backend_test
#   ./build-ubsan/tests/kinematics_spec_backend_test
#   DADU_SPEC_BACKEND=scalar ./build-ubsan/tests/kinematics_spec_backend_test
#
# The serving layer (src/dadu/service/) is verified under
# ThreadSanitizer — queue, seed cache, worker pool and shutdown paths
# are all concurrent — with:
#
#   cmake -B build-tsan -S . -DDADU_SANITIZE=thread -DDADU_BUILD_BENCH=OFF
#   cmake --build build-tsan -j --target service_test service_batch_test \
#       service_stress_test parallel_test
#   ./build-tsan/tests/service_test
#   ./build-tsan/tests/service_batch_test
#   ./build-tsan/tests/service_stress_test
#   ./build-tsan/tests/parallel_test
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

# shellcheck disable=SC2086  # DADU_CMAKE_ARGS is intentionally word-split
cmake -B "${build_dir}" -S "${repo_root}" ${DADU_CMAKE_ARGS:-}
cmake --build "${build_dir}" -j
ctest --test-dir "${build_dir}" --output-on-failure -j

# Wide-speculation parity gate: the scalar/AVX2/AVX-512 speculation
# kernels are required to be bit-identical, so the parity suite runs
# twice — once under whatever backend runtime dispatch picked for this
# host, and once with the backend forced to scalar via the env
# override.  The forced-scalar leg also re-runs the suites that lean
# hardest on the speculation path, proving solver results do not
# depend on the host ISA.
"${build_dir}/tests/kinematics_spec_backend_test"
for suite in kinematics_spec_backend_test kinematics_batch_fk_test \
    solvers_quick_ik_test service_batch_test; do
  DADU_SPEC_BACKEND=scalar "${build_dir}/tests/${suite}"
done
echo "spec backend parity gate: ok (dispatched + forced-scalar legs)"

# Simulation determinism gate: the same seed must replay the whole
# serving stack byte-identically.  Two chaos runs with a fixed seed
# must produce bit-identical event traces (the digest in the trailer
# covers every event, including ones evicted from the bounded buffer).
sim_dir="$(mktemp -d)"
trap 'rm -rf "${sim_dir}"' EXIT
"${build_dir}/tools/dadu" sim --scenario chaos --seed 1337 --requests 20000 \
  --trace-out "${sim_dir}/a.trace" > "${sim_dir}/a.out"
"${build_dir}/tools/dadu" sim --scenario chaos --seed 1337 --requests 20000 \
  --trace-out "${sim_dir}/b.trace" > "${sim_dir}/b.out"
if ! cmp -s "${sim_dir}/a.trace" "${sim_dir}/b.trace"; then
  echo "FAIL: sim determinism gate — same seed produced different traces" >&2
  diff "${sim_dir}/a.trace" "${sim_dir}/b.trace" | head -20 >&2
  exit 1
fi
echo "sim determinism gate: ok ($(grep -c '' "${sim_dir}/a.trace") trace lines identical)"

# Optional perf-trajectory step: DADU_RUN_BENCH=1 runs the wire-level
# load generator (64 pipelined TCP connections against a loopback
# IkServer) and leaves BENCH_net.json next to the build dir for later
# PRs to diff against.  --require-batched doubles as the batching
# smoke: the run fails unless queue coalescing actually engaged (mean
# batch occupancy > 1).
if [[ "${DADU_RUN_BENCH:-0}" == "1" ]]; then
  "${build_dir}/bench/net_throughput" --quick --require-batched \
    --json "${build_dir}/BENCH_net.json"
  # Multi-spec leg: the same load split evenly across two registry
  # specs behind one server.  Per-spec req/s is appended to the JSON
  # (net_requests_per_sec_spec<k>) so regressions in the routing layer
  # show up as a per-lane throughput drop at equal per-spec load.
  "${build_dir}/bench/net_throughput" --quick --spec-mix 2 \
    --require-batched --json-append "${build_dir}/BENCH_net.json"
fi
