// Quick-IK algorithm-specific tests: Eq. 9 speculation semantics,
// serial/parallel equivalence, iteration-reduction vs JT-Serial,
// instrumentation counters and history recording.
#include <gtest/gtest.h>

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/solvers/jt_eq8.hpp"
#include "dadu/solvers/jt_serial.hpp"
#include "dadu/solvers/quick_ik.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::ik {
namespace {

TEST(QuickIk, RejectsZeroSpeculations) {
  SolveOptions options;
  options.speculations = 0;
  EXPECT_THROW(QuickIkSolver(kin::makeSerpentine(12), options),
               std::invalid_argument);
}

TEST(QuickIk, OneSpeculationEqualsEq8Transpose) {
  // With Max = 1 the only speculation is alpha_base itself, so Quick-IK
  // degenerates to the Eq.-8 transpose method's trajectory exactly.
  const auto chain = kin::makeSerpentine(12);
  SolveOptions options;
  options.speculations = 1;
  options.max_iterations = 200;
  QuickIkSolver quick(chain, options);
  JtEq8Solver jt(chain, options);

  const auto task = workload::generateTask(chain, 0);
  const auto rq = quick.solve(task.target, task.seed);
  const auto rj = jt.solve(task.target, task.seed);
  EXPECT_EQ(rq.iterations, rj.iterations);
  EXPECT_LT((rq.theta - rj.theta).norm(), 1e-12);
}

TEST(QuickIk, SerialAndThreadPoolBitIdentical) {
  const auto chain = kin::makeSerpentine(25);
  SolveOptions options;
  QuickIkSolver serial(chain, options, QuickIkSolver::Execution::kSerial);
  QuickIkSolver parallel(chain, options,
                         QuickIkSolver::Execution::kThreadPool, 4);
  for (int i = 0; i < 3; ++i) {
    const auto task = workload::generateTask(chain, i);
    const auto rs = serial.solve(task.target, task.seed);
    const auto rp = parallel.solve(task.target, task.seed);
    EXPECT_EQ(rs.iterations, rp.iterations) << "task " << i;
    EXPECT_EQ(rs.status, rp.status);
    EXPECT_EQ(rs.theta, rp.theta) << "bit-identical selection required";
  }
}

TEST(QuickIk, ReducesIterationsMassivelyVsJtSerial) {
  // The headline claim (Fig. 5a): ~97% fewer iterations than the
  // original fixed-gain transpose method.  Require >= 90% over a small
  // batch to leave margin for workload differences while still
  // catching regressions in the speculation logic.
  const auto chain = kin::makeSerpentine(25);
  SolveOptions options;
  QuickIkSolver quick(chain, options);
  JtSerialSolver jt(chain, options);
  double quick_total = 0.0, jt_total = 0.0;
  for (int i = 0; i < 3; ++i) {
    const auto task = workload::generateTask(chain, i);
    const auto rq = quick.solve(task.target, task.seed);
    const auto rj = jt.solve(task.target, task.seed);
    ASSERT_TRUE(rq.converged());
    ASSERT_TRUE(rj.converged());
    quick_total += rq.iterations;
    jt_total += rj.iterations;
  }
  EXPECT_LT(quick_total, 0.1 * jt_total);
}

TEST(QuickIk, PerIterationErrorNonIncreasing) {
  // The selector takes the argmin over candidates that include
  // arbitrarily small steps, so the recorded error never increases.
  const auto chain = kin::makeSerpentine(25);
  SolveOptions options;
  options.record_history = true;
  QuickIkSolver solver(chain, options);
  const auto task = workload::generateTask(chain, 5);
  const auto r = solver.solve(task.target, task.seed);
  ASSERT_GE(r.error_history.size(), 2u);
  for (std::size_t i = 1; i < r.error_history.size(); ++i)
    EXPECT_LE(r.error_history[i], r.error_history[i - 1] + 1e-12)
        << "at iteration " << i;
}

TEST(QuickIk, MoreSpeculationsHelpOnAverage) {
  // Fig. 4's claim is distributional: iteration counts decline as the
  // speculation budget grows.  Per-task monotonicity does NOT hold
  // (the greedy argmin can pick a locally better, globally worse
  // step), so compare batch means: the full 64-way search must clearly
  // beat the single-candidate search (= Eq. 8 alone) over a batch.
  const auto chain = kin::makeSerpentine(50);
  double iters1 = 0.0, iters64 = 0.0;
  for (int i = 0; i < 10; ++i) {
    const auto task = workload::generateTask(chain, i);
    SolveOptions o1;
    o1.speculations = 1;
    SolveOptions o64;
    o64.speculations = 64;
    QuickIkSolver s1(chain, o1);
    QuickIkSolver s64(chain, o64);
    iters1 += s1.solve(task.target, task.seed).iterations;
    iters64 += s64.solve(task.target, task.seed).iterations;
  }
  EXPECT_LT(iters64, iters1);
}

TEST(QuickIk, SpeculationLoadCountsAllCandidates) {
  const auto chain = kin::makeSerpentine(12);
  SolveOptions options;
  options.speculations = 16;
  QuickIkSolver solver(chain, options);
  const auto task = workload::generateTask(chain, 1);
  const auto r = solver.solve(task.target, task.seed);
  ASSERT_TRUE(r.converged());
  EXPECT_EQ(r.speculation_load,
            static_cast<long long>(r.iterations) * 16);
  // FK count: each executed iteration costs one head evaluation plus 16
  // speculative evaluations; a run converging at the selection early
  // exit therefore does iterations * 17 FK passes.
  EXPECT_EQ(r.fk_evaluations, static_cast<long long>(r.iterations) * 17);
}

TEST(QuickIk, HistoryEndsBelowAccuracyWhenConverged) {
  const auto chain = kin::makeSerpentine(12);
  SolveOptions options;
  options.record_history = true;
  QuickIkSolver solver(chain, options);
  const auto task = workload::generateTask(chain, 2);
  const auto r = solver.solve(task.target, task.seed);
  ASSERT_TRUE(r.converged());
  ASSERT_FALSE(r.error_history.empty());
  EXPECT_LT(r.error_history.back(), options.accuracy);
}

TEST(QuickIk, RespectsJointLimitsWhenClamped) {
  // Tight limits: every intermediate candidate must stay inside.
  auto base = kin::makeSerpentine(12);
  std::vector<kin::Joint> joints = base.joints();
  for (auto& j : joints) {
    j.min = -1.0;
    j.max = 1.0;
  }
  const kin::Chain chain(std::move(joints), "limited");
  SolveOptions options;
  options.clamp_to_limits = true;
  options.max_iterations = 300;
  QuickIkSolver solver(chain, options);
  const auto task = workload::generateTask(base, 0);
  const auto r = solver.solve(task.target, chain.zeroConfiguration());
  EXPECT_TRUE(chain.withinLimits(r.theta));
}

TEST(QuickIk, NameReflectsExecution) {
  const auto chain = kin::makePlanar(3);
  EXPECT_EQ(QuickIkSolver(chain, {}).name(), "quick-ik");
  EXPECT_EQ(QuickIkSolver(chain, {}, QuickIkSolver::Execution::kThreadPool, 2)
                .name(),
            "quick-ik-mt");
}

}  // namespace
}  // namespace dadu::ik
