// Null-space redundancy-resolution tests.
#include <gtest/gtest.h>

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/jacobian.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/linalg/svd.hpp"
#include "dadu/solvers/dls.hpp"
#include "dadu/solvers/nullspace.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::ik {
namespace {

TEST(NullSpace, RejectsNullObjective) {
  EXPECT_THROW(NullSpaceDlsSolver(kin::makeSerpentine(12), SolveOptions{},
                                  nullptr),
               std::invalid_argument);
}

TEST(NullSpace, ObjectiveGradients) {
  const auto rest = restPostureObjective(linalg::VecX{1.0, 2.0});
  EXPECT_EQ(rest({1.5, 1.0}), linalg::VecX({0.5, -1.0}));

  // Limit centering: pulls a limited joint towards its midpoint,
  // ignores unlimited joints.
  std::vector<kin::Joint> joints = {
      kin::revolute({0.1, 0, 0, 0}, 0.0, 2.0),  // mid = 1
      kin::revolute({0.1, 0, 0, 0}),            // unlimited
  };
  const kin::Chain chain(std::move(joints));
  const auto centering = limitCenteringObjective(chain);
  const linalg::VecX g = centering({1.8, 5.0});
  EXPECT_GT(g[0], 0.0);          // above midpoint: positive gradient
  EXPECT_DOUBLE_EQ(g[1], 0.0);   // unlimited: no pull
  EXPECT_DOUBLE_EQ(centering({1.0, 0.0})[0], 0.0);  // at midpoint
}

TEST(NullSpace, ConvergesLikeDls) {
  const auto chain = kin::makeSerpentine(25);
  SolveOptions options;
  NullSpaceDlsSolver solver(
      chain, options, restPostureObjective(chain.zeroConfiguration()));
  for (int i = 0; i < 3; ++i) {
    const auto task = workload::generateTask(chain, i);
    const auto r = solver.solve(task.target, task.seed);
    EXPECT_TRUE(r.converged()) << i;
    EXPECT_LT(r.error, options.accuracy);
  }
}

TEST(NullSpace, SecondaryObjectiveImprovesOverPlainDls) {
  // Both solvers reach the target; the null-space solver should end
  // measurably closer to the rest posture.
  const auto chain = kin::makeSerpentine(25);
  SolveOptions options;
  const linalg::VecX rest = chain.zeroConfiguration();

  DlsSolver plain(chain, options);
  NullSpaceDlsSolver shaped(chain, options, restPostureObjective(rest),
                            /*ns_gain=*/0.5);

  double plain_dist = 0.0, shaped_dist = 0.0;
  int both = 0;
  for (int i = 0; i < 4; ++i) {
    const auto task = workload::generateTask(chain, i);
    const auto rp = plain.solve(task.target, task.seed);
    const auto rs = shaped.solve(task.target, task.seed);
    if (!rp.converged() || !rs.converged()) continue;
    ++both;
    plain_dist += (rp.theta - rest).norm();
    shaped_dist += (rs.theta - rest).norm();
  }
  ASSERT_GE(both, 3);
  EXPECT_LT(shaped_dist, plain_dist);
}

TEST(NullSpace, ProjectedStepStaysInNullSpace) {
  // Directly verify the projection: for a generic configuration,
  // J * (I - V V^T) g ~ 0.
  const auto chain = kin::makeSerpentine(20);
  linalg::VecX theta(chain.dof());
  for (std::size_t i = 0; i < theta.size(); ++i)
    theta[i] = 0.1 * static_cast<double>(i % 5) - 0.2;

  const linalg::MatX j = kin::positionJacobian(chain, theta);
  const linalg::Svd svd = linalg::svdJacobi(j);

  linalg::VecX g(chain.dof());
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] = std::sin(static_cast<double>(i));
  linalg::VecX projected = g;
  for (std::size_t k = 0; k < svd.rank(); ++k) {
    double coeff = 0.0;
    for (std::size_t i = 0; i < g.size(); ++i) coeff += svd.v(i, k) * g[i];
    for (std::size_t i = 0; i < g.size(); ++i)
      projected[i] -= coeff * svd.v(i, k);
  }
  const linalg::VecX moved = j * projected;
  EXPECT_LT(moved.norm(), 1e-9 * (1.0 + g.norm()));
  // And the projection is idempotent in effect: projecting the
  // projected vector changes nothing.
  EXPECT_GT(projected.norm(), 0.0);
}

TEST(NullSpace, LimitCenteringKeepsJointsInteriorWithClamping) {
  // Tightly limited serpentine: with centering + clamping the solution
  // stays strictly inside the box.
  auto base = kin::makeSerpentine(25);
  std::vector<kin::Joint> joints = base.joints();
  for (auto& j : joints) {
    j.min = -1.2;
    j.max = 1.2;
  }
  const kin::Chain chain(std::move(joints), "limited-serp");
  SolveOptions options;
  options.clamp_to_limits = true;
  NullSpaceDlsSolver solver(chain, options, limitCenteringObjective(chain),
                            0.4);
  const auto task = workload::generateTask(base, 2);
  const auto r = solver.solve(task.target, chain.zeroConfiguration());
  if (r.converged()) {
    EXPECT_TRUE(chain.withinLimits(r.theta));
  }
}

}  // namespace
}  // namespace dadu::ik
