// Multi-robot serving over real TCP: one IkServer fronting a
// SpecRouter with three robots.  Covers the wire-level acceptance
// criteria of the registry PR:
//   - requests route by wire spec_id to the right chain (theta DOF);
//   - a wrong-spec request fails alone — kUnknownSpec for that id,
//     every other pipelined request answered, connection survives —
//     and the dadu_net_spec_mismatch counter increments;
//   - routing through one multi-spec server is bit-identical to
//     running each spec in its own single-spec server.
#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <string>
#include <vector>

#include "dadu/kinematics/presets.hpp"
#include "dadu/net/ik_client.hpp"
#include "dadu/net/ik_server.hpp"
#include "dadu/net/net_stats.hpp"
#include "dadu/net/wire.hpp"
#include "dadu/registry/robot_spec_registry.hpp"
#include "dadu/registry/spec_router.hpp"
#include "dadu/service/ik_service.hpp"
#include "dadu/solvers/factory.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::net {
namespace {

using registry::RobotSpec;
using registry::RobotSpecRegistry;
using registry::SpecRouter;

const std::vector<std::size_t> kDofs = {4, 6, 9};

RobotSpecRegistry makeRegistry() {
  RobotSpecRegistry reg;
  for (std::size_t i = 0; i < kDofs.size(); ++i) {
    RobotSpec spec;
    spec.id = static_cast<std::uint32_t>(i);
    spec.name = "serp" + std::to_string(kDofs[i]);
    spec.chain_spec = "serpentine:" + std::to_string(kDofs[i]);
    spec.chain = kin::makeSerpentine(kDofs[i]);
    reg.add(std::move(spec));
  }
  return reg;
}

service::Request requestFor(const kin::Chain& chain, std::uint32_t index) {
  const auto task = workload::generateTask(chain, static_cast<int>(index));
  service::Request request;
  request.target = task.target;
  request.seed = task.seed;
  request.use_seed_cache = false;
  return request;
}

bool bitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::bit_cast<std::uint64_t>(a[i]) !=
        std::bit_cast<std::uint64_t>(b[i]))
      return false;
  return true;
}

/// One multi-spec server on an ephemeral loopback port.
struct MultiLoopback {
  RobotSpecRegistry reg = makeRegistry();
  std::unique_ptr<SpecRouter> router;
  std::unique_ptr<IkServer> server;

  MultiLoopback() {
    registry::RouterConfig config;
    config.base.workers = 1;
    config.base.enable_seed_cache = false;
    router = std::make_unique<SpecRouter>(reg, config);
    server = std::make_unique<IkServer>(*router);
    server->start();
  }
  IkClient client() {
    IkClient c;
    c.connect("127.0.0.1", server->port());
    return c;
  }
};

TEST(NetMultiSpec, OneServerRoutesThreeSpecsByWireSpecId) {
  MultiLoopback loop;
  IkClient client = loop.client();
  for (const RobotSpec& spec : loop.reg.specs()) {
    for (std::uint32_t i = 0; i < 4; ++i) {
      const service::Response response =
          client.call(requestFor(spec.chain, i), spec.id);
      ASSERT_EQ(response.status, service::ResponseStatus::kSolved);
      // The DOF of the solution is the routing witness.
      EXPECT_EQ(response.result.theta.size(), spec.chain.dof())
          << "spec " << spec.id;
    }
  }
  for (const auto& lane : loop.router->perSpecStats())
    EXPECT_EQ(lane.stats.submitted, 4u) << lane.spec->name;
  EXPECT_EQ(loop.server->stats().spec_mismatch, 0u);
}

TEST(NetMultiSpec, WrongSpecFailsAloneAndConnectionSurvives) {
  MultiLoopback loop;
  IkClient client = loop.client();
  const kin::Chain& chain0 = loop.reg.specs()[0].chain;
  const kin::Chain& chain1 = loop.reg.specs()[1].chain;

  // Pipeline good / bad / good on ONE connection.
  const std::uint64_t ok_a = client.sendRequest(requestFor(chain0, 0), 0);
  const std::uint64_t bad = client.sendRequest(requestFor(chain0, 1), 99);
  const std::uint64_t ok_b = client.sendRequest(requestFor(chain1, 2), 1);

  const ClientReply reply_bad = client.waitFor(bad);
  ASSERT_EQ(reply_bad.type, MsgType::kError);
  EXPECT_EQ(reply_bad.error.code, WireErrorCode::kUnknownSpec);

  // Only that request errored; its neighbours solved on their specs.
  const ClientReply reply_a = client.waitFor(ok_a);
  const ClientReply reply_b = client.waitFor(ok_b);
  ASSERT_EQ(reply_a.type, MsgType::kResponse);
  ASSERT_EQ(reply_b.type, MsgType::kResponse);
  EXPECT_EQ(reply_a.response.theta.size(), chain0.dof());
  EXPECT_EQ(reply_b.response.theta.size(), chain1.dof());

  // The connection is still serviceable after the error...
  const service::Response again = client.call(requestFor(chain0, 3), 0);
  EXPECT_EQ(again.status, service::ResponseStatus::kSolved);

  // ...and the operator can see the mismatch.
  const NetStats stats = loop.server->stats();
  EXPECT_EQ(stats.spec_mismatch, 1u);
  const obs::MetricsSnapshot snap = toMetricsSnapshot(stats);
  bool found = false;
  for (const auto& c : snap.counters)
    if (c.name == "dadu_net_spec_mismatch") {
      found = true;
      EXPECT_EQ(c.value, 1u);
    }
  EXPECT_TRUE(found);
}

TEST(NetMultiSpec, RoutedSolvesAreBitIdenticalToDedicatedServers) {
  MultiLoopback loop;
  IkClient multi = loop.client();
  for (const RobotSpec& spec : loop.reg.specs()) {
    // A dedicated single-spec deployment for this robot, expecting the
    // same wire spec id the multi-spec server routes on.
    service::ServiceConfig service_config;
    service_config.workers = 1;
    service_config.enable_seed_cache = false;
    service::IkService solo_service(RobotSpecRegistry::makeFactory(spec),
                                    service_config);
    ServerConfig server_config;
    server_config.robot_spec_id = spec.id;
    IkServer solo_server(solo_service, server_config);
    solo_server.start();
    IkClient solo;
    solo.connect("127.0.0.1", solo_server.port());

    for (std::uint32_t i = 0; i < 6; ++i) {
      const service::Response routed =
          multi.call(requestFor(spec.chain, i), spec.id);
      const service::Response dedicated =
          solo.call(requestFor(spec.chain, i), spec.id);
      ASSERT_EQ(routed.status, service::ResponseStatus::kSolved);
      ASSERT_EQ(dedicated.status, service::ResponseStatus::kSolved);
      EXPECT_EQ(routed.result.iterations, dedicated.result.iterations);
      std::vector<double> a(routed.result.theta.size());
      std::vector<double> b(dedicated.result.theta.size());
      for (std::size_t j = 0; j < a.size(); ++j) a[j] = routed.result.theta[j];
      for (std::size_t j = 0; j < b.size(); ++j)
        b[j] = dedicated.result.theta[j];
      EXPECT_TRUE(bitIdentical(a, b)) << spec.name << " task " << i;
    }
    solo.close();
    solo_server.stop();
    solo_service.stop();
  }
}

TEST(NetMultiSpec, LegacySingleSpecServerStillRejectsOtherSpecs) {
  // The pre-registry path must keep its behaviour (and now count it).
  kin::Chain chain = kin::makeSerpentine(5);
  service::ServiceConfig service_config;
  service_config.workers = 1;
  service::IkService svc(
      [chain] { return ik::makeSolver("quick-ik", chain, {}); },
      service_config);
  IkServer server(svc);
  server.start();
  IkClient client;
  client.connect("127.0.0.1", server.port());
  EXPECT_THROW(client.call(requestFor(chain, 0), 42), WireErrorException);
  EXPECT_EQ(server.stats().spec_mismatch, 1u);
  const service::Response ok = client.call(requestFor(chain, 1), 0);
  EXPECT_EQ(ok.status, service::ResponseStatus::kSolved);
  client.close();
  server.stop();
  svc.stop();
}

}  // namespace
}  // namespace dadu::net
