// Chain construction, validation, limits and DH transform tests.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dadu/kinematics/chain.hpp"
#include "dadu/kinematics/dh.hpp"
#include "dadu/linalg/rotation.hpp"

namespace dadu::kin {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(DhTransform, PureRotationAboutZ) {
  const DhParam p{0.0, 0.0, 0.0, 0.0};
  const linalg::Mat4 t = dhTransformRevolute(p, kPi / 2);
  const linalg::Vec3 x = t.transformDirection({1, 0, 0});
  EXPECT_NEAR((x - linalg::Vec3(0, 1, 0)).norm(), 0.0, 1e-14);
  EXPECT_EQ(t.position(), linalg::Vec3::zero());
}

TEST(DhTransform, LinkLengthTranslatesAlongRotatedX) {
  const DhParam p{2.0, 0.0, 0.0, 0.0};
  const linalg::Mat4 t0 = dhTransformRevolute(p, 0.0);
  EXPECT_NEAR((t0.position() - linalg::Vec3(2, 0, 0)).norm(), 0.0, 1e-14);
  const linalg::Mat4 t90 = dhTransformRevolute(p, kPi / 2);
  EXPECT_NEAR((t90.position() - linalg::Vec3(0, 2, 0)).norm(), 0.0, 1e-14);
}

TEST(DhTransform, OffsetAlongZ) {
  const DhParam p{0.0, 0.0, 1.5, 0.0};
  const linalg::Mat4 t = dhTransformRevolute(p, 0.7);
  EXPECT_NEAR((t.position() - linalg::Vec3(0, 0, 1.5)).norm(), 0.0, 1e-14);
}

TEST(DhTransform, TwistRotatesSubsequentFrame) {
  const DhParam p{0.0, kPi / 2, 0.0, 0.0};
  const linalg::Mat4 t = dhTransformRevolute(p, 0.0);
  // After a +90 deg twist about x, the new z axis maps to the old -y...
  const linalg::Vec3 z = t.transformDirection({0, 0, 1});
  EXPECT_NEAR((z - linalg::Vec3(0, -1, 0)).norm(), 0.0, 1e-14);
}

TEST(DhTransform, RotationBlockAlwaysOrthonormal) {
  for (double q : {0.0, 0.3, -1.2, 2.9}) {
    const DhParam p{0.7, 0.4, -0.2, 0.1};
    EXPECT_TRUE(linalg::isRotation(dhTransformRevolute(p, q).rotation(), 1e-12));
  }
}

TEST(DhTransform, PrismaticExtendsAlongZ) {
  const DhParam p{0.0, 0.0, 0.5, 0.0};
  const linalg::Mat4 t = dhTransformPrismatic(p, 0.25);
  EXPECT_NEAR((t.position() - linalg::Vec3(0, 0, 0.75)).norm(), 0.0, 1e-14);
  // Prismatic joints do not rotate with q.
  EXPECT_EQ(dhTransformPrismatic(p, 0.0).rotation(),
            dhTransformPrismatic(p, 1.0).rotation());
}

TEST(Chain, EmptyThrows) {
  EXPECT_THROW(Chain({}, "empty"), std::invalid_argument);
}

TEST(Chain, NonFiniteDhThrows) {
  std::vector<Joint> joints = {revolute({std::nan(""), 0, 0, 0})};
  EXPECT_THROW(Chain(std::move(joints)), std::invalid_argument);
}

TEST(Chain, InvertedLimitsThrow) {
  std::vector<Joint> joints = {revolute({0.1, 0, 0, 0}, 1.0, -1.0)};
  EXPECT_THROW(Chain(std::move(joints)), std::invalid_argument);
}

TEST(Chain, DofAndMaxReach) {
  std::vector<Joint> joints = {revolute({0.5, 0, 0, 0}),
                               revolute({0.3, 0, 0.2, 0})};
  const Chain chain(std::move(joints), "two");
  EXPECT_EQ(chain.dof(), 2u);
  EXPECT_DOUBLE_EQ(chain.maxReach(), 1.0);
  EXPECT_EQ(chain.name(), "two");
}

TEST(Chain, LimitsCheckAndClamp) {
  std::vector<Joint> joints = {revolute({0.1, 0, 0, 0}, -1.0, 1.0),
                               revolute({0.1, 0, 0, 0})};
  const Chain chain(std::move(joints));
  EXPECT_TRUE(chain.withinLimits({0.5, 100.0}));
  EXPECT_FALSE(chain.withinLimits({1.5, 0.0}));
  const linalg::VecX clamped = chain.clampToLimits({2.0, -7.0});
  EXPECT_DOUBLE_EQ(clamped[0], 1.0);
  EXPECT_DOUBLE_EQ(clamped[1], -7.0);
}

TEST(Chain, RequireSizeThrowsOnMismatch) {
  const Chain chain({revolute({0.1, 0, 0, 0})});
  EXPECT_THROW(chain.requireSize(linalg::VecX(2)), std::invalid_argument);
  EXPECT_NO_THROW(chain.requireSize(linalg::VecX(1)));
}

TEST(Chain, ZeroConfiguration) {
  const Chain chain({revolute({0.1, 0, 0, 0}), revolute({0.1, 0, 0, 0})});
  const linalg::VecX q = chain.zeroConfiguration();
  EXPECT_EQ(q.size(), 2u);
  EXPECT_DOUBLE_EQ(q.maxAbs(), 0.0);
}

TEST(Joint, ClampBehaviour) {
  const Joint j = revolute({0, 0, 0, 0}, -0.5, 0.5);
  EXPECT_DOUBLE_EQ(j.clamp(0.4), 0.4);
  EXPECT_DOUBLE_EQ(j.clamp(0.9), 0.5);
  EXPECT_DOUBLE_EQ(j.clamp(-0.9), -0.5);
  EXPECT_TRUE(j.hasLimits());
  EXPECT_FALSE(revolute({0, 0, 0, 0}).hasLimits());
}

TEST(Chain, PrismaticReachIncludesExtension) {
  std::vector<Joint> joints = {prismatic({0.0, 0, 0.1, 0}, -0.2, 0.4)};
  const Chain chain(std::move(joints));
  EXPECT_DOUBLE_EQ(chain.maxReach(), 0.1 + 0.4);
}

}  // namespace
}  // namespace dadu::kin
