// Cross-solver property tests on randomised chains: determinism,
// error-consistency, robustness at singular starts, behaviour on
// unreachable targets, and baseline-specific invariants (SDLS step
// bound, DLS boundedness, CCD sweep monotonicity).
#include <gtest/gtest.h>

#include <cstdint>

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/solvers/ccd.hpp"
#include "dadu/solvers/dls.hpp"
#include "dadu/solvers/factory.hpp"
#include "dadu/solvers/jt_serial.hpp"
#include "dadu/solvers/quick_ik.hpp"
#include "dadu/solvers/sdls.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::ik {
namespace {

class SolverDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(SolverDeterminism, SameInputsSameOutputs) {
  const auto chain = kin::makeRandomChain(15, 3);
  SolveOptions options;
  options.max_iterations = 500;
  const auto solver = makeSolver(GetParam(), chain, options);
  const auto task = workload::generateTask(chain, 0);
  const auto a = solver->solve(task.target, task.seed);
  const auto b = solver->solve(task.target, task.seed);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.theta, b.theta);
  EXPECT_EQ(a.status, b.status);
}

INSTANTIATE_TEST_SUITE_P(All, SolverDeterminism,
                         ::testing::Values("jt-serial", "quick-ik",
                                           "quick-ik-mt", "pinv-svd", "dls",
                                           "sdls", "ccd"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

class SolverErrorConsistency : public ::testing::TestWithParam<std::string> {};

TEST_P(SolverErrorConsistency, ReportedErrorMatchesFkOfTheta) {
  for (std::uint64_t cseed = 1; cseed <= 3; ++cseed) {
    const auto chain = kin::makeRandomChain(12, cseed);
    SolveOptions options;
    options.max_iterations = 300;
    const auto solver = makeSolver(GetParam(), chain, options);
    const auto task = workload::generateTask(chain, 1);
    const auto r = solver->solve(task.target, task.seed);
    const auto reached = kin::endEffectorPosition(chain, r.theta);
    EXPECT_NEAR(r.error, (task.target - reached).norm(), 1e-9)
        << GetParam() << " chain seed " << cseed;
  }
}

INSTANTIATE_TEST_SUITE_P(All, SolverErrorConsistency,
                         ::testing::Values("jt-serial", "quick-ik", "pinv-svd",
                                           "dls", "sdls", "ccd"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(SolverProperty, UnreachableTargetExhaustsBudgetNotCrash) {
  const auto chain = kin::makeSerpentine(12, 0.1);  // reach 1.2
  SolveOptions options;
  options.max_iterations = 150;
  const linalg::Vec3 far{5.0, 0.0, 0.0};
  for (const char* name : {"jt-serial", "quick-ik", "dls", "sdls"}) {
    const auto solver = makeSolver(name, chain, options);
    const auto r = solver->solve(far, linalg::VecX(chain.dof(), 0.1));
    EXPECT_FALSE(r.converged()) << name;
    // Error should approach "distance minus reach" — the chain points
    // at the target: generous bound of distance - 0.5*reach.
    EXPECT_GT(r.error, 5.0 - 1.2 - 1e-6) << name;
    EXPECT_LT(r.error, 5.0 + 1.2) << name;
  }
}

TEST(SolverProperty, StretchedSingularStartEitherStallsOrSolves) {
  // Fully stretched planar chain, target on the axis beyond reach
  // direction but within reach: J^T e = 0 exactly at start.
  const auto chain = kin::makePlanar(4, 0.25);
  SolveOptions options;
  options.max_iterations = 200;
  JtSerialSolver jt(chain, options);
  const auto r = jt.solve({0.5, 0.0, 0.0}, chain.zeroConfiguration());
  // Start is exactly singular towards the target: JT must report a
  // stall (no crash, no NaN).
  EXPECT_EQ(r.status, Status::kStalled);
  for (double v : r.theta) EXPECT_TRUE(std::isfinite(v));
}

TEST(SolverProperty, DlsBoundedNearSingularStart) {
  // DLS is built to stay bounded at singular configurations; from the
  // stretched start with a slight perturbation it must make progress
  // and keep joints finite.
  const auto chain = kin::makePlanar(4, 0.25);
  SolveOptions options;
  options.max_iterations = 2000;
  DlsSolver dls(chain, options, 0.05);
  linalg::VecX seed(chain.dof());
  seed[0] = 1e-3;
  const auto r = dls.solve({0.5, 0.3, 0.0}, seed);
  EXPECT_TRUE(r.converged());
  for (double v : r.theta) EXPECT_TRUE(std::isfinite(v));
}

TEST(SolverProperty, SdlsStepBoundHolds) {
  // Every SDLS joint step is clamped to gamma_max.
  const auto chain = kin::makeSerpentine(20);
  SolveOptions options;
  options.max_iterations = 50;
  const double gamma_max = 0.3;
  SdlsSolver sdls(chain, options, gamma_max);
  const auto task = workload::generateTask(chain, 0);

  // Track successive thetas via history-free re-solve with increasing
  // budgets (cheap because budgets are tiny).
  linalg::VecX prev = task.seed;
  for (int budget = 1; budget <= 10; ++budget) {
    SolveOptions o = options;
    o.max_iterations = budget;
    SdlsSolver s(chain, o, gamma_max);
    const auto r = s.solve(task.target, task.seed);
    const linalg::VecX step = r.theta - prev;
    EXPECT_LE(step.maxAbs(), gamma_max + 1e-9) << "budget " << budget;
    prev = r.theta;
    if (r.converged()) break;
  }
}

TEST(SolverProperty, CcdSweepNeverIncreasesErrorOnPlanarChain) {
  const auto chain = kin::makePlanar(6, 0.2);
  SolveOptions options;
  options.record_history = true;
  options.max_iterations = 50;
  CcdSolver ccd(chain, options);
  const auto r = ccd.solve({0.4, 0.5, 0.0}, linalg::VecX(chain.dof(), 0.3));
  for (std::size_t i = 1; i < r.error_history.size(); ++i)
    EXPECT_LE(r.error_history[i], r.error_history[i - 1] + 1e-9);
}

TEST(SolverProperty, QuickIkConvergesOnRandomChainFamilies) {
  int converged = 0, total = 0;
  for (std::uint64_t cs = 1; cs <= 5; ++cs) {
    const auto chain = kin::makeRandomChain(20, cs);
    QuickIkSolver solver(chain, {});
    const auto task = workload::generateTask(chain, 0);
    ++total;
    if (solver.solve(task.target, task.seed).converged()) ++converged;
  }
  EXPECT_EQ(converged, total);
}

TEST(SolverProperty, ResultThetaSizeMatchesDof) {
  const auto chain = kin::makeSerpentine(33);
  for (const auto& name : solverNames()) {
    SolveOptions options;
    options.max_iterations = 5;
    const auto solver = makeSolver(name, chain, options);
    const auto task = workload::generateTask(chain, 0);
    EXPECT_EQ(solver->solve(task.target, task.seed).theta.size(), 33u) << name;
  }
}

}  // namespace
}  // namespace dadu::ik
