// Pose-IK solver tests: convergence to reachable poses (position AND
// orientation), accuracy gating, stall handling, and the Quick-IK vs
// DLS comparison in the extended task space.
#include <gtest/gtest.h>

#include <cstdint>

#include "dadu/kinematics/jacobian_full.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/linalg/rotation.hpp"
#include "dadu/solvers/pose_solvers.hpp"
#include "dadu/workload/rng.hpp"

namespace dadu::ik {
namespace {

linalg::VecX randomConfig(const kin::Chain& chain, std::uint64_t seed) {
  workload::Rng rng(seed);
  linalg::VecX q(chain.dof());
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = rng.angle();
  return q;
}

/// Reachable pose target: FK of a random configuration.
kin::Pose reachablePose(const kin::Chain& chain, std::uint64_t seed) {
  return kin::endEffectorPose(chain, randomConfig(chain, seed));
}

class QuickIkPoseConvergence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuickIkPoseConvergence, ReachesPoseTargets) {
  const auto chain = kin::makeSerpentine(GetParam());
  PoseSolveOptions options;
  QuickIkPoseSolver solver(chain, options);
  int converged = 0;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    const kin::Pose target = reachablePose(chain, s * 101);
    const auto r = solver.solve(target, randomConfig(chain, s * 7));
    if (!r.converged()) continue;
    ++converged;
    EXPECT_LT(r.position_error, options.accuracy);
    EXPECT_LT(r.angular_error, options.angular_accuracy);
    // Independent verification of both claims.
    const kin::Pose reached = kin::endEffectorPose(chain, r.theta);
    EXPECT_LT((reached.position - target.position).norm(), options.accuracy);
    EXPECT_LT(linalg::rotationAngleBetween(reached.orientation,
                                           target.orientation),
              options.angular_accuracy);
  }
  EXPECT_GE(converged, 2) << GetParam() << "-DOF";
}

INSTANTIATE_TEST_SUITE_P(DofLadder, QuickIkPoseConvergence,
                         ::testing::Values(12, 25, 50));

TEST(QuickIkPose, RejectsZeroSpeculations) {
  PoseSolveOptions options;
  options.speculations = 0;
  EXPECT_THROW(QuickIkPoseSolver(kin::makeSerpentine(12), options),
               std::invalid_argument);
}

TEST(QuickIkPose, PositionOnlyAccuracyIsNotEnough) {
  // A run that satisfies position accuracy but not angular accuracy
  // must not report convergence: force it by demanding absurd angular
  // precision within a tiny budget.
  const auto chain = kin::makeSerpentine(25);
  PoseSolveOptions options;
  options.angular_accuracy = 1e-14;
  options.max_iterations = 30;
  QuickIkPoseSolver solver(chain, options);
  const auto r = solver.solve(reachablePose(chain, 3), randomConfig(chain, 4));
  EXPECT_FALSE(r.converged());
}

TEST(QuickIkPose, InputValidation) {
  const auto chain = kin::makeSerpentine(12);
  QuickIkPoseSolver solver(chain, {});
  kin::Pose bad;
  bad.position = {std::nan(""), 0, 0};
  EXPECT_THROW(solver.solve(bad, chain.zeroConfiguration()),
               std::invalid_argument);
  EXPECT_THROW(solver.solve(kin::Pose{}, linalg::VecX(3)),
               std::invalid_argument);
}

TEST(DlsPose, ReachesPoseTargets) {
  const auto chain = kin::makeSerpentine(25);
  PoseSolveOptions options;
  DlsPoseSolver solver(chain, options);
  int converged = 0;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    const kin::Pose target = reachablePose(chain, s * 13);
    const auto r = solver.solve(target, randomConfig(chain, s));
    if (r.converged()) {
      ++converged;
      EXPECT_LT(r.position_error, options.accuracy);
      EXPECT_LT(r.angular_error, options.angular_accuracy);
    }
  }
  EXPECT_GE(converged, 2);
}

TEST(DlsPose, RotationWeightBalancesObjectives) {
  // With a vanishing rotation weight the solver ignores orientation in
  // its steps: position converges as in the 3-DOF task space.  (The
  // angular accuracy gate is relaxed accordingly here.)
  const auto chain = kin::makeSerpentine(25);
  PoseSolveOptions options;
  options.rotation_weight = 1e-9;
  options.angular_accuracy = 1e9;  // orientation unconstrained
  DlsPoseSolver solver(chain, options);
  const kin::Pose target = reachablePose(chain, 77);
  const auto r = solver.solve(target, randomConfig(chain, 78));
  EXPECT_TRUE(r.converged());
  EXPECT_LT(r.position_error, options.accuracy);
}

TEST(PoseSolvers, QuickIkPoseIterationsComparableToDls) {
  // The paper's speculation mechanism should keep its effectiveness in
  // the extended task space: within 20x of the strong DLS baseline.
  const auto chain = kin::makeSerpentine(25);
  PoseSolveOptions options;
  QuickIkPoseSolver quick(chain, options);
  DlsPoseSolver dls(chain, options);
  double qi = 0.0, di = 0.0;
  int both = 0;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    const kin::Pose target = reachablePose(chain, 1000 + s);
    const auto seed = randomConfig(chain, 2000 + s);
    const auto rq = quick.solve(target, seed);
    const auto rd = dls.solve(target, seed);
    if (rq.converged() && rd.converged()) {
      ++both;
      qi += rq.iterations;
      di += rd.iterations;
    }
  }
  ASSERT_GE(both, 2);
  EXPECT_LT(qi, 20.0 * di + 100.0);
}

TEST(PoseSolvers, SeedSolutionReturnsImmediately) {
  const auto chain = kin::makeSerpentine(12);
  const auto q = randomConfig(chain, 5);
  const kin::Pose target = kin::endEffectorPose(chain, q);
  QuickIkPoseSolver quick(chain, {});
  const auto r = quick.solve(target, q);
  EXPECT_TRUE(r.converged());
  EXPECT_EQ(r.iterations, 0);
}

}  // namespace
}  // namespace dadu::ik
