// Jacobian tests: analytic vs finite-difference agreement across chain
// families (the load-bearing correctness property for every solver).
#include <gtest/gtest.h>

#include <cstdint>

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/jacobian.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/workload/rng.hpp"

namespace dadu::kin {
namespace {

linalg::VecX randomConfig(const Chain& chain, std::uint64_t seed) {
  workload::Rng rng(seed);
  linalg::VecX q(chain.dof());
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = rng.angle();
  return q;
}

double maxAbsDiff(const linalg::MatX& a, const linalg::MatX& b) {
  return (a - b).maxAbs();
}

TEST(Jacobian, PlanarSingleLinkClosedForm) {
  // One revolute joint about z, link 1: J = dp/dq = (-sin q, cos q, 0).
  const Chain chain = makePlanar(1, 1.0);
  const double q0 = 0.6;
  const linalg::MatX j = positionJacobian(chain, linalg::VecX{q0});
  EXPECT_NEAR(j(0, 0), -std::sin(q0), 1e-12);
  EXPECT_NEAR(j(1, 0), std::cos(q0), 1e-12);
  EXPECT_NEAR(j(2, 0), 0.0, 1e-12);
}

TEST(Jacobian, PlanarChainZRowIsZero) {
  const Chain chain = makePlanar(6);
  const linalg::MatX j = positionJacobian(chain, randomConfig(chain, 3));
  for (std::size_t c = 0; c < j.cols(); ++c) EXPECT_NEAR(j(2, c), 0.0, 1e-12);
}

struct JacobianCase {
  const char* family;
  std::size_t dof;
};

class JacobianVsFiniteDifference
    : public ::testing::TestWithParam<JacobianCase> {
 protected:
  Chain makeChain() const {
    const auto& p = GetParam();
    if (std::string(p.family) == "planar") return makePlanar(p.dof);
    if (std::string(p.family) == "serpentine") return makeSerpentine(p.dof);
    if (std::string(p.family) == "random") return makeRandomChain(p.dof, 17);
    return makePuma560();
  }
};

TEST_P(JacobianVsFiniteDifference, Agrees) {
  const Chain chain = makeChain();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const linalg::VecX q = randomConfig(chain, seed * 31);
    const linalg::MatX analytic = positionJacobian(chain, q);
    const linalg::MatX numeric = finiteDifferenceJacobian(chain, q);
    EXPECT_LT(maxAbsDiff(analytic, numeric), 1e-6)
        << chain.name() << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, JacobianVsFiniteDifference,
    ::testing::Values(JacobianCase{"planar", 2}, JacobianCase{"planar", 10},
                      JacobianCase{"serpentine", 12},
                      JacobianCase{"serpentine", 25},
                      JacobianCase{"serpentine", 50},
                      JacobianCase{"serpentine", 100},
                      JacobianCase{"random", 12}, JacobianCase{"random", 30},
                      JacobianCase{"puma", 6}),
    [](const ::testing::TestParamInfo<JacobianCase>& param_info) {
      return std::string(param_info.param.family) + "_" +
             std::to_string(param_info.param.dof);
    });

TEST(Jacobian, PrismaticColumnIsAxis) {
  std::vector<Joint> joints = {prismatic({0, 0, 0.1, 0}, -1.0, 1.0),
                               revolute({0.3, 0, 0, 0})};
  const Chain chain(std::move(joints), "mixed");
  const linalg::MatX j = positionJacobian(chain, {0.2, 0.4});
  // First joint slides along base z.
  EXPECT_NEAR(j(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(j(1, 0), 0.0, 1e-12);
  EXPECT_NEAR(j(2, 0), 1.0, 1e-12);
  // And the finite difference agrees on the whole matrix.
  EXPECT_LT(maxAbsDiff(j, finiteDifferenceJacobian(chain, {0.2, 0.4})), 1e-6);
}

TEST(Jacobian, SharedEvaluationMatchesSeparate) {
  const Chain chain = makeSerpentine(20);
  const linalg::VecX q = randomConfig(chain, 77);
  linalg::MatX j;
  std::vector<linalg::Mat4> frames;
  linalg::Vec3 ee;
  positionJacobian(chain, q, j, frames, ee);
  EXPECT_LT((ee - endEffectorPosition(chain, q)).norm(), 1e-12);
  EXPECT_LT(maxAbsDiff(j, positionJacobian(chain, q)), 1e-15);
}

TEST(Jacobian, ColumnNormBoundedByLeverArm) {
  // ||J_i|| <= distance from joint i to the end effector.
  const Chain chain = makeSerpentine(30);
  const linalg::VecX q = randomConfig(chain, 11);
  const auto frames = linkFrames(chain, q);
  const linalg::Vec3 ee = frames.back().position();
  const linalg::MatX j = positionJacobian(chain, q);
  for (std::size_t i = 0; i < chain.dof(); ++i) {
    const linalg::Vec3 p =
        i == 0 ? chain.base().position() : frames[i - 1].position();
    EXPECT_LE(j.col3(i).norm(), (ee - p).norm() + 1e-9);
  }
}

TEST(Jacobian, LastColumnShrinksTowardTip) {
  // Joints near the tip have small lever arms: for the serpentine at a
  // generic configuration, the last column's norm is at most one link.
  const Chain chain = makeSerpentine(40, 0.1);
  const linalg::MatX j = positionJacobian(chain, randomConfig(chain, 23));
  EXPECT_LE(j.col3(39).norm(), 0.1 + 1e-9);
}

TEST(Jacobian, FlopsModelMonotone) {
  EXPECT_GT(jacobianFlops(50), jacobianFlops(10));
  EXPECT_EQ(jacobianFlops(0), 0);
}

}  // namespace
}  // namespace dadu::kin
