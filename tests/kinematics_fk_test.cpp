// Forward kinematics tests: analytic planar ground truth, frame
// consistency, long-chain numerical health, and the FK flop model.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/linalg/rotation.hpp"
#include "dadu/workload/rng.hpp"

namespace dadu::kin {
namespace {

constexpr double kPi = std::numbers::pi;

// Textbook closed form for the planar N-link arm.
linalg::Vec3 planarAnalytic(std::size_t n, double link, const linalg::VecX& q) {
  double x = 0.0, y = 0.0, acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += q[i];
    x += link * std::cos(acc);
    y += link * std::sin(acc);
  }
  return {x, y, 0.0};
}

TEST(ForwardKinematics, PlanarTwoLinkKnownPose) {
  const Chain chain = makePlanar(2, 1.0);
  // Both joints at 90 deg: first link up, second link back along -x.
  const linalg::Vec3 p = endEffectorPosition(chain, {kPi / 2, kPi / 2});
  EXPECT_NEAR(p.x, -1.0, 1e-12);
  EXPECT_NEAR(p.y, 1.0, 1e-12);
  EXPECT_NEAR(p.z, 0.0, 1e-12);
}

TEST(ForwardKinematics, PlanarZeroConfigStretchesAlongX) {
  const Chain chain = makePlanar(5, 0.2);
  const linalg::Vec3 p = endEffectorPosition(chain, chain.zeroConfiguration());
  EXPECT_NEAR(p.x, 1.0, 1e-12);
  EXPECT_NEAR(p.y, 0.0, 1e-12);
}

class PlanarAnalytic
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(PlanarAnalytic, MatchesClosedForm) {
  const auto [n, seed] = GetParam();
  const double link = 0.13;
  const Chain chain = makePlanar(n, link);
  workload::Rng rng(seed);
  linalg::VecX q(n);
  for (std::size_t i = 0; i < n; ++i) q[i] = rng.angle();
  const linalg::Vec3 got = endEffectorPosition(chain, q);
  const linalg::Vec3 want = planarAnalytic(n, link, q);
  EXPECT_NEAR((got - want).norm(), 0.0, 1e-10 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlanarAnalytic,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 7, 20, 100),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(ForwardKinematics, SerpentineZeroConfigReach) {
  // With alternating +-90 deg twists and all joints zero, every link
  // still advances `link` along its local x, so the end effector ends
  // at distance dof*link from the base only if the xs stay aligned.
  // What must hold unconditionally: position norm <= max reach.
  for (std::size_t dof : {12u, 25u, 50u}) {
    const Chain chain = makeSerpentine(dof, 0.1);
    const linalg::Vec3 p =
        endEffectorPosition(chain, chain.zeroConfiguration());
    EXPECT_LE(p.norm(), chain.maxReach() + 1e-9);
  }
}

TEST(ForwardKinematics, ReachBoundHoldsForRandomConfigs) {
  const Chain chain = makeSerpentine(25);
  workload::Rng rng(99);
  linalg::VecX q(chain.dof());
  for (int s = 0; s < 50; ++s) {
    for (std::size_t i = 0; i < q.size(); ++i) q[i] = rng.angle();
    EXPECT_LE(endEffectorPosition(chain, q).norm(), chain.maxReach() + 1e-9);
  }
}

TEST(ForwardKinematics, LinkFramesLastEqualsEndEffector) {
  const Chain chain = makeSerpentine(12);
  workload::Rng rng(5);
  linalg::VecX q(chain.dof());
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = rng.angle();
  const auto frames = linkFrames(chain, q);
  ASSERT_EQ(frames.size(), chain.dof());
  const linalg::Mat4 full = forwardKinematics(chain, q);
  EXPECT_LT((frames.back().position() - full.position()).norm(), 1e-12);
}

TEST(ForwardKinematics, FramesComposeIncrementally) {
  const Chain chain = makeSerpentine(8);
  const linalg::VecX q{0.1, -0.2, 0.3, -0.4, 0.5, -0.6, 0.7, -0.8};
  const auto frames = linkFrames(chain, q);
  // frames[i] == frames[i-1] * T_i
  for (std::size_t i = 1; i < frames.size(); ++i) {
    const linalg::Mat4 expect = frames[i - 1] * chain.joint(i).transform(q[i]);
    EXPECT_LT((expect.position() - frames[i].position()).norm(), 1e-12);
  }
}

TEST(ForwardKinematics, RotationStaysOrthonormalOver100Joints) {
  const Chain chain = makeSerpentine(100);
  workload::Rng rng(7);
  linalg::VecX q(chain.dof());
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = rng.angle();
  const linalg::Mat4 t = forwardKinematics(chain, q);
  EXPECT_LT(linalg::orthonormalityError(t.rotation()), 1e-12);
}

TEST(ForwardKinematics, BaseFrameOffsetsEndEffector) {
  std::vector<Joint> joints = {revolute({1.0, 0, 0, 0})};
  const Chain offset(std::move(joints), "offset",
                     linalg::Mat4::translation({0, 0, 5}));
  const linalg::Vec3 p = endEffectorPosition(offset, linalg::VecX(1));
  EXPECT_NEAR((p - linalg::Vec3(1, 0, 5)).norm(), 0.0, 1e-12);
}

TEST(ForwardKinematics, SizeMismatchThrows) {
  const Chain chain = makePlanar(3);
  EXPECT_THROW(endEffectorPosition(chain, linalg::VecX(2)),
               std::invalid_argument);
}

TEST(ForwardKinematics, ScratchReuseGivesSameResult) {
  const Chain chain = makeSerpentine(10);
  std::vector<linalg::Mat4> frames;
  linalg::VecX q(chain.dof(), 0.2);
  linkFrames(chain, q, frames);
  const linalg::Vec3 first = frames.back().position();
  linkFrames(chain, q, frames);  // reuse
  EXPECT_EQ(frames.back().position(), first);
}

TEST(FkFlops, MonotoneInDof) {
  EXPECT_EQ(fkFlops(0), 0);
  EXPECT_GT(fkFlops(10), fkFlops(5));
  EXPECT_EQ(fkFlops(100), 10 * fkFlops(10));
}

}  // namespace
}  // namespace dadu::kin
