// Manipulability / isotropy metrics and weighted-DLS tests.
#include <gtest/gtest.h>

#include <cmath>

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/jacobian.hpp"
#include "dadu/kinematics/metrics.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/solvers/dls.hpp"
#include "dadu/solvers/dls_weighted.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::kin {
namespace {

TEST(Metrics, SingularStretchHasZeroManipulability) {
  // Planar chain fully stretched: rank-2 position Jacobian in 3-D.
  const auto chain = makePlanar(4, 0.25);
  const auto report = conditioningAt(chain, chain.zeroConfiguration());
  EXPECT_NEAR(report.manipulability, 0.0, 1e-12);
  EXPECT_NEAR(report.isotropy, 0.0, 1e-12);
  EXPECT_NEAR(report.sigma_min, 0.0, 1e-12);
  EXPECT_GT(report.sigma_max, 0.0);
}

TEST(Metrics, GenericConfigurationWellConditioned) {
  const auto chain = makeSerpentine(25);
  linalg::VecX q(chain.dof());
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = 0.15 * (i % 5) - 0.3;
  const auto report = conditioningAt(chain, q);
  EXPECT_GT(report.manipulability, 0.0);
  EXPECT_GT(report.isotropy, 0.0);
  EXPECT_LE(report.isotropy, 1.0);
  EXPECT_GE(report.sigma_max, report.sigma_min);
}

TEST(Metrics, IsotropyOneForIsotropicJacobian) {
  // A synthetic Jacobian with equal singular values.
  linalg::MatX j(3, 4);
  j(0, 0) = 1.0;
  j(1, 1) = 1.0;
  j(2, 2) = 1.0;
  EXPECT_NEAR(isotropyIndex(j), 1.0, 1e-12);
  EXPECT_NEAR(manipulability(j), 1.0, 1e-12);
}

TEST(Metrics, ManipulabilityScalesWithJacobian) {
  const auto chain = makeSerpentine(12);
  linalg::VecX q(chain.dof(), 0.2);
  const auto j = positionJacobian(chain, q);
  // sqrt(det((2J)(2J)^T)) = 8 * sqrt(det(JJ^T)) for 3 rows.
  EXPECT_NEAR(manipulability(j * 2.0), 8.0 * manipulability(j),
              1e-6 * manipulability(j) * 8.0);
}

TEST(WeightedDls, ValidatesWeights) {
  const auto chain = makeSerpentine(5);
  EXPECT_THROW(ik::WeightedDlsSolver(chain, {}, linalg::VecX(4, 1.0)),
               std::invalid_argument);
  linalg::VecX bad(5, 1.0);
  bad[2] = 0.0;
  EXPECT_THROW(ik::WeightedDlsSolver(chain, {}, bad), std::invalid_argument);
}

TEST(WeightedDls, UnitWeightsMatchPlainDls) {
  const auto chain = makeSerpentine(20);
  ik::SolveOptions options;
  ik::DlsSolver plain(chain, options);
  ik::WeightedDlsSolver unit(chain, options, linalg::VecX(chain.dof(), 1.0));
  const auto task = workload::generateTask(chain, 1);
  const auto rp = plain.solve(task.target, task.seed);
  const auto ru = unit.solve(task.target, task.seed);
  ASSERT_TRUE(rp.converged());
  ASSERT_TRUE(ru.converged());
  EXPECT_EQ(rp.iterations, ru.iterations);
  EXPECT_LT((rp.theta - ru.theta).norm(), 1e-9);
}

TEST(WeightedDls, HeavyJointMovesLess) {
  const auto chain = makeSerpentine(20);
  ik::SolveOptions options;
  const auto task = workload::generateTask(chain, 3);

  linalg::VecX weights(chain.dof(), 1.0);
  weights[0] = 1e4;  // base joint very expensive
  ik::WeightedDlsSolver weighted(chain, options, weights);
  ik::DlsSolver plain(chain, options);

  const auto rw = weighted.solve(task.target, task.seed);
  const auto rp = plain.solve(task.target, task.seed);
  ASSERT_TRUE(rw.converged());
  ASSERT_TRUE(rp.converged());
  const double moved_w = std::abs(rw.theta[0] - task.seed[0]);
  const double moved_p = std::abs(rp.theta[0] - task.seed[0]);
  EXPECT_LT(moved_w, 0.2 * moved_p + 1e-6);
}

TEST(WeightedDls, ConvergesWithHeterogeneousWeights) {
  const auto chain = makeSerpentine(25);
  linalg::VecX weights(chain.dof());
  for (std::size_t i = 0; i < weights.size(); ++i)
    weights[i] = 1.0 + static_cast<double>(i % 7);
  ik::WeightedDlsSolver solver(chain, {}, weights);
  for (int t = 0; t < 3; ++t) {
    const auto task = workload::generateTask(chain, t);
    EXPECT_TRUE(solver.solve(task.target, task.seed).converged()) << t;
  }
}

}  // namespace
}  // namespace dadu::kin
