// Trajectory retiming, chain-utility and percentile-statistics tests.
#include <gtest/gtest.h>

#include <cmath>

#include "dadu/core/retiming.hpp"
#include "dadu/kinematics/chain_utils.hpp"
#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/solvers/types.hpp"

namespace dadu {
namespace {

TEST(Retiming, EmptyAndSingle) {
  EXPECT_TRUE(retimeTrapezoidal({}).empty());
  const auto one = retimeTrapezoidal({linalg::VecX{1.0, 2.0}});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0].time, 0.0);
  EXPECT_DOUBLE_EQ(trajectoryDuration(one), 0.0);
}

TEST(Retiming, RejectsBadLimits) {
  RetimingLimits bad;
  bad.max_velocity = 0.0;
  EXPECT_THROW(retimeTrapezoidal({linalg::VecX{0.0}}, bad),
               std::invalid_argument);
}

TEST(Retiming, TriangularProfileTime) {
  // Short move never reaching vmax: t = 2 sqrt(d / a).
  RetimingLimits lim;
  lim.max_velocity = 10.0;  // effectively unbounded
  lim.max_acceleration = 4.0;
  const auto timed =
      retimeTrapezoidal({linalg::VecX{0.0}, linalg::VecX{1.0}}, lim);
  EXPECT_NEAR(timed[1].time, 2.0 * std::sqrt(1.0 / 4.0), 1e-12);
}

TEST(Retiming, TrapezoidalProfileTime) {
  // Long move: 2*vmax/amax ramps + cruise.
  RetimingLimits lim;
  lim.max_velocity = 1.0;
  lim.max_acceleration = 1.0;
  const auto timed =
      retimeTrapezoidal({linalg::VecX{0.0}, linalg::VecX{5.0}}, lim);
  // d_accel = 1; cruise = 4 / 1 = 4 s; ramps = 2 s.
  EXPECT_NEAR(timed[1].time, 6.0, 1e-12);
}

TEST(Retiming, WorstJointGovernsSegment) {
  RetimingLimits lim;
  lim.max_velocity = 1.0;
  lim.max_acceleration = 1.0;
  const auto small = retimeTrapezoidal(
      {linalg::VecX{0.0, 0.0}, linalg::VecX{0.1, 0.1}}, lim);
  const auto mixed = retimeTrapezoidal(
      {linalg::VecX{0.0, 0.0}, linalg::VecX{0.1, 3.0}}, lim);
  EXPECT_GT(mixed[1].time, small[1].time);
}

TEST(Retiming, TimesAreMonotone) {
  std::vector<linalg::VecX> path;
  for (int i = 0; i < 6; ++i)
    path.push_back(linalg::VecX{0.3 * i, -0.2 * i});
  const auto timed = retimeTrapezoidal(path);
  for (std::size_t i = 1; i < timed.size(); ++i)
    EXPECT_GT(timed[i].time, timed[i - 1].time);
  EXPECT_DOUBLE_EQ(trajectoryDuration(timed), timed.back().time);
}

TEST(Retiming, SampleInterpolatesAndClamps) {
  const auto timed = retimeTrapezoidal(
      {linalg::VecX{0.0}, linalg::VecX{2.0}});
  const double t_end = timed.back().time;
  EXPECT_DOUBLE_EQ(sampleTrajectory(timed, -1.0)[0], 0.0);
  EXPECT_DOUBLE_EQ(sampleTrajectory(timed, t_end + 5)[0], 2.0);
  EXPECT_NEAR(sampleTrajectory(timed, t_end / 2)[0], 1.0, 1e-12);
  EXPECT_TRUE(sampleTrajectory({}, 1.0).empty());
}

TEST(ChainUtils, AppendComposesKinematics) {
  const auto torso = kin::makePlanar(2, 0.3);
  const auto arm = kin::makePlanar(3, 0.2);
  const auto full = kin::appendChains(torso, arm);
  EXPECT_EQ(full.dof(), 5u);
  EXPECT_NEAR(full.maxReach(), 0.6 + 0.6, 1e-12);
  // FK of the composition at zero matches the sum of stretches.
  const auto p = kin::endEffectorPosition(full, full.zeroConfiguration());
  EXPECT_NEAR(p.x, 1.2, 1e-12);
  EXPECT_EQ(full.name(), "planar-2dof+planar-3dof");
}

TEST(ChainUtils, SubChainExtractsSpan) {
  const auto chain = kin::makeSerpentine(10);
  const auto mid = kin::subChain(chain, 3, 7);
  EXPECT_EQ(mid.dof(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(mid.joint(i).dh.alpha, chain.joint(3 + i).dh.alpha);
  EXPECT_THROW(kin::subChain(chain, 5, 5), std::out_of_range);
  EXPECT_THROW(kin::subChain(chain, 8, 12), std::out_of_range);
}

TEST(ChainUtils, UniformLimits) {
  const auto limited = kin::withUniformLimits(kin::makeSerpentine(5), -1, 1);
  for (const auto& j : limited.joints()) {
    EXPECT_DOUBLE_EQ(j.min, -1.0);
    EXPECT_DOUBLE_EQ(j.max, 1.0);
  }
}

TEST(Percentiles, NearestRankSemantics) {
  std::vector<ik::SolveResult> batch(10);
  for (int i = 0; i < 10; ++i) batch[i].iterations = (i + 1) * 10;  // 10..100
  EXPECT_DOUBLE_EQ(ik::iterationPercentile(batch, 50), 50.0);
  EXPECT_DOUBLE_EQ(ik::iterationPercentile(batch, 90), 90.0);
  EXPECT_DOUBLE_EQ(ik::iterationPercentile(batch, 100), 100.0);
  EXPECT_DOUBLE_EQ(ik::iterationPercentile(batch, 0), 10.0);
  EXPECT_DOUBLE_EQ(ik::iterationPercentile({}, 50), 0.0);
  // Order independence.
  std::swap(batch[0], batch[9]);
  EXPECT_DOUBLE_EQ(ik::iterationPercentile(batch, 90), 90.0);
}

}  // namespace
}  // namespace dadu
