// Batched speculative FK kernel tests: lane-for-lane agreement with the
// scalar per-candidate path (f64 and f32, revolute and prismatic,
// clamped and free), independence from the lane-chunk split, solver
// equivalence after the rewire, and an allocation audit of the solver
// hot loop using a counting global operator new.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/forward_batch.hpp"
#include "dadu/kinematics/forward_f32.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/solvers/jt_common.hpp"
#include "dadu/solvers/quick_ik.hpp"
#include "dadu/workload/targets.hpp"

// ---------------------------------------------------------------------------
// Counting allocator: every global new/delete in this test binary bumps
// a counter, letting tests assert that solver iterations allocate
// nothing once warm.
namespace {
std::atomic<long long> g_allocations{0};
long long allocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dadu {
namespace {

using kin::BatchedForward;

// The pre-batching per-candidate reference: theta_k = theta + alpha_k *
// dtheta (clamped when asked), one scalar FK pass per candidate.
struct ScalarSweep {
  std::vector<linalg::VecX> theta_k;
  std::vector<linalg::Vec3> x_k;
  std::vector<double> error_k;
};
ScalarSweep scalarSweep(const kin::Chain& chain, const linalg::VecX& theta,
                        const linalg::VecX& dtheta,
                        const std::vector<double>& alphas,
                        const linalg::Vec3& target, bool clamp,
                        bool use_f32 = false) {
  ScalarSweep s;
  for (double alpha : alphas) {
    linalg::VecX cand(chain.dof());
    linalg::axpyInto(alpha, dtheta, theta, cand);
    if (clamp) cand = chain.clampToLimits(cand);
    const linalg::Vec3 x = use_f32 ? kin::endEffectorPositionF32(chain, cand)
                                   : kin::endEffectorPosition(chain, cand);
    s.theta_k.push_back(cand);
    s.x_k.push_back(x);
    s.error_k.push_back((target - x).norm());
  }
  return s;
}

std::vector<double> alphaLadder(int max_spec, double alpha_base) {
  std::vector<double> alphas(static_cast<std::size_t>(max_spec));
  for (int k = 1; k <= max_spec; ++k)
    alphas[k - 1] = (static_cast<double>(k) / max_spec) * alpha_base;
  return alphas;
}

// A chain mixing revolute and prismatic joints (every third joint
// telescopes), exercising both per-joint kernels.
kin::Chain makeMixedChain(std::size_t dof) {
  std::vector<kin::Joint> joints;
  for (std::size_t i = 0; i < dof; ++i) {
    kin::DhParam dh;
    dh.a = 0.08;
    dh.alpha = (i % 2 == 0) ? 1.5707963267948966 : -1.5707963267948966;
    if (i % 3 == 2) {
      dh.theta = 0.2;
      joints.push_back(kin::prismatic(dh, 0.0, 0.15));
    } else {
      joints.push_back(kin::revolute(dh));
    }
  }
  return kin::Chain(std::move(joints), "mixed");
}

// Deterministic pseudo-random joint/dir vectors for kernel inputs.
linalg::VecX patternVec(std::size_t n, double scale, double phase) {
  linalg::VecX v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = scale * std::sin(0.7 * static_cast<double>(i) + phase);
  return v;
}

TEST(BatchedForwardKinematics, MatchesScalarAcrossPresetsAndBatchSizes) {
  for (std::size_t dof : {12u, 25u, 50u, 75u, 100u}) {
    const auto chain = kin::makeSerpentine(dof);
    const linalg::VecX theta = patternVec(dof, 0.4, 0.3);
    const linalg::VecX dtheta = patternVec(dof, 1.1, 1.9);
    const linalg::Vec3 target{0.3, -0.2, 0.5};
    for (int k_count : {1, 3, 16, 64}) {
      const auto alphas = alphaLadder(k_count, 0.37);
      const auto ref =
          scalarSweep(chain, theta, dtheta, alphas, target, false);

      BatchedForward batch;
      batch.reset(chain, alphas.size());
      batch.evaluateLanes(chain, theta, dtheta, alphas.data(), target, false,
                          0, alphas.size());
      for (std::size_t k = 0; k < alphas.size(); ++k) {
        EXPECT_LT((batch.position(k) - ref.x_k[k]).norm(), 1e-12)
            << dof << "-DOF K=" << k_count << " lane " << k;
        EXPECT_NEAR(batch.errors()[k], ref.error_k[k], 1e-12);
        linalg::VecX cand;
        batch.candidateInto(k, cand);
        EXPECT_LT((cand - ref.theta_k[k]).norm(), 1e-15);
      }
    }
  }
}

TEST(BatchedForwardKinematics, MatchesScalarOnPrismaticJoints) {
  const auto chain = makeMixedChain(30);
  const linalg::VecX theta = patternVec(30, 0.3, 0.1);
  const linalg::VecX dtheta = patternVec(30, 0.9, 2.3);
  const linalg::Vec3 target{0.4, 0.1, -0.3};
  for (bool clamp : {false, true}) {
    const auto alphas = alphaLadder(16, 0.8);
    const auto ref = scalarSweep(chain, theta, dtheta, alphas, target, clamp);
    BatchedForward batch;
    batch.reset(chain, alphas.size());
    batch.evaluateLanes(chain, theta, dtheta, alphas.data(), target, clamp, 0,
                        alphas.size());
    for (std::size_t k = 0; k < alphas.size(); ++k) {
      EXPECT_LT((batch.position(k) - ref.x_k[k]).norm(), 1e-12)
          << "clamp=" << clamp << " lane " << k;
      EXPECT_NEAR(batch.errors()[k], ref.error_k[k], 1e-12);
    }
  }
}

TEST(BatchedForwardKinematics, ClampedCandidatesMatchChainClamp) {
  auto base = kin::makeSerpentine(25);
  std::vector<kin::Joint> joints = base.joints();
  for (auto& j : joints) {
    j.min = -0.5;
    j.max = 0.5;
  }
  const kin::Chain chain(std::move(joints), "limited");
  const linalg::VecX theta = patternVec(25, 0.45, 0.8);
  const linalg::VecX dtheta = patternVec(25, 2.0, 0.2);
  const linalg::Vec3 target{0.2, 0.2, 0.2};
  const auto alphas = alphaLadder(16, 1.0);
  const auto ref = scalarSweep(chain, theta, dtheta, alphas, target, true);

  BatchedForward batch;
  batch.reset(chain, alphas.size());
  batch.evaluateLanes(chain, theta, dtheta, alphas.data(), target, true, 0,
                      alphas.size());
  for (std::size_t k = 0; k < alphas.size(); ++k) {
    linalg::VecX cand;
    batch.candidateInto(k, cand);
    EXPECT_TRUE(chain.withinLimits(cand)) << "lane " << k;
    EXPECT_LT((cand - ref.theta_k[k]).norm(), 1e-15);
    EXPECT_LT((batch.position(k) - ref.x_k[k]).norm(), 1e-12);
  }
}

TEST(BatchedForwardKinematics, F32PrecisionMatchesScalarF32Path) {
  for (std::size_t dof : {12u, 50u, 100u}) {
    const auto chain = kin::makeSerpentine(dof);
    const linalg::VecX theta = patternVec(dof, 0.35, 1.2);
    const linalg::VecX dtheta = patternVec(dof, 0.8, 0.6);
    const linalg::Vec3 target{0.1, 0.4, -0.2};
    const auto alphas = alphaLadder(16, 0.42);
    const auto ref =
        scalarSweep(chain, theta, dtheta, alphas, target, false, true);

    BatchedForward batch(BatchedForward::Precision::kF32);
    batch.reset(chain, alphas.size());
    batch.evaluateLanes(chain, theta, dtheta, alphas.data(), target, false, 0,
                        alphas.size());
    for (std::size_t k = 0; k < alphas.size(); ++k) {
      // Same float operations in the same order: the widened results
      // agree far below f32 round-off (1e-12 would catch any
      // reassociation, which would sit near 1e-7).
      EXPECT_LT((batch.position(k) - ref.x_k[k]).norm(), 1e-12)
          << dof << "-DOF lane " << k;
      EXPECT_NEAR(batch.errors()[k], ref.error_k[k], 1e-12);
    }
  }
}

TEST(BatchedForwardKinematics, LaneChunkSplitIsIrrelevant) {
  // Evaluating [0,K) in one call or as disjoint chunks (as thread-pool
  // workers do) must produce identical lanes.
  const auto chain = kin::makeSerpentine(50);
  const linalg::VecX theta = patternVec(50, 0.4, 0.0);
  const linalg::VecX dtheta = patternVec(50, 1.0, 1.0);
  const linalg::Vec3 target{0.3, 0.3, 0.3};
  const auto alphas = alphaLadder(64, 0.5);

  BatchedForward whole;
  whole.reset(chain, alphas.size());
  whole.evaluateLanes(chain, theta, dtheta, alphas.data(), target, false, 0,
                      alphas.size());

  BatchedForward split;
  split.reset(chain, alphas.size());
  for (std::size_t lo = 0; lo < alphas.size(); lo += 13)
    split.evaluateLanes(chain, theta, dtheta, alphas.data(), target, false,
                        lo, std::min(alphas.size(), lo + 13));

  for (std::size_t k = 0; k < alphas.size(); ++k) {
    EXPECT_EQ(whole.position(k), split.position(k)) << "lane " << k;
    EXPECT_EQ(whole.errors()[k], split.errors()[k]);
  }
}

TEST(BatchedForwardKinematics, SerialAndThreadPoolQuickIkIdentical) {
  // The rewired solver must stay bit-identical across execution
  // strategies and speculation counts.
  const auto chain = kin::makeSerpentine(25);
  for (int k_count : {1, 3, 16, 64}) {
    ik::SolveOptions options;
    options.speculations = k_count;
    ik::QuickIkSolver serial(chain, options,
                             ik::QuickIkSolver::Execution::kSerial);
    ik::QuickIkSolver pooled(chain, options,
                             ik::QuickIkSolver::Execution::kThreadPool, 4);
    for (int i = 0; i < 3; ++i) {
      const auto task = workload::generateTask(chain, i);
      const auto rs = serial.solve(task.target, task.seed);
      const auto rp = pooled.solve(task.target, task.seed);
      EXPECT_EQ(rs.status, rp.status) << "K=" << k_count << " task " << i;
      EXPECT_EQ(rs.iterations, rp.iterations);
      EXPECT_EQ(rs.error, rp.error);
      EXPECT_EQ(rs.theta, rp.theta) << "bit-identical selection required";
    }
  }
}

TEST(BatchedForwardKinematics, QuickIkMatchesScalarReferenceSweep) {
  // One full solver iteration cross-checked against the per-candidate
  // reference: the winning candidate and error the solver reports must
  // be the argmin of the scalar sweep.
  const auto chain = kin::makeSerpentine(50);
  const auto task = workload::generateTask(chain, 3);
  ik::SolveOptions options;
  options.max_iterations = 1;
  ik::QuickIkSolver solver(chain, options);
  const auto r = solver.solve(task.target, task.seed);

  ik::JtWorkspace ws;
  const auto head = ik::jtIterationHead(chain, task.seed, task.target, ws);
  const auto alphas = alphaLadder(options.speculations, head.alpha_base);
  const auto ref = scalarSweep(chain, task.seed, ws.dtheta_base, alphas,
                               task.target, false);
  std::size_t best = 0;
  for (std::size_t k = 1; k < ref.error_k.size(); ++k)
    if (ref.error_k[k] < ref.error_k[best]) best = k;
  EXPECT_NEAR(r.error, ref.error_k[best], 1e-12);
  EXPECT_LT((r.theta - ref.theta_k[best]).norm(), 1e-15);
}

TEST(BatchedForwardKinematics, SolverIterationsAllocateNothingOnceWarm) {
  // Heap traffic per solve must not scale with the iteration count:
  // the kernel workspace, candidates and errors are all owned by the
  // solver and reused.  (Counting allocator: see operator new above.)
  const auto chain = kin::makeSerpentine(50);
  const auto task = workload::generateTask(chain, 1);
  const auto solve_allocs = [&](int iterations) {
    ik::SolveOptions options;
    options.accuracy = 0.0;  // never converge: run the full budget
    options.max_iterations = iterations;
    ik::QuickIkSolver solver(chain, options);
    (void)solver.solve(task.target, task.seed);  // warm-up
    const long long before = allocationCount();
    (void)solver.solve(task.target, task.seed);
    return allocationCount() - before;
  };
  const long long short_run = solve_allocs(8);
  const long long long_run = solve_allocs(64);
  EXPECT_EQ(short_run, long_run)
      << "per-iteration allocations detected in the speculation loop";
}

}  // namespace
}  // namespace dadu
