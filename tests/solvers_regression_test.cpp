// Regression tests for two Quick-IK defects:
//
//  1. Non-monotone adoption: the speculative sweep adopted the argmin
//     candidate unconditionally, so with an overshooting alpha ladder
//     (most visible at speculations=1, where the only candidate is the
//     full Eq. 8 step) theta could move to a configuration with HIGHER
//     error than before the sweep.  Fixed: a sweep whose winner does
//     not improve on the pre-sweep error keeps the current theta and
//     stalls (the deterministic ladder would only repeat itself).
//
//  2. History truncation: on a max-iterations exit the adopted error of
//     the final sweep was never appended to error_history, so the
//     recorded history ended one entry short of the reported error.
//
// Both fixes must hold across every speculative implementation:
// QuickIkSolver, QuickIkAdaptiveSolver, QuickIkF32Solver, and the
// IkAccelerator functional model (kept bit-identical to QuickIkSolver
// by the AcceleratorEquivalence tests).
#include <gtest/gtest.h>

#include <vector>

#include "dadu/ikacc/accelerator.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/solvers/quick_ik.hpp"
#include "dadu/solvers/quick_ik_adaptive.hpp"
#include "dadu/solvers/quick_ik_f32.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::ik {
namespace {

// Known overshoot case found by sweeping the workload generator:
// serpentine-6, task seed 0, speculations=1.  The single candidate is
// the full Eq. 8 step, which soon overshoots the target; the broken
// solver adopts it anyway and the error history rises.
constexpr std::size_t kDof = 6;
constexpr int kTaskSeed = 0;

SolveOptions overshootOptions() {
  SolveOptions options;
  options.speculations = 1;
  options.record_history = true;
  return options;
}

void expectMonotoneHistory(const SolveResult& r) {
  for (std::size_t i = 1; i < r.error_history.size(); ++i)
    EXPECT_LE(r.error_history[i], r.error_history[i - 1])
        << "error rose at history step " << i;
}

TEST(QuickIkRegression, NeverAdoptsWorseCandidate) {
  const auto chain = kin::makeSerpentine(kDof);
  const auto task = workload::generateTask(chain, kTaskSeed);
  QuickIkSolver solver(chain, overshootOptions());
  const auto r = solver.solve(task.target, task.seed);

  // The losing sweep stalls instead of regressing.
  EXPECT_EQ(r.status, Status::kStalled);
  expectMonotoneHistory(r);
  ASSERT_FALSE(r.error_history.empty());
  // Final error can never exceed where the solve started.
  EXPECT_LE(r.error, r.error_history.front());
}

TEST(QuickIkRegression, MonotoneAcrossManyTasks) {
  const auto chain = kin::makeSerpentine(kDof);
  QuickIkSolver solver(chain, overshootOptions());
  for (int s = 0; s < 30; ++s) {
    const auto task = workload::generateTask(chain, s);
    const auto r = solver.solve(task.target, task.seed);
    expectMonotoneHistory(r);
  }
}

TEST(QuickIkRegression, MaxIterationsExitRecordsFinalError) {
  const auto chain = kin::makeSerpentine(50);
  SolveOptions options;
  options.max_iterations = 3;
  options.accuracy = 1e-9;  // unreachable in 3 iterations
  options.record_history = true;
  QuickIkSolver solver(chain, options);
  const auto task = workload::generateTask(chain, 1);
  const auto r = solver.solve(task.target, task.seed);

  ASSERT_EQ(r.status, Status::kMaxIterations);
  // One head entry per iteration plus the final adopted error.
  ASSERT_EQ(r.error_history.size(),
            static_cast<std::size_t>(r.iterations) + 1);
  EXPECT_DOUBLE_EQ(r.error_history.back(), r.error);
}

TEST(QuickIkRegression, AdaptiveNeverAdoptsWorseCandidate) {
  const auto chain = kin::makeSerpentine(kDof);
  const auto task = workload::generateTask(chain, kTaskSeed);
  QuickIkAdaptiveSolver solver(chain, overshootOptions(),
                               /*min_speculations=*/1);
  const auto r = solver.solve(task.target, task.seed);
  expectMonotoneHistory(r);
  ASSERT_FALSE(r.error_history.empty());
  EXPECT_LE(r.error, r.error_history.front());
}

TEST(QuickIkRegression, AdaptiveMaxIterationsExitRecordsFinalError) {
  const auto chain = kin::makeSerpentine(50);
  SolveOptions options;
  options.max_iterations = 3;
  options.accuracy = 1e-9;
  options.record_history = true;
  QuickIkAdaptiveSolver solver(chain, options, /*min_speculations=*/4);
  const auto task = workload::generateTask(chain, 1);
  const auto r = solver.solve(task.target, task.seed);
  ASSERT_EQ(r.status, Status::kMaxIterations);
  ASSERT_EQ(r.error_history.size(),
            static_cast<std::size_t>(r.iterations) + 1);
  EXPECT_DOUBLE_EQ(r.error_history.back(), r.error);
}

TEST(QuickIkRegression, F32NeverAdoptsWorseCandidate) {
  const auto chain = kin::makeSerpentine(kDof);
  const auto task = workload::generateTask(chain, kTaskSeed);
  QuickIkF32Solver solver(chain, overshootOptions());
  const auto r = solver.solve(task.target, task.seed);
  expectMonotoneHistory(r);
  ASSERT_FALSE(r.error_history.empty());
  EXPECT_LE(r.error, r.error_history.front());
}

TEST(QuickIkRegression, F32MaxIterationsExitRecordsFinalError) {
  const auto chain = kin::makeSerpentine(50);
  SolveOptions options;
  options.max_iterations = 3;
  options.accuracy = 1e-9;
  options.record_history = true;
  QuickIkF32Solver solver(chain, options);
  const auto task = workload::generateTask(chain, 1);
  const auto r = solver.solve(task.target, task.seed);
  ASSERT_EQ(r.status, Status::kMaxIterations);
  ASSERT_EQ(r.error_history.size(),
            static_cast<std::size_t>(r.iterations) + 1);
  EXPECT_DOUBLE_EQ(r.error_history.back(), r.error);
}

// The accelerator model must stay bit-identical to QuickIkSolver on
// the stalling case too — the guard lives in both implementations.
TEST(QuickIkRegression, AcceleratorMirrorsGuardExactly) {
  const auto chain = kin::makeSerpentine(kDof);
  const auto task = workload::generateTask(chain, kTaskSeed);
  const SolveOptions options = overshootOptions();

  QuickIkSolver software(chain, options);
  const auto sw = software.solve(task.target, task.seed);

  acc::IkAccelerator accelerator(chain, options, acc::AccConfig{});
  const auto hw = accelerator.solve(task.target, task.seed);

  EXPECT_EQ(hw.status, sw.status);
  EXPECT_EQ(hw.iterations, sw.iterations);
  EXPECT_EQ(hw.error, sw.error);
  EXPECT_EQ(hw.theta, sw.theta);
  EXPECT_EQ(hw.error_history, sw.error_history);
}

// Projected descent is exempt from the guard: clamped solves are
// allowed to pass through worse errors while sliding along joint
// limits, and must still converge (the Puma interior-target case).
TEST(QuickIkRegression, ClampedSolveStillConverges) {
  const auto chain = kin::makePuma560();
  SolveOptions options;
  options.clamp_to_limits = true;
  QuickIkSolver solver(chain, options);
  const auto task = workload::generateTask(chain, 3);
  const auto r = solver.solve(task.target, task.seed);
  EXPECT_TRUE(r.converged());
  EXPECT_TRUE(chain.withinLimits(r.theta));
}

}  // namespace
}  // namespace dadu::ik
