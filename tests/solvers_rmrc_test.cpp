// Resolved-motion-rate-control tests.
#include <gtest/gtest.h>

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/solvers/rmrc.hpp"
#include "dadu/workload/trajectory.hpp"

namespace dadu::ik {
namespace {

std::vector<linalg::Vec3> testCircle(const kin::Chain& chain, int points) {
  auto path = workload::circleTrajectory(
      {0.5 * chain.maxReach(), 0.0, 0.2 * chain.maxReach()},
      0.2 * chain.maxReach(), linalg::Vec3::unitX(), linalg::Vec3::unitY(),
      points);
  return workload::fitToWorkspace(chain, std::move(path));
}

// Start configuration on the path: a mild bend whose FK is then used
// as the path's first waypoint so tracking starts converged.
linalg::VecX bentStart(const kin::Chain& chain) {
  linalg::VecX q(chain.dof());
  for (std::size_t i = 0; i < q.size(); ++i)
    q[i] = (i % 2 == 0) ? 0.15 : -0.1;
  return q;
}

TEST(Rmrc, EmptyPathIsEmptyResult) {
  const auto chain = kin::makeSerpentine(12);
  const auto r = trackRmrc(chain, {}, chain.zeroConfiguration());
  EXPECT_TRUE(r.joint_path.empty());
  EXPECT_DOUBLE_EQ(r.rms_error, 0.0);
}

TEST(Rmrc, TracksCircleWithSmallError) {
  const auto chain = kin::makeSerpentine(25);
  const linalg::VecX q0 = bentStart(chain);
  // Anchor the path at the start pose, then loop a circle.
  auto path = testCircle(chain, 200);
  path.insert(path.begin(), kin::endEffectorPosition(chain, q0));

  RmrcOptions options;
  options.dt = 0.02;
  const auto r = trackRmrc(chain, path, q0, options);
  ASSERT_EQ(r.joint_path.size(), path.size());
  // The initial transient (the jump from the start pose onto the
  // circle) dominates whole-run RMS; judge steady-state tracking on
  // the second half of the path.
  double steady_sq = 0.0;
  const std::size_t half = r.tracking_error.size() / 2;
  for (std::size_t k = half; k < r.tracking_error.size(); ++k)
    steady_sq += r.tracking_error[k] * r.tracking_error[k];
  const double steady_rms =
      std::sqrt(steady_sq / static_cast<double>(r.tracking_error.size() - half));
  EXPECT_LT(steady_rms, 0.05);
  EXPECT_LT(r.tracking_error.back(), 0.05);
}

TEST(Rmrc, FeedbackCorrectsDrift) {
  const auto chain = kin::makeSerpentine(25);
  const linalg::VecX q0 = bentStart(chain);
  auto path = testCircle(chain, 150);
  path.insert(path.begin(), kin::endEffectorPosition(chain, q0));

  RmrcOptions open_loop;
  open_loop.dt = 0.02;
  open_loop.feedback_gain = 0.0;
  RmrcOptions closed_loop = open_loop;
  closed_loop.feedback_gain = 20.0;

  const auto open = trackRmrc(chain, path, q0, open_loop);
  const auto closed = trackRmrc(chain, path, q0, closed_loop);
  // Open-loop integration accumulates drift; CLIK keeps it bounded.
  EXPECT_LT(closed.tracking_error.back(), open.tracking_error.back());
  EXPECT_LT(closed.rms_error, open.rms_error + 1e-12);
}

TEST(Rmrc, JointPathIsContinuous) {
  const auto chain = kin::makeSerpentine(25);
  const linalg::VecX q0 = bentStart(chain);
  auto path = testCircle(chain, 100);
  path.insert(path.begin(), kin::endEffectorPosition(chain, q0));

  RmrcOptions options;
  options.dt = 0.02;
  const auto r = trackRmrc(chain, path, q0, options);
  for (std::size_t k = 1; k < r.joint_path.size(); ++k) {
    const double step = (r.joint_path[k] - r.joint_path[k - 1]).norm();
    EXPECT_LT(step, 2.0) << "jump at waypoint " << k;
  }
}

TEST(Rmrc, ErrorStatsConsistent) {
  const auto chain = kin::makeSerpentine(12);
  const linalg::VecX q0 = bentStart(chain);
  auto path = testCircle(chain, 50);
  path.insert(path.begin(), kin::endEffectorPosition(chain, q0));
  const auto r = trackRmrc(chain, path, q0);
  double max_seen = 0.0;
  for (double e : r.tracking_error) max_seen = std::max(max_seen, e);
  EXPECT_DOUBLE_EQ(r.max_error, max_seen);
  EXPECT_LE(r.rms_error, r.max_error + 1e-12);
  EXPECT_GE(r.rms_error, 0.0);
}

}  // namespace
}  // namespace dadu::ik
