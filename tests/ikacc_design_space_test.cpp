// Design-space exploration and execution-trace tests.
#include <gtest/gtest.h>

#include "dadu/ikacc/accelerator.hpp"
#include "dadu/ikacc/design_space.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::acc {
namespace {

TEST(DesignSpace, GridIsCartesianProduct) {
  const auto grid = makeGrid({8, 32}, {16, 24, 32}, {64});
  EXPECT_EQ(grid.size(), 6u);
  // Every combination appears exactly once.
  int seen_8_16 = 0;
  for (const auto& p : grid)
    if (p.num_ssus == 8 && p.mm4_cycles == 16 && p.speculations == 64)
      ++seen_8_16;
  EXPECT_EQ(seen_8_16, 1);
}

TEST(DesignSpace, ExploreEvaluatesEveryPoint) {
  const auto chain = kin::makeSerpentine(12);
  const auto tasks = workload::generateTasks(chain, 2);
  const auto grid = makeGrid({8, 32}, {24}, {16, 64});
  ik::SolveOptions options;

  const auto results = exploreDesignSpace(chain, tasks, grid, options);
  ASSERT_EQ(results.size(), grid.size());
  for (const auto& r : results) {
    EXPECT_GT(r.latency_ms, 0.0);
    EXPECT_GT(r.energy_mj, 0.0);
    EXPECT_GT(r.area_mm2, 0.0);
    EXPECT_GT(r.mean_iterations, 0.0);
    EXPECT_GT(r.convergence_rate, 0.0);
    EXPECT_NEAR(r.edp(), r.energy_mj * r.latency_ms, 1e-15);
  }
}

TEST(DesignSpace, MoreSsusCostMoreAreaLessLatency) {
  const auto chain = kin::makeSerpentine(25);
  const auto tasks = workload::generateTasks(chain, 2);
  const auto grid = makeGrid({8, 64}, {24}, {64});
  const auto results = exploreDesignSpace(chain, tasks, grid, {});
  ASSERT_EQ(results.size(), 2u);
  const auto& small = results[0];
  const auto& big = results[1];
  EXPECT_LT(small.area_mm2, big.area_mm2);
  EXPECT_GE(small.latency_ms, big.latency_ms);
}

TEST(DesignSpace, FasterFkuReducesLatency) {
  const auto chain = kin::makeSerpentine(25);
  const auto tasks = workload::generateTasks(chain, 2);
  const auto results =
      exploreDesignSpace(chain, tasks, makeGrid({32}, {8, 48}, {64}), {});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_LT(results[0].latency_ms, results[1].latency_ms);
}

TEST(DesignSpace, ParetoRemovesDominatedPoints) {
  std::vector<DesignResult> all(3);
  all[0].latency_ms = 1.0; all[0].energy_mj = 1.0; all[0].area_mm2 = 1.0;
  all[1].latency_ms = 2.0; all[1].energy_mj = 2.0; all[1].area_mm2 = 2.0;  // dominated
  all[2].latency_ms = 0.5; all[2].energy_mj = 3.0; all[2].area_mm2 = 1.0;  // trade-off
  const auto front = paretoFront(all);
  ASSERT_EQ(front.size(), 2u);
  for (const auto& r : front) EXPECT_NE(r.latency_ms, 2.0);
}

TEST(DesignSpace, ParetoKeepsIncomparablePoints) {
  std::vector<DesignResult> all(2);
  all[0].latency_ms = 1.0; all[0].energy_mj = 2.0; all[0].area_mm2 = 1.0;
  all[1].latency_ms = 2.0; all[1].energy_mj = 1.0; all[1].area_mm2 = 1.0;
  EXPECT_EQ(paretoFront(all).size(), 2u);
}

TEST(DesignSpace, ParetoOfRealSweepIsNonEmptySubset) {
  const auto chain = kin::makeSerpentine(12);
  const auto tasks = workload::generateTasks(chain, 2);
  const auto all = exploreDesignSpace(
      chain, tasks, makeGrid({8, 16, 32, 64}, {16, 32}, {64}), {});
  const auto front = paretoFront(all);
  EXPECT_GE(front.size(), 1u);
  EXPECT_LE(front.size(), all.size());
}

TEST(Trace, RecordsOneEntryPerIteration) {
  const auto chain = kin::makeSerpentine(25);
  ik::SolveOptions options;
  IkAccelerator hw(chain, options);
  const auto task = workload::generateTask(chain, 0);
  const auto r = hw.solve(task.target, task.seed);
  ASSERT_TRUE(r.converged());
  const SolveTrace& trace = hw.lastTrace();
  ASSERT_EQ(static_cast<int>(trace.size()), r.iterations);

  long long prev_cum = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].iteration, static_cast<int>(i) + 1);  // 1-based
    EXPECT_GT(trace[i].spu_cycles, 0);
    EXPECT_GT(trace[i].wave_cycles, trace[i].spu_cycles);  // waves dominate
    EXPECT_GT(trace[i].cumulative_cycles, prev_cum);
    prev_cum = trace[i].cumulative_cycles;
    EXPECT_GE(trace[i].selected_k, 1);
    EXPECT_LE(trace[i].selected_k, options.speculations);
    EXPECT_GE(trace[i].alpha_base, 0.0);
  }
  // Final trace error is the converged error.
  EXPECT_DOUBLE_EQ(trace.back().error, r.error);
  // Trace errors are non-increasing (selector argmin property).
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_LE(trace[i].error, trace[i - 1].error + 1e-12);
}

TEST(Trace, ResetBetweenSolves) {
  const auto chain = kin::makeSerpentine(12);
  IkAccelerator hw(chain, {});
  const auto t0 = workload::generateTask(chain, 0);
  (void)hw.solve(t0.target, t0.seed);
  const std::size_t first = hw.lastTrace().size();
  (void)hw.solve(t0.target, t0.seed);
  EXPECT_EQ(hw.lastTrace().size(), first);
}

}  // namespace
}  // namespace dadu::acc
