// Chaos soak: client -> server -> service under a randomized fault
// plan.  The invariant under test is liveness accounting — every
// request submitted by a client thread ends in EXACTLY one of
// {solved, rejected, deadline-exceeded, client-side error}; nothing
// hangs and nothing is double-delivered — plus the conservation laws
// on both sides of the wire:
//
//   service:  submitted == solved + every reject bucket + deadlines
//             + internal errors                  (ServiceStats::accounted)
//   server:   dispatched == completed + orphaned
//
// The plan seed comes from DADU_CHAOS_SEED (default fixed, so the CI
// matrix run is reproducible) and is printed either way — reproducing
// any failure is `DADU_CHAOS_SEED=<seed> ./chaos_soak_test`.  Request
// volume comes from DADU_CHAOS_REQUESTS (default 10000, split across
// 4 client threads).
//
// Also here: the net-robustness regressions from the same issue — a
// client killed mid-write (RST with a half-sent frame) must not take
// the server down, and completions that outlive a drain timeout must
// land in dadu_net_orphaned_completions instead of vanishing.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dadu/fault/fault.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/net/ik_client.hpp"
#include "dadu/net/ik_server.hpp"
#include "dadu/net/wire.hpp"
#include "dadu/service/ik_service.hpp"
#include "dadu/solvers/factory.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::net {
namespace {

using service::IkService;
using service::Request;
using service::Response;
using service::ResponseStatus;

constexpr int kDof = 6;

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t envU64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (!value || !*value) return fallback;
  return std::strtoull(value, nullptr, 0);
}

struct Harness {
  kin::Chain chain = kin::makeSerpentine(kDof);
  std::unique_ptr<IkService> service;
  std::unique_ptr<IkServer> server;

  explicit Harness(service::ServiceConfig svc_config = {},
                   ServerConfig srv_config = {}) {
    svc_config.workers = svc_config.workers ? svc_config.workers : 3;
    service = std::make_unique<IkService>(
        [chain = chain] { return ik::makeSolver("quick-ik", chain, {}); },
        svc_config);
    server = std::make_unique<IkServer>(*service, srv_config);
    server->start();
  }
  IkClient client(ClientConfig config = {}) {
    IkClient c;
    c.connect("127.0.0.1", server->port(), config);
    return c;
  }
};

/// Build the randomized plan: the rule set is fixed (every injection
/// point in the stack gets exercised), the probabilities are scaled
/// per-seed so different seeds explore different failure mixes.
fault::FaultPlan chaosPlan(std::uint64_t seed) {
  std::uint64_t rng = seed;
  const auto p = [&](double base) {
    // base/2 .. 2*base, deterministic in the seed.
    const double u =
        static_cast<double>(splitmix64(rng) >> 11) * 0x1p-53;
    return base * (0.5 + 1.5 * u);
  };
  fault::FaultPlan plan;
  plan.seed = seed;
  // Service layer: worker stalls, slow solves, solver throws, and
  // poisoned warm-start seeds.
  plan.delayAt("service.worker.stall", 0.5, {.probability = p(0.01)});
  plan.delayAt("service.worker.solve", 1.0, {.probability = p(0.01)});
  plan.errorAt("service.worker.solve", "chaos: injected solver fault",
               {.probability = p(0.005)});
  plan.corruptAt("service.seed_cache.seed", {.probability = p(0.05)});
  // Server socket path: short reads/writes, spurious EINTR, corrupted
  // inbound bytes, the occasional hard connection drop.
  plan.eintrAt("net.server.read", {.probability = p(0.02)});
  plan.truncateAt("net.server.read", 3, {.probability = p(0.02)});
  plan.corruptAt("net.server.read", {.probability = p(0.001)});
  plan.dropAt("net.server.read", {.probability = p(0.001)});
  plan.eintrAt("net.server.write", {.probability = p(0.02)});
  plan.truncateAt("net.server.write", 3, {.probability = p(0.02)});
  // Client socket path: same menu from the other side.
  plan.eintrAt("net.client.write", {.probability = p(0.02)});
  plan.truncateAt("net.client.write", 2, {.probability = p(0.02)});
  plan.corruptAt("net.client.write", {.probability = p(0.001)});
  plan.dropAt("net.client.write", {.probability = p(0.001)});
  plan.eintrAt("net.client.read", {.probability = p(0.02)});
  plan.truncateAt("net.client.read", 2, {.probability = p(0.02)});
  plan.dropAt("net.client.read", {.probability = p(0.001)});
  return plan;
}

// Body of the exactly-once soak, shared by the per-request and
// batched-dispatch variants: the coalescer must preserve the
// exactly-one-outcome and conservation invariants under the same
// randomized fault plan.
void runExactlyOnceSoak(std::size_t max_batch, std::uint32_t batch_wait_us) {
  const std::uint64_t seed = envU64("DADU_CHAOS_SEED", 0xDADBull);
  const std::uint64_t total = envU64("DADU_CHAOS_REQUESTS", 10'000);
  constexpr int kThreads = 4;
  const std::uint64_t per_thread = (total + kThreads - 1) / kThreads;
  std::cout << "[ chaos  ] seed=" << seed << " requests=" << total
            << " (reproduce: DADU_CHAOS_SEED=" << seed << ")" << std::endl;
  ::testing::Test::RecordProperty("chaos_seed", std::to_string(seed));

  service::ServiceConfig svc_config;
  svc_config.queue_capacity = 64;
  svc_config.enable_seed_cache = true;
  svc_config.breaker.enabled = true;
  svc_config.breaker.shed_queue_depth = 16;
  svc_config.breaker.trip_queue_depth = 48;
  svc_config.breaker.trip_p99_ms = 250.0;
  svc_config.breaker.open_ms = 10.0;
  svc_config.breaker.half_open_probes = 2;
  svc_config.max_batch = max_batch;
  svc_config.batch_wait_us = batch_wait_us;
  Harness h(svc_config);

  fault::ScopedFaultPlan plan(chaosPlan(seed));

  std::atomic<std::uint64_t> solved{0}, rejected{0}, deadline{0}, errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ClientConfig config;
      config.io_timeout_ms = 300.0;  // bounds corrupted-frame stalls
      config.retry.max_attempts = 5;
      config.retry.base_backoff_ms = 0.5;
      config.retry.max_backoff_ms = 5.0;
      config.retry.budget = 1u << 20;
      config.retry.seed = seed ^ static_cast<std::uint64_t>(t);
      IkClient client = h.client(config);
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        const auto task = workload::generateTask(
            h.chain, static_cast<std::uint32_t>(t * per_thread + i));
        Request request;
        request.target = task.target;
        request.seed = task.seed;
        request.use_seed_cache = (i % 3) == 0;
        if ((i % 7) == 0) request.deadline_ms = 50.0;
        if ((i % 13) == 0) request.priority = service::Priority::kLow;
        try {
          const Response r = client.callWithRetry(request);
          switch (r.status) {
            case ResponseStatus::kSolved: solved++; break;
            case ResponseStatus::kRejected: rejected++; break;
            case ResponseStatus::kDeadlineExceeded: deadline++; break;
          }
        } catch (const std::exception&) {
          errors++;  // terminal client-side failure is a valid outcome
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // The exactly-once invariant: every submitted request resolved to
  // one and only one outcome — no hangs (we got here), no losses.
  EXPECT_EQ(solved + rejected + deadline + errors,
            per_thread * kThreads);
  EXPECT_GT(solved.load(), 0u);
  std::cout << "[ chaos  ] solved=" << solved << " rejected=" << rejected
            << " deadline=" << deadline << " client_errors=" << errors
            << " injected_fires="
            << fault::FaultInjector::global().totalFires() << std::endl;

  // On the wire side after a full drain: every dispatched request
  // either completed back through the loop or was counted orphaned.
  h.server->stop();
  const NetStats net_stats = h.server->stats();
  EXPECT_EQ(net_stats.requests_dispatched,
            net_stats.requests_completed + net_stats.orphaned_completions);

  // Conservation on the service side, read only after both stops so no
  // request is still in flight (requests whose *client* gave up keep
  // running server-side until the drain finishes them): every submit
  // landed in exactly one terminal counter bucket.
  h.service->stop();
  const service::ServiceStats svc_stats = h.service->stats();
  EXPECT_EQ(svc_stats.submitted, svc_stats.accounted());

  if (max_batch > 1) {
    // The coalescer actually ran, and every lane that entered a
    // counted burst landed in exactly one of its terminal buckets.
    EXPECT_GT(svc_stats.batches, 0u);
    EXPECT_EQ(svc_stats.batched_lanes,
              svc_stats.solved + svc_stats.deadline_expired +
                  svc_stats.internal_errors);
  }
}

TEST(ChaosSoak, EveryRequestGetsExactlyOneOutcome) {
  runExactlyOnceSoak(1, 0);
}

TEST(ChaosSoak, EveryRequestGetsExactlyOneOutcomeBatched) {
  runExactlyOnceSoak(8, 200);
}

/// Deterministic heavy-interference run: EINTR and 1-to-3-byte
/// truncations on every socket op with probability 1/2 must only slow
/// the stream down, never corrupt it — all replies still arrive and
/// still match their request ids.
TEST(ChaosSoak, ShortIoAndEintrPreserveTheStream) {
  Harness h;
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.eintrAt("net.server.read", {.probability = 0.5});
  plan.truncateAt("net.server.read", 3, {.probability = 0.5});
  plan.eintrAt("net.server.write", {.probability = 0.5});
  plan.truncateAt("net.server.write", 3, {.probability = 0.5});
  plan.eintrAt("net.client.write", {.probability = 0.5});
  plan.truncateAt("net.client.write", 1, {.probability = 0.5});
  plan.eintrAt("net.client.read", {.probability = 0.5});
  plan.truncateAt("net.client.read", 1, {.probability = 0.5});
  fault::ScopedFaultPlan armed(plan);

  IkClient client = h.client();
  // Pipeline a burst so truncated frames interleave, then collect.
  std::vector<std::uint64_t> ids;
  std::vector<Request> requests;
  for (std::uint32_t i = 0; i < 32; ++i) {
    const auto task = workload::generateTask(h.chain, i);
    Request request;
    request.target = task.target;
    request.seed = task.seed;
    request.use_seed_cache = false;
    requests.push_back(request);
    ids.push_back(client.sendRequest(request));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const ClientReply reply = client.waitFor(ids[i]);
    ASSERT_EQ(reply.type, MsgType::kResponse) << i;
    EXPECT_EQ(reply.response.id, ids[i]);
    EXPECT_EQ(toServiceResponse(reply.response).status,
              ResponseStatus::kSolved);
  }
  EXPECT_GT(fault::FaultInjector::global().totalFires(), 0u);
}

// ------------------------------------------------ orphan accounting

TEST(ChaosSoak, LongSolveOutlivingDrainIsCountedOrphaned) {
  ServerConfig srv_config;
  srv_config.drain_timeout_ms = 50.0;  // far shorter than the solve
  Harness h({}, srv_config);

  fault::FaultPlan plan;
  plan.delayAt("service.worker.solve", 400.0, {.limit = 1});
  fault::ScopedFaultPlan armed(plan);

  IkClient client = h.client();
  const auto task = workload::generateTask(h.chain, 0);
  Request request;
  request.target = task.target;
  request.seed = task.seed;
  request.use_seed_cache = false;
  client.sendRequest(request);

  // Wait until a worker has actually picked the request up (submitted
  // and out of the queue — it is then inside the 400ms injected
  // delay), then stop: the 50ms drain gives up while the solve is
  // still running.  Condition-polled rather than a fixed sleep so a
  // slow dispatch can't race the stop.
  const auto pickup_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((h.service->stats().submitted == 0 || h.service->queueDepth() > 0) &&
         std::chrono::steady_clock::now() < pickup_deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  h.server->stop();

  // The solve finishes into the dead sink; poll until the counter
  // reflects it.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (h.server->stats().orphaned_completions == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(h.server->stats().orphaned_completions, 1u);

  // The merged metrics dump must expose it under the dadu_net prefix.
  bool exported = false;
  for (const auto& counter : h.server->metrics().counters)
    if (counter.name == "dadu_net_orphaned_completions")
      exported = counter.value >= 1;
  EXPECT_TRUE(exported);
}

TEST(ChaosSoak, CleanShutdownOrphansNothing) {
  Harness h;
  IkClient client = h.client();
  for (std::uint32_t i = 0; i < 8; ++i) {
    const auto task = workload::generateTask(h.chain, i);
    Request request;
    request.target = task.target;
    request.seed = task.seed;
    request.use_seed_cache = false;
    EXPECT_EQ(client.call(request).status, ResponseStatus::kSolved);
  }
  h.server->stop();
  const NetStats stats = h.server->stats();
  EXPECT_EQ(stats.orphaned_completions, 0u);
  EXPECT_EQ(stats.requests_dispatched, stats.requests_completed);
}

// ------------------------------------------- mid-write client death

TEST(NetRobustness, ClientKilledMidWriteLeavesServerServing) {
  Harness h;

  // Half a valid request frame, then an abrupt RST (SO_LINGER 0).
  {
    WireRequest wire;
    wire.id = 1;
    wire.spec_id = 0;
    wire.target[0] = 0.3;
    wire.target[1] = 0.2;
    wire.target[2] = 0.1;
    wire.seed.assign(kDof, 0.0);
    std::vector<std::uint8_t> frame;
    encodeRequest(wire, frame);

    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(h.server->port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    ASSERT_EQ(::send(fd, frame.data(), frame.size() / 2, MSG_NOSIGNAL),
              static_cast<ssize_t>(frame.size() / 2));
    const linger abort_close{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &abort_close,
                 sizeof abort_close);
    ::close(fd);
  }

  // A second client that dies right after sending a FULL request: the
  // completion comes back to a dead connection and must be dropped
  // quietly (no SIGPIPE, no crash), not delivered or leaked.
  {
    IkClient doomed = h.client();
    const auto task = workload::generateTask(h.chain, 1);
    Request request;
    request.target = task.target;
    request.seed = task.seed;
    request.use_seed_cache = false;
    doomed.sendRequest(request);
    doomed.close();
  }

  // The server must still be fully alive for well-behaved clients.
  IkClient client = h.client();
  const auto task = workload::generateTask(h.chain, 2);
  Request request;
  request.target = task.target;
  request.seed = task.seed;
  request.use_seed_cache = false;
  const Response r = client.call(request);
  EXPECT_EQ(r.status, ResponseStatus::kSolved);
  EXPECT_TRUE(h.server->running());

  h.server->stop();
  const NetStats stats = h.server->stats();
  EXPECT_EQ(stats.requests_dispatched,
            stats.requests_completed + stats.orphaned_completions);
}

}  // namespace
}  // namespace dadu::net
