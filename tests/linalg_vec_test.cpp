// Unit tests for the fixed and dynamic vector types.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "dadu/linalg/vec.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::linalg {
namespace {

TEST(Vec3, DefaultIsZero) {
  const Vec3 v;
  EXPECT_EQ(v, Vec3::zero());
  EXPECT_DOUBLE_EQ(v.norm(), 0.0);
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_EQ(a / 2.0, Vec3(0.5, 1, 1.5));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1, 1, 1};
  v += {1, 2, 3};
  EXPECT_EQ(v, Vec3(2, 3, 4));
  v -= {1, 1, 1};
  EXPECT_EQ(v, Vec3(1, 2, 3));
  v *= 3.0;
  EXPECT_EQ(v, Vec3(3, 6, 9));
}

TEST(Vec3, DotAndNorm) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, -5, 6};
  EXPECT_DOUBLE_EQ(a.dot(b), 4 - 10 + 18);
  EXPECT_DOUBLE_EQ(a.squaredNorm(), 14.0);
  EXPECT_DOUBLE_EQ(a.norm(), std::sqrt(14.0));
}

TEST(Vec3, CrossProductFollowsRightHandRule) {
  EXPECT_EQ(Vec3::unitX().cross(Vec3::unitY()), Vec3::unitZ());
  EXPECT_EQ(Vec3::unitY().cross(Vec3::unitZ()), Vec3::unitX());
  EXPECT_EQ(Vec3::unitZ().cross(Vec3::unitX()), Vec3::unitY());
}

TEST(Vec3, CrossIsAntisymmetricAndOrthogonal) {
  const Vec3 a{1.3, -0.2, 2.1};
  const Vec3 b{0.4, 0.9, -1.7};
  const Vec3 c = a.cross(b);
  EXPECT_EQ(b.cross(a), -c);
  EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
  EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
}

TEST(Vec3, NormalizedHasUnitLength) {
  const Vec3 v{3, 4, 0};
  EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-15);
  EXPECT_EQ(Vec3::zero().normalized(), Vec3::zero());
}

TEST(Vec3, IndexAccess) {
  Vec3 v{7, 8, 9};
  EXPECT_DOUBLE_EQ(v[0], 7);
  EXPECT_DOUBLE_EQ(v[1], 8);
  EXPECT_DOUBLE_EQ(v[2], 9);
  v[1] = 42;
  EXPECT_DOUBLE_EQ(v.y, 42);
}

TEST(Vec4, PointAndDirection) {
  const Vec3 p{1, 2, 3};
  EXPECT_DOUBLE_EQ(Vec4::point(p).w, 1.0);
  EXPECT_DOUBLE_EQ(Vec4::direction(p).w, 0.0);
  EXPECT_EQ(Vec4::point(p).xyz(), p);
}

TEST(Vec4, DotAndNorm) {
  const Vec4 a{1, 0, 0, 1};
  EXPECT_DOUBLE_EQ(a.dot(a), 2.0);
  EXPECT_DOUBLE_EQ(a.norm(), std::sqrt(2.0));
}

TEST(VecX, ConstructionAndFill) {
  const VecX z(5);
  EXPECT_EQ(z.size(), 5u);
  for (double v : z) EXPECT_DOUBLE_EQ(v, 0.0);
  const VecX c = VecX::constant(3, 2.5);
  EXPECT_DOUBLE_EQ(c[0], 2.5);
  EXPECT_DOUBLE_EQ(c[2], 2.5);
}

TEST(VecX, InitializerListAndEquality) {
  const VecX v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v, VecX({1.0, 2.0, 3.0}));
  EXPECT_NE(v, VecX({1.0, 2.0, 3.1}));
}

TEST(VecX, Arithmetic) {
  const VecX a{1, 2, 3};
  const VecX b{10, 20, 30};
  EXPECT_EQ(a + b, VecX({11, 22, 33}));
  EXPECT_EQ(b - a, VecX({9, 18, 27}));
  EXPECT_EQ(a * 2.0, VecX({2, 4, 6}));
  EXPECT_EQ(2.0 * a, VecX({2, 4, 6}));
  EXPECT_EQ(-a, VecX({-1, -2, -3}));
}

TEST(VecX, DotNormMaxAbs) {
  const VecX a{3, -4, 0};
  EXPECT_DOUBLE_EQ(a.dot(a), 25.0);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.maxAbs(), 4.0);
  EXPECT_DOUBLE_EQ(VecX().maxAbs(), 0.0);
}

TEST(VecX, Axpy) {
  const VecX x{1, 2, 3};
  VecX y{10, 10, 10};
  axpy(0.5, x, y);
  EXPECT_EQ(y, VecX({10.5, 11, 11.5}));
}

TEST(VecX, AxpyInto) {
  const VecX x{1, 2, 3};
  const VecX y{1, 1, 1};
  VecX out(3);
  axpyInto(2.0, x, y, out);
  EXPECT_EQ(out, VecX({3, 5, 7}));
  // y untouched.
  EXPECT_EQ(y, VecX({1, 1, 1}));
}

TEST(VecX, SetZeroAndResize) {
  VecX v{1, 2, 3};
  v.setZero();
  EXPECT_EQ(v, VecX(3));
  v.resize(5);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v[4], 0.0);
}

TEST(VecX, StreamOutput) {
  std::ostringstream os;
  os << VecX{1, 2};
  EXPECT_EQ(os.str(), "[1, 2]");
}

}  // namespace
}  // namespace dadu::linalg
