// SVD and pseudoinverse property tests: reconstruction, orthogonality,
// ordering, rank behaviour and the four Moore-Penrose axioms.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "dadu/linalg/pseudoinverse.hpp"
#include "dadu/linalg/svd.hpp"
#include "dadu/workload/rng.hpp"

namespace dadu::linalg {
namespace {

MatX randomMatrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  workload::Rng rng(seed);
  MatX a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-2.0, 2.0);
  return a;
}

double orthoError(const MatX& u) {
  // ||U^T U - I||_F over the columns.
  const MatX g = u.transposed() * u;
  return (g - MatX::identity(g.rows())).frobeniusNorm();
}

TEST(Svd, DiagonalMatrixExact) {
  const MatX a{{3, 0}, {0, 2}};
  const Svd svd = svdJacobi(a);
  ASSERT_EQ(svd.s.size(), 2u);
  EXPECT_NEAR(svd.s[0], 3.0, 1e-12);
  EXPECT_NEAR(svd.s[1], 2.0, 1e-12);
}

TEST(Svd, SingularValuesOfKnownMatrix) {
  // A = [[1,0],[0,0]]: sigma = {1, 0}, rank 1.
  const MatX a{{1, 0}, {0, 0}};
  const Svd svd = svdJacobi(a);
  EXPECT_NEAR(svd.s[0], 1.0, 1e-12);
  EXPECT_NEAR(svd.s[1], 0.0, 1e-12);
  EXPECT_EQ(svd.rank(), 1u);
}

TEST(Svd, ConditionNumber) {
  const MatX a{{10, 0}, {0, 0.1}};
  const Svd svd = svdJacobi(a);
  EXPECT_NEAR(svd.conditionNumber(), 100.0, 1e-9);
}

TEST(Svd, RankDeficientConditionIsInfinite) {
  const MatX a{{1, 1}, {1, 1}};
  const Svd svd = svdJacobi(a);
  EXPECT_TRUE(std::isinf(svd.conditionNumber()));
}

using Shape = std::tuple<std::size_t, std::size_t>;

class SvdProperty : public ::testing::TestWithParam<Shape> {};

TEST_P(SvdProperty, ReconstructionOrthogonalityOrdering) {
  const auto [m, n] = GetParam();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const MatX a = randomMatrix(m, n, seed * 7919);
    const Svd svd = svdJacobi(a);

    // Reconstruction.
    const MatX rebuilt = svd.reconstruct();
    EXPECT_LT((rebuilt - a).frobeniusNorm(), 1e-9 * (1.0 + a.frobeniusNorm()))
        << m << "x" << n << " seed " << seed;

    // Orthonormal columns (full rank is generic for random inputs).
    EXPECT_LT(orthoError(svd.u), 1e-9);
    EXPECT_LT(orthoError(svd.v), 1e-9);

    // Descending non-negative singular values.
    for (std::size_t i = 0; i < svd.s.size(); ++i) {
      EXPECT_GE(svd.s[i], 0.0);
      if (i > 0) {
        EXPECT_LE(svd.s[i], svd.s[i - 1] + 1e-15);
      }
    }

    // Frobenius identity: ||A||_F^2 = sum sigma_i^2.
    double sq = 0.0;
    for (std::size_t i = 0; i < svd.s.size(); ++i) sq += svd.s[i] * svd.s[i];
    EXPECT_NEAR(std::sqrt(sq), a.frobeniusNorm(),
                1e-9 * (1.0 + a.frobeniusNorm()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdProperty,
    ::testing::Values(Shape{1, 1}, Shape{2, 2}, Shape{3, 3}, Shape{5, 5},
                      Shape{3, 12},   // the Jacobian shape, wide
                      Shape{3, 100},  // 100-DOF Jacobian
                      Shape{12, 3},   // tall
                      Shape{7, 4}, Shape{4, 7}));

class PinvProperty : public ::testing::TestWithParam<Shape> {};

TEST_P(PinvProperty, MoorePenroseAxioms) {
  const auto [m, n] = GetParam();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const MatX a = randomMatrix(m, n, seed * 104729);
    const MatX p = pseudoinverse(a);
    ASSERT_EQ(p.rows(), n);
    ASSERT_EQ(p.cols(), m);

    const double scale = 1.0 + a.frobeniusNorm() + p.frobeniusNorm();
    // 1. A A+ A = A
    EXPECT_LT((a * p * a - a).frobeniusNorm(), 1e-8 * scale);
    // 2. A+ A A+ = A+
    EXPECT_LT((p * a * p - p).frobeniusNorm(), 1e-8 * scale);
    // 3. (A A+)^T = A A+
    const MatX ap = a * p;
    EXPECT_LT((ap - ap.transposed()).frobeniusNorm(), 1e-8 * scale);
    // 4. (A+ A)^T = A+ A
    const MatX pa = p * a;
    EXPECT_LT((pa - pa.transposed()).frobeniusNorm(), 1e-8 * scale);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, PinvProperty,
                         ::testing::Values(Shape{2, 2}, Shape{3, 3},
                                           Shape{3, 8}, Shape{3, 50},
                                           Shape{8, 3}, Shape{5, 5}));

TEST(Pinv, RankDeficientZeroesNullDirections) {
  // Rank-1 matrix: pinv maps the null space to zero.
  const MatX a{{1, 1}, {1, 1}};
  const MatX p = pseudoinverse(a);
  // A+ of [[1,1],[1,1]] is [[0.25,0.25],[0.25,0.25]].
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) EXPECT_NEAR(p(i, j), 0.25, 1e-10);
}

TEST(Pinv, SolveMatchesAssembled) {
  const MatX a = randomMatrix(3, 20, 42);
  const Svd svd = svdJacobi(a);
  const VecX b{0.4, -1.0, 2.0};
  const VecX via_solve = pseudoinverseSolve(svd, b);
  const VecX via_matrix = pseudoinverse(a) * b;
  EXPECT_LT((via_solve - via_matrix).norm(), 1e-10);
}

TEST(Pinv, DampedIsBoundedNearSingularity) {
  // Nearly singular: plain pinv explodes, damped stays bounded.
  const MatX a{{1, 0}, {0, 1e-9}};
  const MatX damped = dampedPseudoinverse(a, 0.1);
  EXPECT_LT(damped.maxAbs(), 11.0);  // max weight is 1/(2*lambda) = 5
  const Svd svd = svdJacobi(a);
  const VecX x = dampedSolve(svd, {1.0, 1.0}, 0.1);
  EXPECT_LT(x.maxAbs(), 11.0);
}

TEST(Pinv, DampedConvergesToPinvAsLambdaVanishes) {
  const MatX a = randomMatrix(3, 6, 5);
  const MatX exact = pseudoinverse(a);
  const MatX nearly = dampedPseudoinverse(a, 1e-9);
  EXPECT_LT((exact - nearly).frobeniusNorm(), 1e-6);
}

TEST(Svd, FlopsPerSweepSymmetricInShape) {
  EXPECT_EQ(svdFlopsPerSweep(3, 100), svdFlopsPerSweep(100, 3));
  EXPECT_GT(svdFlopsPerSweep(3, 100), svdFlopsPerSweep(3, 10));
}

}  // namespace
}  // namespace dadu::linalg
