// dadu_obs unit tests: sharded counter exactness (serial and under
// concurrent writers), log-bucket histogram boundaries and percentile
// extraction, sink/span recording, and golden output for the
// Prometheus/JSON exporters.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "dadu/obs/export.hpp"
#include "dadu/obs/histogram.hpp"
#include "dadu/obs/sharded_counters.hpp"
#include "dadu/obs/sink.hpp"

namespace dadu::obs {
namespace {

// ------------------------------------------------- sharded counters

TEST(ShardedCounters, SingleThreadAddAndValue) {
  ShardedCounters counters(3, 4);
  counters.add(0);
  counters.add(0, 4);
  counters.add(2, 7);
  EXPECT_EQ(counters.value(0), 5u);
  EXPECT_EQ(counters.value(1), 0u);
  EXPECT_EQ(counters.value(2), 7u);
  const auto snap = counters.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0], 5u);
  EXPECT_EQ(snap[1], 0u);
  EXPECT_EQ(snap[2], 7u);
}

TEST(ShardedCounters, ShardCountRoundsUpToPowerOfTwo) {
  ShardedCounters counters(1, 5);
  EXPECT_EQ(counters.shards(), 8u);
  ShardedCounters one(1, 1);
  EXPECT_EQ(one.shards(), 1u);
}

TEST(ShardedCounters, ZeroCountersThrows) {
  EXPECT_THROW(ShardedCounters(0, 4), std::invalid_argument);
}

TEST(ShardedCounters, ThreadSlotIsStablePerThread) {
  const std::size_t mine = threadSlot();
  EXPECT_EQ(threadSlot(), mine);
  std::size_t other = mine;
  std::thread t([&] { other = threadSlot(); });
  t.join();
  EXPECT_NE(other, mine);
}

// No update is lost across concurrent writers, regardless of how
// threads map onto shards.  (Also the TSan target for the write path.)
TEST(ShardedCounters, ConcurrentWritersLoseNothing) {
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20'000;
  ShardedCounters counters(2, 4);  // fewer shards than threads on purpose
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&] {
      while (!go.load()) {
      }
      for (int i = 0; i < kAddsPerThread; ++i) {
        counters.add(0);
        counters.add(1, 2);
      }
    });
  go.store(true);
  // Reads race writes by design: snapshots must be monotone, not torn.
  std::uint64_t last = 0;
  for (int probe = 0; probe < 50; ++probe) {
    const std::uint64_t seen = counters.value(0);
    EXPECT_GE(seen, last);
    last = seen;
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(counters.value(0),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(counters.value(1),
            2u * static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

// --------------------------------------------------------- histogram

LatencyHistogram::Config smallConfig() {
  LatencyHistogram::Config config;
  config.min_value = 1.0;
  config.max_value = 100.0;
  config.buckets_per_decade = 1;  // bounds: 1, 10, 100
  return config;
}

TEST(Histogram, LadderCoversMinToMax) {
  const LatencyHistogram hist(smallConfig());
  const auto& bounds = hist.upperBounds();
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[1], 10.0);
  EXPECT_DOUBLE_EQ(bounds[2], 100.0);
}

TEST(Histogram, BadConfigThrows) {
  LatencyHistogram::Config config;
  config.min_value = 0.0;
  EXPECT_THROW(LatencyHistogram{config}, std::invalid_argument);
  config.min_value = 10.0;
  config.max_value = 1.0;
  EXPECT_THROW(LatencyHistogram{config}, std::invalid_argument);
  config.max_value = 100.0;
  config.buckets_per_decade = 0;
  EXPECT_THROW(LatencyHistogram{config}, std::invalid_argument);
}

TEST(Histogram, SamplesLandInCorrectBuckets) {
  LatencyHistogram hist(smallConfig());
  hist.record(0.5);    // underflow bucket 0 (value <= min)
  hist.record(1.0);    // exactly the first bound: bucket 0 (inclusive)
  hist.record(5.0);    // (1, 10]   -> bucket 1
  hist.record(10.0);   // inclusive -> bucket 1
  hist.record(50.0);   // (10, 100] -> bucket 2
  hist.record(500.0);  // overflow  -> bucket 3
  const auto snap = hist.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 6u);
  EXPECT_DOUBLE_EQ(snap.max, 500.0);
}

TEST(Histogram, HostileSamplesGoToUnderflow) {
  LatencyHistogram hist(smallConfig());
  hist.record(-3.0);
  hist.record(0.0);
  hist.record(std::numeric_limits<double>::quiet_NaN());
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.counts[0], 3u);
  EXPECT_EQ(snap.count, 3u);
}

TEST(Histogram, EmptySnapshotIsZero) {
  const LatencyHistogram hist{LatencyHistogram::Config{}};
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
  EXPECT_DOUBLE_EQ(snap.p50(), 0.0);
  EXPECT_DOUBLE_EQ(snap.p99(), 0.0);
}

TEST(Histogram, PercentilesOfKnownDistribution) {
  // 8 buckets/decade over [1e-3, 1e4] (the serving default): record a
  // uniform 1..100 ms grid and expect percentiles within one bucket
  // width (10^(1/8) ~ 1.33x) of the exact sample percentiles.
  LatencyHistogram hist{LatencyHistogram::Config{}};
  for (int v = 1; v <= 100; ++v) hist.record(static_cast<double>(v));
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_NEAR(snap.mean(), 50.5, 1e-9);  // sum is exact, not bucketed
  EXPECT_GT(snap.p50(), 50.0 / 1.34);
  EXPECT_LT(snap.p50(), 50.0 * 1.34);
  EXPECT_GT(snap.p90(), 90.0 / 1.34);
  EXPECT_LT(snap.p90(), 90.0 * 1.34);
  EXPECT_LE(snap.p99(), snap.max);
  EXPECT_GE(snap.p99(), snap.p90());
  EXPECT_GE(snap.p90(), snap.p50());
}

TEST(Histogram, PercentileNeverExceedsObservedMax) {
  LatencyHistogram hist(smallConfig());
  for (int i = 0; i < 10; ++i) hist.record(42.0);
  const auto snap = hist.snapshot();
  EXPECT_DOUBLE_EQ(snap.max, 42.0);
  EXPECT_LE(snap.p50(), 42.0);
  EXPECT_LE(snap.p99(), 42.0);
  EXPECT_GT(snap.p99(), 10.0);  // inside the (10, 100] bucket
}

TEST(Histogram, OverflowPercentileReportsMax) {
  LatencyHistogram hist(smallConfig());
  hist.record(1e6);
  hist.record(2e6);
  const auto snap = hist.snapshot();
  EXPECT_DOUBLE_EQ(snap.percentile(99.0), 2e6);
}

TEST(Histogram, ConcurrentRecordsAllCounted) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  LatencyHistogram hist{LatencyHistogram::Config{}};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i)
        hist.record(static_cast<double>(t + 1));
    });
  for (auto& w : writers) w.join();
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  // CAS-loop sum: exact for integer-valued samples at this scale.
  EXPECT_DOUBLE_EQ(snap.sum, (1.0 + 2.0 + 3.0 + 4.0) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.max, 4.0);
}

// -------------------------------------------------------------- sink

TEST(Sink, RecordingSinkRetainsEvents) {
  RecordingSink sink;
  sink.onSpan("solve", 1.5);
  sink.onSpan("solve", 2.5);
  sink.onSpan("queue", 0.25);
  sink.onCount("iterations", 7);
  sink.onCount("iterations", 3);
  EXPECT_EQ(sink.spans().size(), 3u);
  EXPECT_EQ(sink.spanCount("solve"), 2u);
  EXPECT_EQ(sink.spanCount("queue"), 1u);
  EXPECT_EQ(sink.countTotal("iterations"), 10u);
  EXPECT_EQ(sink.countTotal("absent"), 0u);
  sink.clear();
  EXPECT_TRUE(sink.spans().empty());
  EXPECT_TRUE(sink.counts().empty());
}

TEST(Sink, ScopedSpanEmitsOnDestruction) {
  RecordingSink sink;
  {
    ScopedSpan span(&sink, "scope");
    EXPECT_EQ(sink.spanCount("scope"), 0u);  // not yet
  }
  ASSERT_EQ(sink.spanCount("scope"), 1u);
  EXPECT_GE(sink.spans()[0].elapsed_ms, 0.0);
}

TEST(Sink, NullSinkIsSafe) {
  ScopedSpan span(nullptr, "nothing");  // must not crash or emit
}

// --------------------------------------------------------- exporters

MetricsSnapshot goldenSnapshot() {
  MetricsSnapshot snap;
  snap.counters.push_back({"demo_requests", 12});
  snap.gauges.push_back({"demo_rate", 0.5, "ratio"});
  HistogramSample h;
  h.name = "demo_latency_ms";
  h.unit = "ms";
  h.hist.upper_bounds = {1.0, 10.0};
  h.hist.counts = {1, 2, 0};
  h.hist.count = 3;
  h.hist.sum = 8.0;
  h.hist.max = 6.0;
  snap.histograms.push_back(h);
  return snap;
}

TEST(Exporters, PrometheusGolden) {
  const std::string expected =
      "# TYPE demo_requests_total counter\n"
      "demo_requests_total 12\n"
      "# TYPE demo_rate gauge\n"
      "demo_rate 0.5\n"
      "# TYPE demo_latency_ms histogram\n"
      "demo_latency_ms_bucket{le=\"1\"} 1\n"
      "demo_latency_ms_bucket{le=\"10\"} 3\n"
      "demo_latency_ms_bucket{le=\"+Inf\"} 3\n"
      "demo_latency_ms_sum 8\n"
      "demo_latency_ms_count 3\n";
  EXPECT_EQ(renderPrometheus(goldenSnapshot()), expected);
}

TEST(Exporters, PrometheusSanitizesNames) {
  MetricsSnapshot snap;
  snap.counters.push_back({"bad name-1", 1});
  const std::string prom = renderPrometheus(snap);
  EXPECT_NE(prom.find("bad_name_1_total 1"), std::string::npos);
  EXPECT_EQ(prom.find("bad name"), std::string::npos);
}

TEST(Exporters, JsonGolden) {
  const std::string expected =
      "[\n"
      "  {\"metric\": \"demo_requests\", \"value\": 12.000000, \"unit\": "
      "\"count\"},\n"
      "  {\"metric\": \"demo_rate\", \"value\": 0.500000, \"unit\": "
      "\"ratio\"},\n"
      "  {\"metric\": \"demo_latency_ms_count\", \"value\": 3.000000, "
      "\"unit\": \"count\"},\n"
      "  {\"metric\": \"demo_latency_ms_mean\", \"value\": 2.666667, "
      "\"unit\": \"ms\"},\n"
      "  {\"metric\": \"demo_latency_ms_p50\", \"value\": 5.500000, \"unit\": "
      "\"ms\"},\n"
      "  {\"metric\": \"demo_latency_ms_p90\", \"value\": 6.000000, \"unit\": "
      "\"ms\"},\n"
      "  {\"metric\": \"demo_latency_ms_p99\", \"value\": 6.000000, \"unit\": "
      "\"ms\"},\n"
      "  {\"metric\": \"demo_latency_ms_max\", \"value\": 6.000000, \"unit\": "
      "\"ms\"}\n"
      "]\n";
  EXPECT_EQ(renderJson(goldenSnapshot()), expected);
}

TEST(Exporters, TextRenderingMentionsEverySection) {
  const std::string text = renderText(goldenSnapshot());
  EXPECT_NE(text.find("demo_requests"), std::string::npos);
  EXPECT_NE(text.find("demo_rate"), std::string::npos);
  EXPECT_NE(text.find("demo_latency_ms"), std::string::npos);
  EXPECT_NE(text.find("count 3"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);  // at least one bar
}

}  // namespace
}  // namespace dadu::obs
