// Single-step algebraic properties relating the solver family: the
// speculation set contains the Eq. 8 step (k = Max), so one Quick-IK
// iteration can never end with a larger error than one Eq.-8 step from
// the same state; the stability gain formula; fixed-alpha stability
// boundary behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/solvers/jt_common.hpp"
#include "dadu/solvers/jt_eq8.hpp"
#include "dadu/solvers/jt_fixed_alpha.hpp"
#include "dadu/solvers/jt_serial.hpp"
#include "dadu/solvers/quick_ik.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::ik {
namespace {

TEST(StepProperty, QuickIkSingleStepNeverWorseThanEq8Step) {
  // One iteration each from identical states: Quick-IK's argmin is
  // over a candidate set that includes the exact Eq. 8 step (k = Max),
  // so its post-step error is <= the Eq. 8 post-step error.
  const auto chain = kin::makeSerpentine(25);
  SolveOptions one_iter;
  one_iter.max_iterations = 1;
  one_iter.accuracy = 1e-12;  // force the full iteration
  for (int t = 0; t < 6; ++t) {
    const auto task = workload::generateTask(chain, t);
    QuickIkSolver quick(chain, one_iter);
    JtEq8Solver eq8(chain, one_iter);
    const auto rq = quick.solve(task.target, task.seed);
    const auto re = eq8.solve(task.target, task.seed);
    EXPECT_LE(rq.error, re.error + 1e-12) << "task " << t;
  }
}

TEST(StepProperty, SpeculationSetContainsEq8Step) {
  // Direct check: the k = Max candidate IS theta + alpha_base * dtheta.
  const auto chain = kin::makeSerpentine(12);
  const auto task = workload::generateTask(chain, 2);
  JtWorkspace ws;
  const auto head = jtIterationHead(chain, task.seed, task.target, ws);
  ASSERT_FALSE(head.stalled);

  linalg::VecX eq8_step = task.seed;
  linalg::axpy(head.alpha_base, ws.dtheta_base, eq8_step);

  // Reproduce candidate k = Max of a 64-speculation sweep.
  linalg::VecX candidate(chain.dof());
  linalg::axpyInto((64.0 / 64.0) * head.alpha_base, ws.dtheta_base,
                   task.seed, candidate);
  EXPECT_EQ(candidate, eq8_step);
}

TEST(StabilityGain, PlanarFormula) {
  // Planar N-link, link L: lever arms at stretch are L, 2L, ..., NL
  // (from tip inwards), so sum = L^2 N(N+1)(2N+1)/6.
  const std::size_t n = 6;
  const double link = 0.3;
  const auto chain = kin::makePlanar(n, link);
  const double sum = link * link * n * (n + 1) * (2 * n + 1) / 6.0;
  EXPECT_NEAR(stabilityGain(chain, 4.0), 4.0 / sum, 1e-12);
  // Scales linearly with c.
  EXPECT_NEAR(stabilityGain(chain, 1.0) * 4.0, stabilityGain(chain, 4.0),
              1e-15);
}

TEST(StabilityGain, ShrinksRapidlyWithDof) {
  const double g12 = stabilityGain(kin::makeSerpentine(12));
  const double g100 = stabilityGain(kin::makeSerpentine(100));
  EXPECT_GT(g12, g100 * 100.0);  // ~ (100/12)^3 ~ 580x
}

TEST(StabilityGain, StableForSerpentineLadder) {
  // The gain must actually converge the original method at every DOF
  // of the paper's ladder (that is its whole purpose).
  for (std::size_t dof : {12u, 50u, 100u}) {
    const auto chain = kin::makeSerpentine(dof);
    SolveOptions options;
    JtSerialSolver solver(chain, options);
    const auto task = workload::generateTask(chain, 0);
    const auto r = solver.solve(task.target, task.seed);
    EXPECT_TRUE(r.converged()) << dof;
  }
}

TEST(FixedAlpha, ExcessiveGainDiverges) {
  // Far above the stability bound the fixed-gain iteration blows up
  // (errors grow) — the very hazard the conservative bound guards
  // against.
  const auto chain = kin::makeSerpentine(25);
  SolveOptions options;
  options.max_iterations = 60;
  options.record_history = true;
  const double safe = stabilityGain(chain);
  JtFixedAlphaSolver wild(chain, options, 500.0 * safe);
  const auto task = workload::generateTask(chain, 1);
  const auto r = wild.solve(task.target, task.seed);
  EXPECT_FALSE(r.converged());
  // Not merely slow: the tail error exceeds the initial error.
  ASSERT_GE(r.error_history.size(), 2u);
  EXPECT_GT(r.error_history.back(), r.error_history.front() * 0.5);
}

TEST(FixedAlpha, SafeGainErrorsNonIncreasing) {
  const auto chain = kin::makeSerpentine(12);
  SolveOptions options;
  options.max_iterations = 400;
  options.record_history = true;
  JtFixedAlphaSolver solver(chain, options, stabilityGain(chain, 1.0));
  const auto task = workload::generateTask(chain, 3);
  const auto r = solver.solve(task.target, task.seed);
  for (std::size_t i = 1; i < r.error_history.size(); ++i)
    EXPECT_LE(r.error_history[i], r.error_history[i - 1] * 1.001)
        << "at iteration " << i;
}

TEST(StepProperty, JacobianInvariantUnderBaseTranslation) {
  // Translating the whole robot does not change J (only positions
  // shift) — the update directions are frame-translation invariant.
  const auto chain = kin::makeSerpentine(10);
  std::vector<kin::Joint> joints = chain.joints();
  const kin::Chain moved(std::move(joints), "moved",
                         linalg::Mat4::translation({5.0, -2.0, 3.0}));

  linalg::VecX q(chain.dof());
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = 0.1 * (i % 4) - 0.15;
  const auto j0 = kin::positionJacobian(chain, q);
  const auto j1 = kin::positionJacobian(moved, q);
  EXPECT_LT((j0 - j1).maxAbs(), 1e-12);
  // And the end effector shifted by exactly the base offset.
  const auto p0 = kin::endEffectorPosition(chain, q);
  const auto p1 = kin::endEffectorPosition(moved, q);
  EXPECT_LT((p1 - (p0 + linalg::Vec3{5.0, -2.0, 3.0})).norm(), 1e-12);
}

TEST(StepProperty, QuickIkSolutionTranslatesWithWorld) {
  // Solving the translated problem from the translated seed gives the
  // same joint solution (full translation equivariance end to end).
  const auto chain = kin::makeSerpentine(12);
  std::vector<kin::Joint> joints = chain.joints();
  const linalg::Vec3 offset{1.0, 2.0, -0.5};
  const kin::Chain moved(std::move(joints), "moved",
                         linalg::Mat4::translation(offset));

  const auto task = workload::generateTask(chain, 4);
  QuickIkSolver a(chain, {});
  QuickIkSolver b(moved, {});
  const auto ra = a.solve(task.target, task.seed);
  const auto rb = b.solve(task.target + offset, task.seed);
  ASSERT_TRUE(ra.converged());
  ASSERT_TRUE(rb.converged());
  EXPECT_LT((ra.theta - rb.theta).norm(), 1e-9);
}

}  // namespace
}  // namespace dadu::ik
