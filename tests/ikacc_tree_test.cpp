// Tree-accelerator tests: functional equivalence with the software
// tree solver and cost scaling with branches.
#include <gtest/gtest.h>

#include "dadu/ikacc/accelerator.hpp"
#include "dadu/ikacc/tree_accelerator.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/workload/rng.hpp"

namespace dadu::acc {
namespace {

linalg::VecX randomConfig(std::size_t n, std::uint64_t seed) {
  workload::Rng rng(seed);
  linalg::VecX q(n);
  for (std::size_t i = 0; i < n; ++i) q[i] = rng.angle();
  return q;
}

TEST(TreeAccelerator, FunctionallyEqualsSoftwareTreeSolver) {
  const kin::Tree tree = kin::makeHumanoidUpperBody(4, 6);
  ik::SolveOptions options;
  ik::QuickIkTreeSolver software(tree, options);
  TreeIkAccelerator hardware(tree, options);

  const auto targets =
      tree.endEffectorPositions(randomConfig(tree.dof(), 41));
  const auto seed = randomConfig(tree.dof(), 42);
  const auto sw = software.solve(targets, seed);
  const auto hw = hardware.solve(targets, seed);
  EXPECT_EQ(sw.iterations, hw.iterations);
  EXPECT_EQ(sw.theta, hw.theta);
  EXPECT_EQ(sw.status, hw.status);
}

TEST(TreeAccelerator, StatsConsistent) {
  const kin::Tree tree = kin::makeHumanoidUpperBody(4, 6);
  ik::SolveOptions options;
  TreeIkAccelerator hw(tree, options);
  const auto targets =
      tree.endEffectorPositions(randomConfig(tree.dof(), 7));
  const auto r = hw.solve(targets, randomConfig(tree.dof(), 8));
  ASSERT_TRUE(r.converged());
  const AccStats& s = hw.lastStats();
  EXPECT_EQ(s.iterations, r.iterations);
  EXPECT_EQ(s.total_cycles, s.spu_cycles + s.ssu_cycles + s.scheduler_cycles +
                                s.selector_cycles);
  EXPECT_GT(s.time_ms, 0.0);
  EXPECT_GT(s.energyMj(), 0.0);
  EXPECT_GT(s.avg_power_mw, 0.0);
}

TEST(TreeAccelerator, SingleBranchCostsMatchChainAcceleratorScale) {
  // A 25-node single-branch tree should cost per-iteration roughly
  // what the 25-DOF chain accelerator costs (same datapath walk).
  const std::size_t dof = 25;
  ik::SolveOptions options;

  const kin::Tree tree = kin::makeSerpentineTree(dof);
  TreeIkAccelerator tree_acc(tree, options);
  const auto q = randomConfig(dof, 5);
  const auto tree_targets = tree.endEffectorPositions(randomConfig(dof, 6));
  const auto rt = tree_acc.solve(tree_targets, q);
  ASSERT_GT(rt.iterations, 0);
  const double tree_cycles_per_iter =
      static_cast<double>(tree_acc.lastStats().total_cycles) /
      static_cast<double>(rt.iterations + 1);

  const kin::Chain chain = kin::makeSerpentine(dof);
  IkAccelerator chain_acc(chain, options);
  const auto rc = chain_acc.solve(tree_targets[0], q);
  ASSERT_GT(rc.iterations, 0);
  const double chain_cycles_per_iter =
      static_cast<double>(chain_acc.lastStats().total_cycles) /
      static_cast<double>(rc.iterations);

  EXPECT_NEAR(tree_cycles_per_iter, chain_cycles_per_iter,
              0.25 * chain_cycles_per_iter);
}

TEST(TreeAccelerator, MoreEndEffectorsCostMorePerIteration) {
  // Same total DOF (18), one branch vs two; pin the budget to exactly
  // one full iteration so the totals are structurally comparable.
  ik::SolveOptions options;
  options.max_iterations = 1;
  options.accuracy = 1e-12;  // unreachable in one iteration
  const kin::Tree one = kin::makeSerpentineTree(18, 0.08);
  const kin::Tree two = kin::makeHumanoidUpperBody(4, 7, 0.08);
  ASSERT_EQ(one.dof(), two.dof());

  TreeIkAccelerator a(one, options);
  TreeIkAccelerator b(two, options);
  const auto ra = a.solve(one.endEffectorPositions(randomConfig(18, 1)),
                          randomConfig(18, 2));
  const auto rb = b.solve(two.endEffectorPositions(randomConfig(18, 3)),
                          randomConfig(18, 4));
  ASSERT_EQ(ra.iterations, 1);
  ASSERT_EQ(rb.iterations, 1);
  const long long ca = a.lastStats().total_cycles;
  const long long cb = b.lastStats().total_cycles;
  EXPECT_GT(cb, ca);  // extra error blocks and stacked epilogue
  EXPECT_LT(static_cast<double>(cb), 1.2 * static_cast<double>(ca));
}

}  // namespace
}  // namespace dadu::acc
