// SeedCache batched-lookup parity: lookupMany must return exactly the
// per-target results of scalar lookup() — hit flags, seed vectors
// (bitwise), stats deltas — across randomized workloads, forced hash
// collisions (hash_bits seam), neighbor search on/off, and
// exact-distance ties where only the probe order could diverge.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "dadu/service/seed_cache.hpp"

namespace dadu::service {
namespace {

linalg::VecX thetaFor(double tag, std::size_t dof = 6) {
  linalg::VecX v(dof);
  for (std::size_t i = 0; i < dof; ++i)
    v[i] = tag + 0.1 * static_cast<double>(i);
  return v;
}

/// Run the same query burst through lookupMany and per-target lookup()
/// on an identically-populated twin cache, asserting exact agreement.
void expectParity(const SeedCacheConfig& config,
                  const std::vector<std::pair<linalg::Vec3, linalg::VecX>>&
                      inserts,
                  const std::vector<linalg::Vec3>& queries) {
  SeedCache batched(config);
  SeedCache scalar(config);
  for (const auto& [target, theta] : inserts) {
    batched.insert(target, theta);
    scalar.insert(target, theta);
  }

  const std::size_t n = queries.size();
  std::vector<linalg::VecX> many_seeds(n);
  std::vector<unsigned char> many_hits(n);
  const std::size_t hit_count =
      batched.lookupMany(queries.data(), n, many_seeds.data(),
                         many_hits.data());

  std::size_t scalar_hits = 0;
  for (std::size_t q = 0; q < n; ++q) {
    linalg::VecX seed;
    const bool hit = scalar.lookup(queries[q], seed);
    scalar_hits += hit ? 1u : 0u;
    ASSERT_EQ(many_hits[q] != 0, hit) << "query " << q;
    if (hit)
      EXPECT_EQ(many_seeds[q], seed) << "query " << q << ": seed differs";
  }
  EXPECT_EQ(hit_count, scalar_hits);

  // Stats account identically: one hit-or-miss per query either way.
  const SeedCacheStats bs = batched.stats();
  const SeedCacheStats ss = scalar.stats();
  EXPECT_EQ(bs.hits, ss.hits);
  EXPECT_EQ(bs.misses, ss.misses);
  EXPECT_EQ(bs.hits + bs.misses, n);
}

TEST(SeedCacheLookupMany, RandomizedParityAcrossConfigs) {
  std::mt19937 rng(20260808);
  std::uniform_real_distribution<double> pos(-1.0, 1.0);

  for (const unsigned hash_bits : {64u, 2u}) {     // 2: heavy collisions
    for (const bool neighbors : {true, false}) {
      for (const std::size_t shards : {std::size_t{1}, std::size_t{16}}) {
        SeedCacheConfig config;
        config.cell_size = 0.1;
        config.max_distance = 0.12;  // beyond one cell: neighbors matter
        config.shards = shards;
        config.search_neighbors = neighbors;
        config.hash_bits = hash_bits;

        std::vector<std::pair<linalg::Vec3, linalg::VecX>> inserts;
        for (int i = 0; i < 200; ++i)
          inserts.push_back(
              {{pos(rng), pos(rng), pos(rng)}, thetaFor(0.01 * i)});

        // Queries: half near inserted points (likely hits), half fresh.
        std::vector<linalg::Vec3> queries;
        for (int q = 0; q < 60; ++q) {
          if (q % 2 == 0) {
            const auto& base = inserts[static_cast<std::size_t>(q) * 3].first;
            queries.push_back(
                {base.x + 0.03 * pos(rng), base.y + 0.03 * pos(rng),
                 base.z + 0.03 * pos(rng)});
          } else {
            queries.push_back({pos(rng) * 5.0, pos(rng) * 5.0, pos(rng) * 5.0});
          }
        }
        expectParity(config, inserts, queries);
      }
    }
  }
}

TEST(SeedCacheLookupMany, ExactDistanceTieMatchesScalarProbeOrder) {
  // Pairs of cached entries EXACTLY equidistant from their query but in
  // different cells: scalar lookup keeps the first-probed cell's entry,
  // and the batch path must pick the same one even though its probes
  // execute shard-major.  Every coordinate is a dyadic rational so the
  // two squared distances are bitwise-equal doubles — a genuine tie,
  // not a last-ulp near-miss.  Many mirrored pairs across distinct
  // cells ensure some pair's cells land in shard order that would
  // betray a probe-order-sensitive implementation.
  for (const unsigned hash_bits : {64u, 2u}) {
    SeedCacheConfig config;
    config.cell_size = 0.25;
    config.max_distance = 0.125;
    config.shards = 16;
    config.hash_bits = hash_bits;

    std::vector<std::pair<linalg::Vec3, linalg::VecX>> inserts;
    std::vector<linalg::Vec3> queries;
    for (int i = 0; i < 16; ++i) {
      // Query on the x cell border at x = i (i / 0.25 is an integer);
      // entries mirrored 0.0625 either side.  0.0625 is exact, so both
      // d2 values are exactly 0.00390625.
      const double qx = static_cast<double>(i);
      const linalg::Vec3 query{qx, 0.125, 0.125};
      inserts.push_back({{qx - 0.0625, 0.125, 0.125},
                         thetaFor(1.0 + i)});  // cell ix = 4i - 1
      inserts.push_back({{qx + 0.0625, 0.125, 0.125},
                         thetaFor(100.0 + i)});  // cell ix = 4i
      queries.push_back(query);
    }
    expectParity(config, inserts, queries);
  }
}

TEST(SeedCacheLookupMany, EmptyAndDegenerateBursts) {
  SeedCacheConfig config;
  SeedCache cache(config);
  EXPECT_EQ(cache.lookupMany(nullptr, 0, nullptr, nullptr), 0u);

  // All-miss burst on an empty cache.
  std::vector<linalg::Vec3> queries = {{0, 0, 0}, {1, 1, 1}};
  std::vector<linalg::VecX> seeds(2);
  std::vector<unsigned char> hits(2, 255);  // stale: must be cleared
  EXPECT_EQ(cache.lookupMany(queries.data(), 2, seeds.data(), hits.data()),
            0u);
  EXPECT_EQ(hits[0], 0);
  EXPECT_EQ(hits[1], 0);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(SeedCacheLookupMany, RingEvictionStateStaysInParity) {
  // Overfill one cell so ring replacement engages; parity must hold on
  // the post-eviction contents.
  SeedCacheConfig config;
  config.cell_size = 0.5;
  config.max_entries_per_cell = 2;
  std::vector<std::pair<linalg::Vec3, linalg::VecX>> inserts;
  for (int i = 0; i < 7; ++i)
    inserts.push_back(
        {{0.1 + 0.01 * i, 0.1, 0.1}, thetaFor(static_cast<double>(i))});
  expectParity(config, inserts, {{0.12, 0.1, 0.1}, {0.16, 0.1, 0.1}});
}

}  // namespace
}  // namespace dadu::service
