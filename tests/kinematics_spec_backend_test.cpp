// Speculation-backend tests: registry/dispatch sanity, bit-exact
// parity of every carried wide backend (AVX2, AVX-512) against the
// scalar reference across DOF x K grids — revolute and prismatic
// chains, clamped and free, ragged lane ranges, grouped sweeps — the
// walk-slicing cache seam, and solver-level identity at K > the fused
// budget.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "dadu/kinematics/backends/spec_backend.hpp"
#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/forward_batch.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/solvers/quick_ik.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu {
namespace {

using kin::BatchedForward;
using kin::SpecBackend;

// Backends this binary carries AND this CPU can execute.  Always holds
// at least the scalar backend.
std::vector<const SpecBackend*> runnableBackends() {
  std::vector<const SpecBackend*> out;
  for (const SpecBackend* b : kin::allSpecBackends())
    if (kin::specBackendSupported(*b)) out.push_back(b);
  return out;
}

kin::Chain makeMixedChain(std::size_t dof) {
  std::vector<kin::Joint> joints;
  for (std::size_t i = 0; i < dof; ++i) {
    kin::DhParam dh;
    dh.a = 0.08;
    dh.alpha = (i % 2 == 0) ? 1.5707963267948966 : -1.5707963267948966;
    if (i % 3 == 2) {
      dh.theta = 0.2;
      joints.push_back(kin::prismatic(dh, 0.0, 0.15));
    } else {
      joints.push_back(kin::revolute(dh));
    }
  }
  return kin::Chain(std::move(joints), "mixed");
}

linalg::VecX patternVec(std::size_t n, double scale, double phase) {
  linalg::VecX v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = scale * std::sin(0.7 * static_cast<double>(i) + phase);
  return v;
}

std::vector<double> alphaLadder(int max_spec, double alpha_base) {
  std::vector<double> alphas(static_cast<std::size_t>(max_spec));
  for (int k = 1; k <= max_spec; ++k)
    alphas[k - 1] = (static_cast<double>(k) / max_spec) * alpha_base;
  return alphas;
}

/// ULP distance between two doubles of the same sign ordering; 0 means
/// bit-identical (modulo +0/-0, which compare equal).
std::int64_t ulpDiff(double a, double b) {
  if (a == b) return 0;
  std::int64_t ia, ib;
  std::memcpy(&ia, &a, sizeof a);
  std::memcpy(&ib, &b, sizeof b);
  if (ia < 0) ia = std::numeric_limits<std::int64_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<std::int64_t>::min() - ib;
  const std::int64_t d = ia - ib;
  return d < 0 ? -d : d;
}

TEST(SpecBackendRegistry, ScalarIsAlwaysPresentAndRunnable) {
  const SpecBackend& scalar = kin::scalarSpecBackend();
  EXPECT_STREQ(scalar.name(), "scalar");
  EXPECT_TRUE(kin::specBackendSupported(scalar));
  EXPECT_EQ(kin::specBackendByName("scalar"), &scalar);
  EXPECT_EQ(kin::specBackendByName("no-such-backend"), nullptr);
}

TEST(SpecBackendRegistry, CapsAreSane) {
  for (const SpecBackend* b : kin::allSpecBackends()) {
    const kin::SpecBackendCaps caps = b->caps();
    EXPECT_GE(caps.lane_multiple, 1u) << b->name();
    EXPECT_GE(caps.max_fused_lanes, caps.lane_multiple) << b->name();
    EXPECT_GE(caps.alignment, alignof(double)) << b->name();
    // Every CPU backend promises bit-identical arithmetic; a future
    // accelerator backend may relax this, the kernel tests key off it.
    EXPECT_EQ(caps.max_ulp_error, 0u) << b->name();
  }
}

TEST(SpecBackendRegistry, DispatchPicksARunnableBackend) {
  const SpecBackend& active = kin::dispatchedSpecBackend();
  EXPECT_TRUE(kin::specBackendSupported(active));
  EXPECT_EQ(kin::activeSpecBackendName(), active.name());
}

TEST(SpecBackendRegistry, OverrideRoundTrips) {
  const std::string original = kin::activeSpecBackendName();
  ASSERT_TRUE(kin::setSpecBackendOverride("scalar"));
  EXPECT_EQ(kin::activeSpecBackendName(), "scalar");
  // A BatchedForward constructed under the override binds scalar.
  BatchedForward batch;
  EXPECT_STREQ(batch.backend().name(), "scalar");
  EXPECT_FALSE(kin::setSpecBackendOverride("bogus"));
  EXPECT_EQ(kin::activeSpecBackendName(), "scalar") << "failed set must not change dispatch";
  ASSERT_TRUE(kin::setSpecBackendOverride(original));
  EXPECT_EQ(kin::activeSpecBackendName(), original);
}

// Every runnable wide backend must reproduce the scalar backend's
// candidates, positions and errors bit-for-bit (max_ulp_error == 0)
// across the DOF x K grid, on revolute-only and mixed prismatic
// chains, clamped and free.
TEST(SpecBackendParity, BitExactAcrossDofKGrid) {
  const auto backends = runnableBackends();
  for (const std::size_t dof : {7u, 30u, 100u}) {
    for (const int k_count : {8, 64, 256, 512}) {
      for (const bool mixed : {false, true}) {
        const kin::Chain chain =
            mixed ? makeMixedChain(dof) : kin::makeSerpentine(dof);
        const linalg::VecX theta = patternVec(dof, 0.4, 0.3);
        const linalg::VecX dtheta = patternVec(dof, 1.1, 1.9);
        const linalg::Vec3 target{0.3, -0.2, 0.5};
        const auto alphas = alphaLadder(k_count, 0.37);

        for (const bool clamp : {false, true}) {
          BatchedForward ref(BatchedForward::Precision::kF64,
                             &kin::scalarSpecBackend());
          ref.reset(chain, alphas.size());
          ref.evaluateLanes(chain, theta, dtheta, alphas.data(), target,
                            clamp, 0, alphas.size());

          for (const SpecBackend* backend : backends) {
            if (backend == &kin::scalarSpecBackend()) continue;
            BatchedForward wide(BatchedForward::Precision::kF64, backend);
            wide.reset(chain, alphas.size());
            wide.evaluateLanes(chain, theta, dtheta, alphas.data(), target,
                               clamp, 0, alphas.size());
            const std::size_t max_ulp = backend->caps().max_ulp_error;
            for (std::size_t k = 0; k < alphas.size(); ++k) {
              const linalg::Vec3 pr = ref.position(k);
              const linalg::Vec3 pw = wide.position(k);
              EXPECT_LE(ulpDiff(pr.x, pw.x), static_cast<std::int64_t>(max_ulp))
                  << backend->name() << " dof=" << dof << " K=" << k_count
                  << " mixed=" << mixed << " clamp=" << clamp << " lane " << k;
              EXPECT_LE(ulpDiff(pr.y, pw.y), static_cast<std::int64_t>(max_ulp));
              EXPECT_LE(ulpDiff(pr.z, pw.z), static_cast<std::int64_t>(max_ulp));
              EXPECT_LE(ulpDiff(ref.errors()[k], wide.errors()[k]),
                        static_cast<std::int64_t>(max_ulp))
                  << backend->name() << " lane " << k;
              linalg::VecX cr, cw;
              ref.candidateInto(k, cr);
              wide.candidateInto(k, cw);
              EXPECT_EQ(cr, cw) << backend->name() << " candidates lane " << k;
            }
          }
        }
      }
    }
  }
}

// Ragged tails: lane counts and sub-ranges that do not divide the
// vector width exercise the scalar tail path of the wide kernels.
TEST(SpecBackendParity, RaggedLaneRangesBitExact) {
  const auto chain = kin::makeSerpentine(30);
  const linalg::VecX theta = patternVec(30, 0.4, 0.0);
  const linalg::VecX dtheta = patternVec(30, 1.0, 1.0);
  const linalg::Vec3 target{0.3, 0.3, 0.3};
  const auto alphas = alphaLadder(13, 0.5);  // 13: never a lane multiple

  BatchedForward ref(BatchedForward::Precision::kF64,
                     &kin::scalarSpecBackend());
  ref.reset(chain, alphas.size());
  ref.evaluateLanes(chain, theta, dtheta, alphas.data(), target, false, 0,
                    alphas.size());

  for (const SpecBackend* backend : runnableBackends()) {
    BatchedForward wide(BatchedForward::Precision::kF64, backend);
    wide.reset(chain, alphas.size());
    // Odd split points: [0,5), [5,6), [6,13).
    wide.evaluateLanes(chain, theta, dtheta, alphas.data(), target, false, 0,
                       5);
    wide.evaluateLanes(chain, theta, dtheta, alphas.data(), target, false, 5,
                       6);
    wide.evaluateLanes(chain, theta, dtheta, alphas.data(), target, false, 6,
                       13);
    for (std::size_t k = 0; k < alphas.size(); ++k) {
      EXPECT_EQ(ref.position(k), wide.position(k))
          << backend->name() << " lane " << k;
      EXPECT_EQ(ref.errors()[k], wide.errors()[k]);
    }
  }
}

// Grouped sweeps run through the same backend seam: per-group results
// must equal per-group evaluateLanes calls on every backend.
TEST(SpecBackendParity, GroupedSweepMatchesPerGroupCalls) {
  const auto chain = kin::makeSerpentine(25);
  const linalg::Vec3 targets[3] = {
      {0.3, -0.2, 0.5}, {0.1, 0.4, -0.2}, {0.25, 0.25, 0.25}};
  const linalg::VecX thetas[3] = {patternVec(25, 0.4, 0.3),
                                  patternVec(25, 0.3, 1.1),
                                  patternVec(25, 0.5, 2.2)};
  const linalg::VecX dthetas[3] = {patternVec(25, 1.1, 1.9),
                                   patternVec(25, 0.9, 0.4),
                                   patternVec(25, 1.3, 2.8)};
  const std::size_t K = 19;  // ragged on purpose
  std::vector<double> alphas(3 * K);
  for (std::size_t g = 0; g < 3; ++g)
    for (std::size_t k = 0; k < K; ++k)
      alphas[g * K + k] =
          (static_cast<double>(k + 1) / static_cast<double>(K)) *
          (0.3 + 0.2 * static_cast<double>(g));

  for (const SpecBackend* backend : runnableBackends()) {
    BatchedForward grouped(BatchedForward::Precision::kF64, backend);
    grouped.reset(chain, 3 * K);
    BatchedForward::LaneGroup groups[3];
    for (std::size_t g = 0; g < 3; ++g)
      groups[g] = {&thetas[g], &dthetas[g], targets[g], g * K, (g + 1) * K};
    grouped.evaluateGrouped(chain, groups, 3, alphas.data(), false);

    BatchedForward single(BatchedForward::Precision::kF64, backend);
    single.reset(chain, 3 * K);
    for (std::size_t g = 0; g < 3; ++g)
      single.evaluateLanes(chain, thetas[g], dthetas[g], alphas.data(),
                           targets[g], false, g * K, (g + 1) * K);

    for (std::size_t k = 0; k < 3 * K; ++k) {
      EXPECT_EQ(grouped.position(k), single.position(k))
          << backend->name() << " lane " << k;
      EXPECT_EQ(grouped.errors()[k], single.errors()[k]);
    }
  }
}

// The cache seam: no contiguous walk may exceed the backend's fused
// budget, however large the lane range — and slicing must not change
// results (regression for the K > max_fused_lanes chunking defect).
TEST(SpecBackendSlicing, WalksNeverExceedFusedBudget) {
  const auto chain = kin::makeSerpentine(30);
  const linalg::VecX theta = patternVec(30, 0.4, 0.0);
  const linalg::VecX dtheta = patternVec(30, 1.0, 1.0);
  const linalg::Vec3 target{0.3, 0.3, 0.3};
  const auto alphas = alphaLadder(512, 0.5);

  for (const SpecBackend* backend : runnableBackends()) {
    const std::size_t budget = backend->caps().max_fused_lanes;
    ASSERT_LT(budget, alphas.size()) << "test needs K > budget";

    BatchedForward batch(BatchedForward::Precision::kF64, backend);
    batch.reset(chain, alphas.size());
    EXPECT_EQ(batch.maxWalkSliceLanes(), 0u) << "reset clears the seam";
    batch.evaluateLanes(chain, theta, dtheta, alphas.data(), target, false, 0,
                        alphas.size());
    EXPECT_LE(batch.maxWalkSliceLanes(), budget) << backend->name();
    EXPECT_GT(batch.maxWalkSliceLanes(), 0u);

    // A 512-lane group through evaluateGrouped slices identically.
    BatchedForward grouped(BatchedForward::Precision::kF64, backend);
    grouped.reset(chain, alphas.size());
    const BatchedForward::LaneGroup group{&theta, &dtheta, target, 0,
                                          alphas.size()};
    grouped.evaluateGrouped(chain, &group, 1, alphas.data(), false);
    EXPECT_LE(grouped.maxWalkSliceLanes(), budget);
    for (std::size_t k = 0; k < alphas.size(); ++k) {
      EXPECT_EQ(batch.position(k), grouped.position(k)) << "lane " << k;
      EXPECT_EQ(batch.errors()[k], grouped.errors()[k]);
    }
  }
}

// Solver-level regression for the chunk-sizing defect: a K=512 burst
// (K far above the fused budget) through solveMany must produce
// bit-identical results to per-lane solve() calls, and the kernel must
// have sliced every walk to the budget.
TEST(SpecBackendSlicing, SolveManyAtK512MatchesPerLaneSolves) {
  const auto chain = kin::makeSerpentine(20);
  ik::SolveOptions options;
  options.speculations = 512;
  options.max_iterations = 12;

  ik::QuickIkSolver batched(chain, options,
                            ik::QuickIkSolver::Execution::kSerial);
  ik::QuickIkSolver single(chain, options,
                           ik::QuickIkSolver::Execution::kSerial);

  constexpr std::size_t kLanes = 5;
  std::vector<workload::IkTask> tasks;
  std::vector<ik::BatchLane> lanes;
  for (std::size_t i = 0; i < kLanes; ++i)
    tasks.push_back(workload::generateTask(chain, static_cast<int>(i)));
  for (std::size_t i = 0; i < kLanes; ++i)
    lanes.push_back({tasks[i].target, &tasks[i].seed, {}});

  std::vector<ik::BatchLaneResult> out(kLanes);
  batched.solveMany(lanes.data(), out.data(), kLanes);

  for (std::size_t i = 0; i < kLanes; ++i) {
    ASSERT_FALSE(out[i].error) << "lane " << i;
    const ik::SolveResult ref = single.solve(tasks[i].target, tasks[i].seed);
    EXPECT_EQ(out[i].result.status, ref.status) << "lane " << i;
    EXPECT_EQ(out[i].result.iterations, ref.iterations);
    EXPECT_EQ(out[i].result.error, ref.error);
    EXPECT_EQ(out[i].result.theta, ref.theta) << "bit-identical required";
  }
}

// The f32 datapath ignores the backend parameter (it always runs the
// scalar reference walk): explicit wide construction must not change
// f32 results.
TEST(SpecBackendParity, F32PathUnaffectedByBackendChoice) {
  const auto chain = kin::makeSerpentine(40);
  const linalg::VecX theta = patternVec(40, 0.35, 1.2);
  const linalg::VecX dtheta = patternVec(40, 0.8, 0.6);
  const linalg::Vec3 target{0.1, 0.4, -0.2};
  const auto alphas = alphaLadder(16, 0.42);

  BatchedForward ref(BatchedForward::Precision::kF32,
                     &kin::scalarSpecBackend());
  ref.reset(chain, alphas.size());
  ref.evaluateLanes(chain, theta, dtheta, alphas.data(), target, false, 0,
                    alphas.size());
  for (const SpecBackend* backend : runnableBackends()) {
    BatchedForward wide(BatchedForward::Precision::kF32, backend);
    wide.reset(chain, alphas.size());
    wide.evaluateLanes(chain, theta, dtheta, alphas.data(), target, false, 0,
                       alphas.size());
    for (std::size_t k = 0; k < alphas.size(); ++k) {
      EXPECT_EQ(ref.position(k), wide.position(k))
          << backend->name() << " lane " << k;
      EXPECT_EQ(ref.errors()[k], wide.errors()[k]);
    }
  }
}

}  // namespace
}  // namespace dadu
