// Control-loop co-simulation tests: latency degrades tracking, zero
// latency tracks tightly, bookkeeping is consistent.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/simulation/control_loop.hpp"
#include "dadu/solvers/quick_ik.hpp"

namespace dadu::sim {
namespace {

struct Rig {
  kin::Chain chain = kin::makeSerpentine(25);
  ik::QuickIkSolver solver{chain, [] {
                             ik::SolveOptions o;
                             o.accuracy = 5e-3;
                             return o;
                           }()};
  linalg::VecX q0;
  Reference reference;

  Rig() {
    q0 = linalg::VecX(chain.dof());
    for (std::size_t i = 0; i < q0.size(); ++i)
      q0[i] = (i % 2 == 0) ? 0.15 : -0.1;
    const linalg::Vec3 center{1.2, 0.0, 0.6};
    reference = [center](double t) {
      constexpr double kOmega = 2.0 * std::numbers::pi / 4.0;  // one lap/4s
      return center + linalg::Vec3{0.4 * std::cos(kOmega * t),
                                   0.4 * std::sin(kOmega * t), 0.0};
    };
  }

  IkOracle oracle() {
    return [this](const linalg::Vec3& target, const linalg::VecX& warm) {
      return solver.solve(target, warm).theta;
    };
  }
};

TEST(ControlLoop, LowLatencyTracksTightly) {
  Rig rig;
  ControlLoopConfig config;
  config.solver_latency_s = 0.5e-3;  // IKAcc class
  config.duration_s = 2.0;
  const auto r = simulateTracking(rig.chain, rig.reference, rig.oracle(),
                                  rig.q0, config);
  EXPECT_GT(r.ik_solves, 100);
  // Past the initial transient (slewing from q0 onto the circle) the
  // error stays small; judge the second half of the run.
  EXPECT_LT(r.error_trace.back(), 0.05);
  double steady_sq = 0.0;
  const std::size_t half = r.error_trace.size() / 2;
  for (std::size_t k = half; k < r.error_trace.size(); ++k)
    steady_sq += r.error_trace[k] * r.error_trace[k];
  EXPECT_LT(std::sqrt(steady_sq /
                      static_cast<double>(r.error_trace.size() - half)),
            0.1);
}

TEST(ControlLoop, LatencyMonotonicallyDegradesTracking) {
  Rig rig;
  double prev_rms = -1.0;
  for (const double latency : {1e-3, 30e-3, 300e-3}) {
    ControlLoopConfig config;
    config.solver_latency_s = latency;
    config.duration_s = 2.0;
    const auto r = simulateTracking(rig.chain, rig.reference, rig.oracle(),
                                    rig.q0, config);
    if (prev_rms >= 0.0) {
      EXPECT_GT(r.rms_error, prev_rms) << latency;
    }
    prev_rms = r.rms_error;
  }
}

TEST(ControlLoop, SlowerSolverCompletesFewerSolves) {
  Rig rig;
  ControlLoopConfig fast;
  fast.solver_latency_s = 1e-3;
  fast.duration_s = 1.0;
  ControlLoopConfig slow = fast;
  slow.solver_latency_s = 100e-3;
  const auto rf = simulateTracking(rig.chain, rig.reference, rig.oracle(),
                                   rig.q0, fast);
  const auto rs = simulateTracking(rig.chain, rig.reference, rig.oracle(),
                                   rig.q0, slow);
  EXPECT_GT(rf.ik_solves, 5 * rs.ik_solves);
}

TEST(ControlLoop, TraceLengthMatchesDuration) {
  Rig rig;
  ControlLoopConfig config;
  config.duration_s = 0.5;
  config.tick_s = 1e-3;
  const auto r = simulateTracking(rig.chain, rig.reference, rig.oracle(),
                                  rig.q0, config);
  EXPECT_EQ(r.error_trace.size(), 500u);
  double max_seen = 0.0;
  for (double e : r.error_trace) max_seen = std::max(max_seen, e);
  EXPECT_DOUBLE_EQ(r.max_error, max_seen);
}

TEST(ControlLoop, RateLimitBoundsJointMotion) {
  // With a tiny rate limit the arm cannot keep up: error stays large.
  Rig rig;
  ControlLoopConfig config;
  config.solver_latency_s = 1e-3;
  config.joint_rate_limit = 0.01;  // nearly frozen joints
  config.duration_s = 1.0;
  const auto slow = simulateTracking(rig.chain, rig.reference, rig.oracle(),
                                     rig.q0, config);
  config.joint_rate_limit = 5.0;
  const auto fast = simulateTracking(rig.chain, rig.reference, rig.oracle(),
                                     rig.q0, config);
  EXPECT_GT(slow.rms_error, fast.rms_error);
}

}  // namespace
}  // namespace dadu::sim
