// Adaptive-speculation Quick-IK and obstacle-field generator tests.
#include <gtest/gtest.h>

#include "dadu/kinematics/presets.hpp"
#include "dadu/kinematics/workspace.hpp"
#include "dadu/solvers/quick_ik.hpp"
#include "dadu/solvers/quick_ik_adaptive.hpp"
#include "dadu/workload/obstacles.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::ik {
namespace {

TEST(QuickIkAdaptive, ValidatesConstruction) {
  SolveOptions options;
  options.speculations = 0;
  EXPECT_THROW(QuickIkAdaptiveSolver(kin::makeSerpentine(12), options),
               std::invalid_argument);
  SolveOptions ok;
  EXPECT_THROW(QuickIkAdaptiveSolver(kin::makeSerpentine(12), ok, 0),
               std::invalid_argument);
  EXPECT_THROW(QuickIkAdaptiveSolver(kin::makeSerpentine(12), ok, 128),
               std::invalid_argument);
}

TEST(QuickIkAdaptive, ConvergesAcrossLadder) {
  for (std::size_t dof : {12u, 25u, 50u}) {
    const auto chain = kin::makeSerpentine(dof);
    QuickIkAdaptiveSolver solver(chain, {});
    for (int i = 0; i < 3; ++i) {
      const auto task = workload::generateTask(chain, i);
      const auto r = solver.solve(task.target, task.seed);
      EXPECT_TRUE(r.converged()) << dof << " task " << i;
    }
  }
}

TEST(QuickIkAdaptive, ReducesLoadAtSimilarIterations) {
  // The headline property: fewer FK evaluations than fixed-64
  // speculation across a batch, without materially more iterations.
  const auto chain = kin::makeSerpentine(50);
  SolveOptions options;
  QuickIkSolver fixed(chain, options);
  QuickIkAdaptiveSolver adaptive(chain, options);

  long long fixed_load = 0, adaptive_load = 0;
  double fixed_iters = 0.0, adaptive_iters = 0.0;
  for (int i = 0; i < 6; ++i) {
    const auto task = workload::generateTask(chain, i);
    const auto rf = fixed.solve(task.target, task.seed);
    const auto ra = adaptive.solve(task.target, task.seed);
    ASSERT_TRUE(rf.converged());
    ASSERT_TRUE(ra.converged());
    fixed_load += rf.speculation_load;
    adaptive_load += ra.speculation_load;
    fixed_iters += rf.iterations;
    adaptive_iters += ra.iterations;
  }
  EXPECT_LT(adaptive_load, fixed_load);
  EXPECT_LT(adaptive_iters, 3.0 * fixed_iters);
}

TEST(QuickIkAdaptive, MatchesFixedWhenFloorEqualsCeiling) {
  // min = max: adaptation disabled, identical to the fixed solver.
  const auto chain = kin::makeSerpentine(25);
  SolveOptions options;
  QuickIkSolver fixed(chain, options);
  QuickIkAdaptiveSolver pinned(chain, options, options.speculations);
  const auto task = workload::generateTask(chain, 2);
  const auto rf = fixed.solve(task.target, task.seed);
  const auto ra = pinned.solve(task.target, task.seed);
  EXPECT_EQ(rf.theta, ra.theta);
  EXPECT_EQ(rf.iterations, ra.iterations);
  EXPECT_EQ(rf.speculation_load, ra.speculation_load);
}

}  // namespace
}  // namespace dadu::ik

namespace dadu::workload {
namespace {

TEST(ObstacleField, RespectsKeepouts) {
  const auto chain = kin::makeSerpentine(25);
  const auto task = generateTask(chain, 0);
  ObstacleFieldOptions options;
  options.count = 8;
  options.keepout = 0.1;
  const auto field = generateObstacleField(chain, {task.target}, options);
  EXPECT_GE(field.size(), 4u);  // most placements should succeed
  for (const auto& sphere : field) {
    EXPECT_GE((sphere.center - task.target).norm(),
              sphere.radius + options.keepout - 1e-12);
    // Inside the workspace ball.
    EXPECT_LE(sphere.center.norm(), chain.maxReach());
    EXPECT_GE(sphere.radius, options.min_radius * chain.maxReach() - 1e-12);
    EXPECT_LE(sphere.radius, options.max_radius * chain.maxReach() + 1e-12);
  }
}

TEST(ObstacleField, DeterministicPerSeed) {
  const auto chain = kin::makeSerpentine(12);
  ObstacleFieldOptions options;
  options.seed = 5;
  const auto a = generateObstacleField(chain, {}, options);
  const auto b = generateObstacleField(chain, {}, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].center, b[i].center);
    EXPECT_DOUBLE_EQ(a[i].radius, b[i].radius);
  }
  options.seed = 6;
  const auto c = generateObstacleField(chain, {}, options);
  ASSERT_FALSE(c.empty());
  EXPECT_NE(a[0].center, c[0].center);
}

TEST(ObstacleField, ImpossibleKeepoutReturnsPartialField) {
  // A keepout covering the whole workspace leaves nowhere to place.
  const auto chain = kin::makeSerpentine(12);
  ObstacleFieldOptions options;
  options.keepout = 10.0 * chain.maxReach();
  const auto field =
      generateObstacleField(chain, {{0.0, 0.0, 0.0}}, options);
  EXPECT_TRUE(field.empty());
}

}  // namespace
}  // namespace dadu::workload
