// RRT-Connect planner tests.
#include <gtest/gtest.h>

#include <numbers>

#include "dadu/kinematics/presets.hpp"
#include "dadu/planning/rrt.hpp"

namespace dadu::plan {
namespace {

/// Planar arm with a ball obstacle blocking the straight-line sweep.
struct PlanarRig {
  kin::Chain chain = kin::makePlanar(3, 0.4);
  geom::RobotGeometry body{chain, 0.03};
  // Obstacle above the x axis at mid reach: the arm must dip below to
  // swing from pointing +x to pointing +y.
  geom::Obstacles obstacles = {{{0.55, 0.55, 0.0}, 0.22}};
  linalg::VecX start{0.0, 0.0, 0.0};                 // stretched along +x
  linalg::VecX goal{std::numbers::pi / 2, 0.0, 0.0}; // stretched along +y
};

TEST(Rrt, PathLengthHelper) {
  EXPECT_DOUBLE_EQ(pathLength({}), 0.0);
  EXPECT_DOUBLE_EQ(pathLength({linalg::VecX{0.0, 0.0}}), 0.0);
  EXPECT_DOUBLE_EQ(
      pathLength({linalg::VecX{0.0, 0.0}, linalg::VecX{3.0, 4.0}}), 5.0);
}

TEST(Rrt, StateAndEdgeChecks) {
  PlanarRig rig;
  RrtPlanner planner(rig.body, rig.obstacles, {});
  EXPECT_TRUE(planner.stateFree(rig.start));
  EXPECT_TRUE(planner.stateFree(rig.goal));
  // A configuration reaching into the obstacle.
  const linalg::VecX blocked{std::numbers::pi / 4, 0.0, 0.0};
  EXPECT_FALSE(planner.stateFree(blocked));
  // The direct edge sweeps through the blocked region.
  EXPECT_FALSE(planner.edgeFree(rig.start, rig.goal));
  // A short free edge.
  EXPECT_TRUE(planner.edgeFree(rig.start, {0.05, 0.05, 0.0}));
}

TEST(Rrt, TrivialPlanWithoutObstacles) {
  PlanarRig rig;
  RrtPlanner planner(rig.body, {}, {});
  const auto r = planner.plan(rig.start, rig.goal);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.path.size(), 2u);  // straight-line connect
  EXPECT_EQ(r.path.front(), rig.start);
  EXPECT_EQ(r.path.back(), rig.goal);
}

TEST(Rrt, PlansAroundObstacle) {
  PlanarRig rig;
  RrtOptions options;
  options.seed = 7;
  RrtPlanner planner(rig.body, rig.obstacles, options);
  const auto r = planner.plan(rig.start, rig.goal);
  ASSERT_TRUE(r.success) << "iterations " << r.iterations;
  ASSERT_GE(r.path.size(), 2u);
  EXPECT_EQ(r.path.front(), rig.start);
  EXPECT_EQ(r.path.back(), rig.goal);
  // Every edge of the returned path is collision-free.
  for (std::size_t i = 1; i < r.path.size(); ++i)
    EXPECT_TRUE(planner.edgeFree(r.path[i - 1], r.path[i])) << i;
  // And it is genuinely a detour (longer than the blocked straight line).
  EXPECT_GT(r.path_length, (rig.goal - rig.start).norm());
}

TEST(Rrt, DeterministicPerSeed) {
  PlanarRig rig;
  RrtOptions options;
  options.seed = 11;
  RrtPlanner a(rig.body, rig.obstacles, options);
  RrtPlanner b(rig.body, rig.obstacles, options);
  const auto ra = a.plan(rig.start, rig.goal);
  const auto rb = b.plan(rig.start, rig.goal);
  ASSERT_EQ(ra.success, rb.success);
  ASSERT_EQ(ra.path.size(), rb.path.size());
  for (std::size_t i = 0; i < ra.path.size(); ++i)
    EXPECT_EQ(ra.path[i], rb.path[i]);
}

TEST(Rrt, FailsCleanlyFromBlockedStart) {
  PlanarRig rig;
  RrtPlanner planner(rig.body, rig.obstacles, {});
  const linalg::VecX blocked{std::numbers::pi / 4, 0.0, 0.0};
  const auto r = planner.plan(blocked, rig.goal);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.empty());
}

TEST(Rrt, BudgetExhaustionReportsFailure) {
  PlanarRig rig;
  RrtOptions options;
  options.max_iterations = 2;  // far too few to cross the obstacle
  RrtPlanner planner(rig.body, rig.obstacles, options);
  const auto r = planner.plan(rig.start, rig.goal);
  EXPECT_FALSE(r.success);
  EXPECT_LE(r.iterations, 2);
}

TEST(Rrt, SmoothingShortensPaths) {
  PlanarRig rig;
  RrtOptions rough;
  rough.seed = 3;
  rough.smoothing_passes = 0;
  RrtOptions smooth = rough;
  smooth.smoothing_passes = 120;
  const auto r_rough = RrtPlanner(rig.body, rig.obstacles, rough)
                           .plan(rig.start, rig.goal);
  const auto r_smooth = RrtPlanner(rig.body, rig.obstacles, smooth)
                            .plan(rig.start, rig.goal);
  ASSERT_TRUE(r_rough.success);
  ASSERT_TRUE(r_smooth.success);
  EXPECT_LE(r_smooth.path_length, r_rough.path_length + 1e-9);
}

TEST(Rrt, WorksOnSpatialSerpentine) {
  const auto chain = kin::makeSerpentine(8);
  geom::RobotGeometry body(chain, 0.02);
  geom::Obstacles obstacles = {{{0.4, 0.0, 0.0}, 0.12}};
  RrtOptions options;
  options.seed = 5;
  RrtPlanner planner(body, obstacles, options);
  const linalg::VecX start(chain.dof(), 0.3);
  const linalg::VecX goal(chain.dof(), -0.3);
  const auto r = planner.plan(start, goal);
  ASSERT_TRUE(r.success);
  for (std::size_t i = 1; i < r.path.size(); ++i)
    EXPECT_TRUE(planner.edgeFree(r.path[i - 1], r.path[i]));
}

}  // namespace
}  // namespace dadu::plan
