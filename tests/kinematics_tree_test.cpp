// Kinematic-tree tests: topology validation, FK equivalence with
// chains on the degenerate single branch, ancestor logic, stacked
// Jacobian vs finite differences, humanoid preset structure.
#include <gtest/gtest.h>

#include <numbers>

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/kinematics/tree.hpp"
#include "dadu/workload/rng.hpp"

namespace dadu::kin {
namespace {

linalg::VecX randomConfig(std::size_t n, std::uint64_t seed) {
  workload::Rng rng(seed);
  linalg::VecX q(n);
  for (std::size_t i = 0; i < n; ++i) q[i] = rng.angle();
  return q;
}

TEST(Tree, ValidatesTopology) {
  // Forward parent reference (node 0 pointing at node 1) is rejected.
  std::vector<Tree::Node> bad = {{revolute({0.1, 0, 0, 0}), 0}};
  EXPECT_THROW(Tree(std::move(bad), {0}), std::invalid_argument);

  std::vector<Tree::Node> self_ref = {{revolute({0.1, 0, 0, 0}), -1},
                                      {revolute({0.1, 0, 0, 0}), 1}};
  EXPECT_THROW(Tree(std::move(self_ref), {1}), std::invalid_argument);

  EXPECT_THROW(Tree({}, {0}), std::invalid_argument);

  std::vector<Tree::Node> ok = {{revolute({0.1, 0, 0, 0}), -1}};
  EXPECT_THROW(Tree(std::move(ok), {}), std::invalid_argument);  // no EEs

  std::vector<Tree::Node> ok2 = {{revolute({0.1, 0, 0, 0}), -1}};
  EXPECT_THROW(Tree(std::move(ok2), {5}), std::invalid_argument);  // bad EE
}

TEST(Tree, SingleBranchMatchesChainFk) {
  for (std::size_t dof : {5u, 12u, 25u}) {
    const Tree tree = makeSerpentineTree(dof);
    const Chain chain = makeSerpentine(dof);
    const linalg::VecX q = randomConfig(dof, dof * 31);
    const auto tree_pos = tree.endEffectorPositions(q);
    ASSERT_EQ(tree_pos.size(), 1u);
    EXPECT_LT((tree_pos[0] - endEffectorPosition(chain, q)).norm(), 1e-12)
        << dof;
    EXPECT_DOUBLE_EQ(tree.maxReach(), chain.maxReach());
  }
}

TEST(Tree, AncestorLogic) {
  const Tree tree = makeHumanoidUpperBody(3, 4);  // 3 + 8 = 11 nodes
  // Torso joints are ancestors of both wrists.
  const auto& ees = tree.endEffectors();
  ASSERT_EQ(ees.size(), 2u);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_TRUE(tree.isAncestor(t, ees[0]));
    EXPECT_TRUE(tree.isAncestor(t, ees[1]));
  }
  // Left-arm joints (3..6) are NOT ancestors of the right wrist.
  for (std::size_t j = 3; j < 7; ++j) {
    EXPECT_TRUE(tree.isAncestor(j, ees[0]));
    EXPECT_FALSE(tree.isAncestor(j, ees[1]));
  }
  // A node is its own ancestor (moving that joint moves its frame).
  EXPECT_TRUE(tree.isAncestor(ees[0], ees[0]));
}

TEST(Tree, MovingOneArmLeavesOtherWristFixed) {
  const Tree tree = makeHumanoidUpperBody(3, 4);
  linalg::VecX q = randomConfig(tree.dof(), 17);
  const auto before = tree.endEffectorPositions(q);
  q[4] += 0.5;  // a left-arm joint
  const auto after = tree.endEffectorPositions(q);
  EXPECT_GT((after[0] - before[0]).norm(), 1e-6);   // left wrist moved
  EXPECT_LT((after[1] - before[1]).norm(), 1e-12);  // right wrist fixed
}

TEST(Tree, StackedJacobianMatchesFiniteDifference) {
  const Tree tree = makeHumanoidUpperBody(4, 5);
  const linalg::VecX q = randomConfig(tree.dof(), 3);
  const linalg::MatX j = tree.stackedJacobian(q);
  ASSERT_EQ(j.rows(), 6u);  // 2 EEs x 3
  ASSERT_EQ(j.cols(), tree.dof());

  const double h = 1e-6;
  for (std::size_t col = 0; col < tree.dof(); ++col) {
    linalg::VecX qp = q, qm = q;
    qp[col] += h;
    qm[col] -= h;
    const auto pp = tree.endEffectorPositions(qp);
    const auto pm = tree.endEffectorPositions(qm);
    for (std::size_t ee = 0; ee < 2; ++ee) {
      const linalg::Vec3 d = (pp[ee] - pm[ee]) / (2.0 * h);
      EXPECT_NEAR(j(3 * ee + 0, col), d.x, 1e-6) << ee << "," << col;
      EXPECT_NEAR(j(3 * ee + 1, col), d.y, 1e-6);
      EXPECT_NEAR(j(3 * ee + 2, col), d.z, 1e-6);
    }
  }
}

TEST(Tree, JacobianZeroOutsideAncestorPath) {
  const Tree tree = makeHumanoidUpperBody(3, 4);
  const linalg::MatX j = tree.stackedJacobian(randomConfig(tree.dof(), 9));
  const auto& ees = tree.endEffectors();
  // Right-arm joints contribute nothing to the left wrist's block.
  for (std::size_t col = 7; col < 11; ++col) {
    ASSERT_FALSE(tree.isAncestor(col, ees[0]));
    for (std::size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(j(r, col), 0.0);
  }
}

TEST(Tree, HumanoidPresetStructure) {
  const Tree tree = makeHumanoidUpperBody();  // 4 + 2*7
  EXPECT_EQ(tree.dof(), 18u);
  EXPECT_EQ(tree.endEffectorCount(), 2u);
  EXPECT_GT(tree.maxReach(), 0.0);
  // Both wrists are leaves at distinct positions at zero config.
  const auto pos = tree.endEffectorPositions(linalg::VecX(18));
  EXPECT_GT((pos[0] - pos[1]).norm(), 0.05);
}

TEST(Tree, RequireSizeThrows) {
  const Tree tree = makeSerpentineTree(5);
  EXPECT_THROW(tree.endEffectorPositions(linalg::VecX(4)),
               std::invalid_argument);
}

}  // namespace
}  // namespace dadu::kin
