// Unit and property tests for Cholesky and LU factorisations.
#include <gtest/gtest.h>

#include <cstdint>

#include "dadu/linalg/cholesky.hpp"
#include "dadu/linalg/lu.hpp"
#include "dadu/workload/rng.hpp"

namespace dadu::linalg {
namespace {

// Random SPD matrix A = B B^T + n*I.
MatX randomSpd(std::size_t n, std::uint64_t seed) {
  workload::Rng rng(seed);
  MatX b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.uniform(-1.0, 1.0);
  MatX a = b * b.transposed();
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

MatX randomSquare(std::size_t n, std::uint64_t seed) {
  workload::Rng rng(seed);
  MatX a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-2.0, 2.0);
  return a;
}

VecX randomVec(std::size_t n, std::uint64_t seed) {
  workload::Rng rng(seed ^ 0xabcdef);
  VecX v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.uniform(-3.0, 3.0);
  return v;
}

TEST(Cholesky, SolvesHandComputedSystem) {
  // A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2].
  const MatX a{{4, 2}, {2, 3}};
  const VecX b{10, 9};
  const auto x = choleskySolve(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.5, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  const MatX a{{1, 2}, {2, 1}};  // eigenvalues 3, -1
  EXPECT_FALSE(Cholesky::factor(a).has_value());
}

TEST(Cholesky, RejectsNaN) {
  MatX a{{1, 0}, {0, 1}};
  a(0, 0) = std::nan("");
  EXPECT_FALSE(Cholesky::factor(a).has_value());
}

TEST(Cholesky, DeterminantMatchesLu) {
  const MatX a = randomSpd(5, 11);
  const auto chol = Cholesky::factor(a);
  const auto lu = Lu::factor(a);
  ASSERT_TRUE(chol && lu);
  EXPECT_NEAR(chol->determinant(), lu->determinant(),
              1e-9 * std::abs(lu->determinant()));
}

class CholeskyRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskyRoundTrip, SolveResidualSmall) {
  const std::size_t n = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const MatX a = randomSpd(n, seed);
    const VecX b = randomVec(n, seed);
    const auto x = choleskySolve(a, b);
    ASSERT_TRUE(x.has_value());
    const VecX r = a * (*x) - b;
    EXPECT_LT(r.norm(), 1e-9 * (1.0 + b.norm())) << "n=" << n << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 40));

TEST(Cholesky, FactorReconstructs) {
  const MatX a = randomSpd(6, 3);
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol);
  const MatX l = chol->factorMatrix();
  const MatX rebuilt = l * l.transposed();
  EXPECT_LT((rebuilt - a).frobeniusNorm(), 1e-9 * a.frobeniusNorm());
}

TEST(Lu, SolvesHandComputedSystem) {
  const MatX a{{0, 1}, {2, 0}};  // needs pivoting
  const VecX b{3, 4};
  const auto x = luSolve(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 2.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(Lu, DetectsSingular) {
  const MatX a{{1, 2}, {2, 4}};
  EXPECT_FALSE(Lu::factor(a).has_value());
}

TEST(Lu, DeterminantSignWithPivoting) {
  const MatX a{{0, 1}, {1, 0}};  // permutation, det = -1
  const auto lu = Lu::factor(a);
  ASSERT_TRUE(lu);
  EXPECT_NEAR(lu->determinant(), -1.0, 1e-12);
}

class LuRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuRoundTrip, SolveAndInverse) {
  const std::size_t n = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const MatX a = randomSquare(n, seed);
    const auto lu = Lu::factor(a);
    ASSERT_TRUE(lu) << "random square matrix unexpectedly singular";
    const VecX b = randomVec(n, seed);
    const VecX x = lu->solve(b);
    EXPECT_LT((a * x - b).norm(), 1e-8 * (1.0 + b.norm()));

    const MatX inv = lu->inverse();
    const MatX eye = a * inv;
    EXPECT_LT((eye - MatX::identity(n)).frobeniusNorm(), 1e-8)
        << "n=" << n << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 6, 10, 20));

}  // namespace
}  // namespace dadu::linalg
