// Loopback integration tests for the dadu_net stack: a real IkServer
// on an ephemeral 127.0.0.1 port, real IkClient connections, real
// solves underneath.  Covers the acceptance criteria of the serving
// front-end: bit-identical round trips, malformed-frame isolation,
// slow-reader backpressure, and graceful drain under load.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "dadu/kinematics/presets.hpp"
#include "dadu/net/ik_client.hpp"
#include "dadu/net/ik_server.hpp"
#include "dadu/net/wire.hpp"
#include "dadu/service/ik_service.hpp"
#include "dadu/solvers/factory.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::net {
namespace {

using service::IkService;
using service::Request;
using service::Response;
using service::ResponseStatus;

constexpr int kDof = 6;

service::SolverFactory factoryFor(const kin::Chain& chain) {
  return [chain] { return ik::makeSolver("quick-ik", chain, {}); };
}

/// Service with the seed cache off: determinism across instances
/// depends on every solve starting from exactly the request's seed.
std::unique_ptr<IkService> makeService(const kin::Chain& chain,
                                       std::size_t workers = 2) {
  service::ServiceConfig config;
  config.workers = workers;
  config.queue_capacity = 256;
  config.enable_seed_cache = false;
  return std::make_unique<IkService>(factoryFor(chain), config);
}

Request makeRequest(const kin::Chain& chain, std::uint32_t index) {
  const auto task = workload::generateTask(chain, index);
  Request request;
  request.target = task.target;
  request.seed = task.seed;
  request.use_seed_cache = false;
  return request;
}

bool bitIdentical(const linalg::VecX& a, const linalg::VecX& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::bit_cast<std::uint64_t>(a[i]) != std::bit_cast<std::uint64_t>(b[i]))
      return false;
  return true;
}

/// Raw blocking TCP connection for protocol-abuse tests (the IkClient
/// refuses to send malformed bytes, so we go under it).
struct RawConn {
  int fd = -1;
  explicit RawConn(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }
  void send(const void* data, std::size_t len) const {
    ASSERT_EQ(::send(fd, data, len, MSG_NOSIGNAL),
              static_cast<ssize_t>(len));
  }
  /// True once the server closed its end (recv() returns 0 or reset).
  bool awaitClose(int timeout_ms = 2000) const {
    timeval tv{timeout_ms / 1000, (timeout_ms % 1000) * 1000};
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    char buf[256];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n == 0) return true;   // orderly close
      if (n < 0) return errno == ECONNRESET;  // reset also counts
    }
  }
};

struct Loopback {
  kin::Chain chain = kin::makeSerpentine(kDof);
  std::unique_ptr<IkService> service;
  std::unique_ptr<IkServer> server;

  explicit Loopback(ServerConfig config = {}, std::size_t workers = 2) {
    service = makeService(chain, workers);
    server = std::make_unique<IkServer>(*service, config);
    server->start();
  }
  IkClient client(ClientConfig config = {}) {
    IkClient c;
    c.connect("127.0.0.1", server->port(), config);
    return c;
  }
};

// -------------------------------------------------- round-trip fidelity

TEST(NetLoopbackTest, RoundTripIsBitIdenticalToInProcessSolve) {
  // Two *separate* services with identical factories: solver RNG state
  // advances per solve on an instance, so the reference must run on a
  // fresh service, not the served one.
  Loopback net;
  auto reference = makeService(net.chain);

  auto client = net.client();
  for (std::uint32_t i = 0; i < 8; ++i) {
    const Request request = makeRequest(net.chain, i);
    const Response over_wire = client.call(request);
    const Response in_process = reference->submit(request).get();

    ASSERT_EQ(over_wire.status, ResponseStatus::kSolved) << "request " << i;
    EXPECT_EQ(over_wire.result.status, in_process.result.status);
    EXPECT_EQ(over_wire.result.iterations, in_process.result.iterations);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(over_wire.result.error),
              std::bit_cast<std::uint64_t>(in_process.result.error));
    EXPECT_TRUE(bitIdentical(over_wire.result.theta, in_process.result.theta))
        << "request " << i;
  }
  EXPECT_EQ(net.server->stats().responses_sent, 8u);
}

TEST(NetLoopbackTest, PipelinedRepliesMatchByIdInAnyOrder) {
  Loopback net({}, /*workers=*/4);
  auto client = net.client();

  constexpr int kPipelined = 16;
  std::vector<std::uint64_t> ids;
  std::vector<Request> requests;
  for (int i = 0; i < kPipelined; ++i) {
    requests.push_back(makeRequest(net.chain, static_cast<std::uint32_t>(i)));
    ids.push_back(client.sendRequest(requests.back()));
  }
  // Collect in reverse submission order to force the stray buffer.
  auto reference = makeService(net.chain);
  for (int i = kPipelined - 1; i >= 0; --i) {
    const ClientReply reply = client.waitFor(ids[static_cast<std::size_t>(i)]);
    ASSERT_EQ(reply.type, MsgType::kResponse);
    const Response got = toServiceResponse(reply.response);
    const Response expected =
        reference->submit(requests[static_cast<std::size_t>(i)]).get();
    EXPECT_TRUE(bitIdentical(got.result.theta, expected.result.theta))
        << "request " << i;
  }
}

// -------------------------------------------------------- abuse / limits

TEST(NetLoopbackTest, MalformedFrameClosesOnlyThatConnection) {
  Loopback net;
  auto good = net.client();

  {
    RawConn bad(net.server->port());
    const std::uint8_t garbage[] = {0x10, 0x00, 0x00, 0x00, 0xde, 0xad,
                                    0xbe, 0xef, 0x00, 0x00, 0x00, 0x00,
                                    0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                                    0x00, 0x00};
    bad.send(garbage, sizeof garbage);
    EXPECT_TRUE(bad.awaitClose());
  }

  // The well-behaved connection still round-trips afterwards.
  const Response r = good.call(makeRequest(net.chain, 0));
  EXPECT_EQ(r.status, ResponseStatus::kSolved);
  const NetStats stats = net.server->stats();
  EXPECT_GE(stats.malformed_frames, 1u);
  EXPECT_GE(stats.closed_protocol, 1u);
}

TEST(NetLoopbackTest, TruncatedFrameThenEofIsJustAPeerClose) {
  Loopback net;
  {
    RawConn conn(net.server->port());
    // First half of a valid request frame, then hang up.
    std::vector<std::uint8_t> bytes;
    WireRequest request;
    request.id = 7;
    encodeRequest(request, bytes);
    conn.send(bytes.data(), bytes.size() / 2);
  }
  // Server must register the close without crashing or mis-dispatching.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (net.server->stats().closed_by_peer == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const NetStats stats = net.server->stats();
  EXPECT_EQ(stats.closed_by_peer, 1u);
  EXPECT_EQ(stats.malformed_frames, 0u);
  EXPECT_EQ(stats.requests_dispatched, 0u);

  // And keeps serving.
  auto client = net.client();
  EXPECT_EQ(client.call(makeRequest(net.chain, 1)).status,
            ResponseStatus::kSolved);
}

TEST(NetLoopbackTest, OversizedDeclaredFrameIsRejectedImmediately) {
  ServerConfig config;
  config.max_frame_bytes = 256;
  Loopback net(config);
  RawConn conn(net.server->port());
  // Declare a 1 MiB payload: only 4 bytes on the wire, yet the server
  // must close without waiting for the rest.
  const std::uint8_t prefix[] = {0x00, 0x00, 0x10, 0x00};
  conn.send(prefix, sizeof prefix);
  EXPECT_TRUE(conn.awaitClose());
  EXPECT_GE(net.server->stats().malformed_frames, 1u);
}

TEST(NetLoopbackTest, UnsupportedVersionGetsErrorFrameThenClose) {
  Loopback net;
  RawConn conn(net.server->port());
  std::vector<std::uint8_t> bytes;
  WireRequest request;
  request.id = 31337;
  encodeRequest(request, bytes);
  bytes[4] = kWireVersion + 1;
  conn.send(bytes.data(), bytes.size());

  // The server answers with a kError frame carrying our id, then closes.
  std::vector<std::uint8_t> received;
  char buf[512];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    received.insert(received.end(), buf, buf + n);
  }
  DecodedFrame frame;
  ASSERT_EQ(decodeFrame(received.data(), received.size(),
                        kDefaultMaxFrameBytes, frame),
            DecodeStatus::kOk);
  ASSERT_EQ(frame.type, MsgType::kError);
  EXPECT_EQ(frame.error.id, 31337u);
  EXPECT_EQ(frame.error.code, WireErrorCode::kUnsupportedVersion);
  EXPECT_GE(net.server->stats().errors_sent, 1u);
}

TEST(NetLoopbackTest, WrongSpecIdGetsUnknownSpecError) {
  ServerConfig config;
  config.robot_spec_id = 5;
  Loopback net(config);
  ClientConfig client_config;
  client_config.spec_id = 9;  // not what the server serves
  auto client = net.client(client_config);
  try {
    client.call(makeRequest(net.chain, 0));
    FAIL() << "expected WireErrorException";
  } catch (const WireErrorException& e) {
    EXPECT_EQ(e.error().code, WireErrorCode::kUnknownSpec);
  }
  // The connection survives a spec error — fix the id and retry.
  client_config.spec_id = 5;
  auto fixed = net.client(client_config);
  EXPECT_EQ(fixed.call(makeRequest(net.chain, 0)).status,
            ResponseStatus::kSolved);
}

TEST(NetLoopbackTest, ConnectionLimitRejectsExtras) {
  ServerConfig config;
  config.max_connections = 2;
  Loopback net(config);
  auto a = net.client();
  auto b = net.client();
  // A third connection is accepted then immediately closed.
  RawConn extra(net.server->port());
  EXPECT_TRUE(extra.awaitClose());
  EXPECT_GE(net.server->stats().connections_rejected_limit, 1u);
  // The two within the limit still work.
  EXPECT_EQ(a.call(makeRequest(net.chain, 0)).status,
            ResponseStatus::kSolved);
  EXPECT_EQ(b.call(makeRequest(net.chain, 1)).status,
            ResponseStatus::kSolved);
}

TEST(NetLoopbackTest, IdleConnectionsAreSweptQuietOnesOnly) {
  ServerConfig config;
  config.idle_timeout_ms = 60.0;
  config.tick_interval_ms = 10.0;
  Loopback net(config);
  auto idle = net.client();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  while (net.server->stats().closed_idle == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(net.server->stats().closed_idle, 1u);
}

// ---------------------------------------------------------- backpressure

TEST(NetLoopbackTest, SlowReaderPausesReadsAndNothingIsLost) {
  ServerConfig config;
  // Smaller than a single encoded response: the FIRST completion that
  // lands while the client is not reading must trip the pause, no
  // matter how the loop interleaves completion batches with EPOLLOUT
  // flushes (a larger limit makes this timing-dependent).
  config.write_buffer_limit = 64;
  Loopback net(config, /*workers=*/4);
  auto client = net.client();

  // Pipeline far more requests than the limit's worth of responses
  // WITHOUT reading any replies: the server must pause this
  // connection's reads instead of buffering without bound.
  constexpr int kBurst = 64;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < kBurst; ++i)
    ids.push_back(
        client.sendRequest(makeRequest(net.chain, static_cast<std::uint32_t>(i))));

  // Now read everything; the pause must release as the buffer drains.
  int responses = 0;
  for (const std::uint64_t id : ids) {
    const ClientReply reply = client.waitFor(id);
    ASSERT_EQ(reply.type, MsgType::kResponse);
    ++responses;
  }
  EXPECT_EQ(responses, kBurst);
  const NetStats stats = net.server->stats();
  EXPECT_GE(stats.read_pauses, 1u);
  EXPECT_EQ(stats.requests_completed, static_cast<std::uint64_t>(kBurst));
}

// --------------------------------------------------------------- drain

TEST(NetLoopbackTest, DrainUnderLoadAnswersEveryAcceptedRequest) {
  Loopback net({}, /*workers=*/4);

  constexpr int kClients = 4;
  std::atomic<int> solved{0}, shed{0}, other{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = net.client();
      while (!go.load()) std::this_thread::yield();
      for (std::uint32_t i = 0; i < 32; ++i) {
        try {
          const Response r =
              client.call(makeRequest(net.chain, i + 100u * c));
          if (r.status == ResponseStatus::kSolved)
            solved.fetch_add(1);
          else
            other.fetch_add(1);
        } catch (const WireErrorException& e) {
          // Draining servers refuse new requests with a clean error.
          EXPECT_EQ(e.error().code, WireErrorCode::kShuttingDown);
          shed.fetch_add(1);
          break;
        } catch (const std::exception&) {
          // Connection torn down after the drain finished.
          break;
        }
      }
    });
  }
  go.store(true);
  // Let some traffic through, then drain mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  net.server->stop();
  for (auto& t : threads) t.join();

  EXPECT_GT(solved.load(), 0);
  const NetStats stats = net.server->stats();
  // Every request the server dispatched came back out.
  EXPECT_EQ(stats.requests_completed, stats.requests_dispatched);
  EXPECT_EQ(stats.responses_sent,
            static_cast<std::uint64_t>(solved.load() + other.load()));
  EXPECT_EQ(stats.shed_draining, static_cast<std::uint64_t>(shed.load()));
  EXPECT_EQ(stats.connections_active, 0u);
}

TEST(NetLoopbackTest, StopIsIdempotentAndServerRestartsCleanlyElsewhere) {
  Loopback net;
  auto client = net.client();
  EXPECT_EQ(client.call(makeRequest(net.chain, 0)).status,
            ResponseStatus::kSolved);
  net.server->stop();
  net.server->stop();  // second stop is a no-op
  EXPECT_FALSE(net.server->running());

  // A fresh server over the same service keeps working.
  IkServer second(*net.service, {});
  second.start();
  IkClient again;
  again.connect("127.0.0.1", second.port());
  EXPECT_EQ(again.call(makeRequest(net.chain, 1)).status,
            ResponseStatus::kSolved);
  second.stop();
}

}  // namespace
}  // namespace dadu::net
