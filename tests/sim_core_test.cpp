// Deterministic-simulation primitives: SimClock semantics, SimExecutor
// scheduling (ordering, seeded tie-breaks, past-due clamping),
// ModelSolver's virtual-time cost model, and the Trace digest.  These
// are the pieces every sim scenario stands on — if ordering or the
// digest ever becomes nondeterministic, same-seed replay (the whole
// point of src/dadu/sim/) is gone.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "dadu/kinematics/presets.hpp"
#include "dadu/sim/model_solver.hpp"
#include "dadu/sim/sim_clock.hpp"
#include "dadu/sim/sim_executor.hpp"
#include "dadu/sim/trace.hpp"

namespace dadu::sim {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------- SimClock

TEST(SimClock, AdvancesOnlyWhenToldTo) {
  SimClock clock;
  const auto start = clock.now();
  EXPECT_EQ(clock.now(), start);  // reading the clock is free
  EXPECT_EQ(clock.elapsed(), platform::Clock::duration::zero());

  clock.sleepFor(250us);
  EXPECT_EQ(clock.now() - start, 250us);
  clock.advance(1ms);
  EXPECT_EQ(clock.now() - start, 1250us);
  EXPECT_EQ(clock.elapsed(), platform::Clock::duration(1250us));
}

TEST(SimClock, StartsAwayFromEpoch) {
  // time_point{} is the "no deadline" sentinel all over the service
  // layer; a sim clock that started there would make every zero
  // deadline look instantly expired.
  SimClock clock;
  EXPECT_GT(clock.now(), platform::Clock::time_point{});
}

TEST(SimClock, NeverRewinds) {
  SimClock clock;
  clock.sleepFor(-5ms);  // negative sleeps are a no-op...
  EXPECT_EQ(clock.elapsed(), platform::Clock::duration::zero());
  clock.advance(10ms);
  clock.advanceTo(clock.now() - 5ms);  // ...and advanceTo never rewinds
  EXPECT_EQ(clock.elapsed(), platform::Clock::duration(10ms));
}

// ------------------------------------------------------- SimExecutor

TEST(SimExecutor, RunsPostedTasksInOrder) {
  SimClock clock;
  SimExecutor exec(clock, 1);
  std::vector<int> order;
  exec.post([&] { order.push_back(1); });
  exec.post([&] { order.push_back(2); });
  exec.postAt(clock.now() + 1ms, [&] { order.push_back(4); });
  exec.postAt(clock.now() + 500us, [&] { order.push_back(3); });
  EXPECT_EQ(exec.pending(), 4u);
  EXPECT_EQ(exec.drain(), 4u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(clock.elapsed(), platform::Clock::duration(1ms));
  EXPECT_EQ(exec.executed(), 4u);
}

TEST(SimExecutor, PastDueTasksRunNowWithoutRewindingTheClock) {
  SimClock clock;
  SimExecutor exec(clock, 1);
  clock.advance(10ms);
  bool ran = false;
  exec.postAt(clock.now() - 5ms, [&] { ran = true; });
  EXPECT_TRUE(exec.runOne());
  EXPECT_TRUE(ran);
  EXPECT_EQ(clock.elapsed(), platform::Clock::duration(10ms));
}

TEST(SimExecutor, TasksMayPostMoreTasks) {
  SimClock clock;
  SimExecutor exec(clock, 7);
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5)
      exec.postAt(clock.now() + 1ms, recurse);
  };
  exec.post(recurse);
  EXPECT_EQ(exec.drain(), 5u);
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(clock.elapsed(), platform::Clock::duration(4ms));
}

TEST(SimExecutor, RunUntilStopsAtTheFence) {
  SimClock clock;
  SimExecutor exec(clock, 1);
  int ran = 0;
  for (int i = 1; i <= 5; ++i)
    exec.postAt(clock.now() + std::chrono::milliseconds(i), [&] { ++ran; });
  EXPECT_EQ(exec.runUntil(clock.now() + 3ms), 3u);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(exec.pending(), 2u);
  exec.drain();
  EXPECT_EQ(ran, 5);
}

/// The order same-due tasks run in, as decided by the seeded jitter.
std::vector<int> tieBreakOrder(std::uint64_t seed) {
  SimClock clock;
  SimExecutor exec(clock, seed);
  std::vector<int> order;
  const auto due = clock.now() + 1ms;
  for (int i = 0; i < 16; ++i)
    exec.postAt(due, [&order, i] { order.push_back(i); });
  exec.drain();
  return order;
}

TEST(SimExecutor, TieBreakIsSeededAndReproducible) {
  const auto a = tieBreakOrder(42);
  const auto b = tieBreakOrder(42);
  EXPECT_EQ(a, b);  // same seed: bit-identical interleaving
  // Different seeds shuffle same-due ties differently (16! orderings;
  // a collision would be astronomically unlikely — and still
  // deterministic, which is what actually matters).
  EXPECT_NE(a, tieBreakOrder(43));
}

// ------------------------------------------------------- ModelSolver

ModelSolverConfig cheapModel(std::uint64_t seed) {
  ModelSolverConfig cfg;
  cfg.seed = seed;
  cfg.iteration_ms = 0.1;
  cfg.tail_probability = 0.0;
  return cfg;
}

TEST(ModelSolver, ChargesVirtualTimePerSolve) {
  const auto chain = kin::makeSerpentine(6);
  SimClock clock;
  ModelSolver solver(chain, cheapModel(5));
  solver.setClock(&clock);

  const auto before = clock.now();
  const ik::SolveResult r = solver.solve({0.3, 0.2, 0.1}, linalg::VecX{});
  EXPECT_GE(r.iterations, 1);
  // Cost model: iterations * iteration_ms, paid via Clock::sleepFor.
  const auto charged = std::chrono::duration<double, std::milli>(
      clock.now() - before);
  EXPECT_NEAR(charged.count(), r.iterations * 0.1, 1e-6);
}

TEST(ModelSolver, SameSeedSameOutcome) {
  const auto chain = kin::makeSerpentine(6);
  ModelSolver a(chain, cheapModel(9));
  ModelSolver b(chain, cheapModel(9));
  for (int i = 0; i < 32; ++i) {
    const linalg::Vec3 target{0.1 * i, -0.05 * i, 0.2};
    const ik::SolveResult ra = a.solve(target, linalg::VecX{});
    const ik::SolveResult rb = b.solve(target, linalg::VecX{});
    EXPECT_EQ(ra.status, rb.status) << i;
    EXPECT_EQ(ra.iterations, rb.iterations) << i;
    EXPECT_EQ(ra.error, rb.error) << i;
  }
}

TEST(ModelSolver, DeadlineCutsTheSolveShort) {
  const auto chain = kin::makeSerpentine(6);
  SimClock clock;
  ModelSolverConfig cfg = cheapModel(3);
  cfg.iteration_ms = 1.0;           // every solve costs >= 1ms...
  ModelSolver solver(chain, cfg);
  solver.setClock(&clock);
  solver.setDeadline(clock.now() + 500us);  // ...but only 0.5ms remain

  const auto before = clock.now();
  const ik::SolveResult r = solver.solve({0.3, 0.2, 0.1}, linalg::VecX{});
  EXPECT_EQ(r.status, ik::Status::kTimedOut);
  // Charges only the remaining budget, not the full modeled cost.
  EXPECT_LE(clock.now() - before, platform::Clock::duration(500us));
}

TEST(ModelSolver, ValidatesInputsLikeARealSolver) {
  const auto chain = kin::makeSerpentine(6);
  ModelSolver solver(chain, cheapModel(1));
  linalg::VecX bad_seed(3);  // wrong dof
  EXPECT_THROW(solver.solve({0.1, 0.2, 0.3}, bad_seed),
               std::invalid_argument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(solver.solve({nan, 0.0, 0.0}, linalg::VecX{}),
               std::invalid_argument);
}

// ------------------------------------------------------------- Trace

TEST(Trace, DigestCoversEveryEventAndIsOrderSensitive) {
  Trace a, b, c;
  a.record(1, "alpha x=%d", 1);
  a.record(2, "beta y=%d", 2);
  b.record(1, "alpha x=%d", 1);
  b.record(2, "beta y=%d", 2);
  c.record(2, "beta y=%d", 2);  // same events, swapped order
  c.record(1, "alpha x=%d", 1);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
  EXPECT_EQ(a.events(), 2u);
}

TEST(Trace, BoundedRetentionKeepsDigestingDroppedLines) {
  Trace small(4), big(1024);
  for (int i = 0; i < 100; ++i) {
    small.record(static_cast<std::uint64_t>(i), "ev %d", i);
    big.record(static_cast<std::uint64_t>(i), "ev %d", i);
  }
  // Retention is a memory bound, not a truth bound: the digest still
  // witnesses all 100 events.
  EXPECT_EQ(small.digest(), big.digest());
  EXPECT_EQ(small.events(), 100u);
  EXPECT_EQ(small.lines().size(), 4u);
  EXPECT_EQ(small.dropped(), 96u);
  EXPECT_EQ(big.dropped(), 0u);
}

TEST(Trace, WriteToEmitsLinesAndTrailer) {
  Trace trace;
  trace.record(7, "hello n=%d", 42);
  std::ostringstream out;
  trace.writeTo(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("7 hello n=42\n"), std::string::npos);
  EXPECT_NE(text.find("# events=1 digest="), std::string::npos);
}

}  // namespace
}  // namespace dadu::sim
