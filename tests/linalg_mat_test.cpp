// Unit tests for Mat3 / Mat4 / MatX and the rotation helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dadu/linalg/mat3.hpp"
#include "dadu/linalg/mat4.hpp"
#include "dadu/linalg/matx.hpp"
#include "dadu/linalg/rotation.hpp"

namespace dadu::linalg {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Mat3, IdentityActsAsNeutral) {
  const Mat3 i = Mat3::identity();
  const Vec3 v{1, 2, 3};
  EXPECT_EQ(i * v, v);
  const Mat3 r = axisAngle({0.2, 0.5, -0.8}, 1.1);
  EXPECT_EQ(i * r, r);
  EXPECT_EQ(r * i, r);
}

TEST(Mat3, RowColAccess) {
  const Mat3 m = Mat3::fromRows({1, 2, 3}, {4, 5, 6}, {7, 8, 9});
  EXPECT_EQ(m.row(1), Vec3(4, 5, 6));
  EXPECT_EQ(m.col(2), Vec3(3, 6, 9));
  EXPECT_DOUBLE_EQ(m(2, 0), 7);
  EXPECT_EQ(Mat3::fromCols({1, 4, 7}, {2, 5, 8}, {3, 6, 9}), m);
}

TEST(Mat3, TransposeAndTrace) {
  const Mat3 m = Mat3::fromRows({1, 2, 3}, {4, 5, 6}, {7, 8, 10});
  EXPECT_EQ(m.transposed().transposed(), m);
  EXPECT_DOUBLE_EQ(m.trace(), 16.0);
  EXPECT_DOUBLE_EQ(m.transposed()(0, 1), 4.0);
}

TEST(Mat3, Determinant) {
  EXPECT_DOUBLE_EQ(Mat3::identity().determinant(), 1.0);
  const Mat3 m = Mat3::fromRows({2, 0, 0}, {0, 3, 0}, {0, 0, 4});
  EXPECT_DOUBLE_EQ(m.determinant(), 24.0);
  // Singular matrix.
  const Mat3 s = Mat3::fromRows({1, 2, 3}, {2, 4, 6}, {7, 8, 9});
  EXPECT_NEAR(s.determinant(), 0.0, 1e-12);
}

TEST(Mat3, OuterProduct) {
  const Mat3 o = Mat3::outer({1, 2, 3}, {4, 5, 6});
  EXPECT_DOUBLE_EQ(o(0, 0), 4);
  EXPECT_DOUBLE_EQ(o(1, 2), 12);
  EXPECT_DOUBLE_EQ(o(2, 1), 15);
}

TEST(Mat3, MatrixMultiplyAssociatesWithVector) {
  const Mat3 a = axisAngle({1, 1, 0}, 0.4);
  const Mat3 b = axisAngle({0, 1, 1}, -0.9);
  const Vec3 v{0.3, -1.2, 2.0};
  const Vec3 lhs = (a * b) * v;
  const Vec3 rhs = a * (b * v);
  EXPECT_NEAR((lhs - rhs).norm(), 0.0, 1e-12);
}

TEST(Rotation, AxisAngleIsRotation) {
  const Mat3 r = axisAngle({0.3, -0.7, 0.64}, 2.2);
  EXPECT_TRUE(isRotation(r, 1e-12));
}

TEST(Rotation, AxisAngleZeroAxisIsIdentity) {
  EXPECT_EQ(axisAngle({0, 0, 0}, 1.0), Mat3::identity());
}

TEST(Rotation, QuarterTurnAboutZ) {
  const Mat3 r = axisAngle(Vec3::unitZ(), kPi / 2);
  const Vec3 rx = r * Vec3::unitX();
  EXPECT_NEAR((rx - Vec3::unitY()).norm(), 0.0, 1e-14);
}

TEST(Rotation, RpyComposition) {
  // Pure yaw equals rotation about z.
  const Mat3 yaw = rpy(0, 0, 0.7);
  const Mat3 rz = axisAngle(Vec3::unitZ(), 0.7);
  EXPECT_NEAR((yaw - rz).frobeniusNorm(), 0.0, 1e-14);
}

TEST(Rotation, AngleBetween) {
  const Mat3 a = Mat3::identity();
  const Mat3 b = axisAngle(Vec3::unitY(), 0.9);
  EXPECT_NEAR(rotationAngleBetween(a, b), 0.9, 1e-12);
  EXPECT_NEAR(rotationAngleBetween(b, b), 0.0, 1e-7);
}

TEST(Mat4, IdentityAndTranslation) {
  const Mat4 t = Mat4::translation({1, 2, 3});
  EXPECT_EQ(t.position(), Vec3(1, 2, 3));
  EXPECT_EQ(t.rotation(), Mat3::identity());
  EXPECT_EQ(t.transformPoint({0, 0, 0}), Vec3(1, 2, 3));
  EXPECT_EQ(t.transformDirection({1, 0, 0}), Vec3(1, 0, 0));
}

TEST(Mat4, RotationConstructors) {
  const Vec3 p = Mat4::rotationZ(kPi / 2).transformPoint({1, 0, 0});
  EXPECT_NEAR((p - Vec3(0, 1, 0)).norm(), 0.0, 1e-14);
  const Vec3 q = Mat4::rotationX(kPi / 2).transformPoint({0, 1, 0});
  EXPECT_NEAR((q - Vec3(0, 0, 1)).norm(), 0.0, 1e-14);
  const Vec3 r = Mat4::rotationY(kPi / 2).transformPoint({0, 0, 1});
  EXPECT_NEAR((r - Vec3(1, 0, 0)).norm(), 0.0, 1e-14);
}

TEST(Mat4, CompositionOrder) {
  // Translate then rotate vs rotate then translate differ.
  const Mat4 t = Mat4::translation({1, 0, 0});
  const Mat4 r = Mat4::rotationZ(kPi / 2);
  const Vec3 a = (r * t).transformPoint({0, 0, 0});  // rotate the offset
  const Vec3 b = (t * r).transformPoint({0, 0, 0});  // offset unrotated
  EXPECT_NEAR((a - Vec3(0, 1, 0)).norm(), 0.0, 1e-14);
  EXPECT_NEAR((b - Vec3(1, 0, 0)).norm(), 0.0, 1e-14);
}

TEST(Mat4, RigidInverse) {
  const Mat4 m = Mat4::rotationZ(0.8) * Mat4::translation({1, -2, 3}) *
                 Mat4::rotationX(-0.3);
  const Mat4 inv = m.rigidInverse();
  const Mat4 prod = m * inv;
  EXPECT_NEAR((prod.position() - Vec3::zero()).norm(), 0.0, 1e-12);
  EXPECT_NEAR(orthonormalityError(prod.rotation()), 0.0, 1e-12);
  EXPECT_NEAR((prod.rotation() - Mat3::identity()).frobeniusNorm(), 0.0,
              1e-12);
}

TEST(Mat4, HomogeneousLastRowPreserved) {
  const Mat4 m = Mat4::rotationY(0.5) * Mat4::translation({0.1, 0.2, 0.3});
  EXPECT_DOUBLE_EQ(m(3, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(3, 1), 0.0);
  EXPECT_DOUBLE_EQ(m(3, 2), 0.0);
  EXPECT_DOUBLE_EQ(m(3, 3), 1.0);
}

TEST(MatX, ConstructionAndIdentity) {
  const MatX i = MatX::identity(4);
  EXPECT_EQ(i.rows(), 4u);
  EXPECT_EQ(i.cols(), 4u);
  EXPECT_DOUBLE_EQ(i(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(i(2, 3), 0.0);
}

TEST(MatX, RaggedInitializerThrows) {
  EXPECT_THROW((MatX{{1, 2}, {3}}), std::invalid_argument);
}

TEST(MatX, MultiplyAgainstHandComputed) {
  const MatX a{{1, 2}, {3, 4}};
  const MatX b{{5, 6}, {7, 8}};
  const MatX c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(MatX, MatrixVector) {
  const MatX a{{1, 0, 2}, {0, 3, 0}};
  const VecX x{1, 2, 3};
  EXPECT_EQ(a * x, VecX({7, 6}));
}

TEST(MatX, ApplyTransposedMatchesExplicitTranspose) {
  const MatX a{{1, 2, 3}, {4, 5, 6}};
  const VecX v{10, 20};
  EXPECT_EQ(a.applyTransposed(v), a.transposed() * v);
}

TEST(MatX, GramIsSymmetricPsd) {
  const MatX a{{1, 2, 3, 4}, {0, 1, -1, 2}, {3, 0, 0, 1}};
  const MatX g = a.gram();
  EXPECT_EQ(g.rows(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(g(i, i), 0.0);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
  }
}

TEST(MatX, ThreeRowHelpers) {
  MatX j(3, 4);
  j.setCol3(0, {1, 2, 3});
  j.setCol3(3, {-1, 0, 1});
  EXPECT_EQ(j.col3(0), Vec3(1, 2, 3));
  EXPECT_EQ(j.col3(3), Vec3(-1, 0, 1));

  VecX theta{1, 0, 0, 2};
  const Vec3 jv = mul3(j, theta);
  EXPECT_EQ(jv, Vec3(-1, 2, 5));

  VecX out;
  mulTransposed3(j, {1, 1, 1}, out);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0], 6.0);
  EXPECT_DOUBLE_EQ(out[3], 0.0);

  const Mat3 g = gram3(j);
  const MatX gx = j.gram();
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(g(r, c), gx(r, c));
}

TEST(MatX, FrobeniusAndMaxAbs) {
  const MatX a{{3, 0}, {0, 4}};
  EXPECT_DOUBLE_EQ(a.frobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(a.maxAbs(), 4.0);
}

}  // namespace
}  // namespace dadu::linalg
