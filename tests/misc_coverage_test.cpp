// Coverage of corners not exercised elsewhere: engine option
// propagation, CSV/table formatting details, scheduler partial waves,
// SVD degenerate inputs, workspace coverage sanity, fixed-point raw
// API.
#include <gtest/gtest.h>

#include <cmath>

#include "dadu/core/engine.hpp"
#include "dadu/ikacc/scheduler.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/kinematics/workspace.hpp"
#include "dadu/linalg/fixed_point.hpp"
#include "dadu/linalg/svd.hpp"
#include "dadu/report/table.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu {
namespace {

TEST(Engine, OptionsPropagateToSolver) {
  ik::SolveOptions options;
  options.accuracy = 5e-3;
  options.max_iterations = 123;
  options.speculations = 16;
  IkEngine engine(kin::makeSerpentine(12), Backend::kCpuSerial, options);
  EXPECT_DOUBLE_EQ(engine.solver().options().accuracy, 5e-3);
  EXPECT_EQ(engine.solver().options().max_iterations, 123);
  EXPECT_EQ(engine.solver().options().speculations, 16);
}

TEST(Engine, SolverNamesMatchBackends) {
  const auto chain = kin::makeSerpentine(12);
  EXPECT_EQ(IkEngine(chain, Backend::kCpuSerial).solver().name(), "quick-ik");
  EXPECT_EQ(IkEngine(chain, Backend::kCpuParallel).solver().name(),
            "quick-ik-mt");
  EXPECT_EQ(IkEngine(chain, Backend::kIkAcc).solver().name(), "ikacc");
  EXPECT_EQ(IkEngine(chain, Backend::kJtSerial).solver().name(), "jt-serial");
  EXPECT_EQ(IkEngine(chain, Backend::kPinvSvd).solver().name(), "pinv-svd");
}

TEST(Scheduler, PartialFinalWaveAndFewerSpecsThanSsus) {
  const auto waves = dadu::acc::scheduleWaves(10, 32);
  ASSERT_EQ(waves.size(), 1u);
  EXPECT_EQ(waves[0].count, 10u);  // only 10 SSUs active

  const auto waves2 = dadu::acc::scheduleWaves(33, 32);
  ASSERT_EQ(waves2.size(), 2u);
  EXPECT_EQ(waves2[1].count, 1u);
  EXPECT_EQ(waves2[1].first, 32u);
}

TEST(Svd, ZeroMatrixHandled) {
  const linalg::MatX z(3, 5);
  const auto svd = linalg::svdJacobi(z);
  EXPECT_EQ(svd.rank(), 0u);
  for (std::size_t i = 0; i < svd.s.size(); ++i)
    EXPECT_DOUBLE_EQ(svd.s[i], 0.0);
  EXPECT_LT(svd.reconstruct().maxAbs(), 1e-300);
  EXPECT_TRUE(std::isinf(svd.conditionNumber()));
}

TEST(Svd, RepeatedSingularValues) {
  // 2*I has sigma = {2, 2, 2}; reconstruction exact, rank full.
  const linalg::MatX a = linalg::MatX::identity(3) * 2.0;
  const auto svd = linalg::svdJacobi(a);
  EXPECT_EQ(svd.rank(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(svd.s[i], 2.0, 1e-12);
  EXPECT_LT((svd.reconstruct() - a).frobeniusNorm(), 1e-12);
}

TEST(Svd, ScalingScalesSingularValues) {
  linalg::MatX a{{1, 2, 0}, {0, 1, 3}, {2, 0, 1}};
  const auto s1 = linalg::svdJacobi(a);
  const auto s10 = linalg::svdJacobi(a * 10.0);
  for (std::size_t i = 0; i < s1.s.size(); ++i)
    EXPECT_NEAR(s10.s[i], 10.0 * s1.s[i], 1e-9);
}

TEST(Workspace, CoverageBetweenZeroAndAboveOne) {
  // Coverage is a cell-count ratio; it is positive for a dexterous
  // chain and (near) zero for a 1-DOF chain in 3-D.
  const double serp = kin::workspaceCoverage(kin::makeSerpentine(12), 800, 3);
  EXPECT_GT(serp, 0.0);
  const kin::Chain one({kin::revolute({0.5, 0, 0, 0})});
  const double circle = kin::workspaceCoverage(one, 400, 3);
  EXPECT_LT(circle, serp);
}

TEST(Table, SciFormatter) {
  EXPECT_EQ(report::Table::sci(0.000123, 1), "1.2e-04");
  EXPECT_EQ(report::Table::sci(98760.0, 3), "9.876e+04");
}

TEST(FixedPoint, RawSinCosApi) {
  const linalg::FixedFormat fmt{20};
  const auto sc = linalg::cordicSinCosFixed(fmt, 0.5);
  EXPECT_NEAR(fmt.toDouble(sc.sin_raw), std::sin(0.5), 1e-4);
  EXPECT_NEAR(fmt.toDouble(sc.cos_raw), std::cos(0.5), 1e-4);
}

TEST(FixedPoint, NegativeValuesRoundTrip) {
  const linalg::FixedFormat fmt{16};
  EXPECT_NEAR(fmt.toDouble(fmt.fromDouble(-123.456)), -123.456,
              fmt.resolution());
  EXPECT_NEAR(fmt.toDouble(fmt.mul(fmt.fromDouble(-2.0), fmt.fromDouble(3.0))),
              -6.0, 4 * fmt.resolution());
}

TEST(Targets, DifferentBaseSeedsDifferentWorkloads) {
  const auto chain = kin::makeSerpentine(12);
  workload::TargetGenOptions a, b;
  a.seed = 1;
  b.seed = 2;
  const auto ta = workload::generateTask(chain, 0, a);
  const auto tb = workload::generateTask(chain, 0, b);
  EXPECT_NE(ta.target, tb.target);
}

TEST(Presets, PaperLadderConstants) {
  ASSERT_EQ(std::size(kin::kPaperDofLadder), 5u);
  EXPECT_EQ(kin::kPaperDofLadder[0], 12u);
  EXPECT_EQ(kin::kPaperDofLadder[4], 100u);
}

}  // namespace
}  // namespace dadu
