// Unit tests for dadu_fault: the deterministic fault-injection
// framework itself.  Every trigger shape must replay exactly for a
// fixed seed — reproducibility is the whole point of the framework —
// and the disarmed path must stay a no-op.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "dadu/fault/fault.hpp"

namespace dadu::fault {
namespace {

TEST(FaultInjectorTest, DisarmedIsInert) {
  EXPECT_FALSE(FaultInjector::armed());
  EXPECT_FALSE(decide("any.point"));
  EXPECT_FALSE(inject("any.point"));
  EXPECT_EQ(FaultInjector::global().totalFires(), 0u);
}

TEST(FaultInjectorTest, UnrelatedPointNeverFires) {
  ScopedFaultPlan plan(FaultPlan{}.errorAt("a.point", "boom"));
  EXPECT_TRUE(FaultInjector::armed());
  EXPECT_FALSE(decide("another.point"));
  EXPECT_EQ(FaultInjector::global().hits("another.point"), 1u);
  EXPECT_EQ(FaultInjector::global().fires("another.point"), 0u);
}

TEST(FaultInjectorTest, ProbabilityOneFiresEveryHit) {
  ScopedFaultPlan plan(FaultPlan{}.dropAt("p"));
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(decide("p").action, Action::kDrop);
  EXPECT_EQ(FaultInjector::global().hits("p"), 10u);
  EXPECT_EQ(FaultInjector::global().fires("p"), 10u);
  EXPECT_EQ(FaultInjector::global().totalFires(), 10u);
}

TEST(FaultInjectorTest, ProbabilityZeroNeverFires) {
  ScopedFaultPlan plan(FaultPlan{}.dropAt("p", {.probability = 0.0}));
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(decide("p"));
  EXPECT_EQ(FaultInjector::global().fires("p"), 0u);
}

/// The reproducibility contract: same seed, same hit sequence => same
/// fire pattern, bit for bit.
TEST(FaultInjectorTest, SameSeedReplaysExactly) {
  const auto run = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.dropAt("p", {.probability = 0.3});
    ScopedFaultPlan armed(plan);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(bool(decide("p")));
    return fired;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // and the seed actually matters
}

TEST(FaultInjectorTest, NthTriggerFiresOnExactHit) {
  ScopedFaultPlan plan(FaultPlan{}.dropAt("p", {.nth = 3}));
  EXPECT_FALSE(decide("p"));
  EXPECT_FALSE(decide("p"));
  EXPECT_TRUE(decide("p"));
  EXPECT_FALSE(decide("p"));
  EXPECT_EQ(FaultInjector::global().fires("p"), 1u);
}

TEST(FaultInjectorTest, AfterTriggerSkipsWarmup) {
  ScopedFaultPlan plan(FaultPlan{}.dropAt("p", {.after = 2}));
  EXPECT_FALSE(decide("p"));
  EXPECT_FALSE(decide("p"));
  EXPECT_TRUE(decide("p"));
  EXPECT_TRUE(decide("p"));
}

TEST(FaultInjectorTest, LimitTriggerCapsFires) {
  ScopedFaultPlan plan(FaultPlan{}.dropAt("p", {.limit = 2}));
  EXPECT_TRUE(decide("p"));
  EXPECT_TRUE(decide("p"));
  EXPECT_FALSE(decide("p"));
  EXPECT_FALSE(decide("p"));
  EXPECT_EQ(FaultInjector::global().fires("p"), 2u);
}

TEST(FaultInjectorTest, FirstMatchingRuleWinsPerHit) {
  // Rule 0 fires only on hit 1; rule 1 fires always.  Hit 1 must see
  // the kDelay (plan order), every later hit the kDrop.
  FaultPlan plan;
  plan.delayAt("p", 7.0, {.nth = 1});
  plan.dropAt("p");
  ScopedFaultPlan armed(plan);
  const Decision first = decide("p");
  EXPECT_EQ(first.action, Action::kDelay);
  EXPECT_DOUBLE_EQ(first.delay_ms, 7.0);
  EXPECT_EQ(decide("p").action, Action::kDrop);
}

TEST(FaultInjectorTest, ErrorActionThrowsFromInject) {
  ScopedFaultPlan plan(FaultPlan{}.errorAt("p", "injected boom"));
  try {
    inject("p");
    FAIL() << "inject() should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "injected boom");
  }
}

TEST(FaultInjectorTest, DecideNeverThrowsOnError) {
  ScopedFaultPlan plan(FaultPlan{}.errorAt("p", "boom"));
  const Decision d = decide("p");  // pure: site interprets
  EXPECT_EQ(d.action, Action::kError);
  EXPECT_EQ(d.message, "boom");
}

TEST(FaultInjectorTest, TruncatePropagatesMaxBytes) {
  ScopedFaultPlan plan(FaultPlan{}.truncateAt("p", 5));
  const Decision d = decide("p");
  EXPECT_EQ(d.action, Action::kTruncate);
  EXPECT_EQ(d.max_bytes, 5u);
}

TEST(FaultInjectorTest, CountersSurviveDisarm) {
  {
    ScopedFaultPlan plan(FaultPlan{}.dropAt("p"));
    decide("p");
    decide("p");
  }
  EXPECT_FALSE(FaultInjector::armed());
  EXPECT_EQ(FaultInjector::global().hits("p"), 2u);
  EXPECT_EQ(FaultInjector::global().fires("p"), 2u);
  // ... until the next arm() resets them.
  ScopedFaultPlan next(FaultPlan{});
  EXPECT_EQ(FaultInjector::global().hits("p"), 0u);
}

TEST(FaultInjectorTest, RearmReplacesPlan) {
  FaultInjector::global().arm(FaultPlan{}.dropAt("p"));
  EXPECT_TRUE(decide("p"));
  FaultInjector::global().arm(FaultPlan{}.dropAt("q"));
  EXPECT_FALSE(decide("p"));
  EXPECT_TRUE(decide("q"));
  FaultInjector::global().disarm();
  EXPECT_FALSE(FaultInjector::armed());
}

TEST(CorruptionTest, CorruptBytesIsDeterministicAndNonTrivial) {
  std::vector<std::uint8_t> a(64, 0xAB), b(64, 0xAB), c(64, 0xAB);
  corruptBytes(a.data(), a.size(), 7);
  corruptBytes(b.data(), b.size(), 7);
  corruptBytes(c.data(), c.size(), 8);
  EXPECT_EQ(a, b);                              // same seed, same damage
  EXPECT_NE(a, std::vector<std::uint8_t>(64, 0xAB));  // damage happened
  EXPECT_NE(a, c);                              // seed selects the damage
}

TEST(CorruptionTest, CorruptBytesTouchesShortBuffers) {
  std::uint8_t one = 0x5A;
  corruptBytes(&one, 1, 123);
  EXPECT_NE(one, 0x5A);  // at least one byte flips when len > 0
  corruptBytes(nullptr, 0, 123);  // len == 0 must be a safe no-op
}

TEST(CorruptionTest, CorruptDoublesStaysFinite) {
  std::vector<double> v(16, 0.25), w(16, 0.25);
  corruptDoubles(v.data(), v.size(), 99);
  corruptDoubles(w.data(), w.size(), 99);
  EXPECT_EQ(v, w);
  bool changed = false;
  for (double x : v) {
    EXPECT_TRUE(std::isfinite(x));  // poison must pass input validation
    changed = changed || x != 0.25;
  }
  EXPECT_TRUE(changed);
}

TEST(FaultInjectorTest, InjectPerformsDelay) {
  ScopedFaultPlan plan(FaultPlan{}.delayAt("p", 20.0, {.limit = 1}));
  const auto before = std::chrono::steady_clock::now();
  EXPECT_TRUE(inject("p"));
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - before)
          .count();
  EXPECT_GE(elapsed_ms, 15.0);  // slack for coarse sleep granularity
}

}  // namespace
}  // namespace dadu::fault
