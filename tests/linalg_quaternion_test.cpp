// Quaternion tests: conversions, algebra, slerp.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dadu/linalg/quaternion.hpp"
#include "dadu/linalg/rotation.hpp"
#include "dadu/workload/rng.hpp"

namespace dadu::linalg {
namespace {

constexpr double kPi = std::numbers::pi;

Quaternion randomQuat(workload::Rng& rng) {
  return Quaternion::fromAxisAngle(
      {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)},
      rng.uniform(-3, 3));
}

TEST(Quaternion, IdentityBehaviour) {
  const Quaternion q = Quaternion::identity();
  EXPECT_DOUBLE_EQ(q.norm(), 1.0);
  EXPECT_EQ(q.toMatrix(), Mat3::identity());
  EXPECT_EQ(q.rotate({1, 2, 3}), Vec3(1, 2, 3));
  EXPECT_EQ(Quaternion::fromAxisAngle({0, 0, 0}, 1.0), q);
}

TEST(Quaternion, AxisAngleMatchesRotationMatrix) {
  const Vec3 axis = Vec3{0.2, -0.7, 0.4}.normalized();
  for (double angle : {0.1, 1.2, -2.4, 3.0}) {
    const Quaternion q = Quaternion::fromAxisAngle(axis, angle);
    const Mat3 expect = axisAngle(axis, angle);
    EXPECT_LT((q.toMatrix() - expect).frobeniusNorm(), 1e-12) << angle;
  }
}

TEST(Quaternion, MatrixRoundTrip) {
  workload::Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    const Quaternion q = randomQuat(rng);
    const Quaternion back = Quaternion::fromMatrix(q.toMatrix());
    // Equal up to the double cover sign.
    const double dot = std::abs(q.w * back.w + q.x * back.x + q.y * back.y +
                                q.z * back.z);
    EXPECT_NEAR(dot, 1.0, 1e-12) << i;
  }
}

TEST(Quaternion, FromMatrixCoversAllPivotBranches) {
  // Half turns about each axis force the trace <= -1 branches.
  for (const Vec3& axis : {Vec3::unitX(), Vec3::unitY(), Vec3::unitZ()}) {
    const Mat3 r = axisAngle(axis, kPi);
    const Quaternion q = Quaternion::fromMatrix(r);
    EXPECT_LT((q.toMatrix() - r).frobeniusNorm(), 1e-9);
  }
}

TEST(Quaternion, ProductMatchesMatrixProduct) {
  workload::Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    const Quaternion a = randomQuat(rng);
    const Quaternion b = randomQuat(rng);
    const Mat3 via_q = (a * b).toMatrix();
    const Mat3 via_m = a.toMatrix() * b.toMatrix();
    EXPECT_LT((via_q - via_m).frobeniusNorm(), 1e-12) << i;
  }
}

TEST(Quaternion, RotateMatchesMatrix) {
  workload::Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    const Quaternion q = randomQuat(rng);
    const Vec3 v{rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)};
    EXPECT_LT((q.rotate(v) - q.toMatrix() * v).norm(), 1e-12) << i;
  }
}

TEST(Quaternion, ConjugateInverts) {
  const Quaternion q = Quaternion::fromAxisAngle({1, 2, -1}, 0.9);
  const Vec3 v{0.3, -0.4, 1.1};
  EXPECT_LT((q.conjugate().rotate(q.rotate(v)) - v).norm(), 1e-12);
}

TEST(Quaternion, AngleToMatchesGeodesic) {
  const Quaternion a = Quaternion::fromAxisAngle({0, 0, 1}, 0.3);
  const Quaternion b = Quaternion::fromAxisAngle({0, 0, 1}, 1.5);
  EXPECT_NEAR(a.angleTo(b), 1.2, 1e-9);
  EXPECT_NEAR(a.angleTo(a), 0.0, 1e-6);
  // Double cover: -q is the same rotation.
  const Quaternion neg{-a.w, -a.x, -a.y, -a.z};
  EXPECT_NEAR(a.angleTo(neg), 0.0, 1e-6);
}

TEST(Quaternion, SlerpEndpointsAndMidpoint) {
  const Quaternion a = Quaternion::fromAxisAngle({0, 1, 0}, 0.0);
  const Quaternion b = Quaternion::fromAxisAngle({0, 1, 0}, 1.0);
  EXPECT_NEAR(slerp(a, b, 0.0).angleTo(a), 0.0, 1e-9);
  EXPECT_NEAR(slerp(a, b, 1.0).angleTo(b), 0.0, 1e-9);
  const Quaternion mid = slerp(a, b, 0.5);
  EXPECT_NEAR(mid.angleTo(a), 0.5, 1e-9);
  EXPECT_NEAR(mid.angleTo(b), 0.5, 1e-9);
}

TEST(Quaternion, SlerpConstantAngularVelocity) {
  const Quaternion a = Quaternion::identity();
  const Quaternion b = Quaternion::fromAxisAngle({1, 1, 0}, 2.0);
  double prev = 0.0;
  for (double t : {0.25, 0.5, 0.75, 1.0}) {
    const double angle = slerp(a, b, t).angleTo(a);
    EXPECT_NEAR(angle - prev, 0.5, 1e-9) << t;
    prev = angle;
  }
}

TEST(Quaternion, SlerpTakesShortestArc) {
  const Quaternion a = Quaternion::fromAxisAngle({0, 0, 1}, 0.1);
  // b represented on the far side of the double cover.
  Quaternion b = Quaternion::fromAxisAngle({0, 0, 1}, 0.4);
  b = {-b.w, -b.x, -b.y, -b.z};
  const Quaternion mid = slerp(a, b, 0.5);
  EXPECT_NEAR(mid.angleTo(a), 0.15, 1e-9);
}

TEST(Quaternion, SlerpNearlyParallelStable) {
  const Quaternion a = Quaternion::fromAxisAngle({1, 0, 0}, 1e-12);
  const Quaternion b = Quaternion::fromAxisAngle({1, 0, 0}, 2e-12);
  const Quaternion mid = slerp(a, b, 0.5);
  EXPECT_NEAR(mid.norm(), 1.0, 1e-12);
}

}  // namespace
}  // namespace dadu::linalg
