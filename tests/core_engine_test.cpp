// IkEngine facade and trajectory-solver tests.
#include <gtest/gtest.h>

#include "dadu/core/engine.hpp"
#include "dadu/core/trajectory_solver.hpp"
#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/solvers/quick_ik.hpp"
#include "dadu/workload/targets.hpp"
#include "dadu/workload/trajectory.hpp"

namespace dadu {
namespace {

TEST(BackendToString, AllNamed) {
  EXPECT_EQ(toString(Backend::kCpuSerial), "cpu-serial");
  EXPECT_EQ(toString(Backend::kCpuParallel), "cpu-parallel");
  EXPECT_EQ(toString(Backend::kIkAcc), "ikacc");
  EXPECT_EQ(toString(Backend::kJtSerial), "jt-serial");
  EXPECT_EQ(toString(Backend::kPinvSvd), "pinv-svd");
}

class EngineBackend : public ::testing::TestWithParam<Backend> {};

TEST_P(EngineBackend, SolvesReachableTarget) {
  const auto chain = kin::makeSerpentine(25);
  IkEngine engine(chain, GetParam());
  const auto task = workload::generateTask(chain, 0);
  const auto r = engine.solve(task.target, task.seed);
  EXPECT_TRUE(r.converged()) << toString(GetParam());
  const auto reached = kin::endEffectorPosition(chain, r.theta);
  EXPECT_LT((reached - task.target).norm(), engine.options().accuracy);
}

INSTANTIATE_TEST_SUITE_P(All, EngineBackend,
                         ::testing::Values(Backend::kCpuSerial,
                                           Backend::kCpuParallel,
                                           Backend::kIkAcc, Backend::kJtSerial,
                                           Backend::kPinvSvd),
                         [](const auto& info) {
                           std::string n = toString(info.param);
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(Engine, DefaultSeedIsZeroConfiguration) {
  const auto chain = kin::makeSerpentine(12);
  IkEngine engine(chain);
  const auto task = workload::generateTask(chain, 0);
  const auto implicit = engine.solve(task.target);
  const auto explicit_seed =
      engine.solve(task.target, chain.zeroConfiguration());
  EXPECT_EQ(implicit.theta, explicit_seed.theta);
}

TEST(Engine, BatchSolveMatchesIndividual) {
  const auto chain = kin::makeSerpentine(12);
  IkEngine engine(chain);
  const auto tasks = workload::generateTasks(chain, 3);
  std::vector<linalg::Vec3> targets;
  for (const auto& t : tasks) targets.push_back(t.target);
  const auto seed = chain.zeroConfiguration();
  const auto batch = engine.solveBatch(targets, seed);
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto single = engine.solve(targets[i], seed);
    EXPECT_EQ(batch[i].theta, single.theta);
  }
}

TEST(Engine, AcceleratorStatsOnlyForIkAcc) {
  const auto chain = kin::makeSerpentine(12);
  IkEngine cpu(chain, Backend::kCpuSerial);
  EXPECT_THROW(cpu.acceleratorStats(), std::logic_error);

  IkEngine acc_engine(chain, Backend::kIkAcc);
  const auto task = workload::generateTask(chain, 0);
  (void)acc_engine.solve(task.target, task.seed);
  EXPECT_GT(acc_engine.acceleratorStats().total_cycles, 0);
}

TEST(Trajectory, WarmStartTracksCircle) {
  const auto chain = kin::makeSerpentine(25);
  ik::SolveOptions options;
  ik::QuickIkSolver solver(chain, options);

  auto path = workload::circleTrajectory({1.2, 0.0, 0.5}, 0.4,
                                         linalg::Vec3::unitX(),
                                         linalg::Vec3::unitZ(), 20);
  path = workload::fitToWorkspace(chain, std::move(path));

  linalg::VecX seed(chain.dof(), 0.05);
  const auto tr = solveTrajectory(solver, path, seed);
  EXPECT_TRUE(tr.allConverged());
  EXPECT_EQ(tr.waypoints.size(), 20u);
  EXPECT_LT(tr.max_error, options.accuracy);
}

TEST(Trajectory, WarmStartCheaperThanColdOnAverage) {
  const auto chain = kin::makeSerpentine(25);
  ik::SolveOptions options;
  ik::QuickIkSolver solver(chain, options);

  auto path = workload::lineTrajectory({0.8, 0.2, 0.3}, {1.0, -0.2, 0.6}, 15);
  path = workload::fitToWorkspace(chain, std::move(path));
  const linalg::VecX seed(chain.dof(), 0.05);

  const auto warm = solveTrajectory(solver, path, seed);
  ASSERT_TRUE(warm.allConverged());

  // Cold: every waypoint from the initial seed.
  double cold_iters = 0.0;
  for (const auto& target : path)
    cold_iters += solver.solve(target, seed).iterations;
  cold_iters /= static_cast<double>(path.size());

  EXPECT_LT(warm.mean_iterations, cold_iters + 1e-9);
}

TEST(Trajectory, JointPathIsSmooth) {
  const auto chain = kin::makeSerpentine(25);
  ik::QuickIkSolver solver(chain, {});
  auto path = workload::circleTrajectory({1.0, 0.0, 0.5}, 0.3,
                                         linalg::Vec3::unitX(),
                                         linalg::Vec3::unitY(), 30);
  path = workload::fitToWorkspace(chain, std::move(path));
  const auto tr = solveTrajectory(solver, path, linalg::VecX(chain.dof(), 0.05));
  ASSERT_TRUE(tr.allConverged());
  // Dense waypoints + warm start => small joint steps.
  EXPECT_LT(tr.mean_joint_step, 1.0);
}

TEST(Trajectory, EmptyPathGivesEmptyResult) {
  const auto chain = kin::makeSerpentine(12);
  ik::QuickIkSolver solver(chain, {});
  const auto tr = solveTrajectory(solver, {}, chain.zeroConfiguration());
  EXPECT_TRUE(tr.waypoints.empty());
  EXPECT_TRUE(tr.allConverged());
  EXPECT_DOUBLE_EQ(tr.mean_iterations, 0.0);
}

}  // namespace
}  // namespace dadu
