// Multi-end-effector Quick-IK tests.
#include <gtest/gtest.h>

#include "dadu/kinematics/tree.hpp"
#include "dadu/solvers/quick_ik_tree.hpp"
#include "dadu/workload/rng.hpp"

namespace dadu::ik {
namespace {

linalg::VecX randomConfig(std::size_t n, std::uint64_t seed) {
  workload::Rng rng(seed);
  linalg::VecX q(n);
  for (std::size_t i = 0; i < n; ++i) q[i] = rng.angle();
  return q;
}

/// Reachable-by-construction dual targets.
std::vector<linalg::Vec3> reachableTargets(const kin::Tree& tree,
                                           std::uint64_t seed) {
  return tree.endEffectorPositions(randomConfig(tree.dof(), seed));
}

TEST(QuickIkTree, RejectsBadInputs) {
  const kin::Tree tree = kin::makeHumanoidUpperBody();
  SolveOptions zero_spec;
  zero_spec.speculations = 0;
  EXPECT_THROW(QuickIkTreeSolver(tree, zero_spec), std::invalid_argument);

  QuickIkTreeSolver solver(tree, {});
  // One target for two end effectors.
  EXPECT_THROW(solver.solve({{0.1, 0, 0}}, linalg::VecX(tree.dof())),
               std::invalid_argument);
  // NaN target.
  EXPECT_THROW(
      solver.solve({{std::nan(""), 0, 0}, {0.1, 0, 0}},
                   linalg::VecX(tree.dof())),
      std::invalid_argument);
  // Bad seed size.
  EXPECT_THROW(solver.solve({{0.1, 0, 0}, {0.1, 0.1, 0}}, linalg::VecX(3)),
               std::invalid_argument);
}

TEST(QuickIkTree, BothHandsReachTheirTargets) {
  const kin::Tree tree = kin::makeHumanoidUpperBody(4, 7);
  SolveOptions options;
  QuickIkTreeSolver solver(tree, options);
  int converged = 0;
  for (std::uint64_t s = 1; s <= 4; ++s) {
    const auto targets = reachableTargets(tree, s * 37);
    const auto r = solver.solve(targets, randomConfig(tree.dof(), s));
    if (!r.converged()) continue;
    ++converged;
    ASSERT_EQ(r.errors.size(), 2u);
    EXPECT_LT(r.errors[0], options.accuracy);
    EXPECT_LT(r.errors[1], options.accuracy);
    // Independent verification.
    const auto reached = tree.endEffectorPositions(r.theta);
    EXPECT_LT((reached[0] - targets[0]).norm(), options.accuracy);
    EXPECT_LT((reached[1] - targets[1]).norm(), options.accuracy);
  }
  EXPECT_GE(converged, 3);
}

TEST(QuickIkTree, SingleBranchBehavesLikeChainQuickIk) {
  const kin::Tree tree = kin::makeSerpentineTree(25);
  QuickIkTreeSolver solver(tree, {});
  const auto targets = reachableTargets(tree, 5);
  const auto r = solver.solve(targets, randomConfig(25, 6));
  EXPECT_TRUE(r.converged());
  EXPECT_LT(r.maxError(), 1e-2);
}

TEST(QuickIkTree, ConvergenceRequiresEveryEndEffector) {
  // Target pair where one hand's target sits outside its reachable
  // set (far beyond the whole tree's reach): must not converge even
  // though the other hand could reach its target.
  const kin::Tree tree = kin::makeHumanoidUpperBody(3, 5);
  SolveOptions options;
  options.max_iterations = 200;
  QuickIkTreeSolver solver(tree, options);
  auto targets = reachableTargets(tree, 9);
  targets[1] = {100.0, 0.0, 0.0};
  const auto r = solver.solve(targets, linalg::VecX(tree.dof(), 0.1));
  EXPECT_FALSE(r.converged());
  EXPECT_GT(r.errors[1], 1.0);
}

TEST(QuickIkTree, SeedSolutionConvergesInstantly) {
  const kin::Tree tree = kin::makeHumanoidUpperBody();
  const auto q = randomConfig(tree.dof(), 12);
  QuickIkTreeSolver solver(tree, {});
  const auto r = solver.solve(tree.endEffectorPositions(q), q);
  EXPECT_TRUE(r.converged());
  EXPECT_EQ(r.iterations, 0);
}

TEST(QuickIkTree, Valkyrie44DofScale) {
  // The paper's Valkyrie reference: a 44-DOF tree (8-torso + two
  // 18-joint arms) solving dual targets within budget.
  const kin::Tree tree = kin::makeHumanoidUpperBody(8, 18, 0.05);
  ASSERT_EQ(tree.dof(), 44u);
  QuickIkTreeSolver solver(tree, {});
  const auto targets = reachableTargets(tree, 3);
  const auto r = solver.solve(targets, randomConfig(tree.dof(), 4));
  EXPECT_TRUE(r.converged());
}

TEST(QuickIkTree, DeterministicAcrossRuns) {
  const kin::Tree tree = kin::makeHumanoidUpperBody(3, 5);
  QuickIkTreeSolver a(tree, {});
  QuickIkTreeSolver b(tree, {});
  const auto targets = reachableTargets(tree, 21);
  const auto seed = randomConfig(tree.dof(), 22);
  const auto ra = a.solve(targets, seed);
  const auto rb = b.solve(targets, seed);
  EXPECT_EQ(ra.theta, rb.theta);
  EXPECT_EQ(ra.iterations, rb.iterations);
}

}  // namespace
}  // namespace dadu::ik
