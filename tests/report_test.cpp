// Table/CSV reporting tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "dadu/report/csv.hpp"
#include "dadu/report/table.hpp"

namespace dadu::report {
namespace {

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"1"}), std::invalid_argument);
  EXPECT_THROW(t.addRow({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, FormattersProduceFixedPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::integer(42), "42");
  EXPECT_EQ(Table::sci(12345.0, 2), "1.23e+04");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "value"});
  t.addRow({"x", "1.00"});
  t.addRow({"longer-name", "123.45"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  // Every line has the same length (fixed-width).
  std::istringstream is(s);
  std::string line;
  std::size_t len = 0;
  while (std::getline(is, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len);
  }
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("123.45"), std::string::npos);
}

TEST(Table, RowsCounted) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.addRow({"1"});
  t.addRow({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Banner, FormatsTitle) {
  std::ostringstream os;
  banner(os, "Table 2");
  EXPECT_EQ(os.str(), "\n== Table 2 ==\n");
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       "dadu_csv_test.csv")
                          .string();
  void TearDown() override { std::remove(path_.c_str()); }

  std::string slurp() {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"dof", "ms"});
    csv.addRow({"12", "0.5"});
    csv.addRow({"100", "12.1"});
  }
  EXPECT_EQ(slurp(), "dof,ms\n12,0.5\n100,12.1\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter csv(path_, {"name", "note"});
    csv.addRow({"a,b", "say \"hi\""});
  }
  EXPECT_EQ(slurp(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, RowWidthMismatchThrows) {
  CsvWriter csv(path_, {"a", "b"});
  EXPECT_THROW(csv.addRow({"only-one"}), std::runtime_error);
}

TEST(Csv, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/out.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace dadu::report
