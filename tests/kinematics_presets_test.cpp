// Preset-robot and workspace tests.
#include <gtest/gtest.h>

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/kinematics/workspace.hpp"

namespace dadu::kin {
namespace {

class SerpentinePreset : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SerpentinePreset, StructureMatchesSpec) {
  const std::size_t dof = GetParam();
  const Chain chain = makeSerpentine(dof, 0.1);
  EXPECT_EQ(chain.dof(), dof);
  EXPECT_NEAR(chain.maxReach(), 0.1 * static_cast<double>(dof), 1e-12);
  // Alternating twists, all revolute, no limits.
  for (std::size_t i = 0; i < dof; ++i) {
    EXPECT_EQ(chain.joint(i).type, JointType::kRevolute);
    EXPECT_FALSE(chain.joint(i).hasLimits());
    const double expected = (i % 2 == 0) ? 1.0 : -1.0;
    EXPECT_NEAR(chain.joint(i).dh.alpha, expected * 1.5707963267948966,
                1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperLadder, SerpentinePreset,
                         ::testing::ValuesIn(kPaperDofLadder));

TEST(PlanarPreset, AllTwistsZero) {
  const Chain chain = makePlanar(7, 0.2);
  for (const Joint& j : chain.joints()) {
    EXPECT_DOUBLE_EQ(j.dh.alpha, 0.0);
    EXPECT_DOUBLE_EQ(j.dh.d, 0.0);
  }
  EXPECT_NEAR(chain.maxReach(), 1.4, 1e-12);
}

TEST(Puma560Preset, SixDofWithLimits) {
  const Chain puma = makePuma560();
  EXPECT_EQ(puma.dof(), 6u);
  for (const Joint& j : puma.joints()) EXPECT_TRUE(j.hasLimits());
  // Reach of a PUMA 560 is under a metre and above 0.5 m.
  EXPECT_GT(puma.maxReach(), 0.5);
  EXPECT_LT(puma.maxReach(), 1.5);
}

TEST(RandomChainPreset, DeterministicPerSeed) {
  const Chain a = makeRandomChain(15, 42);
  const Chain b = makeRandomChain(15, 42);
  const Chain c = makeRandomChain(15, 43);
  ASSERT_EQ(a.dof(), b.dof());
  bool all_equal_ab = true, all_equal_ac = true;
  for (std::size_t i = 0; i < a.dof(); ++i) {
    all_equal_ab &= a.joint(i).dh.a == b.joint(i).dh.a &&
                    a.joint(i).dh.alpha == b.joint(i).dh.alpha;
    all_equal_ac &= a.joint(i).dh.a == c.joint(i).dh.a &&
                    a.joint(i).dh.alpha == c.joint(i).dh.alpha;
  }
  EXPECT_TRUE(all_equal_ab);
  EXPECT_FALSE(all_equal_ac);
}

TEST(RandomChainPreset, LinkLengthsInRange) {
  const Chain chain = makeRandomChain(40, 7);
  for (const Joint& j : chain.joints()) {
    EXPECT_GE(j.dh.a, 0.05);
    EXPECT_LE(j.dh.a, 0.15);
  }
}

TEST(Workspace, ReachBallContainsAttainedPositions) {
  const Chain chain = makeSerpentine(12);
  const ReachBall ball = reachBall(chain);
  EXPECT_DOUBLE_EQ(ball.radius, chain.maxReach());
  const linalg::Vec3 stretched =
      endEffectorPosition(chain, chain.zeroConfiguration());
  EXPECT_TRUE(ball.contains(stretched));
}

TEST(Workspace, PlausiblyReachableRejectsFarTargets) {
  const Chain chain = makeSerpentine(12, 0.1);  // reach 1.2
  EXPECT_TRUE(plausiblyReachable(chain, {0.5, 0.0, 0.0}));
  EXPECT_FALSE(plausiblyReachable(chain, {2.0, 0.0, 0.0}));
  EXPECT_FALSE(plausiblyReachable(chain, {1.15, 0.0, 0.0}, /*margin=*/0.1));
}

TEST(Workspace, SerpentineCoversMoreVolumeThanPlanar) {
  // A 3-D dexterous chain should occupy far more of its reach ball
  // than a planar chain (which lives on a slice).
  const double serp = workspaceCoverage(makeSerpentine(12), 1500, 1);
  const double plan = workspaceCoverage(makePlanar(12), 1500, 1);
  EXPECT_GT(serp, plan * 2.0);
  EXPECT_GT(serp, 0.05);
}

}  // namespace
}  // namespace dadu::kin
