// Robot description I/O tests: parsing, validation errors, round
// trips, and the new presets.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/kinematics/robot_io.hpp"

namespace dadu::kin {
namespace {

TEST(RobotIo, ParsesMinimalDescription) {
  std::istringstream in(
      "name test-arm\n"
      "joint revolute a=0.1 alpha=1.5 d=0.02 theta=0.3\n"
      "joint prismatic a=0 alpha=0 d=0.05 min=0 max=0.3\n");
  const Chain chain = loadChain(in);
  EXPECT_EQ(chain.name(), "test-arm");
  ASSERT_EQ(chain.dof(), 2u);
  EXPECT_EQ(chain.joint(0).type, JointType::kRevolute);
  EXPECT_DOUBLE_EQ(chain.joint(0).dh.a, 0.1);
  EXPECT_DOUBLE_EQ(chain.joint(0).dh.alpha, 1.5);
  EXPECT_DOUBLE_EQ(chain.joint(0).dh.d, 0.02);
  EXPECT_DOUBLE_EQ(chain.joint(0).dh.theta, 0.3);
  EXPECT_FALSE(chain.joint(0).hasLimits());
  EXPECT_EQ(chain.joint(1).type, JointType::kPrismatic);
  EXPECT_DOUBLE_EQ(chain.joint(1).min, 0.0);
  EXPECT_DOUBLE_EQ(chain.joint(1).max, 0.3);
}

TEST(RobotIo, CommentsAndBlankLinesIgnored) {
  std::istringstream in(
      "# a robot\n"
      "\n"
      "name commented   # trailing comment\n"
      "joint revolute a=0.2  # the only joint\n");
  const Chain chain = loadChain(in);
  EXPECT_EQ(chain.name(), "commented");
  EXPECT_EQ(chain.dof(), 1u);
}

TEST(RobotIo, DefaultsApplied) {
  std::istringstream in("joint revolute a=0.5\n");
  const Chain chain = loadChain(in);
  EXPECT_EQ(chain.name(), "robot");
  EXPECT_DOUBLE_EQ(chain.joint(0).dh.alpha, 0.0);
  EXPECT_DOUBLE_EQ(chain.joint(0).dh.d, 0.0);
}

TEST(RobotIo, RejectsUnknownDirective) {
  std::istringstream in("link a=0.5\n");
  EXPECT_THROW(loadChain(in), std::runtime_error);
}

TEST(RobotIo, RejectsUnknownKey) {
  std::istringstream in("joint revolute length=0.5\n");
  EXPECT_THROW(loadChain(in), std::runtime_error);
}

TEST(RobotIo, RejectsBadNumber) {
  std::istringstream in("joint revolute a=abc\n");
  EXPECT_THROW(loadChain(in), std::runtime_error);
}

TEST(RobotIo, RejectsUnknownJointType) {
  std::istringstream in("joint spherical a=0.1\n");
  EXPECT_THROW(loadChain(in), std::runtime_error);
}

TEST(RobotIo, RejectsPrismaticWithoutLimits) {
  std::istringstream in("joint prismatic d=0.1\n");
  EXPECT_THROW(loadChain(in), std::runtime_error);
}

TEST(RobotIo, RejectsEmptyDescription) {
  std::istringstream in("# nothing here\n");
  EXPECT_THROW(loadChain(in), std::runtime_error);
}

TEST(RobotIo, ErrorMessagesCarryLineNumbers) {
  std::istringstream in(
      "name ok\n"
      "joint revolute a=0.1\n"
      "joint revolute a=oops\n");
  try {
    loadChain(in);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(RobotIo, MissingFileThrows) {
  EXPECT_THROW(loadChainFile("/nonexistent/robot.dh"), std::runtime_error);
}

class RobotIoRoundTrip : public ::testing::TestWithParam<const char*> {
 protected:
  Chain make() const {
    const std::string which = GetParam();
    if (which == "puma") return makePuma560();
    if (which == "iiwa") return makeKukaIiwa();
    if (which == "serpentine") return makeSerpentine(25);
    if (which == "tentacle") return makeTentacle(10);
    return makeRandomChain(15, 3);
  }
};

TEST_P(RobotIoRoundTrip, SaveLoadPreservesKinematics) {
  const Chain original = make();
  std::stringstream buffer;
  saveChain(original, buffer);
  const Chain loaded = loadChain(buffer);

  ASSERT_EQ(loaded.dof(), original.dof());
  EXPECT_EQ(loaded.name(), original.name());
  for (std::size_t i = 0; i < original.dof(); ++i) {
    EXPECT_EQ(loaded.joint(i).type, original.joint(i).type);
    EXPECT_DOUBLE_EQ(loaded.joint(i).dh.a, original.joint(i).dh.a);
    EXPECT_DOUBLE_EQ(loaded.joint(i).dh.alpha, original.joint(i).dh.alpha);
    EXPECT_DOUBLE_EQ(loaded.joint(i).min, original.joint(i).min);
    EXPECT_DOUBLE_EQ(loaded.joint(i).max, original.joint(i).max);
  }
  // Same forward kinematics at a probe configuration.
  linalg::VecX q(original.dof());
  for (std::size_t i = 0; i < q.size(); ++i)
    q[i] = original.joint(i).clamp(0.1 * static_cast<double>(i % 7) - 0.3);
  EXPECT_LT((endEffectorPosition(loaded, q) -
             endEffectorPosition(original, q))
                .norm(),
            1e-15);
}

INSTANTIATE_TEST_SUITE_P(Presets, RobotIoRoundTrip,
                         ::testing::Values("puma", "iiwa", "serpentine",
                                           "tentacle", "random"));

TEST(Presets, KukaIiwaStructure) {
  const Chain iiwa = makeKukaIiwa();
  EXPECT_EQ(iiwa.dof(), 7u);
  for (const Joint& j : iiwa.joints()) EXPECT_TRUE(j.hasLimits());
  // Stretch: d1 + d3 + d5 + d7 = 1.266 m.
  EXPECT_NEAR(iiwa.maxReach(), 1.266, 1e-9);
}

TEST(Presets, TentacleStructure) {
  const Chain t = makeTentacle(22);  // 44 DOF, the Valkyrie count
  EXPECT_EQ(t.dof(), 44u);
  EXPECT_NEAR(t.maxReach(), 22 * 0.08, 1e-12);
  // Universal-joint pairs: even joints have zero link length.
  for (std::size_t i = 0; i < t.dof(); i += 2)
    EXPECT_DOUBLE_EQ(t.joint(i).dh.a, 0.0);
}

}  // namespace
}  // namespace dadu::kin
