// IKAcc unit-model tests: FKU/SPU/SSU latency formulas, scheduler wave
// construction, selector tree depth, and the energy model.
#include <gtest/gtest.h>

#include "dadu/ikacc/config.hpp"
#include "dadu/ikacc/energy.hpp"
#include "dadu/ikacc/fku.hpp"
#include "dadu/ikacc/scheduler.hpp"
#include "dadu/ikacc/selector.hpp"
#include "dadu/ikacc/spu.hpp"
#include "dadu/ikacc/ssu.hpp"

namespace dadu::acc {
namespace {

TEST(Fku, MatmulMatches4x4OpCount) {
  const AccConfig cfg;
  const FkuCost c = fkuMatmul(cfg);
  EXPECT_EQ(c.ops.mul, 64);
  EXPECT_EQ(c.ops.add, 48);
  EXPECT_EQ(c.cycles, cfg.mm4_cycles);
}

TEST(Fku, ForwardPassScalesLinearly) {
  const AccConfig cfg;
  const FkuCost c10 = fkuForwardPass(cfg, 10);
  const FkuCost c20 = fkuForwardPass(cfg, 20);
  // cycles = fill + (n-1)*ii -> difference of 10 joints = 10*ii.
  const long long ii = std::max(cfg.dh_gen_cycles, cfg.mm4_cycles);
  EXPECT_EQ(c20.cycles - c10.cycles, 10 * ii);
  EXPECT_EQ(c20.ops.mul, 2 * c10.ops.mul);
  EXPECT_EQ(fkuForwardPass(cfg, 0).cycles, 0);
}

TEST(Fku, PaperScaleLatencyIsMicroseconds) {
  // "tens of cycles" per multiply, 100 joints -> a few thousand cycles
  // = a few microseconds at 1 GHz.
  const AccConfig cfg;
  const FkuCost c = fkuForwardPass(cfg, 100);
  EXPECT_GT(c.cycles, 1000);
  EXPECT_LT(c.cycles, 10'000);
}

TEST(Spu, PipelineBeatsUnpipelined) {
  const AccConfig cfg;
  for (std::size_t dof : {12u, 25u, 50u, 75u, 100u}) {
    EXPECT_LT(spuPipelinedCycles(cfg, dof), spuUnpipelinedCycles(cfg, dof))
        << dof;
  }
}

TEST(Spu, PipelineApproaches4xForLongChains) {
  // 4 balanced stages: asymptotic speedup approaches sum/max of the
  // stage latencies (plus the eliminated stores).
  const AccConfig cfg;
  const double speedup =
      static_cast<double>(spuUnpipelinedCycles(cfg, 100)) /
      static_cast<double>(spuPipelinedCycles(cfg, 100));
  EXPECT_GT(speedup, 2.0);
  EXPECT_LT(speedup, 8.0);
}

TEST(Spu, IterationCostUsesConfiguredFlow) {
  AccConfig piped;
  piped.pipelined_spu = true;
  AccConfig orig = piped;
  orig.pipelined_spu = false;
  EXPECT_EQ(spuIteration(piped, 50).cycles, spuPipelinedCycles(piped, 50));
  EXPECT_EQ(spuIteration(orig, 50).cycles, spuUnpipelinedCycles(orig, 50));
  // Unpipelined flow pays extra register/memory traffic.
  EXPECT_GT(spuIteration(orig, 50).ops.reg, spuIteration(piped, 50).ops.reg);
}

TEST(Spu, ZeroDofCostsNothing) {
  const AccConfig cfg;
  EXPECT_EQ(spuPipelinedCycles(cfg, 0), 0);
  EXPECT_EQ(spuUnpipelinedCycles(cfg, 0), 0);
}

TEST(Ssu, SpeculationDominatedByForwardPass) {
  const AccConfig cfg;
  const SsuCost s = ssuSpeculation(cfg, 100);
  const FkuCost f = fkuForwardPass(cfg, 100);
  EXPECT_GT(s.cycles, f.cycles);
  EXPECT_LT(s.cycles, f.cycles + 200);  // small fixed overhead on top
}

TEST(Ssu, UpdateLanesShortenThetaPhase) {
  AccConfig narrow;
  narrow.update_lanes = 1;
  AccConfig wide = narrow;
  wide.update_lanes = 8;
  EXPECT_GT(ssuSpeculation(narrow, 64).cycles, ssuSpeculation(wide, 64).cycles);
}

TEST(Scheduler, WaveCountIsCeilDiv) {
  EXPECT_EQ(waveCount(64, 32), 2u);
  EXPECT_EQ(waveCount(64, 64), 1u);
  EXPECT_EQ(waveCount(65, 32), 3u);
  EXPECT_EQ(waveCount(1, 32), 1u);
  EXPECT_EQ(waveCount(0, 32), 0u);
  EXPECT_EQ(waveCount(64, 0), 0u);
}

TEST(Scheduler, WavesPartitionAllSpeculations) {
  const auto waves = scheduleWaves(64, 32);
  ASSERT_EQ(waves.size(), 2u);
  EXPECT_EQ(waves[0].first, 0u);
  EXPECT_EQ(waves[0].count, 32u);
  EXPECT_EQ(waves[1].first, 32u);
  EXPECT_EQ(waves[1].count, 32u);

  const auto uneven = scheduleWaves(70, 32);
  ASSERT_EQ(uneven.size(), 3u);
  EXPECT_EQ(uneven[2].count, 6u);

  std::size_t covered = 0;
  for (const auto& w : uneven) covered += w.count;
  EXPECT_EQ(covered, 70u);
}

TEST(Selector, TreeDepthIsLogarithmic) {
  const AccConfig cfg;
  EXPECT_EQ(selectorWaveCycles(cfg, 0), 0);
  EXPECT_EQ(selectorWaveCycles(cfg, 1), 1);   // carry compare only
  EXPECT_EQ(selectorWaveCycles(cfg, 2), 2);   // 1 level + carry
  EXPECT_EQ(selectorWaveCycles(cfg, 32), 6);  // 5 levels + carry
  EXPECT_EQ(selectorWaveCycles(cfg, 33), 7);  // rounds up
}

TEST(Energy, DynamicPricesOpsAgainstTable) {
  EnergyTable table;
  OpCounts ops;
  ops.mul = 1000;
  ops.add = 2000;
  const double mj = dynamicEnergyMj(table, ops);
  EXPECT_NEAR(mj, (1000 * table.mul_pj + 2000 * table.add_pj) * 1e-9, 1e-18);
}

TEST(Energy, LeakageScalesWithTime) {
  AccConfig cfg;
  cfg.leakage_mw = 20.0;
  // 1e6 cycles at 1 GHz = 1 ms -> 20 mW * 1e-3 s = 0.02 mJ.
  EXPECT_NEAR(leakageEnergyMj(cfg, 1'000'000), 0.02, 1e-12);
}

TEST(Energy, FinalizeComputesAveragePower) {
  AccConfig cfg;
  AccStats stats;
  stats.total_cycles = 2'000'000;  // 2 ms at 1 GHz
  stats.ops.mul = 50'000'000;
  finalizeEnergy(cfg, stats);
  EXPECT_NEAR(stats.time_ms, 2.0, 1e-12);
  EXPECT_GT(stats.dynamic_energy_mj, 0.0);
  EXPECT_GT(stats.leakage_energy_mj, 0.0);
  EXPECT_NEAR(stats.avg_power_mw,
              stats.energyMj() / (stats.time_ms * 1e-3), 1e-9);
}

TEST(Config, AreaModelSumsUnits) {
  AccConfig cfg;
  cfg.num_ssus = 32;
  const double a32 = cfg.totalAreaMm2();
  cfg.num_ssus = 64;
  EXPECT_NEAR(cfg.totalAreaMm2() - a32, 32 * cfg.ssuAreaMm2(), 1e-12);
  // Default build lands near the paper's 2.27 mm^2.
  cfg.num_ssus = 32;
  EXPECT_GT(cfg.totalAreaMm2(), 2.0);
  EXPECT_LT(cfg.totalAreaMm2(), 2.6);
}

TEST(Config, FkuResourceCountTracksLatency) {
  AccConfig cfg;
  cfg.mm4_cycles = 64;  // fully serial: one multiplier suffices
  EXPECT_EQ(cfg.fkuMultipliers(), 1);
  cfg.mm4_cycles = 4;   // 4-cycle multiply: 16 multipliers
  EXPECT_EQ(cfg.fkuMultipliers(), 16);
  cfg.mm4_cycles = 24;  // the paper-like lean block
  EXPECT_EQ(cfg.fkuMultipliers(), 3);
  EXPECT_EQ(cfg.fkuAdders(), 2);
}

TEST(Config, FasterFkuCostsMoreArea) {
  AccConfig lean;
  lean.mm4_cycles = 24;
  AccConfig fat = lean;
  fat.mm4_cycles = 4;
  EXPECT_GT(fat.ssuAreaMm2(), 2.0 * lean.ssuAreaMm2());
}

}  // namespace
}  // namespace dadu::acc
