// Fixed-point arithmetic and CORDIC tests.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dadu/kinematics/forward_fixed.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/linalg/fixed_point.hpp"

namespace dadu::linalg {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(FixedFormat, RoundTripWithinResolution) {
  const FixedFormat fmt{20};
  for (double v : {0.0, 1.0, -1.0, 0.1234567, -987.654321, 3.0e3}) {
    const double back = fmt.toDouble(fmt.fromDouble(v));
    EXPECT_NEAR(back, v, fmt.resolution());
  }
}

TEST(FixedFormat, OneIsExact) {
  const FixedFormat fmt{16};
  EXPECT_EQ(fmt.fromDouble(1.0), fmt.one());
  EXPECT_DOUBLE_EQ(fmt.toDouble(fmt.one()), 1.0);
}

TEST(FixedFormat, MultiplyMatchesDoubleWithinLsb) {
  const FixedFormat fmt{24};
  for (double a : {0.5, -1.75, 3.14159, 100.0}) {
    for (double b : {0.25, -2.5, 0.001, 7.7}) {
      const double got =
          fmt.toDouble(fmt.mul(fmt.fromDouble(a), fmt.fromDouble(b)));
      EXPECT_NEAR(got, a * b, 200.0 * std::abs(a * b + 1.0) * fmt.resolution())
          << a << " * " << b;
    }
  }
}

TEST(FixedFormat, MultiplyRoundsToNearest) {
  const FixedFormat fmt{8};  // coarse: 1/256
  // 0.5 * (3/256) = 1.5/256 -> rounds to 2/256.
  const std::int64_t half = fmt.fromDouble(0.5);
  EXPECT_EQ(fmt.mul(half, 3), 2);
}

TEST(FixedFormat, ResolutionHalvesPerBit) {
  EXPECT_DOUBLE_EQ(FixedFormat{10}.resolution(),
                   2.0 * FixedFormat{11}.resolution());
}

class CordicAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(CordicAccuracy, MatchesStdTrig) {
  const int frac = GetParam();
  const FixedFormat fmt{frac};
  // Error floor: CORDIC converges ~1 bit/iteration; with iterations =
  // frac bits, expect accuracy within a few hundred LSBs (rounding
  // accumulates across iterations).
  const double tol = 300.0 * fmt.resolution() + 1e-9;
  for (double angle = -7.0; angle <= 7.0; angle += 0.137) {
    double s, c;
    cordicSinCos(fmt, angle, s, c);
    EXPECT_NEAR(s, std::sin(angle), tol) << "frac=" << frac << " a=" << angle;
    EXPECT_NEAR(c, std::cos(angle), tol) << "frac=" << frac << " a=" << angle;
  }
}

INSTANTIATE_TEST_SUITE_P(FracBits, CordicAccuracy,
                         ::testing::Values(12, 16, 20, 24, 28));

TEST(Cordic, CardinalAngles) {
  const FixedFormat fmt{24};
  double s, c;
  cordicSinCos(fmt, 0.0, s, c);
  EXPECT_NEAR(s, 0.0, 1e-5);
  EXPECT_NEAR(c, 1.0, 1e-5);
  cordicSinCos(fmt, kPi / 2.0, s, c);
  EXPECT_NEAR(s, 1.0, 1e-5);
  EXPECT_NEAR(c, 0.0, 1e-5);
  cordicSinCos(fmt, kPi, s, c);
  EXPECT_NEAR(s, 0.0, 1e-5);
  EXPECT_NEAR(c, -1.0, 1e-5);
  cordicSinCos(fmt, -kPi / 2.0, s, c);
  EXPECT_NEAR(s, -1.0, 1e-5);
  EXPECT_NEAR(c, 0.0, 1e-5);
}

TEST(Cordic, PythagoreanIdentityHolds) {
  const FixedFormat fmt{24};
  for (double angle = -3.0; angle <= 3.0; angle += 0.251) {
    double s, c;
    cordicSinCos(fmt, angle, s, c);
    EXPECT_NEAR(s * s + c * c, 1.0, 1e-4);
  }
}

TEST(Cordic, MoreIterationsMoreAccuracy) {
  const FixedFormat fmt{30};
  const double angle = 1.0;
  double s4, c4, s24, c24;
  cordicSinCos(fmt, angle, s4, c4, 6);
  cordicSinCos(fmt, angle, s24, c24, 24);
  EXPECT_LT(std::abs(s24 - std::sin(angle)), std::abs(s4 - std::sin(angle)));
  EXPECT_LT(std::abs(c24 - std::cos(angle)), std::abs(c4 - std::cos(angle)));
}

TEST(FixedFk, DeviationShrinksWithWordLength) {
  const auto chain = kin::makeSerpentine(25);
  const double coarse = kin::fkFixedMaxDeviation(chain, FixedFormat{12}, 30);
  const double fine = kin::fkFixedMaxDeviation(chain, FixedFormat{24}, 30);
  EXPECT_LT(fine, coarse);
  EXPECT_LT(fine, 1e-3);
}

TEST(FixedFk, Q24SafeAtPaperAccuracyFor100Dof) {
  const auto chain = kin::makeSerpentine(100);
  const double dev = kin::fkFixedMaxDeviation(chain, FixedFormat{24}, 30);
  EXPECT_LT(dev, 1e-3);  // an order below the 1e-2 m target
}

TEST(FixedFk, MatchesDoubleAtStretchedPose) {
  const auto chain = kin::makePlanar(8, 0.125);
  const auto q = chain.zeroConfiguration();
  const auto fixed_pos =
      kin::endEffectorPositionFixed(chain, q, FixedFormat{20});
  EXPECT_NEAR(fixed_pos.x, 1.0, 1e-4);
  EXPECT_NEAR(fixed_pos.y, 0.0, 1e-4);
}

}  // namespace
}  // namespace dadu::linalg
