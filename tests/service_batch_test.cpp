// Batched-dispatch tests: BoundedQueue::popMany semantics, the fused
// QuickIkSolver::solveMany path, and the IkService batch coalescer's
// contract — batching changes amortization, never per-request
// semantics.  The load-bearing claims:
//
//   - popMany is FIFO and matches pop()'s close/drain behaviour,
//   - fused batch solves are bit-identical to sequential solve() calls,
//   - a batched service returns bit-identical Responses to a
//     per-request service on the same workload,
//   - deadlines retire individual lanes (expired-at-pickup and
//     in-flight watchdog) without stalling batchmates,
//   - a fault-injected lane fails alone; batchmates solve, and the
//     exactly-one-outcome accounting holds.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dadu/fault/fault.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/service/ik_service.hpp"
#include "dadu/service/queue.hpp"
#include "dadu/sim/sim_clock.hpp"
#include "dadu/sim/sim_executor.hpp"
#include "dadu/solvers/factory.hpp"
#include "dadu/solvers/quick_ik.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::service {
namespace {

using namespace std::chrono_literals;

Job taggedJob(int tag) {
  Job job;
  job.enqueued = std::chrono::steady_clock::now();
  job.request.deadline_ms = tag;  // tag to check ordering
  return job;
}

// ---------------------------------------------------- BoundedQueue

TEST(BoundedQueuePopMany, FifoAcrossBursts) {
  BoundedQueue q(16);
  for (int i = 0; i < 10; ++i)
    ASSERT_EQ(q.tryPush(taggedJob(i)), PushResult::kAccepted);

  std::vector<Job> burst;
  int next = 0;
  while (next < 10) {
    const std::size_t got = q.popMany(burst, 4, 0us);
    ASSERT_GT(got, 0u);
    ASSERT_LE(got, 4u);
    for (const Job& job : burst) EXPECT_EQ(job.request.deadline_ms, next++);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueuePopMany, CapsAtMaxItems) {
  BoundedQueue q(16);
  for (int i = 0; i < 7; ++i)
    ASSERT_EQ(q.tryPush(taggedJob(i)), PushResult::kAccepted);
  std::vector<Job> burst;
  EXPECT_EQ(q.popMany(burst, 3, 0us), 3u);
  EXPECT_EQ(q.size(), 4u);
}

TEST(BoundedQueuePopMany, DrainsAfterCloseThenReturnsZero) {
  // Same contract as pop(): closed-but-nonempty keeps serving, closed
  // and empty returns 0 — so shutdown drains finish every queued job.
  BoundedQueue q(8);
  for (int i = 0; i < 5; ++i)
    ASSERT_EQ(q.tryPush(taggedJob(i)), PushResult::kAccepted);
  q.close();

  std::vector<Job> burst;
  EXPECT_EQ(q.popMany(burst, 8, 500us), 5u);  // linger must not block on closed
  for (int i = 0; i < 5; ++i) EXPECT_EQ(burst[i].request.deadline_ms, i);
  EXPECT_EQ(q.popMany(burst, 8, 500us), 0u);
  EXPECT_TRUE(burst.empty());
}

TEST(BoundedQueuePopMany, BlocksUntilWorkOrClose) {
  BoundedQueue q(8);
  std::vector<Job> burst;
  std::promise<std::size_t> got;
  std::thread consumer(
      [&] { got.set_value(q.popMany(burst, 4, 0us)); });
  std::this_thread::sleep_for(20ms);
  ASSERT_EQ(q.tryPush(taggedJob(42)), PushResult::kAccepted);
  auto f = got.get_future();
  ASSERT_EQ(f.wait_for(5s), std::future_status::ready);
  EXPECT_EQ(f.get(), 1u);
  EXPECT_EQ(burst[0].request.deadline_ms, 42);
  consumer.join();

  std::thread blocked([&] { EXPECT_EQ(q.popMany(burst, 4, 0us), 0u); });
  std::this_thread::sleep_for(20ms);
  q.close();
  blocked.join();
}

TEST(BoundedQueuePopMany, LingerCollectsStragglers) {
  // The coalescing window: a consumer holding an under-filled burst
  // takes arrivals that land inside max_wait and returns full.
  BoundedQueue q(8);
  ASSERT_EQ(q.tryPush(taggedJob(0)), PushResult::kAccepted);
  std::vector<Job> burst;
  std::thread consumer([&] {
    // Generous window so the test is not timing-sensitive; returns as
    // soon as the burst fills, long before the window expires.
    EXPECT_EQ(q.popMany(burst, 3, std::chrono::microseconds(5'000'000)), 3u);
  });
  std::this_thread::sleep_for(20ms);
  ASSERT_EQ(q.tryPush(taggedJob(1)), PushResult::kAccepted);
  ASSERT_EQ(q.tryPush(taggedJob(2)), PushResult::kAccepted);
  consumer.join();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(burst[i].request.deadline_ms, i);
}

// ------------------------------------------- fused solver batches

ik::SolveOptions fastOptions() {
  ik::SolveOptions options;
  options.accuracy = 1e-3;
  options.max_iterations = 300;
  options.speculations = 8;
  return options;
}

TEST(QuickIkSolveMany, BitIdenticalToSequentialSolves) {
  const auto chain = kin::makeSerpentine(10);
  const auto tasks = workload::generateTasks(chain, 24);

  ik::QuickIkSolver sequential(chain, fastOptions());
  ik::QuickIkSolver fused(chain, fastOptions());

  std::vector<ik::BatchLane> lanes;
  for (const auto& task : tasks) lanes.push_back({task.target, &task.seed, {}});
  std::vector<ik::BatchLaneResult> outcomes(lanes.size());
  fused.solveMany(lanes.data(), outcomes.data(), lanes.size());

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const ik::SolveResult expected =
        sequential.solve(tasks[i].target, tasks[i].seed);
    ASSERT_FALSE(outcomes[i].error) << i;
    const ik::SolveResult& got = outcomes[i].result;
    EXPECT_EQ(got.theta, expected.theta) << i;
    EXPECT_EQ(got.error, expected.error) << i;
    EXPECT_EQ(got.status, expected.status) << i;
    EXPECT_EQ(got.iterations, expected.iterations) << i;
    EXPECT_EQ(got.fk_evaluations, expected.fk_evaluations) << i;
    EXPECT_GT(outcomes[i].solve_ms, 0.0) << i;
  }
}

TEST(QuickIkSolveMany, InvalidLaneFailsAloneInFusedBatch) {
  const auto chain = kin::makeSerpentine(10);
  const auto tasks = workload::generateTasks(chain, 4);
  ik::QuickIkSolver solver(chain, fastOptions());

  linalg::VecX bad_seed(3);  // wrong dof — validateInputs throws
  std::vector<ik::BatchLane> lanes;
  for (const auto& task : tasks) lanes.push_back({task.target, &task.seed, {}});
  lanes[1].seed = &bad_seed;

  std::vector<ik::BatchLaneResult> outcomes(lanes.size());
  solver.solveMany(lanes.data(), outcomes.data(), lanes.size());

  EXPECT_TRUE(outcomes[1].error);
  for (std::size_t i : {0u, 2u, 3u}) {
    ASSERT_FALSE(outcomes[i].error) << i;
    EXPECT_TRUE(outcomes[i].result.converged()) << i;
  }
}

// --------------------------------------------- service batch path

Request plainRequest(const kin::Chain& chain, std::uint32_t index) {
  const auto task = workload::generateTask(chain, index);
  Request request;
  request.target = task.target;
  request.seed = task.seed;
  request.use_seed_cache = false;
  return request;
}

TEST(ServiceBatch, BatchedResponsesBitIdenticalToPerRequest) {
  const auto chain = kin::makeSerpentine(8);
  constexpr std::uint32_t kRequests = 48;

  const auto run = [&](std::size_t max_batch, std::uint32_t batch_wait_us) {
    ServiceConfig config;
    config.workers = 1;
    config.queue_capacity = kRequests;
    config.enable_seed_cache = false;  // identical inputs lane by lane
    config.max_batch = max_batch;
    config.batch_wait_us = batch_wait_us;
    IkService svc([&] { return ik::makeSolver("quick-ik", chain, {}); },
                  config);
    std::vector<std::future<Response>> futures;
    for (std::uint32_t i = 0; i < kRequests; ++i)
      futures.push_back(svc.submit(plainRequest(chain, i)));
    std::vector<Response> responses;
    for (auto& f : futures) responses.push_back(f.get());
    return responses;
  };

  const auto per_request = run(1, 0);
  const auto batched = run(8, 100);
  ASSERT_EQ(per_request.size(), batched.size());
  for (std::size_t i = 0; i < per_request.size(); ++i) {
    EXPECT_EQ(batched[i].status, per_request[i].status) << i;
    EXPECT_EQ(batched[i].result.theta, per_request[i].result.theta) << i;
    EXPECT_EQ(batched[i].result.error, per_request[i].result.error) << i;
    EXPECT_EQ(batched[i].result.status, per_request[i].result.status) << i;
    EXPECT_EQ(batched[i].result.iterations, per_request[i].result.iterations)
        << i;
  }
}

TEST(ServiceBatch, ExpiredLanesDropWhileBatchmatesSolve) {
  // Executor-mode rewrite of what used to be a real-sleep gate: all 8
  // requests are queued before the single cooperative worker takes its
  // first step, so they form one burst, and a *virtual* 80ms pickup
  // stall expires the two 5ms-deadline lanes at pickup while their
  // batchmates still solve.  No sleeps, no timing margins — the stall
  // charges the SimClock, and pickup-time deadline arithmetic reads
  // the same clock.
  const auto chain = kin::makeSerpentine(8);
  sim::SimClock clock;
  sim::SimExecutor exec(clock, 1);
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 16;
  config.enable_seed_cache = false;
  config.max_batch = 8;
  config.batch_wait_us = 0;
  config.stat_shards = 1;
  config.clock = &clock;
  config.executor = &exec;
  IkService svc([&] { return ik::makeSolver("quick-ik", chain, {}); }, config);

  fault::FaultPlan plan;
  plan.delayAt("service.worker.stall", 80.0, {.nth = 1});
  fault::ScopedFaultPlan armed(plan);

  std::vector<Response> responses(8);
  for (std::uint32_t i = 0; i < 8; ++i) {
    Request request = plainRequest(chain, i);
    if (i == 2 || i == 5) request.deadline_ms = 5.0;  // expires in the stall
    svc.submit(std::move(request),
               [&responses, i](Response r) { responses[i] = std::move(r); });
  }
  exec.drain();

  for (std::uint32_t i = 0; i < 8; ++i) {
    if (i == 2 || i == 5) {
      EXPECT_EQ(responses[i].status, ResponseStatus::kDeadlineExceeded) << i;
    } else {
      EXPECT_EQ(responses[i].status, ResponseStatus::kSolved) << i;
      EXPECT_TRUE(responses[i].result.converged()) << i;
    }
  }

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.deadline_expired, 2u);
  EXPECT_EQ(stats.solved, 6u);
  EXPECT_EQ(stats.batched_lanes, 8u);
  EXPECT_EQ(stats.batches, 1u);  // one full deterministic burst
  EXPECT_EQ(stats.accounted(), stats.submitted);
}

TEST(ServiceBatch, InFlightDeadlineTimesOutOneLaneNotItsBatchmates) {
  // One lane gets an unreachable target, a deadline, and a huge
  // iteration budget: the fused watchdog must retire it (kTimedOut,
  // best-so-far theta) while batchmates converge normally.
  //
  // Stays on the real clock deliberately: the watchdog races actual
  // solver compute against the deadline, and a real solve cannot
  // advance a SimClock — this is the one batch behaviour the sim seam
  // cannot carry.
  const auto chain = kin::makeSerpentine(8);
  ik::SolveOptions options;
  options.accuracy = 1e-3;
  options.max_iterations = 5'000'000;  // deadline, not budget, ends it
  options.speculations = 8;
  // Projected descent: the monotone stall guard is exempt, so the
  // unreachable lane grinds at the joint-limit boundary until the
  // watchdog fires instead of retiring early as kStalled.
  options.clamp_to_limits = true;

  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 16;
  config.enable_seed_cache = false;
  config.max_batch = 8;
  config.batch_wait_us = 0;
  IkService svc([&] { return ik::makeSolver("quick-ik", chain, options); },
                config);

  fault::FaultPlan plan;
  plan.delayAt("service.worker.stall", 50.0, {.nth = 1});
  fault::ScopedFaultPlan armed(plan);

  auto gate = svc.submit(plainRequest(chain, 0));
  std::this_thread::sleep_for(10ms);

  std::vector<std::future<Response>> futures;
  for (std::uint32_t i = 1; i < 6; ++i) {
    Request request = plainRequest(chain, i);
    if (i == 3) {
      request.target = {100.0, 100.0, 100.0};  // far outside the workspace
      request.deadline_ms = 200.0;
    }
    futures.push_back(svc.submit(std::move(request)));
  }

  EXPECT_EQ(gate.get().status, ResponseStatus::kSolved);
  for (std::uint32_t i = 1; i < 6; ++i) {
    const Response r = futures[i - 1].get();
    EXPECT_EQ(r.status, ResponseStatus::kSolved) << i;
    if (i == 3) {
      EXPECT_EQ(r.result.status, ik::Status::kTimedOut);
      EXPECT_EQ(r.result.theta.size(), chain.dof());  // best-so-far iterate
    } else {
      EXPECT_TRUE(r.result.converged()) << i;
    }
  }
  EXPECT_EQ(svc.stats().timed_out, 1u);
}

TEST(ServiceBatch, FaultedLaneFailsAloneAndIsAccounted) {
  // solver.iterate fires once, inside exactly one lane of a batch: that
  // future must throw, every other lane must solve, and the terminal
  // accounting must balance (exactly one outcome per request).
  const auto chain = kin::makeSerpentine(8);
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 16;
  config.enable_seed_cache = false;
  config.max_batch = 8;
  config.batch_wait_us = 200;
  IkService svc([&] { return ik::makeSolver("quick-ik", chain, {}); }, config);

  fault::FaultPlan plan;
  plan.errorAt("solver.iterate", "injected lane fault", {.nth = 1});
  fault::ScopedFaultPlan armed(plan);

  constexpr std::uint32_t kRequests = 8;
  std::vector<std::future<Response>> futures;
  for (std::uint32_t i = 0; i < kRequests; ++i)
    futures.push_back(svc.submit(plainRequest(chain, i)));

  std::size_t solved = 0, threw = 0;
  for (auto& f : futures) {
    try {
      const Response r = f.get();
      EXPECT_EQ(r.status, ResponseStatus::kSolved);
      ++solved;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "injected lane fault");
      ++threw;
    }
  }
  EXPECT_EQ(threw, 1u);
  EXPECT_EQ(solved, kRequests - 1);

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.internal_errors, 1u);
  EXPECT_EQ(stats.solved, kRequests - 1);
  EXPECT_EQ(stats.accounted(), stats.submitted);
}

TEST(ServiceBatch, OccupancyHistogramTracksBurstSizes) {
  // Executor mode makes occupancy a scheduling fact instead of a race:
  // all 9 submissions land in the queue before the worker's first
  // dispatch step, so popMany drains a full burst of 8 and then the
  // straggler — no worker-stall fault, no sleeps, no margins.
  const auto chain = kin::makeSerpentine(8);
  sim::SimClock clock;
  sim::SimExecutor exec(clock, 1);
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 16;
  config.enable_seed_cache = false;
  config.max_batch = 8;
  config.batch_wait_us = 0;
  config.stat_shards = 1;
  config.clock = &clock;
  config.executor = &exec;
  IkService svc([&] { return ik::makeSolver("quick-ik", chain, {}); }, config);

  std::size_t done = 0;
  for (std::uint32_t i = 0; i < 9; ++i)
    svc.submit(plainRequest(chain, i), [&done](Response) { ++done; });
  exec.drain();
  ASSERT_EQ(done, 9u);

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.batched_lanes, 9u);
  EXPECT_DOUBLE_EQ(stats.meanBatchOccupancy(), 4.5);
  EXPECT_EQ(stats.batch_occupancy_hist.count, 2u);
  EXPECT_GE(stats.batch_occupancy_hist.p99(), 7.0);
}

}  // namespace
}  // namespace dadu::service
