// Serving-layer concurrency stress: many producers against many
// workers, admission under overload, and shutdown racing submission.
// Every future must resolve exactly once with an accounted-for
// outcome; nothing may hang.  These tests are the TSan targets of the
// service PR (see tools/run_tier1.sh for the invocation).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "dadu/core/batch_runner.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/service/ik_service.hpp"
#include "dadu/solvers/factory.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::service {
namespace {

ik::SolveOptions fastOptions() {
  ik::SolveOptions options;
  options.max_iterations = 300;  // keep stress iterations cheap
  return options;
}

ServiceConfig makeConfig(std::size_t workers, std::size_t capacity,
                         bool cache = false) {
  ServiceConfig config;
  config.workers = workers;
  config.queue_capacity = capacity;
  config.enable_seed_cache = cache;
  return config;
}

TEST(ServiceStress, ManyProducersManyWorkersAllResolveExactlyOnce) {
  const auto chain = kin::makeSerpentine(6);
  constexpr int kProducers = 6;
  constexpr int kPerProducer = 40;
  const auto tasks =
      workload::generateTasks(chain, kProducers * kPerProducer);

  IkService svc([&] { return ik::makeSolver("quick-ik", chain, fastOptions()); },
                makeConfig(4, 1024));

  std::vector<std::vector<std::future<Response>>> futures(kProducers);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      futures[p].reserve(kPerProducer);
      for (int i = 0; i < kPerProducer; ++i) {
        const auto& task = tasks[static_cast<std::size_t>(p * kPerProducer + i)];
        futures[p].push_back(
            svc.submit({.target = task.target, .seed = task.seed}));
      }
    });
  }
  for (auto& t : producers) t.join();

  int solved = 0;
  for (auto& per_producer : futures) {
    for (auto& f : per_producer) {
      ASSERT_TRUE(f.valid());
      const Response r = f.get();  // each future resolves exactly once
      EXPECT_FALSE(f.valid());     // ... and is consumed
      if (r.status == ResponseStatus::kSolved) ++solved;
    }
  }
  EXPECT_EQ(solved, kProducers * kPerProducer);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(solved));
  EXPECT_EQ(stats.solved, static_cast<std::uint64_t>(solved));
}

TEST(ServiceStress, OverloadShedsButAccountsForEveryRequest) {
  const auto chain = kin::makeSerpentine(6);
  const auto tasks = workload::generateTasks(chain, 160);

  // Tiny queue + one worker: a burst of 160 must shed most requests.
  IkService svc([&] { return ik::makeSolver("quick-ik", chain, fastOptions()); },
                makeConfig(1, 4));

  std::vector<std::future<Response>> futures;
  futures.reserve(tasks.size());
  for (const auto& task : tasks)
    futures.push_back(svc.submit({.target = task.target, .seed = task.seed}));

  std::uint64_t solved = 0, rejected = 0;
  for (auto& f : futures) {
    const Response r = f.get();
    if (r.status == ResponseStatus::kSolved) {
      ++solved;
    } else {
      ASSERT_EQ(r.status, ResponseStatus::kRejected);
      EXPECT_EQ(r.reject_reason, RejectReason::kQueueFull);
      ++rejected;
    }
  }
  EXPECT_EQ(solved + rejected, tasks.size());
  EXPECT_GT(rejected, 0u);  // 160 arrivals cannot all fit 1 worker + 4 slots
  const auto stats = svc.stats();
  EXPECT_EQ(stats.rejected_queue_full, rejected);
  EXPECT_EQ(stats.solved, solved);
}

TEST(ServiceStress, StopRacingProducersNeverHangsOrLosesAFuture) {
  const auto chain = kin::makeSerpentine(6);
  const auto tasks = workload::generateTasks(chain, 120);

  IkService svc([&] { return ik::makeSolver("quick-ik", chain, fastOptions()); },
                makeConfig(2, 16));

  std::vector<std::future<Response>> futures(tasks.size());
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= tasks.size()) return;
        futures[i] = svc.submit({.target = tasks[i].target,
                                 .seed = tasks[i].seed});
      }
    });
  }
  // Stop mid-stream: everything already queued drains, later submits
  // resolve Rejected{Shutdown}.
  svc.stop(IkService::Drain::kDrainPending);
  for (auto& t : producers) t.join();

  std::uint64_t solved = 0, shed = 0, shutdown = 0;
  for (auto& f : futures) {
    ASSERT_TRUE(f.valid());
    const Response r = f.get();
    switch (r.status) {
      case ResponseStatus::kSolved:
        ++solved;
        break;
      case ResponseStatus::kRejected:
        if (r.reject_reason == RejectReason::kShutdown)
          ++shutdown;
        else
          ++shed;
        break;
      case ResponseStatus::kDeadlineExceeded:
        FAIL() << "no deadlines were set";
    }
  }
  EXPECT_EQ(solved + shed + shutdown, tasks.size());
}

TEST(ServiceStress, ConcurrentCacheUseStaysCoherent) {
  const auto chain = kin::makeSerpentine(8);
  const auto tasks = workload::generateClusteredTasks(chain, 200, 5);

  IkService svc([&] { return ik::makeSolver("quick-ik", chain, fastOptions()); },
                makeConfig(4, 256, /*cache=*/true));

  std::vector<std::future<Response>> futures;
  futures.reserve(tasks.size());
  for (const auto& task : tasks)
    futures.push_back(svc.submit({.target = task.target, .seed = task.seed}));

  int solved = 0;
  for (auto& f : futures) {
    const Response r = f.get();
    if (r.status == ResponseStatus::kSolved) {
      ++solved;
      // A cached seed must still produce a valid converged result.
      if (r.seeded_from_cache) {
        EXPECT_TRUE(r.result.converged());
      }
    }
  }
  EXPECT_EQ(solved, 200);
  const auto cache_stats = svc.seedCache().stats();
  EXPECT_GT(cache_stats.hits, 0u);
  EXPECT_EQ(cache_stats.inserts,
            static_cast<std::uint64_t>(svc.stats().converged));
}

TEST(ServiceStress, BatchRunnerOnServiceMatchesSerialUnderLoad) {
  // The rebased solveBatchParallel must keep task-order, bit-identical
  // results while the dispatch underneath is the shared service.
  const auto chain = kin::makeSerpentine(10);
  const auto tasks = workload::generateTasks(chain, 24);
  const SolverFactory factory = [&] {
    return ik::makeSolver("quick-ik", chain, fastOptions());
  };
  const auto serial = solveBatchParallel(factory, tasks, 1);
  const auto parallel = solveBatchParallel(factory, tasks, 4);
  ASSERT_EQ(serial.results.size(), parallel.results.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(serial.results[i].theta, parallel.results[i].theta) << i;
    EXPECT_EQ(serial.results[i].iterations, parallel.results[i].iterations);
  }
}

}  // namespace
}  // namespace dadu::service
