// Workload generation tests: determinism, reachability-by-construction,
// stream independence and trajectory generators.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/kinematics/workspace.hpp"
#include "dadu/workload/rng.hpp"
#include "dadu/workload/targets.hpp"
#include "dadu/linalg/rotation.hpp"
#include "dadu/workload/trajectory.hpp"

namespace dadu::workload {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 10; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    EXPECT_NE(va, c.next());  // astronomically unlikely to collide
  }
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, AngleInPlusMinusPi) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.angle();
    EXPECT_GE(a, -3.14159266);
    EXPECT_LT(a, 3.14159266);
  }
}

TEST(Rng, UniformMeanRoughlyCentred) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, StreamsAreIndependent) {
  Rng a = Rng::forStream(1, 0);
  Rng b = Rng::forStream(1, 1);
  int same = 0;
  for (int i = 0; i < 20; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Targets, ReachableByConstruction) {
  const auto chain = kin::makeSerpentine(25);
  const auto tasks = generateTasks(chain, 20);
  for (const auto& task : tasks) {
    // The generating configuration reproduces the target exactly.
    const auto p = kin::endEffectorPosition(chain, task.generator);
    EXPECT_LT((p - task.target).norm(), 1e-12);
    EXPECT_TRUE(kin::plausiblyReachable(chain, task.target));
  }
}

TEST(Targets, DeterministicAcrossCalls) {
  const auto chain = kin::makeSerpentine(12);
  const auto a = generateTasks(chain, 5);
  const auto b = generateTasks(chain, 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(a[i].target, b[i].target);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

TEST(Targets, IndexedGenerationMatchesBatch) {
  const auto chain = kin::makeSerpentine(12);
  const auto batch = generateTasks(chain, 8);
  for (int i = 0; i < 8; ++i) {
    const auto single = generateTask(chain, i);
    EXPECT_EQ(batch[i].target, single.target);
    EXPECT_EQ(batch[i].seed, single.seed);
  }
}

TEST(Targets, ClusteredTasksReachableAndDeterministic) {
  const auto chain = kin::makeSerpentine(12);
  const auto a = generateClusteredTasks(chain, 20, 4);
  const auto b = generateClusteredTasks(chain, 20, 4);
  ASSERT_EQ(a.size(), 20u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Reachable by construction.
    const auto fk = kin::endEffectorPosition(chain, a[i].generator);
    EXPECT_NEAR((fk - a[i].target).norm(), 0.0, 1e-12);
    // Deterministic across calls.
    EXPECT_EQ(a[i].target, b[i].target);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

TEST(Targets, ClusteredTasksBunchAroundTheirCenters) {
  const auto chain = kin::makeSerpentine(12);
  const int clusters = 4;
  const auto tasks = generateClusteredTasks(chain, 24, clusters, 0.02);
  const auto centers = generateTasks(chain, clusters);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto& center = centers[i % static_cast<std::size_t>(clusters)];
    // A <=0.02 rad perturbation per joint moves a 12-link arm's end
    // effector by well under link_count * spread * reach.
    EXPECT_LT((tasks[i].target - center.target).norm(),
              0.02 * static_cast<double>(chain.dof()) * chain.maxReach());
    // Seeds stay full-range random, not clustered.
  }
}

TEST(Targets, ClusteredTasksRespectJointLimits) {
  const auto chain = kin::makePuma560();  // has finite limits
  const auto tasks = generateClusteredTasks(chain, 12, 3, 0.5);
  for (const auto& task : tasks)
    for (std::size_t j = 0; j < chain.dof(); ++j) {
      const auto& joint = chain.joint(j);
      if (std::isfinite(joint.min)) EXPECT_GE(task.generator[j], joint.min);
      if (std::isfinite(joint.max)) EXPECT_LE(task.generator[j], joint.max);
    }
}

TEST(Targets, DistinctAcrossIndices) {
  const auto chain = kin::makeSerpentine(12);
  const auto tasks = generateTasks(chain, 10);
  std::set<double> xs;
  for (const auto& t : tasks) xs.insert(t.target.x);
  EXPECT_EQ(xs.size(), 10u);
}

TEST(Targets, SeedsAreSmall) {
  const auto chain = kin::makeSerpentine(12);
  TargetGenOptions opts;
  opts.seed_joint_range = 0.1;
  const auto tasks = generateTasks(chain, 10, opts);
  for (const auto& t : tasks) EXPECT_LE(t.seed.maxAbs(), 0.1);
}

TEST(Targets, MinRadiusRespectedWhenPossible) {
  const auto chain = kin::makeSerpentine(25);
  TargetGenOptions opts;
  opts.min_radius_fraction = 0.15;
  const auto tasks = generateTasks(chain, 30, opts);
  int ok = 0;
  for (const auto& t : tasks)
    if (t.target.norm() >= 0.15 * chain.maxReach()) ++ok;
  // Redraw budget makes violations rare, not impossible.
  EXPECT_GE(ok, 28);
}

TEST(Trajectory, LineEndpointsAndCount) {
  const auto path = lineTrajectory({0, 0, 0}, {1, 2, 3}, 5);
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path.front(), linalg::Vec3(0, 0, 0));
  EXPECT_EQ(path.back(), linalg::Vec3(1, 2, 3));
  // Even spacing.
  const double step = (path[1] - path[0]).norm();
  for (std::size_t i = 1; i < path.size(); ++i)
    EXPECT_NEAR((path[i] - path[i - 1]).norm(), step, 1e-12);
}

TEST(Trajectory, CircleRadiusConstant) {
  const linalg::Vec3 c{1, 2, 3};
  const auto path = circleTrajectory(c, 0.5, {1, 0, 0}, {0, 1, 0}, 16);
  ASSERT_EQ(path.size(), 16u);
  for (const auto& p : path) EXPECT_NEAR((p - c).norm(), 0.5, 1e-12);
}

TEST(Trajectory, CircleHandlesNonOrthogonalBasis) {
  const auto path = circleTrajectory({0, 0, 0}, 1.0, {1, 0, 0}, {1, 1, 0}, 8);
  for (const auto& p : path) EXPECT_NEAR(p.norm(), 1.0, 1e-12);
}

TEST(Trajectory, LissajousBounded) {
  const auto path = lissajousTrajectory({0, 0, 0}, 0.3, 3, 2, 1, 0.5, 50);
  for (const auto& p : path) {
    EXPECT_LE(std::abs(p.x), 0.3 + 1e-12);
    EXPECT_LE(std::abs(p.y), 0.3 + 1e-12);
    EXPECT_LE(std::abs(p.z), 0.3 + 1e-12);
  }
}

TEST(Trajectory, FitToWorkspaceScalesIntoBall) {
  const auto chain = kin::makeSerpentine(12, 0.1);  // reach 1.2
  auto path = lineTrajectory({0, 0, 0}, {10, 0, 0}, 10);
  path = fitToWorkspace(chain, std::move(path), 0.2);
  for (const auto& p : path)
    EXPECT_LE(p.norm(), 1.2 * 0.8 + 1e-9);
}

TEST(Trajectory, FitToWorkspaceKeepsAlreadyFittingPath) {
  const auto chain = kin::makeSerpentine(12, 0.1);
  const auto orig = lineTrajectory({0.1, 0, 0}, {0.2, 0, 0}, 4);
  const auto fitted = fitToWorkspace(chain, orig, 0.2);
  for (std::size_t i = 0; i < orig.size(); ++i) EXPECT_EQ(orig[i], fitted[i]);
}


TEST(Trajectory, PoseTrajectoryEndpointsAndInterpolation) {
  kin::Pose a;
  a.position = {0, 0, 0};
  a.orientation = linalg::axisAngle(linalg::Vec3::unitZ(), 0.0);
  kin::Pose b;
  b.position = {1, 0, 0};
  b.orientation = linalg::axisAngle(linalg::Vec3::unitZ(), 1.0);

  const auto path = poseTrajectory(a, b, 5);
  ASSERT_EQ(path.size(), 5u);
  EXPECT_LT((path.front().position - a.position).norm(), 1e-12);
  EXPECT_LT((path.back().position - b.position).norm(), 1e-12);
  EXPECT_LT(linalg::rotationAngleBetween(path.back().orientation,
                                         b.orientation),
            1e-9);
  // Midpoint: half the translation, half the rotation.
  EXPECT_NEAR(path[2].position.x, 0.5, 1e-12);
  EXPECT_NEAR(linalg::rotationAngleBetween(a.orientation,
                                           path[2].orientation),
              0.5, 1e-9);
  // Orientation steps are uniform (slerp, not lerp).
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_NEAR(linalg::rotationAngleBetween(path[i - 1].orientation,
                                             path[i].orientation),
                0.25, 1e-9);
  }
}

TEST(Trajectory, PoseTrajectorySinglePoint) {
  kin::Pose a;
  a.position = {1, 2, 3};
  const auto path = poseTrajectory(a, a, 1);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0].position, a.position);
}

TEST(SpecMix, PerSpecSubsequenceMatchesSingleRobotWorkload) {
  // The multi-spec contract: extracting spec s's tasks from the mixed
  // stream yields exactly generateTask(chains[s], 0..k) in order, so a
  // multi-spec run and a dedicated single-robot run solve identical
  // per-spec workloads.
  const std::vector<kin::Chain> chains = {
      kin::makeSerpentine(5), kin::makeSerpentine(8), kin::makeSerpentine(11)};
  const auto mixed = generateSpecMixTasks(chains, 120, /*mix_seed=*/9);
  ASSERT_EQ(mixed.size(), 120u);

  std::vector<int> next(chains.size(), 0);
  std::vector<std::size_t> per_spec(chains.size(), 0);
  for (const SpecTask& st : mixed) {
    ASSERT_LT(st.spec_id, chains.size());
    const IkTask expect =
        generateTask(chains[st.spec_id], next[st.spec_id]++);
    EXPECT_EQ(st.task.target.x, expect.target.x);
    EXPECT_EQ(st.task.target.y, expect.target.y);
    EXPECT_EQ(st.task.target.z, expect.target.z);
    ASSERT_EQ(st.task.seed.size(), expect.seed.size());
    for (std::size_t j = 0; j < expect.seed.size(); ++j)
      EXPECT_EQ(st.task.seed[j], expect.seed[j]);
    ++per_spec[st.spec_id];
  }
  // Every spec participates, and the mix is deterministic in its seed.
  for (std::size_t s = 0; s < chains.size(); ++s) EXPECT_GT(per_spec[s], 0u);
  const auto replay = generateSpecMixTasks(chains, 120, /*mix_seed=*/9);
  for (std::size_t i = 0; i < mixed.size(); ++i)
    EXPECT_EQ(mixed[i].spec_id, replay[i].spec_id);
}

}  // namespace
}  // namespace dadu::workload
