// Platform model tests: GPU/CPU analytic estimates behave per the
// paper's qualitative analysis (overhead-dominated GPU, DOF scaling,
// energy = power * time).
#include <gtest/gtest.h>

#include "dadu/platform/cpu_model.hpp"
#include "dadu/platform/gpu_model.hpp"
#include "dadu/platform/timer.hpp"

namespace dadu::platform {
namespace {

TEST(GpuModel, ZeroIterationsCostNothing) {
  const GpuModelConfig cfg;
  const auto est = estimateGpuQuickIk(cfg, 100, 0.0, 64);
  EXPECT_DOUBLE_EQ(est.time_ms, 0.0);
  EXPECT_DOUBLE_EQ(est.energy_j, 0.0);
}

TEST(GpuModel, TimeScalesLinearlyWithIterations) {
  const GpuModelConfig cfg;
  const auto e1 = estimateGpuQuickIk(cfg, 50, 100.0, 64);
  const auto e2 = estimateGpuQuickIk(cfg, 50, 200.0, 64);
  EXPECT_NEAR(e2.time_ms, 2.0 * e1.time_ms, 1e-9);
}

TEST(GpuModel, GrowsWithDof) {
  const GpuModelConfig cfg;
  EXPECT_GT(estimateGpuQuickIk(cfg, 100, 100.0, 64).time_ms,
            estimateGpuQuickIk(cfg, 12, 100.0, 64).time_ms);
}

TEST(GpuModel, OverheadDominatesAtLowDof) {
  // The paper's Section 6.3.1 point: per-iteration exchange overhead
  // is why the GPU is only ~3x over the SVD baseline.
  const GpuModelConfig cfg;
  const auto est = estimateGpuQuickIk(cfg, 12, 100.0, 64);
  EXPECT_GT(est.overhead_fraction, 0.5);
}

TEST(GpuModel, WarpRoundingChargesWholeWarps) {
  const GpuModelConfig cfg;
  // 33 speculations need 2 warps, same as 64 with <=16 resident warps.
  const auto e33 = estimateGpuQuickIk(cfg, 50, 100.0, 33);
  const auto e64 = estimateGpuQuickIk(cfg, 50, 100.0, 64);
  EXPECT_DOUBLE_EQ(e33.time_ms, e64.time_ms);
}

TEST(GpuModel, ResidencyLimitSerialisesHugeSpeculationCounts) {
  const GpuModelConfig cfg;  // 16 resident warps = 512 threads
  const auto small = estimateGpuQuickIk(cfg, 50, 100.0, 512);
  const auto large = estimateGpuQuickIk(cfg, 50, 100.0, 1024);
  EXPECT_GT(large.time_ms, small.time_ms);
}

TEST(GpuModel, EnergyIsPowerTimesTime) {
  const GpuModelConfig cfg;
  const auto est = estimateGpuQuickIk(cfg, 75, 321.0, 64);
  EXPECT_NEAR(est.energy_j, cfg.average_power_w * est.time_ms * 1e-3, 1e-12);
}

TEST(CpuModel, JtSerialScalesWithIterationsAndDof) {
  const CpuModelConfig cfg;
  const auto base = estimateCpuJtSerial(cfg, 25, 1000.0);
  EXPECT_NEAR(estimateCpuJtSerial(cfg, 25, 2000.0).time_ms,
              2.0 * base.time_ms, 1e-9);
  EXPECT_GT(estimateCpuJtSerial(cfg, 100, 1000.0).time_ms, base.time_ms);
}

TEST(CpuModel, QuickIkCostsRoughlySpeculationsTimesJt) {
  // Quick-IK's serial computation load is ~speculations x JT-Serial's
  // per-iteration load (Fig. 5b) — the model must reflect that.
  const CpuModelConfig cfg;
  const double jt = estimateCpuJtSerial(cfg, 50, 100.0).time_ms;
  const double quick = estimateCpuQuickIk(cfg, 50, 100.0, 64).time_ms;
  EXPECT_GT(quick, 20.0 * jt);
  EXPECT_LT(quick, 80.0 * jt);
}

TEST(CpuModel, PinvSvdChargesSweepCost) {
  const CpuModelConfig cfg;
  const double without = estimateCpuPinvSvd(cfg, 50, 100.0, 0.0).time_ms;
  const double with = estimateCpuPinvSvd(cfg, 50, 100.0, 8.0).time_ms;
  EXPECT_GT(with, without);
}

TEST(CpuModel, EnergyUsesConfiguredPower) {
  CpuModelConfig cfg;
  cfg.average_power_w = 10.0;
  const auto est = estimateCpuJtSerial(cfg, 100, 5000.0);
  EXPECT_NEAR(est.energy_j, 10.0 * est.time_ms * 1e-3, 1e-12);
}

TEST(CpuModel, PaperOrderingHoldsInModel) {
  // At equal solution quality the paper's Table 2 ordering per DOF:
  // quick-ik (serial) slowest-comparable to jt at high load, pinv-svd
  // in between.  Verify with representative iteration counts measured
  // in our experiments: jt ~ 3000 iters, svd ~ 30, quick ~ 60.
  const CpuModelConfig cfg;
  const double jt = estimateCpuJtSerial(cfg, 100, 3000.0).time_ms;
  const double svd = estimateCpuPinvSvd(cfg, 100, 30.0, 8.0).time_ms;
  const double quick = estimateCpuQuickIk(cfg, 100, 60.0, 64).time_ms;
  EXPECT_LT(svd, jt);      // pseudoinverse beats plain JT on CPU
  EXPECT_LT(svd, quick);   // and beats serial Quick-IK
  EXPECT_GT(jt, 100.0);    // Atom-scale: hundreds of ms at 100 DOF
}

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 2'000'000; ++i) sink = sink + 1e-9;
  const double ms = timer.elapsedMs();
  EXPECT_GT(ms, 0.0);
  timer.reset();
  EXPECT_LT(timer.elapsedMs(), ms + 1.0);
}

}  // namespace
}  // namespace dadu::platform
