// Thread-pool tests: correctness of parallelFor partitioning, submit/
// wait semantics, reuse across batches, and determinism of results.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "dadu/parallel/thread_pool.hpp"

namespace dadu::par {
namespace {

TEST(ThreadPool, ConstructsRequestedThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.threadCount(), 3u);
}

TEST(ThreadPool, DefaultUsesAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.threadCount(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallelFor(0, hits.size(),
                   [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallelFor(5, 5, [&](std::size_t) { calls.fetch_add(1); });
  pool.parallelFor(7, 3, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForNonZeroBegin) {
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  pool.parallelFor(10, 20, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i));
  });
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST(ThreadPool, SingleIndexRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> hits{0};
  pool.parallelFor(3, 4, [&](std::size_t i) {
    EXPECT_EQ(i, 3u);
    hits.fetch_add(1);
  });
  EXPECT_EQ(hits.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(2);
  std::atomic<long long> total{0};
  for (int batch = 0; batch < 50; ++batch)
    pool.parallelFor(0, 16, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 800);
}

TEST(ThreadPool, SubmitAndWait) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) pool.submit([&] { done.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, ParallelResultsMatchSerial) {
  // The speculation pattern: each index writes its own slot; the
  // parallel result must equal the serial loop bit for bit.
  const std::size_t n = 64;
  std::vector<double> serial(n), parallel(n);
  const auto work = [](std::size_t i) {
    double acc = static_cast<double>(i) + 1.0;
    for (int r = 0; r < 100; ++r) acc = acc * 1.000001 + 0.5;
    return acc;
  };
  for (std::size_t i = 0; i < n; ++i) serial[i] = work(i);
  ThreadPool pool(4);
  pool.parallelFor(0, n, [&](std::size_t i) { parallel[i] = work(i); });
  EXPECT_EQ(serial, parallel);
}

TEST(ThreadPool, LargeFanOutCompletes) {
  ThreadPool pool(8);
  std::atomic<long long> sum{0};
  pool.parallelFor(0, 10'000, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i % 7));
  });
  long long expect = 0;
  for (std::size_t i = 0; i < 10'000; ++i) expect += static_cast<long long>(i % 7);
  EXPECT_EQ(sum.load(), expect);
}

}  // namespace
}  // namespace dadu::par
