// ASCII plotting tests.
#include <gtest/gtest.h>

#include <sstream>

#include "dadu/report/ascii_plot.hpp"

namespace dadu::report {
namespace {

int lineCount(const std::string& s) {
  return static_cast<int>(std::count(s.begin(), s.end(), '\n'));
}

TEST(PlotSeries, ProducesRequestedGeometry) {
  PlotOptions o;
  o.width = 40;
  o.height = 10;
  o.label = "error";
  const std::string plot =
      plotSeries({1.0, 0.1, 0.01, 0.001, 0.0001}, o);
  // label + top axis + height rows + bottom axis.
  EXPECT_EQ(lineCount(plot), 1 + 1 + 10 + 1);
  EXPECT_NE(plot.find("error"), std::string::npos);
  EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(PlotSeries, MonotoneDecayDescendsOnCanvas) {
  PlotOptions o;
  o.width = 20;
  o.height = 8;
  o.label.clear();
  const std::string plot = plotSeries({1.0, 0.1, 0.01, 0.001}, o);
  // First glyph should appear on an earlier (higher) line than the
  // last one.
  std::istringstream in(plot);
  std::string line;
  int first_row = -1, last_row = -1, row = 0;
  while (std::getline(in, line)) {
    const auto pos = line.find('*');
    if (pos != std::string::npos) {
      if (first_row < 0) first_row = row;
      last_row = row;
    }
    ++row;
  }
  ASSERT_GE(first_row, 0);
  EXPECT_LT(first_row, last_row);
}

TEST(PlotSeries, HandlesNonPositiveWithLogScale) {
  PlotOptions o;
  o.log_y = true;
  const std::string plot = plotSeries({1.0, 0.0, -2.0, 0.5}, o);
  EXPECT_FALSE(plot.empty());  // clamped, no crash/NaN
  EXPECT_EQ(plot.find("nan"), std::string::npos);
}

TEST(PlotSeries, LinearScaleSupported) {
  PlotOptions o;
  o.log_y = false;
  const std::string plot = plotSeries({0.0, 1.0, 2.0, 3.0}, o);
  EXPECT_FALSE(plot.empty());
}

TEST(PlotSeries, ConstantSeriesDoesNotDivideByZero) {
  const std::string plot = plotSeries({2.0, 2.0, 2.0});
  EXPECT_FALSE(plot.empty());
}

TEST(PlotMultiSeries, LegendListsAllSeries) {
  const std::string plot = plotMultiSeries(
      {{"alpha", {1.0, 0.1}}, {"beta", {2.0, 0.2}}, {"gamma", {3.0, 0.3}}});
  EXPECT_NE(plot.find("* = alpha"), std::string::npos);
  EXPECT_NE(plot.find("o = beta"), std::string::npos);
  EXPECT_NE(plot.find("+ = gamma"), std::string::npos);
}

TEST(BarChart, BarsScaleWithValues) {
  const std::string chart =
      barChart({{"fast", 1.0}, {"slow", 4.0}}, 40, "ms");
  std::istringstream in(chart);
  std::string fast_line, slow_line;
  std::getline(in, fast_line);
  std::getline(in, slow_line);
  const auto hashes = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '#');
  };
  EXPECT_EQ(hashes(slow_line), 40);
  EXPECT_EQ(hashes(fast_line), 10);
  EXPECT_NE(fast_line.find("ms"), std::string::npos);
}

TEST(BarChart, ZeroValuesRenderEmptyBars) {
  const std::string chart = barChart({{"none", 0.0}, {"one", 1.0}});
  EXPECT_FALSE(chart.empty());
  std::istringstream in(chart);
  std::string none_line;
  std::getline(in, none_line);
  EXPECT_EQ(std::count(none_line.begin(), none_line.end(), '#'), 0);
}

}  // namespace
}  // namespace dadu::report
