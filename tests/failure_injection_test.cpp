// Failure-injection tests: malformed inputs, degenerate geometry and
// adversarial options must produce exceptions or clean non-converged
// results — never crashes, hangs or NaN joint vectors.  The service
// section drives the same contract through IkService with dadu_fault
// plans: an injected solver throw or worker stall must surface as a
// typed Response exactly once, never as a lost future or callback.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <future>
#include <limits>
#include <mutex>
#include <vector>

#include "dadu/fault/fault.hpp"
#include "dadu/ikacc/accelerator.hpp"
#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/service/ik_service.hpp"
#include "dadu/solvers/factory.hpp"
#include "dadu/solvers/quick_ik.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::ik {
namespace {

void expectFinite(const linalg::VecX& v) {
  for (double x : v) EXPECT_TRUE(std::isfinite(x));
}

class SolverFailureInjection : public ::testing::TestWithParam<std::string> {
 protected:
  kin::Chain chain_ = kin::makeSerpentine(12);
};

TEST_P(SolverFailureInjection, NanTargetThrows) {
  const auto solver = makeSolver(GetParam(), chain_, {});
  EXPECT_THROW(
      solver->solve({std::nan(""), 0.0, 0.0}, chain_.zeroConfiguration()),
      std::invalid_argument);
}

TEST_P(SolverFailureInjection, InfiniteTargetThrows) {
  const auto solver = makeSolver(GetParam(), chain_, {});
  EXPECT_THROW(solver->solve({0.0, std::numeric_limits<double>::infinity(), 0.0},
                             chain_.zeroConfiguration()),
               std::invalid_argument);
}

TEST_P(SolverFailureInjection, WrongSeedSizeThrows) {
  const auto solver = makeSolver(GetParam(), chain_, {});
  EXPECT_THROW(solver->solve({0.3, 0.2, 0.1}, linalg::VecX(5)),
               std::invalid_argument);
}

TEST_P(SolverFailureInjection, NanSeedThrows) {
  const auto solver = makeSolver(GetParam(), chain_, {});
  linalg::VecX seed(12);
  seed[7] = std::nan("");
  EXPECT_THROW(solver->solve({0.3, 0.2, 0.1}, seed), std::invalid_argument);
}

TEST_P(SolverFailureInjection, TargetAtBaseOriginStaysFinite) {
  // The base origin maximises fold-over singularity exposure.
  SolveOptions options;
  options.max_iterations = 100;
  const auto solver = makeSolver(GetParam(), chain_, options);
  const auto r = solver->solve({0.0, 0.0, 0.0}, linalg::VecX(12, 0.2));
  expectFinite(r.theta);
  EXPECT_TRUE(std::isfinite(r.error));
}

TEST_P(SolverFailureInjection, ZeroIterationBudget) {
  SolveOptions options;
  options.max_iterations = 0;
  const auto solver = makeSolver(GetParam(), chain_, options);
  const auto task = workload::generateTask(chain_, 0);
  const auto r = solver->solve(task.target, task.seed);
  EXPECT_EQ(r.iterations, 0);
  expectFinite(r.theta);
  // Seed configuration should be returned untouched.
  EXPECT_EQ(r.theta, task.seed);
}

INSTANTIATE_TEST_SUITE_P(All, SolverFailureInjection,
                         ::testing::Values("jt-serial", "jt-fixed-alpha",
                                           "quick-ik", "quick-ik-mt",
                                           "pinv-svd", "dls", "sdls", "ccd"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(FailureInjection, AcceleratorValidatesLikeSoftware) {
  const auto chain = kin::makeSerpentine(12);
  acc::IkAccelerator hw(chain, {});
  EXPECT_THROW(hw.solve({std::nan(""), 0, 0}, chain.zeroConfiguration()),
               std::invalid_argument);
  EXPECT_THROW(hw.solve({0.1, 0.1, 0.1}, linalg::VecX(3)),
               std::invalid_argument);
}

TEST(FailureInjection, SingleJointChainWorks) {
  const kin::Chain tiny({kin::revolute({0.5, 0, 0, 0})}, "one-joint");
  SolveOptions options;
  options.max_iterations = 500;
  for (const char* name : {"jt-serial", "quick-ik", "pinv-svd", "ccd"}) {
    const auto solver = makeSolver(name, tiny, options);
    // Reachable: the circle of radius 0.5 about the base z axis.
    const auto r = solver->solve({0.0, 0.5, 0.0}, linalg::VecX(1, 0.3));
    EXPECT_TRUE(r.converged()) << name;
  }
}

TEST(FailureInjection, TargetEqualsCurrentPoseConvergesInstantly) {
  const auto chain = kin::makeSerpentine(12);
  const linalg::VecX seed(12, 0.25);
  const auto at = kin::endEffectorPosition(chain, seed);
  for (const auto& name : solverNames()) {
    const auto solver = makeSolver(name, chain, {});
    const auto r = solver->solve(at, seed);
    EXPECT_TRUE(r.converged()) << name;
    EXPECT_EQ(r.iterations, 0) << name;
  }
}

TEST(FailureInjection, HugeSpeculationCountStillCorrect) {
  const auto chain = kin::makeSerpentine(12);
  SolveOptions options;
  options.speculations = 1000;  // more than any sensible hardware
  QuickIkSolver solver(chain, options);
  const auto task = workload::generateTask(chain, 0);
  const auto r = solver.solve(task.target, task.seed);
  EXPECT_TRUE(r.converged());

  acc::AccConfig cfg;
  cfg.num_ssus = 32;  // 1000 speculations -> 32 waves
  acc::IkAccelerator hw(chain, options, cfg);
  const auto rh = hw.solve(task.target, task.seed);
  EXPECT_EQ(rh.theta, r.theta);
  EXPECT_EQ(hw.lastStats().waves_per_iteration, 32);
}

TEST(FailureInjection, TinyLinksDoNotUnderflow) {
  const auto chain = kin::makeSerpentine(12, 1e-6);
  SolveOptions options;
  options.accuracy = 1e-9;
  options.max_iterations = 200;
  QuickIkSolver solver(chain, options);
  const auto task = workload::generateTask(chain, 0);
  const auto r = solver.solve(task.target, task.seed);
  expectFinite(r.theta);
}

// -------------------------------------- service-layer fault plans

fault::FaultPlan solverThrowPlan() {
  fault::FaultPlan plan;
  plan.errorAt("service.worker.solve", "chaos solver fault");
  return plan;
}

service::Request serviceRequest(const kin::Chain& chain,
                                std::uint32_t index) {
  const auto task = workload::generateTask(chain, index);
  service::Request request;
  request.target = task.target;
  request.seed = task.seed;
  request.use_seed_cache = false;
  return request;
}

TEST(ServiceFailureInjection, InjectedSolverThrowRejectsCallbackPath) {
  const auto chain = kin::makeSerpentine(6);
  service::ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 8;
  config.enable_seed_cache = false;
  service::IkService svc(
      [&] { return makeSolver("quick-ik", chain, {}); }, config);

  fault::ScopedFaultPlan plan(solverThrowPlan());

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<service::Response> delivered;
  constexpr int kRequests = 4;
  for (std::uint32_t i = 0; i < kRequests; ++i)
    svc.submit(serviceRequest(chain, i), [&](service::Response r) {
      std::lock_guard<std::mutex> lock(mutex);
      delivered.push_back(std::move(r));
      cv.notify_all();
    });
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10), [&] {
      return delivered.size() == kRequests;
    })) << "lost a completion callback";
  }
  for (const service::Response& r : delivered) {
    EXPECT_EQ(r.status, service::ResponseStatus::kRejected);
    EXPECT_EQ(r.reject_reason, service::RejectReason::kInternalError);
    EXPECT_NE(r.message.find("chaos solver fault"), std::string::npos);
  }
  EXPECT_EQ(svc.stats().internal_errors, kRequests);
  EXPECT_EQ(svc.stats().submitted, svc.stats().accounted());
}

TEST(ServiceFailureInjection, InjectedSolverThrowRethrowsFromFuture) {
  const auto chain = kin::makeSerpentine(6);
  service::ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 8;
  config.enable_seed_cache = false;
  service::IkService svc(
      [&] { return makeSolver("quick-ik", chain, {}); }, config);

  fault::ScopedFaultPlan plan(solverThrowPlan());
  auto future = svc.submit(serviceRequest(chain, 0));
  try {
    future.get();
    FAIL() << "future should rethrow the injected solver exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chaos solver fault");
  }
  // The worker survives its solver throwing: next request solves.
  fault::FaultInjector::global().disarm();
  EXPECT_EQ(svc.submit(serviceRequest(chain, 1)).get().status,
            service::ResponseStatus::kSolved);
}

TEST(ServiceFailureInjection, WorkerStallPlanExpiresDeadlinesNotFutures) {
  const auto chain = kin::makeSerpentine(6);
  service::ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 16;
  config.enable_seed_cache = false;
  service::IkService svc(
      [&] { return makeSolver("quick-ik", chain, {}); }, config);

  // Every pickup stalls 30ms; requests carrying a 5ms deadline must
  // come back kDeadlineExceeded (the stall happens before the deadline
  // check), and every future must resolve — none may be lost.
  fault::FaultPlan plan;
  plan.delayAt("service.worker.stall", 30.0);
  fault::ScopedFaultPlan armed(plan);

  std::vector<std::future<service::Response>> futures;
  for (std::uint32_t i = 0; i < 4; ++i) {
    service::Request request = serviceRequest(chain, i);
    request.deadline_ms = 5.0;
    futures.push_back(svc.submit(std::move(request)));
  }
  int expired = 0;
  for (auto& future : futures) {
    const service::Response r = future.get();  // resolving at all is the test
    if (r.status == service::ResponseStatus::kDeadlineExceeded) ++expired;
  }
  EXPECT_GE(expired, 1);
  EXPECT_EQ(svc.stats().deadline_expired, static_cast<std::uint64_t>(expired));
  EXPECT_EQ(svc.stats().submitted, svc.stats().accounted());
}

}  // namespace
}  // namespace dadu::ik
