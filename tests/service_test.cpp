// Serving-layer unit tests: response types, bounded-queue semantics,
// seed-cache index behaviour, and the IkService end-to-end contract
// (admission control, deadlines, shutdown drain/discard, cache
// determinism).  Timing-dependent paths are made deterministic with a
// gated solver: the worker blocks inside solve() until the test opens
// the gate, so queue occupancy is fully controlled.
#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "dadu/obs/sink.hpp"

#include "dadu/kinematics/presets.hpp"
#include "dadu/service/ik_service.hpp"
#include "dadu/service/queue.hpp"
#include "dadu/service/request.hpp"
#include "dadu/service/seed_cache.hpp"
#include "dadu/solvers/factory.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::service {
namespace {

TEST(ResponseTypes, StatusToString) {
  EXPECT_EQ(toString(ResponseStatus::kSolved), "solved");
  EXPECT_EQ(toString(ResponseStatus::kRejected), "rejected");
  EXPECT_EQ(toString(ResponseStatus::kDeadlineExceeded), "deadline-exceeded");
}

TEST(ResponseTypes, RejectReasonToString) {
  EXPECT_EQ(toString(RejectReason::kNone), "none");
  EXPECT_EQ(toString(RejectReason::kQueueFull), "queue-full");
  EXPECT_EQ(toString(RejectReason::kShutdown), "shutdown");
}

TEST(ResponseTypes, DefaultResponseIsNotOk) {
  Response r;
  EXPECT_FALSE(r.ok());
  r.status = ResponseStatus::kSolved;
  EXPECT_FALSE(r.ok());  // solver ran but did not converge
  r.result.status = ik::Status::kConverged;
  EXPECT_TRUE(r.ok());
}

// ---------------------------------------------------------------- queue

Job makeJob() {
  Job job;
  job.enqueued = std::chrono::steady_clock::now();
  return job;
}

TEST(BoundedQueue, FifoPushPop) {
  BoundedQueue q(4);
  for (int i = 0; i < 3; ++i) {
    Job job = makeJob();
    job.request.deadline_ms = i;  // tag to check order
    EXPECT_EQ(q.tryPush(std::move(job)), PushResult::kAccepted);
  }
  EXPECT_EQ(q.size(), 3u);
  Job out;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out.request.deadline_ms, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, RejectsWhenFull) {
  BoundedQueue q(2);
  EXPECT_EQ(q.tryPush(makeJob()), PushResult::kAccepted);
  EXPECT_EQ(q.tryPush(makeJob()), PushResult::kAccepted);
  EXPECT_EQ(q.tryPush(makeJob()), PushResult::kFull);
  Job out;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(q.tryPush(makeJob()), PushResult::kAccepted);  // slot freed
}

TEST(BoundedQueue, CapacityAtLeastOne) {
  BoundedQueue q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_EQ(q.tryPush(makeJob()), PushResult::kAccepted);
  EXPECT_EQ(q.tryPush(makeJob()), PushResult::kFull);
}

TEST(BoundedQueue, ClosedQueueRejectsPushesButDrainsPops) {
  BoundedQueue q(4);
  EXPECT_EQ(q.tryPush(makeJob()), PushResult::kAccepted);
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.tryPush(makeJob()), PushResult::kClosed);
  Job out;
  EXPECT_TRUE(q.pop(out));   // queued job still served
  EXPECT_FALSE(q.pop(out));  // then closed-and-empty
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue q(2);
  std::thread consumer([&] {
    Job out;
    EXPECT_FALSE(q.pop(out));  // must return, not hang
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

TEST(BoundedQueue, DrainReturnsAllPending) {
  BoundedQueue q(8);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(q.tryPush(makeJob()), PushResult::kAccepted);
  q.close();
  const auto drained = q.drain();
  EXPECT_EQ(drained.size(), 5u);
  EXPECT_EQ(q.size(), 0u);
}

// ----------------------------------------------------------- seed cache

TEST(SeedCacheTest, MissOnEmptyAndHitAfterInsert) {
  SeedCache cache;
  linalg::VecX seed;
  EXPECT_FALSE(cache.lookup({0.1, 0.2, 0.3}, seed));
  cache.insert({0.1, 0.2, 0.3}, linalg::VecX{1.0, 2.0});
  EXPECT_TRUE(cache.lookup({0.1, 0.2, 0.3}, seed));
  EXPECT_EQ(seed, (linalg::VecX{1.0, 2.0}));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SeedCacheTest, ReturnsNearestOfSeveral) {
  SeedCacheConfig config;
  config.cell_size = 1.0;  // both entries in one cell
  config.max_distance = 1.0;
  SeedCache cache(config);
  cache.insert({0.4, 0.5, 0.5}, linalg::VecX{1.0});
  cache.insert({0.6, 0.5, 0.5}, linalg::VecX{2.0});
  linalg::VecX seed;
  ASSERT_TRUE(cache.lookup({0.61, 0.5, 0.5}, seed));
  EXPECT_EQ(seed, linalg::VecX{2.0});
  ASSERT_TRUE(cache.lookup({0.41, 0.5, 0.5}, seed));
  EXPECT_EQ(seed, linalg::VecX{1.0});
}

TEST(SeedCacheTest, MissBeyondMaxDistance) {
  SeedCacheConfig config;
  config.cell_size = 0.05;
  config.max_distance = 0.05;
  SeedCache cache(config);
  cache.insert({0.0, 0.0, 0.0}, linalg::VecX{1.0});
  linalg::VecX seed;
  EXPECT_FALSE(cache.lookup({0.2, 0.0, 0.0}, seed));
}

TEST(SeedCacheTest, NeighborCellsAreProbed) {
  SeedCacheConfig config;
  config.cell_size = 0.1;
  config.max_distance = 0.05;
  SeedCache cache(config);
  // 0.099 and 0.101 quantize to different cells but are 2 mm apart.
  cache.insert({0.099, 0.0, 0.0}, linalg::VecX{7.0});
  linalg::VecX seed;
  EXPECT_TRUE(cache.lookup({0.101, 0.0, 0.0}, seed));
  EXPECT_EQ(seed, linalg::VecX{7.0});

  config.search_neighbors = false;
  SeedCache home_only(config);
  home_only.insert({0.099, 0.0, 0.0}, linalg::VecX{7.0});
  EXPECT_FALSE(home_only.lookup({0.101, 0.0, 0.0}, seed));
}

TEST(SeedCacheTest, RingReplacementBoundsCellSize) {
  SeedCacheConfig config;
  config.cell_size = 10.0;  // everything lands in one cell
  config.max_entries_per_cell = 3;
  config.max_distance = 10.0;
  SeedCache cache(config);
  for (int i = 0; i < 10; ++i)
    cache.insert({0.1 * i, 0.0, 0.0}, linalg::VecX{static_cast<double>(i)});
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().inserts, 10u);
  EXPECT_EQ(cache.stats().evictions, 7u);
}

TEST(SeedCacheTest, HashCollisionsDoNotAliasCells) {
  SeedCacheConfig config;
  config.cell_size = 1.0;
  config.max_distance = 1.0;
  config.max_entries_per_cell = 4;
  config.search_neighbors = false;
  config.hash_bits = 0;  // every cell collides onto a single hash value
  SeedCache cache(config);
  // Fill the rings of two far-apart cells exactly.  When cells were
  // keyed by their 64-bit hash, colliding cells aliased to ONE ring:
  // the second cell's inserts ring-replaced the first cell's entries
  // and lookups could be warm-started from the wrong workspace region.
  for (int i = 0; i < 4; ++i) {
    cache.insert({0.1 + 0.2 * i, 0.5, 0.5},
                 linalg::VecX{static_cast<double>(i)});
    cache.insert({100.1 + 0.2 * i, 0.5, 0.5},
                 linalg::VecX{static_cast<double>(10 + i)});
  }
  EXPECT_EQ(cache.size(), 8u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  linalg::VecX seed;
  ASSERT_TRUE(cache.lookup({0.1, 0.5, 0.5}, seed));
  EXPECT_EQ(seed, linalg::VecX{0.0});
  ASSERT_TRUE(cache.lookup({100.7, 0.5, 0.5}, seed));
  EXPECT_EQ(seed, linalg::VecX{13.0});
}

TEST(SeedCacheTest, StatsCountHitsAndMisses) {
  SeedCache cache;
  linalg::VecX seed;
  cache.lookup({0, 0, 0}, seed);  // miss
  cache.insert({0, 0, 0}, linalg::VecX{1.0});
  cache.lookup({0, 0, 0}, seed);  // hit
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_DOUBLE_EQ(stats.hitRate(), 0.5);
}

TEST(SeedCacheTest, ClearDropsEntriesKeepsStats) {
  SeedCache cache;
  cache.insert({0, 0, 0}, linalg::VecX{1.0});
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  linalg::VecX seed;
  EXPECT_FALSE(cache.lookup({0, 0, 0}, seed));
  EXPECT_EQ(cache.stats().inserts, 1u);
}

TEST(SeedCacheTest, RejectsBadConfig) {
  SeedCacheConfig config;
  config.cell_size = 0.0;
  EXPECT_THROW(SeedCache{config}, std::invalid_argument);
  config.cell_size = 0.05;
  config.max_distance = -1.0;
  EXPECT_THROW(SeedCache{config}, std::invalid_argument);
}

// ------------------------------------------------------- gated solver

/// Lets a test hold a worker inside solve() until released, with a
/// handshake ("arrived") so the test knows the worker is pinned.
class Gate {
 public:
  void waitUntilOpen() {
    std::unique_lock<std::mutex> lock(mutex_);
    ++arrived_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return open_; });
  }
  void open() {
    std::lock_guard<std::mutex> lock(mutex_);
    open_ = true;
    cv_.notify_all();
  }
  void awaitArrivals(int n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return arrived_ >= n; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  bool open_ = false;
};

/// Trivial solver that blocks on the gate, then "converges" at the
/// seed.  Keeps service tests independent of real solver runtimes.
class GatedSolver : public ik::IkSolver {
 public:
  GatedSolver(kin::Chain chain, std::shared_ptr<Gate> gate)
      : chain_(std::move(chain)), gate_(std::move(gate)) {}

  ik::SolveResult solve(const linalg::Vec3&, const linalg::VecX& seed) override {
    if (gate_) gate_->waitUntilOpen();
    ik::SolveResult r;
    r.status = ik::Status::kConverged;
    r.iterations = 1;
    r.theta = seed;
    return r;
  }
  std::string name() const override { return "gated"; }
  const kin::Chain& chain() const override { return chain_; }
  const ik::SolveOptions& options() const override { return options_; }

 private:
  kin::Chain chain_;
  std::shared_ptr<Gate> gate_;
  ik::SolveOptions options_;
};

SolverFactory gatedFactory(const kin::Chain& chain,
                           std::shared_ptr<Gate> gate) {
  return [chain, gate] { return std::make_unique<GatedSolver>(chain, gate); };
}

ServiceConfig smallConfig(std::size_t workers, std::size_t capacity,
                          bool cache = false) {
  ServiceConfig config;
  config.workers = workers;
  config.queue_capacity = capacity;
  config.enable_seed_cache = cache;
  return config;
}

// ------------------------------------------------------------ service

TEST(IkServiceTest, NullFactoryThrows) {
  EXPECT_THROW(IkService(nullptr, {}), std::invalid_argument);
}

TEST(IkServiceTest, SolvesAndMatchesDirectSolver) {
  const auto chain = kin::makeSerpentine(8);
  const auto task = workload::generateTask(chain, 0);
  IkService svc([&] { return ik::makeSolver("quick-ik", chain, {}); },
                smallConfig(2, 16));
  auto future = svc.submit({.target = task.target, .seed = task.seed});
  const Response r = future.get();
  ASSERT_EQ(r.status, ResponseStatus::kSolved);
  EXPECT_TRUE(r.ok());
  EXPECT_GE(r.queue_ms, 0.0);
  EXPECT_GT(r.solve_ms, 0.0);
  EXPECT_FALSE(r.seeded_from_cache);

  const auto direct =
      ik::makeSolver("quick-ik", chain, {})->solve(task.target, task.seed);
  EXPECT_EQ(r.result.theta, direct.theta);
  EXPECT_EQ(r.result.iterations, direct.iterations);
}

TEST(IkServiceTest, EmptySeedMeansZeroConfiguration) {
  const auto chain = kin::makeSerpentine(6);
  const auto task = workload::generateTask(chain, 1);
  IkService svc([&] { return ik::makeSolver("quick-ik", chain, {}); },
                smallConfig(1, 4));
  Request request;
  request.target = task.target;  // seed left empty on purpose
  const Response r = svc.submit(std::move(request)).get();
  ASSERT_EQ(r.status, ResponseStatus::kSolved);
  const auto direct = ik::makeSolver("quick-ik", chain, {})
                          ->solve(task.target, chain.zeroConfiguration());
  EXPECT_EQ(r.result.theta, direct.theta);
}

TEST(IkServiceTest, QueueFullRejectsImmediately) {
  const auto chain = kin::makePlanar(3);
  const auto gate = std::make_shared<Gate>();
  IkService svc(gatedFactory(chain, gate), smallConfig(1, 1));

  // Pin the single worker, then fill the single queue slot.
  auto in_flight = svc.submit({.target = {0.5, 0, 0}, .seed = linalg::VecX(3)});
  gate->awaitArrivals(1);
  auto queued = svc.submit({.target = {0.5, 0, 0}, .seed = linalg::VecX(3)});

  auto rejected = svc.submit({.target = {0.5, 0, 0}, .seed = linalg::VecX(3)});
  const Response r = rejected.get();  // resolved without any worker
  EXPECT_EQ(r.status, ResponseStatus::kRejected);
  EXPECT_EQ(r.reject_reason, RejectReason::kQueueFull);

  gate->open();
  EXPECT_EQ(in_flight.get().status, ResponseStatus::kSolved);
  EXPECT_EQ(queued.get().status, ResponseStatus::kSolved);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.solved, 2u);
}

TEST(IkServiceTest, ExpiredDeadlineIsDroppedBeforeSolving) {
  const auto chain = kin::makePlanar(3);
  const auto gate = std::make_shared<Gate>();
  IkService svc(gatedFactory(chain, gate), smallConfig(1, 8));

  auto in_flight = svc.submit({.target = {0.5, 0, 0}, .seed = linalg::VecX(3)});
  gate->awaitArrivals(1);
  auto doomed = svc.submit(
      {.target = {0.5, 0, 0}, .seed = linalg::VecX(3), .deadline_ms = 1.0});
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate->open();

  EXPECT_EQ(in_flight.get().status, ResponseStatus::kSolved);
  const Response r = doomed.get();
  EXPECT_EQ(r.status, ResponseStatus::kDeadlineExceeded);
  EXPECT_GT(r.queue_ms, 0.0);
  EXPECT_EQ(r.solve_ms, 0.0);
  EXPECT_EQ(svc.stats().deadline_expired, 1u);
}

TEST(IkServiceTest, GenerousDeadlineIsMet) {
  const auto chain = kin::makeSerpentine(6);
  const auto task = workload::generateTask(chain, 2);
  IkService svc([&] { return ik::makeSolver("quick-ik", chain, {}); },
                smallConfig(1, 4));
  const Response r = svc.submit({.target = task.target,
                                 .seed = task.seed,
                                 .deadline_ms = 60'000.0})
                         .get();
  EXPECT_EQ(r.status, ResponseStatus::kSolved);
}

TEST(IkServiceTest, StopDrainsPendingRequests) {
  const auto chain = kin::makePlanar(3);
  const auto gate = std::make_shared<Gate>();
  IkService svc(gatedFactory(chain, gate), smallConfig(1, 8));

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 4; ++i)
    futures.push_back(
        svc.submit({.target = {0.5, 0, 0}, .seed = linalg::VecX(3)}));
  gate->awaitArrivals(1);
  gate->open();
  svc.stop(IkService::Drain::kDrainPending);

  for (auto& f : futures) EXPECT_EQ(f.get().status, ResponseStatus::kSolved);
  EXPECT_TRUE(svc.stopped());
}

TEST(IkServiceTest, StopDiscardsPendingRequestsOnRequest) {
  const auto chain = kin::makePlanar(3);
  const auto gate = std::make_shared<Gate>();
  IkService svc(gatedFactory(chain, gate), smallConfig(1, 8));

  auto in_flight = svc.submit({.target = {0.5, 0, 0}, .seed = linalg::VecX(3)});
  gate->awaitArrivals(1);  // worker pinned: nothing else can be popped
  auto pending_a = svc.submit({.target = {0.5, 0, 0}, .seed = linalg::VecX(3)});
  auto pending_b = svc.submit({.target = {0.5, 0, 0}, .seed = linalg::VecX(3)});

  std::thread stopper([&] { svc.stop(IkService::Drain::kDiscardPending); });
  // Discard resolves queued promises before joining workers, so these
  // futures are ready while the worker is still pinned.
  EXPECT_EQ(pending_a.get().reject_reason, RejectReason::kShutdown);
  EXPECT_EQ(pending_b.get().reject_reason, RejectReason::kShutdown);
  gate->open();
  stopper.join();

  EXPECT_EQ(in_flight.get().status, ResponseStatus::kSolved);
  EXPECT_EQ(svc.stats().rejected_shutdown, 2u);
}

TEST(IkServiceTest, SubmitAfterStopIsRejected) {
  const auto chain = kin::makePlanar(3);
  IkService svc(gatedFactory(chain, nullptr), smallConfig(1, 4));
  svc.stop();
  const Response r =
      svc.submit({.target = {0.5, 0, 0}, .seed = linalg::VecX(3)}).get();
  EXPECT_EQ(r.status, ResponseStatus::kRejected);
  EXPECT_EQ(r.reject_reason, RejectReason::kShutdown);
  svc.stop();  // idempotent
}

TEST(IkServiceTest, SolverExceptionSurfacesThroughFuture) {
  const auto chain = kin::makeSerpentine(6);
  IkService svc([&] { return ik::makeSolver("quick-ik", chain, {}); },
                smallConfig(1, 4));
  // Wrong seed size: the solver throws; the future must carry it.
  auto future = svc.submit(
      {.target = {0.5, 0, 0}, .seed = linalg::VecX(2), .use_seed_cache = false});
  EXPECT_THROW(future.get(), std::invalid_argument);
}

TEST(IkServiceTest, CacheWarmStartsRepeatedTargets) {
  const auto chain = kin::makeSerpentine(8);
  const auto task = workload::generateTask(chain, 3);
  ServiceConfig config = smallConfig(1, 8, /*cache=*/true);
  IkService svc([&] { return ik::makeSolver("quick-ik", chain, {}); }, config);

  const Response cold = svc.submit({.target = task.target, .seed = task.seed}).get();
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.seeded_from_cache);

  const Response warm = svc.submit({.target = task.target, .seed = task.seed}).get();
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.seeded_from_cache);
  // Seeded at the previous solution the solver starts converged (or
  // nearly so) — never worse than the cold solve.
  EXPECT_LE(warm.result.iterations, cold.result.iterations);

  const auto stats = svc.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_inserts, 2u);
  EXPECT_GT(stats.cacheHitRate(), 0.0);
}

TEST(IkServiceTest, OptOutRequestsBypassTheCache) {
  const auto chain = kin::makeSerpentine(8);
  const auto task = workload::generateTask(chain, 4);
  IkService svc([&] { return ik::makeSolver("quick-ik", chain, {}); },
                smallConfig(1, 8, /*cache=*/true));
  svc.submit({.target = task.target, .seed = task.seed}).get();
  const Response again = svc.submit({.target = task.target,
                                     .seed = task.seed,
                                     .use_seed_cache = false})
                             .get();
  EXPECT_FALSE(again.seeded_from_cache);
  EXPECT_EQ(svc.stats().cache_hits, 0u);
}

TEST(IkServiceTest, SingleWorkerCachedStreamIsDeterministic) {
  const auto chain = kin::makeSerpentine(10);
  const auto tasks = workload::generateClusteredTasks(chain, 24, 4);

  const auto run = [&] {
    IkService svc([&] { return ik::makeSolver("quick-ik", chain, {}); },
                  smallConfig(1, 64, /*cache=*/true));
    std::vector<std::future<Response>> futures;
    futures.reserve(tasks.size());
    for (const auto& task : tasks)
      futures.push_back(svc.submit({.target = task.target, .seed = task.seed}));
    std::vector<Response> responses;
    responses.reserve(futures.size());
    for (auto& f : futures) responses.push_back(f.get());
    return responses;
  };

  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status) << i;
    EXPECT_EQ(a[i].seeded_from_cache, b[i].seeded_from_cache) << i;
    EXPECT_EQ(a[i].result.theta, b[i].result.theta) << i;
    EXPECT_EQ(a[i].result.iterations, b[i].result.iterations) << i;
  }
}

TEST(IkServiceTest, StatsSnapshotIsConsistent) {
  const auto chain = kin::makeSerpentine(6);
  const auto tasks = workload::generateTasks(chain, 6);
  IkService svc([&] { return ik::makeSolver("quick-ik", chain, {}); },
                smallConfig(2, 16));
  std::vector<std::future<Response>> futures;
  for (const auto& task : tasks)
    futures.push_back(svc.submit({.target = task.target, .seed = task.seed}));
  for (auto& f : futures) f.get();
  const auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, tasks.size());
  EXPECT_EQ(stats.solved, tasks.size());
  EXPECT_EQ(stats.converged, stats.solved);
  EXPECT_GT(stats.total_iterations, 0);
  EXPECT_GT(stats.meanSolveMs(), 0.0);
  EXPECT_GE(stats.meanQueueMs(), 0.0);
  EXPECT_DOUBLE_EQ(stats.convergenceRate(), 1.0);
}

TEST(IkServiceTest, DiscardStopNeverSolvesJobsDequeuedAfterClose) {
  const auto chain = kin::makePlanar(3);
  const auto gate = std::make_shared<Gate>();
  // The after_close_hook runs inside stop() between closing the queue
  // and draining it — exactly the race window.  It releases the pinned
  // worker and then waits for the still-queued job's future, forcing
  // the worker (not the drain) to consume that job.  Before the
  // discard_ flag the worker would *solve* it, violating discard
  // semantics; now it must reject with kShutdown.
  auto pending = std::make_shared<std::shared_future<Response>>();
  ServiceConfig config = smallConfig(1, 8);
  config.after_close_hook = [gate, pending] {
    gate->open();
    pending->wait();
  };
  IkService svc(gatedFactory(chain, gate), config);

  auto in_flight = svc.submit({.target = {0.5, 0, 0}, .seed = linalg::VecX(3)});
  gate->awaitArrivals(1);  // worker pinned inside solve()
  *pending =
      svc.submit({.target = {0.5, 0, 0}, .seed = linalg::VecX(3)}).share();

  svc.stop(IkService::Drain::kDiscardPending);

  EXPECT_EQ(in_flight.get().status, ResponseStatus::kSolved);
  const Response r = pending->get();
  EXPECT_EQ(r.status, ResponseStatus::kRejected);
  EXPECT_EQ(r.reject_reason, RejectReason::kShutdown);
  EXPECT_EQ(svc.stats().rejected_shutdown, 1u);
}

TEST(IkServiceTest, LatencyHistogramsCoverEverySolve) {
  const auto chain = kin::makeSerpentine(6);
  const auto tasks = workload::generateTasks(chain, 8);
  IkService svc([&] { return ik::makeSolver("quick-ik", chain, {}); },
                smallConfig(2, 16));
  std::vector<std::future<Response>> futures;
  for (const auto& task : tasks)
    futures.push_back(svc.submit({.target = task.target, .seed = task.seed}));
  for (auto& f : futures) f.get();

  const auto stats = svc.stats();
  EXPECT_EQ(stats.queue_hist.count, tasks.size());
  EXPECT_EQ(stats.solve_hist.count, tasks.size());
  EXPECT_EQ(stats.e2e_hist.count, tasks.size());
  // The mean-latency totals are the histogram sums — one source of
  // truth, no second accumulator to fall out of sync.
  EXPECT_DOUBLE_EQ(stats.total_solve_ms, stats.solve_hist.sum);
  EXPECT_DOUBLE_EQ(stats.total_queue_ms, stats.queue_hist.sum);
  EXPECT_GT(stats.solve_hist.p50(), 0.0);
  EXPECT_LE(stats.solve_hist.p50(), stats.solve_hist.p99());
  // End-to-end dominates solve sample-by-sample, so also in the sums.
  EXPECT_GE(stats.e2e_hist.sum, stats.solve_hist.sum);
  EXPECT_GE(stats.e2e_hist.max, stats.solve_hist.max);
}

TEST(IkServiceTest, SinkReceivesSpansAndSolverCounters) {
  const auto chain = kin::makeSerpentine(6);
  const auto tasks = workload::generateTasks(chain, 4);
  auto sink = std::make_shared<obs::RecordingSink>();
  ServiceConfig config = smallConfig(1, 16);
  config.sink = sink;
  IkService svc([&] { return ik::makeSolver("quick-ik", chain, {}); }, config);
  std::vector<std::future<Response>> futures;
  for (const auto& task : tasks)
    futures.push_back(svc.submit({.target = task.target, .seed = task.seed}));
  for (auto& f : futures) f.get();

  EXPECT_EQ(sink->spanCount("queue"), tasks.size());
  EXPECT_EQ(sink->spanCount("solve"), tasks.size());
  const auto stats = svc.stats();
  EXPECT_EQ(sink->countTotal("iterations"),
            static_cast<std::uint64_t>(stats.total_iterations));
  EXPECT_EQ(sink->countTotal("fk_evaluations"),
            static_cast<std::uint64_t>(stats.total_fk_evaluations));
  EXPECT_EQ(sink->countTotal("speculation_load"),
            static_cast<std::uint64_t>(stats.total_speculation_load));
}

// ------------------------------------------- completion-callback API

/// Collects one callback Response and lets the test wait for it.
struct CallbackSlot {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Response response;

  IkService::Completion completion() {
    return [this](Response r) {
      std::lock_guard<std::mutex> lock(mutex);
      response = std::move(r);
      done = true;
      cv.notify_all();
    };
  }
  Response get() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return done; });
    return response;
  }
};

TEST(IkServiceTest, NullCompletionThrows) {
  const auto chain = kin::makePlanar(3);
  IkService svc(gatedFactory(chain, nullptr), smallConfig(1, 4));
  EXPECT_THROW(
      svc.submit({.target = {0.5, 0, 0}, .seed = linalg::VecX(3)}, nullptr),
      std::invalid_argument);
}

// The future overload is documented as a thin wrapper over the callback
// path: for the same request (cache off, fresh identical solvers) the
// two must produce bit-identical Responses, field for field.
TEST(IkServiceTest, CallbackAndFuturePathsAreBitIdentical) {
  const auto chain = kin::makeSerpentine(8);
  // Two services so each request hits a factory-fresh solver (solver
  // RNG state advances per solve on one instance).
  const auto factory = [&] { return ik::makeSolver("quick-ik", chain, {}); };
  IkService via_future(factory, smallConfig(1, 8));
  IkService via_callback(factory, smallConfig(1, 8));

  for (std::uint32_t i = 0; i < 6; ++i) {
    const auto task = workload::generateTask(chain, i);
    const Request request{.target = task.target,
                          .seed = task.seed,
                          .use_seed_cache = false};
    const Response from_future = via_future.submit(request).get();
    CallbackSlot slot;
    via_callback.submit(request, slot.completion());
    const Response from_callback = slot.get();

    ASSERT_EQ(from_future.status, ResponseStatus::kSolved);
    EXPECT_EQ(from_callback.status, from_future.status);
    EXPECT_EQ(from_callback.reject_reason, from_future.reject_reason);
    EXPECT_EQ(from_callback.result.status, from_future.result.status);
    EXPECT_EQ(from_callback.result.iterations, from_future.result.iterations);
    EXPECT_EQ(from_callback.seeded_from_cache, from_future.seeded_from_cache);
    ASSERT_EQ(from_callback.result.theta.size(),
              from_future.result.theta.size());
    for (std::size_t j = 0; j < from_future.result.theta.size(); ++j)
      EXPECT_EQ(std::bit_cast<std::uint64_t>(from_callback.result.theta[j]),
                std::bit_cast<std::uint64_t>(from_future.result.theta[j]))
          << "request " << i << " theta[" << j << "]";
    EXPECT_EQ(std::bit_cast<std::uint64_t>(from_callback.result.error),
              std::bit_cast<std::uint64_t>(from_future.result.error));
  }
}

TEST(IkServiceTest, CallbackAdmissionRejectRunsOnSubmitterThread) {
  const auto chain = kin::makePlanar(3);
  const auto gate = std::make_shared<Gate>();
  IkService svc(gatedFactory(chain, gate), smallConfig(1, 1));

  // Pin the worker and fill the queue, as in the future-path test.
  auto in_flight = svc.submit({.target = {0.5, 0, 0}, .seed = linalg::VecX(3)});
  gate->awaitArrivals(1);
  auto queued = svc.submit({.target = {0.5, 0, 0}, .seed = linalg::VecX(3)});

  const auto submitter = std::this_thread::get_id();
  std::thread::id ran_on;
  bool called = false;
  svc.submit({.target = {0.5, 0, 0}, .seed = linalg::VecX(3)},
             [&](Response r) {
               ran_on = std::this_thread::get_id();
               called = true;
               EXPECT_EQ(r.status, ResponseStatus::kRejected);
               EXPECT_EQ(r.reject_reason, RejectReason::kQueueFull);
             });
  // Admission rejects are synchronous: already delivered, on this thread.
  EXPECT_TRUE(called);
  EXPECT_EQ(ran_on, submitter);

  gate->open();
  in_flight.get();
  queued.get();
}

TEST(IkServiceTest, SolverExceptionBecomesInternalErrorForCallbacks) {
  const auto chain = kin::makeSerpentine(6);
  IkService svc([&] { return ik::makeSolver("quick-ik", chain, {}); },
                smallConfig(1, 4));
  CallbackSlot slot;
  // Wrong seed size: the future path rethrows; the callback path must
  // fold the exception into Rejected{kInternalError} + message.
  svc.submit({.target = {0.5, 0, 0},
              .seed = linalg::VecX(2),
              .use_seed_cache = false},
             slot.completion());
  const Response r = slot.get();
  EXPECT_EQ(r.status, ResponseStatus::kRejected);
  EXPECT_EQ(r.reject_reason, RejectReason::kInternalError);
  EXPECT_FALSE(r.message.empty());
}

TEST(IkServiceTest, CallbackSubmitAfterStopRejectsWithShutdown) {
  const auto chain = kin::makePlanar(3);
  IkService svc(gatedFactory(chain, nullptr), smallConfig(1, 4));
  svc.stop();
  CallbackSlot slot;
  svc.submit({.target = {0.5, 0, 0}, .seed = linalg::VecX(3)},
             slot.completion());
  const Response r = slot.get();
  EXPECT_EQ(r.status, ResponseStatus::kRejected);
  EXPECT_EQ(r.reject_reason, RejectReason::kShutdown);
}

TEST(ResponseTypes, InternalErrorToString) {
  EXPECT_EQ(toString(RejectReason::kInternalError), "internal-error");
}

TEST(IkServiceTest, CacheEvictionsSurfaceInStats) {
  const auto chain = kin::makeSerpentine(6);
  const auto task = workload::generateTask(chain, 0);
  ServiceConfig config = smallConfig(1, 32, /*cache=*/true);
  // One slot per cell: every repeat insert into the target's cell is a
  // ring replacement, so the eviction counter must advance.
  config.cache.max_entries_per_cell = 1;
  IkService svc([&] { return ik::makeSolver("quick-ik", chain, {}); }, config);
  for (int i = 0; i < 3; ++i)
    svc.submit({.target = task.target, .seed = task.seed}).get();

  const auto stats = svc.stats();
  ASSERT_GT(stats.cache_inserts, 1u);  // every converged solve inserts
  EXPECT_EQ(stats.cache_evictions, stats.cache_inserts - 1);
}

}  // namespace
}  // namespace dadu::service
