// FP32-datapath tests: single-precision FK deviation bounds and the
// Quick-IK f32 solver's behaviour relative to the double solver.
#include <gtest/gtest.h>

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/forward_f32.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/solvers/quick_ik.hpp"
#include "dadu/solvers/quick_ik_f32.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::ik {
namespace {

TEST(ForwardF32, MatchesDoubleAtFloatPrecision) {
  // Through a 100-joint product the float error stays far below the
  // paper's 1e-2 m accuracy target.
  for (std::size_t dof : {12u, 50u, 100u}) {
    const auto chain = kin::makeSerpentine(dof);
    const double dev = kin::fkF32MaxDeviation(chain, 50);
    EXPECT_LT(dev, 1e-4) << dof << "-DOF";
    EXPECT_GT(dev, 0.0) << "f32 must actually differ from f64";
  }
}

TEST(ForwardF32, ErrorGrowsWithChainLength) {
  // Rounding accumulates along the transform product; the deviation
  // bound for a long chain should exceed a short one's (distributional
  // statement, wide margin).
  const double short_dev =
      kin::fkF32MaxDeviation(kin::makeSerpentine(5), 100);
  const double long_dev =
      kin::fkF32MaxDeviation(kin::makeSerpentine(100), 100);
  EXPECT_GT(long_dev, short_dev);
}

TEST(ForwardF32, ExactAtZeroConfiguration) {
  // Planar chain at zero: all trig is cos(0)=1/sin(0)=0, sums of
  // exactly-representable link lengths; f32 matches f64 to float eps.
  const auto chain = kin::makePlanar(8, 0.125);  // power-of-two links
  const auto q = chain.zeroConfiguration();
  const auto fine = kin::endEffectorPosition(chain, q);
  const auto coarse = kin::endEffectorPositionF32(chain, q);
  EXPECT_LT((fine - coarse).norm(), 1e-6);
}

TEST(QuickIkF32, ConvergesAtPaperAccuracy) {
  // 1e-2 m is ~5 decimal orders above float FK noise: the f32 solver
  // must converge as reliably as the double one at the paper's target.
  for (std::size_t dof : {12u, 50u}) {
    const auto chain = kin::makeSerpentine(dof);
    SolveOptions options;
    QuickIkF32Solver solver(chain, options);
    for (int i = 0; i < 3; ++i) {
      const auto task = workload::generateTask(chain, i);
      const auto r = solver.solve(task.target, task.seed);
      EXPECT_TRUE(r.converged()) << dof << "-DOF task " << i;
      // Reported error is double-precision verified.
      const auto reached = kin::endEffectorPosition(chain, r.theta);
      EXPECT_NEAR(r.error, (task.target - reached).norm(), 1e-12);
    }
  }
}

TEST(QuickIkF32, IterationCountCloseToDoubleSolver) {
  const auto chain = kin::makeSerpentine(25);
  SolveOptions options;
  QuickIkSolver f64(chain, options);
  QuickIkF32Solver f32(chain, options);
  double if64 = 0.0, if32 = 0.0;
  for (int i = 0; i < 5; ++i) {
    const auto task = workload::generateTask(chain, i);
    if64 += f64.solve(task.target, task.seed).iterations;
    if32 += f32.solve(task.target, task.seed).iterations;
  }
  // Same algorithm, noise far below the accuracy target: within 2x.
  EXPECT_LT(if32, 2.0 * if64 + 10.0);
  EXPECT_GT(if32, 0.4 * if64 - 10.0);
}

TEST(QuickIkF32, FailsAtFloatLevelAccuracy) {
  // Demand accuracy below the f32 datapath's noise floor relative to
  // the chain scale: the solver cannot reach it (the double-precision
  // verification keeps it honest).
  const auto chain = kin::makeSerpentine(100);
  SolveOptions options;
  options.accuracy = 1e-9;
  options.max_iterations = 300;
  QuickIkF32Solver solver(chain, options);
  const auto task = workload::generateTask(chain, 0);
  const auto r = solver.solve(task.target, task.seed);
  EXPECT_FALSE(r.converged());
}

TEST(QuickIkF32, RejectsZeroSpeculations) {
  SolveOptions options;
  options.speculations = 0;
  EXPECT_THROW(QuickIkF32Solver(kin::makeSerpentine(12), options),
               std::invalid_argument);
}

}  // namespace
}  // namespace dadu::ik
