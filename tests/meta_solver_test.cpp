// Restart meta-solver and parallel batch-runner tests.
#include <gtest/gtest.h>

#include "dadu/core/batch_runner.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/solvers/factory.hpp"
#include "dadu/solvers/jt_serial.hpp"
#include "dadu/solvers/quick_ik.hpp"
#include "dadu/solvers/restart.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::ik {
namespace {

TEST(RestartSolver, RejectsBadConstruction) {
  EXPECT_THROW(RestartSolver(nullptr), std::invalid_argument);
  EXPECT_THROW(RestartSolver(std::make_unique<QuickIkSolver>(
                                 kin::makeSerpentine(12), SolveOptions{}),
                             -1),
               std::invalid_argument);
}

TEST(RestartSolver, NoRestartWhenFirstAttemptConverges) {
  const auto chain = kin::makeSerpentine(25);
  RestartSolver solver(
      std::make_unique<QuickIkSolver>(chain, SolveOptions{}), 4);
  const auto task = workload::generateTask(chain, 0);
  const auto r = solver.solve(task.target, task.seed);
  EXPECT_TRUE(r.converged());
  EXPECT_EQ(solver.lastAttempts(), 1);
}

TEST(RestartSolver, RecoversFromSingularStart) {
  // Fully stretched planar chain towards an on-axis target: the plain
  // transpose method stalls instantly; restarts rescue it.
  const auto chain = kin::makePlanar(4, 0.25);
  SolveOptions options;
  options.max_iterations = 2000;
  RestartSolver solver(std::make_unique<QuickIkSolver>(chain, options), 5,
                       /*restart_seed=*/3);
  const auto r = solver.solve({0.5, 0.0, 0.0}, chain.zeroConfiguration());
  EXPECT_TRUE(r.converged());
  EXPECT_GT(solver.lastAttempts(), 1);
}

TEST(RestartSolver, AggregatesCostAcrossAttempts) {
  const auto chain = kin::makePlanar(4, 0.25);
  SolveOptions options;
  options.max_iterations = 50;
  QuickIkSolver probe(chain, options);
  const auto single = probe.solve({0.5, 0.0, 0.0}, chain.zeroConfiguration());
  ASSERT_EQ(single.status, Status::kStalled);

  RestartSolver solver(std::make_unique<QuickIkSolver>(chain, options), 3, 3);
  const auto r = solver.solve({0.5, 0.0, 0.0}, chain.zeroConfiguration());
  // Total iterations include the stalled first attempt plus retries.
  EXPECT_GE(solver.lastAttempts(), 2);
  EXPECT_GE(r.iterations, single.iterations);
}

TEST(RestartSolver, DeterministicRestartSequence) {
  const auto chain = kin::makePlanar(4, 0.25);
  SolveOptions options;
  options.max_iterations = 500;
  RestartSolver a(std::make_unique<QuickIkSolver>(chain, options), 5, 7);
  RestartSolver b(std::make_unique<QuickIkSolver>(chain, options), 5, 7);
  const auto ra = a.solve({0.5, 0.0, 0.0}, chain.zeroConfiguration());
  const auto rb = b.solve({0.5, 0.0, 0.0}, chain.zeroConfiguration());
  EXPECT_EQ(ra.theta, rb.theta);
  EXPECT_EQ(a.lastAttempts(), b.lastAttempts());
}

TEST(RestartSolver, NameAdvertisesWrapping) {
  RestartSolver solver(
      std::make_unique<QuickIkSolver>(kin::makeSerpentine(12), SolveOptions{}),
      2);
  EXPECT_EQ(solver.name(), "quick-ik+restart");
}

}  // namespace
}  // namespace dadu::ik

namespace dadu {
namespace {

TEST(BatchRunner, MatchesSerialResults) {
  const auto chain = kin::makeSerpentine(12);
  const auto tasks = workload::generateTasks(chain, 12);
  const SolverFactory factory = [&] {
    return ik::makeSolver("quick-ik", chain, ik::SolveOptions{});
  };

  const auto serial = solveBatchParallel(factory, tasks, 1);
  const auto parallel = solveBatchParallel(factory, tasks, 4);
  ASSERT_EQ(serial.results.size(), tasks.size());
  ASSERT_EQ(parallel.results.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(serial.results[i].theta, parallel.results[i].theta) << i;
    EXPECT_EQ(serial.results[i].iterations, parallel.results[i].iterations);
  }
  EXPECT_EQ(serial.converged, parallel.converged);
}

TEST(BatchRunner, ReportsThroughput) {
  const auto chain = kin::makeSerpentine(12);
  const auto tasks = workload::generateTasks(chain, 5);
  const auto report = solveBatchParallel(
      [&] { return ik::makeSolver("quick-ik", chain, ik::SolveOptions{}); },
      tasks, 2);
  EXPECT_GT(report.wall_ms, 0.0);
  EXPECT_GT(report.solves_per_second, 0.0);
  EXPECT_EQ(report.converged, 5);
}

TEST(BatchRunner, EmptyTaskListIsFine) {
  const auto chain = kin::makeSerpentine(12);
  const auto report = solveBatchParallel(
      [&] { return ik::makeSolver("quick-ik", chain, ik::SolveOptions{}); },
      {}, 4);
  EXPECT_TRUE(report.results.empty());
  EXPECT_EQ(report.converged, 0);
}

TEST(BatchRunner, NullFactoryThrows) {
  EXPECT_THROW(solveBatchParallel(nullptr, {}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace dadu
