// Whole-stack scenario tests: the sim's reason to exist is that one
// seed replays an entire serving run — clients, wire protocol, faults,
// batching, solver outcomes — byte-identically, and that every run
// upholds the conservation invariants production promises.  The trace
// digest is the witness for the first claim; ScenarioResult::ok() for
// the second.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "dadu/sim/scenario.hpp"

namespace dadu::sim {
namespace {

ScenarioConfig smallPreset(const std::string& name, std::uint64_t seed,
                           std::size_t requests = 2000) {
  ScenarioConfig cfg = presetScenario(name);
  cfg.seed = seed;
  cfg.requests = requests;
  return cfg;
}

TEST(SimScenario, SameSeedReplaysByteIdentically) {
  // Chaos is the hardest case: fault injection, corruption-induced
  // reconnects, deadline races.  If this replays, everything replays.
  const ScenarioResult a = runScenario(smallPreset("chaos", 42));
  const ScenarioResult b = runScenario(smallPreset("chaos", 42));

  EXPECT_EQ(a.trace.digest(), b.trace.digest());
  EXPECT_EQ(a.trace.events(), b.trace.events());
  EXPECT_EQ(a.trace.lines(), b.trace.lines());  // byte-for-byte, not just hash
  EXPECT_EQ(a.virtual_ms, b.virtual_ms);
  EXPECT_EQ(a.tasks_executed, b.tasks_executed);
  EXPECT_EQ(a.solved, b.solved);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.conn_closed, b.conn_closed);
  EXPECT_EQ(a.reconnects, b.reconnects);
  EXPECT_EQ(a.service.total_iterations, b.service.total_iterations);
}

TEST(SimScenario, DifferentSeedsDiverge) {
  const ScenarioResult a = runScenario(smallPreset("chaos", 42));
  const ScenarioResult c = runScenario(smallPreset("chaos", 43));
  // Different seed: different arrivals, targets, fault rolls — the
  // digest must move.  (Equal digests would mean the seed is ignored.)
  EXPECT_NE(a.trace.digest(), c.trace.digest());
}

TEST(SimScenario, EveryPresetUpholdsTheInvariants) {
  for (const std::string& name : scenarioNames()) {
    const ScenarioResult r = runScenario(smallPreset(name, 7));
    EXPECT_TRUE(r.ok()) << name << ": " << (r.violations.empty()
                                                ? ""
                                                : r.violations.front());
    // Every allocated request reached a terminal outcome.
    EXPECT_EQ(r.sent, r.responses + r.wire_errors + r.conn_closed) << name;
    EXPECT_EQ(r.server.dispatched, r.server.completed) << name;
    EXPECT_EQ(r.service.accounted(), r.service.submitted) << name;
  }
}

TEST(SimScenario, BaselineSolvesEverythingCleanly) {
  const ScenarioResult r = runScenario(smallPreset("baseline", 11));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.solved, r.sent);  // comfortable load, no faults, no loss
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.unsent, 0u);
  EXPECT_EQ(r.reconnects, 0u);
}

TEST(SimScenario, OverloadActuallySheds) {
  const ScenarioResult r = runScenario(smallPreset("overload", 11));
  EXPECT_TRUE(r.ok());
  // Offered load is ~100x capacity: admission control and the breaker
  // must reject the bulk of it, and still account for every request.
  EXPECT_GT(r.rejected, r.solved);
  EXPECT_GT(r.service.rejected_queue_full + r.service.rejected_overloaded +
                r.service.shed_low_priority,
            0u);
}

TEST(SimScenario, ChaosKillsConnectionsButLosesNothingSilently) {
  const ScenarioResult r = runScenario(smallPreset("chaos", 123, 4000));
  EXPECT_TRUE(r.ok());
  // Corruption/drop faults must actually bite at this volume...
  EXPECT_GT(r.conn_closed + r.wire_errors, 0u);
  // ...and dead clients redial rather than silently abandoning quota.
  EXPECT_GT(r.reconnects, 0u);
  EXPECT_EQ(r.sent, r.responses + r.wire_errors + r.conn_closed);
}

TEST(SimScenario, BurstKeepsTheCoalescerBusy)
{
  const ScenarioResult r = runScenario(smallPreset("burst", 5));
  EXPECT_TRUE(r.ok());
  // 16-deep trains against a 16-lane batch window: mean occupancy must
  // reflect real coalescing, not per-request dispatch.
  EXPECT_GT(r.service.meanBatchOccupancy(), 4.0);
}

TEST(SimScenario, TraceWritesSeedAndDigestTrailer) {
  ScenarioConfig cfg = smallPreset("baseline", 99, 50);
  const ScenarioResult r = runScenario(cfg);
  std::ostringstream out;
  r.trace.writeTo(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("scenario=baseline seed=99"), std::string::npos);
  EXPECT_NE(text.find("# events="), std::string::npos);
  EXPECT_NE(text.find("done sent=50"), std::string::npos);
}

TEST(SimScenario, UnknownPresetThrows) {
  EXPECT_THROW(presetScenario("no-such-shape"), std::invalid_argument);
}

TEST(SimScenario, MultispecRoutesThreeSpecsUnderOneServer) {
  const ScenarioResult r = runScenario(smallPreset("multispec", 21));
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations.front());

  // All three lanes saw real traffic, and the per-spec slices conserve
  // the aggregate exactly.
  ASSERT_EQ(r.per_spec.size(), 3u);
  std::uint64_t lane_submitted = 0, lane_solved = 0;
  for (const ScenarioSpecStats& s : r.per_spec) {
    EXPECT_GT(s.stats.submitted, 0u) << s.name;
    EXPECT_EQ(s.stats.accounted(), s.stats.submitted) << s.name;
    lane_submitted += s.stats.submitted;
    lane_solved += s.stats.solved;
  }
  EXPECT_EQ(lane_submitted, r.service.submitted);
  EXPECT_EQ(lane_solved, r.service.solved);

  // The 2% wrong-spec trickle surfaced as wire errors (kUnknownSpec),
  // counted by the server, and never reached any lane.
  EXPECT_GT(r.wire_errors, 0u);
  EXPECT_EQ(r.server.unknown_spec, r.wire_errors);
  EXPECT_EQ(r.server.dispatched, r.service.submitted);
}

TEST(SimScenario, MultispecReplaysByteIdentically) {
  const ScenarioResult a = runScenario(smallPreset("multispec", 77));
  const ScenarioResult b = runScenario(smallPreset("multispec", 77));
  EXPECT_EQ(a.trace.digest(), b.trace.digest());
  EXPECT_EQ(a.trace.lines(), b.trace.lines());
  ASSERT_EQ(a.per_spec.size(), b.per_spec.size());
  for (std::size_t s = 0; s < a.per_spec.size(); ++s) {
    EXPECT_EQ(a.per_spec[s].stats.submitted, b.per_spec[s].stats.submitted);
    EXPECT_EQ(a.per_spec[s].stats.total_iterations,
              b.per_spec[s].stats.total_iterations);
  }
}

TEST(SimScenario, SingleSpecDigestsUnchangedByWrongSpecKnob) {
  // specs=1 with the wrong-spec knob off must not consume any RNG for
  // spec selection — the historical byte-identical replays depend on
  // it.  Baseline vs explicit specs=1 is the regression tripwire.
  ScenarioConfig implicit = smallPreset("baseline", 31, 400);
  ScenarioConfig explicit_single = smallPreset("baseline", 31, 400);
  explicit_single.specs = 1;
  const ScenarioResult a = runScenario(implicit);
  const ScenarioResult b = runScenario(explicit_single);
  EXPECT_EQ(a.trace.digest(), b.trace.digest());
  EXPECT_TRUE(a.per_spec.empty());
}

}  // namespace
}  // namespace dadu::sim
