// EventLoop unit tests: fd dispatch, self-removal safety, cross-thread
// wakeup, ticks, and stop().  Pipes stand in for sockets — the loop
// only sees fds.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "dadu/net/event_loop.hpp"

namespace dadu::net {
namespace {

/// A nonblocking pipe whose read end the loop can watch.
struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() {
    EXPECT_EQ(pipe2(fds, O_NONBLOCK | O_CLOEXEC), 0);
  }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  int readEnd() const { return fds[0]; }
  void poke() const {
    const char byte = 'x';
    ASSERT_EQ(::write(fds[1], &byte, 1), 1);
  }
  void drain() const {
    char buf[64];
    while (::read(fds[0], buf, sizeof buf) > 0) {
    }
  }
};

TEST(EventLoopTest, DispatchesReadableFd) {
  EventLoop loop;
  Pipe pipe;
  int fired = 0;
  loop.add(pipe.readEnd(), EPOLLIN, [&](std::uint32_t events) {
    EXPECT_TRUE(events & EPOLLIN);
    ++fired;
    pipe.drain();
  });
  EXPECT_TRUE(loop.watching(pipe.readEnd()));

  EXPECT_EQ(loop.runOnce(0), 0);  // nothing ready yet
  pipe.poke();
  EXPECT_GE(loop.runOnce(100), 1);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.runOnce(0), 0);  // level-triggered but drained
}

TEST(EventLoopTest, HandlerMaySelfRemove) {
  EventLoop loop;
  Pipe pipe;
  int fired = 0;
  loop.add(pipe.readEnd(), EPOLLIN, [&](std::uint32_t) {
    ++fired;
    loop.remove(pipe.readEnd());
  });
  pipe.poke();
  EXPECT_GE(loop.runOnce(100), 1);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(loop.watching(pipe.readEnd()));
  // Still readable (never drained) but no longer watched.
  EXPECT_EQ(loop.runOnce(0), 0);
}

TEST(EventLoopTest, HandlerMayRemoveAnotherPendingFd) {
  // Both pipes become readable in the same epoll_wait round; the first
  // handler removes the second fd, whose pending event must be skipped.
  EventLoop loop;
  Pipe a, b;
  std::vector<int> order;
  loop.add(a.readEnd(), EPOLLIN, [&](std::uint32_t) {
    order.push_back(0);
    a.drain();
    loop.remove(b.readEnd());
  });
  loop.add(b.readEnd(), EPOLLIN, [&](std::uint32_t) {
    order.push_back(1);
    b.drain();
    loop.remove(a.readEnd());
  });
  a.poke();
  b.poke();
  loop.runOnce(100);
  // Exactly one of the two handlers ran — whichever epoll reported
  // first removed the other before its dispatch.
  ASSERT_EQ(order.size(), 1u);
}

TEST(EventLoopTest, ModifyChangesInterest) {
  EventLoop loop;
  Pipe pipe;
  int fired = 0;
  loop.add(pipe.readEnd(), EPOLLIN, [&](std::uint32_t) { ++fired; });
  pipe.poke();
  loop.modify(pipe.readEnd(), 0);  // interest cleared: no dispatch
  EXPECT_EQ(loop.runOnce(0), 0);
  EXPECT_EQ(fired, 0);
  loop.modify(pipe.readEnd(), EPOLLIN);
  EXPECT_GE(loop.runOnce(100), 1);
  EXPECT_EQ(fired, 1);
}

TEST(EventLoopTest, WakeupFromAnotherThreadRunsHandler) {
  EventLoop loop;
  std::atomic<int> wakeups{0};
  loop.setWakeupHandler([&] { wakeups.fetch_add(1); });

  std::thread poker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    loop.wakeup();
  });
  // Block far longer than the poke delay: wakeup() must cut it short.
  const auto start = std::chrono::steady_clock::now();
  while (wakeups.load() == 0) loop.runOnce(2000);
  const auto waited = std::chrono::steady_clock::now() - start;
  poker.join();
  EXPECT_GE(wakeups.load(), 1);
  EXPECT_LT(waited, std::chrono::seconds(2));
}

TEST(EventLoopTest, WakeupsCoalesce) {
  EventLoop loop;
  int invocations = 0;
  loop.setWakeupHandler([&] { ++invocations; });
  loop.wakeup();
  loop.wakeup();
  loop.wakeup();
  loop.runOnce(100);
  EXPECT_EQ(invocations, 1);  // eventfd counter reads as one event
}

TEST(EventLoopTest, StopUnblocksRun) {
  EventLoop loop;
  std::thread runner([&] { loop.run(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(loop.stopped());
  loop.stop();
  runner.join();
  EXPECT_TRUE(loop.stopped());
}

TEST(EventLoopTest, TickFiresRepeatedly) {
  EventLoop loop;
  int ticks = 0;
  loop.setTick(5.0, [&] { ++ticks; });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (ticks < 3 && std::chrono::steady_clock::now() < deadline)
    loop.runOnce(20);
  EXPECT_GE(ticks, 3);
}

}  // namespace
}  // namespace dadu::net
