// Convergence tests: every solver reaches reachable targets within the
// paper's accuracy across chain families and DOF counts, with the FK of
// the returned joints verified independently.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/solvers/factory.hpp"
#include "dadu/solvers/quick_ik.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::ik {
namespace {

using Case = std::tuple<std::string, std::size_t>;  // solver, dof

class SolverConvergence : public ::testing::TestWithParam<Case> {};

TEST_P(SolverConvergence, ReachesReachableTargets) {
  const auto& [name, dof] = GetParam();
  const auto chain = kin::makeSerpentine(dof);
  SolveOptions options;  // accuracy 1e-2, 10k iterations
  const auto solver = makeSolver(name, chain, options);

  const int targets = 5;
  const auto tasks = workload::generateTasks(chain, targets);
  int converged = 0;
  for (const auto& task : tasks) {
    const SolveResult r = solver->solve(task.target, task.seed);
    if (!r.converged()) continue;
    ++converged;
    // Independent check: FK of the returned configuration really is
    // within accuracy of the target.
    const auto reached = kin::endEffectorPosition(chain, r.theta);
    EXPECT_LT((reached - task.target).norm(), options.accuracy)
        << name << " dof=" << dof;
    EXPECT_NEAR((reached - task.target).norm(), r.error, 1e-9);
    EXPECT_LE(r.iterations, options.max_iterations);
  }
  // First-order methods on redundant chains reliably solve reachable
  // targets; demand full success for the paper's methods and allow one
  // miss for the geometric CCD baseline.
  const int required = (name == "ccd") ? targets - 1 : targets;
  EXPECT_GE(converged, required) << name << " dof=" << dof;
}

std::string caseName(const ::testing::TestParamInfo<Case>& info) {
  auto n = std::get<0>(info.param) + "_" + std::to_string(std::get<1>(info.param));
  for (char& c : n)
    if (c == '-') c = '_';
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    PaperMethods, SolverConvergence,
    ::testing::Combine(::testing::Values("jt-serial", "quick-ik",
                                         "quick-ik-mt", "pinv-svd"),
                       ::testing::Values<std::size_t>(12, 25, 50)),
    caseName);

INSTANTIATE_TEST_SUITE_P(
    ExtraBaselines, SolverConvergence,
    ::testing::Combine(::testing::Values("dls", "sdls", "ccd"),
                       ::testing::Values<std::size_t>(12, 25)),
    caseName);

TEST(SolverConvergence, QuickIkHandles100Dof) {
  const auto chain = kin::makeSerpentine(100);
  SolveOptions options;
  QuickIkSolver solver(chain, options);
  const auto task = workload::generateTask(chain, 0);
  const auto r = solver.solve(task.target, task.seed);
  EXPECT_TRUE(r.converged());
  EXPECT_LT(r.error, options.accuracy);
}

TEST(SolverConvergence, PumaReachesInteriorTarget) {
  const auto chain = kin::makePuma560();
  SolveOptions options;
  options.clamp_to_limits = true;
  QuickIkSolver solver(chain, options);
  // A target generated from a within-limits configuration.
  const auto task = workload::generateTask(chain, 3);
  const auto r = solver.solve(task.target, task.seed);
  EXPECT_TRUE(r.converged());
  EXPECT_TRUE(chain.withinLimits(r.theta));
}

TEST(SolverConvergence, TightAccuracyStillConverges) {
  const auto chain = kin::makeSerpentine(12);
  SolveOptions options;
  options.accuracy = 1e-4;  // 10x tighter than the paper
  QuickIkSolver solver(chain, options);
  const auto task = workload::generateTask(chain, 1);
  const auto r = solver.solve(task.target, task.seed);
  EXPECT_TRUE(r.converged());
  EXPECT_LT(r.error, 1e-4);
}

TEST(SolverConvergence, IterationBudgetRespected) {
  const auto chain = kin::makeSerpentine(50);
  SolveOptions options;
  options.max_iterations = 3;
  options.accuracy = 1e-9;  // unreachable precision in 3 iterations
  for (const char* name : {"jt-serial", "quick-ik", "pinv-svd"}) {
    const auto solver = makeSolver(name, chain, options);
    const auto task = workload::generateTask(chain, 2);
    const auto r = solver->solve(task.target, task.seed);
    EXPECT_FALSE(r.converged()) << name;
    EXPECT_LE(r.iterations, 3) << name;
    EXPECT_EQ(r.status, Status::kMaxIterations) << name;
  }
}

TEST(SolverConvergence, ZeroAccuracyNeverConverges) {
  const auto chain = kin::makeSerpentine(12);
  SolveOptions options;
  options.accuracy = 0.0;
  options.max_iterations = 20;
  QuickIkSolver solver(chain, options);
  const auto task = workload::generateTask(chain, 0);
  EXPECT_FALSE(solver.solve(task.target, task.seed).converged());
}

TEST(SolverConvergence, WarmSeedConvergesFasterThanCold) {
  const auto chain = kin::makeSerpentine(25);
  SolveOptions options;
  QuickIkSolver solver(chain, options);
  const auto task = workload::generateTask(chain, 4);

  const auto cold = solver.solve(task.target, task.seed);
  ASSERT_TRUE(cold.converged());
  // Warm: start at the converged solution, perturbed slightly.
  linalg::VecX warm = cold.theta;
  warm[0] += 0.01;
  const auto hot = solver.solve(task.target, warm);
  ASSERT_TRUE(hot.converged());
  EXPECT_LE(hot.iterations, cold.iterations);
}

}  // namespace
}  // namespace dadu::ik
