// Closed-form planar-2R IK tests, including cross-validation of the
// numeric solver family against the exact oracle.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dadu/kinematics/analytic.hpp"
#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/solvers/quick_ik.hpp"
#include "dadu/workload/rng.hpp"

namespace dadu::kin {
namespace {

constexpr double kL1 = 0.4, kL2 = 0.3;

TEST(Planar2R, InteriorTargetHasTwoSolutionsThatCheckOut) {
  const Chain chain = makePlanar(2, 1.0);  // geometry via explicit lengths
  const std::vector<Joint> joints = {revolute({kL1, 0, 0, 0}),
                                     revolute({kL2, 0, 0, 0})};
  const Chain arm(joints, "2r");

  const linalg::Vec3 target{0.5, 0.2, 0.0};
  const auto sols = planar2RInverse(kL1, kL2, target);
  ASSERT_EQ(sols.size(), 2u);
  for (const auto& q : sols) {
    const auto reached = endEffectorPosition(arm, q);
    EXPECT_LT((reached - target).norm(), 1e-12);
  }
  // Distinct branches.
  EXPECT_GT((sols[0] - sols[1]).norm(), 1e-6);
}

TEST(Planar2R, BoundaryTargetSingleSolution) {
  const auto sols = planar2RInverse(kL1, kL2, {kL1 + kL2, 0.0, 0.0}, 1e-9);
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_NEAR(sols[0][0], 0.0, 1e-6);
  EXPECT_NEAR(sols[0][1], 0.0, 1e-6);
}

TEST(Planar2R, UnreachableTargetsEmpty) {
  EXPECT_TRUE(planar2RInverse(kL1, kL2, {1.0, 0.0, 0.0}).empty());  // too far
  EXPECT_TRUE(planar2RInverse(kL1, kL2, {0.05, 0.0, 0.0}).empty()); // too close
}

TEST(Planar2R, InnerBoundaryReachable) {
  // |l1 - l2| ring is reachable (folded arm).
  const auto sols = planar2RInverse(kL1, kL2, {kL1 - kL2, 0.0, 0.0}, 1e-9);
  ASSERT_GE(sols.size(), 1u);
  const std::vector<Joint> joints = {revolute({kL1, 0, 0, 0}),
                                     revolute({kL2, 0, 0, 0})};
  const Chain arm(joints, "2r");
  EXPECT_LT((endEffectorPosition(arm, sols[0]) -
             linalg::Vec3{kL1 - kL2, 0.0, 0.0})
                .norm(),
            1e-9);
}

TEST(Planar2R, RandomSweepRoundTrips) {
  const std::vector<Joint> joints = {revolute({kL1, 0, 0, 0}),
                                     revolute({kL2, 0, 0, 0})};
  const Chain arm(joints, "2r");
  workload::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    // Sample configurations, recover them from their FK.
    const linalg::VecX q{rng.angle(), rng.angle()};
    const auto target = endEffectorPosition(arm, q);
    const auto sols = planar2RInverse(kL1, kL2, target);
    ASSERT_FALSE(sols.empty()) << i;
    bool matched = false;
    for (const auto& s : sols)
      matched |= (endEffectorPosition(arm, s) - target).norm() < 1e-10;
    EXPECT_TRUE(matched) << i;
  }
}

TEST(Planar2R, ChainOverloadValidates) {
  const Chain planar = makePlanar(2, 0.3);
  EXPECT_NO_THROW(planar2RInverse(planar, {0.4, 0.1, 0.0}));
  EXPECT_THROW(planar2RInverse(makePlanar(3), {0.1, 0, 0}),
               std::invalid_argument);
  EXPECT_THROW(planar2RInverse(makeSerpentine(2), {0.1, 0, 0}),
               std::invalid_argument);
}

TEST(Planar2R, NumericSolverAgreesWithOracle) {
  // Quick-IK on the 2R arm must land on one of the two analytic
  // branches (up to the 1e-2 accuracy gate).
  const std::vector<Joint> joints = {revolute({kL1, 0, 0, 0}),
                                     revolute({kL2, 0, 0, 0})};
  const Chain arm(joints, "2r");
  ik::SolveOptions options;
  options.accuracy = 1e-4;
  ik::QuickIkSolver solver(arm, options);

  const linalg::Vec3 target{0.45, 0.3, 0.0};
  const auto oracle = planar2RInverse(kL1, kL2, target);
  ASSERT_EQ(oracle.size(), 2u);

  const auto r = solver.solve(target, {0.3, 0.3});
  ASSERT_TRUE(r.converged());
  // Compare by end-effector position (joint angles may differ by 2*pi).
  const auto reached = endEffectorPosition(arm, r.theta);
  EXPECT_LT((reached - target).norm(), 1e-4);
  double best_angle_gap = 1e9;
  for (const auto& s : oracle) {
    double gap = 0.0;
    for (std::size_t i = 0; i < 2; ++i)
      gap += std::abs(std::remainder(r.theta[i] - s[i],
                                     2.0 * std::numbers::pi));
    best_angle_gap = std::min(best_angle_gap, gap);
  }
  EXPECT_LT(best_angle_gap, 0.05);
}

}  // namespace
}  // namespace dadu::kin
