// IkClient move-semantics regression: the retry budget and stats are a
// resource, not state to duplicate.  Before the fix, moving a client
// mid-budget COPIED retry_budget_/retry_stats_, so the budget could be
// spent twice (once through the moved-from shell, once through the
// moved-to client) and stats double-counted in any fleet-wide sum.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "dadu/kinematics/presets.hpp"
#include "dadu/net/ik_client.hpp"
#include "dadu/net/ik_server.hpp"
#include "dadu/service/ik_service.hpp"
#include "dadu/solvers/factory.hpp"

namespace dadu::net {
namespace {

std::unique_ptr<service::IkService> makeService(const kin::Chain& chain) {
  service::ServiceConfig config;
  config.workers = 1;
  config.enable_seed_cache = false;
  return std::make_unique<service::IkService>(
      [chain] { return ik::makeSolver("quick-ik", chain, {}); }, config);
}

/// Fast-failing retry setup: every failed callWithRetry burns exactly
/// max_attempts - 1 = 2 retries while budget lasts, with sub-ms sleeps.
ClientConfig retryConfig(std::uint64_t budget) {
  ClientConfig config;
  config.connect_timeout_ms = 50.0;
  config.connect_attempts = 1;
  config.retry_backoff_ms = 1.0;
  config.io_timeout_ms = 200.0;
  config.retry.max_attempts = 3;
  config.retry.base_backoff_ms = 0.1;
  config.retry.max_backoff_ms = 0.2;
  config.retry.budget = budget;
  return config;
}

std::uint64_t failedCallRetries(IkClient& client) {
  service::Request request;
  request.target = {0.1, 0.1, 0.1};
  request.seed = linalg::VecX(6);
  const std::uint64_t before = client.retryStats().retries;
  EXPECT_THROW((void)client.callWithRetry(request), std::runtime_error);
  return client.retryStats().retries - before;
}

TEST(IkClientMove, RetryBudgetIsTransferredNotCopied) {
  constexpr std::uint64_t kBudget = 5;

  // Real connect (so host/port/budget are armed), then kill the server
  // so every subsequent call fails through the retry path.
  const kin::Chain chain = kin::makeSerpentine(6);
  auto service = makeService(chain);
  auto server = std::make_unique<IkServer>(*service);
  server->start();
  IkClient a;
  a.connect("127.0.0.1", server->port(), retryConfig(kBudget));
  server.reset();
  service.reset();

  // Burn part of the budget on the original client: 2 retries.
  EXPECT_EQ(failedCallRetries(a), 2u);

  // Move mid-budget.  The moved-to client owns the remaining 3; the
  // moved-from shell keeps nothing.
  IkClient b = std::move(a);
  EXPECT_EQ(a.retryStats().retries, 0u)
      << "moved-from client must not keep (double-countable) stats";
  EXPECT_EQ(b.retryStats().retries, 2u);

  // A call on the moved-from shell fails terminally without spending
  // retries: its budget is zero.
  EXPECT_EQ(failedCallRetries(a), 0u)
      << "moved-from client spent budget that was transferred away";
  EXPECT_EQ(a.retryStats().budget_exhausted, 1u);

  // Drain the rest through the moved-to client: 2, then the final 1,
  // then 0 once exhausted.
  EXPECT_EQ(failedCallRetries(b), 2u);
  EXPECT_EQ(failedCallRetries(b), 1u);
  EXPECT_EQ(failedCallRetries(b), 0u);

  // The invariant the fix restores: total retries across every client
  // that ever held this budget never exceeds the budget.
  EXPECT_LE(a.retryStats().retries + b.retryStats().retries, kBudget);
  EXPECT_EQ(a.retryStats().retries + b.retryStats().retries, kBudget);
}

TEST(IkClientMove, MoveAssignmentTransfersBudgetToo) {
  constexpr std::uint64_t kBudget = 2;
  const kin::Chain chain = kin::makeSerpentine(6);
  auto service = makeService(chain);
  auto server = std::make_unique<IkServer>(*service);
  server->start();
  IkClient a;
  a.connect("127.0.0.1", server->port(), retryConfig(kBudget));
  server.reset();
  service.reset();

  IkClient b;
  b = std::move(a);
  EXPECT_EQ(failedCallRetries(a), 0u) << "moved-from kept budget";
  EXPECT_EQ(failedCallRetries(b), 2u);
  EXPECT_EQ(a.retryStats().retries + b.retryStats().retries, kBudget);
}

}  // namespace
}  // namespace dadu::net
