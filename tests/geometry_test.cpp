// Geometry substrate tests: distance primitives, robot body model,
// self/environment collision and the collision-aware solver.
#include <gtest/gtest.h>

#include <numbers>

#include "dadu/geometry/collision_aware_solver.hpp"
#include "dadu/geometry/distance.hpp"
#include "dadu/geometry/robot_geometry.hpp"
#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/solvers/quick_ik.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::geom {
namespace {

TEST(Distance, ClosestPointOnSegment) {
  const linalg::Vec3 a{0, 0, 0}, b{10, 0, 0};
  EXPECT_EQ(closestPointOnSegment(a, b, {5, 3, 0}), linalg::Vec3(5, 0, 0));
  EXPECT_EQ(closestPointOnSegment(a, b, {-4, 1, 0}), a);   // clamps to a
  EXPECT_EQ(closestPointOnSegment(a, b, {17, -2, 0}), b);  // clamps to b
  // Degenerate segment.
  EXPECT_EQ(closestPointOnSegment(a, a, {3, 4, 0}), a);
}

TEST(Distance, PointSegment) {
  EXPECT_DOUBLE_EQ(pointSegmentDistance({5, 3, 0}, {0, 0, 0}, {10, 0, 0}),
                   3.0);
  EXPECT_DOUBLE_EQ(pointSegmentDistance({-3, 4, 0}, {0, 0, 0}, {10, 0, 0}),
                   5.0);
}

TEST(Distance, SegmentSegmentParallel) {
  EXPECT_DOUBLE_EQ(
      segmentSegmentDistance({0, 0, 0}, {1, 0, 0}, {0, 2, 0}, {1, 2, 0}),
      2.0);
}

TEST(Distance, SegmentSegmentSkew) {
  // Classic skew pair: z-offset crossing.
  EXPECT_DOUBLE_EQ(
      segmentSegmentDistance({-1, 0, 0}, {1, 0, 0}, {0, -1, 1}, {0, 1, 1}),
      1.0);
}

TEST(Distance, SegmentSegmentIntersecting) {
  EXPECT_NEAR(
      segmentSegmentDistance({-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}),
      0.0, 1e-12);
}

TEST(Distance, SegmentSegmentEndpointCases) {
  // Closest at endpoints, not interiors.
  EXPECT_DOUBLE_EQ(
      segmentSegmentDistance({0, 0, 0}, {1, 0, 0}, {3, 0, 0}, {5, 0, 0}),
      2.0);
  // One segment degenerate.
  EXPECT_DOUBLE_EQ(
      segmentSegmentDistance({0, 0, 0}, {0, 0, 0}, {1, 1, 0}, {1, -1, 0}),
      1.0);
  // Both degenerate.
  EXPECT_DOUBLE_EQ(
      segmentSegmentDistance({0, 0, 0}, {0, 0, 0}, {3, 4, 0}, {3, 4, 0}),
      5.0);
}

TEST(Distance, CapsuleClearances) {
  const Capsule a{{0, 0, 0}, {1, 0, 0}, 0.2};
  const Capsule b{{0, 1, 0}, {1, 1, 0}, 0.3};
  EXPECT_NEAR(capsuleCapsuleClearance(a, b), 1.0 - 0.5, 1e-12);
  // Penetrating pair: negative clearance.
  const Capsule c{{0, 0.3, 0}, {1, 0.3, 0}, 0.2};
  EXPECT_LT(capsuleCapsuleClearance(a, c), 0.0);

  const Sphere s{{0.5, 2, 0}, 0.5};
  EXPECT_NEAR(capsuleSphereClearance(a, s), 2.0 - 0.2 - 0.5, 1e-12);
}

TEST(RobotGeometry, CapsulesFollowLinkFrames) {
  const auto chain = kin::makePlanar(3, 0.5);
  RobotGeometry body(chain, 0.05);
  const auto capsules = body.linkCapsules(chain.zeroConfiguration());
  ASSERT_EQ(capsules.size(), 3u);
  EXPECT_EQ(capsules[0].a, linalg::Vec3(0, 0, 0));
  EXPECT_NEAR((capsules[0].b - linalg::Vec3(0.5, 0, 0)).norm(), 0.0, 1e-12);
  EXPECT_NEAR((capsules[2].b - linalg::Vec3(1.5, 0, 0)).norm(), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(capsules[1].radius, 0.05);
}

TEST(RobotGeometry, StretchedChainIsSelfCollisionFree) {
  const auto chain = kin::makePlanar(6, 0.3);
  RobotGeometry body(chain, 0.03);
  EXPECT_GT(body.selfClearance(chain.zeroConfiguration()), 0.0);
}

TEST(RobotGeometry, FoldedChainSelfCollides) {
  // Fold the planar arm back onto itself: joint 2 at pi overlays link 3
  // onto link 1.
  const auto chain = kin::makePlanar(3, 0.3);
  RobotGeometry body(chain, 0.05);
  const linalg::VecX folded{0.0, std::numbers::pi, 0.0};
  EXPECT_LT(body.selfClearance(folded), 0.0);
}

TEST(RobotGeometry, EnvironmentClearance) {
  const auto chain = kin::makePlanar(2, 0.5);
  RobotGeometry body(chain, 0.05);
  const Obstacles obstacles = {{{0.5, 1.0, 0.0}, 0.2}};
  // Stretched along x: obstacle 1m above link 1.
  const double clear =
      body.environmentClearance(chain.zeroConfiguration(), obstacles);
  EXPECT_NEAR(clear, 1.0 - 0.05 - 0.2, 1e-9);
  EXPECT_TRUE(body.collisionFree(chain.zeroConfiguration(), obstacles));
  // Obstacle sitting on the arm.
  const Obstacles blocking = {{{0.5, 0.0, 0.0}, 0.2}};
  EXPECT_FALSE(body.collisionFree(chain.zeroConfiguration(), blocking));
}

TEST(CollisionAwareSolver, ValidatesConstruction) {
  const auto chain = kin::makeSerpentine(12);
  RobotGeometry body(chain, 0.02);
  EXPECT_THROW(CollisionAwareSolver(nullptr, body, {}), std::invalid_argument);
  EXPECT_THROW(
      CollisionAwareSolver(
          std::make_unique<ik::QuickIkSolver>(kin::makeSerpentine(10),
                                              ik::SolveOptions{}),
          body, {}),
      std::invalid_argument);
}

TEST(CollisionAwareSolver, FindsFreeSolutionAroundObstacle) {
  const auto chain = kin::makeSerpentine(25);
  RobotGeometry body(chain, 0.02);
  const auto task = workload::generateTask(chain, 1);

  // An obstacle near (but not covering) the target: some IK solutions
  // pass through it, free ones exist.
  const linalg::Vec3 offset{0.15, 0.15, 0.0};
  const Obstacles obstacles = {{task.target + offset, 0.08}};

  // Environment avoidance only: a 25-DOF snake's coarse capsule model
  // self-"collides" in nearly every useful pose, so self checking is
  // disabled, as a snake-robot deployment would.
  CollisionAwareSolver solver(
      std::make_unique<ik::QuickIkSolver>(chain, ik::SolveOptions{}), body,
      obstacles, /*margin=*/0.0, /*max_attempts=*/10, /*restart_seed=*/5,
      /*check_self=*/false);
  const auto r = solver.solve(task.target, task.seed);
  EXPECT_TRUE(r.success());
  EXPECT_GE(r.clearance, 0.0);
  // And the solution still reaches the target.
  const auto reached = kin::endEffectorPosition(chain, r.solve.theta);
  EXPECT_LT((reached - task.target).norm(), 1e-2);
}

TEST(CollisionAwareSolver, ReportsFailureWhenTargetInsideObstacle) {
  const auto chain = kin::makeSerpentine(12);
  RobotGeometry body(chain, 0.02);
  const auto task = workload::generateTask(chain, 0);
  // Obstacle swallowing the target: the end effector must end inside it.
  const Obstacles obstacles = {{task.target, 0.15}};
  CollisionAwareSolver solver(
      std::make_unique<ik::QuickIkSolver>(chain, ik::SolveOptions{}), body,
      obstacles, 0.0, 4);
  const auto r = solver.solve(task.target, task.seed);
  EXPECT_FALSE(r.success());
  EXPECT_LT(r.clearance, 0.0);
  EXPECT_EQ(r.attempts, 4);
}

}  // namespace
}  // namespace dadu::geom
