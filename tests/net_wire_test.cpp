// Wire-protocol unit tests: frame grammar, bit-exact round trips, and
// the malformed-input taxonomy the server's close-only-the-offender
// behaviour is built on.  Everything here is pure byte manipulation —
// no sockets.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "dadu/net/buffer.hpp"
#include "dadu/net/wire.hpp"

namespace dadu::net {
namespace {

WireRequest sampleRequest() {
  WireRequest request;
  request.id = 0x1122334455667788ull;
  request.spec_id = 7;
  request.use_seed_cache = false;
  request.target[0] = 0.25;
  request.target[1] = -1.5;
  request.target[2] = 3.75;
  request.deadline_ms = 12.5;
  request.seed = {0.1, -0.2, 0.3, 1e-300};
  return request;
}

WireResponse sampleResponse() {
  WireResponse response;
  response.id = 42;
  response.status = 0;         // kSolved
  response.reject_reason = 0;  // kNone
  response.solver_status = 0;  // kConverged
  response.seeded_from_cache = true;
  response.iterations = 123;
  response.error = 0.0042;
  response.queue_ms = 1.25;
  response.solve_ms = 7.5;
  response.theta = {0.5, -0.25, std::numeric_limits<double>::denorm_min()};
  return response;
}

TEST(WireCodec, RequestRoundTripIsBitExact) {
  const WireRequest request = sampleRequest();
  std::vector<std::uint8_t> bytes;
  encodeRequest(request, bytes);

  DecodedFrame frame;
  ASSERT_EQ(decodeFrame(bytes.data(), bytes.size(), kDefaultMaxFrameBytes,
                        frame),
            DecodeStatus::kOk);
  EXPECT_EQ(frame.type, MsgType::kRequest);
  EXPECT_EQ(frame.consumed, bytes.size());
  EXPECT_EQ(frame.request.id, request.id);
  EXPECT_EQ(frame.request.spec_id, request.spec_id);
  EXPECT_EQ(frame.request.use_seed_cache, request.use_seed_cache);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(frame.request.target[i]),
              std::bit_cast<std::uint64_t>(request.target[i]));
  EXPECT_EQ(frame.request.deadline_ms, request.deadline_ms);
  ASSERT_EQ(frame.request.seed.size(), request.seed.size());
  for (std::size_t i = 0; i < request.seed.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(frame.request.seed[i]),
              std::bit_cast<std::uint64_t>(request.seed[i]));
}

TEST(WireCodec, ResponseRoundTripIsBitExact) {
  const WireResponse response = sampleResponse();
  std::vector<std::uint8_t> bytes;
  encodeResponse(response, bytes);

  DecodedFrame frame;
  ASSERT_EQ(decodeFrame(bytes.data(), bytes.size(), kDefaultMaxFrameBytes,
                        frame),
            DecodeStatus::kOk);
  EXPECT_EQ(frame.type, MsgType::kResponse);
  EXPECT_EQ(frame.response.id, response.id);
  EXPECT_EQ(frame.response.status, response.status);
  EXPECT_EQ(frame.response.reject_reason, response.reject_reason);
  EXPECT_EQ(frame.response.solver_status, response.solver_status);
  EXPECT_EQ(frame.response.seeded_from_cache, response.seeded_from_cache);
  EXPECT_EQ(frame.response.iterations, response.iterations);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(frame.response.error),
            std::bit_cast<std::uint64_t>(response.error));
  ASSERT_EQ(frame.response.theta.size(), response.theta.size());
  for (std::size_t i = 0; i < response.theta.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(frame.response.theta[i]),
              std::bit_cast<std::uint64_t>(response.theta[i]));
}

TEST(WireCodec, ErrorRoundTrip) {
  WireError error;
  error.id = 9;
  error.code = WireErrorCode::kUnknownSpec;
  error.message = "server serves spec 0, not 7";
  std::vector<std::uint8_t> bytes;
  encodeError(error, bytes);

  DecodedFrame frame;
  ASSERT_EQ(decodeFrame(bytes.data(), bytes.size(), kDefaultMaxFrameBytes,
                        frame),
            DecodeStatus::kOk);
  EXPECT_EQ(frame.type, MsgType::kError);
  EXPECT_EQ(frame.error.id, error.id);
  EXPECT_EQ(frame.error.code, error.code);
  EXPECT_EQ(frame.error.message, error.message);
}

TEST(WireCodec, EmptySeedAndEmptyThetaAreValid) {
  WireRequest request;
  request.id = 1;
  std::vector<std::uint8_t> bytes;
  encodeRequest(request, bytes);
  DecodedFrame frame;
  ASSERT_EQ(decodeFrame(bytes.data(), bytes.size(), kDefaultMaxFrameBytes,
                        frame),
            DecodeStatus::kOk);
  EXPECT_TRUE(frame.request.seed.empty());

  WireResponse response;
  response.id = 2;
  bytes.clear();
  encodeResponse(response, bytes);
  ASSERT_EQ(decodeFrame(bytes.data(), bytes.size(), kDefaultMaxFrameBytes,
                        frame),
            DecodeStatus::kOk);
  EXPECT_TRUE(frame.response.theta.empty());
}

// Every strict prefix of a valid frame must report kNeedMore — the
// streaming decoder's core obligation (a TCP read can split anywhere).
TEST(WireCodec, EveryPrefixNeedsMore) {
  std::vector<std::uint8_t> bytes;
  encodeRequest(sampleRequest(), bytes);
  DecodedFrame frame;
  for (std::size_t len = 0; len < bytes.size(); ++len)
    EXPECT_EQ(decodeFrame(bytes.data(), len, kDefaultMaxFrameBytes, frame),
              DecodeStatus::kNeedMore)
        << "prefix length " << len;
}

TEST(WireCodec, BackToBackFramesDecodeSequentially) {
  std::vector<std::uint8_t> bytes;
  encodeRequest(sampleRequest(), bytes);
  const std::size_t first = bytes.size();
  encodeResponse(sampleResponse(), bytes);

  DecodedFrame frame;
  ASSERT_EQ(decodeFrame(bytes.data(), bytes.size(), kDefaultMaxFrameBytes,
                        frame),
            DecodeStatus::kOk);
  EXPECT_EQ(frame.type, MsgType::kRequest);
  EXPECT_EQ(frame.consumed, first);
  ASSERT_EQ(decodeFrame(bytes.data() + first, bytes.size() - first,
                        kDefaultMaxFrameBytes, frame),
            DecodeStatus::kOk);
  EXPECT_EQ(frame.type, MsgType::kResponse);
}

TEST(WireCodec, OversizedDeclaredLengthIsMalformedImmediately) {
  // Only the 4-byte length prefix has arrived, declaring a payload
  // beyond the cap: must be rejected NOW, not buffered until it fits.
  const std::vector<std::uint8_t> bytes = {0xFF, 0xFF, 0xFF, 0x7F};
  DecodedFrame frame;
  EXPECT_EQ(decodeFrame(bytes.data(), bytes.size(), kDefaultMaxFrameBytes,
                        frame),
            DecodeStatus::kMalformed);
}

TEST(WireCodec, PayloadShorterThanHeaderIsMalformed) {
  std::vector<std::uint8_t> bytes = {5, 0, 0, 0, 1, 1, 0, 0, 0};
  DecodedFrame frame;
  EXPECT_EQ(decodeFrame(bytes.data(), bytes.size(), kDefaultMaxFrameBytes,
                        frame),
            DecodeStatus::kMalformed);
}

TEST(WireCodec, UnknownTypeIsMalformed) {
  std::vector<std::uint8_t> bytes;
  encodeRequest(sampleRequest(), bytes);
  bytes[5] = 99;  // type byte
  DecodedFrame frame;
  EXPECT_EQ(decodeFrame(bytes.data(), bytes.size(), kDefaultMaxFrameBytes,
                        frame),
            DecodeStatus::kMalformed);
}

TEST(WireCodec, BodyLengthMismatchIsMalformed) {
  std::vector<std::uint8_t> bytes;
  encodeRequest(sampleRequest(), bytes);
  // Claim one more seed element than the body carries.
  // Seed-length field sits 4 (len) + 10 (header) + 4 (spec) + 1 (flags)
  // + 32 (3 target + deadline doubles) bytes in.
  const std::size_t seed_len_at = 4 + 10 + 4 + 1 + 32;
  bytes[seed_len_at] += 1;
  DecodedFrame frame;
  EXPECT_EQ(decodeFrame(bytes.data(), bytes.size(), kDefaultMaxFrameBytes,
                        frame),
            DecodeStatus::kMalformed);
}

TEST(WireCodec, TrailingGarbageInBodyIsMalformed) {
  std::vector<std::uint8_t> bytes;
  encodeError({.id = 1, .code = WireErrorCode::kInternal, .message = "x"},
              bytes);
  // Grow the payload by one byte and patch the length prefix.
  bytes.push_back(0xAB);
  bytes[0] += 1;
  DecodedFrame frame;
  EXPECT_EQ(decodeFrame(bytes.data(), bytes.size(), kDefaultMaxFrameBytes,
                        frame),
            DecodeStatus::kMalformed);
}

TEST(WireCodec, WrongVersionIsReportedWithRequestId) {
  std::vector<std::uint8_t> bytes;
  encodeRequest(sampleRequest(), bytes);
  bytes[4] = kWireVersion + 1;  // version byte
  DecodedFrame frame;
  EXPECT_EQ(decodeFrame(bytes.data(), bytes.size(), kDefaultMaxFrameBytes,
                        frame),
            DecodeStatus::kUnsupportedVersion);
  EXPECT_EQ(frame.request_id, sampleRequest().id);
  EXPECT_EQ(frame.consumed, bytes.size());
}

TEST(WireCodec, ServiceConversionPreservesFields) {
  const WireRequest wire = sampleRequest();
  const service::Request request = toServiceRequest(wire);
  EXPECT_EQ(request.target.x, wire.target[0]);
  EXPECT_EQ(request.target.y, wire.target[1]);
  EXPECT_EQ(request.target.z, wire.target[2]);
  EXPECT_EQ(request.deadline_ms, wire.deadline_ms);
  EXPECT_EQ(request.use_seed_cache, wire.use_seed_cache);
  ASSERT_EQ(request.seed.size(), wire.seed.size());

  service::Response response;
  response.status = service::ResponseStatus::kSolved;
  response.result.status = ik::Status::kConverged;
  response.result.iterations = 17;
  response.result.error = 1e-3;
  response.result.theta = linalg::VecX{0.1, 0.2};
  response.queue_ms = 2.0;
  response.solve_ms = 3.0;
  response.seeded_from_cache = true;
  const WireResponse encoded = toWireResponse(99, response);
  const service::Response decoded = toServiceResponse(encoded);
  EXPECT_EQ(encoded.id, 99u);
  EXPECT_EQ(decoded.status, response.status);
  EXPECT_EQ(decoded.result.status, response.result.status);
  EXPECT_EQ(decoded.result.iterations, response.result.iterations);
  EXPECT_EQ(decoded.result.theta, response.result.theta);
  EXPECT_EQ(decoded.queue_ms, response.queue_ms);
  EXPECT_EQ(decoded.solve_ms, response.solve_ms);
  EXPECT_TRUE(decoded.seeded_from_cache);
}

// ------------------------------------------------------------- buffer

TEST(ByteBufferTest, AppendConsumeRoundTrip) {
  ByteBuffer buffer;
  EXPECT_TRUE(buffer.empty());
  const std::uint8_t data[] = {1, 2, 3, 4, 5};
  buffer.append(data, sizeof data);
  EXPECT_EQ(buffer.size(), 5u);
  buffer.consume(2);
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.data()[0], 3);
  buffer.consume(3);
  EXPECT_TRUE(buffer.empty());
}

TEST(ByteBufferTest, CompactionPreservesLiveBytes) {
  ByteBuffer buffer;
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i);
  buffer.append(data.data(), data.size());
  buffer.consume(900);  // dead prefix outweighs live bytes -> compacts
  ASSERT_EQ(buffer.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(buffer.data()[i], static_cast<std::uint8_t>(900 + i));
  buffer.append(data.data(), 4);
  EXPECT_EQ(buffer.size(), 104u);
}

TEST(WireErrorCodeTest, ToString) {
  EXPECT_EQ(toString(WireErrorCode::kUnsupportedVersion),
            "unsupported-version");
  EXPECT_EQ(toString(WireErrorCode::kUnknownSpec), "unknown-spec");
  EXPECT_EQ(toString(WireErrorCode::kInternal), "internal");
  EXPECT_EQ(toString(WireErrorCode::kShuttingDown), "shutting-down");
}

}  // namespace
}  // namespace dadu::net
