// Full (6 x N) Jacobian and pose-error tests.
#include <gtest/gtest.h>

#include <cstdint>
#include <numbers>

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/jacobian.hpp"
#include "dadu/kinematics/jacobian_full.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/linalg/rotation.hpp"
#include "dadu/workload/rng.hpp"

namespace dadu::kin {
namespace {

linalg::VecX randomConfig(const Chain& chain, std::uint64_t seed) {
  workload::Rng rng(seed);
  linalg::VecX q(chain.dof());
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = rng.angle();
  return q;
}

TEST(FullJacobian, LinearRowsMatchPositionJacobian) {
  const Chain chain = makeSerpentine(20);
  const linalg::VecX q = randomConfig(chain, 5);
  const linalg::MatX full = fullJacobian(chain, q);
  const linalg::MatX pos = positionJacobian(chain, q);
  ASSERT_EQ(full.rows(), 6u);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < chain.dof(); ++c)
      EXPECT_NEAR(full(r, c), pos(r, c), 1e-14);
}

TEST(FullJacobian, AngularColumnsAreJointAxes) {
  const Chain chain = makeSerpentine(10);
  const linalg::VecX q = randomConfig(chain, 9);
  const linalg::MatX full = fullJacobian(chain, q);
  const auto frames = linkFrames(chain, q);
  for (std::size_t i = 0; i < chain.dof(); ++i) {
    const linalg::Mat4& prev = i == 0 ? chain.base() : frames[i - 1];
    const linalg::Vec3 z = prev.rotation().col(2);
    EXPECT_NEAR(full(3, i), z.x, 1e-14);
    EXPECT_NEAR(full(4, i), z.y, 1e-14);
    EXPECT_NEAR(full(5, i), z.z, 1e-14);
    // Unit axes for revolute joints.
    EXPECT_NEAR(linalg::Vec3(full(3, i), full(4, i), full(5, i)).norm(), 1.0,
                1e-12);
  }
}

TEST(FullJacobian, PrismaticAngularColumnIsZero) {
  std::vector<Joint> joints = {prismatic({0, 0, 0.1, 0}, -1, 1),
                               revolute({0.2, 0, 0, 0})};
  const Chain chain(std::move(joints), "mixed");
  const linalg::MatX full = fullJacobian(chain, {0.3, 0.4});
  EXPECT_DOUBLE_EQ(full(3, 0), 0.0);
  EXPECT_DOUBLE_EQ(full(4, 0), 0.0);
  EXPECT_DOUBLE_EQ(full(5, 0), 0.0);
}

TEST(FullJacobian, AngularPartPredictsOrientationChange) {
  // First-order check: rotating joint i by h rotates the end effector
  // by approximately h about the joint axis.
  const Chain chain = makeSerpentine(8);
  const linalg::VecX q = randomConfig(chain, 3);
  const linalg::MatX full = fullJacobian(chain, q);
  const double h = 1e-6;

  for (std::size_t i : {std::size_t{0}, std::size_t{4}, std::size_t{7}}) {
    linalg::VecX qp = q;
    qp[i] += h;
    const Pose before = endEffectorPose(chain, q);
    const Pose after = endEffectorPose(chain, qp);
    const linalg::Vec3 dw =
        orientationError(before.orientation, after.orientation) / h;
    EXPECT_NEAR(dw.x, full(3, i), 1e-5);
    EXPECT_NEAR(dw.y, full(4, i), 1e-5);
    EXPECT_NEAR(dw.z, full(5, i), 1e-5);
  }
}

TEST(OrientationError, IdentityIsZero) {
  const linalg::Mat3 r = linalg::axisAngle({1, 2, 3}, 0.7);
  EXPECT_LT(orientationError(r, r).norm(), 1e-12);
}

TEST(OrientationError, RecoversAxisAngle) {
  const linalg::Vec3 axis = linalg::Vec3{0.3, -0.5, 0.81}.normalized();
  for (double angle : {0.01, 0.5, 1.5, 3.0}) {
    const linalg::Mat3 target = linalg::axisAngle(axis, angle);
    const linalg::Vec3 err =
        orientationError(linalg::Mat3::identity(), target);
    EXPECT_NEAR(err.norm(), angle, 1e-9) << angle;
    EXPECT_NEAR((err.normalized() - axis).norm(), 0.0, 1e-9) << angle;
  }
}

TEST(OrientationError, HalfTurnHandled) {
  // angle = pi exactly: the skew part vanishes; the symmetric-part
  // branch must recover the axis.
  const linalg::Vec3 axis = linalg::Vec3{1, 1, 0}.normalized();
  const linalg::Mat3 target = linalg::axisAngle(axis, std::numbers::pi);
  const linalg::Vec3 err = orientationError(linalg::Mat3::identity(), target);
  EXPECT_NEAR(err.norm(), std::numbers::pi, 1e-9);
  // Axis up to sign.
  EXPECT_NEAR(std::abs(err.normalized().dot(axis)), 1.0, 1e-9);
}

TEST(OrientationError, MagnitudeMatchesGeodesic) {
  workload::Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    const linalg::Mat3 a = linalg::axisAngle(
        {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)},
        rng.uniform(0, 3));
    const linalg::Mat3 b = linalg::axisAngle(
        {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)},
        rng.uniform(0, 3));
    EXPECT_NEAR(orientationError(a, b).norm(),
                linalg::rotationAngleBetween(a, b), 1e-9);
  }
}

TEST(PoseError, StacksAndWeights) {
  Pose current{{1, 0, 0}, linalg::Mat3::identity()};
  Pose target{{1, 0, 2}, linalg::axisAngle(linalg::Vec3::unitZ(), 0.5)};
  const linalg::VecX e = poseError(current, target, 2.0);
  ASSERT_EQ(e.size(), 6u);
  EXPECT_NEAR(e[2], 2.0, 1e-12);               // position z
  EXPECT_NEAR(e[5], 2.0 * 0.5, 1e-12);         // weighted yaw error
  EXPECT_NEAR(e[0], 0.0, 1e-12);
  EXPECT_NEAR(e[3], 0.0, 1e-12);
}

TEST(EndEffectorPose, ConsistentWithForwardKinematics) {
  const Chain chain = makeSerpentine(15);
  const linalg::VecX q = randomConfig(chain, 21);
  const Pose pose = endEffectorPose(chain, q);
  const linalg::Mat4 t = forwardKinematics(chain, q);
  EXPECT_LT((pose.position - t.position()).norm(), 1e-14);
  EXPECT_LT((pose.orientation - t.rotation()).frobeniusNorm(), 1e-14);
}

}  // namespace
}  // namespace dadu::kin
