// IkService under the simulation seams: the same service that runs a
// thread pool in production here runs as cooperative tasks on a
// SimExecutor with a SimClock — no OS threads, no real sleeps, fully
// deterministic.  These tests pin the executor-mode contract: identical
// per-request semantics (admission, deadlines, linger, drain/discard)
// with time that only moves when the simulation says so.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "dadu/kinematics/presets.hpp"
#include "dadu/service/ik_service.hpp"
#include "dadu/sim/model_solver.hpp"
#include "dadu/sim/sim_clock.hpp"
#include "dadu/sim/sim_executor.hpp"

namespace dadu::service {
namespace {

using namespace std::chrono_literals;

/// A service + sim harness on one stack: clock, executor, service
/// wired together, completions collected in submit order.
struct Harness {
  sim::SimClock clock;
  sim::SimExecutor exec;
  IkService service;
  std::vector<Response> responses;

  explicit Harness(ServiceConfig cfg,
                   sim::ModelSolverConfig solver = {},
                   std::uint64_t seed = 1)
      : exec(clock, seed),
        service(
            [chain = kin::makeSerpentine(6), solver] {
              return std::make_unique<sim::ModelSolver>(chain, solver);
            },
            patch(std::move(cfg), clock, exec)) {}

  static ServiceConfig patch(ServiceConfig cfg, const sim::SimClock& clock,
                             sim::SimExecutor& exec) {
    cfg.clock = &clock;
    cfg.executor = &exec;
    cfg.stat_shards = 1;
    return cfg;
  }

  void submit(Request request) {
    const std::size_t slot = responses.size();
    responses.emplace_back();
    service.submit(std::move(request),
                   [this, slot](Response r) { responses[slot] = std::move(r); });
  }
};

Request requestAt(double x, double y, double z) {
  Request r;
  r.target = {x, y, z};
  r.use_seed_cache = false;
  return r;
}

sim::ModelSolverConfig slowSolver() {
  sim::ModelSolverConfig cfg;
  cfg.iteration_ms = 1.0;  // >= 1ms per solve, deterministic floor
  cfg.tail_probability = 0.0;
  return cfg;
}

sim::ModelSolverConfig cheapSolver() {
  sim::ModelSolverConfig cfg;
  cfg.iteration_ms = 0.001;  // ~30us per solve: timing noise, not signal
  cfg.tail_probability = 0.0;
  return cfg;
}

TEST(SimService, SpawnsNoThreadsAndSolvesEverything) {
  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 64;
  Harness h(cfg);

  EXPECT_EQ(h.service.workerCount(), 4u);  // logical, not OS threads
  for (int i = 0; i < 32; ++i)
    h.submit(requestAt(0.1 * i, 0.2, -0.1));
  h.exec.drain();

  ASSERT_EQ(h.responses.size(), 32u);
  for (const Response& r : h.responses)
    EXPECT_EQ(r.status, ResponseStatus::kSolved);
  const ServiceStats stats = h.service.stats();
  EXPECT_EQ(stats.submitted, 32u);
  EXPECT_EQ(stats.solved, 32u);
  EXPECT_EQ(stats.accounted(), stats.submitted);
  // The solves charged virtual time; nothing slept for real.
  EXPECT_GT(h.clock.elapsed(), platform::Clock::duration::zero());
}

TEST(SimService, QueuedDeadlineExpiresOnVirtualTimeAlone) {
  // One worker, a >=1ms solve in front, and a 0.5ms deadline behind it:
  // the second request must expire in-queue purely because the first
  // solve advanced the virtual clock past it.  No real waiting anywhere.
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 8;
  Harness h(cfg, slowSolver());

  h.submit(requestAt(0.3, 0.2, 0.1));
  Request hurried = requestAt(-0.2, 0.4, 0.0);
  hurried.deadline_ms = 0.5;
  h.submit(std::move(hurried));
  h.exec.drain();

  ASSERT_EQ(h.responses.size(), 2u);
  EXPECT_EQ(h.responses[0].status, ResponseStatus::kSolved);
  EXPECT_EQ(h.responses[1].status, ResponseStatus::kDeadlineExceeded);
  EXPECT_EQ(h.service.stats().deadline_expired, 1u);
}

TEST(SimService, LingerWindowElapsesInVirtualTime) {
  // An under-filled burst lingers batch_wait_us for stragglers.  In
  // executor mode that linger is a postAt timer: a simulated 50ms
  // window costs 50 *virtual* ms and zero wall sleeps — exactly the
  // assertion real-sleep tests can only approximate with margins.
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 16;
  cfg.max_batch = 4;
  cfg.batch_wait_us = 50'000;
  Harness h(cfg, cheapSolver());

  h.submit(requestAt(0.1, 0.2, 0.3));  // alone: must wait out the window
  h.exec.drain();

  ASSERT_EQ(h.responses.size(), 1u);
  EXPECT_EQ(h.responses[0].status, ResponseStatus::kSolved);
  EXPECT_GE(h.clock.elapsed(), platform::Clock::duration(50ms));
  // A full burst, by contrast, dispatches without waiting the window:
  // the whole batch is done long before another 50ms pass.
  const auto before = h.clock.elapsed();
  for (int i = 0; i < 4; ++i) h.submit(requestAt(0.2, 0.1 * i, -0.2));
  h.exec.drain();
  EXPECT_LT(h.clock.elapsed() - before, platform::Clock::duration(50ms));

  const ServiceStats stats = h.service.stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.batched_lanes, 5u);
}

TEST(SimService, BatchCoalescerFillsBurstsDeterministically) {
  // Submissions land while the single worker is mid-solve, so the
  // queue backs up and popMany drains full bursts — occupancy is a
  // deterministic consequence of the virtual timeline, not of racing
  // a real worker thread.
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 64;
  cfg.max_batch = 8;
  cfg.batch_wait_us = 200;
  Harness h(cfg, slowSolver());

  for (int i = 0; i < 33; ++i)
    h.submit(requestAt(0.05 * i, -0.3, 0.2));
  h.exec.drain();

  const ServiceStats stats = h.service.stats();
  EXPECT_EQ(stats.solved, 33u);
  EXPECT_EQ(stats.batched_lanes, 33u);
  // First pickup grabs what's there; once the worker is busy solving,
  // every later burst is a full 8: 33 = first + 4 * 8.
  EXPECT_EQ(stats.batches, 5u);
  EXPECT_GE(stats.batch_occupancy_hist.p99(), 7.0);
}

TEST(SimService, DiscardStopRejectsQueuedWorkInline) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 16;
  Harness h(cfg, slowSolver());

  for (int i = 0; i < 6; ++i)
    h.submit(requestAt(0.1, 0.1 * i, 0.2));
  // Don't drain: everything is still queued (or posted).  A discard
  // stop must resolve every pending request as Rejected{Shutdown}
  // without running a single solve past the close.
  h.service.stop(IkService::Drain::kDiscardPending);
  h.exec.drain();

  ASSERT_EQ(h.responses.size(), 6u);
  std::size_t rejected = 0;
  for (const Response& r : h.responses)
    if (r.status == ResponseStatus::kRejected &&
        r.reject_reason == RejectReason::kShutdown)
      ++rejected;
  EXPECT_GE(rejected, 5u);  // at most one had already been dispatched
  const ServiceStats stats = h.service.stats();
  EXPECT_EQ(stats.accounted(), stats.submitted);
  EXPECT_EQ(h.service.stats().submitted, 6u);

  // Post-stop submissions fail fast with the same reason.
  h.submit(requestAt(0.5, 0.5, 0.5));
  EXPECT_EQ(h.responses.back().status, ResponseStatus::kRejected);
  EXPECT_EQ(h.responses.back().reject_reason, RejectReason::kShutdown);
}

TEST(SimService, IdenticalRunsProduceBitIdenticalResponses) {
  const auto run = [] {
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.queue_capacity = 32;
    cfg.max_batch = 4;
    cfg.batch_wait_us = 100;
    Harness h(cfg, {}, 77);
    for (int i = 0; i < 24; ++i) {
      Request r = requestAt(0.07 * i, -0.02 * i, 0.15);
      if (i % 5 == 0) r.deadline_ms = 2.0;
      h.submit(std::move(r));
    }
    h.exec.drain();
    return std::make_pair(std::move(h.responses),
                          h.clock.elapsed());
  };

  const auto [ra, ta] = run();
  const auto [rb, tb] = run();
  EXPECT_EQ(ta, tb);  // the virtual timeline itself replays exactly
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].status, rb[i].status) << i;
    EXPECT_EQ(ra[i].result.iterations, rb[i].result.iterations) << i;
    EXPECT_EQ(ra[i].queue_ms, rb[i].queue_ms) << i;
    EXPECT_EQ(ra[i].solve_ms, rb[i].solve_ms) << i;
  }
}

}  // namespace
}  // namespace dadu::service
