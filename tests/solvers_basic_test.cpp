// Solver plumbing tests: shared iteration head (Eq. 8), input
// validation, result summarisation and the factory.
#include <gtest/gtest.h>

#include <cmath>

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/solvers/factory.hpp"
#include "dadu/solvers/jt_common.hpp"
#include "dadu/solvers/types.hpp"

namespace dadu::ik {
namespace {

TEST(StatusToString, AllValuesNamed) {
  EXPECT_EQ(toString(Status::kConverged), "converged");
  EXPECT_EQ(toString(Status::kMaxIterations), "max-iterations");
  EXPECT_EQ(toString(Status::kStalled), "stalled");
}

TEST(Summarize, EmptyBatch) {
  const BatchStats s = summarize({});
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.convergenceRate(), 0.0);
}

TEST(Summarize, AggregatesMeans) {
  SolveResult a;
  a.status = Status::kConverged;
  a.iterations = 10;
  a.speculation_load = 640;
  a.error = 0.001;
  SolveResult b;
  b.status = Status::kMaxIterations;
  b.iterations = 30;
  b.speculation_load = 1920;
  b.error = 0.05;
  const BatchStats s = summarize({a, b});
  EXPECT_EQ(s.count, 2);
  EXPECT_EQ(s.converged, 1);
  EXPECT_DOUBLE_EQ(s.convergenceRate(), 0.5);
  EXPECT_DOUBLE_EQ(s.mean_iterations, 20.0);
  EXPECT_DOUBLE_EQ(s.mean_load, 1280.0);
  EXPECT_NEAR(s.mean_error, 0.0255, 1e-12);
}

TEST(ValidateInputs, RejectsBadSeedSize) {
  const auto chain = kin::makePlanar(3);
  EXPECT_THROW(validateInputs(chain, {0.1, 0.1, 0.0}, linalg::VecX(2)),
               std::invalid_argument);
}

TEST(ValidateInputs, RejectsNonFiniteTarget) {
  const auto chain = kin::makePlanar(3);
  EXPECT_THROW(
      validateInputs(chain, {std::nan(""), 0, 0}, linalg::VecX(3)),
      std::invalid_argument);
  EXPECT_THROW(
      validateInputs(chain, {0, INFINITY, 0}, linalg::VecX(3)),
      std::invalid_argument);
}

TEST(ValidateInputs, RejectsNonFiniteSeed) {
  const auto chain = kin::makePlanar(2);
  linalg::VecX seed(2);
  seed[1] = std::nan("");
  EXPECT_THROW(validateInputs(chain, {0.1, 0, 0}, seed),
               std::invalid_argument);
}

TEST(JtIterationHead, ErrorMatchesDirectFk) {
  const auto chain = kin::makeSerpentine(10);
  const linalg::VecX theta(chain.dof(), 0.1);
  const linalg::Vec3 target{0.4, 0.2, 0.1};
  JtWorkspace ws;
  const auto head = jtIterationHead(chain, theta, target, ws);
  const auto x = kin::endEffectorPosition(chain, theta);
  EXPECT_NEAR(head.error, (target - x).norm(), 1e-14);
  EXPECT_NEAR((head.error_vec - (target - x)).norm(), 0.0, 1e-14);
}

TEST(JtIterationHead, AlphaBaseMatchesEq8) {
  const auto chain = kin::makeSerpentine(8);
  const linalg::VecX theta{0.2, -0.1, 0.3, 0.1, -0.2, 0.4, 0.0, 0.1};
  const linalg::Vec3 target{0.3, 0.3, 0.2};
  JtWorkspace ws;
  const auto head = jtIterationHead(chain, theta, target, ws);

  // Recompute Eq. 8 with explicit matrices: alpha = <e, JJ^T e> /
  // <JJ^T e, JJ^T e>.
  const auto j = kin::positionJacobian(chain, theta);
  const linalg::VecX e{head.error_vec.x, head.error_vec.y, head.error_vec.z};
  const linalg::VecX jte = j.applyTransposed(e);
  const linalg::VecX jjte = j * jte;
  const double expect = e.dot(jjte) / jjte.dot(jjte);
  EXPECT_NEAR(head.alpha_base, expect, 1e-12);

  // dtheta_base = J^T e.
  EXPECT_LT((ws.dtheta_base - jte).norm(), 1e-12);
}

TEST(JtIterationHead, AlphaBaseGuaranteesDescentInLinearModel) {
  // The Eq. 8 alpha minimises ||e - alpha JJ^T e||^2, so it is always
  // non-negative for a real error and reduces the linearised error.
  const auto chain = kin::makeSerpentine(12);
  JtWorkspace ws;
  for (int s = 0; s < 10; ++s) {
    linalg::VecX theta(chain.dof());
    for (std::size_t i = 0; i < theta.size(); ++i)
      theta[i] = 0.05 * static_cast<double>((s + 1) * (i % 5)) - 0.1;
    const linalg::Vec3 target{0.5, 0.1, 0.2};
    const auto head = jtIterationHead(chain, theta, target, ws);
    if (!head.stalled) EXPECT_GE(head.alpha_base, 0.0);
  }
}

TEST(JtIterationHead, StallsAtExactSingularity) {
  // Planar chain fully stretched along +x, target further along +x:
  // J^T e = 0 although the error is nonzero -> stall flag.
  const auto chain = kin::makePlanar(3, 0.1);
  JtWorkspace ws;
  const auto head =
      jtIterationHead(chain, chain.zeroConfiguration(), {0.5, 0.0, 0.0}, ws);
  EXPECT_TRUE(head.stalled);
  EXPECT_GT(head.error, 0.0);
}

TEST(Factory, AllAdvertisedNamesConstruct) {
  const auto chain = kin::makeSerpentine(12);
  SolveOptions options;
  for (const auto& name : solverNames()) {
    const auto solver = makeSolver(name, chain, options);
    ASSERT_NE(solver, nullptr) << name;
    EXPECT_EQ(solver->chain().dof(), 12u);
  }
}

TEST(Factory, UnknownNameThrows) {
  const auto chain = kin::makeSerpentine(12);
  EXPECT_THROW(makeSolver("fancy-new-method", chain, {}),
               std::invalid_argument);
}

TEST(Factory, NamesAreStable) {
  const auto chain = kin::makePlanar(4);
  for (const auto& name : solverNames()) {
    const auto solver = makeSolver(name, chain, {});
    // quick-ik-mt reports its own name; the rest echo the factory key.
    EXPECT_EQ(solver->name(), name);
  }
}

}  // namespace
}  // namespace dadu::ik
