// Pose-accelerator and batch-throughput model tests.
#include <gtest/gtest.h>

#include "dadu/ikacc/accelerator.hpp"
#include "dadu/ikacc/pose_accelerator.hpp"
#include "dadu/ikacc/throughput.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/workload/rng.hpp"

namespace dadu::acc {
namespace {

linalg::VecX randomConfig(std::size_t n, std::uint64_t seed) {
  workload::Rng rng(seed);
  linalg::VecX q(n);
  for (std::size_t i = 0; i < n; ++i) q[i] = rng.angle();
  return q;
}

TEST(PoseAccelerator, FunctionallyEqualsSoftwarePoseSolver) {
  const auto chain = kin::makeSerpentine(25);
  ik::PoseSolveOptions options;
  ik::QuickIkPoseSolver software(chain, options);
  PoseIkAccelerator hardware(chain, options);

  const kin::Pose target =
      kin::endEffectorPose(chain, randomConfig(25, 31));
  const auto seed = randomConfig(25, 32);
  const auto sw = software.solve(target, seed);
  const auto hw = hardware.solve(target, seed);
  EXPECT_EQ(sw.iterations, hw.iterations);
  EXPECT_EQ(sw.theta, hw.theta);
  EXPECT_EQ(sw.status, hw.status);
}

TEST(PoseAccelerator, StatsConsistentAndCostlierThanPositionOnly) {
  const std::size_t dof = 25;
  const auto chain = kin::makeSerpentine(dof);
  const kin::Pose target = kin::endEffectorPose(chain, randomConfig(dof, 1));

  // Marginal per-iteration cost: total(2 iterations) - total(1
  // iteration) cancels the fixed heads/epilogues each model charges.
  const auto poseCycles = [&](int iters) {
    ik::PoseSolveOptions o;
    o.max_iterations = iters;
    o.accuracy = 1e-15;
    PoseIkAccelerator acc_(chain, o);
    (void)acc_.solve(target, randomConfig(dof, 2));
    const AccStats& s = acc_.lastStats();
    EXPECT_EQ(s.total_cycles, s.spu_cycles + s.ssu_cycles +
                                  s.scheduler_cycles + s.selector_cycles);
    return s.total_cycles;
  };
  const auto posCycles = [&](int iters) {
    ik::SolveOptions o;
    o.max_iterations = iters;
    o.accuracy = 1e-15;
    IkAccelerator acc_(chain, o);
    (void)acc_.solve(target.position, randomConfig(dof, 2));
    return acc_.lastStats().total_cycles;
  };

  const long long pose_marginal = poseCycles(2) - poseCycles(1);
  const long long pos_marginal = posCycles(2) - posCycles(1);
  EXPECT_GT(pose_marginal, pos_marginal);
  EXPECT_LT(static_cast<double>(pose_marginal),
            1.3 * static_cast<double>(pos_marginal));
}

TEST(Throughput, DegenerateInputsGiveZero) {
  const AccConfig cfg;
  EXPECT_DOUBLE_EQ(estimateBatchThroughput(cfg, 0, 64, 10).overlap_speedup,
                   1.0);
  EXPECT_DOUBLE_EQ(
      estimateBatchThroughput(cfg, 25, 64, 0.0).solves_per_sec_single, 0.0);
}

TEST(Throughput, SpeedupBetweenOneAndTwo) {
  const AccConfig cfg;
  for (std::size_t dof : {12u, 50u, 100u}) {
    const auto est = estimateBatchThroughput(cfg, dof, 64, 50.0);
    EXPECT_GT(est.overlap_speedup, 1.0) << dof;
    EXPECT_LE(est.overlap_speedup, 2.0) << dof;
    EXPECT_GT(est.solves_per_sec_pipelined, est.solves_per_sec_single);
    EXPECT_NEAR(est.solves_per_sec_pipelined,
                est.solves_per_sec_single * est.overlap_speedup,
                1e-6 * est.solves_per_sec_pipelined);
  }
}

TEST(Throughput, PipelinedBoundIsMaxOfPhases) {
  const AccConfig cfg;
  const auto est = estimateBatchThroughput(cfg, 50, 64, 10.0);
  EXPECT_DOUBLE_EQ(
      est.pipelined_iter_cycles,
      std::max(est.single_iter_cycles - est.pipelined_iter_cycles,
               est.pipelined_iter_cycles));
  // single = spu + waves, pipelined = max(spu, waves):
  // spu = single - waves <= pipelined always.
  EXPECT_LE(est.single_iter_cycles - est.pipelined_iter_cycles,
            est.pipelined_iter_cycles);
}

TEST(Throughput, MatchesSolveSimulatorPerIterationCost) {
  // The analytic single-problem per-iteration cost must equal what the
  // solve simulator charges per full iteration.
  const std::size_t dof = 50;
  const auto chain = kin::makeSerpentine(dof);
  ik::SolveOptions options;
  options.max_iterations = 1;
  options.accuracy = 1e-15;
  IkAccelerator sim(chain, options);
  (void)sim.solve({0.9, 0.4, 0.2}, randomConfig(dof, 3));
  const long long sim_cycles = sim.lastStats().total_cycles;

  const auto est = estimateBatchThroughput(AccConfig{}, dof, 64, 1.0);
  // One non-converged iteration = one SPU pass + the wave train,
  // exactly the analytic single-problem iteration.
  EXPECT_NEAR(static_cast<double>(sim_cycles), est.single_iter_cycles, 1.0);
}

}  // namespace
}  // namespace dadu::acc
