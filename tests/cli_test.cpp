// CLI tests: robot-spec resolution, argument parsing, every subcommand
// through captured streams, and error paths.
#include <gtest/gtest.h>

#include <sstream>

#include "dadu/cli/cli.hpp"

namespace dadu::cli {
namespace {

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun runCli(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int code = run(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(CliParse, NumberList) {
  EXPECT_EQ(parseNumberList("1,2,-3.5"), (std::vector<double>{1, 2, -3.5}));
  EXPECT_EQ(parseNumberList("0.25"), std::vector<double>{0.25});
  EXPECT_THROW(parseNumberList(""), std::invalid_argument);
  EXPECT_THROW(parseNumberList("1,,2"), std::invalid_argument);
  EXPECT_THROW(parseNumberList("1,abc"), std::invalid_argument);
}

TEST(CliParse, RobotSpecs) {
  EXPECT_EQ(resolveRobot("serpentine:25").dof(), 25u);
  EXPECT_EQ(resolveRobot("planar:6").dof(), 6u);
  EXPECT_EQ(resolveRobot("puma").dof(), 6u);
  EXPECT_EQ(resolveRobot("iiwa").dof(), 7u);
  EXPECT_EQ(resolveRobot("tentacle:5").dof(), 10u);
  EXPECT_EQ(resolveRobot("random:15:3").dof(), 15u);
  EXPECT_THROW(resolveRobot("hexapod:6"), std::invalid_argument);
  EXPECT_THROW(resolveRobot("/no/such/robot.dh"), std::runtime_error);
}

TEST(Cli, NoArgsPrintsUsageAndFails) {
  const auto r = runCli({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(Cli, HelpPrintsUsageAndSucceeds) {
  const auto r = runCli({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const auto r = runCli({"dance", "--robot", "puma"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, MissingRobotOptionFails) {
  const auto r = runCli({"info"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--robot"), std::string::npos);
}

TEST(Cli, InfoReportsBasics) {
  const auto r = runCli({"info", "--robot", "serpentine:12"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("dof:         12"), std::string::npos);
  EXPECT_NE(r.out.find("max reach"), std::string::npos);
}

TEST(Cli, FkComputesPosition) {
  const auto r =
      runCli({"fk", "--robot", "planar:2", "--joints", "0,0"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("position"), std::string::npos);
  EXPECT_NE(r.out.find("0.2"), std::string::npos);  // stretched 2x0.1 m
}

TEST(Cli, FkRejectsWrongJointCount) {
  const auto r = runCli({"fk", "--robot", "planar:3", "--joints", "0,0"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("3 DOF"), std::string::npos);
}

TEST(Cli, SolveConvergesOnEasyTarget) {
  const auto r = runCli({"solve", "--robot", "serpentine:12", "--target",
                         "0.5,0.3,0.2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("status:      converged"), std::string::npos);
}

TEST(Cli, SolveHonoursSolverChoice) {
  const auto r = runCli({"solve", "--robot", "serpentine:12", "--target",
                         "0.5,0.3,0.2", "--solver", "pinv-svd"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("pinv-svd"), std::string::npos);
}

TEST(Cli, SolveUnknownSolverFails) {
  const auto r = runCli({"solve", "--robot", "puma", "--target", "0.3,0.2,0.1",
                         "--solver", "magic"});
  EXPECT_EQ(r.code, 2);
}

TEST(Cli, SolveUnreachableTargetReturnsNonZero) {
  const auto r = runCli({"solve", "--robot", "planar:2", "--target",
                         "5,0,0", "--max-iter", "100"});
  EXPECT_EQ(r.code, 1);  // ran fine, did not converge
}

TEST(Cli, AccelReportsHardwareStats) {
  const auto r = runCli({"accel", "--robot", "serpentine:12", "--target",
                         "0.5,0.3,0.2", "--ssus", "16"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("cycles"), std::string::npos);
  EXPECT_NE(r.out.find("mW"), std::string::npos);
  EXPECT_NE(r.out.find("mm^2"), std::string::npos);
}

TEST(Cli, OptionWithoutValueFails) {
  const auto r = runCli({"info", "--robot"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("needs a value"), std::string::npos);
}

TEST(Cli, BadTargetArityFails) {
  const auto r = runCli({"solve", "--robot", "puma", "--target", "1,2"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("3 numbers"), std::string::npos);
}


TEST(Cli, PoseSolvesPositionAndOrientation) {
  const auto r = runCli({"pose", "--robot", "serpentine:12", "--target",
                         "0.5,0.3,0.2", "--rpy", "0.1,0.2,0.3"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("pos error"), std::string::npos);
  EXPECT_NE(r.out.find("ang error"), std::string::npos);
  EXPECT_NE(r.out.find("converged"), std::string::npos);
}

TEST(Cli, PoseRequiresRpy) {
  const auto r = runCli({"pose", "--robot", "serpentine:12", "--target",
                         "0.5,0.3,0.2"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("rpy"), std::string::npos);
}

TEST(Cli, PoseBadRpyArityFails) {
  const auto r = runCli({"pose", "--robot", "serpentine:12", "--target",
                         "0.5,0.3,0.2", "--rpy", "0.1,0.2"});
  EXPECT_EQ(r.code, 2);
}

TEST(Cli, ServeBenchRunsAndReportsCacheHits) {
  const auto r = runCli({"serve-bench", "--robot", "serpentine:10",
                         "--requests", "40", "--clusters", "4", "--workers",
                         "2", "--max-iter", "2000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("throughput:"), std::string::npos);
  EXPECT_NE(r.out.find("latency p50/p99:"), std::string::npos);
  EXPECT_NE(r.out.find("cache:             on, hit rate"), std::string::npos);
  // Clustered targets against a warm cache must actually hit.
  EXPECT_EQ(r.out.find("hit rate 0 ("), std::string::npos) << r.out;
}

TEST(Cli, ServeBenchCacheOffReportsNoHits) {
  const auto r = runCli({"serve-bench", "--robot", "serpentine:10",
                         "--requests", "10", "--clusters", "2", "--workers",
                         "2", "--cache", "off", "--max-iter", "2000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("cache:             off"), std::string::npos);
}

TEST(Cli, ServeBenchAcceptsBreakerFlags) {
  // A generous depth never trips on 10 requests: the run must succeed
  // and every request must still be accounted for.
  const auto r = runCli({"serve-bench", "--robot", "serpentine:10",
                         "--requests", "10", "--clusters", "2", "--workers",
                         "2", "--max-iter", "2000", "--breaker-queue-depth",
                         "10000", "--shed-queue-depth", "5000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("throughput:"), std::string::npos);
}

TEST(Cli, ServeBenchRejectsNegativeBreakerP99) {
  const auto r = runCli({"serve-bench", "--robot", "serpentine:10",
                         "--breaker-p99-ms", "-1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--breaker-p99-ms"), std::string::npos);
}

TEST(Cli, ServeBenchRejectsBadCacheFlag) {
  const auto r = runCli({"serve-bench", "--robot", "serpentine:10", "--cache",
                         "maybe"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--cache"), std::string::npos);
}

TEST(Cli, ServeBindsDrainsAndDumpsStats) {
  // --max-runtime-ms is the headless stand-in for SIGINT: serve an
  // ephemeral port briefly, drain, and dump the merged snapshot.
  const auto r = runCli({"serve", "--robot", "planar:6", "--port", "0",
                         "--workers", "2", "--max-runtime-ms", "100"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("listening on 127.0.0.1:"), std::string::npos);
  // Both layers' metrics appear in one dump.
  EXPECT_NE(r.out.find("dadu_service_submitted"), std::string::npos);
  EXPECT_NE(r.out.find("dadu_net_connections_accepted"), std::string::npos);
}

TEST(Cli, ServeHonoursPromStatsFormat) {
  const auto r = runCli({"serve", "--robot", "planar:6", "--port", "0",
                         "--workers", "1", "--max-runtime-ms", "50",
                         "--stats-format", "prom"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("# TYPE dadu_net_connections_accepted_total counter"),
            std::string::npos);
}

TEST(Cli, ServeRequiresPort) {
  const auto r = runCli({"serve", "--robot", "planar:6"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("port"), std::string::npos);
}

TEST(Cli, ServeRejectsBadStatsFormat) {
  const auto r = runCli({"serve", "--robot", "planar:6", "--port", "0",
                         "--stats-format", "xml"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--stats-format"), std::string::npos);
}

TEST(Cli, ServeRejectsOutOfRangePort) {
  const auto r = runCli({"serve", "--robot", "planar:6", "--port", "70000"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--port"), std::string::npos);
}

TEST(Cli, ServeHostsMultipleRobotSpecs) {
  // Repeated --robot bindings become one registry: the spec table is
  // printed at startup and the drained dump carries per-spec series.
  const auto r = runCli({"serve", "--robot", "left=planar:4", "--robot",
                         "right=serpentine:6", "--robot", "iiwa", "--port",
                         "0", "--workers", "1", "--max-runtime-ms", "100"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("3 robot spec(s)"), std::string::npos);
  EXPECT_NE(r.out.find("spec 0: left"), std::string::npos);
  EXPECT_NE(r.out.find("spec 1: right"), std::string::npos);
  EXPECT_NE(r.out.find("spec 2: iiwa"), std::string::npos);
  EXPECT_NE(r.out.find("listening on 127.0.0.1:"), std::string::npos);
  EXPECT_NE(r.out.find("dadu_spec_left_requests"), std::string::npos);
  EXPECT_NE(r.out.find("dadu_spec_right_cache_hit_rate"), std::string::npos);
  EXPECT_NE(r.out.find("dadu_registry_specs"), std::string::npos);
}

TEST(Cli, ServeRejectsDuplicateRobotNames) {
  const auto r = runCli({"serve", "--robot", "arm=planar:4", "--robot",
                         "arm=planar:5", "--port", "0"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("duplicate"), std::string::npos);
}

TEST(Cli, SimMultispecPresetRunsCleanly) {
  const auto r = runCli({"sim", "--scenario", "multispec", "--requests",
                         "400", "--seed", "5"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("invariants:  ok"), std::string::npos);
  // Per-spec slices printed under the aggregate service line.
  EXPECT_NE(r.out.find("spec 0 (serpentine_8)"), std::string::npos);
  EXPECT_NE(r.out.find("spec 2 (serpentine_12)"), std::string::npos);
}

TEST(Cli, SimSpecsFlagOverridesPreset) {
  const auto r = runCli({"sim", "--scenario", "baseline", "--specs", "2",
                         "--requests", "200", "--seed", "3"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("spec 1 (serpentine_10)"), std::string::npos);
}

}  // namespace
}  // namespace dadu::cli
