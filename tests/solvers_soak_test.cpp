// Soak test: the full solver matrix across chain families and random
// seeds — a wide net for interaction bugs the focused suites miss.
// Every converged solve is verified against FK independently; every
// non-converged solve must report a finite, honest state.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/solvers/factory.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::ik {
namespace {

using Case = std::tuple<std::string, std::string>;  // solver, family

kin::Chain makeFamily(const std::string& family) {
  if (family == "serpentine") return kin::makeSerpentine(20);
  if (family == "planar") return kin::makePlanar(8, 0.15);
  if (family == "tentacle") return kin::makeTentacle(8);
  if (family == "random") return kin::makeRandomChain(16, 11);
  if (family == "iiwa") return kin::makeKukaIiwa();
  return kin::makePuma560();
}

class SolverSoak : public ::testing::TestWithParam<Case> {};

TEST_P(SolverSoak, BatchBehavesHonestly) {
  const auto& [solver_name, family] = GetParam();
  const kin::Chain chain = makeFamily(family);
  SolveOptions options;
  // Keep the slowest (fixed-gain / momentum on hard chains) bounded.
  options.max_iterations = 5000;
  const auto solver = makeSolver(solver_name, chain, options);

  const auto tasks = workload::generateTasks(chain, 4);
  int converged = 0;
  for (const auto& task : tasks) {
    const SolveResult r = solver->solve(task.target, task.seed);
    // Honesty invariants, converged or not.
    for (double v : r.theta) ASSERT_TRUE(std::isfinite(v)) << solver_name;
    ASSERT_TRUE(std::isfinite(r.error));
    const auto reached = kin::endEffectorPosition(chain, r.theta);
    ASSERT_NEAR(r.error, (task.target - reached).norm(), 1e-9)
        << solver_name << " on " << family;
    ASSERT_LE(r.iterations, options.max_iterations);
    if (r.converged()) {
      ++converged;
      ASSERT_LT(r.error, options.accuracy);
    }
  }
  // The Jacobian family and CCD should solve most reachable tasks on
  // every family; demand at least half to catch systematic breakage
  // without over-constraining the weakest baselines.
  EXPECT_GE(converged, 2) << solver_name << " on " << family;
}

std::string caseName(const ::testing::TestParamInfo<Case>& info) {
  std::string n = std::get<0>(info.param) + "_on_" + std::get<1>(info.param);
  for (char& c : n)
    if (c == '-') c = '_';
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SolverSoak,
    ::testing::Combine(::testing::Values("jt-serial", "jt-eq8", "jt-momentum",
                                         "quick-ik", "quick-ik-f32",
                                         "pinv-svd", "dls", "sdls", "ccd"),
                       ::testing::Values("serpentine", "planar", "tentacle",
                                         "random", "iiwa")),
    caseName);

TEST(JtMomentum, BetweenEq8AndFixedGainOnAverage) {
  // Momentum should clearly beat the fixed-gain original method and be
  // in the same regime as (often near) Eq. 8.
  const auto chain = kin::makeSerpentine(50);
  SolveOptions options;
  double fixed_iters = 0.0, momentum_iters = 0.0;
  int n = 0;
  for (int i = 0; i < 4; ++i) {
    const auto task = workload::generateTask(chain, i);
    const auto rf = makeSolver("jt-serial", chain, options)
                        ->solve(task.target, task.seed);
    const auto rm = makeSolver("jt-momentum", chain, options)
                        ->solve(task.target, task.seed);
    if (!rf.converged() || !rm.converged()) continue;
    ++n;
    fixed_iters += rf.iterations;
    momentum_iters += rm.iterations;
  }
  ASSERT_GE(n, 3);
  EXPECT_LT(momentum_iters, 0.5 * fixed_iters);
}

}  // namespace
}  // namespace dadu::ik
