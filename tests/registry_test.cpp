// dadu_registry tests: the multi-robot spec table and the SpecRouter's
// per-spec lanes.  The load-bearing claims:
//   - registration is strict (duplicate ids/names throw, unknown ids
//     resolve to nothing) so routing never silently shadows a robot;
//   - routing through the router is bit-identical to running the same
//     spec in its own single-spec IkService;
//   - per-spec seed caches are physically isolated (a hit in spec A
//     never seeds spec B);
//   - batched dispatch never fuses requests from different specs into
//     one solveMany (every response's theta has its own spec's DOF);
//   - the aggregate/metrics views conserve what the lanes counted.
#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <fstream>
#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "dadu/kinematics/presets.hpp"
#include "dadu/registry/robot_spec_registry.hpp"
#include "dadu/registry/spec_router.hpp"
#include "dadu/service/ik_service.hpp"
#include "dadu/solvers/factory.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::registry {
namespace {

using service::Request;
using service::Response;
using service::ResponseStatus;

Request requestFor(const kin::Chain& chain, std::uint32_t index,
                   bool use_cache = false) {
  const auto task = workload::generateTask(chain, static_cast<int>(index));
  Request request;
  request.target = task.target;
  request.seed = task.seed;
  request.use_seed_cache = use_cache;
  return request;
}

bool bitIdentical(const linalg::VecX& a, const linalg::VecX& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::bit_cast<std::uint64_t>(a[i]) !=
        std::bit_cast<std::uint64_t>(b[i]))
      return false;
  return true;
}

/// Registry with `dofs.size()` serpentine specs, ids 0,1,...
RobotSpecRegistry makeRegistry(const std::vector<std::size_t>& dofs) {
  RobotSpecRegistry reg;
  for (std::size_t i = 0; i < dofs.size(); ++i) {
    RobotSpec spec;
    spec.id = static_cast<std::uint32_t>(i);
    spec.name = "serp" + std::to_string(dofs[i]);
    spec.chain_spec = "serpentine:" + std::to_string(dofs[i]);
    spec.chain = kin::makeSerpentine(dofs[i]);
    reg.add(std::move(spec));
  }
  return reg;
}

/// submit() through the router, synchronously.
Response call(SpecRouter& router, std::uint32_t spec_id, Request request) {
  std::promise<Response> promise;
  auto future = promise.get_future();
  EXPECT_TRUE(router.submit(spec_id, std::move(request),
                            [&](Response r) { promise.set_value(std::move(r)); }));
  return future.get();
}

TEST(RobotSpecRegistry, ResolveChainSpecGrammar) {
  EXPECT_EQ(resolveChainSpec("serpentine:9").dof(), 9u);
  EXPECT_EQ(resolveChainSpec("planar:4").dof(), 4u);
  EXPECT_EQ(resolveChainSpec("puma").dof(), 6u);
  EXPECT_THROW(resolveChainSpec("serpentine:9:oops"), std::invalid_argument);
}

TEST(RobotSpecRegistry, AddBindingParsesNamesAndAssignsDenseIds) {
  RobotSpecRegistry reg;
  reg.addBinding("left=serpentine:6");
  reg.addBinding("planar:4");
  // References returned by addBinding are invalidated by the next
  // registration (vector growth) — read through specs() instead.
  const RobotSpec& left = reg.specs()[0];
  const RobotSpec& bare = reg.specs()[1];
  EXPECT_EQ(left.id, 0u);
  EXPECT_EQ(left.name, "left");
  EXPECT_EQ(left.chain.dof(), 6u);
  EXPECT_EQ(bare.id, 1u);
  EXPECT_EQ(bare.name, "planar_4");  // ':' becomes '_' for metric names
  EXPECT_EQ(bare.chain.dof(), 4u);
  EXPECT_EQ(reg.findByName("left"), &reg.specs()[0]);
  EXPECT_EQ(reg.find(1), &reg.specs()[1]);
  EXPECT_EQ(reg.find(2), nullptr);
}

TEST(RobotSpecRegistry, AddBindingForwardsSolverPolicy) {
  RobotSpecRegistry reg;
  ik::SolveOptions options;
  options.max_iterations = 123;
  const RobotSpec& spec = reg.addBinding("arm=serpentine:5", "dls", options);
  EXPECT_EQ(spec.solver, "dls");
  EXPECT_EQ(spec.options.max_iterations, 123);
}

TEST(RobotSpecRegistry, DuplicateRegistrationThrows) {
  RobotSpecRegistry reg;
  reg.addBinding("arm=serpentine:6");
  EXPECT_THROW(reg.addBinding("arm=planar:4"), std::invalid_argument);  // name
  RobotSpec dup;
  dup.id = 0;  // id 0 is taken
  dup.name = "other";
  dup.chain = kin::makeSerpentine(4);
  EXPECT_THROW(reg.add(std::move(dup)), std::invalid_argument);
  EXPECT_EQ(reg.size(), 1u);  // failed registrations left no residue
}

TEST(RobotSpecRegistry, LoadFileReadsBindingsSkipsCommentsAndBlanks) {
  const std::string path = ::testing::TempDir() + "robots.spec";
  {
    std::ofstream file(path);
    file << "# fleet under test\n"
         << "left=serpentine:6\n"
         << "\n"
         << "right=planar:4   # trailing comment\n";
  }
  RobotSpecRegistry reg;
  EXPECT_EQ(reg.loadFile(path), 2u);
  ASSERT_NE(reg.findByName("right"), nullptr);
  EXPECT_EQ(reg.findByName("right")->chain.dof(), 4u);
  std::remove(path.c_str());
}

TEST(SpecRouter, EmptyRegistryThrows) {
  RobotSpecRegistry reg;
  EXPECT_THROW(SpecRouter router(reg), std::invalid_argument);
}

TEST(SpecRouter, UnknownSpecReturnsFalseWithoutInvokingCompletion) {
  const auto reg = makeRegistry({6});
  RouterConfig config;
  config.base.workers = 1;
  SpecRouter router(reg, config);
  bool invoked = false;
  EXPECT_FALSE(router.submit(7, requestFor(reg.specs()[0].chain, 0),
                             [&](Response) { invoked = true; }));
  EXPECT_FALSE(invoked);
  EXPECT_EQ(router.serviceFor(7), nullptr);
  EXPECT_NE(router.serviceFor(0), nullptr);
}

TEST(SpecRouter, RoutingIsBitIdenticalToStandaloneSingleSpecService) {
  // The acceptance criterion: a request routed through the multi-spec
  // router must solve exactly as it would in a dedicated single-spec
  // deployment — same solver, same queue, same (disabled) cache.
  const auto reg = makeRegistry({5, 8});
  RouterConfig config;
  config.base.workers = 1;
  config.base.enable_seed_cache = false;
  SpecRouter router(reg, config);

  for (const RobotSpec& spec : reg.specs()) {
    service::ServiceConfig standalone_config = config.base;
    service::IkService standalone(RobotSpecRegistry::makeFactory(spec),
                                  standalone_config);
    for (std::uint32_t i = 0; i < 8; ++i) {
      const Response routed = call(router, spec.id, requestFor(spec.chain, i));
      const Response direct =
          standalone.submit(requestFor(spec.chain, i)).get();
      ASSERT_EQ(routed.status, ResponseStatus::kSolved);
      ASSERT_EQ(direct.status, ResponseStatus::kSolved);
      EXPECT_EQ(routed.result.iterations, direct.result.iterations);
      EXPECT_TRUE(bitIdentical(routed.result.theta, direct.result.theta))
          << spec.name << " task " << i;
    }
    standalone.stop();
  }
}

TEST(SpecRouter, SeedCachesAreIsolatedPerSpec) {
  // Same chain geometry behind two spec ids: identical targets, so a
  // shared cache WOULD cross-hit.  The lanes must not.
  RobotSpecRegistry reg;
  for (std::uint32_t id = 0; id < 2; ++id) {
    RobotSpec spec;
    spec.id = id;
    spec.name = "twin" + std::to_string(id);
    spec.chain = kin::makeSerpentine(6);
    reg.add(std::move(spec));
  }
  RouterConfig config;
  config.base.workers = 1;
  config.base.enable_seed_cache = true;
  SpecRouter router(reg, config);

  // Warm spec 0 with repeats of the same task; spec 1 never sees it.
  for (int round = 0; round < 4; ++round)
    call(router, 0, requestFor(reg.specs()[0].chain, 0, /*use_cache=*/true));
  auto lanes = router.perSpecStats();
  ASSERT_EQ(lanes.size(), 2u);
  EXPECT_GT(lanes[0].stats.cache_hits, 0u);
  EXPECT_EQ(lanes[1].stats.cache_hits, 0u);

  // The identical target against spec 1 must MISS: a warm entry in
  // spec 0's cache is invisible across the lane boundary.
  call(router, 1, requestFor(reg.specs()[1].chain, 0, /*use_cache=*/true));
  lanes = router.perSpecStats();
  EXPECT_EQ(lanes[1].stats.cache_hits, 0u);
  EXPECT_GT(lanes[1].stats.cache_misses, 0u);
}

TEST(SpecRouter, BatchedDispatchNeverMixesSpecs) {
  // Interleave a burst across specs with batching wide open.  Every
  // response's theta must carry its own spec's DOF — a cross-spec
  // fused batch would hand a request to the wrong lane's solver and
  // the dimension would betray it.
  const std::vector<std::size_t> dofs = {4, 7, 10};
  const auto reg = makeRegistry(dofs);
  RouterConfig config;
  config.base.workers = 1;
  config.base.max_batch = 16;
  config.base.batch_wait_us = 2000;  // force coalescing
  config.base.enable_seed_cache = false;
  SpecRouter router(reg, config);

  constexpr int kPerSpec = 24;
  struct Pending {
    std::uint32_t spec;
    std::future<Response> future;
  };
  std::vector<Pending> pending;
  for (int i = 0; i < kPerSpec; ++i) {
    for (const RobotSpec& spec : reg.specs()) {
      auto promise = std::make_shared<std::promise<Response>>();
      pending.push_back({spec.id, promise->get_future()});
      ASSERT_TRUE(router.submit(
          spec.id, requestFor(spec.chain, static_cast<std::uint32_t>(i)),
          [promise](Response r) { promise->set_value(std::move(r)); }));
    }
  }
  for (auto& p : pending) {
    const Response r = p.future.get();
    ASSERT_EQ(r.status, ResponseStatus::kSolved);
    EXPECT_EQ(r.result.theta.size(), dofs[p.spec]);
  }
  // Coalescing actually engaged (occupancy > 1 somewhere) and every
  // lane batched only its own load.
  const auto stats = router.aggregatedStats();
  EXPECT_GT(stats.batches, 0u);
  for (const auto& lane : router.perSpecStats())
    EXPECT_EQ(lane.stats.submitted, static_cast<std::uint64_t>(kPerSpec));
}

TEST(SpecRouter, AggregateConservesLaneCountersAndMetricsAreLabelled) {
  const auto reg = makeRegistry({5, 6});
  RouterConfig config;
  config.base.workers = 1;
  SpecRouter router(reg, config);
  for (std::uint32_t i = 0; i < 5; ++i) call(router, 0, requestFor(reg.specs()[0].chain, i));
  for (std::uint32_t i = 0; i < 3; ++i) call(router, 1, requestFor(reg.specs()[1].chain, i));

  const auto aggregate = router.aggregatedStats();
  EXPECT_EQ(aggregate.submitted, 8u);
  EXPECT_EQ(aggregate.accounted(), aggregate.submitted);
  std::uint64_t lane_sum = 0;
  for (const auto& lane : router.perSpecStats()) lane_sum += lane.stats.submitted;
  EXPECT_EQ(lane_sum, aggregate.submitted);

  const obs::MetricsSnapshot snap = router.metrics();
  const auto counterValue = [&](const std::string& name) -> double {
    for (const auto& c : snap.counters)
      if (c.name == name) return static_cast<double>(c.value);
    ADD_FAILURE() << "missing counter " << name;
    return -1.0;
  };
  EXPECT_EQ(counterValue("dadu_spec_serp5_requests"), 5.0);
  EXPECT_EQ(counterValue("dadu_spec_serp6_requests"), 3.0);
  bool saw_specs_gauge = false;
  for (const auto& g : snap.gauges)
    if (g.name == "dadu_registry_specs") {
      saw_specs_gauge = true;
      EXPECT_EQ(g.value, 2.0);
    }
  EXPECT_TRUE(saw_specs_gauge);
}

}  // namespace
}  // namespace dadu::registry
