// End-to-end accelerator tests: functional equivalence with software
// Quick-IK, cycle accounting invariants, power/energy plausibility and
// configuration sweeps.
#include <gtest/gtest.h>

#include "dadu/ikacc/accelerator.hpp"
#include "dadu/ikacc/scheduler.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/solvers/quick_ik.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::acc {
namespace {

TEST(IkAccelerator, RejectsInvalidConfig) {
  const auto chain = kin::makeSerpentine(12);
  ik::SolveOptions options;
  options.speculations = 0;
  EXPECT_THROW(IkAccelerator(chain, options), std::invalid_argument);
  AccConfig cfg;
  cfg.num_ssus = 0;
  EXPECT_THROW(IkAccelerator(chain, ik::SolveOptions{}, cfg),
               std::invalid_argument);
}

class AcceleratorEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AcceleratorEquivalence, BitIdenticalToSoftwareQuickIk) {
  // The accelerator is Quick-IK in hardware: same iterate trajectory,
  // same iteration count, same final joint vector — regardless of how
  // the scheduler chops speculations into waves.
  const std::size_t dof = GetParam();
  const auto chain = kin::makeSerpentine(dof);
  ik::SolveOptions options;
  ik::QuickIkSolver software(chain, options);
  IkAccelerator hardware(chain, options);

  for (int t = 0; t < 3; ++t) {
    const auto task = workload::generateTask(chain, t);
    const auto sw = software.solve(task.target, task.seed);
    const auto hw = hardware.solve(task.target, task.seed);
    EXPECT_EQ(sw.iterations, hw.iterations) << "dof " << dof << " task " << t;
    EXPECT_EQ(sw.status, hw.status);
    EXPECT_EQ(sw.theta, hw.theta) << "functional equivalence must be exact";
    EXPECT_DOUBLE_EQ(sw.error, hw.error);
    EXPECT_EQ(sw.speculation_load, hw.speculation_load);
  }
}

INSTANTIATE_TEST_SUITE_P(DofLadder, AcceleratorEquivalence,
                         ::testing::Values(12, 25, 50, 100));

TEST(IkAccelerator, EquivalenceHoldsAcrossSsuCounts) {
  const auto chain = kin::makeSerpentine(25);
  ik::SolveOptions options;
  ik::QuickIkSolver software(chain, options);
  const auto task = workload::generateTask(chain, 1);
  const auto sw = software.solve(task.target, task.seed);

  for (std::size_t ssus : {1u, 7u, 32u, 64u, 200u}) {
    AccConfig cfg;
    cfg.num_ssus = ssus;
    IkAccelerator hw(chain, options, cfg);
    const auto r = hw.solve(task.target, task.seed);
    EXPECT_EQ(r.theta, sw.theta) << ssus << " SSUs";
    EXPECT_EQ(r.iterations, sw.iterations);
  }
}

TEST(IkAccelerator, WavesMatchSchedulerFormula) {
  const auto chain = kin::makeSerpentine(12);
  ik::SolveOptions options;  // 64 speculations
  for (std::size_t ssus : {8u, 32u, 64u, 100u}) {
    AccConfig cfg;
    cfg.num_ssus = ssus;
    IkAccelerator hw(chain, options, cfg);
    const auto task = workload::generateTask(chain, 0);
    (void)hw.solve(task.target, task.seed);
    EXPECT_EQ(hw.lastStats().waves_per_iteration,
              static_cast<int>(waveCount(64, ssus)));
  }
}

TEST(IkAccelerator, CycleAccountingIsConsistent) {
  const auto chain = kin::makeSerpentine(50);
  ik::SolveOptions options;
  IkAccelerator hw(chain, options);
  const auto task = workload::generateTask(chain, 0);
  const auto r = hw.solve(task.target, task.seed);
  ASSERT_TRUE(r.converged());
  const AccStats& s = hw.lastStats();

  // The four tracked components sum to the total.
  EXPECT_EQ(s.total_cycles, s.spu_cycles + s.ssu_cycles + s.scheduler_cycles +
                                s.selector_cycles);
  // Iterations recorded by the stats match the solver result.
  EXPECT_EQ(s.iterations, r.iterations);
  // Time = cycles / frequency.
  EXPECT_NEAR(s.time_ms, static_cast<double>(s.total_cycles) * 1e-6, 1e-12);
  // Utilisation is a fraction.
  EXPECT_GT(s.ssuUtilization(32), 0.0);
  EXPECT_LE(s.ssuUtilization(32), 1.0);
}

TEST(IkAccelerator, EnergyBreakdownPositiveAndBounded) {
  const auto chain = kin::makeSerpentine(100);
  ik::SolveOptions options;
  IkAccelerator hw(chain, options);
  const auto task = workload::generateTask(chain, 0);
  (void)hw.solve(task.target, task.seed);
  const AccStats& s = hw.lastStats();

  EXPECT_GT(s.dynamic_energy_mj, 0.0);
  EXPECT_GT(s.leakage_energy_mj, 0.0);
  // Average power should land in the paper's regime: well under a
  // watt, above pure leakage.
  EXPECT_GT(s.avg_power_mw, hw.config().leakage_mw);
  EXPECT_LT(s.avg_power_mw, 1000.0);
}

TEST(IkAccelerator, MoreSsusNeverSlower) {
  const auto chain = kin::makeSerpentine(50);
  ik::SolveOptions options;
  const auto task = workload::generateTask(chain, 2);
  long long prev_cycles = -1;
  for (std::size_t ssus : {8u, 16u, 32u, 64u}) {
    AccConfig cfg;
    cfg.num_ssus = ssus;
    IkAccelerator hw(chain, options, cfg);
    (void)hw.solve(task.target, task.seed);
    const long long cycles = hw.lastStats().total_cycles;
    if (prev_cycles >= 0) EXPECT_LE(cycles, prev_cycles) << ssus;
    prev_cycles = cycles;
  }
}

TEST(IkAccelerator, HigherFrequencyShortensTimeNotCycles) {
  const auto chain = kin::makeSerpentine(25);
  ik::SolveOptions options;
  const auto task = workload::generateTask(chain, 0);

  AccConfig slow;
  slow.freq_ghz = 1.0;
  AccConfig fast = slow;
  fast.freq_ghz = 2.0;
  IkAccelerator a(chain, options, slow);
  IkAccelerator b(chain, options, fast);
  (void)a.solve(task.target, task.seed);
  (void)b.solve(task.target, task.seed);
  EXPECT_EQ(a.lastStats().total_cycles, b.lastStats().total_cycles);
  EXPECT_NEAR(a.lastStats().time_ms, 2.0 * b.lastStats().time_ms, 1e-12);
}

TEST(IkAccelerator, SolveTimeMsPaperScale) {
  // The paper's headline: ~12 ms for a 100-DOF solve at 1 GHz.  Our
  // iteration counts differ from theirs, so assert the decade, not the
  // digit: well under 100 ms and over 1 us.
  const auto chain = kin::makeSerpentine(100);
  ik::SolveOptions options;
  IkAccelerator hw(chain, options);
  const auto task = workload::generateTask(chain, 1);
  const auto r = hw.solve(task.target, task.seed);
  ASSERT_TRUE(r.converged());
  EXPECT_LT(hw.lastStats().time_ms, 100.0);
  EXPECT_GT(hw.lastStats().time_ms, 0.001);
}

TEST(IkAccelerator, StatsResetBetweenSolves) {
  const auto chain = kin::makeSerpentine(12);
  ik::SolveOptions options;
  IkAccelerator hw(chain, options);
  const auto t0 = workload::generateTask(chain, 0);
  const auto t1 = workload::generateTask(chain, 1);
  (void)hw.solve(t0.target, t0.seed);
  const long long first = hw.lastStats().total_cycles;
  (void)hw.solve(t1.target, t1.seed);
  const long long second = hw.lastStats().total_cycles;
  // Stats describe a single solve, not a running total: a second solve
  // of similar difficulty must not report the sum.
  EXPECT_LT(second, 2 * first);
  (void)hw.solve(t0.target, t0.seed);
  EXPECT_EQ(hw.lastStats().total_cycles, first);
}

}  // namespace
}  // namespace dadu::acc
