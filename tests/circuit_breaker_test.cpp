// Circuit-breaker and solver-watchdog regression tests.
//
// The breaker unit tests drive the state machine with explicit
// timestamps (admit()/recordSolve() take `now`), so every transition is
// deterministic — no sleeps, no flaky timing.  The service-level tests
// then confirm the same machine wired into IkService: trip under a
// pinned queue, fast-reject while Open, recover through half-open
// probes, and surface watchdog timeouts as kTimedOut with best-so-far
// state.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dadu/fault/fault.hpp"
#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/service/circuit_breaker.hpp"
#include "dadu/service/ik_service.hpp"
#include "dadu/solvers/factory.hpp"

namespace dadu::service {
namespace {

using Clock = CircuitBreaker::Clock;
using Admit = CircuitBreaker::Admit;
using State = CircuitBreaker::State;

CircuitBreakerConfig testConfig() {
  CircuitBreakerConfig config;
  config.enabled = true;
  config.trip_queue_depth = 4;
  config.trip_p99_ms = 10.0;
  config.latency_window = 8;
  config.min_samples = 4;
  config.open_ms = 100.0;
  config.half_open_probes = 2;
  config.shed_queue_depth = 2;
  return config;
}

Clock::time_point at(double ms) {
  static const Clock::time_point epoch = Clock::now();
  return epoch + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double, std::milli>(ms));
}

TEST(CircuitBreakerTest, ShallowQueueAccepts) {
  CircuitBreaker breaker(testConfig());
  EXPECT_EQ(breaker.admit(Priority::kNormal, 0, at(0)), Admit::kAccept);
  EXPECT_EQ(breaker.state(), State::kClosed);
}

TEST(CircuitBreakerTest, DepthTripOpensAndFastRejects) {
  CircuitBreaker breaker(testConfig());
  EXPECT_EQ(breaker.admit(Priority::kNormal, 4, at(0)), Admit::kRejectOpen);
  EXPECT_EQ(breaker.state(), State::kOpen);
  EXPECT_EQ(breaker.snapshot().trips, 1u);
  // While Open every caller is rejected without touching the queue —
  // even with the queue empty again (depth is not re-examined).
  EXPECT_EQ(breaker.admit(Priority::kHigh, 0, at(1)), Admit::kRejectOpen);
}

TEST(CircuitBreakerTest, OpenWindowElapsesIntoHalfOpenProbes) {
  CircuitBreaker breaker(testConfig());
  breaker.admit(Priority::kNormal, 4, at(0));  // trip
  EXPECT_EQ(breaker.admit(Priority::kNormal, 0, at(50)), Admit::kRejectOpen);
  // open_ms passed: the next submits become probes, capped at
  // half_open_probes outstanding; the overflow still fast-rejects.
  EXPECT_EQ(breaker.admit(Priority::kNormal, 0, at(101)), Admit::kProbe);
  EXPECT_EQ(breaker.admit(Priority::kNormal, 0, at(102)), Admit::kProbe);
  EXPECT_EQ(breaker.admit(Priority::kNormal, 0, at(103)), Admit::kRejectOpen);
  EXPECT_EQ(breaker.state(), State::kHalfOpen);
  EXPECT_EQ(breaker.snapshot().probes_issued, 2u);
}

TEST(CircuitBreakerTest, ProbeSuccessesClose) {
  CircuitBreaker breaker(testConfig());
  breaker.admit(Priority::kNormal, 4, at(0));
  breaker.admit(Priority::kNormal, 0, at(101));
  breaker.admit(Priority::kNormal, 0, at(102));
  breaker.onProbeResult(true, at(110));
  EXPECT_EQ(breaker.state(), State::kHalfOpen);  // 1 of 2 successes
  breaker.onProbeResult(true, at(111));
  EXPECT_EQ(breaker.state(), State::kClosed);
  EXPECT_EQ(breaker.admit(Priority::kNormal, 0, at(120)), Admit::kAccept);
}

TEST(CircuitBreakerTest, ProbeFailureReopensWithFreshWindow) {
  CircuitBreaker breaker(testConfig());
  breaker.admit(Priority::kNormal, 4, at(0));
  breaker.admit(Priority::kNormal, 0, at(101));  // probe
  breaker.onProbeResult(false, at(105));
  EXPECT_EQ(breaker.state(), State::kOpen);
  EXPECT_EQ(breaker.snapshot().trips, 2u);
  // The open window restarts at the failure, not the original trip.
  EXPECT_EQ(breaker.admit(Priority::kNormal, 0, at(150)), Admit::kRejectOpen);
  EXPECT_EQ(breaker.admit(Priority::kNormal, 0, at(206)), Admit::kProbe);
}

TEST(CircuitBreakerTest, LatencyP99Trips) {
  CircuitBreaker breaker(testConfig());
  for (int i = 0; i < 3; ++i) breaker.recordSolve(100.0, at(i));
  EXPECT_EQ(breaker.state(), State::kClosed);  // below min_samples
  breaker.recordSolve(100.0, at(3));
  EXPECT_EQ(breaker.state(), State::kOpen);
  EXPECT_EQ(breaker.snapshot().trips, 1u);
}

TEST(CircuitBreakerTest, FastSolvesNeverTrip) {
  CircuitBreaker breaker(testConfig());
  for (int i = 0; i < 100; ++i) breaker.recordSolve(0.5, at(i));
  EXPECT_EQ(breaker.state(), State::kClosed);
}

TEST(CircuitBreakerTest, LowPrioritySheddingWhileClosed) {
  CircuitBreaker breaker(testConfig());
  EXPECT_EQ(breaker.admit(Priority::kLow, 2, at(0)), Admit::kShedLow);
  EXPECT_EQ(breaker.admit(Priority::kNormal, 2, at(1)), Admit::kAccept);
  EXPECT_EQ(breaker.admit(Priority::kHigh, 2, at(2)), Admit::kAccept);
  EXPECT_EQ(breaker.admit(Priority::kLow, 1, at(3)), Admit::kAccept);
  EXPECT_EQ(breaker.state(), State::kClosed);  // shedding is not a trip
}

TEST(CircuitBreakerTest, StaleProbeResultsIgnored) {
  CircuitBreaker breaker(testConfig());
  breaker.admit(Priority::kNormal, 4, at(0));
  breaker.admit(Priority::kNormal, 0, at(101));
  breaker.admit(Priority::kNormal, 0, at(102));
  breaker.onProbeResult(true, at(110));
  breaker.onProbeResult(true, at(111));
  ASSERT_EQ(breaker.state(), State::kClosed);
  // A late duplicate (no probes outstanding) must not wiggle the state.
  breaker.onProbeResult(false, at(112));
  EXPECT_EQ(breaker.state(), State::kClosed);
  EXPECT_EQ(breaker.snapshot().trips, 1u);
}

// ---------------------------------------------- service integration

/// Lets a test hold a worker inside solve() until released (same idiom
/// as service_test.cpp).
class Gate {
 public:
  void waitUntilOpen() {
    std::unique_lock<std::mutex> lock(mutex_);
    ++arrived_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return open_; });
  }
  void open() {
    std::lock_guard<std::mutex> lock(mutex_);
    open_ = true;
    cv_.notify_all();
  }
  void awaitArrivals(int n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return arrived_ >= n; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  bool open_ = false;
};

class GatedSolver : public ik::IkSolver {
 public:
  GatedSolver(kin::Chain chain, std::shared_ptr<Gate> gate)
      : chain_(std::move(chain)), gate_(std::move(gate)) {}

  ik::SolveResult solve(const linalg::Vec3&,
                        const linalg::VecX& seed) override {
    if (gate_) gate_->waitUntilOpen();
    ik::SolveResult r;
    r.status = ik::Status::kConverged;
    r.iterations = 1;
    r.theta = seed;
    return r;
  }
  std::string name() const override { return "gated"; }
  const kin::Chain& chain() const override { return chain_; }
  const ik::SolveOptions& options() const override { return options_; }

 private:
  kin::Chain chain_;
  std::shared_ptr<Gate> gate_;
  ik::SolveOptions options_;
};

Request simpleRequest(std::size_t dof, Priority priority = Priority::kNormal) {
  Request request;
  request.target = {0.4, 0.1, 0.0};
  request.seed = linalg::VecX(dof);
  request.use_seed_cache = false;
  request.priority = priority;
  return request;
}

TEST(ServiceBreakerTest, ShedsLowPriorityUnderDeepQueue) {
  const auto chain = kin::makePlanar(3);
  const auto gate = std::make_shared<Gate>();
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 16;
  config.enable_seed_cache = false;
  config.breaker.enabled = true;
  config.breaker.shed_queue_depth = 2;
  config.breaker.trip_queue_depth = 100;  // depth trip out of the way
  IkService svc(
      [&, gate] { return std::make_unique<GatedSolver>(chain, gate); },
      config);

  // Pin the worker, then stack two jobs so the observed depth is 2.
  auto pinned = svc.submit(simpleRequest(3));
  gate->awaitArrivals(1);
  auto q1 = svc.submit(simpleRequest(3));
  auto q2 = svc.submit(simpleRequest(3));

  const Response shed = svc.submit(simpleRequest(3, Priority::kLow)).get();
  EXPECT_EQ(shed.status, ResponseStatus::kRejected);
  EXPECT_EQ(shed.reject_reason, RejectReason::kOverloaded);
  // Normal traffic still passes at the same depth.
  auto kept = svc.submit(simpleRequest(3));

  gate->open();
  EXPECT_EQ(pinned.get().status, ResponseStatus::kSolved);
  EXPECT_EQ(q1.get().status, ResponseStatus::kSolved);
  EXPECT_EQ(q2.get().status, ResponseStatus::kSolved);
  EXPECT_EQ(kept.get().status, ResponseStatus::kSolved);

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.shed_low_priority, 1u);
  EXPECT_EQ(stats.breaker.trips, 0u);
  EXPECT_EQ(stats.submitted, stats.accounted());
}

TEST(ServiceBreakerTest, TripsOpenThenRecoversThroughProbes) {
  const auto chain = kin::makePlanar(3);
  const auto gate = std::make_shared<Gate>();
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 16;
  config.enable_seed_cache = false;
  config.breaker.enabled = true;
  config.breaker.trip_queue_depth = 2;
  config.breaker.open_ms = 30.0;
  config.breaker.half_open_probes = 1;
  IkService svc(
      [&, gate] { return std::make_unique<GatedSolver>(chain, gate); },
      config);

  auto pinned = svc.submit(simpleRequest(3));
  gate->awaitArrivals(1);
  auto q1 = svc.submit(simpleRequest(3));
  auto q2 = svc.submit(simpleRequest(3));  // observed depth 2 -> trip

  const Response tripped = svc.submit(simpleRequest(3)).get();
  EXPECT_EQ(tripped.status, ResponseStatus::kRejected);
  EXPECT_EQ(tripped.reject_reason, RejectReason::kOverloaded);
  EXPECT_EQ(svc.breaker().state(), State::kOpen);

  // Drain the backlog, wait out the open window, then recover through
  // the single configured probe.
  gate->open();
  EXPECT_EQ(pinned.get().status, ResponseStatus::kSolved);
  q1.get();
  q2.get();
  std::this_thread::sleep_for(std::chrono::milliseconds(40));

  const Response probe = svc.submit(simpleRequest(3)).get();
  EXPECT_EQ(probe.status, ResponseStatus::kSolved);
  EXPECT_EQ(svc.breaker().state(), State::kClosed);

  const ServiceStats stats = svc.stats();
  EXPECT_GE(stats.breaker.trips, 1u);
  EXPECT_GE(stats.breaker.probes_issued, 1u);
  EXPECT_GE(stats.rejected_overloaded, 1u);
  EXPECT_EQ(stats.submitted, stats.accounted());
}

// ------------------------------------------------- solver watchdog

/// A reachable target the solver can never be *satisfied* with:
/// accuracy 0.0 is unsatisfiable (error < 0 never holds) and the
/// target sits inside the workspace so the gradient stays alive for a
/// while (an unreachable target folds the chain straight into the
/// J^T e == 0 singularity and ends kStalled almost immediately).
linalg::Vec3 runawayTarget(const kin::Chain& chain) {
  return kin::endEffectorPosition(chain, linalg::VecX(chain.dof(), 0.25));
}

ik::SolveOptions runawayOptions() {
  ik::SolveOptions options;
  options.accuracy = 0.0;  // unsatisfiable by construction
  options.max_iterations = 50'000'000;
  return options;
}

/// Pins every solver iteration at delay_ms via the solver.iterate
/// fault point, so a solve lasts exactly as long as its deadline
/// allows — the only deterministic way to make quick-ik "slow" (left
/// alone it converges or stalls in low single-digit milliseconds).
fault::FaultPlan slowIterationPlan(double delay_ms) {
  fault::FaultPlan plan;
  plan.delayAt("solver.iterate", delay_ms);
  return plan;
}

TEST(SolverWatchdogTest, DeadlineStopsRunawaySolve) {
  const auto chain = kin::makeSerpentine(16);
  fault::ScopedFaultPlan slow(slowIterationPlan(5.0));
  for (const char* name : {"jt-serial", "jt-fixed-alpha", "quick-ik"}) {
    ik::SolveOptions options = runawayOptions();
    options.deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(25);
    const auto solver = ik::makeSolver(name, chain, options);
    const auto start = std::chrono::steady_clock::now();
    const auto r =
        solver->solve(runawayTarget(chain), chain.zeroConfiguration());
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_EQ(r.status, ik::Status::kTimedOut) << name;
    EXPECT_GT(r.iterations, 0) << name;
    EXPECT_LT(elapsed_ms, 5000.0) << name;  // stopped early, generously
    for (double x : r.theta) EXPECT_TRUE(std::isfinite(x)) << name;
    EXPECT_TRUE(std::isfinite(r.error)) << name;
  }
}

TEST(SolverWatchdogTest, ExpiredDeadlineReturnsSeedImmediately) {
  const auto chain = kin::makeSerpentine(8);
  ik::SolveOptions options = runawayOptions();
  options.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  const auto solver = ik::makeSolver("quick-ik", chain, options);
  const linalg::VecX seed(8, 0.3);
  const auto r = solver->solve(runawayTarget(chain), seed);
  EXPECT_EQ(r.status, ik::Status::kTimedOut);
  EXPECT_EQ(r.iterations, 0);
  EXPECT_EQ(r.theta, seed);  // best-so-far = the untouched seed
}

TEST(SolverWatchdogTest, DefaultDeadlineIsUnbounded) {
  const auto chain = kin::makeSerpentine(8);
  ik::SolveOptions options;  // epoch deadline = no watchdog
  EXPECT_FALSE(options.hasDeadline());
  const auto solver = ik::makeSolver("quick-ik", chain, options);
  const auto at = kin::endEffectorPosition(chain, linalg::VecX(8, 0.25));
  const auto r = solver->solve(at, linalg::VecX(8, 0.25));
  EXPECT_TRUE(r.converged());
}

TEST(SolverWatchdogTest, SetDeadlineOverridesOptionsAndClears) {
  const auto chain = kin::makeSerpentine(8);
  // Bounded budget so the cleared-deadline solve terminates on its own.
  ik::SolveOptions options;
  options.accuracy = 0.0;
  options.max_iterations = 100;
  const auto solver = ik::makeSolver("quick-ik", chain, options);
  const auto target = runawayTarget(chain);

  // An already-expired injected deadline beats the iteration budget.
  solver->setDeadline(std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(1));
  const auto timed_out = solver->solve(target, chain.zeroConfiguration());
  EXPECT_EQ(timed_out.status, ik::Status::kTimedOut);
  EXPECT_EQ(timed_out.iterations, 0);

  // Clearing restores the unbounded default: the budget decides again.
  solver->setDeadline({});
  const auto budget_bound = solver->solve(target, chain.zeroConfiguration());
  EXPECT_EQ(budget_bound.status, ik::Status::kMaxIterations);
  EXPECT_EQ(budget_bound.iterations, 100);
}

TEST(ServiceWatchdogTest, RequestDeadlineSurfacesAsTimedOut) {
  const auto chain = kin::makeSerpentine(16);
  fault::ScopedFaultPlan slow(slowIterationPlan(10.0));
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 4;
  config.enable_seed_cache = false;
  IkService svc(
      [&] { return ik::makeSolver("quick-ik", chain, runawayOptions()); },
      config);

  Request request;
  request.target = runawayTarget(chain);
  request.seed = linalg::VecX(16);
  request.use_seed_cache = false;
  request.deadline_ms = 150.0;  // picked up instantly, expires mid-solve
  const Response r = svc.submit(std::move(request)).get();

  ASSERT_EQ(r.status, ResponseStatus::kSolved);  // the solver *ran*
  EXPECT_EQ(r.result.status, ik::Status::kTimedOut);
  for (double x : r.result.theta) EXPECT_TRUE(std::isfinite(x));
  EXPECT_EQ(svc.stats().timed_out, 1u);

  // A stale watchdog deadline must not leak into the next request on
  // the same worker/solver: this one's own 150ms deadline governs, so
  // it runs a meaningful amount of work before ITS timeout — a leaked
  // (already-expired) deadline would kill it at iteration 0.
  Request next;
  next.target = runawayTarget(chain);
  next.seed = linalg::VecX(16);
  next.use_seed_cache = false;
  next.deadline_ms = 150.0;
  const Response r2 = svc.submit(std::move(next)).get();
  ASSERT_EQ(r2.status, ResponseStatus::kSolved);
  EXPECT_EQ(r2.result.status, ik::Status::kTimedOut);
  EXPECT_GT(r2.result.iterations, 0);
  EXPECT_GT(r2.solve_ms, 50.0);  // ran its own clock down, not a stale one
}

}  // namespace
}  // namespace dadu::service
