// Quickstart: solve inverse kinematics for a high-DOF manipulator with
// Quick-IK, then run the same problem on the simulated IKAcc
// accelerator and print its latency/energy estimate.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "dadu/dadu.hpp"

int main() {
  // A 25-DOF serpentine manipulator (2.5 m reach).
  const dadu::kin::Chain chain = dadu::kin::makeSerpentine(25);
  std::printf("Robot: %s, %zu DOF, max reach %.2f m\n", chain.name().c_str(),
              chain.dof(), chain.maxReach());

  // A reachable target: take a random configuration's end-effector
  // position, then ask the solver to find joint angles for it.
  const auto task = dadu::workload::generateTask(chain, /*index=*/0);
  std::printf("Target: [%.3f, %.3f, %.3f]\n", task.target.x, task.target.y,
              task.target.z);

  // --- Quick-IK on the CPU -----------------------------------------
  dadu::IkEngine engine(chain, dadu::Backend::kCpuSerial);
  const auto result = engine.solve(task.target, task.seed);
  std::printf("Quick-IK:  %s in %d iterations, error %.4f m (%.1f mm)\n",
              dadu::ik::toString(result.status).c_str(), result.iterations,
              result.error, result.error * 1e3);

  // Sanity: forward kinematics of the solution lands on the target.
  const auto reached = dadu::kin::endEffectorPosition(chain, result.theta);
  std::printf("FK check:  [%.3f, %.3f, %.3f]\n", reached.x, reached.y,
              reached.z);

  // --- Same problem on the IKAcc accelerator model -------------------
  dadu::IkEngine acc_engine(chain, dadu::Backend::kIkAcc);
  const auto acc_result = acc_engine.solve(task.target, task.seed);
  const auto& stats = acc_engine.acceleratorStats();
  std::printf(
      "IKAcc:     %s in %d iterations | %.3f ms @1GHz | %.3f mJ | %.1f mW "
      "avg\n",
      dadu::ik::toString(acc_result.status).c_str(), acc_result.iterations,
      stats.time_ms, stats.energyMj(), stats.avg_power_mw);

  return result.converged() && acc_result.converged() ? 0 : 1;
}
