// Snake-robot trajectory tracking: a 50-DOF serpentine manipulator
// follows a circular end-effector path, the classic high-DOF workload
// from the paper's introduction (hyper-redundant arms need real-time
// IK at every control tick).
//
// Demonstrates warm-started trajectory solving and compares the
// iteration cost of Quick-IK vs the plain Jacobian transpose on the
// same path.
#include <cstdio>

#include "dadu/dadu.hpp"

namespace {

void report(const char* label, const dadu::TrajectoryResult& tr) {
  std::printf(
      "%-12s converged %d/%zu | iters mean %.1f max %.0f | max err %.4f m | "
      "mean joint step %.3f rad\n",
      label, tr.converged, tr.waypoints.size(), tr.mean_iterations,
      tr.max_iterations, tr.max_error, tr.mean_joint_step);
}

}  // namespace

int main() {
  const dadu::kin::Chain chain = dadu::kin::makeSerpentine(50);
  std::printf("Robot: %s (reach %.1f m)\n", chain.name().c_str(),
              chain.maxReach());

  // A circle in the x-z plane, fitted into the workspace with margin.
  auto path = dadu::workload::circleTrajectory(
      {2.0, 0.0, 1.0}, 0.8, dadu::linalg::Vec3::unitX(),
      dadu::linalg::Vec3::unitZ(), 60);
  path = dadu::workload::fitToWorkspace(chain, std::move(path));
  std::printf("Tracking a %zu-point circular path\n\n", path.size());

  dadu::ik::SolveOptions options;
  options.max_iterations = 10'000;

  // Bend the snake slightly so the start pose is away from the
  // stretched-out singularity.
  dadu::linalg::VecX seed(chain.dof());
  for (std::size_t i = 0; i < seed.size(); ++i)
    seed[i] = (i % 2 == 0) ? 0.05 : -0.03;

  dadu::ik::QuickIkSolver quick(chain, options);
  report("Quick-IK", dadu::solveTrajectory(quick, path, seed));

  dadu::ik::JtSerialSolver jt(chain, options);
  report("JT-Serial", dadu::solveTrajectory(jt, path, seed));

  dadu::ik::PinvSvdSolver pinv(chain, options);
  report("Pinv-SVD", dadu::solveTrajectory(pinv, path, seed));

  // The same path on the accelerator: per-waypoint latency estimate.
  dadu::acc::IkAccelerator ikacc(chain, options);
  const auto tr = dadu::solveTrajectory(ikacc, path, seed);
  // Second pass to capture per-waypoint AccStats (lastStats() is
  // overwritten by each solve).
  double worst_ms = 0.0;
  {
    dadu::linalg::VecX warm = seed;
    for (const auto& target : path) {
      const auto r = ikacc.solve(target, warm);
      worst_ms = std::max(worst_ms, ikacc.lastStats().time_ms);
      warm = r.theta;
    }
  }
  report("IKAcc", tr);
  std::printf(
      "\nIKAcc worst-case waypoint latency: %.3f ms @1 GHz "
      "(real-time budget for a 100 Hz controller: 10 ms)\n",
      worst_ms);

  return tr.allConverged() ? 0 : 1;
}
