// End-to-end pipeline: the role fast IK plays inside a robot software
// stack.  Collision-aware Quick-IK produces a goal configuration for a
// task-space target behind an obstacle field; RRT-Connect plans a
// collision-free joint path to it; the control-loop simulation then
// executes the reach with IKAcc-class solver latency.
#include <cstdio>

#include "dadu/dadu.hpp"

int main() {
  const auto chain = dadu::kin::makeSerpentine(12);
  const dadu::geom::RobotGeometry body(chain, 0.02);
  const dadu::geom::Obstacles obstacles = {
      {{0.55, 0.25, 0.15}, 0.12},
      {{0.35, -0.3, 0.3}, 0.1},
  };

  // Start: mild bend.  Goal target: sampled reachable position.
  dadu::linalg::VecX start(chain.dof());
  for (std::size_t i = 0; i < start.size(); ++i)
    start[i] = (i % 2 == 0) ? 0.2 : -0.15;
  const auto task = dadu::workload::generateTask(chain, 6);
  std::printf("Reach target [%.2f, %.2f, %.2f] through %zu obstacles\n",
              task.target.x, task.target.y, task.target.z, obstacles.size());

  // 1. Goal configuration via collision-aware IK.
  dadu::geom::CollisionAwareSolver ik(
      std::make_unique<dadu::ik::QuickIkSolver>(chain, dadu::ik::SolveOptions{}),
      body, obstacles, 0.01, 12, 3, /*check_self=*/false);
  const auto goal = ik.solve(task.target, start);
  if (!goal.success()) {
    std::printf("IK: no collision-free goal configuration found\n");
    return 1;
  }
  std::printf("1. IK: free goal config after %d attempt(s), clearance %.3f m\n",
              goal.attempts, goal.clearance);

  // 2. Joint path via RRT-Connect.
  dadu::plan::RrtOptions options;
  options.margin = 0.005;
  options.seed = 9;
  dadu::plan::RrtPlanner planner(body, obstacles, options);
  const auto plan = planner.plan(start, goal.solve.theta);
  if (!plan.success) {
    std::printf("2. RRT: no path found in %d iterations\n", plan.iterations);
    return 1;
  }
  std::printf("2. RRT: %zu-waypoint path, joint length %.2f rad, %d tree "
              "iterations\n",
              plan.path.size(), plan.path_length, plan.iterations);

  // 3. Execute: track the task-space positions of the planned path
  //    with a 1 kHz controller and IKAcc-class solver latency.
  std::vector<dadu::linalg::Vec3> task_path;
  task_path.reserve(plan.path.size());
  for (const auto& q : plan.path)
    task_path.push_back(dadu::kin::endEffectorPosition(chain, q));

  dadu::ik::QuickIkSolver tracker(chain, {});
  const dadu::sim::IkOracle oracle =
      [&](const dadu::linalg::Vec3& target, const dadu::linalg::VecX& warm) {
        return tracker.solve(target, warm).theta;
      };
  const dadu::sim::Reference reference = [&](double t) {
    const double s = std::min(t / 3.0, 1.0) *
                     static_cast<double>(task_path.size() - 1);
    const std::size_t i = std::min(static_cast<std::size_t>(s),
                                   task_path.size() - 2);
    const double frac = s - static_cast<double>(i);
    return task_path[i] + (task_path[i + 1] - task_path[i]) * frac;
  };
  dadu::sim::ControlLoopConfig config;
  config.solver_latency_s = 0.5e-3;  // IKAcc class
  config.duration_s = 3.5;
  const auto run = dadu::sim::simulateTracking(chain, reference, oracle,
                                               start, config);
  std::printf("3. Execute: final task error %.1f mm after %.1f s (%d IK "
              "solves at 0.5 ms latency)\n",
              run.error_trace.back() * 1e3, config.duration_s, run.ik_solves);

  return run.error_trace.back() < 0.05 ? 0 : 1;
}
