// Humanoid dual-arm IK: a kinematic tree (torso + two arms, NASA
// Valkyrie scale) solving simultaneous targets for both hands — the
// multi-end-effector regime the paper's related work notes CCD cannot
// handle, solved with the tree generalisation of Quick-IK.
#include <cstdio>

#include "dadu/dadu.hpp"

int main() {
  // 8-joint torso + two 18-joint arms = 44 DOF, the Valkyrie count.
  const dadu::kin::Tree humanoid = dadu::kin::makeHumanoidUpperBody(8, 18, 0.05);
  std::printf("Robot: %s | %zu DOF, %zu end effectors, reach %.2f m\n",
              humanoid.name().c_str(), humanoid.dof(),
              humanoid.endEffectorCount(), humanoid.maxReach());

  // Dual targets, reachable by construction: both wrists' positions at
  // a random posture.
  dadu::workload::Rng rng(99);
  dadu::linalg::VecX posture(humanoid.dof());
  for (std::size_t i = 0; i < posture.size(); ++i) posture[i] = rng.angle();
  const auto targets = humanoid.endEffectorPositions(posture);
  std::printf("Left-hand target:  [%.3f, %.3f, %.3f]\n", targets[0].x,
              targets[0].y, targets[0].z);
  std::printf("Right-hand target: [%.3f, %.3f, %.3f]\n\n", targets[1].x,
              targets[1].y, targets[1].z);

  dadu::ik::QuickIkTreeSolver solver(humanoid, {});
  dadu::linalg::VecX seed(humanoid.dof());
  for (std::size_t i = 0; i < seed.size(); ++i) seed[i] = rng.angle();

  const auto r = solver.solve(targets, seed);
  std::printf("Quick-IK (tree): %s in %d iterations\n",
              dadu::ik::toString(r.status).c_str(), r.iterations);
  std::printf("  left-hand error:  %.1f mm\n", r.errors[0] * 1e3);
  std::printf("  right-hand error: %.1f mm\n", r.errors[1] * 1e3);

  // Cross-check with forward kinematics.
  const auto reached = humanoid.endEffectorPositions(r.theta);
  std::printf("FK check, left:  [%.3f, %.3f, %.3f]\n", reached[0].x,
              reached[0].y, reached[0].z);
  std::printf("FK check, right: [%.3f, %.3f, %.3f]\n", reached[1].x,
              reached[1].y, reached[1].z);

  return r.converged() ? 0 : 1;
}
