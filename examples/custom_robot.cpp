// Custom robot from a description file: write a .dh description (as a
// user would author by hand), load it back, and solve position AND
// full-pose IK for it — the downstream-integration workflow.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "dadu/dadu.hpp"

int main() {
  // A 9-DOF "torso + arm": a prismatic lift followed by two 4-DOF arm
  // sections, authored as a description file.
  const auto path =
      (std::filesystem::temp_directory_path() / "dadu_custom_robot.dh")
          .string();
  {
    std::ofstream out(path);
    out << "# torso lift + 8-DOF arm\n"
           "name lift-arm\n"
           "joint prismatic a=0 alpha=0 d=0.2 min=0 max=0.6\n"
           "joint revolute a=0 alpha=1.5707963 d=0.1\n"
           "joint revolute a=0.25 alpha=-1.5707963\n"
           "joint revolute a=0 alpha=1.5707963\n"
           "joint revolute a=0.25 alpha=-1.5707963\n"
           "joint revolute a=0 alpha=1.5707963\n"
           "joint revolute a=0.2 alpha=-1.5707963\n"
           "joint revolute a=0 alpha=1.5707963\n"
           "joint revolute a=0.1 alpha=0\n";
  }

  const dadu::kin::Chain robot = dadu::kin::loadChainFile(path);
  std::printf("Loaded '%s': %zu DOF, reach %.2f m\n", robot.name().c_str(),
              robot.dof(), robot.maxReach());

  // Position IK via the engine.
  dadu::IkEngine engine(robot, dadu::Backend::kCpuSerial);
  const auto task = dadu::workload::generateTask(robot, 0);
  const auto r = engine.solve(task.target, task.seed);
  std::printf("Position IK: %s in %d iterations (error %.1f mm)\n",
              dadu::ik::toString(r.status).c_str(), r.iterations,
              r.error * 1e3);

  // Full-pose IK: reach a pose sampled from the robot's own workspace.
  dadu::linalg::VecX q(robot.dof());
  for (std::size_t i = 0; i < q.size(); ++i)
    q[i] = robot.joint(i).clamp(0.2 + 0.1 * static_cast<double>(i));
  const dadu::kin::Pose pose_target = dadu::kin::endEffectorPose(robot, q);

  dadu::ik::PoseSolveOptions pose_options;
  dadu::ik::QuickIkPoseSolver pose_solver(robot, pose_options);
  const auto pr = pose_solver.solve(pose_target, task.seed);
  std::printf(
      "Pose IK:     %s in %d iterations (pos %.1f mm, orient %.3f rad)\n",
      dadu::ik::toString(pr.status).c_str(), pr.iterations,
      pr.position_error * 1e3, pr.angular_error);

  // Round-trip: save the loaded robot back out.
  dadu::kin::saveChainFile(robot, path + ".saved");
  std::printf("Round-tripped description written to %s.saved\n", path.c_str());

  std::filesystem::remove(path);
  std::filesystem::remove(path + ".saved");
  return r.converged() && pr.converged() ? 0 : 1;
}
