// Solver shootout: every IK method in the library on the same workload,
// from a classic 6-DOF industrial arm to the paper's 100-DOF ladder.
// Prints iterations, computation load, convergence rate and measured
// wall time per solver — a compact view of the trade-off space the
// paper's Section 6.2 explores.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "dadu/dadu.hpp"
#include "dadu/report/table.hpp"

namespace {

void runOn(const dadu::kin::Chain& chain, int targets) {
  using dadu::report::Table;
  std::printf("\n--- %s (%zu DOF), %d targets, accuracy 1e-2 m ---\n",
              chain.name().c_str(), chain.dof(), targets);

  dadu::ik::SolveOptions options;
  options.max_iterations = 10'000;

  const auto tasks = dadu::workload::generateTasks(chain, targets);

  Table table({"solver", "conv%", "iters", "load(spec*iter)", "err(mm)",
               "ms/solve"});
  for (const std::string& name : dadu::ik::solverNames()) {
    // Skip the thread-pool variant here: identical iterations to
    // quick-ik, only timing differs, and the shootout is about
    // algorithm behaviour.
    if (name == "quick-ik-mt") continue;
    auto solver = dadu::ik::makeSolver(name, chain, options);

    std::vector<dadu::ik::SolveResult> results;
    results.reserve(tasks.size());
    dadu::platform::WallTimer timer;
    for (const auto& task : tasks)
      results.push_back(solver->solve(task.target, task.seed));
    const double ms = timer.elapsedMs() / targets;

    const auto stats = dadu::ik::summarize(results);
    table.addRow({name, Table::num(stats.convergenceRate() * 100.0, 1),
                  Table::num(stats.mean_iterations, 1),
                  Table::num(stats.mean_load, 0),
                  Table::num(stats.mean_error * 1e3, 2), Table::num(ms, 3)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  runOn(dadu::kin::makePuma560(), 20);
  runOn(dadu::kin::makeSerpentine(12), 20);
  runOn(dadu::kin::makeSerpentine(50), 10);
  return 0;
}
