// Convergence visualisation: per-iteration error curves of the three
// methods the paper compares (Fig. 5a's story, shown as trajectories
// rather than totals), plus a throughput comparison of the parallel
// batch runner — all rendered in the terminal.
#include <iostream>

#include "dadu/dadu.hpp"

int main() {
  const auto chain = dadu::kin::makeSerpentine(50);
  const auto task = dadu::workload::generateTask(chain, 2);

  dadu::ik::SolveOptions options;
  options.record_history = true;

  dadu::ik::JtSerialSolver jt(chain, options);
  dadu::ik::JtEq8Solver eq8(chain, options);
  dadu::ik::QuickIkSolver quick(chain, options);
  const auto rj = jt.solve(task.target, task.seed);
  const auto re = eq8.solve(task.target, task.seed);
  const auto rq = quick.solve(task.target, task.seed);

  std::cout << "One 50-DOF solve, error vs iteration (log y):\n\n";
  dadu::report::PlotOptions po;
  po.label = "JT-Serial (fixed gain): " + std::to_string(rj.iterations) +
             " iterations";
  std::cout << dadu::report::plotSeries(rj.error_history, po) << '\n';

  // Quick-IK and Eq-8 on one canvas — the speculation gap.
  po.label = "Eq.8-only vs Quick-IK";
  std::cout << dadu::report::plotMultiSeries(
                   {{"eq8 (" + std::to_string(re.iterations) + " iters)",
                     re.error_history},
                    {"quick-ik (" + std::to_string(rq.iterations) + " iters)",
                     rq.error_history}},
                   po)
            << '\n';

  // Batch throughput across worker counts.
  const auto tasks = dadu::workload::generateTasks(chain, 24);
  std::cout << "Batch throughput, 24 independent solves (quick-ik):\n";
  std::vector<std::pair<std::string, double>> bars;
  for (std::size_t threads : {1u, 2u, 4u}) {
    const auto report = dadu::solveBatchParallel(
        [&] {
          return dadu::ik::makeSolver("quick-ik", chain,
                                      dadu::ik::SolveOptions{});
        },
        tasks, threads);
    bars.emplace_back(std::to_string(threads) + " thread(s)",
                      report.solves_per_second);
  }
  std::cout << dadu::report::barChart(bars, 40, "solves/s") << '\n';

  return rq.converged() ? 0 : 1;
}
