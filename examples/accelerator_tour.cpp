// Accelerator tour: a guided walk through the IKAcc cycle model —
// where the cycles of one solve go (SPU pipeline vs speculative waves
// vs selector), how the Parallel Search Scheduler folds 64 software
// speculations onto 32 physical SSUs, and what the energy model
// reports.  Ends with an SSU-count what-if sweep, the hardware design
// question the scheduler exists to answer.
#include <cstdio>

#include "dadu/dadu.hpp"
#include "dadu/ikacc/scheduler.hpp"

int main() {
  const dadu::kin::Chain chain = dadu::kin::makeSerpentine(100);
  const auto task = dadu::workload::generateTask(chain, 7);

  dadu::ik::SolveOptions options;  // 64 speculations, 1e-2 m, 10k iters

  dadu::acc::AccConfig config;  // 32 SSUs @ 1 GHz (the paper's build)
  dadu::acc::IkAccelerator ikacc(chain, options, config);

  const auto result = ikacc.solve(task.target, task.seed);
  const auto& s = ikacc.lastStats();

  std::printf("IKAcc on %s: %s after %d iterations (error %.4f m)\n\n",
              chain.name().c_str(), dadu::ik::toString(result.status).c_str(),
              result.iterations, result.error);

  std::printf("Structure: %zu SSUs, %d speculations -> %d wave(s)/iteration\n",
              config.num_ssus, options.speculations, s.waves_per_iteration);
  std::printf("Area model: %.2f mm^2 (paper: 2.27 mm^2 @65nm)\n\n",
              config.totalAreaMm2());

  std::printf("Cycle breakdown (total %lld cycles = %.3f ms @%g GHz):\n",
              s.total_cycles, s.time_ms, config.freq_ghz);
  const auto pct = [&](long long c) {
    return 100.0 * static_cast<double>(c) /
           static_cast<double>(s.total_cycles);
  };
  std::printf("  SPU serial process : %10lld  (%5.1f%%)\n", s.spu_cycles,
              pct(s.spu_cycles));
  std::printf("  SSU speculative FK : %10lld  (%5.1f%%)\n", s.ssu_cycles,
              pct(s.ssu_cycles));
  std::printf("  scheduler broadcast: %10lld  (%5.1f%%)\n", s.scheduler_cycles,
              pct(s.scheduler_cycles));
  std::printf("  parameter selector : %10lld  (%5.1f%%)\n", s.selector_cycles,
              pct(s.selector_cycles));
  std::printf("  SSU utilisation    : %5.1f%%\n\n",
              100.0 * s.ssuUtilization(config.num_ssus));

  std::printf("Energy: %.3f mJ dynamic + %.3f mJ leakage = %.3f mJ (%.1f mW "
              "avg; paper: 158.6 mW)\n\n",
              s.dynamic_energy_mj, s.leakage_energy_mj, s.energyMj(),
              s.avg_power_mw);

  // --- What if we built more (or fewer) SSUs? -----------------------
  std::printf("SSU-count what-if (same solve):\n");
  std::printf("  %6s %8s %12s %10s %10s\n", "SSUs", "waves", "time(ms)",
              "mJ", "mm^2");
  for (std::size_t ssus : {8u, 16u, 32u, 64u, 128u}) {
    dadu::acc::AccConfig c = config;
    c.num_ssus = ssus;
    dadu::acc::IkAccelerator variant(chain, options, c);
    (void)variant.solve(task.target, task.seed);
    const auto& vs = variant.lastStats();
    std::printf("  %6zu %8d %12.3f %10.3f %10.2f\n", ssus,
                vs.waves_per_iteration, vs.time_ms, vs.energyMj(),
                c.totalAreaMm2());
  }

  return result.converged() ? 0 : 1;
}
