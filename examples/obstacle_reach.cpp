// Reaching around obstacles: the deployment-side workflow around the
// core solver — collision-filtered IK with restarts, and null-space
// posture shaping that keeps a redundant arm near its rest pose while
// hitting the same targets.
#include <cstdio>

#include "dadu/dadu.hpp"

int main() {
  const auto chain = dadu::kin::makeSerpentine(25);
  const dadu::geom::RobotGeometry body(chain, /*link_radius=*/0.02);

  const auto task = dadu::workload::generateTask(chain, 11);
  std::printf("Robot: %s | target [%.2f, %.2f, %.2f]\n", chain.name().c_str(),
              task.target.x, task.target.y, task.target.z);

  // Two ball obstacles flanking the target.
  const dadu::geom::Obstacles obstacles = {
      {task.target + dadu::linalg::Vec3{0.18, 0.10, 0.0}, 0.08},
      {task.target + dadu::linalg::Vec3{-0.12, -0.15, 0.1}, 0.06},
  };

  // --- Plain Quick-IK: reaches the target, oblivious to obstacles ---
  dadu::ik::QuickIkSolver plain(chain, {});
  const auto r_plain = plain.solve(task.target, task.seed);
  const double clear_plain =
      body.environmentClearance(r_plain.theta, obstacles);
  std::printf("Plain Quick-IK:   %s, obstacle clearance %+.3f m%s\n",
              dadu::ik::toString(r_plain.status).c_str(), clear_plain,
              clear_plain < 0 ? "  << collides" : "");

  // --- Collision-aware wrapper: restarts until a free branch -------
  dadu::geom::CollisionAwareSolver aware(
      std::make_unique<dadu::ik::QuickIkSolver>(chain, dadu::ik::SolveOptions{}),
      body, obstacles, /*margin=*/0.01, /*max_attempts=*/12,
      /*restart_seed=*/3, /*check_self=*/false);
  const auto r_aware = aware.solve(task.target, task.seed);
  std::printf(
      "Collision-aware:  %s after %d attempt(s), clearance %+.3f m\n",
      r_aware.success() ? "free solution" : "no free solution",
      r_aware.attempts, r_aware.clearance);

  // --- Null-space posture shaping ----------------------------------
  dadu::ik::DlsSolver dls(chain, {});
  dadu::ik::NullSpaceDlsSolver shaped(
      chain, {}, dadu::ik::restPostureObjective(chain.zeroConfiguration()),
      /*ns_gain=*/0.5);
  const auto r_dls = dls.solve(task.target, task.seed);
  const auto r_shaped = shaped.solve(task.target, task.seed);
  std::printf(
      "Posture shaping:  plain DLS ends %.2f rad from rest, null-space "
      "DLS %.2f rad (both at the target)\n",
      (r_dls.theta - chain.zeroConfiguration()).norm(),
      (r_shaped.theta - chain.zeroConfiguration()).norm());

  return r_aware.success() && r_shaped.converged() ? 0 : 1;
}
