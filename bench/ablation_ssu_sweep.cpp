// Ablation: number of physical Speculative Search Units.
//
// The paper builds 32 SSUs and schedules 64 software speculations onto
// them in 2 waves.  This bench sweeps the SSU count at fixed
// speculation count (64) and reports latency, energy, area and the
// latency*area product — the design-space view behind the paper's
// 32-SSU choice.
#include <iostream>

#include "bench_common.hpp"
#include "dadu/report/table.hpp"

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv, "ablation_ssu_sweep");
  const int targets = bench::targetCount(args, 10);
  const std::size_t dof = args.quick ? 25 : 100;

  dadu::report::banner(
      std::cout, "Ablation: SSU count at 64 speculations, " +
                     std::to_string(dof) + "-DOF manipulator (" +
                     std::to_string(targets) + " targets)");

  const auto chain = dadu::kin::makeSerpentine(dof);
  const auto tasks = dadu::workload::generateTasks(chain, targets);
  dadu::ik::SolveOptions options;

  dadu::report::Table table({"SSUs", "waves", "ms/solve", "mJ/solve",
                             "mm^2", "ms*mm^2", "SSU util%"});

  for (const std::size_t ssus : {4u, 8u, 16u, 32u, 64u, 128u}) {
    dadu::acc::AccConfig cfg;
    cfg.num_ssus = ssus;
    dadu::acc::IkAccelerator ikacc(chain, options, cfg);

    double ms = 0.0, mj = 0.0, util = 0.0;
    int waves = 0;
    for (const auto& task : tasks) {
      (void)ikacc.solve(task.target, task.seed);
      const auto& s = ikacc.lastStats();
      ms += s.time_ms;
      mj += s.energyMj();
      util += s.ssuUtilization(ssus);
      waves = s.waves_per_iteration;
    }
    const double n = static_cast<double>(tasks.size());
    ms /= n;
    mj /= n;
    util /= n;

    table.addRow({std::to_string(ssus), std::to_string(waves),
                  dadu::report::Table::num(ms, 4),
                  dadu::report::Table::num(mj, 4),
                  dadu::report::Table::num(cfg.totalAreaMm2(), 2),
                  dadu::report::Table::num(ms * cfg.totalAreaMm2(), 3),
                  dadu::report::Table::num(util * 100.0, 1)});
  }

  table.print(std::cout);
  std::cout << "\nExpected: latency halves per SSU doubling until waves hit "
               "1 (64 SSUs), then saturates while area keeps growing — the "
               "latency*area optimum sits near the paper's 32-64.\n";
  return 0;
}
