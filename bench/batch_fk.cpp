// Per-iteration speculation cost: scalar per-candidate FK sweep vs the
// batched SoA kernel, per speculation backend.
//
// This is the workload of Algorithm 1 lines 6-15 — K forward-kinematics
// candidates per Quick-IK iteration — measured per sweep.  The scalar
// baseline reproduces the pre-batching solver loop exactly (axpyInto
// into a reused candidate vector, one Mat4-chain FK pass per
// candidate).  The batched path is measured once per speculation
// backend this binary carries and this CPU supports (scalar/autovec,
// AVX2, AVX-512), plus once for whatever backend runtime dispatch
// picked — the `speculation_dispatched` records carry the chosen
// backend name in their note, and the acceptance bar for the SIMD
// backend PR is dispatched >= autovec at every dof x K (>= 1.3x at
// 100 DOF / K = 64 on AVX2-class hardware).
//
// Usage: batch_fk [--quick] [--json PATH] [--spec-backend NAME]
//   --quick           fewer repetitions (CI smoke)
//   --json P          also write results to P as BENCH_kernels.json records
//   --spec-backend N  force the dispatched backend (like DADU_SPEC_BACKEND)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "dadu/dadu.hpp"
#include "dadu/kinematics/backends/spec_backend.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double g_sink = 0.0;  // defeat dead-code elimination

/// ns per call of `fn`, measured over enough repetitions to exceed
/// `min_seconds` of wall time.
template <typename Fn>
double nsPerOp(Fn&& fn, double min_seconds) {
  fn();  // warm-up
  long long reps = 1;
  for (;;) {
    const auto start = Clock::now();
    for (long long r = 0; r < reps; ++r) fn();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (elapsed >= min_seconds || reps > (1LL << 30))
      return elapsed * 1e9 / static_cast<double>(reps);
    reps = elapsed <= 0.0 ? reps * 16 : reps * 4;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--spec-backend") == 0 && i + 1 < argc) {
      if (!dadu::kin::setSpecBackendOverride(argv[++i])) {
        std::cerr << "unknown or unsupported --spec-backend '" << argv[i]
                  << "'\n";
        return 1;
      }
    } else {
      std::cerr << "usage: batch_fk [--quick] [--json PATH] "
                   "[--spec-backend NAME]\n";
      return 1;
    }
  }
  const double min_seconds = quick ? 0.01 : 0.25;

  // Backends to measure explicitly: every one this binary carries that
  // this CPU can run (allSpecBackends is widest-first; reverse so the
  // table reads scalar -> wider).
  std::vector<const dadu::kin::SpecBackend*> backends;
  for (const dadu::kin::SpecBackend* b : dadu::kin::allSpecBackends())
    if (dadu::kin::specBackendSupported(*b)) backends.insert(backends.begin(), b);
  const std::string dispatched = dadu::kin::activeSpecBackendName();

  std::vector<bench::KernelRecord> records;
  std::cout << "Per-iteration speculation cost (lines 6-15 of Algorithm 1)\n"
            << "dispatched speculation backend: " << dispatched << "\n"
            << "dof    K   percand ns/sweep";
  for (const auto* b : backends) std::cout << "   " << b->name() << " ns/sweep";
  std::cout << "   dispatch speedup\n";

  // dof x K grid, plus the K=512 over-budget corner the walk-slicing
  // fix targets.
  std::vector<std::pair<std::size_t, int>> grid;
  for (const std::size_t dof : {std::size_t{12}, std::size_t{50},
                                std::size_t{100}})
    for (const int k_count : {16, 64, 256}) grid.push_back({dof, k_count});
  grid.push_back({std::size_t{100}, 512});

  for (const auto& [dof, k_count] : grid) {
    const auto chain = dadu::kin::makeSerpentine(dof);
    const auto task = dadu::workload::generateTask(chain, 0);

    // One real serial head supplies representative theta/dtheta/alpha.
    dadu::ik::JtWorkspace ws;
    const auto head =
        dadu::ik::jtIterationHead(chain, task.seed, task.target, ws);
    std::vector<double> alphas(static_cast<std::size_t>(k_count));
    for (int k = 1; k <= k_count; ++k)
      alphas[k - 1] =
          (static_cast<double>(k) / k_count) * head.alpha_base;

    // Scalar baseline: the pre-batching per-candidate loop.
    dadu::linalg::VecX cand(chain.dof());
    const auto scalar_sweep = [&] {
      double acc = 0.0;
      for (int k = 0; k < k_count; ++k) {
        dadu::linalg::axpyInto(alphas[static_cast<std::size_t>(k)],
                               ws.dtheta_base, task.seed, cand);
        const dadu::linalg::Vec3 x =
            dadu::kin::endEffectorPosition(chain, cand);
        acc += (task.target - x).norm();
      }
      g_sink += acc;
    };
    const double scalar_ns = nsPerOp(scalar_sweep, min_seconds);
    records.push_back({"speculation_scalar", static_cast<int>(dof), k_count,
                       scalar_ns, ""});

    // Batched kernel, once per available backend.  The scalar backend
    // is the autovectorized reference — its record keeps the
    // historical "speculation_batched" name so the performance
    // trajectory stays diffable.
    const auto measure = [&](const dadu::kin::SpecBackend* backend) {
      dadu::kin::BatchedForward batch(
          dadu::kin::BatchedForward::Precision::kF64, backend);
      batch.reset(chain, alphas.size());
      return nsPerOp(
          [&] {
            batch.evaluateLanes(chain, task.seed, ws.dtheta_base,
                                alphas.data(), task.target, false, 0,
                                alphas.size());
            g_sink += batch.errors()[0];
          },
          min_seconds);
    };

    std::printf("%3zu  %4d   %15.0f", dof, k_count, scalar_ns);
    double dispatched_ns = 0.0;
    for (const dadu::kin::SpecBackend* backend : backends) {
      const double ns = measure(backend);
      const bool is_scalar = std::strcmp(backend->name(), "scalar") == 0;
      const std::string kernel =
          is_scalar ? "speculation_batched"
                    : std::string("speculation_batched_") + backend->name();
      records.push_back({kernel, static_cast<int>(dof), k_count, ns,
                         std::string("backend=") + backend->name()});
      if (dispatched == backend->name()) dispatched_ns = ns;
      std::printf("   %*.0f", static_cast<int>(std::strlen(backend->name())) + 9,
                  ns);
    }
    if (dispatched_ns == 0.0) dispatched_ns = measure(nullptr);
    records.push_back({"speculation_dispatched", static_cast<int>(dof),
                       k_count, dispatched_ns,
                       std::string("backend=") + dispatched});
    std::printf("   %6.2fx\n", scalar_ns / dispatched_ns);
  }

  if (!json_path.empty()) {
    if (!bench::writeKernelJson(json_path, records)) {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  if (g_sink == 42.0) std::cout << "";  // keep g_sink observable
  return 0;
}
