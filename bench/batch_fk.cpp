// Per-iteration speculation cost: scalar per-candidate FK sweep vs the
// batched SoA kernel, in isolation (Jacobian head excluded).
//
// This is the workload of Algorithm 1 lines 6-15 — K forward-kinematics
// candidates per Quick-IK iteration — measured per sweep.  The scalar
// baseline reproduces the pre-batching solver loop exactly (axpyInto
// into a reused candidate vector, one Mat4-chain FK pass per
// candidate); the batched path is one kin::BatchedForward call.  The
// acceptance bar for the batching PR is >= 3x at 100 DOF / K = 64.
//
// Usage: batch_fk [--quick] [--json PATH]
//   --quick   fewer repetitions (CI smoke)
//   --json P  also write results to P as BENCH_kernels.json records
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "dadu/dadu.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double g_sink = 0.0;  // defeat dead-code elimination

/// ns per call of `fn`, measured over enough repetitions to exceed
/// `min_seconds` of wall time.
template <typename Fn>
double nsPerOp(Fn&& fn, double min_seconds) {
  fn();  // warm-up
  long long reps = 1;
  for (;;) {
    const auto start = Clock::now();
    for (long long r = 0; r < reps; ++r) fn();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (elapsed >= min_seconds || reps > (1LL << 30))
      return elapsed * 1e9 / static_cast<double>(reps);
    reps = elapsed <= 0.0 ? reps * 16 : reps * 4;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: batch_fk [--quick] [--json PATH]\n";
      return 1;
    }
  }
  const double min_seconds = quick ? 0.01 : 0.25;

  std::vector<bench::KernelRecord> records;
  std::cout << "Per-iteration speculation cost (lines 6-15 of Algorithm 1)\n"
            << "dof   K    scalar ns/sweep   batched ns/sweep   speedup\n";

  for (const std::size_t dof : {std::size_t{12}, std::size_t{50},
                                std::size_t{100}}) {
    for (const int k_count : {16, 64}) {
      const auto chain = dadu::kin::makeSerpentine(dof);
      const auto task = dadu::workload::generateTask(chain, 0);

      // One real serial head supplies representative theta/dtheta/alpha.
      dadu::ik::JtWorkspace ws;
      const auto head =
          dadu::ik::jtIterationHead(chain, task.seed, task.target, ws);
      std::vector<double> alphas(static_cast<std::size_t>(k_count));
      for (int k = 1; k <= k_count; ++k)
        alphas[k - 1] =
            (static_cast<double>(k) / k_count) * head.alpha_base;

      // Scalar baseline: the pre-batching per-candidate loop.
      dadu::linalg::VecX cand(chain.dof());
      const auto scalar_sweep = [&] {
        double acc = 0.0;
        for (int k = 0; k < k_count; ++k) {
          dadu::linalg::axpyInto(alphas[static_cast<std::size_t>(k)],
                                 ws.dtheta_base, task.seed, cand);
          const dadu::linalg::Vec3 x =
              dadu::kin::endEffectorPosition(chain, cand);
          acc += (task.target - x).norm();
        }
        g_sink += acc;
      };

      // Batched kernel: one chain walk for all K lanes.
      dadu::kin::BatchedForward batch;
      batch.reset(chain, alphas.size());
      const auto batched_sweep = [&] {
        batch.evaluateLanes(chain, task.seed, ws.dtheta_base, alphas.data(),
                            task.target, false, 0, alphas.size());
        g_sink += batch.errors()[0];
      };

      const double scalar_ns = nsPerOp(scalar_sweep, min_seconds);
      const double batched_ns = nsPerOp(batched_sweep, min_seconds);

      std::printf("%3zu  %3d   %15.0f   %16.0f   %6.2fx\n", dof, k_count,
                  scalar_ns, batched_ns, scalar_ns / batched_ns);
      records.push_back({"speculation_scalar", static_cast<int>(dof), k_count,
                         scalar_ns});
      records.push_back({"speculation_batched", static_cast<int>(dof),
                         k_count, batched_ns});
    }
  }

  if (!json_path.empty()) {
    if (!bench::writeKernelJson(json_path, records)) {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  if (g_sink == 42.0) std::cout << "";  // keep g_sink observable
  return 0;
}
