// Machine-readable bench output: tiny writers for the BENCH_*.json
// performance trajectory files future PRs diff against.
//   BENCH_kernels.json — array of {"kernel", "dof", "k", "ns_per_op"}
//   BENCH_service.json — array of {"metric", "value", "unit"}
#pragma once

#include <string>
#include <vector>

namespace bench {

/// One measured kernel configuration.
struct KernelRecord {
  std::string kernel;   ///< kernel name, e.g. "speculation_batched"
  int dof = 0;          ///< chain degrees of freedom (0 = n/a)
  int k = 0;            ///< speculation/batch count (0 = n/a)
  double ns_per_op = 0.0;  ///< nanoseconds per operation
  /// Optional free-form annotation (e.g. the active speculation
  /// backend for a dispatched measurement); omitted from the JSON when
  /// empty so pre-existing records render unchanged.
  std::string note;
};

/// Write `records` to `path` as pretty-printed JSON.  Returns false if
/// the file cannot be written.
bool writeKernelJson(const std::string& path,
                     const std::vector<KernelRecord>& records);

/// One named scalar (system-level benches: throughput, latency
/// percentiles, hit rates — things that are not per-kernel ns/op).
struct MetricRecord {
  std::string metric;  ///< e.g. "service_solves_per_sec_cache_on"
  double value = 0.0;
  std::string unit;    ///< "solves/s", "ms", "ratio", "iters", ...
};

/// Write `records` to `path` as pretty-printed JSON.  Returns false if
/// the file cannot be written.
bool writeMetricsJson(const std::string& path,
                      const std::vector<MetricRecord>& records);

/// Append `records` to an existing metrics JSON file written by
/// writeMetricsJson (splices before the closing bracket), so multiple
/// bench legs can share one BENCH_*.json.  Falls back to a plain write
/// when `path` does not exist or is not a metrics array.
bool appendMetricsJson(const std::string& path,
                       const std::vector<MetricRecord>& records);

}  // namespace bench
