// Machine-readable bench output: a tiny writer for BENCH_kernels.json,
// the per-kernel performance trajectory file future PRs diff against.
// Schema: a JSON array of {"kernel", "dof", "k", "ns_per_op"} objects.
#pragma once

#include <string>
#include <vector>

namespace bench {

/// One measured kernel configuration.
struct KernelRecord {
  std::string kernel;   ///< kernel name, e.g. "speculation_batched"
  int dof = 0;          ///< chain degrees of freedom (0 = n/a)
  int k = 0;            ///< speculation/batch count (0 = n/a)
  double ns_per_op = 0.0;  ///< nanoseconds per operation
};

/// Write `records` to `path` as pretty-printed JSON.  Returns false if
/// the file cannot be written.
bool writeKernelJson(const std::string& path,
                     const std::vector<KernelRecord>& records);

}  // namespace bench
