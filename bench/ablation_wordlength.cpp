// Ablation: fixed-point word length of the FK datapath.
//
// Sweeps the fractional bit width of a Qm.n FKU (CORDIC trig +
// fixed-point 4x4 products) and reports the worst-case FK deviation
// from double across the DOF ladder — the study that decides the
// narrowest (cheapest) datapath that still meets the paper's 1e-2 m
// accuracy with margin.
#include <iostream>

#include "bench_common.hpp"
#include "dadu/report/table.hpp"

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv, "ablation_wordlength");
  const int samples = bench::targetCount(args, 40);

  dadu::report::banner(std::cout,
                       "Ablation: fixed-point FK word length (max deviation "
                       "in metres over " +
                           std::to_string(samples) + " random configs)");

  const std::vector<int> frac_bits = {12, 16, 20, 24, 28};
  std::vector<std::string> header = {"DOF"};
  for (int f : frac_bits) header.push_back("Q." + std::to_string(f));
  header.push_back("f32");
  dadu::report::Table table(header);

  for (const std::size_t dof : bench::dofLadder(args)) {
    const auto chain = dadu::kin::makeSerpentine(dof);
    std::vector<std::string> row = {std::to_string(dof)};
    for (const int f : frac_bits) {
      const double dev = dadu::kin::fkFixedMaxDeviation(
          chain, dadu::linalg::FixedFormat{f}, samples);
      row.push_back(dadu::report::Table::sci(dev, 1));
    }
    row.push_back(dadu::report::Table::sci(
        dadu::kin::fkF32MaxDeviation(chain, samples), 1));
    table.addRow(std::move(row));
  }

  table.print(std::cout);
  std::cout << "\nExpected: deviation halves per added bit and grows with "
               "DOF; Q.16 already clears the paper's 1e-2 m accuracy, Q.24 "
               "matches FP32.\n";
  return 0;
}
