// Table 3 reproduction: platform details, average power, and the
// derived energy-per-solve comparison of Section 6.3.2.
//
// Paper numbers: Atom ~10 W, TX1 ~4.8 W, IKAcc 158.6 mW @1 V 1 GHz,
// 2.27 mm^2 (65 nm); energy per 100-DOF solve: Atom/SVD ~ >1 J scale,
// TX1 1.49 J, IKAcc 1.92 mJ -> ~776x energy-efficiency over TX1.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "dadu/report/csv.hpp"
#include "dadu/report/table.hpp"

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv, "table3_power");
  const int targets = bench::targetCount(args, 10, 2, 1000);

  const dadu::platform::GpuModelConfig gpu_cfg;
  const dadu::platform::CpuModelConfig atom_cfg;
  const dadu::acc::AccConfig acc_cfg;

  dadu::report::Table platform_table(
      {"Platform", "Technology", "Frequency", "Avg Power", "Area"});
  platform_table.addRow({"Intel Atom (model)", "32nm", "1.86GHz",
                         dadu::report::Table::num(atom_cfg.average_power_w, 1) + "W",
                         "-"});
  platform_table.addRow({"Nvidia TX1 (model)", "20nm", "up to 1.9GHz",
                         dadu::report::Table::num(gpu_cfg.average_power_w, 1) + "W",
                         "-"});

  dadu::report::Table energy_table(
      {"DOF", "Atom J-1-SVD (J)", "TX1 Quick-IK (J)", "IKAcc (mJ)",
       "IKAcc avg power (mW)", "TX1/IKAcc energy"});
  std::unique_ptr<dadu::report::CsvWriter> csv;
  if (args.csv_dir)
    csv = std::make_unique<dadu::report::CsvWriter>(
        bench::csvPath(args, "table3"),
        std::vector<std::string>{"dof", "config", "energy_mj", "power_mw"});

  double ikacc_power_mw = 0.0;
  for (const std::size_t dof : bench::dofLadder(args)) {
    const auto chain = dadu::kin::makeSerpentine(dof);
    const auto tasks = dadu::workload::generateTasks(chain, targets);
    dadu::ik::SolveOptions options;

    // Iteration counts driving the analytic platform models.
    dadu::ik::QuickIkSolver quick(chain, options);
    const auto quick_run = bench::runBatch(quick, tasks);

    dadu::ik::PinvSvdSolver pinv(chain, options);
    const auto pinv_run = bench::runBatch(pinv, tasks);
    double svd_sweeps_per_iter = 0.0;
    {
      dadu::ik::PinvSvdSolver probe(chain, options);
      const auto r = probe.solve(tasks[0].target, tasks[0].seed);
      if (r.iterations > 0)
        svd_sweeps_per_iter = static_cast<double>(probe.lastSvdSweeps()) /
                              static_cast<double>(r.iterations);
    }

    const auto atom_pinv = dadu::platform::estimateCpuPinvSvd(
        atom_cfg, dof, pinv_run.stats.mean_iterations, svd_sweeps_per_iter);
    const auto tx1 = dadu::platform::estimateGpuQuickIk(
        gpu_cfg, dof, quick_run.stats.mean_iterations, options.speculations);

    dadu::acc::IkAccelerator ikacc(chain, options, acc_cfg);
    double acc_mj_sum = 0.0, acc_mw_sum = 0.0;
    for (const auto& task : tasks) {
      (void)ikacc.solve(task.target, task.seed);
      acc_mj_sum += ikacc.lastStats().energyMj();
      acc_mw_sum += ikacc.lastStats().avg_power_mw;
    }
    const double acc_mj = acc_mj_sum / static_cast<double>(tasks.size());
    const double acc_mw = acc_mw_sum / static_cast<double>(tasks.size());
    ikacc_power_mw = acc_mw;

    energy_table.addRow(
        {std::to_string(dof), dadu::report::Table::num(atom_pinv.energy_j, 3),
         dadu::report::Table::num(tx1.energy_j, 3),
         dadu::report::Table::num(acc_mj, 3),
         dadu::report::Table::num(acc_mw, 1),
         dadu::report::Table::num(
             acc_mj > 0.0 ? tx1.energy_j * 1e3 / acc_mj : 0.0, 0) +
             "x"});

    if (csv) {
      csv->addRow({std::to_string(dof), "atom-pinv-svd",
                   dadu::report::Table::num(atom_pinv.energy_j * 1e3, 3),
                   dadu::report::Table::num(atom_cfg.average_power_w * 1e3, 0)});
      csv->addRow({std::to_string(dof), "tx1-quick-ik",
                   dadu::report::Table::num(tx1.energy_j * 1e3, 3),
                   dadu::report::Table::num(gpu_cfg.average_power_w * 1e3, 0)});
      csv->addRow({std::to_string(dof), "ikacc",
                   dadu::report::Table::num(acc_mj, 4),
                   dadu::report::Table::num(acc_mw, 1)});
    }
  }

  platform_table.addRow(
      {"IKAcc (sim)", "65nm 1.1V", "1GHz",
       dadu::report::Table::num(ikacc_power_mw, 1) + "mW",
       dadu::report::Table::num(acc_cfg.totalAreaMm2(), 2) + "mm^2"});

  dadu::report::banner(std::cout, "Table 3: hardware platform details");
  platform_table.print(std::cout);
  dadu::report::banner(std::cout,
                       "Energy per solve across the DOF ladder (" +
                           std::to_string(targets) + " targets/cell)");
  energy_table.print(std::cout);
  std::cout << "\nPaper shape check: IKAcc average power in the hundreds of "
               "mW (paper: 158.6 mW) and energy per solve ~3 orders of "
               "magnitude below the TX1 (paper: 776x).\n";
  return 0;
}
