// Real-time tracking bench (ours): the paper's motivating claim is
// that high-DOF IK must fit a control tick ("the IK solver in ROS
// takes over 1 second for 100 DOF ... cannot satisfy real-time
// control").  This bench warm-start-tracks a circular end-effector
// path and reports per-waypoint latency statistics per platform: host
// CPU (measured), TX1 (modelled) and IKAcc (simulated) — and the
// control rate each sustains at the worst waypoint.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "dadu/report/table.hpp"

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv, "realtime_tracking");
  const int waypoints = bench::targetCount(args, 40, 8, 200);

  dadu::report::banner(std::cout,
                       "Real-time trajectory tracking: per-waypoint IK "
                       "latency (" +
                           std::to_string(waypoints) + " waypoints/circle)");

  dadu::report::Table table({"DOF", "host mean ms", "host max ms",
                             "TX1 max ms (model)", "IKAcc max ms (sim)",
                             "IKAcc control rate"});

  for (const std::size_t dof : bench::dofLadder(args)) {
    const auto chain = dadu::kin::makeSerpentine(dof);
    auto path = dadu::workload::circleTrajectory(
        {0.5 * chain.maxReach(), 0.0, 0.3 * chain.maxReach()},
        0.25 * chain.maxReach(), dadu::linalg::Vec3::unitX(),
        dadu::linalg::Vec3::unitZ(), waypoints);
    path = dadu::workload::fitToWorkspace(chain, std::move(path));

    dadu::ik::SolveOptions options;
    dadu::linalg::VecX seed(chain.dof());
    for (std::size_t i = 0; i < seed.size(); ++i)
      seed[i] = (i % 2 == 0) ? 0.05 : -0.04;

    // Host CPU, measured per waypoint.
    dadu::ik::QuickIkSolver host(chain, options);
    double host_mean = 0.0, host_max = 0.0;
    double max_iterations = 0.0;
    {
      dadu::linalg::VecX warm = seed;
      for (const auto& target : path) {
        dadu::platform::WallTimer timer;
        const auto r = host.solve(target, warm);
        const double ms = timer.elapsedMs();
        host_mean += ms;
        host_max = std::max(host_max, ms);
        max_iterations = std::max(max_iterations,
                                  static_cast<double>(r.iterations));
        warm = r.theta;
      }
      host_mean /= static_cast<double>(path.size());
    }

    // IKAcc, simulated per waypoint.
    dadu::acc::IkAccelerator ikacc(chain, options);
    double acc_max = 0.0;
    {
      dadu::linalg::VecX warm = seed;
      for (const auto& target : path) {
        const auto r = ikacc.solve(target, warm);
        acc_max = std::max(acc_max, ikacc.lastStats().time_ms);
        warm = r.theta;
      }
    }

    // TX1 model at the worst waypoint's iteration count.
    const auto tx1 = dadu::platform::estimateGpuQuickIk(
        {}, dof, max_iterations, options.speculations);

    const double rate_hz = acc_max > 0.0 ? 1000.0 / acc_max : 0.0;
    table.addRow({std::to_string(dof), dadu::report::Table::num(host_mean, 3),
                  dadu::report::Table::num(host_max, 3),
                  dadu::report::Table::num(tx1.time_ms, 3),
                  dadu::report::Table::num(acc_max, 4),
                  dadu::report::Table::num(rate_hz, 0) + " Hz"});
  }

  table.print(std::cout);
  std::cout << "\nExpected: warm-started IKAcc tracking sustains kHz-class "
               "control at every DOF — the real-time claim of the paper's "
               "introduction — while the TX1 model sits near the 100 Hz "
               "boundary at high DOF.\n";
  return 0;
}
