// Throughput-mode analysis (ours): IKAcc with two IK problems in
// flight (double-buffered SPU/SSU phases) — the batch regime of a
// multi-arm controller or a motion planner's query stream.
#include <iostream>

#include "bench_common.hpp"
#include "dadu/ikacc/throughput.hpp"
#include "dadu/report/table.hpp"

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv, "batch_throughput");
  const int targets = bench::targetCount(args, 15);

  dadu::report::banner(std::cout,
                       "IKAcc batch throughput: single-problem vs "
                       "double-buffered (" +
                           std::to_string(targets) + " targets/cell)");

  dadu::report::Table table({"DOF", "iters/solve", "solves/s single",
                             "solves/s pipelined", "overlap speedup",
                             "SSU util single"});

  const dadu::acc::AccConfig cfg;
  for (const std::size_t dof : bench::dofLadder(args)) {
    const auto chain = dadu::kin::makeSerpentine(dof);
    const auto tasks = dadu::workload::generateTasks(chain, targets);
    dadu::ik::SolveOptions options;

    // Mean iterations and SSU utilisation from the solve simulator.
    dadu::acc::IkAccelerator sim(chain, options, cfg);
    double iters = 0.0, util = 0.0;
    for (const auto& task : tasks) {
      const auto r = sim.solve(task.target, task.seed);
      iters += r.iterations;
      util += sim.lastStats().ssuUtilization(cfg.num_ssus);
    }
    iters /= static_cast<double>(tasks.size());
    util /= static_cast<double>(tasks.size());

    const auto est = dadu::acc::estimateBatchThroughput(
        cfg, dof, options.speculations, iters);
    table.addRow({std::to_string(dof), dadu::report::Table::num(iters, 1),
                  dadu::report::Table::num(est.solves_per_sec_single, 0),
                  dadu::report::Table::num(est.solves_per_sec_pipelined, 0),
                  dadu::report::Table::num(est.overlap_speedup, 2) + "x",
                  dadu::report::Table::num(util * 100.0, 1) + "%"});
  }

  table.print(std::cout);
  std::cout << "\nExpected: overlap buys back the SPU's share of the "
               "iteration (~1.2-1.5x), largest where the serial head is the "
               "biggest fraction; utilisation rises accordingly.\n";
  return 0;
}
