#include "bench_json.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace bench {

namespace {

void writeMetricRecords(std::ostream& out,
                        const std::vector<MetricRecord>& records) {
  for (std::size_t i = 0; i < records.size(); ++i) {
    const MetricRecord& r = records[i];
    out << "  {\"metric\": \"" << r.metric << "\", \"value\": "
        << std::setprecision(6) << std::fixed << r.value << ", \"unit\": \""
        << r.unit << "\"}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
}

}  // namespace

bool writeKernelJson(const std::string& path,
                     const std::vector<KernelRecord>& records) {
  std::ofstream out(path);
  if (!out) return false;
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const KernelRecord& r = records[i];
    out << "  {\"kernel\": \"" << r.kernel << "\", \"dof\": " << r.dof
        << ", \"k\": " << r.k << ", \"ns_per_op\": " << std::setprecision(6)
        << std::fixed << r.ns_per_op;
    if (!r.note.empty()) out << ", \"note\": \"" << r.note << "\"";
    out << "}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return out.good();
}

bool writeMetricsJson(const std::string& path,
                      const std::vector<MetricRecord>& records) {
  std::ofstream out(path);
  if (!out) return false;
  out << "[\n";
  writeMetricRecords(out, records);
  out << "]\n";
  return out.good();
}

bool appendMetricsJson(const std::string& path,
                       const std::vector<MetricRecord>& records) {
  std::ifstream in(path);
  if (!in) return writeMetricsJson(path, records);
  std::ostringstream buf;
  buf << in.rdbuf();
  in.close();
  std::string existing = buf.str();
  const std::size_t close = existing.rfind(']');
  if (close == std::string::npos) return writeMetricsJson(path, records);
  existing.erase(close);
  // Trim trailing whitespace so the comma lands right after the last
  // record, keeping the file diff-stable with writeMetricsJson output.
  while (!existing.empty() &&
         (existing.back() == '\n' || existing.back() == ' '))
    existing.pop_back();
  const bool had_records = !existing.empty() && existing.back() == '}';

  std::ofstream out(path);
  if (!out) return false;
  out << existing;
  if (had_records && !records.empty()) out << ",";
  out << "\n";
  writeMetricRecords(out, records);
  out << "]\n";
  return out.good();
}

}  // namespace bench
