#include "bench_json.hpp"

#include <fstream>
#include <iomanip>

namespace bench {

bool writeKernelJson(const std::string& path,
                     const std::vector<KernelRecord>& records) {
  std::ofstream out(path);
  if (!out) return false;
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const KernelRecord& r = records[i];
    out << "  {\"kernel\": \"" << r.kernel << "\", \"dof\": " << r.dof
        << ", \"k\": " << r.k << ", \"ns_per_op\": " << std::setprecision(6)
        << std::fixed << r.ns_per_op;
    if (!r.note.empty()) out << ", \"note\": \"" << r.note << "\"";
    out << "}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return out.good();
}

bool writeMetricsJson(const std::string& path,
                      const std::vector<MetricRecord>& records) {
  std::ofstream out(path);
  if (!out) return false;
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const MetricRecord& r = records[i];
    out << "  {\"metric\": \"" << r.metric << "\", \"value\": "
        << std::setprecision(6) << std::fixed << r.value << ", \"unit\": \""
        << r.unit << "\"}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return out.good();
}

}  // namespace bench
