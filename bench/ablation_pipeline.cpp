// Ablation: the SPU pipeline restructuring of Fig. 3.
//
// The paper fuses the serial process's four loops and pipelines them
// ({i-1}TiC -> {1}TiC -> JiC -> JJTEC), eliminating intermediate
// stores.  This bench compares simulated solve latency with the
// pipelined SPU against the original unpipelined flow, per DOF.
#include <iostream>

#include "bench_common.hpp"
#include "dadu/ikacc/spu.hpp"
#include "dadu/report/table.hpp"

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv, "ablation_pipeline");
  const int targets = bench::targetCount(args, 10);

  dadu::report::banner(std::cout,
                       "Ablation: SPU pipelining (Fig. 3), " +
                           std::to_string(targets) + " targets/cell");

  dadu::report::Table table({"DOF", "SPU cyc (pipe)", "SPU cyc (orig)",
                             "solve ms (pipe)", "solve ms (orig)", "speedup"});

  for (const std::size_t dof : bench::dofLadder(args)) {
    const auto chain = dadu::kin::makeSerpentine(dof);
    const auto tasks = dadu::workload::generateTasks(chain, targets);
    dadu::ik::SolveOptions options;

    dadu::acc::AccConfig piped;
    piped.pipelined_spu = true;
    dadu::acc::AccConfig orig = piped;
    orig.pipelined_spu = false;

    const auto meanMs = [&](const dadu::acc::AccConfig& cfg) {
      dadu::acc::IkAccelerator ikacc(chain, options, cfg);
      double sum = 0.0;
      for (const auto& task : tasks) {
        (void)ikacc.solve(task.target, task.seed);
        sum += ikacc.lastStats().time_ms;
      }
      return sum / static_cast<double>(tasks.size());
    };

    const double ms_pipe = meanMs(piped);
    const double ms_orig = meanMs(orig);

    table.addRow(
        {std::to_string(dof),
         dadu::report::Table::integer(dadu::acc::spuPipelinedCycles(piped, dof)),
         dadu::report::Table::integer(
             dadu::acc::spuUnpipelinedCycles(orig, dof)),
         dadu::report::Table::num(ms_pipe, 4),
         dadu::report::Table::num(ms_orig, 4),
         dadu::report::Table::num(ms_orig / ms_pipe, 2) + "x"});
  }

  table.print(std::cout);
  std::cout << "\nExpected: pipelining cuts SPU cycles ~4x; end-to-end gain "
               "is smaller because speculative waves dominate the "
               "iteration.\n";
  return 0;
}
