// Ablation: step-size strategy for the Jacobian-transpose family.
//
// Compares, across the DOF ladder:
//   * the original fixed stability-safe gain (JT-Serial, the paper's
//     baseline — Section 4 explains why a fixed alpha must be small),
//   * alpha_base from Eq. 8 alone, no speculation (jt-eq8),
//   * Eq. 8 + heavy-ball momentum (the acceleration that needs no
//     parallel hardware — the road not taken),
//   * Quick-IK's speculative search over (0, alpha_base] (Eq. 9),
//   * a widened speculation space (0, 2*alpha_base] probing the
//     paper's choice of capping the space at alpha_base.
#include <iostream>

#include "bench_common.hpp"
#include "dadu/report/table.hpp"

namespace {

// Quick-IK variant whose speculation space is (0, scale*alpha_base].
// Used to probe the sensitivity of the paper's speculation-space
// choice (scale = 1).
class ScaledQuickIk final : public dadu::ik::IkSolver {
 public:
  ScaledQuickIk(dadu::kin::Chain chain, dadu::ik::SolveOptions options,
                double scale)
      : chain_(std::move(chain)), options_(options), scale_(scale) {
    theta_k_.assign(options_.speculations, dadu::linalg::VecX(chain_.dof()));
    error_k_.assign(options_.speculations, 0.0);
  }

  dadu::ik::SolveResult solve(const dadu::linalg::Vec3& target,
                              const dadu::linalg::VecX& seed) override {
    dadu::ik::validateInputs(chain_, target, seed);
    const int max_spec = options_.speculations;
    dadu::ik::SolveResult result;
    result.theta = seed;
    for (int iter = 0; iter < options_.max_iterations; ++iter) {
      const auto head =
          dadu::ik::jtIterationHead(chain_, result.theta, target, ws_);
      result.error = head.error;
      if (head.error < options_.accuracy) {
        result.status = dadu::ik::Status::kConverged;
        return result;
      }
      if (head.stalled) {
        result.status = dadu::ik::Status::kStalled;
        return result;
      }
      for (int k = 1; k <= max_spec; ++k) {
        const double alpha =
            (static_cast<double>(k) / max_spec) * scale_ * head.alpha_base;
        dadu::linalg::axpyInto(alpha, ws_.dtheta_base, result.theta,
                               theta_k_[k - 1]);
        const auto x =
            dadu::kin::endEffectorPosition(chain_, theta_k_[k - 1]);
        error_k_[k - 1] = (target - x).norm();
      }
      result.speculation_load += max_spec;
      ++result.iterations;
      std::size_t best = 0;
      for (std::size_t i = 1; i < error_k_.size(); ++i)
        if (error_k_[i] < error_k_[best]) best = i;
      result.theta = theta_k_[best];
      result.error = error_k_[best];
      if (result.error < options_.accuracy) {
        result.status = dadu::ik::Status::kConverged;
        return result;
      }
    }
    result.status = dadu::ik::Status::kMaxIterations;
    return result;
  }

  std::string name() const override { return "quick-ik-scaled"; }
  const dadu::kin::Chain& chain() const override { return chain_; }
  const dadu::ik::SolveOptions& options() const override { return options_; }

 private:
  dadu::kin::Chain chain_;
  dadu::ik::SolveOptions options_;
  double scale_;
  dadu::ik::JtWorkspace ws_;
  std::vector<dadu::linalg::VecX> theta_k_;
  std::vector<double> error_k_;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv, "ablation_alpha");
  const int targets = bench::targetCount(args, 15);

  dadu::report::banner(std::cout,
                       "Ablation: step-size strategy (" +
                           std::to_string(targets) + " targets/cell, mean "
                           "iterations; conv% in parentheses)");

  dadu::report::Table table({"DOF", "fixed gain (orig)", "Eq.8 alpha",
                             "Eq.8+momentum", "Quick-IK", "spec x2 space"});

  for (const std::size_t dof : bench::dofLadder(args)) {
    const auto chain = dadu::kin::makeSerpentine(dof);
    const auto tasks = dadu::workload::generateTasks(chain, targets);
    dadu::ik::SolveOptions options;

    const auto cell = [&](dadu::ik::IkSolver& s) {
      const auto run = bench::runBatch(s, tasks);
      return dadu::report::Table::num(run.stats.mean_iterations, 1) + " (" +
             dadu::report::Table::num(run.stats.convergenceRate() * 100, 0) +
             "%)";
    };

    dadu::ik::JtSerialSolver fixed(chain, options);
    dadu::ik::JtEq8Solver eq8(chain, options);
    dadu::ik::JtMomentumSolver momentum(chain, options);
    dadu::ik::QuickIkSolver quick(chain, options);
    ScaledQuickIk wide(chain, options, 2.0);

    table.addRow({std::to_string(dof), cell(fixed), cell(eq8),
                  cell(momentum), cell(quick), cell(wide)});
  }

  table.print(std::cout);
  std::cout << "\nExpected: the fixed gain needs orders of magnitude more "
               "iterations as DOF grows; Eq. 8 closes most of the gap; "
               "speculation wins outright; widening the space past "
               "alpha_base gives little.\n";
  return 0;
}
