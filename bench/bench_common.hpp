// Shared harness for the paper-reproduction benches: command-line
// handling, batch runners and the DOF ladder.
//
// Every bench accepts:
//   --targets N   targets per (solver, DOF) cell (default: bench-specific)
//   --full        paper scale (1000 targets; slow on one core)
//   --csv DIR     also write results as CSV into DIR
//   --quick       tiny run for smoke testing / CI
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dadu/dadu.hpp"

namespace bench {

struct Args {
  int targets = 0;           ///< 0 = use the bench's default
  bool full = false;
  bool quick = false;
  std::optional<std::string> csv_dir;
};

/// Parse known flags; exits with a usage message on unknown flags.
Args parseArgs(int argc, char** argv, const std::string& bench_name);

/// Effective target count given defaults and flags.
int targetCount(const Args& args, int def, int quick_def = 3,
                int full_def = 1000);

/// Run `solver` over `tasks`, returning per-solve results and filling
/// wall-time statistics.
struct BatchRun {
  dadu::ik::BatchStats stats;
  std::vector<dadu::ik::SolveResult> results;
};
BatchRun runBatch(dadu::ik::IkSolver& solver,
                  const std::vector<dadu::workload::IkTask>& tasks);

/// The paper's DOF ladder as a vector (trimmed under --quick).
std::vector<std::size_t> dofLadder(const Args& args);

/// CSV path helper: "<dir>/<name>.csv".
std::string csvPath(const Args& args, const std::string& name);

}  // namespace bench
