// Ablation: datapath precision of the speculative FK units.
//
// An accelerator implementer must choose the FKU's arithmetic width.
// This bench runs Quick-IK with the speculative FK evaluated in FP32
// (as a lean 65 nm datapath would) against the FP64 reference, across
// the DOF ladder, reporting iteration counts, convergence and the raw
// f32-vs-f64 FK deviation — evidence that single precision is safe at
// the paper's 1e-2 m accuracy.
#include <iostream>

#include "bench_common.hpp"
#include "dadu/report/table.hpp"

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv, "ablation_precision");
  const int targets = bench::targetCount(args, 15);

  dadu::report::banner(std::cout,
                       "Ablation: FP32 vs FP64 speculative datapath (" +
                           std::to_string(targets) + " targets/cell)");

  dadu::report::Table table({"DOF", "fk dev f32 (m)", "iters f64",
                             "iters f32", "conv% f64", "conv% f32"});

  for (const std::size_t dof : bench::dofLadder(args)) {
    const auto chain = dadu::kin::makeSerpentine(dof);
    const auto tasks = dadu::workload::generateTasks(chain, targets);
    dadu::ik::SolveOptions options;

    dadu::ik::QuickIkSolver f64(chain, options);
    dadu::ik::QuickIkF32Solver f32(chain, options);
    const auto run64 = bench::runBatch(f64, tasks);
    const auto run32 = bench::runBatch(f32, tasks);

    table.addRow(
        {std::to_string(dof),
         dadu::report::Table::sci(dadu::kin::fkF32MaxDeviation(chain, 100), 1),
         dadu::report::Table::num(run64.stats.mean_iterations, 1),
         dadu::report::Table::num(run32.stats.mean_iterations, 1),
         dadu::report::Table::num(run64.stats.convergenceRate() * 100, 0),
         dadu::report::Table::num(run32.stats.convergenceRate() * 100, 0)});
  }

  table.print(std::cout);
  std::cout << "\nExpected: f32 FK deviates by <1e-4 m even at 100 DOF — "
               "5 orders below the 1e-2 m target — so iterations and "
               "convergence match the f64 solver.\n";
  return 0;
}
