// Figure 4 reproduction: Quick-IK iteration count vs the number of
// speculations (16, 32, 64, 128) for each DOF in the paper's ladder.
//
// Paper shape: iterations fall steeply as speculations grow, with
// strongly diminishing returns after 64 — the basis of the paper's
// choice of Max = 64.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "dadu/report/csv.hpp"
#include "dadu/report/table.hpp"

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv, "fig4_speculations");
  const int targets = bench::targetCount(args, 25);
  const std::vector<int> speculation_ladder = {16, 32, 64, 128};

  dadu::report::banner(std::cout,
                       "Figure 4: Quick-IK iterations vs number of "
                       "speculations (" +
                           std::to_string(targets) + " targets/cell)");

  dadu::report::Table table({"DOF", "spec=16", "spec=32", "spec=64",
                             "spec=128"});
  std::unique_ptr<dadu::report::CsvWriter> csv;
  if (args.csv_dir)
    csv = std::make_unique<dadu::report::CsvWriter>(
        bench::csvPath(args, "fig4"),
        std::vector<std::string>{"dof", "speculations", "mean_iterations",
                                 "convergence_rate"});

  for (const std::size_t dof : bench::dofLadder(args)) {
    const auto chain = dadu::kin::makeSerpentine(dof);
    const auto tasks = dadu::workload::generateTasks(chain, targets);

    std::vector<std::string> row{std::to_string(dof)};
    for (const int spec : speculation_ladder) {
      dadu::ik::SolveOptions options;
      options.speculations = spec;
      dadu::ik::QuickIkSolver solver(chain, options);
      const auto run = bench::runBatch(solver, tasks);
      row.push_back(dadu::report::Table::num(run.stats.mean_iterations, 1));
      if (csv)
        csv->addRow({std::to_string(dof), std::to_string(spec),
                     dadu::report::Table::num(run.stats.mean_iterations, 2),
                     dadu::report::Table::num(run.stats.convergenceRate(), 3)});
    }
    table.addRow(std::move(row));
  }

  table.print(std::cout);
  std::cout << "\nPaper shape check: iterations decrease with speculations;"
               "\n64 -> 128 should give only a marginal further reduction.\n";
  return 0;
}
