// Ablation: FKU 4x4-multiply latency.
//
// Section 5.2's HLS trade-off: a fully parallel 4x4 multiply (16+
// multipliers) finishes in a few cycles but costs area/power; the
// paper's block uses "a few multipliers and adders" and takes tens of
// cycles.  This bench sweeps that latency and shows its effect on
// end-to-end solve time — the FKU sits on the critical path of every
// speculative search, so the sensitivity is nearly linear.
#include <iostream>

#include "bench_common.hpp"
#include "dadu/report/table.hpp"

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv, "ablation_fku_latency");
  const int targets = bench::targetCount(args, 10);
  const std::size_t dof = args.quick ? 25 : 100;

  dadu::report::banner(std::cout,
                       "Ablation: FKU matmul latency (" +
                           std::to_string(dof) + "-DOF, " +
                           std::to_string(targets) + " targets)");

  const auto chain = dadu::kin::makeSerpentine(dof);
  const auto tasks = dadu::workload::generateTasks(chain, targets);
  dadu::ik::SolveOptions options;

  dadu::report::Table table({"mm4 cycles", "ms/solve", "mJ/solve",
                             "vs 24-cycle"});
  const auto meanCost = [&](int mm4) {
    dadu::acc::AccConfig cfg;
    cfg.mm4_cycles = mm4;
    dadu::acc::IkAccelerator ikacc(chain, options, cfg);
    double ms = 0.0, mj = 0.0;
    for (const auto& task : tasks) {
      (void)ikacc.solve(task.target, task.seed);
      ms += ikacc.lastStats().time_ms;
      mj += ikacc.lastStats().energyMj();
    }
    return std::pair{ms / static_cast<double>(tasks.size()),
                     mj / static_cast<double>(tasks.size())};
  };

  const double baseline_ms = meanCost(24).first;  // the paper-like block
  for (const int mm4 : {4, 8, 16, 24, 32, 48}) {
    const auto [ms, mj] = meanCost(mm4);
    table.addRow({std::to_string(mm4), dadu::report::Table::num(ms, 4),
                  dadu::report::Table::num(mj, 4),
                  dadu::report::Table::num(ms / baseline_ms, 2) + "x"});
  }

  table.print(std::cout);
  std::cout << "\nExpected: solve time tracks FKU latency almost linearly "
               "(the FK chain dominates each speculation); energy is nearly "
               "flat (op counts unchanged, only leakage-time varies).\n";
  return 0;
}
