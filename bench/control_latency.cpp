// System-level bench (ours): what solver latency costs in tracking
// accuracy — the paper's real-time argument made quantitative.
//
// A 1 kHz controller tracks a circular reference with warm-started
// Quick-IK; the IK result arrives `latency` after it was requested.
// We sweep the latencies of Table 2's platforms (IKAcc simulated, TX1
// modelled, host/Atom CPU measured-modelled, plus the ~1 s ROS figure
// from the introduction) and report steady-state task error.
#include <cmath>
#include <iostream>
#include <numbers>

#include "bench_common.hpp"
#include "dadu/report/table.hpp"
#include "dadu/simulation/control_loop.hpp"

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv, "control_latency");
  const std::size_t dof = args.quick ? 25 : 100;
  const double duration = args.quick ? 2.0 : 4.0;

  const auto chain = dadu::kin::makeSerpentine(dof);
  dadu::linalg::VecX q0(chain.dof());
  for (std::size_t i = 0; i < q0.size(); ++i)
    q0[i] = (i % 2 == 0) ? 0.15 : -0.1;

  const dadu::linalg::Vec3 center{0.45 * chain.maxReach(), 0.0,
                                  0.25 * chain.maxReach()};
  const double radius = 0.15 * chain.maxReach();
  const dadu::sim::Reference reference = [&](double t) {
    constexpr double kOmega = 2.0 * std::numbers::pi / 4.0;
    return center + dadu::linalg::Vec3{radius * std::cos(kOmega * t),
                                       radius * std::sin(kOmega * t), 0.0};
  };

  dadu::ik::SolveOptions options;
  options.accuracy = 5e-3;
  dadu::ik::QuickIkSolver solver(chain, options);
  const dadu::sim::IkOracle oracle =
      [&](const dadu::linalg::Vec3& target, const dadu::linalg::VecX& warm) {
        return solver.solve(target, warm).theta;
      };

  dadu::report::banner(
      std::cout, "Tracking error vs IK latency (" + std::to_string(dof) +
                     "-DOF, 1 kHz controller, " +
                     dadu::report::Table::num(duration, 0) + " s circle)");

  struct Platform {
    const char* name;
    double latency_s;
  };
  const Platform platforms[] = {
      {"IKAcc (sim, Table 2)", 0.5e-3},
      {"TX1 (model, Table 2)", 7e-3},
      {"host CPU Quick-IK", 25e-3},
      {"Atom CPU Quick-IK (model)", 260e-3},
      {"ROS/KDL at 100 DOF (paper intro)", 1.0},
  };

  dadu::report::Table table(
      {"platform", "latency", "steady RMS err (m)", "max err (m)",
       "IK solves"});
  for (const Platform& p : platforms) {
    dadu::sim::ControlLoopConfig config;
    config.solver_latency_s = p.latency_s;
    config.duration_s = duration;
    const auto r = dadu::sim::simulateTracking(chain, reference, oracle, q0,
                                               config);
    // Steady state: second half of the trace.
    double sq = 0.0;
    const std::size_t half = r.error_trace.size() / 2;
    for (std::size_t k = half; k < r.error_trace.size(); ++k)
      sq += r.error_trace[k] * r.error_trace[k];
    const double steady =
        std::sqrt(sq / static_cast<double>(r.error_trace.size() - half));

    table.addRow({p.name,
                  dadu::report::Table::num(p.latency_s * 1e3, 1) + " ms",
                  dadu::report::Table::num(steady, 4),
                  dadu::report::Table::num(r.max_error, 3),
                  dadu::report::Table::integer(r.ik_solves)});
  }

  table.print(std::cout);
  std::cout << "\nExpected: error grows monotonically with latency; at the "
               "paper's ROS-scale latency the arm effectively cannot track, "
               "while IKAcc-class latency makes IK a non-factor.\n";
  return 0;
}
