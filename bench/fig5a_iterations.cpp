// Figure 5(a) reproduction: iterations to converge for JT-Serial,
// J^-1-SVD and JT-Speculation (Quick-IK, 64 speculations) across the
// DOF ladder, 1e-2 m accuracy.
//
// Paper shape (log axis): JT-Serial needs thousands of iterations,
// the pseudoinverse tens, and Quick-IK cuts JT-Serial down ~97% to the
// pseudoinverse's level.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "dadu/report/csv.hpp"
#include "dadu/report/table.hpp"

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv, "fig5a_iterations");
  const int targets = bench::targetCount(args, 25);

  dadu::report::banner(
      std::cout, "Figure 5(a): iterations under various DOF manipulators (" +
                     std::to_string(targets) + " targets/cell)");

  dadu::report::Table table({"DOF", "JT-Serial", "J-1-SVD", "JT-Speculation",
                             "reduction vs JT"});
  std::unique_ptr<dadu::report::CsvWriter> csv;
  if (args.csv_dir)
    csv = std::make_unique<dadu::report::CsvWriter>(
        bench::csvPath(args, "fig5a"),
        std::vector<std::string>{"dof", "solver", "mean_iterations",
                                 "convergence_rate"});

  for (const std::size_t dof : bench::dofLadder(args)) {
    const auto chain = dadu::kin::makeSerpentine(dof);
    const auto tasks = dadu::workload::generateTasks(chain, targets);
    dadu::ik::SolveOptions options;  // paper defaults

    double jt_iters = 0.0, svd_iters = 0.0, quick_iters = 0.0;
    for (const char* name : {"jt-serial", "pinv-svd", "quick-ik"}) {
      auto solver = dadu::ik::makeSolver(name, chain, options);
      const auto run = bench::runBatch(*solver, tasks);
      if (std::string(name) == "jt-serial") jt_iters = run.stats.mean_iterations;
      if (std::string(name) == "pinv-svd") svd_iters = run.stats.mean_iterations;
      if (std::string(name) == "quick-ik") quick_iters = run.stats.mean_iterations;
      if (csv)
        csv->addRow({std::to_string(dof), name,
                     dadu::report::Table::num(run.stats.mean_iterations, 2),
                     dadu::report::Table::num(run.stats.convergenceRate(), 3)});
    }

    const double reduction =
        jt_iters > 0.0 ? (1.0 - quick_iters / jt_iters) * 100.0 : 0.0;
    table.addRow({std::to_string(dof), dadu::report::Table::num(jt_iters, 1),
                  dadu::report::Table::num(svd_iters, 1),
                  dadu::report::Table::num(quick_iters, 1),
                  dadu::report::Table::num(reduction, 1) + "%"});
  }

  table.print(std::cout);
  std::cout << "\nPaper shape check: Quick-IK reduces JT-Serial iterations "
               "by ~97%, down to the pseudoinverse's level.\n";
  return 0;
}
