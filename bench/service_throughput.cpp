// Serving-layer throughput benchmark: an open-loop arrival workload
// against a live IkService, with the warm-start seed cache on vs off.
//
// Three measurements on the same clustered-target workload (the
// traffic shape real IK services see — pick points, shelves, tool
// poses — and the one a seed cache exists for):
//
//   1. baseline: dadu::solveBatchParallel on the identical tasks (the
//      pre-service dispatch path; the service must sustain >= this),
//   2. service, cache off: queueing overhead in isolation,
//   3. service, cache on: adds warm starting; reports hit rate and the
//      drop in mean iterations.
//
// Usage: service_throughput [--quick] [--requests N] [--workers W]
//                           [--clusters C] [--json PATH]
//   --json P  write the results to P as BENCH_service.json records
#include <algorithm>
#include <cstring>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "dadu/dadu.hpp"

namespace {

struct RunResult {
  double solves_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_iterations = 0.0;
  double hit_rate = 0.0;
  dadu::service::ServiceStats stats;  ///< full snapshot (histograms incl.)
};

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

RunResult runService(const dadu::kin::Chain& chain,
                     const std::vector<dadu::workload::IkTask>& tasks,
                     std::size_t workers, bool cache_on) {
  namespace service = dadu::service;
  service::ServiceConfig config;
  config.workers = workers;
  config.queue_capacity = tasks.size();
  config.enable_seed_cache = cache_on;

  dadu::ik::SolveOptions options;  // paper defaults
  service::IkService svc(
      [&] { return dadu::ik::makeSolver("quick-ik", chain, options); }, config);

  dadu::platform::WallTimer timer;
  std::vector<std::future<service::Response>> futures;
  futures.reserve(tasks.size());
  for (const auto& task : tasks)
    futures.push_back(svc.submit({.target = task.target, .seed = task.seed}));

  std::vector<double> latencies;
  latencies.reserve(futures.size());
  long long iterations = 0;
  for (auto& f : futures) {
    const service::Response r = f.get();
    latencies.push_back(r.queue_ms + r.solve_ms);
    iterations += r.result.iterations;
  }
  const double wall_ms = timer.elapsedMs();
  svc.stop();

  RunResult out;
  out.solves_per_sec =
      wall_ms > 0.0 ? static_cast<double>(tasks.size()) / (wall_ms * 1e-3)
                    : 0.0;
  std::sort(latencies.begin(), latencies.end());
  out.p50_ms = percentile(latencies, 50);
  out.p99_ms = percentile(latencies, 99);
  out.mean_iterations = tasks.empty()
                            ? 0.0
                            : static_cast<double>(iterations) /
                                  static_cast<double>(tasks.size());
  out.stats = svc.stats();
  out.hit_rate = out.stats.cacheHitRate();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int requests = 2000;
  int clusters = 32;
  std::size_t workers = 0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--clusters") == 0 && i + 1 < argc) {
      clusters = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: service_throughput [--quick] [--requests N]\n"
                   "       [--clusters C] [--workers W] [--json PATH]\n";
      return 1;
    }
  }
  if (quick) {
    requests = std::min(requests, 100);
    clusters = std::min(clusters, 8);
  }

  const auto chain = dadu::kin::makeSerpentine(24);
  const auto tasks =
      dadu::workload::generateClusteredTasks(chain, requests, clusters);

  // 1. Pre-service dispatch baseline on the identical workload.
  const auto baseline = dadu::solveBatchParallel(
      [&] {
        return dadu::ik::makeSolver("quick-ik", chain,
                                    dadu::ik::SolveOptions{});
      },
      tasks, workers);

  // 2./3. Service without and with the warm-start cache.
  const RunResult off = runService(chain, tasks, workers, false);
  const RunResult on = runService(chain, tasks, workers, true);

  std::cout << "Serving-layer throughput — " << requests << " requests, "
            << clusters << " clusters, 24-DOF serpentine\n\n";
  std::cout << "config           solves/s   p50 ms   p99 ms   mean iters   hit rate\n";
  std::cout << "batch baseline   " << baseline.solves_per_second << "\n";
  const auto row = [](const char* name, const RunResult& r) {
    std::cout << name << "   " << r.solves_per_sec << "   " << r.p50_ms
              << "   " << r.p99_ms << "   " << r.mean_iterations << "   "
              << r.hit_rate << "\n";
  };
  row("service (cache off)", off);
  row("service (cache on) ", on);
  std::cout << "\ncache speedup: " << (on.solves_per_sec / off.solves_per_sec)
            << "x throughput, " << (off.mean_iterations / on.mean_iterations)
            << "x fewer iterations\n";

  if (!json_path.empty()) {
    std::vector<bench::MetricRecord> records = {
        {"service_batch_baseline_solves_per_sec", baseline.solves_per_second,
         "solves/s"},
        {"service_solves_per_sec_cache_off", off.solves_per_sec, "solves/s"},
        {"service_solves_per_sec_cache_on", on.solves_per_sec, "solves/s"},
        {"service_p50_ms_cache_off", off.p50_ms, "ms"},
        {"service_p99_ms_cache_off", off.p99_ms, "ms"},
        {"service_p50_ms_cache_on", on.p50_ms, "ms"},
        {"service_p99_ms_cache_on", on.p99_ms, "ms"},
        {"service_mean_iterations_cache_off", off.mean_iterations, "iters"},
        {"service_mean_iterations_cache_on", on.mean_iterations, "iters"},
        {"service_cache_hit_rate", on.hit_rate, "ratio"},
    };
    // Service-side histogram percentiles (from the lock-free latency
    // histograms, not the caller-side sample vector).
    const auto histRecords = [&records](const char* prefix,
                                        const dadu::obs::HistogramSnapshot& h,
                                        const char* suffix) {
      const std::string base = std::string(prefix);
      records.push_back({base + "_p50_ms" + suffix, h.p50(), "ms"});
      records.push_back({base + "_p90_ms" + suffix, h.p90(), "ms"});
      records.push_back({base + "_p99_ms" + suffix, h.p99(), "ms"});
    };
    histRecords("service_queue", off.stats.queue_hist, "_cache_off");
    histRecords("service_solve", off.stats.solve_hist, "_cache_off");
    histRecords("service_queue", on.stats.queue_hist, "_cache_on");
    histRecords("service_solve", on.stats.solve_hist, "_cache_on");
    if (!bench::writeMetricsJson(json_path, records)) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << records.size() << " records to " << json_path
              << "\n";
  }
  return 0;
}
