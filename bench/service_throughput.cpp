// Serving-layer throughput benchmark: an open-loop arrival workload
// against a live IkService, with the warm-start seed cache on vs off
// and batched dispatch vs per-request dispatch.
//
// Measurements on the same clustered-target workload (the traffic
// shape real IK services see — pick points, shelves, tool poses — and
// the one a seed cache exists for):
//
//   1. baseline: dadu::solveBatchParallel on the identical tasks (the
//      pre-service dispatch path; the service must sustain >= this),
//   2. burst runs, cache off/on x unbatched/batched: all requests
//      submitted at once, measuring sustained drain throughput.  The
//      batched rows are the service default (--max-batch 16); the
//      unbatched rows keep the one-pop-one-solve path honest,
//   3. offered-vs-achieved runs: arrivals paced at the PR 4 wire-level
//      offered load (BENCH_net.json net_requests_per_sec, ~3.2k req/s)
//      against the PR 4 workload shape (12-DOF serpentine).  Queueing
//      collapse is visible as achieved << offered and a runaway queue
//      p50; a healthy batched service tracks the offered rate with a
//      single-digit-ms queue wait.
//
// Usage: service_throughput [--quick] [--requests N] [--workers W]
//                           [--clusters C] [--max-batch M]
//                           [--batch-wait-us U] [--rate R]
//                           [--require-batched] [--json PATH]
//   --rate R           offered load (req/s) for the paced runs
//   --require-batched  exit nonzero unless batch occupancy > 1 (CI smoke)
//   --json P           write the results to P as BENCH_service.json records
#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "dadu/dadu.hpp"

namespace {

struct RunConfig {
  std::size_t workers = 0;
  bool cache_on = false;
  std::size_t max_batch = 1;  ///< 1 = per-request dispatch
  std::uint32_t batch_wait_us = 0;
  double rate = 0.0;  ///< offered arrivals/s; 0 = all at once
};

struct RunResult {
  double solves_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_iterations = 0.0;
  double hit_rate = 0.0;
  dadu::service::ServiceStats stats;  ///< full snapshot (histograms incl.)
};

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

RunResult runService(const dadu::kin::Chain& chain,
                     const std::vector<dadu::workload::IkTask>& tasks,
                     const RunConfig& run_config) {
  namespace service = dadu::service;
  service::ServiceConfig config;
  config.workers = run_config.workers;
  config.queue_capacity = tasks.size();
  config.enable_seed_cache = run_config.cache_on;
  config.max_batch = run_config.max_batch;
  config.batch_wait_us = run_config.batch_wait_us;

  dadu::ik::SolveOptions options;  // paper defaults
  service::IkService svc(
      [&] { return dadu::ik::makeSolver("quick-ik", chain, options); }, config);

  dadu::platform::WallTimer timer;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<service::Response>> futures;
  futures.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (run_config.rate > 0.0) {
      // Open-loop pacing: arrival i is due at i/rate seconds; arrivals
      // never wait for completions (the regime where queueing theory
      // applies and admission control matters).
      const auto due =
          start +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(static_cast<double>(i) /
                                            run_config.rate));
      std::this_thread::sleep_until(due);
    }
    futures.push_back(
        svc.submit({.target = tasks[i].target, .seed = tasks[i].seed}));
  }

  std::vector<double> latencies;
  latencies.reserve(futures.size());
  long long iterations = 0;
  for (auto& f : futures) {
    const dadu::service::Response r = f.get();
    latencies.push_back(r.queue_ms + r.solve_ms);
    iterations += r.result.iterations;
  }
  const double wall_ms = timer.elapsedMs();
  svc.stop();

  RunResult out;
  out.solves_per_sec =
      wall_ms > 0.0 ? static_cast<double>(tasks.size()) / (wall_ms * 1e-3)
                    : 0.0;
  std::sort(latencies.begin(), latencies.end());
  out.p50_ms = percentile(latencies, 50);
  out.p99_ms = percentile(latencies, 99);
  out.mean_iterations = tasks.empty()
                            ? 0.0
                            : static_cast<double>(iterations) /
                                  static_cast<double>(tasks.size());
  out.stats = svc.stats();
  out.hit_rate = out.stats.cacheHitRate();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool require_batched = false;
  int requests = 2000;
  int clusters = 32;
  std::size_t workers = 0;
  std::size_t max_batch = 16;
  std::uint32_t batch_wait_us = 100;
  // Default offered load: the committed PR 4 wire-level throughput
  // (BENCH_net.json net_requests_per_sec) — the arrival rate the
  // batched service must absorb with a single-digit queue p50.
  double rate = 3238.0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--require-batched") == 0) {
      require_batched = true;
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--clusters") == 0 && i + 1 < argc) {
      clusters = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-batch") == 0 && i + 1 < argc) {
      max_batch = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--batch-wait-us") == 0 && i + 1 < argc) {
      batch_wait_us = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
      rate = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: service_throughput [--quick] [--requests N]\n"
                   "       [--clusters C] [--workers W] [--max-batch M]\n"
                   "       [--batch-wait-us U] [--rate R] [--require-batched]\n"
                   "       [--json PATH]\n";
      return 1;
    }
  }
  if (quick) {
    requests = std::min(requests, 100);
    clusters = std::min(clusters, 8);
  }

  const auto chain = dadu::kin::makeSerpentine(24);
  const auto tasks =
      dadu::workload::generateClusteredTasks(chain, requests, clusters);

  // 1. Pre-service dispatch baseline on the identical workload.
  const auto baseline = dadu::solveBatchParallel(
      [&] {
        return dadu::ik::makeSolver("quick-ik", chain,
                                    dadu::ik::SolveOptions{});
      },
      tasks, workers);

  // 2. Burst drain throughput: cache off/on x per-request/batched.
  const auto burst = [&](bool cache_on, bool batched) {
    RunConfig cfg;
    cfg.workers = workers;
    cfg.cache_on = cache_on;
    cfg.max_batch = batched ? max_batch : 1;
    cfg.batch_wait_us = batched ? batch_wait_us : 0;
    return runService(chain, tasks, cfg);
  };
  const RunResult off_unbatched = burst(false, false);
  const RunResult off = burst(false, true);
  const RunResult on_unbatched = burst(true, false);
  const RunResult on = burst(true, true);

  // 3. Offered-vs-achieved at the PR 4 offered load and workload shape
  //    (12-DOF serpentine, paced arrivals), batched dispatch.
  const auto chain12 = dadu::kin::makeSerpentine(12);
  const auto tasks12 =
      dadu::workload::generateClusteredTasks(chain12, requests, clusters);
  const auto paced = [&](bool cache_on) {
    RunConfig cfg;
    cfg.workers = workers;
    cfg.cache_on = cache_on;
    cfg.max_batch = max_batch;
    cfg.batch_wait_us = batch_wait_us;
    cfg.rate = rate;
    return runService(chain12, tasks12, cfg);
  };
  const RunResult paced_off = paced(false);
  const RunResult paced_on = paced(true);

  std::cout << "Serving-layer throughput — " << requests << " requests, "
            << clusters << " clusters, 24-DOF serpentine, max batch "
            << max_batch << " (wait " << batch_wait_us << " us)\n\n";
  std::cout << "config                     solves/s   p50 ms   p99 ms   "
               "mean iters   hit rate\n";
  std::cout << "batch baseline             " << baseline.solves_per_second
            << "\n";
  const auto row = [](const char* name, const RunResult& r) {
    std::cout << name << "   " << r.solves_per_sec << "   " << r.p50_ms
              << "   " << r.p99_ms << "   " << r.mean_iterations << "   "
              << r.hit_rate << "\n";
  };
  row("service (cache off, 1x) ", off_unbatched);
  row("service (cache off)     ", off);
  row("service (cache on, 1x)  ", on_unbatched);
  row("service (cache on)      ", on);
  std::cout << "\ncache speedup: " << (on.solves_per_sec / off.solves_per_sec)
            << "x throughput, " << (off.mean_iterations / on.mean_iterations)
            << "x fewer iterations\n";
  std::cout << "batching speedup: "
            << (off.solves_per_sec / off_unbatched.solves_per_sec)
            << "x cache-off, " << (on.solves_per_sec / on_unbatched.solves_per_sec)
            << "x cache-on\n";
  std::cout << "batch occupancy: " << on.stats.meanBatchOccupancy()
            << " mean, " << on.stats.batch_occupancy_hist.p50() << " / "
            << on.stats.batch_occupancy_hist.p99() << " p50/p99 ("
            << on.stats.batches << " bursts)\n";

  const auto pacedLine = [&](const char* name, const RunResult& r) {
    std::cout << "  " << name << ": offered " << rate << " req/s, achieved "
              << r.solves_per_sec << " req/s, queue p50/p99 "
              << r.stats.queue_hist.p50() << " / " << r.stats.queue_hist.p99()
              << " ms, occupancy " << r.stats.meanBatchOccupancy() << "\n";
  };
  std::cout << "\noffered-vs-achieved (12-DOF, PR 4 offered load, batched):\n";
  pacedLine("cache off", paced_off);
  pacedLine("cache on ", paced_on);

  if (require_batched) {
    // CI smoke gate: the batched path must actually coalesce.
    const double occupancy = on.stats.meanBatchOccupancy();
    if (!(occupancy > 1.0)) {
      std::cerr << "require-batched: mean batch occupancy " << occupancy
                << " is not > 1 — coalescing did not engage\n";
      return 1;
    }
    std::cout << "require-batched: OK (mean occupancy " << occupancy << ")\n";
  }

  if (!json_path.empty()) {
    std::vector<bench::MetricRecord> records = {
        {"service_batch_baseline_solves_per_sec", baseline.solves_per_second,
         "solves/s"},
        // Legacy names describe the service default path, which is now
        // batched dispatch; *_unbatched keeps the per-request rows.
        {"service_solves_per_sec_cache_off", off.solves_per_sec, "solves/s"},
        {"service_solves_per_sec_cache_on", on.solves_per_sec, "solves/s"},
        {"service_solves_per_sec_cache_off_unbatched",
         off_unbatched.solves_per_sec, "solves/s"},
        {"service_solves_per_sec_cache_on_unbatched",
         on_unbatched.solves_per_sec, "solves/s"},
        {"service_batched_solves_per_sec", on.solves_per_sec, "solves/s"},
        {"service_p50_ms_cache_off", off.p50_ms, "ms"},
        {"service_p99_ms_cache_off", off.p99_ms, "ms"},
        {"service_p50_ms_cache_on", on.p50_ms, "ms"},
        {"service_p99_ms_cache_on", on.p99_ms, "ms"},
        {"service_mean_iterations_cache_off", off.mean_iterations, "iters"},
        {"service_mean_iterations_cache_on", on.mean_iterations, "iters"},
        {"service_cache_hit_rate", on.hit_rate, "ratio"},
        {"service_batch_occupancy_p50", on.stats.batch_occupancy_hist.p50(),
         "requests"},
        {"service_batch_occupancy_p99", on.stats.batch_occupancy_hist.p99(),
         "requests"},
        {"service_batch_mean_occupancy", on.stats.meanBatchOccupancy(),
         "requests"},
        // Offered-vs-achieved at the PR 4 load: the queue percentiles
        // here are the meaningful queueing numbers (the burst runs
        // above measure drain throughput, where queue wait is a
        // property of the harness's all-at-once arrival, not of the
        // service).
        {"service_offered_load_rps", rate, "req/s"},
        {"service_achieved_rps_cache_off", paced_off.solves_per_sec, "req/s"},
        {"service_achieved_rps_cache_on", paced_on.solves_per_sec, "req/s"},
    };
    const auto histRecords = [&records](const char* prefix,
                                        const dadu::obs::HistogramSnapshot& h,
                                        const char* suffix) {
      const std::string base = std::string(prefix);
      records.push_back({base + "_p50_ms" + suffix, h.p50(), "ms"});
      records.push_back({base + "_p90_ms" + suffix, h.p90(), "ms"});
      records.push_back({base + "_p99_ms" + suffix, h.p99(), "ms"});
    };
    histRecords("service_queue", paced_off.stats.queue_hist, "_cache_off");
    histRecords("service_solve", off.stats.solve_hist, "_cache_off");
    histRecords("service_queue", paced_on.stats.queue_hist, "_cache_on");
    histRecords("service_solve", on.stats.solve_hist, "_cache_on");
    if (!bench::writeMetricsJson(json_path, records)) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << records.size() << " records to " << json_path
              << "\n";
  }
  return 0;
}
