#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bench {

Args parseArgs(int argc, char** argv, const std::string& bench_name) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--full") {
      args.full = true;
    } else if (a == "--quick") {
      args.quick = true;
    } else if (a == "--targets" && i + 1 < argc) {
      args.targets = std::atoi(argv[++i]);
    } else if (a == "--csv" && i + 1 < argc) {
      args.csv_dir = argv[++i];
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "%s: Dadu paper-reproduction bench\n"
          "  --targets N   targets per cell\n"
          "  --full        paper scale (1000 targets)\n"
          "  --quick       tiny smoke run\n"
          "  --csv DIR     also write CSV output\n",
          bench_name.c_str());
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s' (try --help)\n",
                   bench_name.c_str(), a.c_str());
      std::exit(2);
    }
  }
  return args;
}

int targetCount(const Args& args, int def, int quick_def, int full_def) {
  if (args.targets > 0) return args.targets;
  if (args.quick) return quick_def;
  if (args.full) return full_def;
  return def;
}

BatchRun runBatch(dadu::ik::IkSolver& solver,
                  const std::vector<dadu::workload::IkTask>& tasks) {
  BatchRun run;
  run.results.reserve(tasks.size());
  dadu::platform::WallTimer timer;
  for (const auto& task : tasks)
    run.results.push_back(solver.solve(task.target, task.seed));
  const double total_ms = timer.elapsedMs();
  run.stats = dadu::ik::summarize(run.results);
  run.stats.total_time_ms = total_ms;
  run.stats.mean_time_ms =
      tasks.empty() ? 0.0 : total_ms / static_cast<double>(tasks.size());
  return run;
}

std::vector<std::size_t> dofLadder(const Args& args) {
  if (args.quick) return {12, 25};
  return {12, 25, 50, 75, 100};
}

std::string csvPath(const Args& args, const std::string& name) {
  return *args.csv_dir + "/" + name + ".csv";
}

}  // namespace bench
