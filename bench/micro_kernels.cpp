// Google-benchmark microbenches of the kernels the whole system is
// built from: 4x4 matrix multiply (the FKU operation), forward
// kinematics, Jacobian evaluation, Jacobi SVD, and one full iteration
// of each solver family.  These ground the platform models: the
// measured per-kernel host throughput is the reference point for the
// Atom/TX1 calibration constants discussed in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include "dadu/dadu.hpp"

namespace {

void BM_Mat4Multiply(benchmark::State& state) {
  const auto a = dadu::linalg::Mat4::rotationZ(0.3) *
                 dadu::linalg::Mat4::translation({1, 2, 3});
  const auto b = dadu::linalg::Mat4::rotationX(0.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_Mat4Multiply);

void BM_ForwardKinematics(benchmark::State& state) {
  const auto chain =
      dadu::kin::makeSerpentine(static_cast<std::size_t>(state.range(0)));
  dadu::linalg::VecX q(chain.dof());
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = 0.01 * static_cast<double>(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dadu::kin::endEffectorPosition(chain, q));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ForwardKinematics)->Arg(12)->Arg(25)->Arg(50)->Arg(100);

void BM_Jacobian(benchmark::State& state) {
  const auto chain =
      dadu::kin::makeSerpentine(static_cast<std::size_t>(state.range(0)));
  dadu::linalg::VecX q(chain.dof());
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = 0.01 * static_cast<double>(i);
  dadu::linalg::MatX j;
  std::vector<dadu::linalg::Mat4> frames;
  dadu::linalg::Vec3 ee;
  for (auto _ : state) {
    dadu::kin::positionJacobian(chain, q, j, frames, ee);
    benchmark::DoNotOptimize(j.data());
  }
}
BENCHMARK(BM_Jacobian)->Arg(12)->Arg(50)->Arg(100);

void BM_SvdJacobian(benchmark::State& state) {
  const auto chain =
      dadu::kin::makeSerpentine(static_cast<std::size_t>(state.range(0)));
  dadu::linalg::VecX q(chain.dof());
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = 0.02 * static_cast<double>(i + 1);
  const auto j = dadu::kin::positionJacobian(chain, q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dadu::linalg::svdJacobi(j));
  }
}
BENCHMARK(BM_SvdJacobian)->Arg(12)->Arg(50)->Arg(100);

void BM_SpeculationScalar(benchmark::State& state) {
  // The pre-batching speculation sweep: K independent per-candidate FK
  // passes (axpy + Mat4-chain walk + error norm), args = {DOF, K}.
  const auto chain =
      dadu::kin::makeSerpentine(static_cast<std::size_t>(state.range(0)));
  const int k_count = static_cast<int>(state.range(1));
  const auto task = dadu::workload::generateTask(chain, 0);
  dadu::ik::JtWorkspace ws;
  const auto head =
      dadu::ik::jtIterationHead(chain, task.seed, task.target, ws);
  dadu::linalg::VecX cand(chain.dof());
  for (auto _ : state) {
    double acc = 0.0;
    for (int k = 1; k <= k_count; ++k) {
      const double alpha =
          (static_cast<double>(k) / k_count) * head.alpha_base;
      dadu::linalg::axpyInto(alpha, ws.dtheta_base, task.seed, cand);
      acc += (task.target - dadu::kin::endEffectorPosition(chain, cand)).norm();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * k_count);
}
BENCHMARK(BM_SpeculationScalar)
    ->Args({12, 64})->Args({50, 64})->Args({100, 16})->Args({100, 64});

void BM_SpeculationBatched(benchmark::State& state) {
  // Same sweep through the SoA kernel: one chain walk advances all K
  // candidate transforms, args = {DOF, K}.
  const auto chain =
      dadu::kin::makeSerpentine(static_cast<std::size_t>(state.range(0)));
  const int k_count = static_cast<int>(state.range(1));
  const auto task = dadu::workload::generateTask(chain, 0);
  dadu::ik::JtWorkspace ws;
  const auto head =
      dadu::ik::jtIterationHead(chain, task.seed, task.target, ws);
  std::vector<double> alphas(static_cast<std::size_t>(k_count));
  for (int k = 1; k <= k_count; ++k)
    alphas[k - 1] = (static_cast<double>(k) / k_count) * head.alpha_base;
  dadu::kin::BatchedForward batch;
  batch.reset(chain, alphas.size());
  for (auto _ : state) {
    batch.evaluateLanes(chain, task.seed, ws.dtheta_base, alphas.data(),
                        task.target, false, 0, alphas.size());
    benchmark::DoNotOptimize(batch.errors().data());
  }
  state.SetItemsProcessed(state.iterations() * k_count);
}
BENCHMARK(BM_SpeculationBatched)
    ->Args({12, 64})->Args({50, 64})->Args({100, 16})->Args({100, 64});

void BM_QuickIkIteration(benchmark::State& state) {
  // One Quick-IK iteration = head + 64 speculative FK passes; measured
  // as a 1-iteration solve budget.
  const auto chain =
      dadu::kin::makeSerpentine(static_cast<std::size_t>(state.range(0)));
  const auto task = dadu::workload::generateTask(chain, 0);
  dadu::ik::SolveOptions options;
  options.max_iterations = 1;
  dadu::ik::QuickIkSolver solver(chain, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(task.target, task.seed));
  }
}
BENCHMARK(BM_QuickIkIteration)->Arg(12)->Arg(50)->Arg(100);

void BM_JtSerialIteration(benchmark::State& state) {
  const auto chain =
      dadu::kin::makeSerpentine(static_cast<std::size_t>(state.range(0)));
  const auto task = dadu::workload::generateTask(chain, 0);
  dadu::ik::SolveOptions options;
  options.max_iterations = 1;
  dadu::ik::JtSerialSolver solver(chain, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(task.target, task.seed));
  }
}
BENCHMARK(BM_JtSerialIteration)->Arg(12)->Arg(50)->Arg(100);

void BM_PinvSvdIteration(benchmark::State& state) {
  const auto chain =
      dadu::kin::makeSerpentine(static_cast<std::size_t>(state.range(0)));
  const auto task = dadu::workload::generateTask(chain, 0);
  dadu::ik::SolveOptions options;
  options.max_iterations = 1;
  dadu::ik::PinvSvdSolver solver(chain, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(task.target, task.seed));
  }
}
BENCHMARK(BM_PinvSvdIteration)->Arg(12)->Arg(50)->Arg(100);

void BM_CordicSinCos(benchmark::State& state) {
  const dadu::linalg::FixedFormat fmt{static_cast<int>(state.range(0))};
  double angle = 0.1;
  for (auto _ : state) {
    double s, c;
    dadu::linalg::cordicSinCos(fmt, angle, s, c);
    benchmark::DoNotOptimize(s);
    angle += 0.01;
  }
}
BENCHMARK(BM_CordicSinCos)->Arg(16)->Arg(24);

void BM_ForwardKinematicsF32(benchmark::State& state) {
  const auto chain =
      dadu::kin::makeSerpentine(static_cast<std::size_t>(state.range(0)));
  dadu::linalg::VecX q(chain.dof());
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = 0.01 * static_cast<double>(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dadu::kin::endEffectorPositionF32(chain, q));
  }
}
BENCHMARK(BM_ForwardKinematicsF32)->Arg(50)->Arg(100);

void BM_ForwardKinematicsFixed(benchmark::State& state) {
  const auto chain =
      dadu::kin::makeSerpentine(static_cast<std::size_t>(state.range(0)));
  const dadu::linalg::FixedFormat fmt{20};
  dadu::linalg::VecX q(chain.dof());
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = 0.01 * static_cast<double>(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dadu::kin::endEffectorPositionFixed(chain, q, fmt));
  }
}
BENCHMARK(BM_ForwardKinematicsFixed)->Arg(50)->Arg(100);

void BM_SegmentSegmentDistance(benchmark::State& state) {
  const dadu::linalg::Vec3 p1{0, 0, 0}, q1{1, 0.2, -0.3};
  const dadu::linalg::Vec3 p2{0.4, 1, 0.7}, q2{-0.2, 0.5, 1.1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dadu::geom::segmentSegmentDistance(p1, q1, p2, q2));
  }
}
BENCHMARK(BM_SegmentSegmentDistance);

void BM_SelfClearance(benchmark::State& state) {
  const auto chain =
      dadu::kin::makeSerpentine(static_cast<std::size_t>(state.range(0)));
  const dadu::geom::RobotGeometry body(chain, 0.02);
  dadu::linalg::VecX q(chain.dof());
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = 0.03 * static_cast<double>(i % 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(body.selfClearance(q));
  }
}
BENCHMARK(BM_SelfClearance)->Arg(12)->Arg(50);

void BM_AccelSimIteration(benchmark::State& state) {
  // Simulator overhead per modelled iteration (functional math + cycle
  // accounting).
  const auto chain =
      dadu::kin::makeSerpentine(static_cast<std::size_t>(state.range(0)));
  const auto task = dadu::workload::generateTask(chain, 0);
  dadu::ik::SolveOptions options;
  options.max_iterations = 1;
  dadu::acc::IkAccelerator solver(chain, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(task.target, task.seed));
  }
}
BENCHMARK(BM_AccelSimIteration)->Arg(50)->Arg(100);

}  // namespace
