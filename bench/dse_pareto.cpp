// Design-space exploration: sweep (SSU count x FKU latency x
// speculation count), evaluate each candidate on a common workload and
// print the full grid plus the (latency, energy, area) Pareto front —
// the analysis behind the paper's choice of 32 SSUs / 64 speculations
// / a lean tens-of-cycles FKU.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "dadu/ikacc/design_space.hpp"
#include "dadu/report/table.hpp"

namespace {

void printResults(const std::vector<dadu::acc::DesignResult>& results,
                  const std::string& title) {
  dadu::report::banner(std::cout, title);
  dadu::report::Table table({"SSUs", "mm4", "specs", "ms/solve", "mJ/solve",
                             "mm^2", "EDP", "ms*mm^2", "conv%"});
  for (const auto& r : results) {
    table.addRow({std::to_string(r.point.num_ssus),
                  std::to_string(r.point.mm4_cycles),
                  std::to_string(r.point.speculations),
                  dadu::report::Table::num(r.latency_ms, 4),
                  dadu::report::Table::num(r.energy_mj, 4),
                  dadu::report::Table::num(r.area_mm2, 2),
                  dadu::report::Table::sci(r.edp(), 2),
                  dadu::report::Table::num(r.latency_area(), 3),
                  dadu::report::Table::num(r.convergence_rate * 100, 0)});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv, "dse_pareto");
  const int targets = bench::targetCount(args, 6);
  const std::size_t dof = args.quick ? 25 : 100;

  const auto chain = dadu::kin::makeSerpentine(dof);
  const auto tasks = dadu::workload::generateTasks(chain, targets);
  dadu::ik::SolveOptions options;

  const auto grid = dadu::acc::makeGrid({8, 16, 32, 64}, {8, 24, 48},
                                        {32, 64, 128});
  auto results = dadu::acc::exploreDesignSpace(chain, tasks, grid, options);

  std::sort(results.begin(), results.end(),
            [](const auto& a, const auto& b) {
              return a.latency_area() < b.latency_area();
            });
  printResults(results, "Design-space sweep (" + std::to_string(dof) +
                            "-DOF, sorted by latency*area)");

  const auto front = dadu::acc::paretoFront(results);
  printResults(front, "Pareto front (latency, energy, area)");

  std::cout << "\nExpected: the paper's 32-SSU / 64-speculation / lean-FKU "
               "region sits on or near the front; 128 SSUs buy little once "
               "waves reach 1 while paying full area.\n";
  return 0;
}
