// Ablation (ours): adaptive speculation count.
//
// Quick-IK fixes Max = 64 speculations; the adaptive variant shrinks
// the search when the selector keeps choosing the full Eq. 8 step and
// widens it when interior candidates win.  Reported per DOF: iteration
// count and computation load (Fig. 5b's axis) for fixed-64 vs
// adaptive — the load saving is what an accelerator would bank as
// skipped waves.
#include <iostream>

#include "bench_common.hpp"
#include "dadu/report/table.hpp"
#include "dadu/solvers/quick_ik_adaptive.hpp"

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv, "ablation_adaptive");
  const int targets = bench::targetCount(args, 20);

  dadu::report::banner(std::cout,
                       "Ablation: adaptive speculation count (" +
                           std::to_string(targets) + " targets/cell)");

  dadu::report::Table table({"DOF", "iters fixed64", "iters adaptive",
                             "load fixed64", "load adaptive", "load saved"});

  for (const std::size_t dof : bench::dofLadder(args)) {
    const auto chain = dadu::kin::makeSerpentine(dof);
    const auto tasks = dadu::workload::generateTasks(chain, targets);
    dadu::ik::SolveOptions options;

    dadu::ik::QuickIkSolver fixed(chain, options);
    dadu::ik::QuickIkAdaptiveSolver adaptive(chain, options);
    const auto rf = bench::runBatch(fixed, tasks);
    const auto ra = bench::runBatch(adaptive, tasks);

    const double saved =
        rf.stats.mean_load > 0.0
            ? (1.0 - ra.stats.mean_load / rf.stats.mean_load) * 100.0
            : 0.0;
    table.addRow({std::to_string(dof),
                  dadu::report::Table::num(rf.stats.mean_iterations, 1),
                  dadu::report::Table::num(ra.stats.mean_iterations, 1),
                  dadu::report::Table::num(rf.stats.mean_load, 0),
                  dadu::report::Table::num(ra.stats.mean_load, 0),
                  dadu::report::Table::num(saved, 1) + "%"});
  }

  table.print(std::cout);
  std::cout << "\nExpected: comparable iteration counts at a fraction of the "
               "speculative FK load — on IKAcc, skipped waves.\n";
  return 0;
}
