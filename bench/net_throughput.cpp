// Wire-level serving throughput: a multi-connection load generator
// against a live IkServer on loopback — the full ingress path the
// in-process service bench cannot see (framing, epoll dispatch,
// eventfd completion hand-off, socket writes).
//
// Shape: C client threads, one pipelined IkClient connection each,
// window W requests outstanding per connection.  Every client measures
// per-request wall latency (send -> matching reply); the driver
// aggregates p50/p90/p99, throughput, and the server's shed/reject
// counters — the acceptance numbers for the dadu_net front-end.
//
// Usage: net_throughput [--quick] [--connections C] [--requests N]
//                       [--window W] [--workers K] [--dof D]
//                       [--max-batch M] [--batch-wait-us U]
//                       [--spec-mix S] [--require-batched] [--json PATH]
//   --quick            small workload for CI smoke runs
//   --requests         total requests across all connections
//   --max-batch M      queue-drain burst bound (1 = per-request dispatch)
//   --batch-wait-us U  coalescing linger for under-filled bursts
//   --spec-mix S       host S robot specs (same DOF) behind one server;
//                      connection c drives spec c % S, so every spec
//                      sees equal offered load and the report breaks
//                      req/s out per spec (1 = classic single-spec)
//   --require-batched  exit nonzero unless batch occupancy > 1 (CI smoke)
//   --json P           write BENCH_net.json metric records to P
//   --json-append P    like --json but appends to an existing metrics
//                      file, so multiple legs share one BENCH_net.json
#include <algorithm>
#include <atomic>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_json.hpp"
#include "dadu/dadu.hpp"

namespace {

struct Options {
  std::size_t connections = 64;
  std::size_t requests = 8192;
  std::size_t window = 8;  ///< pipelined requests in flight per connection
  std::size_t workers = 0;
  std::size_t dof = 12;
  std::size_t max_batch = 16;
  std::uint32_t batch_wait_us = 100;
  std::size_t spec_mix = 1;
  bool require_batched = false;
  std::string json_path;
  bool json_append = false;  ///< splice records into an existing file
};

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

struct ClientOutcome {
  std::vector<double> latencies_ms;
  std::size_t solved = 0;
  std::size_t rejected = 0;  ///< service-level rejects (queue full, ...)
  std::size_t wire_errors = 0;
};

/// One connection's worth of load: pipeline up to `window` requests,
/// collect replies in arrival order, timestamp each by request id.
ClientOutcome runClient(const dadu::kin::Chain& chain, std::uint16_t port,
                        std::size_t requests, std::size_t window,
                        std::uint32_t task_offset, std::uint32_t spec_id) {
  namespace net = dadu::net;
  ClientOutcome outcome;
  outcome.latencies_ms.reserve(requests);

  net::IkClient client;
  client.connect("127.0.0.1", port);
  client.setSpecId(spec_id);

  std::unordered_map<std::uint64_t, dadu::platform::WallTimer> sent;
  std::size_t submitted = 0, received = 0;
  while (received < requests) {
    while (submitted < requests && sent.size() < window) {
      const auto task = dadu::workload::generateTask(
          chain, task_offset + static_cast<std::uint32_t>(submitted));
      dadu::service::Request request;
      request.target = task.target;
      request.seed = task.seed;
      const std::uint64_t id = client.sendRequest(request);
      sent.emplace(id, dadu::platform::WallTimer{});
      ++submitted;
    }
    const net::ClientReply reply = client.receiveAny();
    const auto it = sent.find(reply.id());
    if (it == sent.end()) continue;  // not ours (cannot happen; be safe)
    outcome.latencies_ms.push_back(it->second.elapsedMs());
    sent.erase(it);
    ++received;
    if (reply.type == net::MsgType::kError) {
      ++outcome.wire_errors;
    } else if (static_cast<dadu::service::ResponseStatus>(
                   reply.response.status) ==
               dadu::service::ResponseStatus::kSolved) {
      ++outcome.solved;
    } else {
      ++outcome.rejected;
    }
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      opt.connections = 8;
      opt.requests = 512;
    } else if (arg == "--connections") {
      opt.connections = std::stoul(next());
    } else if (arg == "--requests") {
      opt.requests = std::stoul(next());
    } else if (arg == "--window") {
      opt.window = std::stoul(next());
    } else if (arg == "--workers") {
      opt.workers = std::stoul(next());
    } else if (arg == "--dof") {
      opt.dof = std::stoul(next());
    } else if (arg == "--max-batch") {
      opt.max_batch = std::stoul(next());
    } else if (arg == "--batch-wait-us") {
      opt.batch_wait_us = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--spec-mix") {
      opt.spec_mix = std::max<std::size_t>(std::stoul(next()), 1);
    } else if (arg == "--require-batched") {
      opt.require_batched = true;
    } else if (arg == "--json") {
      opt.json_path = next();
    } else if (arg == "--json-append") {
      opt.json_path = next();
      opt.json_append = true;
    } else {
      std::cerr << "unknown option " << arg << '\n';
      return 2;
    }
  }

  namespace net = dadu::net;
  namespace service = dadu::service;
  namespace registry = dadu::registry;
  const auto chain = dadu::kin::makeSerpentine(opt.dof);

  service::ServiceConfig service_config;
  service_config.workers = opt.workers;
  service_config.queue_capacity = 4096;
  service_config.enable_seed_cache = true;
  service_config.max_batch = opt.max_batch;
  service_config.batch_wait_us = opt.batch_wait_us;

  // Every spec solves the same-DOF serpentine so per-spec offered load
  // and solve cost are equal — the multi-spec numbers are directly
  // comparable with the single-spec baseline.
  registry::RobotSpecRegistry reg;
  for (std::size_t s = 0; s < opt.spec_mix; ++s) {
    registry::RobotSpec spec;
    spec.id = static_cast<std::uint32_t>(s);
    spec.name = "spec" + std::to_string(s);
    spec.chain_spec = "serpentine:" + std::to_string(opt.dof);
    spec.chain = chain;
    reg.add(std::move(spec));
  }
  registry::RouterConfig router_config;
  router_config.base = service_config;
  registry::SpecRouter router(reg, router_config);

  net::ServerConfig server_config;
  server_config.max_connections = opt.connections + 8;
  net::IkServer server(router, server_config);
  server.start();

  std::cout << "net_throughput: " << opt.connections << " connections, "
            << opt.requests << " requests, window " << opt.window << ", "
            << router.totalWorkers() << " workers, serpentine:" << opt.dof
            << ", " << opt.spec_mix << " spec(s), max batch " << opt.max_batch
            << " (wait " << opt.batch_wait_us << " us, port " << server.port()
            << ")\n";

  const std::size_t per_conn =
      std::max<std::size_t>(1, opt.requests / opt.connections);
  std::vector<ClientOutcome> outcomes(opt.connections);
  dadu::platform::WallTimer wall;
  {
    std::vector<std::thread> threads;
    threads.reserve(opt.connections);
    for (std::size_t c = 0; c < opt.connections; ++c)
      threads.emplace_back([&, c] {
        outcomes[c] = runClient(chain, server.port(), per_conn, opt.window,
                                static_cast<std::uint32_t>(c * per_conn),
                                static_cast<std::uint32_t>(c % opt.spec_mix));
      });
    for (auto& t : threads) t.join();
  }
  const double wall_ms = wall.elapsedMs();
  server.stop();
  router.stop();

  std::vector<double> latencies;
  std::size_t solved = 0, rejected = 0, wire_errors = 0;
  std::vector<std::size_t> spec_replies(opt.spec_mix, 0);
  for (std::size_t c = 0; c < outcomes.size(); ++c) {
    const auto& o = outcomes[c];
    latencies.insert(latencies.end(), o.latencies_ms.begin(),
                     o.latencies_ms.end());
    solved += o.solved;
    rejected += o.rejected;
    wire_errors += o.wire_errors;
    spec_replies[c % opt.spec_mix] += o.latencies_ms.size();
  }
  std::sort(latencies.begin(), latencies.end());
  const double total = static_cast<double>(latencies.size());
  const double rps = total / (wall_ms / 1000.0);
  const double p50 = percentile(latencies, 50.0);
  const double p90 = percentile(latencies, 90.0);
  const double p99 = percentile(latencies, 99.0);
  const net::NetStats net_stats = server.stats();
  const service::ServiceStats svc_stats = router.aggregatedStats();
  const double reject_rate = total > 0.0 ? rejected / total : 0.0;
  const double shed_rate =
      total > 0.0 ? static_cast<double>(net_stats.shed_draining) / total : 0.0;

  std::cout << "throughput:     " << rps << " req/s (" << latencies.size()
            << " replies in " << wall_ms << " ms)\n"
            << "latency p50/p90/p99: " << p50 << " / " << p90 << " / " << p99
            << " ms\n"
            << "solved:         " << solved << ", rejected " << rejected
            << " (rate " << reject_rate << "), wire errors " << wire_errors
            << '\n'
            << "server:         " << net_stats.frames_received
            << " frames in, " << net_stats.responses_sent << " responses, "
            << net_stats.malformed_frames << " malformed, shed rate "
            << shed_rate << '\n'
            << "service:        " << svc_stats.solved << " solved, "
            << svc_stats.rejected_queue_full << " queue-full, cache hit rate "
            << svc_stats.cacheHitRate() << '\n'
            << "batching:       " << svc_stats.meanBatchOccupancy()
            << " mean occupancy, " << svc_stats.batch_occupancy_hist.p50()
            << " / " << svc_stats.batch_occupancy_hist.p99() << " p50/p99 ("
            << svc_stats.batches << " bursts)\n"
            << "offered vs achieved: closed loop, "
            << opt.connections * opt.window << " requests in flight ("
            << opt.connections << " conns x window " << opt.window
            << "); achieved " << rps << " req/s, queue p50 "
            << svc_stats.queue_hist.p50() << " ms\n";
  if (opt.spec_mix > 1) {
    for (const auto& lane : router.perSpecStats()) {
      const auto replies = static_cast<double>(spec_replies[lane.spec->id]);
      std::cout << "spec " << lane.spec->id << " (" << lane.spec->name
                << "):  " << replies / (wall_ms / 1000.0) << " req/s, "
                << lane.stats.submitted << " submitted, " << lane.stats.solved
                << " solved, mean batch " << lane.stats.meanBatchOccupancy()
                << ", cache hit rate " << lane.stats.cacheHitRate() << '\n';
    }
  }

  // Sanity for the acceptance gate: every reply accounted for.
  if (solved + rejected + wire_errors != latencies.size()) {
    std::cerr << "reply accounting mismatch\n";
    return 1;
  }
  if (opt.require_batched) {
    const double occupancy = svc_stats.meanBatchOccupancy();
    if (!(occupancy > 1.0)) {
      std::cerr << "require-batched: mean batch occupancy " << occupancy
                << " is not > 1 — coalescing did not engage\n";
      return 1;
    }
    std::cout << "require-batched: OK (mean occupancy " << occupancy << ")\n";
  }

  if (!opt.json_path.empty()) {
    const std::vector<bench::MetricRecord> records = {
        {"net_requests_per_sec", rps, "req/s"},
        {"net_latency_p50", p50, "ms"},
        {"net_latency_p90", p90, "ms"},
        {"net_latency_p99", p99, "ms"},
        {"net_reject_rate", reject_rate, "ratio"},
        {"net_shed_rate", shed_rate, "ratio"},
        {"net_wire_errors", static_cast<double>(wire_errors), "count"},
        {"net_malformed_frames",
         static_cast<double>(net_stats.malformed_frames), "count"},
        {"net_connections", static_cast<double>(opt.connections), "count"},
        {"net_max_batch", static_cast<double>(opt.max_batch), "count"},
        {"net_batch_mean_occupancy", svc_stats.meanBatchOccupancy(),
         "requests"},
        {"net_batch_occupancy_p50", svc_stats.batch_occupancy_hist.p50(),
         "requests"},
        {"net_batch_occupancy_p99", svc_stats.batch_occupancy_hist.p99(),
         "requests"},
        {"net_service_queue_p50_ms", svc_stats.queue_hist.p50(), "ms"},
        {"net_service_queue_p99_ms", svc_stats.queue_hist.p99(), "ms"},
    };
    std::vector<bench::MetricRecord> all = records;
    if (opt.spec_mix > 1) {
      // Multi-spec legs rename their aggregates so they can share one
      // BENCH_net.json with the single-spec leg without name clashes.
      for (auto& r : all) r.metric += "_multispec";
      all.push_back(
          {"net_spec_mix", static_cast<double>(opt.spec_mix), "count"});
      for (std::size_t s = 0; s < opt.spec_mix; ++s)
        all.push_back({"net_requests_per_sec_spec" + std::to_string(s),
                       static_cast<double>(spec_replies[s]) / (wall_ms / 1000.0),
                       "req/s"});
    }
    const bool wrote = opt.json_append
                           ? bench::appendMetricsJson(opt.json_path, all)
                           : bench::writeMetricsJson(opt.json_path, all);
    if (!wrote) {
      std::cerr << "cannot write " << opt.json_path << '\n';
      return 1;
    }
    std::cout << (opt.json_append ? "appended " : "wrote ") << opt.json_path
              << '\n';
  }
  return 0;
}
