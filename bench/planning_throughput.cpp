// System bench (ours): IK-and-plan query throughput — how many
// "reach that point through this obstacle field" queries per second
// the full stack answers, the workload profile of a task-level
// planner.  Each query = collision-aware Quick-IK (goal config) +
// RRT-Connect (joint path).
#include <iostream>

#include "bench_common.hpp"
#include "dadu/geometry/collision_aware_solver.hpp"
#include "dadu/planning/rrt.hpp"
#include "dadu/report/table.hpp"
#include "dadu/workload/obstacles.hpp"

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv, "planning_throughput");
  const int queries = bench::targetCount(args, 12, 3, 100);
  const std::size_t dof = args.quick ? 8 : 12;

  dadu::report::banner(std::cout,
                       "Plan-query throughput (" + std::to_string(dof) +
                           "-DOF, " + std::to_string(queries) +
                           " queries per obstacle count)");

  const auto chain = dadu::kin::makeSerpentine(dof);
  const dadu::geom::RobotGeometry body(chain, 0.02);
  dadu::linalg::VecX home(chain.dof());
  for (std::size_t i = 0; i < home.size(); ++i)
    home[i] = (i % 2 == 0) ? 0.2 : -0.15;

  dadu::report::Table table({"obstacles", "solved", "ik ms/query",
                             "plan ms/query", "waypoints", "queries/s"});

  for (const int obstacle_count : {0, 3, 6, 10}) {
    double ik_ms = 0.0, plan_ms = 0.0, waypoints = 0.0;
    int solved = 0;
    dadu::platform::WallTimer total;

    for (int q = 0; q < queries; ++q) {
      const auto task = dadu::workload::generateTask(chain, q);
      dadu::workload::ObstacleFieldOptions field_opts;
      field_opts.count = obstacle_count;
      field_opts.seed = 100 + q;
      const auto obstacles = dadu::workload::generateObstacleField(
          chain, {task.target, dadu::kin::endEffectorPosition(chain, home)},
          field_opts);

      dadu::platform::WallTimer ik_timer;
      dadu::geom::CollisionAwareSolver ik(
          std::make_unique<dadu::ik::QuickIkSolver>(chain,
                                                    dadu::ik::SolveOptions{}),
          body, obstacles, 0.0, 8, 3, /*check_self=*/false);
      const auto goal = ik.solve(task.target, home);
      ik_ms += ik_timer.elapsedMs();
      if (!goal.success()) continue;

      dadu::plan::RrtOptions plan_opts;
      plan_opts.seed = 200 + q;
      dadu::platform::WallTimer plan_timer;
      dadu::plan::RrtPlanner planner(body, obstacles, plan_opts);
      const auto plan = planner.plan(home, goal.solve.theta);
      plan_ms += plan_timer.elapsedMs();
      if (!plan.success) continue;

      ++solved;
      waypoints += static_cast<double>(plan.path.size());
    }

    const double total_s = total.elapsedMs() * 1e-3;
    table.addRow(
        {std::to_string(obstacle_count),
         std::to_string(solved) + "/" + std::to_string(queries),
         dadu::report::Table::num(ik_ms / queries, 2),
         dadu::report::Table::num(plan_ms / queries, 2),
         dadu::report::Table::num(solved ? waypoints / solved : 0.0, 1),
         dadu::report::Table::num(
             total_s > 0.0 ? static_cast<double>(queries) / total_s : 0.0,
             1)});
  }

  table.print(std::cout);
  std::cout << "\nExpected: throughput falls with obstacle density (more IK "
               "restarts, more RRT growth), solve rate stays high; IK is a "
               "small share of the query — the planner is the consumer that "
               "amortises a fast solver.\n";
  return 0;
}
