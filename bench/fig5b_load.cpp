// Figure 5(b) reproduction: computation load (speculations x
// iterations) across the DOF ladder for JT-Serial, J^-1-SVD and
// JT-Speculation (64 speculations); speculation count is 1 for the
// non-speculative methods, exactly as the paper annotates.
//
// Paper shape: Quick-IK's load is similar to (or somewhat above)
// JT-Serial's — speculation does not reduce total work, it converts it
// into parallelisable work.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "dadu/report/csv.hpp"
#include "dadu/report/table.hpp"

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv, "fig5b_load");
  const int targets = bench::targetCount(args, 25);

  dadu::report::banner(
      std::cout,
      "Figure 5(b): computation load (speculations * iterations) under "
      "various DOF manipulators (" +
          std::to_string(targets) + " targets/cell)");

  dadu::report::Table table(
      {"DOF", "JT-Serial", "J-1-SVD", "JT-Speculation", "Quick/JT load"});
  std::unique_ptr<dadu::report::CsvWriter> csv;
  if (args.csv_dir)
    csv = std::make_unique<dadu::report::CsvWriter>(
        bench::csvPath(args, "fig5b"),
        std::vector<std::string>{"dof", "solver", "mean_load"});

  for (const std::size_t dof : bench::dofLadder(args)) {
    const auto chain = dadu::kin::makeSerpentine(dof);
    const auto tasks = dadu::workload::generateTasks(chain, targets);
    dadu::ik::SolveOptions options;

    double jt_load = 0.0, svd_load = 0.0, quick_load = 0.0;
    for (const char* name : {"jt-serial", "pinv-svd", "quick-ik"}) {
      auto solver = dadu::ik::makeSolver(name, chain, options);
      const auto run = bench::runBatch(*solver, tasks);
      if (std::string(name) == "jt-serial") jt_load = run.stats.mean_load;
      if (std::string(name) == "pinv-svd") svd_load = run.stats.mean_load;
      if (std::string(name) == "quick-ik") quick_load = run.stats.mean_load;
      if (csv)
        csv->addRow({std::to_string(dof), name,
                     dadu::report::Table::num(run.stats.mean_load, 1)});
    }

    table.addRow({std::to_string(dof), dadu::report::Table::num(jt_load, 0),
                  dadu::report::Table::num(svd_load, 0),
                  dadu::report::Table::num(quick_load, 0),
                  dadu::report::Table::num(
                      jt_load > 0.0 ? quick_load / jt_load : 0.0, 2) +
                      "x"});
  }

  table.print(std::cout);
  std::cout << "\nPaper shape check: Quick-IK load is in the same decade as "
               "JT-Serial (speculation trades work for parallelism, it does "
               "not save work).\n";
  return 0;
}
