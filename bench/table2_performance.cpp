// Table 2 reproduction: average solve time (ms) per platform and
// method across the DOF ladder.
//
//   JT-Serial, J-1-SVD, JT-Speculation : measured on this host (same
//        code paths the paper ran on the Atom; this host is faster, so
//        absolute ms are smaller — EXPERIMENTS.md also reports the
//        Atom-modelled estimates printed in the second table below).
//   JT-TX1   : analytic TX1 model driven by the measured Quick-IK
//        iteration counts (see dadu/platform/gpu_model.hpp).
//   JT-IKAcc : cycle-accurate simulator time (cycles / 1 GHz).
//
// Paper shape: IKAcc << TX1 << CPU rows; IKAcc ~1700x over JT-Serial
// and ~30x over TX1; TX1 only ~3x over the SVD baseline because of
// per-iteration CPU<->GPU exchange.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "dadu/report/csv.hpp"
#include "dadu/report/table.hpp"

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv, "table2_performance");
  const int targets = bench::targetCount(args, 10, 2, 1000);

  dadu::report::banner(
      std::cout, "Table 2: average IK solve time in ms (" +
                     std::to_string(targets) + " targets/cell)");

  dadu::report::Table table({"DOF", "JT-Serial(host)", "J-1-SVD(host)",
                             "JT-Spec(host)", "JT-TX1(model)",
                             "JT-IKAcc(sim)", "IKAcc/JT(host)",
                             "IKAcc/JT(Atom)", "IKAcc/TX1"});
  dadu::report::Table atom_table(
      {"DOF", "JT-Serial(Atom-model)", "J-1-SVD(Atom-model)",
       "JT-Spec(Atom-model)"});
  std::unique_ptr<dadu::report::CsvWriter> csv;
  if (args.csv_dir)
    csv = std::make_unique<dadu::report::CsvWriter>(
        bench::csvPath(args, "table2"),
        std::vector<std::string>{"dof", "config", "ms_per_solve"});

  const dadu::platform::GpuModelConfig gpu_cfg;
  const dadu::platform::CpuModelConfig atom_cfg;

  for (const std::size_t dof : bench::dofLadder(args)) {
    const auto chain = dadu::kin::makeSerpentine(dof);
    const auto tasks = dadu::workload::generateTasks(chain, targets);
    dadu::ik::SolveOptions options;

    // --- measured host rows ---------------------------------------
    dadu::ik::JtSerialSolver jt(chain, options);
    const auto jt_run = bench::runBatch(jt, tasks);

    dadu::ik::PinvSvdSolver pinv(chain, options);
    const auto pinv_run = bench::runBatch(pinv, tasks);
    double svd_sweeps_per_iter = 0.0;  // priced by the Atom model below

    dadu::ik::QuickIkSolver quick(chain, options);
    const auto quick_run = bench::runBatch(quick, tasks);

    // Re-derive SVD sweeps/iteration for the Atom pricing of J-1-SVD.
    {
      dadu::ik::PinvSvdSolver probe(chain, options);
      const auto r = probe.solve(tasks[0].target, tasks[0].seed);
      if (r.iterations > 0)
        svd_sweeps_per_iter = static_cast<double>(probe.lastSvdSweeps()) /
                              static_cast<double>(r.iterations);
    }

    // --- modelled TX1 ---------------------------------------------
    const auto tx1 = dadu::platform::estimateGpuQuickIk(
        gpu_cfg, dof, quick_run.stats.mean_iterations, options.speculations);

    // --- simulated IKAcc --------------------------------------------
    dadu::acc::IkAccelerator ikacc(chain, options);
    double acc_ms_sum = 0.0;
    for (const auto& task : tasks) {
      (void)ikacc.solve(task.target, task.seed);
      acc_ms_sum += ikacc.lastStats().time_ms;
    }
    const double acc_ms = acc_ms_sum / static_cast<double>(tasks.size());

    const double jt_ms = jt_run.stats.mean_time_ms;
    const double pinv_ms = pinv_run.stats.mean_time_ms;
    const double quick_ms = quick_run.stats.mean_time_ms;

    // --- Atom-modelled CPU rows (paper's platform scale) -----------
    const auto atom_jt = dadu::platform::estimateCpuJtSerial(
        atom_cfg, dof, jt_run.stats.mean_iterations);

    table.addRow(
        {std::to_string(dof), dadu::report::Table::num(jt_ms, 3),
         dadu::report::Table::num(pinv_ms, 3),
         dadu::report::Table::num(quick_ms, 3),
         dadu::report::Table::num(tx1.time_ms, 3),
         dadu::report::Table::num(acc_ms, 4),
         dadu::report::Table::num(acc_ms > 0 ? jt_ms / acc_ms : 0.0, 0) + "x",
         dadu::report::Table::num(acc_ms > 0 ? atom_jt.time_ms / acc_ms : 0.0,
                                  0) +
             "x",
         dadu::report::Table::num(acc_ms > 0 ? tx1.time_ms / acc_ms : 0.0, 0) +
             "x"});

    const auto atom_pinv = dadu::platform::estimateCpuPinvSvd(
        atom_cfg, dof, pinv_run.stats.mean_iterations, svd_sweeps_per_iter);
    const auto atom_quick = dadu::platform::estimateCpuQuickIk(
        atom_cfg, dof, quick_run.stats.mean_iterations, options.speculations);
    atom_table.addRow({std::to_string(dof),
                       dadu::report::Table::num(atom_jt.time_ms, 2),
                       dadu::report::Table::num(atom_pinv.time_ms, 2),
                       dadu::report::Table::num(atom_quick.time_ms, 2)});

    if (csv) {
      csv->addRow({std::to_string(dof), "jt-serial-host",
                   dadu::report::Table::num(jt_ms, 4)});
      csv->addRow({std::to_string(dof), "pinv-svd-host",
                   dadu::report::Table::num(pinv_ms, 4)});
      csv->addRow({std::to_string(dof), "quick-ik-host",
                   dadu::report::Table::num(quick_ms, 4)});
      csv->addRow({std::to_string(dof), "jt-tx1-model",
                   dadu::report::Table::num(tx1.time_ms, 4)});
      csv->addRow({std::to_string(dof), "jt-ikacc-sim",
                   dadu::report::Table::num(acc_ms, 5)});
    }
  }

  table.print(std::cout);
  std::cout << "\nAtom-modelled CPU columns (paper measured an Atom D2500 "
               "@1.86GHz):\n";
  atom_table.print(std::cout);
  std::cout << "\nPaper shape check: IKAcc fastest by orders of magnitude; "
               "TX1 in between; all rows grow with DOF.\n";
  return 0;
}
