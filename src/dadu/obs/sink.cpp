#include "dadu/obs/sink.hpp"

namespace dadu::obs {

void RecordingSink::onSpan(std::string_view name, double elapsed_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back({std::string(name), elapsed_ms});
}

void RecordingSink::onCount(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counts_.push_back({std::string(name), delta});
}

std::vector<SpanRecord> RecordingSink::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::vector<CountRecord> RecordingSink::counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_;
}

std::size_t RecordingSink::spanCount(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const SpanRecord& s : spans_)
    if (s.name == name) ++n;
  return n;
}

std::uint64_t RecordingSink::countTotal(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const CountRecord& c : counts_)
    if (c.name == name) total += c.delta;
  return total;
}

void RecordingSink::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  counts_.clear();
}

}  // namespace dadu::obs
