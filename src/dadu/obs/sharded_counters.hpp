// Lock-free sharded counters for hot-path statistics.
//
// The serving layer used to funnel every submit() and every completed
// solve through one global stats mutex; at high worker counts that
// mutex is pure contention for bookkeeping that nobody reads until a
// stats() call.  ShardedCounters splits each logical counter into one
// slot per shard, each slot on its own cache line, written with relaxed
// atomics: writers on different shards never touch the same line, so an
// increment costs one uncontended atomic add.  Reads aggregate across
// shards (snapshot-on-read) — reads are rare, writes are the hot path,
// so the asymmetry is exactly right.
//
// Shard selection is by thread: every thread gets a process-wide index
// on first use (threadSlot()) and maps onto a shard by power-of-two
// mask.  With shards >= writer threads there is no sharing at all;
// with fewer shards writers degrade gracefully to relaxed contention on
// a shared line, never to a lock.
//
// Consistency contract: individual counters are exact (every add is
// counted once); a snapshot taken while writers are active is a
// per-counter-atomic view, not a cross-counter atomic one — two
// counters incremented together by a writer may differ by one in-flight
// update.  That is the standard monitoring trade and what makes the
// write side lock-free.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dadu::obs {

/// Process-wide dense index of the calling thread (assigned on first
/// call, stable for the thread's lifetime).  Exposed for tests and for
/// any other per-thread striping that wants to agree with the counters.
std::size_t threadSlot() noexcept;

class ShardedCounters {
 public:
  /// `counters` logical counters striped over `shards` slots each.
  /// `shards` is rounded up to a power of two; 0 picks a default sized
  /// to the hardware concurrency.
  explicit ShardedCounters(std::size_t counters, std::size_t shards = 0);

  ShardedCounters(const ShardedCounters&) = delete;
  ShardedCounters& operator=(const ShardedCounters&) = delete;

  std::size_t counters() const { return num_counters_; }
  std::size_t shards() const { return num_shards_; }

  /// Add `delta` to counter `counter` on the calling thread's shard.
  /// Lock-free, wait-free, relaxed.  The hot-path entry point.
  void add(std::size_t counter, std::uint64_t delta = 1) noexcept {
    slot(threadSlot() & shard_mask_, counter)
        .fetch_add(delta, std::memory_order_relaxed);
  }

  /// Aggregated value of one counter (sums all shards).
  std::uint64_t value(std::size_t counter) const;

  /// Aggregated values of every counter, indexed by counter id.
  std::vector<std::uint64_t> snapshot() const;

 private:
  // One cache line per (shard, counter): increments never false-share.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> value{0};
  };

  std::atomic<std::uint64_t>& slot(std::size_t shard,
                                   std::size_t counter) noexcept {
    return slots_[shard * num_counters_ + counter].value;
  }
  const std::atomic<std::uint64_t>& slot(std::size_t shard,
                                         std::size_t counter) const noexcept {
    return slots_[shard * num_counters_ + counter].value;
  }

  std::size_t num_counters_;
  std::size_t num_shards_;   // power of two
  std::size_t shard_mask_;   // num_shards_ - 1
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace dadu::obs
