// ObsSink: the pluggable back end of the observability layer.
//
// The serving layer records its own counters and histograms
// unconditionally (cheap, lock-free, always on); a sink is the *extra*
// channel for callers who want per-event visibility — tracing spans
// into a profiler, counters into an external metrics pipeline, or a
// RecordingSink in tests.  The default is no sink at all: every emit
// site is behind a null-pointer check, so an unconfigured service pays
// a predicted-not-taken branch and nothing else.
//
// Sink implementations must be thread-safe: workers emit concurrently.
// Emits happen on the serving hot path, so sinks should be cheap or
// hand off quickly; a slow sink slows solves.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dadu::obs {

/// One completed trace span: a named scope and its wall duration.
struct SpanRecord {
  std::string name;
  double elapsed_ms = 0.0;
};

/// One named counter event.
struct CountRecord {
  std::string name;
  std::uint64_t delta = 0;
};

/// Callback interface.  Default implementations are no-ops so sinks
/// override only what they consume.
class ObsSink {
 public:
  virtual ~ObsSink() = default;
  /// A scope (queue wait, solve, ...) finished after `elapsed_ms`.
  virtual void onSpan(std::string_view name, double elapsed_ms) {
    (void)name;
    (void)elapsed_ms;
  }
  /// A named counter advanced by `delta` (solver iterations, FK
  /// evaluations, speculation load, cache traffic, ...).
  virtual void onCount(std::string_view name, std::uint64_t delta) {
    (void)name;
    (void)delta;
  }
};

/// Test/debug sink: retains every event under a mutex.  Not intended
/// for production traffic (it grows unboundedly and serializes
/// writers) — it exists so tests can assert exactly what was emitted.
class RecordingSink final : public ObsSink {
 public:
  void onSpan(std::string_view name, double elapsed_ms) override;
  void onCount(std::string_view name, std::uint64_t delta) override;

  std::vector<SpanRecord> spans() const;
  std::vector<CountRecord> counts() const;
  /// Number of spans recorded under `name`.
  std::size_t spanCount(std::string_view name) const;
  /// Sum of deltas recorded under `name`.
  std::uint64_t countTotal(std::string_view name) const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::vector<CountRecord> counts_;
};

/// RAII trace span: measures construction-to-destruction wall time and
/// emits it to the sink.  A null sink skips the clock reads entirely —
/// the scope costs one branch.
class ScopedSpan {
 public:
  ScopedSpan(ObsSink* sink, std::string_view name) : sink_(sink), name_(name) {
    if (sink_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedSpan() {
    if (sink_)
      sink_->onSpan(name_, std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start_)
                               .count());
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  ObsSink* sink_;
  std::string_view name_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace dadu::obs
