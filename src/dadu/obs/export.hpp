// Metric exporters: one snapshot model, three renderings.
//
// MetricsSnapshot is the neutral wire between a metrics producer (the
// serving layer, a solver harness, a bench) and whatever consumes the
// numbers.  Renderers are pure string producers so they slot anywhere:
//
//   renderPrometheus — Prometheus text exposition format (counters as
//     `*_total`, histograms as cumulative `_bucket{le=...}` series with
//     `_sum`/`_count`), ready for a scrape endpoint or textfile
//     collector;
//   renderJson — the BENCH_service.json record shape
//     ([{"metric","value","unit"}, ...]) so exported stats diff against
//     the repo's performance-trajectory files with the same tooling;
//   renderText — human-readable table with ASCII bucket bars for
//     terminal inspection (the CLI `stats` command).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dadu/obs/histogram.hpp"

namespace dadu::obs {

struct CounterSample {
  std::string name;  ///< e.g. "dadu_service_submitted"
  std::uint64_t value = 0;
};

/// Derived scalar (rates, ratios, means) that is not a monotone count.
struct GaugeSample {
  std::string name;
  double value = 0.0;
  std::string unit;  ///< "ratio", "ms", "iters", ... (JSON/text only)
};

struct HistogramSample {
  std::string name;  ///< e.g. "dadu_service_solve_ms"
  HistogramSnapshot hist;
  std::string unit = "ms";
};

/// Build/runtime facts with a string value rather than a number — e.g.
/// the active speculation backend.  Prometheus renders them in the
/// `name{value="..."} 1` info-metric idiom; JSON and text carry the
/// string directly.
struct InfoSample {
  std::string name;  ///< e.g. "dadu_spec_backend"
  std::string value;
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<InfoSample> infos;
};

/// Prometheus text exposition format.  Counter names gain a `_total`
/// suffix per convention; histogram buckets render cumulatively with a
/// final `+Inf` bound.  Names are sanitized to [a-zA-Z0-9_:].
std::string renderPrometheus(const MetricsSnapshot& snapshot);

/// JSON array of {"metric", "value", "unit"} records (the
/// BENCH_service.json shape).  Histograms flatten to
/// name_{count,mean,p50,p90,p99,max} records.
std::string renderJson(const MetricsSnapshot& snapshot);

/// Human-readable rendering: counters and gauges as aligned rows,
/// histograms as percentile summaries plus ASCII bucket bars (empty
/// buckets outside the populated range are elided).
std::string renderText(const MetricsSnapshot& snapshot);

}  // namespace dadu::obs
