#include "dadu/obs/sharded_counters.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace dadu::obs {
namespace {

std::size_t roundUpPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::size_t defaultShards() {
  // Enough shards that a worker per hardware thread never shares a
  // slot, capped so the footprint stays a few KiB per counter set.
  const auto hw = static_cast<std::size_t>(std::thread::hardware_concurrency());
  return std::clamp<std::size_t>(roundUpPow2(std::max<std::size_t>(hw, 1)), 8,
                                 64);
}

}  // namespace

std::size_t threadSlot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

ShardedCounters::ShardedCounters(std::size_t counters, std::size_t shards)
    : num_counters_(counters),
      num_shards_(shards == 0 ? defaultShards() : roundUpPow2(shards)),
      shard_mask_(num_shards_ - 1) {
  if (num_counters_ == 0)
    throw std::invalid_argument("ShardedCounters: need at least one counter");
  slots_ = std::make_unique<Slot[]>(num_shards_ * num_counters_);
}

std::uint64_t ShardedCounters::value(std::size_t counter) const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < num_shards_; ++s)
    total += slot(s, counter).load(std::memory_order_relaxed);
  return total;
}

std::vector<std::uint64_t> ShardedCounters::snapshot() const {
  std::vector<std::uint64_t> totals(num_counters_, 0);
  for (std::size_t s = 0; s < num_shards_; ++s)
    for (std::size_t c = 0; c < num_counters_; ++c)
      totals[c] += slot(s, c).load(std::memory_order_relaxed);
  return totals;
}

}  // namespace dadu::obs
