// Fixed-boundary log-bucket latency histogram.
//
// Serving-layer latencies span decades (a cache-hit solve is tens of
// microseconds, a cold 100-DOF solve tens of milliseconds, a queued
// request under overload whatever the queue lets it be), so the bucket
// ladder is logarithmic: `buckets_per_decade` log-spaced boundaries per
// factor of ten between `min_value` and `max_value`, one underflow
// bucket below and one overflow bucket above.  Boundaries are fixed at
// construction — record() is a log10, a clamp and one relaxed atomic
// increment, no locks, safe from any number of threads.
//
// Percentiles come out of the snapshot by cumulative rank with linear
// interpolation inside the winning bucket: exact enough for p50/p90/p99
// dashboards (resolution is a bucket width, ~33% at 8 buckets/decade),
// infinitely cheaper than retaining samples.  The paper's evaluation
// reports means per platform (Table 2); a serving system needs tails —
// SDLS-style real-time control loops budget against p99, not the mean.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace dadu::obs {

/// Read-side view of a histogram: plain values, safe to copy around,
/// and the percentile math lives here so exporters and ServiceStats
/// share one implementation.
struct HistogramSnapshot {
  /// Inclusive upper bound of each finite bucket, ascending; the last
  /// bucket (overflow) has no finite bound and is counts.back().
  std::vector<double> upper_bounds;
  /// Per-bucket counts; counts.size() == upper_bounds.size() + 1.
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;  ///< total samples
  double sum = 0.0;         ///< sum of recorded values
  double max = 0.0;         ///< largest recorded value (0 when empty)

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
  /// Nearest-rank percentile (p in [0,100]) with linear interpolation
  /// inside the selected bucket; 0 for an empty histogram.  Overflow
  /// samples report the observed max.
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p90() const { return percentile(90.0); }
  double p99() const { return percentile(99.0); }
};

/// Merge `from` into `into`.  When both snapshots share one bucket
/// ladder (histograms built from the same Config — e.g. the per-spec
/// serving lanes a SpecRouter aggregates) the merge is exact:
/// bucket-wise count addition.  An empty `into` adopts `from` wholly.
/// Mismatched ladders degrade gracefully: count/sum/max still add (so
/// means stay exact) but `into` keeps its own buckets, making
/// percentiles approximate — callers that need exact fleet percentiles
/// must keep ladders uniform.  Returns `into`.
HistogramSnapshot& mergeInto(HistogramSnapshot& into,
                             const HistogramSnapshot& from);

class LatencyHistogram {
 public:
  struct Config {
    double min_value = 1e-3;     ///< first bucket bound (1 us, in ms)
    double max_value = 1e4;      ///< last finite bound (10 s, in ms)
    int buckets_per_decade = 8;  ///< log resolution (~33% bucket width)
  };

  LatencyHistogram();  ///< default Config (NSDMI not usable in-class)
  explicit LatencyHistogram(Config config);

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Record one sample.  Lock-free; negative/NaN samples clamp into the
  /// underflow bucket.  Safe from any thread.
  void record(double value) noexcept;

  HistogramSnapshot snapshot() const;
  const std::vector<double>& upperBounds() const { return upper_bounds_; }
  const Config& config() const { return config_; }

 private:
  std::size_t bucketFor(double value) const noexcept;

  Config config_;
  std::vector<double> upper_bounds_;  // finite bounds; buckets = size()+1
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<double> sum_{0.0};  // CAS-loop accumulation (pre-C++20-safe)
  std::atomic<double> max_{0.0};
};

}  // namespace dadu::obs
