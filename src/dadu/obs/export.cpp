#include "dadu/obs/export.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

namespace dadu::obs {
namespace {

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':'))
      c = '_';
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])))
    out.insert(out.begin(), '_');
  return out;
}

/// Shortest-ish round-trip double for exposition formats: fixed with
/// trailing-zero trim keeps goldens stable across platforms.
std::string num(double v, int precision = 6) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

void appendJsonRecord(std::ostringstream& os, bool& first,
                      const std::string& metric, double value,
                      const std::string& unit) {
  if (!first) os << ",\n";
  first = false;
  os << "  {\"metric\": \"" << metric << "\", \"value\": " << std::fixed
     << std::setprecision(6) << value << ", \"unit\": \"" << unit << "\"}";
}

}  // namespace

std::string renderPrometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  // Info-metric idiom: the fact lives in a label, the sample is 1.
  for (const InfoSample& i : snapshot.infos) {
    const std::string name = sanitize(i.name);
    os << "# TYPE " << name << " gauge\n";
    os << name << "{value=\"" << i.value << "\"} 1\n";
  }
  for (const CounterSample& c : snapshot.counters) {
    const std::string name = sanitize(c.name) + "_total";
    os << "# TYPE " << name << " counter\n";
    os << name << " " << c.value << "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    const std::string name = sanitize(g.name);
    os << "# TYPE " << name << " gauge\n";
    os << name << " " << num(g.value) << "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    const std::string name = sanitize(h.name);
    os << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.hist.upper_bounds.size(); ++b) {
      cumulative += h.hist.counts[b];
      os << name << "_bucket{le=\"" << num(h.hist.upper_bounds[b]) << "\"} "
         << cumulative << "\n";
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.hist.count << "\n";
    os << name << "_sum " << num(h.hist.sum) << "\n";
    os << name << "_count " << h.hist.count << "\n";
  }
  return os.str();
}

std::string renderJson(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "[\n";
  bool first = true;
  for (const InfoSample& i : snapshot.infos) {
    // String-valued record; unit "info" marks it non-numeric for the
    // trajectory-diff tooling.
    if (!first) os << ",\n";
    first = false;
    os << "  {\"metric\": \"" << i.name << "\", \"value\": \"" << i.value
       << "\", \"unit\": \"info\"}";
  }
  for (const CounterSample& c : snapshot.counters)
    appendJsonRecord(os, first, c.name, static_cast<double>(c.value), "count");
  for (const GaugeSample& g : snapshot.gauges)
    appendJsonRecord(os, first, g.name, g.value, g.unit);
  for (const HistogramSample& h : snapshot.histograms) {
    appendJsonRecord(os, first, h.name + "_count",
                     static_cast<double>(h.hist.count), "count");
    appendJsonRecord(os, first, h.name + "_mean", h.hist.mean(), h.unit);
    appendJsonRecord(os, first, h.name + "_p50", h.hist.p50(), h.unit);
    appendJsonRecord(os, first, h.name + "_p90", h.hist.p90(), h.unit);
    appendJsonRecord(os, first, h.name + "_p99", h.hist.p99(), h.unit);
    appendJsonRecord(os, first, h.name + "_max", h.hist.max, h.unit);
  }
  os << "\n]\n";
  return os.str();
}

std::string renderText(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  std::size_t width = 0;
  for (const InfoSample& i : snapshot.infos)
    width = std::max(width, i.name.size());
  for (const CounterSample& c : snapshot.counters)
    width = std::max(width, c.name.size());
  for (const GaugeSample& g : snapshot.gauges)
    width = std::max(width, g.name.size());

  for (const InfoSample& i : snapshot.infos)
    os << std::left << std::setw(static_cast<int>(width) + 2) << i.name
       << i.value << "\n";
  for (const CounterSample& c : snapshot.counters)
    os << std::left << std::setw(static_cast<int>(width) + 2) << c.name
       << c.value << "\n";
  for (const GaugeSample& g : snapshot.gauges)
    os << std::left << std::setw(static_cast<int>(width) + 2) << g.name
       << num(g.value) << (g.unit.empty() ? "" : " ") << g.unit << "\n";

  for (const HistogramSample& h : snapshot.histograms) {
    os << "\n" << h.name << " (" << h.unit << "): count " << h.hist.count
       << ", mean " << num(h.hist.mean(), 3) << ", p50 "
       << num(h.hist.p50(), 3) << ", p90 " << num(h.hist.p90(), 3) << ", p99 "
       << num(h.hist.p99(), 3) << ", max " << num(h.hist.max, 3) << "\n";
    if (h.hist.count == 0) continue;

    // Trim to the populated bucket range so the bars tell a story
    // instead of scrolling decades of zeros.
    std::size_t lo = h.hist.counts.size(), hi = 0;
    std::uint64_t peak = 0;
    for (std::size_t b = 0; b < h.hist.counts.size(); ++b) {
      if (h.hist.counts[b] == 0) continue;
      lo = std::min(lo, b);
      hi = std::max(hi, b);
      peak = std::max(peak, h.hist.counts[b]);
    }
    constexpr std::size_t kBarWidth = 40;
    for (std::size_t b = lo; b <= hi; ++b) {
      const std::string bound = b < h.hist.upper_bounds.size()
                                    ? "<= " + num(h.hist.upper_bounds[b], 3)
                                    : "> " + num(h.hist.upper_bounds.back(), 3);
      const auto bar = static_cast<std::size_t>(
          peak == 0 ? 0
                    : (kBarWidth * h.hist.counts[b] + peak - 1) / peak);
      os << "  " << std::right << std::setw(12) << bound << "  "
         << std::setw(8) << h.hist.counts[b] << "  " << std::string(bar, '#')
         << "\n";
    }
  }
  return os.str();
}

}  // namespace dadu::obs
