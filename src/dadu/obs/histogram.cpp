#include "dadu/obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dadu::obs {

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest sample index whose cumulative count
  // covers p% of the population (1-based rank).
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);

  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const std::uint64_t in_bucket = counts[b];
    if (cumulative + in_bucket < target) {
      cumulative += in_bucket;
      continue;
    }
    if (b >= upper_bounds.size()) return max;  // overflow bucket
    const double hi = upper_bounds[b];
    const double lo = b == 0 ? 0.0 : upper_bounds[b - 1];
    // Linear interpolation by rank position inside the bucket, clamped
    // to the observed max so a sparse top bucket cannot report a
    // percentile beyond any recorded sample.
    const double frac = in_bucket == 0
                            ? 1.0
                            : static_cast<double>(target - cumulative) /
                                  static_cast<double>(in_bucket);
    const double value = lo + (hi - lo) * frac;
    return max > 0.0 ? std::min(value, max) : value;
  }
  return max;  // unreachable when counts sum to `count`
}

HistogramSnapshot& mergeInto(HistogramSnapshot& into,
                             const HistogramSnapshot& from) {
  if (from.count == 0 && from.upper_bounds.empty()) return into;
  if (into.upper_bounds.empty() && into.count == 0) {
    into = from;
    return into;
  }
  if (into.upper_bounds == from.upper_bounds &&
      into.counts.size() == from.counts.size()) {
    for (std::size_t b = 0; b < into.counts.size(); ++b)
      into.counts[b] += from.counts[b];
  }
  into.count += from.count;
  into.sum += from.sum;
  into.max = std::max(into.max, from.max);
  return into;
}

LatencyHistogram::LatencyHistogram() : LatencyHistogram(Config()) {}

LatencyHistogram::LatencyHistogram(Config config) : config_(config) {
  if (!(config_.min_value > 0.0) || !(config_.max_value > config_.min_value))
    throw std::invalid_argument(
        "LatencyHistogram: need 0 < min_value < max_value");
  if (config_.buckets_per_decade < 1)
    throw std::invalid_argument(
        "LatencyHistogram: buckets_per_decade must be >= 1");

  // Fixed log-spaced ladder: bound_i = min * 10^(i / bpd), up to and
  // including the first bound >= max_value.
  const double step = 1.0 / static_cast<double>(config_.buckets_per_decade);
  for (int i = 0;; ++i) {
    const double bound =
        config_.min_value * std::pow(10.0, step * static_cast<double>(i));
    upper_bounds_.push_back(bound);
    if (bound >= config_.max_value) break;
  }
  counts_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(upper_bounds_.size() + 1);
}

std::size_t LatencyHistogram::bucketFor(double value) const noexcept {
  if (!(value > config_.min_value)) return 0;  // underflow, negatives, NaN
  if (value > upper_bounds_.back()) return upper_bounds_.size();  // overflow
  // Bucket b covers (bound_{b-1}, bound_b]; log position gives the
  // ladder index directly instead of a search.
  const double pos = std::log10(value / config_.min_value) *
                     static_cast<double>(config_.buckets_per_decade);
  auto idx = static_cast<std::size_t>(std::ceil(pos));
  if (idx >= upper_bounds_.size()) idx = upper_bounds_.size() - 1;
  // Guard the float boundary: log10 can land an exact bound a hair
  // high/low; nudge down while the previous bound still covers value.
  while (idx > 0 && value <= upper_bounds_[idx - 1]) --idx;
  while (idx < upper_bounds_.size() && value > upper_bounds_[idx]) ++idx;
  return idx;  // == upper_bounds_.size() means overflow
}

void LatencyHistogram::record(double value) noexcept {
  counts_[bucketFor(value)].fetch_add(1, std::memory_order_relaxed);

  // Sum/max keep exact accumulation via CAS loops (atomic<double>
  // fetch_add is C++20-library-dependent; this is portable and the
  // contention is negligible against the bucket counters).
  double observed = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(observed, observed + value,
                                     std::memory_order_relaxed)) {
  }
  double seen_max = max_.load(std::memory_order_relaxed);
  while (value > seen_max && !max_.compare_exchange_weak(
                                 seen_max, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot snap;
  snap.upper_bounds = upper_bounds_;
  snap.counts.resize(upper_bounds_.size() + 1);
  for (std::size_t b = 0; b < snap.counts.size(); ++b) {
    snap.counts[b] = counts_[b].load(std::memory_order_relaxed);
    snap.count += snap.counts[b];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace dadu::obs
