// Design-space exploration over IKAcc configurations.
//
// The paper fixes one design point (32 SSUs, 64 speculations, 1 GHz);
// this module sweeps the structural knobs — SSU count, FKU multiply
// latency (the few-multipliers-vs-latency HLS trade-off of Section
// 5.2) and the software speculation count — and evaluates each
// candidate on a common workload, reporting latency, energy, area and
// the derived figures of merit a hardware architect ranks designs by
// (EDP, latency*area).  A Pareto filter extracts the frontier.
#pragma once

#include <vector>

#include "dadu/ikacc/config.hpp"
#include "dadu/kinematics/chain.hpp"
#include "dadu/solvers/types.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::acc {

/// One candidate configuration.
struct DesignPoint {
  std::size_t num_ssus = 32;
  int mm4_cycles = 24;
  int speculations = 64;
};

/// Evaluation of one candidate on the workload (means over tasks).
struct DesignResult {
  DesignPoint point;
  double latency_ms = 0.0;
  double energy_mj = 0.0;
  double area_mm2 = 0.0;
  double mean_iterations = 0.0;
  double convergence_rate = 0.0;

  double edp() const { return energy_mj * latency_ms; }          // energy-delay
  double latency_area() const { return latency_ms * area_mm2; }  // perf/cost
};

/// Evaluate every point of `grid` on `tasks` solved with `base`
/// options (speculations overridden per point).
std::vector<DesignResult> exploreDesignSpace(
    const kin::Chain& chain, const std::vector<workload::IkTask>& tasks,
    const std::vector<DesignPoint>& grid, const ik::SolveOptions& base,
    const AccConfig& base_config = {});

/// Cartesian grid helper.
std::vector<DesignPoint> makeGrid(const std::vector<std::size_t>& ssus,
                                  const std::vector<int>& mm4_latencies,
                                  const std::vector<int>& speculations);

/// Points not dominated in (latency, energy, area) — smaller is better
/// in every dimension.
std::vector<DesignResult> paretoFront(const std::vector<DesignResult>& all);

}  // namespace dadu::acc
