// Cycle / energy statistics emitted by the IKAcc simulator.
#pragma once

#include <cstdint>

namespace dadu::acc {

/// Operation counts accumulated while simulating; the energy model
/// prices these against the EnergyTable.
struct OpCounts {
  long long mul = 0;
  long long add = 0;
  long long div = 0;
  long long sqrt_ = 0;
  long long trig = 0;
  long long reg = 0;

  OpCounts& operator+=(const OpCounts& o) {
    mul += o.mul;
    add += o.add;
    div += o.div;
    sqrt_ += o.sqrt_;
    trig += o.trig;
    reg += o.reg;
    return *this;
  }
};

/// Full accounting of one accelerator solve.
struct AccStats {
  long long total_cycles = 0;
  long long spu_cycles = 0;        ///< serial-process contribution
  long long ssu_cycles = 0;        ///< speculative-search contribution (critical path)
  long long ssu_busy_cycles = 0;   ///< summed busy cycles over all SSUs
  long long scheduler_cycles = 0;
  long long selector_cycles = 0;
  int iterations = 0;
  int waves_per_iteration = 0;

  OpCounts ops;
  double dynamic_energy_mj = 0.0;
  double leakage_energy_mj = 0.0;

  double time_ms = 0.0;       ///< total_cycles / frequency
  double avg_power_mw = 0.0;  ///< (dynamic + leakage) / time

  /// Mean fraction of SSUs busy while the accelerator ran.
  double ssuUtilization(std::size_t num_ssus) const {
    if (total_cycles <= 0 || num_ssus == 0) return 0.0;
    return static_cast<double>(ssu_busy_cycles) /
           (static_cast<double>(total_cycles) * static_cast<double>(num_ssus));
  }

  double energyMj() const { return dynamic_energy_mj + leakage_energy_mj; }
};

}  // namespace dadu::acc
