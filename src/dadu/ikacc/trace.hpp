// Per-iteration execution trace of an accelerator solve — the
// cycle-level visibility an RTL waveform would give, at the grain the
// simulator models (one record per Quick-IK iteration).
#pragma once

#include <vector>

namespace dadu::acc {

struct IterationTrace {
  int iteration = 0;               ///< 1-based Quick-IK iteration index
  long long spu_cycles = 0;        ///< serial process this iteration
  long long wave_cycles = 0;       ///< all speculative waves
  long long cumulative_cycles = 0; ///< running total at iteration end
  double error = 0.0;              ///< task error after selection
  double alpha_base = 0.0;         ///< Eq. 8 base step this iteration
  int selected_k = 0;              ///< which speculation won (1-based)
};

using SolveTrace = std::vector<IterationTrace>;

}  // namespace dadu::acc
