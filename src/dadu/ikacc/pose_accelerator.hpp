// IKAcc for full 6-D pose targets (future-work extension).
//
// Position-only IK is the paper's evaluation; a deployed accelerator
// would also serve orientation.  The datapath deltas are modest: the
// SPU's J_i stage produces six rows instead of three (one extra cross
// product is free — the angular row IS the joint axis already in the
// pipeline), the JJ^T E accumulation and alpha epilogue work on
// 6-vectors, and each SSU's error block adds a rotation-log extraction
// after the FK chain.  Functional behaviour is exactly
// QuickIkPoseSolver (asserted by tests).
#pragma once

#include "dadu/ikacc/config.hpp"
#include "dadu/ikacc/stats.hpp"
#include "dadu/solvers/pose_solvers.hpp"

namespace dadu::acc {

/// Extra cycles per speculation for the orientation-error block
/// (rotation log: trace, atan2, axis scale).
inline constexpr int kOrientationErrorCycles = 40;

class PoseIkAccelerator {
 public:
  PoseIkAccelerator(kin::Chain chain, ik::PoseSolveOptions options,
                    AccConfig config = {});

  ik::PoseSolveResult solve(const kin::Pose& target, const linalg::VecX& seed);

  const AccConfig& config() const { return config_; }
  const AccStats& lastStats() const { return stats_; }

 private:
  ik::QuickIkPoseSolver solver_;
  ik::PoseSolveOptions options_;
  AccConfig config_;
  std::size_t dof_;
  AccStats stats_;
};

}  // namespace dadu::acc
