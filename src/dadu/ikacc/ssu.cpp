#include "dadu/ikacc/ssu.hpp"

#include <algorithm>

#include "dadu/ikacc/fku.hpp"

namespace dadu::acc {

SsuCost ssuSpeculation(const AccConfig& cfg, std::size_t dof) {
  SsuCost c;
  const long long n = static_cast<long long>(dof);

  // alpha_k = (k/Max) * alpha_base: one multiply by a precomputed
  // constant (k/Max is wired per unit).
  c.cycles += cfg.alpha_gen_cycles;
  c.ops.mul += 1;

  // theta_k = theta + alpha_k * dtheta_base across `update_lanes`
  // MAC lanes.
  const long long lanes = std::max(1, cfg.update_lanes);
  c.cycles += (n + lanes - 1) / lanes;
  c.ops.mul += n;
  c.ops.add += n;
  c.ops.reg += 2 * n;

  // Forward pass on the FKU (dominant term).
  const FkuCost fk = fkuForwardPass(cfg, dof);
  c.cycles += fk.cycles;
  c.ops += fk.ops;

  // error_k = ||Xt - X_k||: 3 sub, 3 mul, 2 add, sqrt.
  c.cycles += cfg.error_cycles;
  c.ops.add += 5;
  c.ops.mul += 3;
  c.ops.sqrt_ += 1;
  return c;
}

}  // namespace dadu::acc
