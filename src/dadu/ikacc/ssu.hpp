// Speculative Search Unit model.
//
// One SSU processes one speculation per wave: generate alpha_k from
// the broadcast alpha_base (Eq. 9), update theta_k = theta + alpha_k *
// dtheta_base across the joint vector, run the forward pass on its
// FKU, and compute the error ||Xt - X_k||.  All SSUs run in lockstep
// within a wave, so the wave latency is a single SSU's latency.
#pragma once

#include <cstddef>

#include "dadu/ikacc/config.hpp"
#include "dadu/ikacc/stats.hpp"

namespace dadu::acc {

struct SsuCost {
  long long cycles = 0;
  OpCounts ops;
};

/// Cost of one speculation on one SSU for an N-joint chain.
SsuCost ssuSpeculation(const AccConfig& cfg, std::size_t dof);

}  // namespace dadu::acc
