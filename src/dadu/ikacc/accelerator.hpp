// IKAcc: the paper's accelerator (Fig. 2), simulated at cycle level.
//
// Functionally the accelerator executes exactly Quick-IK (Algorithm 1)
// — the test suite asserts bit-identical joint trajectories against
// the software QuickIkSolver — while the simulator additionally
// accounts cycles, operation counts, energy and unit utilisation per
// the SPU / SSU / Scheduler / Selector decomposition:
//
//   per iteration:
//     SPU pipeline           (serial head: J, dtheta_base, alpha_base)
//     for each wave:         (ceil(Max / num_ssus) waves)
//       broadcast            (Parallel Search Scheduler)
//       SSU speculation      (all active SSUs in lockstep)
//       selector reduction   (Parameter Selector argmin)
//
// Time = cycles / frequency; energy = per-op dynamic + leakage.
#pragma once

#include "dadu/ikacc/config.hpp"
#include "dadu/ikacc/stats.hpp"
#include "dadu/ikacc/trace.hpp"
#include "dadu/solvers/ik_solver.hpp"
#include "dadu/solvers/jt_common.hpp"

namespace dadu::acc {

class IkAccelerator final : public ik::IkSolver {
 public:
  IkAccelerator(kin::Chain chain, ik::SolveOptions options,
                AccConfig config = {});

  ik::SolveResult solve(const linalg::Vec3& target,
                        const linalg::VecX& seed) override;
  std::string name() const override { return "ikacc"; }
  const kin::Chain& chain() const override { return chain_; }
  const ik::SolveOptions& options() const override { return options_; }

  const AccConfig& config() const { return config_; }
  /// Cycle/energy accounting of the most recent solve().
  const AccStats& lastStats() const { return stats_; }
  /// Per-iteration execution trace of the most recent solve().
  const SolveTrace& lastTrace() const { return trace_; }

 private:
  kin::Chain chain_;
  ik::SolveOptions options_;
  AccConfig config_;
  AccStats stats_;
  SolveTrace trace_;

  ik::JtWorkspace ws_;
  std::vector<linalg::VecX> theta_k_;
  std::vector<double> error_k_;
};

}  // namespace dadu::acc
