#include "dadu/ikacc/pose_accelerator.hpp"

#include "dadu/ikacc/energy.hpp"
#include "dadu/ikacc/scheduler.hpp"
#include "dadu/ikacc/selector.hpp"
#include "dadu/ikacc/spu.hpp"
#include "dadu/ikacc/ssu.hpp"

namespace dadu::acc {

PoseIkAccelerator::PoseIkAccelerator(kin::Chain chain,
                                     ik::PoseSolveOptions options,
                                     AccConfig config)
    : solver_(chain, options),
      options_(options),
      config_(config),
      dof_(chain.dof()) {}

ik::PoseSolveResult PoseIkAccelerator::solve(const kin::Pose& target,
                                             const linalg::VecX& seed) {
  const ik::PoseSolveResult result = solver_.solve(target, seed);

  const std::size_t max_spec =
      static_cast<std::size_t>(options_.speculations);
  const auto waves = scheduleWaves(max_spec, config_.num_ssus);

  // SPU: same per-joint pipeline (the angular J rows reuse the axis
  // already flowing through the stages), doubled JJ^T E accumulation
  // ops and a 6-vector epilogue (two 6-dots + divide ~ 2x the 3-D one).
  SpuCost spu = spuIteration(config_, dof_);
  spu.cycles += config_.alpha_epilogue_cycles;  // wider epilogue
  spu.ops.mul += 6 * static_cast<long long>(dof_) + 6;
  spu.ops.add += 5 * static_cast<long long>(dof_) + 4;

  // SSU: FK chain + position error + rotation-log extraction.
  SsuCost ssu = ssuSpeculation(config_, dof_);
  ssu.cycles += kOrientationErrorCycles;
  ssu.ops.mul += 20;
  ssu.ops.add += 15;
  ssu.ops.trig += 1;   // atan2
  ssu.ops.sqrt_ += 1;  // skew norm

  stats_ = AccStats{};
  stats_.waves_per_iteration = static_cast<int>(waves.size());
  stats_.iterations = result.iterations;

  const long long iters = result.iterations;
  stats_.spu_cycles = (iters + 1) * spu.cycles;
  stats_.total_cycles = stats_.spu_cycles;
  for (long long i = 0; i < iters + 1; ++i) stats_.ops += spu.ops;

  for (long long i = 0; i < iters; ++i) {
    for (const Wave& wave : waves) {
      const long long bcast = broadcastCycles(config_);
      const long long sel = selectorWaveCycles(config_, wave.count);
      stats_.scheduler_cycles += bcast;
      stats_.ssu_cycles += ssu.cycles;
      stats_.selector_cycles += sel;
      stats_.total_cycles += bcast + ssu.cycles + sel;
      stats_.ssu_busy_cycles +=
          ssu.cycles * static_cast<long long>(wave.count);
      for (std::size_t u = 0; u < wave.count; ++u) stats_.ops += ssu.ops;
      stats_.ops.add += static_cast<long long>(wave.count);
    }
  }

  finalizeEnergy(config_, stats_);
  return result;
}

}  // namespace dadu::acc
