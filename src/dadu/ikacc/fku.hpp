// Forward Kinematics Unit model.
//
// The FKU is the datapath inside every SSU (Fig. 2): a controller
// stepping through the joints, a {i-1}T_i generator, a 4x4 matrix-
// multiply logic block and the {1}T_i register files.  The paper's
// point (Section 5.2) is that a 4x4 multiply needs only 16-way
// parallelism, far below a GPU warp, so a small dedicated block wins;
// the HLS-generated block computes one product "in tens of cycles"
// with a few multipliers and adders.
//
// The model prices one full forward pass of an N-joint chain:
// latency and op counts; the functional result comes from the shared
// kinematics library (bit-identical with the software solver).
#pragma once

#include <cstddef>

#include "dadu/ikacc/config.hpp"
#include "dadu/ikacc/stats.hpp"

namespace dadu::acc {

/// Timing/energy of one end-effector FK pass on the FKU.
struct FkuCost {
  long long cycles = 0;
  OpCounts ops;
};

/// Cost of evaluating f(theta) for an N-joint chain: the controller
/// overlaps {i-1}T_i generation with the previous 4x4 multiply, so the
/// per-joint initiation interval is max(dh_gen, mm4).
FkuCost fkuForwardPass(const AccConfig& cfg, std::size_t dof);

/// Cost of a single 4x4 multiply on the logic block (64 mul, 48 add).
FkuCost fkuMatmul(const AccConfig& cfg);

}  // namespace dadu::acc
