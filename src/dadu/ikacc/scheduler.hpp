// Parallel Search Scheduler model.
//
// The number of speculations in the algorithm (Max, 64 in the paper's
// evaluation) can exceed the number of physical SSUs (32 in IKAcc), so
// the scheduler broadcasts the SPU outputs (theta, dtheta_base,
// alpha_base) and issues the speculations in waves of at most
// `num_ssus`, re-dispatching until all are processed — "after multiple
// schedules, all the speculative searches will be processed by the
// limited hardware".
#pragma once

#include <cstddef>
#include <vector>

#include "dadu/ikacc/config.hpp"

namespace dadu::acc {

/// One wave of a schedule: which speculation indices (0-based k-1) run
/// concurrently.
struct Wave {
  std::size_t first = 0;  ///< first speculation index in this wave
  std::size_t count = 0;  ///< number of SSUs active this wave
};

/// Static schedule of `speculations` onto `num_ssus` units.
std::vector<Wave> scheduleWaves(std::size_t speculations,
                                std::size_t num_ssus);

/// Number of waves = ceil(speculations / num_ssus).
std::size_t waveCount(std::size_t speculations, std::size_t num_ssus);

/// Broadcast cost preceding each wave.
long long broadcastCycles(const AccConfig& cfg);

}  // namespace dadu::acc
