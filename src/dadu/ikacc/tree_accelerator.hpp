// IKAcc generalised to kinematic trees (future-work extension).
//
// The datapath story is unchanged: the per-iteration serial head walks
// every joint once (the tree has N nodes regardless of branching), and
// each speculative search evaluates the whole-tree FK — the SSU's FKU
// chain is as long as the node count, with one error block per end
// effector feeding the Parameter Selector.  The stacked task dimension
// only widens the (cheap) alpha epilogue.  Functional behaviour is
// exactly QuickIkTreeSolver (asserted by tests).
#pragma once

#include "dadu/ikacc/config.hpp"
#include "dadu/ikacc/stats.hpp"
#include "dadu/solvers/quick_ik_tree.hpp"

namespace dadu::acc {

class TreeIkAccelerator {
 public:
  TreeIkAccelerator(kin::Tree tree, ik::SolveOptions options,
                    AccConfig config = {});

  ik::TreeSolveResult solve(const std::vector<linalg::Vec3>& targets,
                            const linalg::VecX& seed);

  const kin::Tree& tree() const { return solver_.tree(); }
  const AccConfig& config() const { return config_; }
  const AccStats& lastStats() const { return stats_; }

 private:
  ik::QuickIkTreeSolver solver_;
  AccConfig config_;
  AccStats stats_;
};

}  // namespace dadu::acc
