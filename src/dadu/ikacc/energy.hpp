// Energy model: price accumulated operation counts against the 65 nm
// per-op energy table and add leakage over the elapsed time — the
// cycle-model analogue of the paper's PrimeTime-PX average-power
// analysis.
#pragma once

#include "dadu/ikacc/config.hpp"
#include "dadu/ikacc/stats.hpp"

namespace dadu::acc {

/// Dynamic energy of the given op counts, in millijoules.
double dynamicEnergyMj(const EnergyTable& table, const OpCounts& ops);

/// Leakage energy over `cycles` at the configured frequency, in mJ.
double leakageEnergyMj(const AccConfig& cfg, long long cycles);

/// Fill the energy/time/power fields of `stats` from its cycle and op
/// counters (must be called after the counters are final).
void finalizeEnergy(const AccConfig& cfg, AccStats& stats);

}  // namespace dadu::acc
