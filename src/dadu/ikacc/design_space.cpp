#include "dadu/ikacc/design_space.hpp"

#include "dadu/ikacc/accelerator.hpp"

namespace dadu::acc {

std::vector<DesignPoint> makeGrid(const std::vector<std::size_t>& ssus,
                                  const std::vector<int>& mm4_latencies,
                                  const std::vector<int>& speculations) {
  std::vector<DesignPoint> grid;
  grid.reserve(ssus.size() * mm4_latencies.size() * speculations.size());
  for (const std::size_t s : ssus)
    for (const int m : mm4_latencies)
      for (const int k : speculations) grid.push_back({s, m, k});
  return grid;
}

std::vector<DesignResult> exploreDesignSpace(
    const kin::Chain& chain, const std::vector<workload::IkTask>& tasks,
    const std::vector<DesignPoint>& grid, const ik::SolveOptions& base,
    const AccConfig& base_config) {
  std::vector<DesignResult> results;
  results.reserve(grid.size());

  for (const DesignPoint& point : grid) {
    AccConfig cfg = base_config;
    cfg.num_ssus = point.num_ssus;
    cfg.mm4_cycles = point.mm4_cycles;
    ik::SolveOptions options = base;
    options.speculations = point.speculations;

    IkAccelerator accelerator(chain, options, cfg);
    DesignResult r;
    r.point = point;
    r.area_mm2 = cfg.totalAreaMm2();

    double converged = 0.0;
    for (const workload::IkTask& task : tasks) {
      const auto solve = accelerator.solve(task.target, task.seed);
      const AccStats& stats = accelerator.lastStats();
      r.latency_ms += stats.time_ms;
      r.energy_mj += stats.energyMj();
      r.mean_iterations += solve.iterations;
      if (solve.converged()) converged += 1.0;
    }
    const double n = static_cast<double>(tasks.size());
    if (n > 0) {
      r.latency_ms /= n;
      r.energy_mj /= n;
      r.mean_iterations /= n;
      r.convergence_rate = converged / n;
    }
    results.push_back(r);
  }
  return results;
}

std::vector<DesignResult> paretoFront(const std::vector<DesignResult>& all) {
  const auto dominates = [](const DesignResult& a, const DesignResult& b) {
    const bool no_worse = a.latency_ms <= b.latency_ms &&
                          a.energy_mj <= b.energy_mj &&
                          a.area_mm2 <= b.area_mm2;
    const bool strictly = a.latency_ms < b.latency_ms ||
                          a.energy_mj < b.energy_mj ||
                          a.area_mm2 < b.area_mm2;
    return no_worse && strictly;
  };

  std::vector<DesignResult> front;
  for (const DesignResult& candidate : all) {
    bool dominated = false;
    for (const DesignResult& other : all) {
      if (dominates(other, candidate)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(candidate);
  }
  return front;
}

}  // namespace dadu::acc
