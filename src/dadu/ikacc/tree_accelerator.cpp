#include "dadu/ikacc/tree_accelerator.hpp"

#include "dadu/ikacc/energy.hpp"
#include "dadu/ikacc/scheduler.hpp"
#include "dadu/ikacc/selector.hpp"
#include "dadu/ikacc/spu.hpp"
#include "dadu/ikacc/ssu.hpp"

namespace dadu::acc {

TreeIkAccelerator::TreeIkAccelerator(kin::Tree tree, ik::SolveOptions options,
                                     AccConfig config)
    : solver_(std::move(tree), options), config_(config) {}

ik::TreeSolveResult TreeIkAccelerator::solve(
    const std::vector<linalg::Vec3>& targets, const linalg::VecX& seed) {
  // Functional result from the software solver (the simulator's cycle
  // account is a pure overlay: same iterate trajectory by
  // construction).
  const ik::TreeSolveResult result = solver_.solve(targets, seed);

  const std::size_t dof = solver_.tree().dof();
  const std::size_t ees = solver_.tree().endEffectorCount();
  const std::size_t max_spec =
      static_cast<std::size_t>(solver_.options().speculations);
  const auto waves = scheduleWaves(max_spec, config_.num_ssus);

  // Unit costs.  SPU: one pipeline pass over all nodes; the stacked
  // epilogue does E 3-dots instead of one.
  SpuCost spu = spuIteration(config_, dof);
  spu.cycles += static_cast<long long>(ees - 1) * config_.alpha_epilogue_cycles;
  spu.ops.mul += 6 * static_cast<long long>(ees - 1);
  spu.ops.add += 4 * static_cast<long long>(ees - 1);

  // SSU: whole-tree FK plus one error block per end effector.
  SsuCost ssu = ssuSpeculation(config_, dof);
  ssu.cycles += static_cast<long long>(ees - 1) * config_.error_cycles;
  ssu.ops.add += 5 * static_cast<long long>(ees - 1);
  ssu.ops.mul += 3 * static_cast<long long>(ees - 1);
  ssu.ops.sqrt_ += static_cast<long long>(ees - 1);

  stats_ = AccStats{};
  stats_.waves_per_iteration = static_cast<int>(waves.size());
  stats_.iterations = result.iterations;

  // Iterations that ran the full speculative phase; the final
  // converged check costs one SPU pass.
  const long long full_iters = result.iterations;
  stats_.spu_cycles = (full_iters + 1) * spu.cycles;
  stats_.total_cycles = stats_.spu_cycles;
  for (long long i = 0; i < full_iters + 1; ++i) stats_.ops += spu.ops;

  for (long long i = 0; i < full_iters; ++i) {
    for (const Wave& wave : waves) {
      const long long bcast = broadcastCycles(config_);
      const long long sel = selectorWaveCycles(config_, wave.count);
      stats_.scheduler_cycles += bcast;
      stats_.ssu_cycles += ssu.cycles;
      stats_.selector_cycles += sel;
      stats_.total_cycles += bcast + ssu.cycles + sel;
      stats_.ssu_busy_cycles +=
          ssu.cycles * static_cast<long long>(wave.count);
      for (std::size_t u = 0; u < wave.count; ++u) stats_.ops += ssu.ops;
      stats_.ops.add += static_cast<long long>(wave.count);
    }
  }

  finalizeEnergy(config_, stats_);
  return result;
}

}  // namespace dadu::acc
