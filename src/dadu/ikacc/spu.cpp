#include "dadu/ikacc/spu.hpp"

#include <algorithm>

namespace dadu::acc {
namespace {

long long stageInitiationInterval(const AccConfig& cfg) {
  return std::max({static_cast<long long>(cfg.dh_gen_cycles),
                   static_cast<long long>(cfg.mm4_cycles),
                   static_cast<long long>(cfg.jcol_cycles),
                   static_cast<long long>(cfg.jjte_cycles)});
}

}  // namespace

long long spuPipelinedCycles(const AccConfig& cfg, std::size_t dof) {
  if (dof == 0) return 0;
  // Four-stage pipeline: the slowest stage sets the initiation
  // interval; N items need (N + stages - 1) slots; results forward
  // directly, so no store cycles.
  const long long ii = stageInitiationInterval(cfg);
  return (static_cast<long long>(dof) + 3) * ii + cfg.alpha_epilogue_cycles;
}

long long spuUnpipelinedCycles(const AccConfig& cfg, std::size_t dof) {
  if (dof == 0) return 0;
  // Original flow (Fig. 3(a)): four separate loops, each writing its
  // intermediate results ({i-1}T_i set, {1}T_i set, J) to storage and
  // reading them back in the next loop.  2 cycles per 4x4 store/load
  // word group is folded into a flat per-joint memory penalty.
  constexpr long long kMemPenaltyPerJoint = 16;  // 16 words in/out per stage
  const long long per_joint = cfg.dh_gen_cycles + cfg.mm4_cycles +
                              cfg.jcol_cycles + cfg.jjte_cycles +
                              4 * kMemPenaltyPerJoint;
  return static_cast<long long>(dof) * per_joint + cfg.alpha_epilogue_cycles;
}

SpuCost spuIteration(const AccConfig& cfg, std::size_t dof) {
  SpuCost c;
  c.cycles = cfg.pipelined_spu ? spuPipelinedCycles(cfg, dof)
                               : spuUnpipelinedCycles(cfg, dof);

  const long long n = static_cast<long long>(dof);
  // Stage 1: {i-1}T_i (2 trig + 6 mul per joint).
  c.ops.trig = 2 * n;
  c.ops.mul = 6 * n;
  // Stage 2: {1}T_i = {1}T_{i-1} * {i-1}T_i (4x4 multiply).
  c.ops.mul += 64 * n;
  c.ops.add += 48 * n;
  // Stage 3: J_i (cross product: 6 mul, 3 add; vector diff: 3 add).
  c.ops.mul += 6 * n;
  c.ops.add += 6 * n;
  // Stage 4: JJ^T E += J_i (J_i . e): 3 mul + 2 add for the dot, 3 mul
  // + 3 add for the scaled accumulate; dtheta_base_i = J_i . e reuses
  // the dot product (register write only).
  c.ops.mul += 6 * n;
  c.ops.add += 5 * n;
  c.ops.reg += (cfg.pipelined_spu ? 8 : 40) * n;  // forwarding vs stores
  // Epilogue alpha_base = (e.v)/(v.v): two 3-dots + divide.
  c.ops.mul += 6;
  c.ops.add += 4;
  c.ops.div += 1;
  return c;
}

}  // namespace dadu::acc
