// Serial Process Unit model (Fig. 3 of the paper).
//
// Each iteration begins with inherently serial work: compute the
// Jacobian J, the base update dtheta_base = J^T e and the base step
// alpha_base (Eq. 8).  The paper restructures the original multi-loop
// flow (Fig. 3(a)) into one fused loop per joint (Fig. 3(b)) and
// pipelines it in four stages (Fig. 3(c)):
//
//     {i-1}T_i C  ->  {1}T_i C  ->  J_i C  ->  JJ^T E C
//
// with results forwarded stage to stage, avoiding intermediate stores.
// The model prices both the pipelined and the original (unpipelined)
// flow so the restructuring is an ablatable design choice.
#pragma once

#include <cstddef>

#include "dadu/ikacc/config.hpp"
#include "dadu/ikacc/stats.hpp"

namespace dadu::acc {

struct SpuCost {
  long long cycles = 0;
  OpCounts ops;
};

/// Cost of one serial-process pass over an N-joint chain, producing J
/// (implicitly), dtheta_base, JJ^T e and alpha_base.
SpuCost spuIteration(const AccConfig& cfg, std::size_t dof);

/// Cycles of the pipelined flow only (for the Fig. 3 ablation).
long long spuPipelinedCycles(const AccConfig& cfg, std::size_t dof);
/// Cycles of the original unpipelined flow (Fig. 3(a)) incl. the
/// intermediate-result stores the pipeline eliminates.
long long spuUnpipelinedCycles(const AccConfig& cfg, std::size_t dof);

}  // namespace dadu::acc
