// Parameter Selector model.
//
// Selects the theta_o with minimum error across all speculations
// (Algorithm 1 line 16) with a comparator reduction tree across the
// SSUs of one wave, plus one register compare to carry the running
// best across waves — "the Parameter Selector needs to store and
// compare the last result at each schedule, but the overhead is
// negligible".
#pragma once

#include <cstddef>

#include "dadu/ikacc/config.hpp"

namespace dadu::acc {

/// Cycles for the argmin reduction over one wave of `active` SSUs,
/// including the cross-wave carry compare.
long long selectorWaveCycles(const AccConfig& cfg, std::size_t active);

}  // namespace dadu::acc
