#include "dadu/ikacc/scheduler.hpp"

#include <algorithm>

namespace dadu::acc {

std::size_t waveCount(std::size_t speculations, std::size_t num_ssus) {
  if (num_ssus == 0) return 0;
  return (speculations + num_ssus - 1) / num_ssus;
}

std::vector<Wave> scheduleWaves(std::size_t speculations,
                                std::size_t num_ssus) {
  std::vector<Wave> waves;
  if (num_ssus == 0) return waves;
  waves.reserve(waveCount(speculations, num_ssus));
  for (std::size_t first = 0; first < speculations; first += num_ssus) {
    waves.push_back({first, std::min(num_ssus, speculations - first)});
  }
  return waves;
}

long long broadcastCycles(const AccConfig& cfg) {
  return cfg.broadcast_cycles;
}

}  // namespace dadu::acc
