// Problem-level pipelining: IKAcc in throughput mode.
//
// A single solve alternates the SPU (serial head) and the SSU array
// (speculative waves); while one runs, the other idles — visible as
// the ~66% SSU utilisation the trace reports.  With two IK problems in
// flight (a batch of targets, e.g. a multi-arm controller or a motion
// planner's query stream), problem B's serial head can execute on the
// SPU while problem A's waves occupy the SSUs, and vice versa —
// classic double buffering.  Iteration *latency* is unchanged;
// iteration *throughput* improves by up to
//
//     (spu + waves) / max(spu, waves).
//
// This module prices that mode analytically from the same unit costs
// the solve simulator uses.
#pragma once

#include <cstddef>

#include "dadu/ikacc/config.hpp"

namespace dadu::acc {

struct ThroughputEstimate {
  double single_iter_cycles = 0.0;   ///< SPU + waves, serialised
  double pipelined_iter_cycles = 0.0;///< max(SPU, waves) steady state
  double overlap_speedup = 1.0;      ///< single / pipelined
  /// Solves per second at steady state for a given mean iteration
  /// count, single-problem and pipelined.
  double solves_per_sec_single = 0.0;
  double solves_per_sec_pipelined = 0.0;
};

/// Estimate batch throughput for `dof`-joint problems with
/// `speculations` per iteration and `mean_iterations` per solve.
ThroughputEstimate estimateBatchThroughput(const AccConfig& cfg,
                                           std::size_t dof, int speculations,
                                           double mean_iterations);

}  // namespace dadu::acc
