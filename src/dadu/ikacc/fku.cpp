#include "dadu/ikacc/fku.hpp"

#include <algorithm>

namespace dadu::acc {

FkuCost fkuMatmul(const AccConfig& cfg) {
  FkuCost c;
  c.cycles = cfg.mm4_cycles;
  c.ops.mul = 64;
  c.ops.add = 48;
  c.ops.reg = 32;  // read two operands, write result
  return c;
}

FkuCost fkuForwardPass(const AccConfig& cfg, std::size_t dof) {
  FkuCost c;
  if (dof == 0) return c;

  const long long ii =
      std::max<long long>(cfg.dh_gen_cycles, cfg.mm4_cycles);
  // First joint fills the pipeline (generate + multiply back to back),
  // remaining joints run at the initiation interval.
  c.cycles = cfg.dh_gen_cycles + cfg.mm4_cycles +
             static_cast<long long>(dof - 1) * ii;

  const FkuCost mm = fkuMatmul(cfg);
  c.ops.mul = static_cast<long long>(dof) * (mm.ops.mul + 6);  // +a*ct etc.
  c.ops.add = static_cast<long long>(dof) * mm.ops.add;
  c.ops.trig = static_cast<long long>(dof) * 2;  // sin/cos of theta_i
  c.ops.reg = static_cast<long long>(dof) * (mm.ops.reg + 8);
  return c;
}

}  // namespace dadu::acc
