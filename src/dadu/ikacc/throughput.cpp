#include "dadu/ikacc/throughput.hpp"

#include <algorithm>

#include "dadu/ikacc/scheduler.hpp"
#include "dadu/ikacc/selector.hpp"
#include "dadu/ikacc/spu.hpp"
#include "dadu/ikacc/ssu.hpp"

namespace dadu::acc {

ThroughputEstimate estimateBatchThroughput(const AccConfig& cfg,
                                           std::size_t dof, int speculations,
                                           double mean_iterations) {
  ThroughputEstimate est;
  if (dof == 0 || speculations < 1 || mean_iterations <= 0.0) return est;

  const SpuCost spu = spuIteration(cfg, dof);
  const SsuCost ssu = ssuSpeculation(cfg, dof);
  const auto waves =
      scheduleWaves(static_cast<std::size_t>(speculations), cfg.num_ssus);

  long long wave_cycles = 0;
  for (const Wave& w : waves)
    wave_cycles +=
        broadcastCycles(cfg) + ssu.cycles + selectorWaveCycles(cfg, w.count);

  est.single_iter_cycles = static_cast<double>(spu.cycles + wave_cycles);
  est.pipelined_iter_cycles = static_cast<double>(
      std::max<long long>(spu.cycles, wave_cycles));
  est.overlap_speedup = est.single_iter_cycles / est.pipelined_iter_cycles;

  const double hz = cfg.freq_ghz * 1e9;
  est.solves_per_sec_single =
      hz / (est.single_iter_cycles * mean_iterations);
  est.solves_per_sec_pipelined =
      hz / (est.pipelined_iter_cycles * mean_iterations);
  return est;
}

}  // namespace dadu::acc
