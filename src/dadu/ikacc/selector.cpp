#include "dadu/ikacc/selector.hpp"

namespace dadu::acc {

long long selectorWaveCycles(const AccConfig& cfg, std::size_t active) {
  if (active == 0) return 0;
  // Comparator tree depth = ceil(log2(active)); +1 for the cross-wave
  // running-best compare.
  long long levels = 0;
  std::size_t width = 1;
  while (width < active) {
    width <<= 1;
    ++levels;
  }
  return (levels + 1) * cfg.selector_level_cycles;
}

}  // namespace dadu::acc
