#include "dadu/ikacc/energy.hpp"

namespace dadu::acc {

double dynamicEnergyMj(const EnergyTable& t, const OpCounts& ops) {
  const double pj = static_cast<double>(ops.mul) * t.mul_pj +
                    static_cast<double>(ops.add) * t.add_pj +
                    static_cast<double>(ops.div) * t.div_pj +
                    static_cast<double>(ops.sqrt_) * t.sqrt_pj +
                    static_cast<double>(ops.trig) * t.trig_pj +
                    static_cast<double>(ops.reg) * t.reg_pj;
  return pj * 1e-9;  // pJ -> mJ
}

double leakageEnergyMj(const AccConfig& cfg, long long cycles) {
  const double seconds = static_cast<double>(cycles) * cfg.cyclePeriodSec();
  return cfg.leakage_mw * seconds;  // mW * s = mJ
}

void finalizeEnergy(const AccConfig& cfg, AccStats& stats) {
  stats.dynamic_energy_mj = dynamicEnergyMj(cfg.energy, stats.ops);
  stats.leakage_energy_mj = leakageEnergyMj(cfg, stats.total_cycles);
  stats.time_ms =
      static_cast<double>(stats.total_cycles) * cfg.cyclePeriodSec() * 1e3;
  stats.avg_power_mw =
      stats.time_ms > 0.0 ? stats.energyMj() / (stats.time_ms * 1e-3) : 0.0;
}

}  // namespace dadu::acc
