#include "dadu/ikacc/accelerator.hpp"

#include <stdexcept>

#include "dadu/ikacc/energy.hpp"
#include "dadu/ikacc/scheduler.hpp"
#include "dadu/ikacc/selector.hpp"
#include "dadu/ikacc/spu.hpp"
#include "dadu/ikacc/ssu.hpp"
#include "dadu/kinematics/forward.hpp"

namespace dadu::acc {

IkAccelerator::IkAccelerator(kin::Chain chain, ik::SolveOptions options,
                             AccConfig config)
    : chain_(std::move(chain)), options_(options), config_(config) {
  if (options_.speculations < 1)
    throw std::invalid_argument("IKAcc requires at least 1 speculation");
  if (config_.num_ssus == 0)
    throw std::invalid_argument("IKAcc requires at least 1 SSU");
  theta_k_.assign(options_.speculations, linalg::VecX(chain_.dof()));
  error_k_.assign(options_.speculations, 0.0);
}

ik::SolveResult IkAccelerator::solve(const linalg::Vec3& target,
                                     const linalg::VecX& seed) {
  ik::validateInputs(chain_, target, seed);

  const std::size_t dof = chain_.dof();
  const std::size_t max_spec = static_cast<std::size_t>(options_.speculations);
  const auto waves = scheduleWaves(max_spec, config_.num_ssus);

  // Per-iteration unit costs are configuration-static; price them once.
  const SpuCost spu = spuIteration(config_, dof);
  const SsuCost ssu = ssuSpeculation(config_, dof);
  const long long bcast = broadcastCycles(config_);

  stats_ = AccStats{};
  stats_.waves_per_iteration = static_cast<int>(waves.size());
  trace_.clear();

  ik::SolveResult result;
  result.theta = seed;

  if (options_.max_iterations <= 0) {
    const ik::JtIterationHead head =
        ik::jtIterationHead(chain_, result.theta, target, ws_);
    ++result.fk_evaluations;
    stats_.spu_cycles += spu.cycles;
    stats_.total_cycles += spu.cycles;
    stats_.ops += spu.ops;
    result.error = head.error;
    result.status = head.error < options_.accuracy
                        ? ik::Status::kConverged
                        : ik::Status::kMaxIterations;
    finalizeEnergy(config_, stats_);
    return result;
  }

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // ---- Serial Process Unit -------------------------------------
    const ik::JtIterationHead head =
        ik::jtIterationHead(chain_, result.theta, target, ws_);
    ++result.fk_evaluations;
    stats_.spu_cycles += spu.cycles;
    stats_.total_cycles += spu.cycles;
    stats_.ops += spu.ops;

    if (options_.record_history) result.error_history.push_back(head.error);
    result.error = head.error;

    if (head.error < options_.accuracy) {
      result.status = ik::Status::kConverged;
      break;
    }
    if (head.stalled) {
      result.status = ik::Status::kStalled;
      break;
    }

    // ---- Speculative waves ----------------------------------------
    long long wave_cycles_this_iter = 0;
    for (const Wave& wave : waves) {
      stats_.scheduler_cycles += bcast;
      stats_.total_cycles += bcast;

      for (std::size_t u = 0; u < wave.count; ++u) {
        const std::size_t idx = wave.first + u;
        const int k = static_cast<int>(idx) + 1;
        const double alpha_k =
            (static_cast<double>(k) / static_cast<double>(max_spec)) *
            head.alpha_base;  // Eq. 9
        linalg::axpyInto(alpha_k, ws_.dtheta_base, result.theta,
                         theta_k_[idx]);
        if (options_.clamp_to_limits)
          theta_k_[idx] = chain_.clampToLimits(theta_k_[idx]);
        const linalg::Vec3 x_k =
            kin::endEffectorPosition(chain_, theta_k_[idx]);
        error_k_[idx] = (target - x_k).norm();
      }
      result.fk_evaluations += static_cast<long long>(wave.count);

      // All active SSUs run in lockstep: wave latency = one SSU, energy
      // = count * one SSU.
      stats_.ssu_cycles += ssu.cycles;
      stats_.total_cycles += ssu.cycles;
      stats_.ssu_busy_cycles += ssu.cycles * static_cast<long long>(wave.count);
      for (std::size_t u = 0; u < wave.count; ++u) stats_.ops += ssu.ops;

      const long long sel = selectorWaveCycles(config_, wave.count);
      stats_.selector_cycles += sel;
      stats_.total_cycles += sel;
      stats_.ops.add += static_cast<long long>(wave.count);  // comparators
      wave_cycles_this_iter += bcast + ssu.cycles + sel;
    }

    result.speculation_load += static_cast<long long>(max_spec);
    ++result.iterations;
    ++stats_.iterations;

    // ---- Parameter Selector (functional argmin, ties to smallest k,
    // identical to the software solver) -----------------------------
    std::size_t best = 0;
    for (std::size_t idx = 1; idx < max_spec; ++idx)
      if (error_k_[idx] < error_k_[best]) best = idx;

    // Monotone descent guard (mirrors QuickIkSolver bit-for-bit): the
    // selector's winner is adopted only when it improves on the
    // pre-sweep error; otherwise the configuration is held and the
    // solve stalls — the deterministic alpha ladder would only repeat
    // the same losing sweep.  Projected descent (clamp_to_limits) is
    // exempt, exactly as in the software solver.
    if (!options_.clamp_to_limits && !(error_k_[best] < head.error)) {
      trace_.push_back({result.iterations, spu.cycles, wave_cycles_this_iter,
                        stats_.total_cycles, result.error, head.alpha_base,
                        static_cast<int>(best) + 1});
      result.status = ik::Status::kStalled;
      break;
    }

    result.theta = theta_k_[best];
    result.error = error_k_[best];

    trace_.push_back({result.iterations, spu.cycles, wave_cycles_this_iter,
                      stats_.total_cycles, result.error, head.alpha_base,
                      static_cast<int>(best) + 1});

    if (error_k_[best] < options_.accuracy) {
      result.status = ik::Status::kConverged;
      if (options_.record_history) result.error_history.push_back(result.error);
      break;
    }
    if (iter + 1 == options_.max_iterations)
      result.status = ik::Status::kMaxIterations;
  }

  if (result.error < options_.accuracy) result.status = ik::Status::kConverged;
  // Budget exhausted after an adopting sweep: mirror the software
  // solver and record the adopted error as the final history entry.
  if (options_.record_history && result.status == ik::Status::kMaxIterations)
    result.error_history.push_back(result.error);
  finalizeEnergy(config_, stats_);
  return result;
}

}  // namespace dadu::acc
