// IKAcc hardware configuration (Fig. 2 of the paper).
//
// The paper's implementation is HLS-generated RTL at Nangate 65 nm,
// 1 GHz, 32 Speculative Search Units, 2.27 mm^2, 158.6 mW average.
// We model it at cycle level: every unit has an explicit latency in
// cycles, chosen to match the paper's qualitative statements (the 4x4
// matrix-multiply block "adopts a few multipliers and adders to
// calculate the result in tens of cycles"), and an energy table at
// 65 nm-class per-operation costs.  EXPERIMENTS.md records how the
// derived latency/power compare with the paper's Table 2/3.
#pragma once

#include <algorithm>
#include <cstddef>

namespace dadu::acc {

/// Per-operation dynamic energy (picojoules) at 65 nm, 1.1 V — the
/// granularity PrimeTime-PX style analysis averages over.
struct EnergyTable {
  double mul_pj = 1.7;     ///< FP multiply
  double add_pj = 0.6;     ///< FP add/sub/compare
  double div_pj = 7.0;     ///< FP divide
  double sqrt_pj = 7.0;    ///< FP square root
  double trig_pj = 5.5;    ///< sin/cos (CORDIC / LUT block)
  double reg_pj = 0.12;    ///< register-file access
};

/// Structural and timing parameters of the accelerator.
struct AccConfig {
  // --- structure -------------------------------------------------
  std::size_t num_ssus = 32;       ///< Speculative Search Units on chip
  double freq_ghz = 1.0;           ///< clock (paper: 1 GHz @ 1 V)

  // --- unit latencies (cycles) ------------------------------------
  /// One 4x4 matrix multiply on the FKU logic block.  The paper's HLS
  /// block trades multipliers for latency ("tens of cycles"); 24
  /// cycles corresponds to ~5 multipliers + 3 adders time-multiplexed.
  int mm4_cycles = 24;
  /// Compute the entries of {i-1}T_i (two sin/cos pairs + 6 products).
  int dh_gen_cycles = 16;
  /// Jacobian column J_i = {1}T_i.M x ({1}T_N.P - {1}T_i.P).
  int jcol_cycles = 12;
  /// Accumulate J_i J_i^T E into the running JJ^T E sum (Eq. 11).
  int jjte_cycles = 8;
  /// Epilogue of the serial process: two dot products + divide (Eq. 8).
  int alpha_epilogue_cycles = 24;
  /// SSU: generate alpha_k and start the theta update (per wave).
  int alpha_gen_cycles = 4;
  /// SSU theta update lanes: theta_k,i = theta_i + alpha_k * d_i
  /// processed `update_lanes` joints per cycle.
  int update_lanes = 4;
  /// SSU error: 3 subs, 3 mults, 2 adds, sqrt.
  int error_cycles = 14;
  /// Parallel Search Scheduler broadcast of (theta, dtheta, alpha_base)
  /// to all SSUs at the start of each wave.
  int broadcast_cycles = 4;
  /// Parameter Selector: one comparator level per cycle.
  int selector_level_cycles = 1;

  /// Pipelined serial process (Fig. 3(c)); false = original flow of
  /// Fig. 3(a) for the ablation bench.
  bool pipelined_spu = true;

  // --- power -------------------------------------------------------
  EnergyTable energy;
  double leakage_mw = 18.0;  ///< static power of the whole accelerator

  // --- area model (mm^2, 65 nm) -------------------------------------
  // The FKU's HLS trade-off is structural: a 4x4 multiply is 64
  // multiplies + 48 adds; finishing it in `mm4_cycles` cycles needs
  // roughly ceil(64 / mm4_cycles) multipliers (and proportionally many
  // adders) time-multiplexed by the controller.  Area therefore GROWS
  // as the configured latency shrinks — the tension the design-space
  // exploration trades against.
  double fp_mult_area_mm2 = 0.0042;   ///< one FP multiplier
  double fp_add_area_mm2 = 0.0016;    ///< one FP adder
  double trig_block_area_mm2 = 0.012; ///< CORDIC sin/cos block per SSU
  double ssu_fixed_area_mm2 = 0.024;  ///< registers + control per SSU
  double spu_area_mm2 = 0.45;
  double misc_area_mm2 = 0.16;        ///< scheduler + selector + interconnect

  /// Multipliers the FKU needs to meet the configured latency.
  int fkuMultipliers() const {
    const int lat = std::max(mm4_cycles, 1);
    return static_cast<int>((64 + lat - 1) / lat);
  }
  /// Adders, sized to the same time-multiplexing factor.
  int fkuAdders() const {
    const int lat = std::max(mm4_cycles, 1);
    return static_cast<int>((48 + lat - 1) / lat);
  }

  /// Area of one Speculative Search Unit (FKU + alpha/error datapath).
  double ssuAreaMm2() const {
    return fkuMultipliers() * fp_mult_area_mm2 +
           fkuAdders() * fp_add_area_mm2 + trig_block_area_mm2 +
           ssu_fixed_area_mm2;
  }

  double totalAreaMm2() const {
    return spu_area_mm2 + ssuAreaMm2() * static_cast<double>(num_ssus) +
           misc_area_mm2;
  }
  /// Seconds per cycle.
  double cyclePeriodSec() const { return 1e-9 / freq_ghz; }
};

}  // namespace dadu::acc
