#include "dadu/report/csv.hpp"

#include <stdexcept>

namespace dadu::report {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), width_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  writeRow(header);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::writeRow(const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    out_ << escape(row[i]);
    if (i + 1 < row.size()) out_ << ',';
  }
  out_ << '\n';
}

void CsvWriter::addRow(const std::vector<std::string>& row) {
  if (row.size() != width_)
    throw std::runtime_error("CsvWriter: row width mismatch in " + path_);
  writeRow(row);
  out_.flush();
}

}  // namespace dadu::report
