// Fixed-width console tables in the style of the paper's Tables 1-3,
// used by every bench binary to print its reproduced rows.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace dadu::report {

/// A simple column-aligned text table.  Cells are strings; numeric
/// helpers format with fixed precision.  Rendering right-aligns
/// numeric-looking cells and left-aligns text.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a data row; must match the header width.
  void addRow(std::vector<std::string> row);

  /// Format helpers.
  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);
  static std::string sci(double v, int precision = 2);

  void print(std::ostream& os) const;
  std::string toString() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner ("== Table 2: ... ==") used by benches.
void banner(std::ostream& os, const std::string& title);

}  // namespace dadu::report
