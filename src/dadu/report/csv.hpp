// CSV writer so every bench can dump machine-readable results next to
// its console table (for replotting the paper's figures).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace dadu::report {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header; throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void addRow(const std::vector<std::string>& row);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t width_;

  static std::string escape(const std::string& cell);
  void writeRow(const std::vector<std::string>& row);
};

}  // namespace dadu::report
