#include "dadu/report/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

namespace dadu::report {
namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@'};

struct Range {
  double lo = 0.0;
  double hi = 1.0;
};

double transform(double v, bool log_y, double floor_positive) {
  if (!log_y) return v;
  return std::log10(std::max(v, floor_positive));
}

Range dataRange(
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    bool log_y) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  double floor_positive = std::numeric_limits<double>::infinity();
  for (const auto& [name, values] : series)
    for (double v : values)
      if (v > 0.0) floor_positive = std::min(floor_positive, v);
  if (!std::isfinite(floor_positive)) floor_positive = 1e-12;

  for (const auto& [name, values] : series)
    for (double v : values) {
      const double t = transform(v, log_y, floor_positive);
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
  if (!std::isfinite(lo) || !std::isfinite(hi)) return {0.0, 1.0};
  if (hi - lo < 1e-12) hi = lo + 1.0;
  return {lo, hi};
}

std::string renderCanvas(
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    const PlotOptions& o) {
  const int w = std::max(o.width, 8);
  const int h = std::max(o.height, 4);

  double floor_positive = std::numeric_limits<double>::infinity();
  for (const auto& [name, values] : series)
    for (double v : values)
      if (v > 0.0) floor_positive = std::min(floor_positive, v);
  if (!std::isfinite(floor_positive)) floor_positive = 1e-12;

  const Range range = dataRange(series, o.log_y);

  std::vector<std::string> canvas(h, std::string(w, ' '));
  std::size_t longest = 1;
  for (const auto& [name, values] : series)
    longest = std::max(longest, values.size());

  for (std::size_t s = 0; s < series.size(); ++s) {
    const auto& values = series[s].second;
    const char glyph = kGlyphs[s % sizeof(kGlyphs)];
    for (std::size_t i = 0; i < values.size(); ++i) {
      const int col =
          longest <= 1
              ? 0
              : static_cast<int>(static_cast<double>(i) * (w - 1) /
                                 static_cast<double>(longest - 1));
      const double t = transform(values[i], o.log_y, floor_positive);
      const double frac = (t - range.lo) / (range.hi - range.lo);
      const int row = (h - 1) - static_cast<int>(std::lround(frac * (h - 1)));
      canvas[std::clamp(row, 0, h - 1)][std::clamp(col, 0, w - 1)] = glyph;
    }
  }

  std::ostringstream out;
  if (!o.label.empty()) out << o.label << '\n';
  const auto axisValue = [&](double t) {
    return o.log_y ? std::pow(10.0, t) : t;
  };
  out << std::scientific << std::setprecision(1);
  out << std::setw(9) << axisValue(range.hi) << " +" << '\n';
  for (const auto& row : canvas) out << std::string(11, ' ') << row << '\n';
  out << std::setw(9) << axisValue(range.lo) << " +" << std::string(w, '-')
      << '\n';
  if (series.size() > 1) {
    out << std::string(11, ' ');
    for (std::size_t s = 0; s < series.size(); ++s)
      out << kGlyphs[s % sizeof(kGlyphs)] << " = " << series[s].first << "  ";
    out << '\n';
  }
  return out.str();
}

}  // namespace

std::string plotSeries(const std::vector<double>& values,
                       const PlotOptions& options) {
  return renderCanvas({{options.label.empty() ? "series" : options.label,
                        values}},
                      options);
}

std::string plotMultiSeries(
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    const PlotOptions& options) {
  return renderCanvas(series, options);
}

std::string barChart(
    const std::vector<std::pair<std::string, double>>& values, int width,
    const std::string& unit) {
  double hi = 0.0;
  std::size_t name_w = 1;
  for (const auto& [name, v] : values) {
    hi = std::max(hi, v);
    name_w = std::max(name_w, name.size());
  }
  if (hi <= 0.0) hi = 1.0;

  std::ostringstream out;
  out << std::fixed << std::setprecision(3);
  for (const auto& [name, v] : values) {
    const int len = static_cast<int>(std::lround(v / hi * width));
    out << std::setw(static_cast<int>(name_w)) << std::left << name << " |"
        << std::string(std::max(len, v > 0.0 ? 1 : 0), '#') << ' ' << v;
    if (!unit.empty()) out << ' ' << unit;
    out << '\n';
  }
  return out.str();
}

}  // namespace dadu::report
