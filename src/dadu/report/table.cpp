#include "dadu/report/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace dadu::report {
namespace {

bool looksNumeric(const std::string& s) {
  if (s.empty()) return false;
  return s.find_first_not_of("0123456789.+-eExX%") == std::string::npos;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::addRow(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("Table: row width " +
                                std::to_string(row.size()) + " != header " +
                                std::to_string(header_.size()));
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::integer(long long v) { return std::to_string(v); }

std::string Table::sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto printRow = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ';
      const bool right = looksNumeric(row[c]);
      if (right)
        os << std::setw(static_cast<int>(width[c])) << std::right << row[c];
      else
        os << std::setw(static_cast<int>(width[c])) << std::left << row[c];
      os << " |";
    }
    os << '\n';
  };

  printRow(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(width[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) printRow(row);
}

std::string Table::toString() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace dadu::report
