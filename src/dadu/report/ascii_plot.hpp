// Terminal plotting: log-scale convergence curves and bar charts, so
// examples and benches can show the *shape* of a result (the thing the
// paper's figures communicate) without any plotting dependency.
#pragma once

#include <string>
#include <vector>

namespace dadu::report {

struct PlotOptions {
  int width = 72;       ///< character columns for the data area
  int height = 16;      ///< character rows
  bool log_y = true;    ///< logarithmic y (IK error spans decades)
  std::string label;    ///< printed above the plot
};

/// Render one series (e.g. per-iteration error) as an ASCII chart.
/// Non-positive values are clamped to the smallest positive value when
/// log_y is set.  Returns a multi-line string.
std::string plotSeries(const std::vector<double>& values,
                       const PlotOptions& options = {});

/// Render several labelled series on a shared canvas, one glyph per
/// series ('*', 'o', '+', 'x', ...).
std::string plotMultiSeries(
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    const PlotOptions& options = {});

/// Horizontal bar chart for labelled scalar comparisons (e.g. solve
/// time per method).
std::string barChart(
    const std::vector<std::pair<std::string, double>>& values, int width = 48,
    const std::string& unit = "");

}  // namespace dadu::report
