// Parallel batch solving: many independent IK problems across worker
// threads — the throughput-oriented usage (sampling-based motion
// planners evaluate thousands of IK queries per plan), complementary
// to the latency-oriented single-solve path the paper accelerates.
//
// Parallelism here is across *problems*; each worker owns a private
// solver instance (solvers carry per-solve workspaces and are not
// thread-safe by design).
//
// Since the serving-layer PR this is a thin synchronous wrapper over a
// transient service::IkService (seed cache off, queue sized to the
// batch) — one worker-dispatch implementation for the whole tree.
// Long-lived callers that want admission control, deadlines or the
// warm-start cache should hold an IkService directly.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "dadu/kinematics/chain.hpp"
#include "dadu/solvers/ik_solver.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu {

/// Factory producing one solver instance per worker.
using SolverFactory = std::function<std::unique_ptr<ik::IkSolver>()>;

struct BatchRunReport {
  std::vector<ik::SolveResult> results;  ///< one per task, in task order
  double wall_ms = 0.0;
  double solves_per_second = 0.0;
  int converged = 0;
};

/// Solve `tasks` with `threads` workers (0 = hardware concurrency),
/// each constructed via `factory`.  Results are returned in task order
/// and are identical to a serial run (workers never share state).
BatchRunReport solveBatchParallel(const SolverFactory& factory,
                                  const std::vector<workload::IkTask>& tasks,
                                  std::size_t threads = 0);

}  // namespace dadu
