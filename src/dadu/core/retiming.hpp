// Trajectory time parameterisation: assign timestamps to a joint-space
// waypoint path under per-joint velocity and acceleration limits
// (trapezoidal profile per segment) — the step between a planner's
// geometric path (RRT output, IK waypoint chains) and an executable
// trajectory.
#pragma once

#include <vector>

#include "dadu/linalg/vecx.hpp"

namespace dadu {

struct RetimingLimits {
  double max_velocity = 2.0;      ///< rad/s, per joint
  double max_acceleration = 8.0;  ///< rad/s^2, per joint
};

struct TimedWaypoint {
  double time = 0.0;  ///< seconds from trajectory start
  linalg::VecX configuration;
};

/// Timestamp `path` so that every segment respects the limits on its
/// worst joint: a segment of per-joint displacement d takes the
/// trapezoidal (or triangular) minimum time for max |d_i|, with the
/// profile starting and ending at rest per segment (conservative but
/// safe — standard for stitched planner paths).  Returns one timed
/// waypoint per input configuration; empty input -> empty output.
/// Throws std::invalid_argument on non-positive limits.
std::vector<TimedWaypoint> retimeTrapezoidal(
    const std::vector<linalg::VecX>& path, const RetimingLimits& limits = {});

/// Total duration of a timed trajectory (0 for empty).
double trajectoryDuration(const std::vector<TimedWaypoint>& timed);

/// Configuration at time t by linear interpolation between timed
/// waypoints (clamped to the ends).
linalg::VecX sampleTrajectory(const std::vector<TimedWaypoint>& timed,
                              double t);

}  // namespace dadu
