// Warm-started trajectory tracking: solve a sequence of task-space
// waypoints, seeding each solve with the previous solution — the
// actual usage pattern of a real-time IK solver inside a robot
// controller (and the reason the paper cares about worst-case solve
// latency, not just averages).
#pragma once

#include <vector>

#include "dadu/solvers/ik_solver.hpp"

namespace dadu {

struct TrajectoryResult {
  std::vector<ik::SolveResult> waypoints;
  int converged = 0;
  double max_iterations = 0.0;   ///< worst waypoint
  double mean_iterations = 0.0;
  double max_error = 0.0;
  /// Joint-space smoothness: mean ||theta_{t+1} - theta_t||; warm
  /// starting should keep this small (continuity of the solved path).
  double mean_joint_step = 0.0;

  bool allConverged() const {
    return converged == static_cast<int>(waypoints.size());
  }
};

/// Track `path` with `solver`, warm starting each waypoint from the
/// previous solution (first waypoint from `seed`).
TrajectoryResult solveTrajectory(ik::IkSolver& solver,
                                 const std::vector<linalg::Vec3>& path,
                                 const linalg::VecX& seed);

}  // namespace dadu
