#include "dadu/core/batch_runner.hpp"

#include <atomic>
#include <stdexcept>
#include <thread>

#include "dadu/platform/timer.hpp"

namespace dadu {

BatchRunReport solveBatchParallel(const SolverFactory& factory,
                                  const std::vector<workload::IkTask>& tasks,
                                  std::size_t threads) {
  if (!factory) throw std::invalid_argument("solveBatchParallel: null factory");
  if (threads == 0)
    threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, std::max<std::size_t>(tasks.size(), 1));

  BatchRunReport report;
  report.results.resize(tasks.size());
  platform::WallTimer timer;

  // Dynamic work stealing over a shared atomic index: task costs vary
  // wildly (restarts, near-singular targets), so static partitioning
  // would leave workers idle.
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    const auto solver = factory();
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= tasks.size()) return;
      report.results[i] = solver->solve(tasks[i].target, tasks[i].seed);
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  report.wall_ms = timer.elapsedMs();
  for (const auto& r : report.results)
    if (r.converged()) ++report.converged;
  report.solves_per_second =
      report.wall_ms > 0.0
          ? static_cast<double>(tasks.size()) / (report.wall_ms * 1e-3)
          : 0.0;
  return report;
}

}  // namespace dadu
