#include "dadu/core/batch_runner.hpp"

#include <algorithm>
#include <future>
#include <stdexcept>
#include <thread>
#include <utility>

#include "dadu/platform/timer.hpp"
#include "dadu/service/ik_service.hpp"

namespace dadu {

// Thin wrapper over a transient IkService so there is exactly one
// worker-dispatch implementation in the tree.  The service is
// configured to reproduce the old inline thread loop bit for bit:
// seed cache off (results must equal a serial run from the given
// seeds), queue sized to the whole batch (admission can never reject),
// per-worker solver instances from the same factory.
BatchRunReport solveBatchParallel(const SolverFactory& factory,
                                  const std::vector<workload::IkTask>& tasks,
                                  std::size_t threads) {
  if (!factory) throw std::invalid_argument("solveBatchParallel: null factory");
  if (threads == 0)
    threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, std::max<std::size_t>(tasks.size(), 1));

  BatchRunReport report;
  report.results.resize(tasks.size());
  platform::WallTimer timer;

  {
    service::ServiceConfig config;
    config.workers = threads;
    config.queue_capacity = std::max<std::size_t>(tasks.size(), 1);
    config.enable_seed_cache = false;
    // Batched dispatch with no coalescing wait: the whole batch is
    // enqueued up front, so workers drain real bursts immediately and
    // fused solvers amortize the speculation kernel across them.
    // Results stay bit-identical to per-request dispatch.
    config.max_batch = 16;
    config.batch_wait_us = 0;
    service::IkService svc(factory, config);

    std::vector<std::future<service::Response>> futures;
    futures.reserve(tasks.size());
    for (const workload::IkTask& task : tasks)
      futures.push_back(svc.submit({.target = task.target,
                                    .seed = task.seed,
                                    .use_seed_cache = false}));
    for (std::size_t i = 0; i < futures.size(); ++i)
      report.results[i] = std::move(futures[i].get().result);
  }  // ~IkService joins the workers before the clock stops

  report.wall_ms = timer.elapsedMs();
  for (const auto& r : report.results)
    if (r.converged()) ++report.converged;
  report.solves_per_second =
      report.wall_ms > 0.0
          ? static_cast<double>(tasks.size()) / (report.wall_ms * 1e-3)
          : 0.0;
  return report;
}

}  // namespace dadu
