#include "dadu/core/engine.hpp"

#include <stdexcept>

#include "dadu/solvers/jt_serial.hpp"
#include "dadu/solvers/pinv_svd.hpp"
#include "dadu/solvers/quick_ik.hpp"

namespace dadu {

std::string toString(Backend b) {
  switch (b) {
    case Backend::kCpuSerial: return "cpu-serial";
    case Backend::kCpuParallel: return "cpu-parallel";
    case Backend::kIkAcc: return "ikacc";
    case Backend::kJtSerial: return "jt-serial";
    case Backend::kPinvSvd: return "pinv-svd";
  }
  return "unknown";
}

IkEngine::IkEngine(kin::Chain chain, Backend backend, ik::SolveOptions options)
    : chain_(std::move(chain)), backend_(backend), options_(options) {
  switch (backend_) {
    case Backend::kCpuSerial:
      solver_ = std::make_unique<ik::QuickIkSolver>(
          chain_, options_, ik::QuickIkSolver::Execution::kSerial);
      break;
    case Backend::kCpuParallel:
      solver_ = std::make_unique<ik::QuickIkSolver>(
          chain_, options_, ik::QuickIkSolver::Execution::kThreadPool);
      break;
    case Backend::kIkAcc:
      solver_ = std::make_unique<acc::IkAccelerator>(chain_, options_);
      break;
    case Backend::kJtSerial:
      solver_ = std::make_unique<ik::JtSerialSolver>(chain_, options_);
      break;
    case Backend::kPinvSvd:
      solver_ = std::make_unique<ik::PinvSvdSolver>(chain_, options_);
      break;
  }
}

ik::SolveResult IkEngine::solve(const linalg::Vec3& target) {
  return solver_->solve(target, chain_.zeroConfiguration());
}

ik::SolveResult IkEngine::solve(const linalg::Vec3& target,
                                const linalg::VecX& seed) {
  return solver_->solve(target, seed);
}

std::vector<ik::SolveResult> IkEngine::solveBatch(
    const std::vector<linalg::Vec3>& targets, const linalg::VecX& seed) {
  // Route through solveMany so fused backends (Quick-IK's grouped SoA
  // sweep) amortize the chain walk across targets; per-target results
  // are bit-identical to sequential solve() calls either way.
  std::vector<ik::BatchLane> lanes;
  lanes.reserve(targets.size());
  for (const linalg::Vec3& t : targets) lanes.push_back({t, &seed, {}});
  std::vector<ik::BatchLaneResult> outcomes(targets.size());
  solver_->solveMany(lanes.data(), outcomes.data(), lanes.size());

  std::vector<ik::SolveResult> results;
  results.reserve(targets.size());
  for (ik::BatchLaneResult& outcome : outcomes) {
    if (outcome.error) std::rethrow_exception(outcome.error);
    results.push_back(std::move(outcome.result));
  }
  return results;
}

const acc::AccStats& IkEngine::acceleratorStats() const {
  const auto* acc_solver = dynamic_cast<const acc::IkAccelerator*>(solver_.get());
  if (acc_solver == nullptr)
    throw std::logic_error("acceleratorStats: backend is not IKAcc");
  return acc_solver->lastStats();
}

}  // namespace dadu
