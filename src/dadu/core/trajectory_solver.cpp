#include "dadu/core/trajectory_solver.hpp"

#include <algorithm>

namespace dadu {

TrajectoryResult solveTrajectory(ik::IkSolver& solver,
                                 const std::vector<linalg::Vec3>& path,
                                 const linalg::VecX& seed) {
  TrajectoryResult out;
  out.waypoints.reserve(path.size());

  linalg::VecX current = seed;
  double iter_sum = 0.0;
  double step_sum = 0.0;
  int steps = 0;

  for (const linalg::Vec3& target : path) {
    ik::SolveResult r = solver.solve(target, current);
    if (r.converged()) ++out.converged;
    out.max_iterations = std::max(out.max_iterations,
                                  static_cast<double>(r.iterations));
    iter_sum += r.iterations;
    out.max_error = std::max(out.max_error, r.error);
    if (!out.waypoints.empty()) {
      step_sum += (r.theta - current).norm();
      ++steps;
    }
    current = r.theta;
    out.waypoints.push_back(std::move(r));
  }

  if (!out.waypoints.empty())
    out.mean_iterations = iter_sum / static_cast<double>(out.waypoints.size());
  if (steps > 0) out.mean_joint_step = step_sum / steps;
  return out;
}

}  // namespace dadu
