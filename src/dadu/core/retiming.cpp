#include "dadu/core/retiming.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dadu {
namespace {

/// Minimum time for a rest-to-rest move of distance d under vmax/amax:
/// triangular profile if vmax is never reached, trapezoidal otherwise.
double segmentTime(double d, const RetimingLimits& lim) {
  if (d <= 0.0) return 0.0;
  const double d_accel = lim.max_velocity * lim.max_velocity /
                         lim.max_acceleration;  // accel + decel distance
  if (d <= d_accel) {
    return 2.0 * std::sqrt(d / lim.max_acceleration);
  }
  const double t_ramp = lim.max_velocity / lim.max_acceleration;
  const double t_cruise = (d - d_accel) / lim.max_velocity;
  return 2.0 * t_ramp + t_cruise;
}

}  // namespace

std::vector<TimedWaypoint> retimeTrapezoidal(
    const std::vector<linalg::VecX>& path, const RetimingLimits& limits) {
  if (!(limits.max_velocity > 0.0) || !(limits.max_acceleration > 0.0))
    throw std::invalid_argument("retimeTrapezoidal: limits must be positive");

  std::vector<TimedWaypoint> timed;
  timed.reserve(path.size());
  double t = 0.0;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) {
      const linalg::VecX step = path[i] - path[i - 1];
      t += segmentTime(step.maxAbs(), limits);
    }
    timed.push_back({t, path[i]});
  }
  return timed;
}

double trajectoryDuration(const std::vector<TimedWaypoint>& timed) {
  return timed.empty() ? 0.0 : timed.back().time;
}

linalg::VecX sampleTrajectory(const std::vector<TimedWaypoint>& timed,
                              double t) {
  if (timed.empty()) return {};
  if (t <= timed.front().time) return timed.front().configuration;
  if (t >= timed.back().time) return timed.back().configuration;

  // Find the bracketing segment (paths are short; linear scan).
  std::size_t hi = 1;
  while (timed[hi].time < t) ++hi;
  const TimedWaypoint& a = timed[hi - 1];
  const TimedWaypoint& b = timed[hi];
  const double span = b.time - a.time;
  const double frac = span > 0.0 ? (t - a.time) / span : 0.0;
  return a.configuration + (b.configuration - a.configuration) * frac;
}

}  // namespace dadu
