// IkEngine: the top-level facade a downstream robot-control user
// programs against.
//
// Owns a chain, a solver backend (any of the algorithm/architecture
// combinations the paper evaluates) and the solve options; provides
// one-shot solves, batch solves with aggregate statistics, and
// warm-started trajectory tracking.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dadu/ikacc/accelerator.hpp"
#include "dadu/kinematics/chain.hpp"
#include "dadu/solvers/factory.hpp"
#include "dadu/solvers/ik_solver.hpp"

namespace dadu {

/// Backend selection for the engine.
enum class Backend {
  kCpuSerial,    ///< Quick-IK, speculations inline ("Atom" config)
  kCpuParallel,  ///< Quick-IK on a thread pool ("TX1" config, CPU threads)
  kIkAcc,        ///< Quick-IK on the simulated accelerator
  kJtSerial,     ///< baseline: original Jacobian transpose
  kPinvSvd,      ///< baseline: SVD pseudoinverse
};

std::string toString(Backend b);

class IkEngine {
 public:
  IkEngine(kin::Chain chain, Backend backend = Backend::kCpuSerial,
           ik::SolveOptions options = {});

  /// Solve one target from the zero (or provided) configuration.
  ik::SolveResult solve(const linalg::Vec3& target);
  ik::SolveResult solve(const linalg::Vec3& target, const linalg::VecX& seed);

  /// Solve a batch of independent targets (each from `seed`).
  std::vector<ik::SolveResult> solveBatch(
      const std::vector<linalg::Vec3>& targets, const linalg::VecX& seed);

  const kin::Chain& chain() const { return chain_; }
  Backend backend() const { return backend_; }
  ik::IkSolver& solver() { return *solver_; }
  const ik::SolveOptions& options() const { return options_; }

  /// Accelerator statistics of the last solve; throws std::logic_error
  /// unless the backend is kIkAcc.
  const acc::AccStats& acceleratorStats() const;

 private:
  kin::Chain chain_;
  Backend backend_;
  ik::SolveOptions options_;
  std::unique_ptr<ik::IkSolver> solver_;
};

}  // namespace dadu
