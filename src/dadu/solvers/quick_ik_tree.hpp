// Quick-IK for kinematic trees with multiple end effectors.
//
// Algorithm 1 generalises directly: stack one 3-row Jacobian block and
// one error sub-vector per end effector, take dtheta_base = J^T e over
// the stack, compute alpha_base from the stacked Eq. 8, and run the
// speculative search with the stacked error norm as the selection
// metric.  Convergence requires EVERY end effector within accuracy —
// the humanoid "both hands on their targets" criterion.  This is the
// regime the related-work section rules CCD out of, and where the
// accelerator story gets stronger: the FKU workload per speculation
// grows with the number of branches while the algorithm structure is
// unchanged.
#pragma once

#include <vector>

#include "dadu/kinematics/tree.hpp"
#include "dadu/solvers/types.hpp"

namespace dadu::ik {

struct TreeSolveResult {
  Status status = Status::kMaxIterations;
  int iterations = 0;
  long long speculation_load = 0;
  /// Per-end-effector final errors (metres).
  std::vector<double> errors;
  double maxError() const {
    double m = 0.0;
    for (double e : errors) m = std::max(m, e);
    return m;
  }
  linalg::VecX theta;
  bool converged() const { return status == Status::kConverged; }
};

class QuickIkTreeSolver {
 public:
  QuickIkTreeSolver(kin::Tree tree, SolveOptions options);

  /// One target per end effector (order matches tree.endEffectors());
  /// throws std::invalid_argument on a count mismatch or bad seed.
  TreeSolveResult solve(const std::vector<linalg::Vec3>& targets,
                        const linalg::VecX& seed);

  const kin::Tree& tree() const { return tree_; }
  const SolveOptions& options() const { return options_; }

 private:
  kin::Tree tree_;
  SolveOptions options_;
  std::vector<linalg::VecX> theta_k_;
  std::vector<double> error_k_;
};

}  // namespace dadu::ik
