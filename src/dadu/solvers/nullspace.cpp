#include "dadu/solvers/nullspace.hpp"

#include <cmath>
#include <stdexcept>

#include "dadu/linalg/pseudoinverse.hpp"
#include "dadu/linalg/svd.hpp"

namespace dadu::ik {

ObjectiveGradient restPostureObjective(linalg::VecX rest) {
  return [rest = std::move(rest)](const linalg::VecX& theta) {
    return theta - rest;
  };
}

ObjectiveGradient limitCenteringObjective(const kin::Chain& chain) {
  // Precompute midpoints and ranges for the limited joints.
  linalg::VecX mid(chain.dof());
  linalg::VecX inv_range_sq(chain.dof());
  for (std::size_t i = 0; i < chain.dof(); ++i) {
    const kin::Joint& j = chain.joint(i);
    if (j.hasLimits() && std::isfinite(j.min) && std::isfinite(j.max) &&
        j.max > j.min) {
      mid[i] = (j.min + j.max) / 2.0;
      const double range = j.max - j.min;
      inv_range_sq[i] = 1.0 / (range * range);
    } else {
      inv_range_sq[i] = 0.0;  // unlimited joint: no pull
    }
  }
  return [mid, inv_range_sq](const linalg::VecX& theta) {
    linalg::VecX g(theta.size());
    for (std::size_t i = 0; i < theta.size(); ++i)
      g[i] = 2.0 * (theta[i] - mid[i]) * inv_range_sq[i];
    return g;
  };
}

NullSpaceDlsSolver::NullSpaceDlsSolver(kin::Chain chain, SolveOptions options,
                                       ObjectiveGradient objective,
                                       double ns_gain, double lambda,
                                       double max_task_step)
    : chain_(std::move(chain)),
      options_(options),
      objective_(std::move(objective)),
      ns_gain_(ns_gain),
      lambda_(lambda),
      max_task_step_(max_task_step) {
  if (!objective_)
    throw std::invalid_argument("NullSpaceDlsSolver: null objective");
}

SolveResult NullSpaceDlsSolver::solve(const linalg::Vec3& target,
                                      const linalg::VecX& seed) {
  validateInputs(chain_, target, seed);

  SolveResult result;
  result.theta = seed;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const JtIterationHead head =
        jtIterationHead(chain_, result.theta, target, ws_);
    ++result.fk_evaluations;
    if (options_.record_history) result.error_history.push_back(head.error);
    result.error = head.error;

    if (head.error < options_.accuracy) {
      result.status = Status::kConverged;
      return result;
    }

    linalg::Vec3 step = head.error_vec;
    if (max_task_step_ > 0.0 && head.error > max_task_step_)
      step *= max_task_step_ / head.error;

    // Primary task: damped pseudoinverse step.
    const linalg::Svd svd = linalg::svdJacobi(ws_.j);
    const linalg::VecX dtheta_task =
        linalg::dampedSolve(svd, {step.x, step.y, step.z}, lambda_);

    // Secondary task: -grad H projected into the null space of J.
    // (I - V V^T) g where V spans J's row space (numerically nonzero
    // singular directions).
    const linalg::VecX g = objective_(result.theta);
    if (g.size() != chain_.dof())
      throw std::invalid_argument(
          "NullSpaceDlsSolver: objective gradient has wrong size");
    linalg::VecX projected = g;
    const std::size_t rank = svd.rank();
    for (std::size_t k = 0; k < rank; ++k) {
      double coeff = 0.0;
      for (std::size_t i = 0; i < g.size(); ++i) coeff += svd.v(i, k) * g[i];
      for (std::size_t i = 0; i < g.size(); ++i)
        projected[i] -= coeff * svd.v(i, k);
    }

    result.theta += dtheta_task;
    linalg::axpy(-ns_gain_, projected, result.theta);
    if (options_.clamp_to_limits)
      result.theta = chain_.clampToLimits(result.theta);
    ++result.iterations;
    ++result.speculation_load;
  }

  const JtIterationHead head =
      jtIterationHead(chain_, result.theta, target, ws_);
  ++result.fk_evaluations;
  result.error = head.error;
  result.status = head.error < options_.accuracy ? Status::kConverged
                                                 : Status::kMaxIterations;
  return result;
}

}  // namespace dadu::ik
