// Selectively damped least squares — Buss & Kim [20], the strongest
// related-work pseudoinverse variant the paper cites ("Buss adopted a
// selectively damped least squares to accelerate the convergence of
// the pseudoinverse method, but the improvement is limited").
//
// Per singular direction i of J = sum_i sigma_i u_i v_i^T, the joint
// step (1/sigma_i)(u_i . e) v_i is individually clamped by a bound
// gamma_i derived from how much end-effector motion a unit joint
// motion in that direction can produce, then the summed step is
// clamped again by gamma_max.  Retains pseudoinverse-like iteration
// counts while staying stable near singularities without a global
// damping constant.
#pragma once

#include "dadu/solvers/ik_solver.hpp"
#include "dadu/solvers/jt_common.hpp"

namespace dadu::ik {

class SdlsSolver final : public IkSolver {
 public:
  SdlsSolver(kin::Chain chain, SolveOptions options,
             double gamma_max = 0.7853981633974483 /* pi/4 */)
      : chain_(std::move(chain)), options_(options), gamma_max_(gamma_max) {}

  SolveResult solve(const linalg::Vec3& target,
                    const linalg::VecX& seed) override;
  std::string name() const override { return "sdls"; }
  const kin::Chain& chain() const override { return chain_; }
  const SolveOptions& options() const override { return options_; }

 private:
  kin::Chain chain_;
  SolveOptions options_;
  double gamma_max_;
  JtWorkspace ws_;
};

}  // namespace dadu::ik
