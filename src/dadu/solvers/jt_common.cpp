#include "dadu/solvers/jt_common.hpp"

#include <cmath>
#include <stdexcept>

#include "dadu/fault/fault.hpp"

namespace dadu::ik {

JtIterationHead jtIterationHead(const kin::Chain& chain,
                                const linalg::VecX& theta,
                                const linalg::Vec3& target, JtWorkspace& ws) {
  // Every Jacobian-transpose-family solver funnels through this head
  // once per iteration, so one named point lets chaos plans slow down
  // (or blow up) any solve mid-flight — the only way to exercise the
  // cooperative watchdog deterministically.  Disarmed this is a single
  // relaxed atomic load.
  fault::inject("solver.iterate");

  JtIterationHead head;

  linalg::Vec3 ee;
  kin::positionJacobian(chain, theta, ws.j, ws.frames, ee);
  head.error_vec = target - ee;
  head.error = head.error_vec.norm();

  // dtheta_base = J^T e  (Algorithm 1, line 4).
  linalg::mulTransposed3(ws.j, head.error_vec, ws.dtheta_base);

  // alpha_base = (e . JJ^T e) / (JJ^T e . JJ^T e)  (Eq. 8).  JJ^T e is
  // J applied to dtheta_base — no 3x3 matrix is ever materialised,
  // matching the accelerator's streaming JJ^T E accumulation (Eq. 11).
  const linalg::Vec3 jjte = linalg::mul3(ws.j, ws.dtheta_base);
  const double denom = jjte.dot(jjte);
  if (denom > 0.0 && std::isfinite(denom)) {
    head.alpha_base = head.error_vec.dot(jjte) / denom;
  } else {
    head.alpha_base = 0.0;
    head.stalled = head.error > 0.0;
  }
  // A vanished gradient with remaining error also counts as a stall
  // (target in the null-space direction of a singular configuration).
  if (!head.stalled && head.error > 0.0 &&
      ws.dtheta_base.maxAbs() < 1e-300) {
    head.stalled = true;
  }
  return head;
}

double stabilityGain(const kin::Chain& chain, double c) {
  // Lever arm of joint i at full stretch = remaining chain length from
  // joint i to the tip.
  double sum_sq = 0.0;
  double remaining = 0.0;
  for (std::size_t i = chain.dof(); i-- > 0;) {
    const kin::DhParam& p = chain.joint(i).dh;
    remaining += std::abs(p.a) + std::abs(p.d);
    sum_sq += remaining * remaining;
  }
  return sum_sq > 0.0 ? c / sum_sq : c;
}

void validateInputs(const kin::Chain& chain, const linalg::Vec3& target,
                    const linalg::VecX& seed) {
  chain.requireSize(seed);
  if (!std::isfinite(target.x) || !std::isfinite(target.y) ||
      !std::isfinite(target.z))
    throw std::invalid_argument("IK target is not finite");
  for (double v : seed)
    if (!std::isfinite(v))
      throw std::invalid_argument("IK seed configuration is not finite");
}

}  // namespace dadu::ik
