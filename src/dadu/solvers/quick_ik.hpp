// Quick-IK (Algorithm 1 of the paper): speculative parallel search over
// the step-size parameter of the Jacobian-transpose method.
//
// Each iteration computes the serial head (J, dtheta_base = J^T e,
// alpha_base per Eq. 8) and then evaluates `Max` speculative step sizes
//
//     alpha_k = (k / Max) * alpha_base,   k = 1..Max        (Eq. 9)
//
// each requiring one forward-kinematics pass f(theta + alpha_k
// dtheta_base).  The candidate with the smallest remaining error
// becomes the next iterate; any candidate already under the accuracy
// threshold ends the solve.  The speculation set spans (0, alpha_base]
// because the error is guaranteed to decrease for sufficiently small
// positive alpha while alpha_base is the near-optimal linearised step —
// searching between the two captures the best of both (Section 4,
// "Speculation strategy").
//
// The sweep itself runs through kin::BatchedForward: one chain walk
// advances all Max candidate transforms in SoA lanes (the software
// mirror of the paper's FKU array).  Execution is pluggable: inline
// (the paper's "Atom" single-thread row) evaluates the whole batch in
// one kernel call; the thread pool splits it into contiguous lane
// chunks, one per worker.  Both produce bit-identical results —
// selection is a deterministic argmin with smallest-k tie-break —
// which is also what lets the IKAcc simulator's functional output be
// validated against this class.
#pragma once

#include <memory>
#include <vector>

#include "dadu/kinematics/forward_batch.hpp"
#include "dadu/parallel/thread_pool.hpp"
#include "dadu/solvers/ik_solver.hpp"
#include "dadu/solvers/jt_common.hpp"

namespace dadu::ik {

class QuickIkSolver final : public IkSolver {
 public:
  enum class Execution {
    kSerial,      ///< speculations evaluated inline on the caller
    kThreadPool,  ///< speculation lanes chunked over worker threads
  };

  /// `threads` is only used with kThreadPool (0 = hardware concurrency).
  QuickIkSolver(kin::Chain chain, SolveOptions options,
                Execution execution = Execution::kSerial,
                std::size_t threads = 0);

  SolveResult solve(const linalg::Vec3& target,
                    const linalg::VecX& seed) override;

  /// Fused multi-request solve: lanes iterate in lockstep, each
  /// iteration's speculative sweeps running through one grouped SoA
  /// chain walk (kin::BatchedForward::evaluateGrouped) over a shared
  /// workspace.  The batch is processed in L1-sized chunks (the fused
  /// working set — candidates, accumulators, Jacobian heads — degrades
  /// past ~32 SoA lanes on one core), so arbitrarily large service
  /// bursts stay at the kernel's sweet spot.  Per lane the arithmetic
  /// is statement-for-statement the single solve() loop, so results
  /// are bit-identical to the sequential fallback; per-lane deadlines
  /// retire individual lanes (kTimedOut, best-so-far theta) and
  /// per-lane exceptions (validateInputs, solver.iterate faults)
  /// retire the failing lane without disturbing batchmates.  The fused
  /// path engages for kSerial execution with n > 1; kThreadPool keeps
  /// the base sequential loop (its parallelism is already inside each
  /// solve).
  void solveMany(const BatchLane* lanes, BatchLaneResult* out,
                 std::size_t n) override;

  std::string name() const override {
    return execution_ == Execution::kSerial ? "quick-ik" : "quick-ik-mt";
  }
  const kin::Chain& chain() const override { return chain_; }
  const SolveOptions& options() const override { return options_; }
  void setDeadline(std::chrono::steady_clock::time_point d) override {
    options_.deadline = d;
  }
  Execution execution() const { return execution_; }

 private:
  kin::Chain chain_;
  SolveOptions options_;
  Execution execution_;
  std::unique_ptr<par::ThreadPool> pool_;  // only for kThreadPool

  // One lockstep chunk of the fused batch (all lanes, one shared
  // grouped sweep per iteration).
  void solveManyFused(const BatchLane* lanes, BatchLaneResult* out,
                      std::size_t n);

  JtWorkspace ws_;
  // Batched speculation workspace, sized once in the constructor and
  // reused every iteration: the SoA FK kernel (owns candidates,
  // accumulators and errors) and the alpha ladder.
  kin::BatchedForward batch_;
  std::vector<double> alphas_;

  // solveMany() fused-batch scratch, reused across calls and
  // allocation-free once warm at the high-water batch size.  Lane g of
  // an n-request batch owns kernel lanes [g*K, (g+1)*K): its own alpha
  // ladder slice, workspace (dtheta_base must survive the head ->
  // sweep hand-off per lane) and head-error slot.
  kin::BatchedForward many_batch_;
  std::vector<double> many_alphas_;
  std::vector<JtWorkspace> many_ws_;
  std::vector<double> many_head_error_;
  std::vector<unsigned char> many_active_;
  std::vector<kin::BatchedForward::LaneGroup> many_groups_;
  std::vector<std::size_t> many_swept_;
};

}  // namespace dadu::ik
