// Quick-IK (Algorithm 1 of the paper): speculative parallel search over
// the step-size parameter of the Jacobian-transpose method.
//
// Each iteration computes the serial head (J, dtheta_base = J^T e,
// alpha_base per Eq. 8) and then evaluates `Max` speculative step sizes
//
//     alpha_k = (k / Max) * alpha_base,   k = 1..Max        (Eq. 9)
//
// each requiring one forward-kinematics pass f(theta + alpha_k
// dtheta_base).  The candidate with the smallest remaining error
// becomes the next iterate; any candidate already under the accuracy
// threshold ends the solve.  The speculation set spans (0, alpha_base]
// because the error is guaranteed to decrease for sufficiently small
// positive alpha while alpha_base is the near-optimal linearised step —
// searching between the two captures the best of both (Section 4,
// "Speculation strategy").
//
// The sweep itself runs through kin::BatchedForward: one chain walk
// advances all Max candidate transforms in SoA lanes (the software
// mirror of the paper's FKU array).  Execution is pluggable: inline
// (the paper's "Atom" single-thread row) evaluates the whole batch in
// one kernel call; the thread pool splits it into contiguous lane
// chunks, one per worker.  Both produce bit-identical results —
// selection is a deterministic argmin with smallest-k tie-break —
// which is also what lets the IKAcc simulator's functional output be
// validated against this class.
#pragma once

#include <memory>
#include <vector>

#include "dadu/kinematics/forward_batch.hpp"
#include "dadu/parallel/thread_pool.hpp"
#include "dadu/solvers/ik_solver.hpp"
#include "dadu/solvers/jt_common.hpp"

namespace dadu::ik {

class QuickIkSolver final : public IkSolver {
 public:
  enum class Execution {
    kSerial,      ///< speculations evaluated inline on the caller
    kThreadPool,  ///< speculation lanes chunked over worker threads
  };

  /// `threads` is only used with kThreadPool (0 = hardware concurrency).
  QuickIkSolver(kin::Chain chain, SolveOptions options,
                Execution execution = Execution::kSerial,
                std::size_t threads = 0);

  SolveResult solve(const linalg::Vec3& target,
                    const linalg::VecX& seed) override;
  std::string name() const override {
    return execution_ == Execution::kSerial ? "quick-ik" : "quick-ik-mt";
  }
  const kin::Chain& chain() const override { return chain_; }
  const SolveOptions& options() const override { return options_; }
  void setDeadline(std::chrono::steady_clock::time_point d) override {
    options_.deadline = d;
  }
  Execution execution() const { return execution_; }

 private:
  kin::Chain chain_;
  SolveOptions options_;
  Execution execution_;
  std::unique_ptr<par::ThreadPool> pool_;  // only for kThreadPool

  JtWorkspace ws_;
  // Batched speculation workspace, sized once in the constructor and
  // reused every iteration: the SoA FK kernel (owns candidates,
  // accumulators and errors) and the alpha ladder.
  kin::BatchedForward batch_;
  std::vector<double> alphas_;
};

}  // namespace dadu::ik
