#include "dadu/solvers/pose_solvers.hpp"

#include <cmath>
#include <stdexcept>

#include "dadu/linalg/cholesky.hpp"
#include "dadu/solvers/jt_common.hpp"

namespace dadu::ik {
namespace {

struct PoseErrors {
  linalg::VecX e;      // weighted 6-vector
  double pos = 0.0;    // metres
  double ang = 0.0;    // radians
};

PoseErrors measure(const kin::Pose& current, const kin::Pose& target,
                   double rotation_weight) {
  PoseErrors out;
  out.e = kin::poseError(current, target, rotation_weight);
  out.pos = linalg::Vec3{out.e[0], out.e[1], out.e[2]}.norm();
  out.ang = rotation_weight > 0.0
                ? linalg::Vec3{out.e[3], out.e[4], out.e[5]}.norm() /
                      rotation_weight
                : 0.0;
  return out;
}

bool withinAccuracy(const PoseErrors& err, const PoseSolveOptions& o) {
  return err.pos < o.accuracy && err.ang < o.angular_accuracy;
}

/// Weighted error norm the speculative selector minimises.
double selectionNorm(const PoseErrors& err, const PoseSolveOptions& o) {
  const double w = o.rotation_weight;
  return std::sqrt(err.pos * err.pos + (err.ang * w) * (err.ang * w));
}

}  // namespace

QuickIkPoseSolver::QuickIkPoseSolver(kin::Chain chain, PoseSolveOptions options)
    : chain_(std::move(chain)), options_(options) {
  if (options_.speculations < 1)
    throw std::invalid_argument("QuickIkPose requires at least 1 speculation");
  theta_k_.assign(options_.speculations, linalg::VecX(chain_.dof()));
  error_k_.assign(options_.speculations, 0.0);
}

PoseSolveResult QuickIkPoseSolver::solve(const kin::Pose& target,
                                         const linalg::VecX& seed) {
  validateInputs(chain_, target.position, seed);

  const int max_spec = options_.speculations;
  PoseSolveResult result;
  result.theta = seed;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    kin::Pose current;
    kin::fullJacobian(chain_, result.theta, j_, frames_, current);
    const PoseErrors err = measure(current, target, options_.rotation_weight);
    result.position_error = err.pos;
    result.angular_error = err.ang;

    if (withinAccuracy(err, options_)) {
      result.status = Status::kConverged;
      return result;
    }

    // Serial head: dtheta_base = J^T e; alpha_base per Eq. 8 with the
    // 6-vector error (JJ^T e is 6-dimensional).
    const linalg::VecX dtheta_base = j_.applyTransposed(err.e);
    const linalg::VecX jjte = j_ * dtheta_base;
    const double denom = jjte.dot(jjte);
    if (!(denom > 0.0) || dtheta_base.maxAbs() < 1e-300) {
      result.status = Status::kStalled;
      return result;
    }
    const double alpha_base = err.e.dot(jjte) / denom;

    // Speculative search over (0, alpha_base] (Eq. 9).
    for (int k = 1; k <= max_spec; ++k) {
      const double alpha_k =
          (static_cast<double>(k) / max_spec) * alpha_base;
      linalg::axpyInto(alpha_k, dtheta_base, result.theta, theta_k_[k - 1]);
      const kin::Pose pose_k = kin::endEffectorPose(chain_, theta_k_[k - 1]);
      error_k_[k - 1] =
          selectionNorm(measure(pose_k, target, options_.rotation_weight),
                        options_);
    }
    ++result.iterations;

    std::size_t best = 0;
    for (std::size_t idx = 1; idx < static_cast<std::size_t>(max_spec); ++idx)
      if (error_k_[idx] < error_k_[best]) best = idx;
    result.theta = theta_k_[best];
  }

  // Final measurement for honest reporting.
  const PoseErrors err = measure(kin::endEffectorPose(chain_, result.theta),
                                 target, options_.rotation_weight);
  result.position_error = err.pos;
  result.angular_error = err.ang;
  result.status = withinAccuracy(err, options_) ? Status::kConverged
                                                : Status::kMaxIterations;
  return result;
}

DlsPoseSolver::DlsPoseSolver(kin::Chain chain, PoseSolveOptions options,
                             double lambda, double max_task_step)
    : chain_(std::move(chain)),
      options_(options),
      lambda_(lambda),
      max_task_step_(max_task_step) {}

PoseSolveResult DlsPoseSolver::solve(const kin::Pose& target,
                                     const linalg::VecX& seed) {
  validateInputs(chain_, target.position, seed);

  PoseSolveResult result;
  result.theta = seed;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    kin::Pose current;
    kin::fullJacobian(chain_, result.theta, j_, frames_, current);
    const PoseErrors err = measure(current, target, options_.rotation_weight);
    result.position_error = err.pos;
    result.angular_error = err.ang;

    if (withinAccuracy(err, options_)) {
      result.status = Status::kConverged;
      return result;
    }

    // Clamp the weighted task step.
    linalg::VecX step = err.e;
    const double norm = step.norm();
    if (max_task_step_ > 0.0 && norm > max_task_step_)
      step *= max_task_step_ / norm;

    // (J J^T + lambda^2 I) y = e (6x6), dtheta = J^T y.
    linalg::MatX a = j_.gram();
    for (std::size_t d = 0; d < 6; ++d) a(d, d) += lambda_ * lambda_;
    const auto y = linalg::choleskySolve(a, step);
    if (!y) {
      result.status = Status::kStalled;
      return result;
    }
    result.theta += j_.applyTransposed(*y);
    ++result.iterations;
  }

  const PoseErrors err = measure(kin::endEffectorPose(chain_, result.theta),
                                 target, options_.rotation_weight);
  result.position_error = err.pos;
  result.angular_error = err.ang;
  result.status = withinAccuracy(err, options_) ? Status::kConverged
                                                : Status::kMaxIterations;
  return result;
}

}  // namespace dadu::ik
