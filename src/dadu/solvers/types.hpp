// Common option/result types shared by every IK solver.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "dadu/linalg/vecx.hpp"
#include "dadu/platform/clock.hpp"

namespace dadu::ik {

/// Termination and algorithm parameters.  Defaults follow the paper's
/// evaluation setup (Section 6.1): accuracy 1e-2 m, at most 10k
/// iterations, 64 speculations.
struct SolveOptions {
  double accuracy = 1e-2;     ///< converged when ||Xt - f(theta)|| < accuracy
  int max_iterations = 10'000;
  int speculations = 64;      ///< Quick-IK speculation count ("Max" in Alg. 1)
  bool record_history = false;  ///< keep per-iteration error in the result
  bool clamp_to_limits = false; ///< project theta onto joint limits each step
  /// Cooperative watchdog: absolute wall-clock deadline for one solve.
  /// The default (the epoch) means unbounded.  Watchdog-capable solvers
  /// check this at each iteration head and stop with Status::kTimedOut,
  /// returning the best-so-far theta/error instead of running the full
  /// iteration budget — the serving layer's defence against a runaway
  /// solve outliving its request deadline.
  std::chrono::steady_clock::time_point deadline{};

  bool hasDeadline() const {
    return deadline != std::chrono::steady_clock::time_point{};
  }
  /// One clock read; only called when hasDeadline().  `clock` is the
  /// Clock seam (null = real steady clock): the serving layer points
  /// per-worker solvers at its own clock via IkSolver::setClock so the
  /// watchdog fires on simulated time too.
  bool deadlineExpired(const platform::Clock* clock = nullptr) const {
    return platform::clockNow(clock) >= deadline;
  }
};

/// Why a solve ended.
enum class Status {
  kConverged,       ///< error below accuracy
  kMaxIterations,   ///< iteration budget exhausted
  kStalled,         ///< update direction vanished (J^T e ~ 0 away from target)
  kTimedOut,        ///< SolveOptions::deadline passed mid-solve (watchdog)
};

std::string toString(Status s);

/// Outcome of one IK solve, including the instrumentation the paper's
/// figures are built from.
struct SolveResult {
  Status status = Status::kMaxIterations;
  int iterations = 0;            ///< iterations executed
  long long fk_evaluations = 0;  ///< forward-kinematics passes (incl. speculative)
  /// Fig. 5b's "Speculations * Iterations" computation load: the total
  /// number of speculative searches executed (1 per iteration for the
  /// non-speculative methods).
  long long speculation_load = 0;
  double error = 0.0;            ///< final ||Xt - f(theta)||
  linalg::VecX theta;            ///< final joint angles
  std::vector<double> error_history;  ///< per-iteration error (if recorded)

  bool converged() const { return status == Status::kConverged; }
};

/// Aggregate statistics over a batch of solves (one paper table cell).
struct BatchStats {
  int count = 0;
  int converged = 0;
  double mean_iterations = 0.0;
  double mean_load = 0.0;       ///< mean speculation_load
  double mean_error = 0.0;
  double mean_time_ms = 0.0;    ///< filled by timing harnesses
  double total_time_ms = 0.0;

  double convergenceRate() const {
    return count == 0 ? 0.0 : static_cast<double>(converged) / count;
  }
};

/// Fold a result batch (without timing) into BatchStats.
BatchStats summarize(const std::vector<SolveResult>& results);

/// p-th percentile (0..100, nearest-rank) of the iteration counts in a
/// batch — tail behaviour matters for real-time budgets where the mean
/// hides worst-case solves.  Returns 0 for an empty batch.
double iterationPercentile(const std::vector<SolveResult>& results, double p);

}  // namespace dadu::ik
