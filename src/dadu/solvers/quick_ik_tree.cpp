#include "dadu/solvers/quick_ik_tree.hpp"

#include <cmath>
#include <stdexcept>

namespace dadu::ik {
namespace {

/// Stacked error vector (targets - positions) and per-EE norms.
struct StackedError {
  linalg::VecX e;
  std::vector<double> per_ee;
  double norm = 0.0;
  bool allWithin(double accuracy) const {
    for (double v : per_ee)
      if (!(v < accuracy)) return false;
    return true;
  }
};

StackedError measure(const kin::Tree& tree,
                     const std::vector<linalg::Vec3>& targets,
                     const linalg::VecX& theta) {
  const auto positions = tree.endEffectorPositions(theta);
  StackedError out;
  out.e = linalg::VecX(3 * targets.size());
  out.per_ee.resize(targets.size());
  double sq = 0.0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const linalg::Vec3 d = targets[i] - positions[i];
    out.e[3 * i + 0] = d.x;
    out.e[3 * i + 1] = d.y;
    out.e[3 * i + 2] = d.z;
    out.per_ee[i] = d.norm();
    sq += d.squaredNorm();
  }
  out.norm = std::sqrt(sq);
  return out;
}

}  // namespace

QuickIkTreeSolver::QuickIkTreeSolver(kin::Tree tree, SolveOptions options)
    : tree_(std::move(tree)), options_(options) {
  if (options_.speculations < 1)
    throw std::invalid_argument(
        "Quick-IK (tree) requires at least 1 speculation");
  theta_k_.assign(options_.speculations, linalg::VecX(tree_.dof()));
  error_k_.assign(options_.speculations, 0.0);
}

TreeSolveResult QuickIkTreeSolver::solve(
    const std::vector<linalg::Vec3>& targets, const linalg::VecX& seed) {
  if (targets.size() != tree_.endEffectorCount())
    throw std::invalid_argument("Quick-IK (tree): " +
                                std::to_string(targets.size()) +
                                " targets for " +
                                std::to_string(tree_.endEffectorCount()) +
                                " end effectors");
  tree_.requireSize(seed);
  for (const auto& t : targets)
    if (!std::isfinite(t.x) || !std::isfinite(t.y) || !std::isfinite(t.z))
      throw std::invalid_argument("Quick-IK (tree): non-finite target");
  for (double v : seed)
    if (!std::isfinite(v))
      throw std::invalid_argument("Quick-IK (tree): non-finite seed");

  const int max_spec = options_.speculations;
  TreeSolveResult result;
  result.theta = seed;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const StackedError err = measure(tree_, targets, result.theta);
    result.errors = err.per_ee;

    if (err.allWithin(options_.accuracy)) {
      result.status = Status::kConverged;
      return result;
    }

    // Serial head over the stacked system.
    const linalg::MatX j = tree_.stackedJacobian(result.theta);
    const linalg::VecX dtheta_base = j.applyTransposed(err.e);
    const linalg::VecX jjte = j * dtheta_base;
    const double denom = jjte.dot(jjte);
    if (!(denom > 0.0) || dtheta_base.maxAbs() < 1e-300) {
      result.status = Status::kStalled;
      return result;
    }
    const double alpha_base = err.e.dot(jjte) / denom;

    // Speculative search; the selector minimises the stacked norm.
    for (int k = 1; k <= max_spec; ++k) {
      const double alpha_k =
          (static_cast<double>(k) / max_spec) * alpha_base;
      linalg::axpyInto(alpha_k, dtheta_base, result.theta, theta_k_[k - 1]);
      error_k_[k - 1] = measure(tree_, targets, theta_k_[k - 1]).norm;
    }
    result.speculation_load += max_spec;
    ++result.iterations;

    std::size_t best = 0;
    for (std::size_t idx = 1; idx < static_cast<std::size_t>(max_spec); ++idx)
      if (error_k_[idx] < error_k_[best]) best = idx;
    result.theta = theta_k_[best];
  }

  const StackedError err = measure(tree_, targets, result.theta);
  result.errors = err.per_ee;
  result.status = err.allWithin(options_.accuracy) ? Status::kConverged
                                                   : Status::kMaxIterations;
  return result;
}

}  // namespace dadu::ik
