#include "dadu/solvers/ccd.hpp"

#include <cmath>

#include "dadu/kinematics/forward.hpp"

namespace dadu::ik {

SolveResult CcdSolver::solve(const linalg::Vec3& target,
                             const linalg::VecX& seed) {
  validateInputs(chain_, target, seed);

  const std::size_t n = chain_.dof();
  SolveResult result;
  result.theta = seed;

  kin::linkFrames(chain_, result.theta, frames_);
  linalg::Vec3 ee = frames_.back().position();
  result.error = (target - ee).norm();

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    if (options_.record_history) result.error_history.push_back(result.error);
    if (result.error < options_.accuracy) {
      result.status = Status::kConverged;
      return result;
    }

    // One sweep: end-effector side towards the base.
    for (std::size_t idx = n; idx-- > 0;) {
      const kin::Joint& joint = chain_.joint(idx);
      if (joint.type != kin::JointType::kRevolute) continue;

      const linalg::Mat4& prev =
          idx == 0 ? chain_.base() : frames_[idx - 1];
      const linalg::Vec3 axis = prev.rotation().col(2);
      const linalg::Vec3 pivot = prev.position();

      // Project both vectors into the plane perpendicular to the axis.
      linalg::Vec3 to_ee = ee - pivot;
      linalg::Vec3 to_t = target - pivot;
      to_ee -= axis * to_ee.dot(axis);
      to_t -= axis * to_t.dot(axis);
      const double len_ee = to_ee.norm();
      const double len_t = to_t.norm();
      if (len_ee < 1e-12 || len_t < 1e-12) continue;  // on-axis: no effect

      // Optimal rotation of this joint alone.
      const double delta =
          std::atan2(axis.dot(to_ee.cross(to_t)), to_ee.dot(to_t));
      double q = result.theta[idx] + delta;
      if (options_.clamp_to_limits) q = joint.clamp(q);
      result.theta[idx] = q;

      // Refresh frames from this joint outward (cheap prefix reuse).
      linalg::Mat4 t = idx == 0 ? chain_.base() : frames_[idx - 1];
      for (std::size_t i = idx; i < n; ++i) {
        t = t * chain_.joint(i).transform(result.theta[i]);
        frames_[i] = t;
      }
      ee = frames_.back().position();
      ++result.fk_evaluations;
    }

    result.error = (target - ee).norm();
    ++result.iterations;
    ++result.speculation_load;
  }

  result.status = result.error < options_.accuracy ? Status::kConverged
                                                   : Status::kMaxIterations;
  return result;
}

}  // namespace dadu::ik
