// Damped least squares (Levenberg-style), a standard member of the
// inverse-Jacobian family the paper situates itself in.
//
// dtheta = J^T (J J^T + lambda^2 I)^-1 e.  With a 3-D task space the
// inner system is 3x3 and solved by Cholesky, so — unlike the SVD
// pseudoinverse — each iteration is cheap and fully deterministic in
// cost.  Included as the intermediate point between JT (cheapest
// iteration) and J^+-SVD (fewest iterations).
#pragma once

#include "dadu/solvers/ik_solver.hpp"
#include "dadu/solvers/jt_common.hpp"

namespace dadu::ik {

class DlsSolver final : public IkSolver {
 public:
  DlsSolver(kin::Chain chain, SolveOptions options, double lambda = 0.1,
            double max_task_step = 0.1)
      : chain_(std::move(chain)),
        options_(options),
        lambda_(lambda),
        max_task_step_(max_task_step) {}

  SolveResult solve(const linalg::Vec3& target,
                    const linalg::VecX& seed) override;
  std::string name() const override { return "dls"; }
  const kin::Chain& chain() const override { return chain_; }
  const SolveOptions& options() const override { return options_; }
  double lambda() const { return lambda_; }

 private:
  kin::Chain chain_;
  SolveOptions options_;
  double lambda_;
  double max_task_step_;
  JtWorkspace ws_;
};

}  // namespace dadu::ik
