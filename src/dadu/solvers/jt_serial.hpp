// JT-Serial: the *original* Jacobian-transpose method — the paper's
// baseline (references [6, 7]: Wolovich & Elliott 1984, Slotine 1985).
//
// The classical method iterates theta += alpha J^T e with a fixed
// scalar gain alpha chosen once for the robot.  A safe constant must
// respect the stability bound alpha < 2 / lambda_max(JJ^T) at the
// worst (fully stretched) configuration, which forces alpha to shrink
// like 1/N^3 with the DOF count — and that is exactly why the paper's
// Fig. 5a shows the original method needing thousands of iterations at
// high DOF while converging in tens at low DOF.  Quick-IK removes this
// bottleneck by searching the step size every iteration.
//
// The per-iteration Eq. 8 step size alone (without speculation) is the
// separate JtEq8Solver baseline, used by the alpha-strategy ablation.
#pragma once

#include "dadu/solvers/ik_solver.hpp"
#include "dadu/solvers/jt_common.hpp"

namespace dadu::ik {

class JtSerialSolver final : public IkSolver {
 public:
  /// `gain_c` scales the stability-safe constant (see stabilityGain);
  /// alpha = gain_c / sum of squared stretched lever arms.
  JtSerialSolver(kin::Chain chain, SolveOptions options, double gain_c = 4.0)
      : chain_(std::move(chain)),
        options_(options),
        alpha_(stabilityGain(chain_, gain_c)) {}

  SolveResult solve(const linalg::Vec3& target,
                    const linalg::VecX& seed) override;
  std::string name() const override { return "jt-serial"; }
  const kin::Chain& chain() const override { return chain_; }
  const SolveOptions& options() const override { return options_; }
  void setDeadline(std::chrono::steady_clock::time_point d) override {
    options_.deadline = d;
  }
  double alpha() const { return alpha_; }

 private:
  kin::Chain chain_;
  SolveOptions options_;
  double alpha_;
  JtWorkspace ws_;
};

}  // namespace dadu::ik
