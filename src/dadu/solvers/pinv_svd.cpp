#include "dadu/solvers/pinv_svd.hpp"

#include "dadu/linalg/pseudoinverse.hpp"
#include "dadu/linalg/svd.hpp"

namespace dadu::ik {

SolveResult PinvSvdSolver::solve(const linalg::Vec3& target,
                                 const linalg::VecX& seed) {
  validateInputs(chain_, target, seed);

  SolveResult result;
  result.theta = seed;
  last_svd_sweeps_ = 0;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const JtIterationHead head =
        jtIterationHead(chain_, result.theta, target, ws_);
    ++result.fk_evaluations;
    if (options_.record_history) result.error_history.push_back(head.error);
    result.error = head.error;

    if (head.error < options_.accuracy) {
      result.status = Status::kConverged;
      return result;
    }

    // Clamp the task-space step so the linearisation stays valid.
    linalg::Vec3 step = head.error_vec;
    if (max_task_step_ > 0.0 && head.error > max_task_step_)
      step *= max_task_step_ / head.error;

    const linalg::Svd svd = linalg::svdJacobi(ws_.j);
    last_svd_sweeps_ += svd.sweeps;
    const linalg::VecX e_vec{step.x, step.y, step.z};
    const linalg::VecX dtheta = linalg::pseudoinverseSolve(svd, e_vec);

    if (dtheta.maxAbs() < 1e-300) {  // rank-0 Jacobian: no progress possible
      result.status = Status::kStalled;
      return result;
    }

    result.theta += dtheta;
    if (options_.clamp_to_limits)
      result.theta = chain_.clampToLimits(result.theta);
    ++result.iterations;
    ++result.speculation_load;
  }

  const JtIterationHead head =
      jtIterationHead(chain_, result.theta, target, ws_);
  ++result.fk_evaluations;
  result.error = head.error;
  result.status = head.error < options_.accuracy ? Status::kConverged
                                                 : Status::kMaxIterations;
  return result;
}

}  // namespace dadu::ik
