// Shared machinery of the Jacobian-transpose family (JT-Serial,
// JT fixed-alpha, Quick-IK) and general solver plumbing.
#pragma once

#include <vector>

#include "dadu/kinematics/chain.hpp"
#include "dadu/kinematics/jacobian.hpp"
#include "dadu/linalg/matx.hpp"
#include "dadu/linalg/vec.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::ik {

/// Reusable per-iteration workspace for transpose-method solvers: the
/// Jacobian, link-frame scratch and the base update direction.  One
/// instance per solver; sized on first use.
struct JtWorkspace {
  linalg::MatX j;                       // 3 x N Jacobian
  std::vector<linalg::Mat4> frames;     // link frames scratch
  linalg::VecX dtheta_base;             // J^T e
};

/// Result of the serial head of a transpose iteration: everything the
/// paper's SPU produces (J implicit in workspace, dtheta_base,
/// alpha_base) plus the current error.
struct JtIterationHead {
  linalg::Vec3 error_vec;   // e = Xt - f(theta)
  double error = 0.0;       // ||e||
  double alpha_base = 0.0;  // Eq. 8 step size
  bool stalled = false;     // J^T e vanished while error is nonzero
};

/// Evaluate J(theta), e, dtheta_base = J^T e and alpha_base =
/// (e . JJ^T e) / (JJ^T e . JJ^T e)  (Eq. 8).  Writes into `ws`.
JtIterationHead jtIterationHead(const kin::Chain& chain,
                                const linalg::VecX& theta,
                                const linalg::Vec3& target, JtWorkspace& ws);

/// Validate solver inputs (seed size, finite target); throws
/// std::invalid_argument on violation.
void validateInputs(const kin::Chain& chain, const linalg::Vec3& target,
                    const linalg::VecX& seed);

/// Classical stability-safe constant gain for the *original* transpose
/// method (Wolovich & Elliott [6]): the update theta += alpha J^T e is
/// a gradient step on ||e||^2/2, stable when alpha < 2 / lambda_max(J
/// J^T).  lambda_max is bounded by the sum of squared lever arms,
/// which is largest at the fully stretched configuration, so
///
///     alpha = c / sum_i (distance from joint i to the tip, stretched)^2
///
/// with a conservative c (default 4, comfortably inside the stability
/// region across the paper's DOF ladder) is the per-robot constant a
/// careful classical implementation would pick.  This gain is what
/// makes the original method need thousands of iterations at high DOF
/// (paper Fig. 5a) — the gap Quick-IK closes.
double stabilityGain(const kin::Chain& chain, double c = 4.0);

}  // namespace dadu::ik
