// Adaptive-speculation Quick-IK (our future-work extension).
//
// Algorithm 1 spends `Max` FK evaluations per iteration regardless of
// need, but the selector's own output says how much search was useful:
// when the winning candidate is k = Max (the full Eq. 8 step), the
// linearisation was trustworthy and fewer candidates would have done;
// when the winner sits in the interior, the step landscape is curved
// and the search is earning its keep.  This solver adapts the
// speculation count between [min, max] on that signal — halving after
// a run of boundary winners, doubling after interior winners — cutting
// the computation load (Fig. 5b's axis) at equal iteration counts.
// On IKAcc this translates directly to skipped waves.
#pragma once

#include <vector>

#include "dadu/kinematics/forward_batch.hpp"
#include "dadu/solvers/ik_solver.hpp"
#include "dadu/solvers/jt_common.hpp"

namespace dadu::ik {

class QuickIkAdaptiveSolver final : public IkSolver {
 public:
  /// Speculation count stays within [min_speculations,
  /// options.speculations]; it starts at the maximum.
  QuickIkAdaptiveSolver(kin::Chain chain, SolveOptions options,
                        int min_speculations = 8);

  SolveResult solve(const linalg::Vec3& target,
                    const linalg::VecX& seed) override;
  std::string name() const override { return "quick-ik-adaptive"; }
  const kin::Chain& chain() const override { return chain_; }
  const SolveOptions& options() const override { return options_; }
  void setDeadline(std::chrono::steady_clock::time_point d) override {
    options_.deadline = d;
  }

 private:
  kin::Chain chain_;
  SolveOptions options_;
  int min_spec_;
  JtWorkspace ws_;
  // Batched speculation workspace: the kernel is re-shaped to the
  // iteration's speculation count (allocation-free below the maximum,
  // which the constructor warms up).
  kin::BatchedForward batch_;
  std::vector<double> alphas_;
};

}  // namespace dadu::ik
