// Redundancy resolution by null-space gradient projection.
//
// A high-DOF manipulator (the paper's whole setting) has an
// (N-3)-dimensional self-motion manifold per position target; a
// production solver exploits it to optimise a secondary objective
// without disturbing the end effector:
//
//     dtheta = J^+ e  +  k_ns (I - J^+ J) (-grad H(theta))
//
// The projector (I - J^+ J) is applied matrix-free through the SVD of
// J (project g, subtract V V^T g over the row space).  Built-in
// objectives: stay near a rest posture, and stay centred in the joint
// limits; custom objectives take a gradient callback.
#pragma once

#include <functional>

#include "dadu/solvers/ik_solver.hpp"
#include "dadu/solvers/jt_common.hpp"

namespace dadu::ik {

/// Gradient of the secondary objective H(theta); the solver descends
/// -gradient within the null space.
using ObjectiveGradient =
    std::function<linalg::VecX(const linalg::VecX& theta)>;

/// H = 1/2 ||theta - rest||^2 : pulls towards a preferred posture.
ObjectiveGradient restPostureObjective(linalg::VecX rest);

/// H = sum_i ((theta_i - mid_i) / range_i)^2 for limited joints: pulls
/// towards the centre of the joint limits (unlimited joints ignored).
ObjectiveGradient limitCenteringObjective(const kin::Chain& chain);

class NullSpaceDlsSolver final : public IkSolver {
 public:
  /// `ns_gain` scales the projected secondary step per iteration.
  NullSpaceDlsSolver(kin::Chain chain, SolveOptions options,
                     ObjectiveGradient objective, double ns_gain = 0.2,
                     double lambda = 0.05, double max_task_step = 0.1);

  SolveResult solve(const linalg::Vec3& target,
                    const linalg::VecX& seed) override;
  std::string name() const override { return "dls-nullspace"; }
  const kin::Chain& chain() const override { return chain_; }
  const SolveOptions& options() const override { return options_; }

 private:
  kin::Chain chain_;
  SolveOptions options_;
  ObjectiveGradient objective_;
  double ns_gain_;
  double lambda_;
  double max_task_step_;
  JtWorkspace ws_;
};

}  // namespace dadu::ik
