#include "dadu/solvers/quick_ik_f32.hpp"

#include <algorithm>
#include <stdexcept>

#include "dadu/kinematics/forward.hpp"

namespace dadu::ik {

QuickIkF32Solver::QuickIkF32Solver(kin::Chain chain, SolveOptions options)
    : chain_(std::move(chain)), options_(options) {
  if (options_.speculations < 1)
    throw std::invalid_argument(
        "Quick-IK (f32) requires at least 1 speculation");
  batch_.reset(chain_, static_cast<std::size_t>(options_.speculations));
  alphas_.resize(static_cast<std::size_t>(options_.speculations));
}

SolveResult QuickIkF32Solver::solve(const linalg::Vec3& target,
                                    const linalg::VecX& seed) {
  validateInputs(chain_, target, seed);

  const int max_spec = options_.speculations;
  const auto lanes = static_cast<std::size_t>(max_spec);
  SolveResult result;
  result.theta = seed;
  if (options_.record_history)
    result.error_history.reserve(
        static_cast<std::size_t>(std::max(options_.max_iterations, 0)) + 1);

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // Serial head in double (SPU datapath).
    const JtIterationHead head =
        jtIterationHead(chain_, result.theta, target, ws_);
    ++result.fk_evaluations;
    if (options_.record_history) result.error_history.push_back(head.error);
    result.error = head.error;

    if (head.error < options_.accuracy) {
      result.status = Status::kConverged;
      return result;
    }
    if (head.stalled) {
      result.status = Status::kStalled;
      return result;
    }
    // Watchdog: bail with the best-so-far iterate before the sweep.
    if (options_.hasDeadline() && options_.deadlineExpired(clock())) {
      result.status = Status::kTimedOut;
      return result;
    }

    // Speculative searches on the float datapath (SSU/FKU array): one
    // batched chain walk with every FK intermediate held in float.
    // Candidates are formed in double and never clamped, exactly like
    // the scalar f32 path.
    for (std::size_t idx = 0; idx < lanes; ++idx)
      alphas_[idx] =
          (static_cast<double>(idx + 1) / max_spec) * head.alpha_base;
    batch_.evaluateLanes(chain_, result.theta, ws_.dtheta_base,
                         alphas_.data(), target, /*clamp_to_limits=*/false, 0,
                         lanes);
    result.fk_evaluations += max_spec;
    result.speculation_load += max_spec;
    ++result.iterations;

    const std::vector<double>& error_k = batch_.errors();
    std::size_t best = 0;
    for (std::size_t idx = 1; idx < lanes; ++idx)
      if (error_k[idx] < error_k[best]) best = idx;

    // Stage the winner and re-measure it in double before adopting —
    // both for honest accuracy (a hardware build would do the final
    // check on the host controller anyway) and so a float-datapath
    // "winner" that regresses past the pre-sweep error never replaces
    // the current theta.
    batch_.candidateInto(best, candidate_);
    const double candidate_error =
        (target - kin::endEffectorPosition(chain_, candidate_)).norm();
    ++result.fk_evaluations;

    if (!(candidate_error < head.error)) {
      result.status = Status::kStalled;
      return result;
    }
    result.theta = candidate_;
    result.error = candidate_error;

    if (result.error < options_.accuracy) {
      result.status = Status::kConverged;
      if (options_.record_history) result.error_history.push_back(result.error);
      return result;
    }
  }

  result.status = result.error < options_.accuracy ? Status::kConverged
                                                   : Status::kMaxIterations;
  // Budget exhausted after an adopting sweep: the adopted error was
  // never recorded (the loop head only logs pre-sweep errors).
  if (options_.record_history) result.error_history.push_back(result.error);
  return result;
}

}  // namespace dadu::ik
