#include "dadu/solvers/quick_ik_f32.hpp"

#include <stdexcept>

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/forward_f32.hpp"

namespace dadu::ik {

QuickIkF32Solver::QuickIkF32Solver(kin::Chain chain, SolveOptions options)
    : chain_(std::move(chain)), options_(options) {
  if (options_.speculations < 1)
    throw std::invalid_argument(
        "Quick-IK (f32) requires at least 1 speculation");
  theta_k_.assign(options_.speculations, linalg::VecX(chain_.dof()));
  error_k_.assign(options_.speculations, 0.0);
}

SolveResult QuickIkF32Solver::solve(const linalg::Vec3& target,
                                    const linalg::VecX& seed) {
  validateInputs(chain_, target, seed);

  const int max_spec = options_.speculations;
  SolveResult result;
  result.theta = seed;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // Serial head in double (SPU datapath).
    const JtIterationHead head =
        jtIterationHead(chain_, result.theta, target, ws_);
    ++result.fk_evaluations;
    if (options_.record_history) result.error_history.push_back(head.error);
    result.error = head.error;

    if (head.error < options_.accuracy) {
      result.status = Status::kConverged;
      return result;
    }
    if (head.stalled) {
      result.status = Status::kStalled;
      return result;
    }

    // Speculative searches on the float datapath (SSU/FKU array).
    for (int k = 1; k <= max_spec; ++k) {
      const double alpha_k =
          (static_cast<double>(k) / max_spec) * head.alpha_base;
      linalg::axpyInto(alpha_k, ws_.dtheta_base, result.theta,
                       theta_k_[k - 1]);
      const linalg::Vec3 x_k =
          kin::endEffectorPositionF32(chain_, theta_k_[k - 1]);
      error_k_[k - 1] = (target - x_k).norm();
    }
    result.fk_evaluations += max_spec;
    result.speculation_load += max_spec;
    ++result.iterations;

    std::size_t best = 0;
    for (std::size_t idx = 1; idx < static_cast<std::size_t>(max_spec); ++idx)
      if (error_k_[idx] < error_k_[best]) best = idx;

    result.theta = theta_k_[best];
    // Honest accuracy: re-measure the winner in double before claiming
    // convergence (a hardware build would do the final check on the
    // host controller anyway).
    result.error =
        (target - kin::endEffectorPosition(chain_, result.theta)).norm();
    ++result.fk_evaluations;

    if (result.error < options_.accuracy) {
      result.status = Status::kConverged;
      if (options_.record_history) result.error_history.push_back(result.error);
      return result;
    }
  }

  result.status = result.error < options_.accuracy ? Status::kConverged
                                                   : Status::kMaxIterations;
  return result;
}

}  // namespace dadu::ik
