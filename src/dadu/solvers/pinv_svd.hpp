// J^-1-SVD: pseudoinverse method, the paper's strong serial baseline.
//
// Mirrors the KDL/ROS solver the paper measured: each iteration
// factorises the Jacobian with SVD and takes the Moore-Penrose step
// dtheta = J^+ e.  Converges in few iterations but pays a full SVD per
// iteration — the serial cost the paper's whole design argument rests
// on.  The task-space error is clamped to `max_task_step` per
// iteration, the standard stabilisation (also in KDL) that keeps the
// Newton step inside the linearisation's region of validity.
#pragma once

#include "dadu/solvers/ik_solver.hpp"
#include "dadu/solvers/jt_common.hpp"

namespace dadu::ik {

class PinvSvdSolver final : public IkSolver {
 public:
  PinvSvdSolver(kin::Chain chain, SolveOptions options,
                double max_task_step = 0.1)
      : chain_(std::move(chain)),
        options_(options),
        max_task_step_(max_task_step) {}

  SolveResult solve(const linalg::Vec3& target,
                    const linalg::VecX& seed) override;
  std::string name() const override { return "pinv-svd"; }
  const kin::Chain& chain() const override { return chain_; }
  const SolveOptions& options() const override { return options_; }

  /// Total Jacobi sweeps spent in SVD across the last solve — the
  /// quantity the platform models price when estimating the serial
  /// cost of this method on modelled hardware.
  long long lastSvdSweeps() const { return last_svd_sweeps_; }

 private:
  kin::Chain chain_;
  SolveOptions options_;
  double max_task_step_;
  JtWorkspace ws_;
  long long last_svd_sweeps_ = 0;
};

}  // namespace dadu::ik
