// Joint-weighted damped least squares.
//
// Heterogeneous manipulators move some joints more cheaply than
// others (a torso lift vs a wrist); the weighted pseudoinverse
// minimises ||W^{1/2} dtheta|| instead of ||dtheta||:
//
//     dtheta = W^-1 J^T (J W^-1 J^T + lambda^2 I)^-1 e
//
// with diagonal W (weight_i > 0; larger = joint moves less).  Reduces
// to plain DLS when W = I.
#pragma once

#include "dadu/solvers/ik_solver.hpp"
#include "dadu/solvers/jt_common.hpp"

namespace dadu::ik {

class WeightedDlsSolver final : public IkSolver {
 public:
  /// `weights` has one positive entry per joint; throws
  /// std::invalid_argument on size mismatch or non-positive weights.
  WeightedDlsSolver(kin::Chain chain, SolveOptions options,
                    linalg::VecX weights, double lambda = 0.1,
                    double max_task_step = 0.1);

  SolveResult solve(const linalg::Vec3& target,
                    const linalg::VecX& seed) override;
  std::string name() const override { return "dls-weighted"; }
  const kin::Chain& chain() const override { return chain_; }
  const SolveOptions& options() const override { return options_; }

 private:
  kin::Chain chain_;
  SolveOptions options_;
  linalg::VecX inv_weights_;  // 1 / weight_i, precomputed
  double lambda_;
  double max_task_step_;
  JtWorkspace ws_;
};

}  // namespace dadu::ik
