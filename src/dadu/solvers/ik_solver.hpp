// Abstract IK solver interface.
//
// A solver is constructed for one chain (so it can pre-allocate all
// per-iteration workspaces: high-DOF real-time control cannot afford
// per-solve allocation) and then solves any number of targets.
#pragma once

#include <chrono>
#include <cstddef>
#include <exception>
#include <memory>
#include <string>

#include "dadu/kinematics/chain.hpp"
#include "dadu/linalg/vec.hpp"
#include "dadu/linalg/vecx.hpp"
#include "dadu/platform/clock.hpp"
#include "dadu/solvers/types.hpp"

namespace dadu::ik {

/// One request's slot in a multi-target solveMany() call.  `seed` is
/// borrowed — the caller keeps it alive for the duration of the call.
struct BatchLane {
  linalg::Vec3 target;
  const linalg::VecX* seed = nullptr;
  /// Per-lane cooperative watchdog deadline; the default (the epoch)
  /// means unbounded, mirroring SolveOptions::deadline.
  std::chrono::steady_clock::time_point deadline{};
};

/// Outcome of one solveMany() lane.
struct BatchLaneResult {
  SolveResult result;
  /// Wall time attributed to this lane in milliseconds.  The looping
  /// fallback times each lane's own solve; a fused implementation
  /// reports time from batch start to lane retirement (the latency the
  /// lane's caller actually observed).
  double solve_ms = 0.0;
  /// Set when the lane failed instead of producing a result (invalid
  /// inputs, injected fault).  Failures are per lane: batchmates still
  /// complete normally.
  std::exception_ptr error;
};

class IkSolver {
 public:
  virtual ~IkSolver() = default;

  /// Solve for `target`, starting from joint configuration `seed`.
  /// Throws std::invalid_argument on seed-size mismatch or non-finite
  /// target.
  virtual SolveResult solve(const linalg::Vec3& target,
                            const linalg::VecX& seed) = 0;

  /// Solve `n` independent lanes.  Per-lane semantics are identical to
  /// calling setDeadline(lanes[i].deadline) + solve(...) per lane —
  /// same statuses, same thetas bit-for-bit — but implementations may
  /// fuse the lanes into shared batched kernels to amortize per-solve
  /// overhead (QuickIkSolver runs all lanes' speculation sweeps through
  /// one grouped SoA chain walk).  Exceptions are captured per lane
  /// into BatchLaneResult::error, never thrown, so one bad request
  /// cannot poison its batchmates.  The base implementation is the
  /// sequential loop; it leaves the solver's watchdog deadline cleared.
  virtual void solveMany(const BatchLane* lanes, BatchLaneResult* out,
                         std::size_t n);

  /// Stable identifier ("jt-serial", "quick-ik", ...) used by benches
  /// and reports.
  virtual std::string name() const = 0;

  /// Arm (or clear, with the default time_point) the cooperative
  /// watchdog deadline for subsequent solve() calls — the per-request
  /// hook the serving layer uses on its per-worker solver instances.
  /// The base implementation ignores it: solvers without an iteration
  /// loop to check from simply run unbounded.
  virtual void setDeadline(std::chrono::steady_clock::time_point) {}

  /// Point the solver at a Clock (null = real steady clock).  Watchdog
  /// deadline checks and solveMany per-lane timing read this clock, so
  /// a solver handed a SimClock times out and stamps latencies on
  /// simulated time.  Owned by the caller; must outlive the solver's
  /// use of it.
  void setClock(const platform::Clock* clock) { clock_ = clock; }
  const platform::Clock* clock() const { return clock_; }

  virtual const kin::Chain& chain() const = 0;
  virtual const SolveOptions& options() const = 0;

 protected:
  /// One read of the solver's clock through the seam.
  platform::Clock::time_point clockNow() const {
    return platform::clockNow(clock_);
  }

 private:
  const platform::Clock* clock_ = nullptr;
};

}  // namespace dadu::ik
