// Abstract IK solver interface.
//
// A solver is constructed for one chain (so it can pre-allocate all
// per-iteration workspaces: high-DOF real-time control cannot afford
// per-solve allocation) and then solves any number of targets.
#pragma once

#include <memory>
#include <string>

#include "dadu/kinematics/chain.hpp"
#include "dadu/linalg/vec.hpp"
#include "dadu/linalg/vecx.hpp"
#include "dadu/solvers/types.hpp"

namespace dadu::ik {

class IkSolver {
 public:
  virtual ~IkSolver() = default;

  /// Solve for `target`, starting from joint configuration `seed`.
  /// Throws std::invalid_argument on seed-size mismatch or non-finite
  /// target.
  virtual SolveResult solve(const linalg::Vec3& target,
                            const linalg::VecX& seed) = 0;

  /// Stable identifier ("jt-serial", "quick-ik", ...) used by benches
  /// and reports.
  virtual std::string name() const = 0;

  /// Arm (or clear, with the default time_point) the cooperative
  /// watchdog deadline for subsequent solve() calls — the per-request
  /// hook the serving layer uses on its per-worker solver instances.
  /// The base implementation ignores it: solvers without an iteration
  /// loop to check from simply run unbounded.
  virtual void setDeadline(std::chrono::steady_clock::time_point) {}

  virtual const kin::Chain& chain() const = 0;
  virtual const SolveOptions& options() const = 0;
};

}  // namespace dadu::ik
