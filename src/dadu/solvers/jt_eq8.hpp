// Jacobian transpose with the per-iteration near-optimal step size of
// Eq. 8 (Buss [11]):
//
//     alpha = (e . JJ^T e) / (JJ^T e . JJ^T e)
//
// i.e. the exact line search on the linearised error.  This is the
// alpha_base Quick-IK speculates *around*; running it alone isolates
// how much of Quick-IK's gain comes from Eq. 8 itself versus from the
// speculative search (the paper: Eq. 8 "just gives a near-optimal
// value ... which leads limited acceleration").  Used by the
// alpha-strategy ablation bench.
#pragma once

#include "dadu/solvers/ik_solver.hpp"
#include "dadu/solvers/jt_common.hpp"

namespace dadu::ik {

class JtEq8Solver final : public IkSolver {
 public:
  JtEq8Solver(kin::Chain chain, SolveOptions options)
      : chain_(std::move(chain)), options_(options) {}

  SolveResult solve(const linalg::Vec3& target,
                    const linalg::VecX& seed) override;
  std::string name() const override { return "jt-eq8"; }
  const kin::Chain& chain() const override { return chain_; }
  const SolveOptions& options() const override { return options_; }

 private:
  kin::Chain chain_;
  SolveOptions options_;
  JtWorkspace ws_;
};

}  // namespace dadu::ik
