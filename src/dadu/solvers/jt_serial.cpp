#include "dadu/solvers/jt_serial.hpp"

namespace dadu::ik {

SolveResult JtSerialSolver::solve(const linalg::Vec3& target,
                                  const linalg::VecX& seed) {
  validateInputs(chain_, target, seed);

  SolveResult result;
  result.theta = seed;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const JtIterationHead head =
        jtIterationHead(chain_, result.theta, target, ws_);
    ++result.fk_evaluations;
    if (options_.record_history) result.error_history.push_back(head.error);
    result.error = head.error;

    if (head.error < options_.accuracy) {
      result.status = Status::kConverged;
      return result;
    }
    if (head.stalled) {
      result.status = Status::kStalled;
      return result;
    }
    // Watchdog: the classical method's thousands of tiny iterations
    // are exactly where an unbounded solve hides — check every head.
    if (options_.hasDeadline() && options_.deadlineExpired(clock())) {
      result.status = Status::kTimedOut;
      return result;
    }

    // The original method's fixed-gain update (Eq. 7 with constant
    // alpha); the Eq. 8 value computed by the head is ignored here.
    linalg::axpy(alpha_, ws_.dtheta_base, result.theta);
    if (options_.clamp_to_limits)
      result.theta = chain_.clampToLimits(result.theta);

    ++result.iterations;
    ++result.speculation_load;  // one (non-speculative) search per iter
  }

  // Budget exhausted: report the final error.
  const JtIterationHead head =
      jtIterationHead(chain_, result.theta, target, ws_);
  ++result.fk_evaluations;
  result.error = head.error;
  result.status = head.error < options_.accuracy ? Status::kConverged
                                                 : Status::kMaxIterations;
  return result;
}

}  // namespace dadu::ik
