#include "dadu/solvers/quick_ik_adaptive.hpp"

#include <algorithm>
#include <stdexcept>

namespace dadu::ik {

QuickIkAdaptiveSolver::QuickIkAdaptiveSolver(kin::Chain chain,
                                             SolveOptions options,
                                             int min_speculations)
    : chain_(std::move(chain)),
      options_(options),
      min_spec_(min_speculations) {
  if (options_.speculations < 1)
    throw std::invalid_argument(
        "Quick-IK (adaptive) requires at least 1 speculation");
  if (min_spec_ < 1 || min_spec_ > options_.speculations)
    throw std::invalid_argument(
        "Quick-IK (adaptive): min speculations out of range");
  // Warm the kernel workspace at the widest speculation count so later
  // reshapes never allocate.
  batch_.reset(chain_, static_cast<std::size_t>(options_.speculations));
  alphas_.resize(static_cast<std::size_t>(options_.speculations));
}

SolveResult QuickIkAdaptiveSolver::solve(const linalg::Vec3& target,
                                         const linalg::VecX& seed) {
  validateInputs(chain_, target, seed);

  SolveResult result;
  result.theta = seed;
  if (options_.record_history)
    result.error_history.reserve(
        static_cast<std::size_t>(std::max(options_.max_iterations, 0)) + 1);
  int spec = options_.speculations;  // start wide, adapt down

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const JtIterationHead head =
        jtIterationHead(chain_, result.theta, target, ws_);
    ++result.fk_evaluations;
    if (options_.record_history) result.error_history.push_back(head.error);
    result.error = head.error;

    if (head.error < options_.accuracy) {
      result.status = Status::kConverged;
      return result;
    }
    if (head.stalled) {
      result.status = Status::kStalled;
      return result;
    }
    // Watchdog: bail with the best-so-far iterate before the sweep.
    if (options_.hasDeadline() && options_.deadlineExpired(clock())) {
      result.status = Status::kTimedOut;
      return result;
    }

    // Batched sweep over the iteration's speculation count: the kernel
    // is reshaped to `spec` lanes (allocation-free below the maximum)
    // and walks the chain once for all candidates.
    const auto lanes = static_cast<std::size_t>(spec);
    for (std::size_t idx = 0; idx < lanes; ++idx)
      alphas_[idx] = (static_cast<double>(idx + 1) / spec) *
                     head.alpha_base;  // Eq. 9
    if (batch_.lanes() != lanes) batch_.reset(chain_, lanes);
    batch_.evaluateLanes(chain_, result.theta, ws_.dtheta_base,
                         alphas_.data(), target, options_.clamp_to_limits, 0,
                         lanes);
    result.fk_evaluations += spec;
    result.speculation_load += spec;
    ++result.iterations;

    const std::vector<double>& error_k = batch_.errors();
    std::size_t best = 0;
    for (std::size_t idx = 1; idx < lanes; ++idx)
      if (error_k[idx] < error_k[best]) best = idx;

    // Monotone descent guard: never adopt a candidate worse than the
    // pre-sweep error.  Unlike the fixed-width solver the ladder here
    // can still change shape, so retry at full width; only a full-width
    // sweep that fails to improve is a true stall.  Projected descent
    // (clamp_to_limits) is exempt — see QuickIkSolver.
    if (!options_.clamp_to_limits && !(error_k[best] < head.error)) {
      if (spec == options_.speculations) {
        result.status = Status::kStalled;
        return result;
      }
      spec = options_.speculations;
      continue;
    }

    batch_.candidateInto(best, result.theta);
    result.error = error_k[best];
    if (result.error < options_.accuracy) {
      result.status = Status::kConverged;
      if (options_.record_history) result.error_history.push_back(result.error);
      return result;
    }

    // Adapt: boundary winner (top quarter of the range) means the full
    // Eq. 8 step is near-optimal — shrink the search; interior winner
    // means curvature — widen it again.
    const int k_best = static_cast<int>(best) + 1;
    if (4 * k_best > 3 * spec) {
      spec = std::max(min_spec_, spec / 2);
    } else {
      spec = std::min(options_.speculations, spec * 2);
    }
  }

  result.status = result.error < options_.accuracy ? Status::kConverged
                                                   : Status::kMaxIterations;
  // Budget exhausted after an adopting sweep: the adopted error was
  // never recorded (the loop head only logs pre-sweep errors).
  if (options_.record_history) result.error_history.push_back(result.error);
  return result;
}

}  // namespace dadu::ik
