#include "dadu/solvers/quick_ik_adaptive.hpp"

#include <algorithm>
#include <stdexcept>

#include "dadu/kinematics/forward.hpp"

namespace dadu::ik {

QuickIkAdaptiveSolver::QuickIkAdaptiveSolver(kin::Chain chain,
                                             SolveOptions options,
                                             int min_speculations)
    : chain_(std::move(chain)),
      options_(options),
      min_spec_(min_speculations) {
  if (options_.speculations < 1)
    throw std::invalid_argument(
        "Quick-IK (adaptive) requires at least 1 speculation");
  if (min_spec_ < 1 || min_spec_ > options_.speculations)
    throw std::invalid_argument(
        "Quick-IK (adaptive): min speculations out of range");
  theta_k_.assign(options_.speculations, linalg::VecX(chain_.dof()));
  error_k_.assign(options_.speculations, 0.0);
}

SolveResult QuickIkAdaptiveSolver::solve(const linalg::Vec3& target,
                                         const linalg::VecX& seed) {
  validateInputs(chain_, target, seed);

  SolveResult result;
  result.theta = seed;
  int spec = options_.speculations;  // start wide, adapt down

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const JtIterationHead head =
        jtIterationHead(chain_, result.theta, target, ws_);
    ++result.fk_evaluations;
    if (options_.record_history) result.error_history.push_back(head.error);
    result.error = head.error;

    if (head.error < options_.accuracy) {
      result.status = Status::kConverged;
      return result;
    }
    if (head.stalled) {
      result.status = Status::kStalled;
      return result;
    }

    for (int k = 1; k <= spec; ++k) {
      const double alpha_k =
          (static_cast<double>(k) / spec) * head.alpha_base;  // Eq. 9
      linalg::axpyInto(alpha_k, ws_.dtheta_base, result.theta,
                       theta_k_[k - 1]);
      if (options_.clamp_to_limits)
        theta_k_[k - 1] = chain_.clampToLimits(theta_k_[k - 1]);
      const linalg::Vec3 x_k =
          kin::endEffectorPosition(chain_, theta_k_[k - 1]);
      error_k_[k - 1] = (target - x_k).norm();
    }
    result.fk_evaluations += spec;
    result.speculation_load += spec;
    ++result.iterations;

    std::size_t best = 0;
    for (std::size_t idx = 1; idx < static_cast<std::size_t>(spec); ++idx)
      if (error_k_[idx] < error_k_[best]) best = idx;

    result.theta = theta_k_[best];
    result.error = error_k_[best];
    if (result.error < options_.accuracy) {
      result.status = Status::kConverged;
      if (options_.record_history) result.error_history.push_back(result.error);
      return result;
    }

    // Adapt: boundary winner (top quarter of the range) means the full
    // Eq. 8 step is near-optimal — shrink the search; interior winner
    // means curvature — widen it again.
    const int k_best = static_cast<int>(best) + 1;
    if (4 * k_best > 3 * spec) {
      spec = std::max(min_spec_, spec / 2);
    } else {
      spec = std::min(options_.speculations, spec * 2);
    }
  }

  result.status = result.error < options_.accuracy ? Status::kConverged
                                                   : Status::kMaxIterations;
  return result;
}

}  // namespace dadu::ik
