// Name-based solver construction for benches, examples and the engine.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dadu/kinematics/chain.hpp"
#include "dadu/solvers/ik_solver.hpp"

namespace dadu::ik {

/// Known solver names:
///   "jt-serial"       original Jacobian transpose (fixed stability-safe
///                     gain, the paper's JT-Serial baseline)
///   "jt-eq8"          Jacobian transpose with the Eq. 8 step size each
///                     iteration (ablation: alpha_base without speculation)
///   "jt-fixed-alpha"  Jacobian transpose, fixed alpha = 0.05
///   "jt-momentum"     Jacobian transpose + heavy-ball momentum (ablation)
///   "quick-ik"        Algorithm 1, speculations executed inline
///   "quick-ik-mt"     Algorithm 1, speculations on a thread pool
///   "quick-ik-f32"    Algorithm 1, speculative FK on an FP32 datapath
///   "quick-ik-adaptive"  Algorithm 1 with an adaptive speculation count
///   "pinv-svd"        SVD pseudoinverse (KDL-style baseline)
///   "dls"             damped least squares
///   "sdls"            selectively damped least squares [20]
///   "ccd"             cyclic coordinate descent [4]
std::vector<std::string> solverNames();

/// Construct by name; throws std::invalid_argument for unknown names.
std::unique_ptr<IkSolver> makeSolver(const std::string& name,
                                     const kin::Chain& chain,
                                     const SolveOptions& options);

}  // namespace dadu::ik
