// Resolved Motion Rate Control — Whitney 1969, the paper's reference
// [5] and the ancestor of the whole inverse-Jacobian family.
//
// Velocity-level IK: instead of solving positions from scratch, the
// controller integrates joint rates that realise a desired task-space
// velocity,
//
//     theta_dot = J^+ ( x_dot_ff + K * e )
//
// where x_dot_ff is the path's feedforward velocity and K e the
// closed-loop drift correction (CLIK).  This is how a tracking
// controller consumes IK in practice, and the natural consumer of the
// warm-start solvers benchmarked elsewhere; included as a
// library-complete baseline and used by the control-loop simulation.
#pragma once

#include <vector>

#include "dadu/kinematics/chain.hpp"
#include "dadu/solvers/jt_common.hpp"

namespace dadu::ik {

struct RmrcOptions {
  double dt = 0.01;            ///< integration step (s)
  double feedback_gain = 20.0; ///< K (1/s); 0 = open-loop integration
  double lambda = 0.02;        ///< damping of the velocity pseudoinverse
};

struct RmrcResult {
  std::vector<linalg::VecX> joint_path;  ///< configuration per waypoint
  std::vector<double> tracking_error;    ///< task error per waypoint (m)
  double max_error = 0.0;
  double rms_error = 0.0;
};

/// Track `path` (waypoints spaced `options.dt` apart in time) starting
/// from configuration `q0`.
RmrcResult trackRmrc(const kin::Chain& chain,
                     const std::vector<linalg::Vec3>& path,
                     const linalg::VecX& q0, const RmrcOptions& options = {});

}  // namespace dadu::ik
