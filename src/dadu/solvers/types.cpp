#include "dadu/solvers/types.hpp"

#include <algorithm>
#include <cmath>

namespace dadu::ik {

std::string toString(Status s) {
  switch (s) {
    case Status::kConverged: return "converged";
    case Status::kMaxIterations: return "max-iterations";
    case Status::kStalled: return "stalled";
    case Status::kTimedOut: return "timed-out";
  }
  return "unknown";
}

BatchStats summarize(const std::vector<SolveResult>& results) {
  BatchStats stats;
  stats.count = static_cast<int>(results.size());
  if (results.empty()) return stats;
  double iter_sum = 0.0, load_sum = 0.0, err_sum = 0.0;
  for (const SolveResult& r : results) {
    if (r.converged()) ++stats.converged;
    iter_sum += r.iterations;
    load_sum += static_cast<double>(r.speculation_load);
    err_sum += r.error;
  }
  stats.mean_iterations = iter_sum / stats.count;
  stats.mean_load = load_sum / stats.count;
  stats.mean_error = err_sum / stats.count;
  return stats;
}

double iterationPercentile(const std::vector<SolveResult>& results,
                           double p) {
  if (results.empty()) return 0.0;
  std::vector<int> iters;
  iters.reserve(results.size());
  for (const SolveResult& r : results) iters.push_back(r.iterations);
  std::sort(iters.begin(), iters.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: ceil(p/100 * N), 1-based.
  const std::size_t rank = static_cast<std::size_t>(std::max(
      1.0, std::ceil(clamped / 100.0 * static_cast<double>(iters.size()))));
  return static_cast<double>(iters[rank - 1]);
}

}  // namespace dadu::ik
