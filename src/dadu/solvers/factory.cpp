#include "dadu/solvers/factory.hpp"

#include <stdexcept>

#include "dadu/solvers/ccd.hpp"
#include "dadu/solvers/dls.hpp"
#include "dadu/solvers/jt_eq8.hpp"
#include "dadu/solvers/jt_fixed_alpha.hpp"
#include "dadu/solvers/jt_momentum.hpp"
#include "dadu/solvers/jt_serial.hpp"
#include "dadu/solvers/pinv_svd.hpp"
#include "dadu/solvers/quick_ik.hpp"
#include "dadu/solvers/quick_ik_adaptive.hpp"
#include "dadu/solvers/quick_ik_f32.hpp"
#include "dadu/solvers/sdls.hpp"

namespace dadu::ik {

std::vector<std::string> solverNames() {
  return {"jt-serial", "jt-eq8",      "jt-fixed-alpha", "jt-momentum",
          "quick-ik",  "quick-ik-mt", "quick-ik-f32",  "quick-ik-adaptive",
          "pinv-svd",  "dls",         "sdls",
          "ccd"};
}

std::unique_ptr<IkSolver> makeSolver(const std::string& name,
                                     const kin::Chain& chain,
                                     const SolveOptions& options) {
  if (name == "jt-serial")
    return std::make_unique<JtSerialSolver>(chain, options);
  if (name == "jt-eq8") return std::make_unique<JtEq8Solver>(chain, options);
  if (name == "jt-momentum")
    return std::make_unique<JtMomentumSolver>(chain, options);
  if (name == "jt-fixed-alpha")
    return std::make_unique<JtFixedAlphaSolver>(chain, options, 0.05);
  if (name == "quick-ik")
    return std::make_unique<QuickIkSolver>(chain, options,
                                           QuickIkSolver::Execution::kSerial);
  if (name == "quick-ik-mt")
    return std::make_unique<QuickIkSolver>(
        chain, options, QuickIkSolver::Execution::kThreadPool);
  if (name == "quick-ik-adaptive")
    return std::make_unique<QuickIkAdaptiveSolver>(chain, options);
  if (name == "quick-ik-f32")
    return std::make_unique<QuickIkF32Solver>(chain, options);
  if (name == "pinv-svd") return std::make_unique<PinvSvdSolver>(chain, options);
  if (name == "dls") return std::make_unique<DlsSolver>(chain, options);
  if (name == "sdls") return std::make_unique<SdlsSolver>(chain, options);
  if (name == "ccd") return std::make_unique<CcdSolver>(chain, options);
  throw std::invalid_argument("unknown IK solver: " + name);
}

}  // namespace dadu::ik
