// Pose (position + orientation) IK solvers — the 6-DOF task-space
// extension of the paper's pipeline.
//
// Two members mirror the paper's central comparison in the extended
// task space:
//
//   * QuickIkPoseSolver — Algorithm 1 lifted to 6-D task errors: the
//     serial head computes J (6 x N), dtheta_base = J^T e and the Eq. 8
//     step size with 6-vectors; the speculative search evaluates
//     f(theta_k) poses in parallel and selects the argmin of the
//     weighted pose error.
//   * DlsPoseSolver — damped least squares on the 6 x 6 normal
//     equations, the robust classical baseline for full-pose IK.
//
// Convergence demands BOTH position and orientation accuracy:
// ||p_t - p|| < accuracy and geodesic angle < angular_accuracy.
#pragma once

#include <vector>

#include "dadu/kinematics/jacobian_full.hpp"
#include "dadu/solvers/types.hpp"

namespace dadu::ik {

struct PoseSolveOptions {
  double accuracy = 1e-2;           ///< metres
  double angular_accuracy = 1e-2;   ///< radians
  /// Metres-per-radian weight folding orientation error into the task
  /// error vector; default treats 1 rad like 0.5 m (a mid-workspace
  /// lever arm for the preset robots).
  double rotation_weight = 0.5;
  int max_iterations = 10'000;
  int speculations = 64;
};

struct PoseSolveResult {
  Status status = Status::kMaxIterations;
  int iterations = 0;
  double position_error = 0.0;   ///< metres
  double angular_error = 0.0;    ///< radians
  linalg::VecX theta;

  bool converged() const { return status == Status::kConverged; }
};

/// Quick-IK in the full 6-D task space.
class QuickIkPoseSolver {
 public:
  QuickIkPoseSolver(kin::Chain chain, PoseSolveOptions options);

  PoseSolveResult solve(const kin::Pose& target, const linalg::VecX& seed);

  const kin::Chain& chain() const { return chain_; }
  const PoseSolveOptions& options() const { return options_; }

 private:
  kin::Chain chain_;
  PoseSolveOptions options_;
  linalg::MatX j_;
  std::vector<linalg::Mat4> frames_;
  std::vector<linalg::VecX> theta_k_;
  std::vector<double> error_k_;
};

/// Damped least squares in the full 6-D task space.
class DlsPoseSolver {
 public:
  DlsPoseSolver(kin::Chain chain, PoseSolveOptions options,
                double lambda = 0.1, double max_task_step = 0.1);

  PoseSolveResult solve(const kin::Pose& target, const linalg::VecX& seed);

  const kin::Chain& chain() const { return chain_; }

 private:
  kin::Chain chain_;
  PoseSolveOptions options_;
  double lambda_;
  double max_task_step_;
  linalg::MatX j_;
  std::vector<linalg::Mat4> frames_;
};

}  // namespace dadu::ik
