// Random-restart meta-solver.
//
// First-order IK can stall (exactly singular start) or drag (bad basin
// of attraction); the production remedy is restarts from fresh random
// configurations — also the natural way to use a solver whose seeds
// come from Algorithm 1's "Set theta through Random".  This wrapper
// retries the inner solver up to `max_restarts` times with
// deterministic, seed-derived restart configurations and returns the
// first converged result (or the best-error attempt).
#pragma once

#include <cstdint>
#include <memory>

#include "dadu/solvers/ik_solver.hpp"

namespace dadu::ik {

class RestartSolver final : public IkSolver {
 public:
  /// Takes ownership of `inner`.  `restart_seed` makes the restart
  /// sequence reproducible.
  RestartSolver(std::unique_ptr<IkSolver> inner, int max_restarts = 4,
                std::uint64_t restart_seed = 1);

  /// Solves with the caller's seed first; on non-convergence, retries
  /// from random configurations.  The returned result aggregates
  /// iterations/FK counts across all attempts; `theta` and `error` are
  /// the best attempt's.
  SolveResult solve(const linalg::Vec3& target,
                    const linalg::VecX& seed) override;

  std::string name() const override { return inner_->name() + "+restart"; }
  const kin::Chain& chain() const override { return inner_->chain(); }
  const SolveOptions& options() const override { return inner_->options(); }

  /// Attempts used by the last solve (1 = no restart needed).
  int lastAttempts() const { return last_attempts_; }

 private:
  std::unique_ptr<IkSolver> inner_;
  int max_restarts_;
  std::uint64_t restart_seed_;
  int last_attempts_ = 0;
};

}  // namespace dadu::ik
