#include "dadu/solvers/jt_momentum.hpp"

namespace dadu::ik {

SolveResult JtMomentumSolver::solve(const linalg::Vec3& target,
                                    const linalg::VecX& seed) {
  validateInputs(chain_, target, seed);

  SolveResult result;
  result.theta = seed;
  linalg::VecX velocity(chain_.dof());

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const JtIterationHead head =
        jtIterationHead(chain_, result.theta, target, ws_);
    ++result.fk_evaluations;
    if (options_.record_history) result.error_history.push_back(head.error);
    result.error = head.error;

    if (head.error < options_.accuracy) {
      result.status = Status::kConverged;
      return result;
    }
    if (head.stalled && velocity.maxAbs() < 1e-300) {
      result.status = Status::kStalled;
      return result;
    }

    // velocity = beta * velocity + alpha * J^T e; theta += velocity.
    velocity *= beta_;
    if (!head.stalled)
      linalg::axpy(head.alpha_base, ws_.dtheta_base, velocity);
    result.theta += velocity;
    if (options_.clamp_to_limits)
      result.theta = chain_.clampToLimits(result.theta);

    ++result.iterations;
    ++result.speculation_load;
  }

  const JtIterationHead head =
      jtIterationHead(chain_, result.theta, target, ws_);
  ++result.fk_evaluations;
  result.error = head.error;
  result.status = head.error < options_.accuracy ? Status::kConverged
                                                 : Status::kMaxIterations;
  return result;
}

}  // namespace dadu::ik
