// Cyclic Coordinate Descent [4] — the classic geometric baseline the
// paper's related-work section contrasts with (single-end-effector
// only, which is exactly our setting).
//
// One iteration sweeps the joints from the end-effector towards the
// base; each revolute joint is rotated by the angle that best aligns
// the joint->end-effector vector with the joint->target vector in the
// plane perpendicular to the joint axis (closed form via atan2).
// Iteration counts are comparable to other first-order methods but
// each sweep costs O(N) FK updates, i.e. O(N^2) work.
#pragma once

#include "dadu/solvers/ik_solver.hpp"
#include "dadu/solvers/jt_common.hpp"

namespace dadu::ik {

class CcdSolver final : public IkSolver {
 public:
  CcdSolver(kin::Chain chain, SolveOptions options)
      : chain_(std::move(chain)), options_(options) {}

  SolveResult solve(const linalg::Vec3& target,
                    const linalg::VecX& seed) override;
  std::string name() const override { return "ccd"; }
  const kin::Chain& chain() const override { return chain_; }
  const SolveOptions& options() const override { return options_; }

 private:
  kin::Chain chain_;
  SolveOptions options_;
  std::vector<linalg::Mat4> frames_;
};

}  // namespace dadu::ik
