#include "dadu/solvers/ik_solver.hpp"

namespace dadu::ik {

void IkSolver::solveMany(const BatchLane* lanes, BatchLaneResult* out,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const auto start = clockNow();
    out[i] = BatchLaneResult{};
    try {
      setDeadline(lanes[i].deadline);
      out[i].result = solve(lanes[i].target, *lanes[i].seed);
    } catch (...) {
      out[i].error = std::current_exception();
    }
    out[i].solve_ms =
        std::chrono::duration<double, std::milli>(clockNow() - start).count();
  }
  setDeadline({});
}

}  // namespace dadu::ik
