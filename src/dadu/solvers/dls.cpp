#include "dadu/solvers/dls.hpp"

#include "dadu/linalg/cholesky.hpp"

namespace dadu::ik {

SolveResult DlsSolver::solve(const linalg::Vec3& target,
                             const linalg::VecX& seed) {
  validateInputs(chain_, target, seed);

  SolveResult result;
  result.theta = seed;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const JtIterationHead head =
        jtIterationHead(chain_, result.theta, target, ws_);
    ++result.fk_evaluations;
    if (options_.record_history) result.error_history.push_back(head.error);
    result.error = head.error;

    if (head.error < options_.accuracy) {
      result.status = Status::kConverged;
      return result;
    }

    linalg::Vec3 step = head.error_vec;
    if (max_task_step_ > 0.0 && head.error > max_task_step_)
      step *= max_task_step_ / head.error;

    // (J J^T + lambda^2 I) y = e, then dtheta = J^T y.
    const linalg::Mat3 g = linalg::gram3(ws_.j);
    linalg::MatX a(3, 3);
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 3; ++c) a(r, c) = g(r, c);
    for (std::size_t d = 0; d < 3; ++d) a(d, d) += lambda_ * lambda_;

    const auto y = linalg::choleskySolve(a, {step.x, step.y, step.z});
    if (!y) {  // JJ^T + lambda^2 I is SPD by construction; failure means NaN
      result.status = Status::kStalled;
      return result;
    }
    linalg::VecX dtheta;
    linalg::mulTransposed3(ws_.j, {(*y)[0], (*y)[1], (*y)[2]}, dtheta);

    result.theta += dtheta;
    if (options_.clamp_to_limits)
      result.theta = chain_.clampToLimits(result.theta);
    ++result.iterations;
    ++result.speculation_load;
  }

  const JtIterationHead head =
      jtIterationHead(chain_, result.theta, target, ws_);
  ++result.fk_evaluations;
  result.error = head.error;
  result.status = head.error < options_.accuracy ? Status::kConverged
                                                 : Status::kMaxIterations;
  return result;
}

}  // namespace dadu::ik
