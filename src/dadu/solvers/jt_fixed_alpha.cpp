#include "dadu/solvers/jt_fixed_alpha.hpp"

namespace dadu::ik {

SolveResult JtFixedAlphaSolver::solve(const linalg::Vec3& target,
                                      const linalg::VecX& seed) {
  validateInputs(chain_, target, seed);

  SolveResult result;
  result.theta = seed;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const JtIterationHead head =
        jtIterationHead(chain_, result.theta, target, ws_);
    ++result.fk_evaluations;
    if (options_.record_history) result.error_history.push_back(head.error);
    result.error = head.error;

    if (head.error < options_.accuracy) {
      result.status = Status::kConverged;
      return result;
    }
    if (head.stalled) {
      result.status = Status::kStalled;
      return result;
    }
    // Watchdog: bail with the best-so-far iterate.
    if (options_.hasDeadline() && options_.deadlineExpired(clock())) {
      result.status = Status::kTimedOut;
      return result;
    }

    linalg::axpy(alpha_, ws_.dtheta_base, result.theta);
    if (options_.clamp_to_limits)
      result.theta = chain_.clampToLimits(result.theta);

    ++result.iterations;
    ++result.speculation_load;
  }

  const JtIterationHead head =
      jtIterationHead(chain_, result.theta, target, ws_);
  ++result.fk_evaluations;
  result.error = head.error;
  result.status = head.error < options_.accuracy ? Status::kConverged
                                                 : Status::kMaxIterations;
  return result;
}

}  // namespace dadu::ik
