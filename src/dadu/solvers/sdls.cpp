#include "dadu/solvers/sdls.hpp"

#include <algorithm>
#include <cmath>

#include "dadu/linalg/svd.hpp"

namespace dadu::ik {
namespace {

// Rescale w so that max |w_j| <= d (Buss & Kim's ClampMaxAbs).
void clampMaxAbs(linalg::VecX& w, double d) {
  const double m = w.maxAbs();
  if (m > d && m > 0.0) w *= d / m;
}

}  // namespace

SolveResult SdlsSolver::solve(const linalg::Vec3& target,
                              const linalg::VecX& seed) {
  validateInputs(chain_, target, seed);

  const std::size_t n = chain_.dof();
  SolveResult result;
  result.theta = seed;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const JtIterationHead head =
        jtIterationHead(chain_, result.theta, target, ws_);
    ++result.fk_evaluations;
    if (options_.record_history) result.error_history.push_back(head.error);
    result.error = head.error;

    if (head.error < options_.accuracy) {
      result.status = Status::kConverged;
      return result;
    }

    const linalg::Svd svd = linalg::svdJacobi(ws_.j);

    // Column norms rho_j = ||J_j||: end-effector speed per unit motion
    // of joint j; the scale SDLS measures joint steps against.
    linalg::VecX rho(n);
    for (std::size_t jcol = 0; jcol < n; ++jcol)
      rho[jcol] = ws_.j.col3(jcol).norm();

    linalg::VecX dtheta(n);
    bool any_direction = false;
    for (std::size_t i = 0; i < svd.s.size(); ++i) {
      const double sigma = svd.s[i];
      if (sigma <= 1e-12) continue;
      any_direction = true;

      // alpha_i = u_i . e  (residual component along this direction).
      double alpha = 0.0;
      for (std::size_t r = 0; r < 3; ++r) alpha += svd.u(r, i) * head.error_vec[r];

      // N_i = ||u_i|| = 1; M_i estimates the end-effector displacement
      // a unit joint-space step in direction v_i can cause.
      double m_i = 0.0;
      for (std::size_t jcol = 0; jcol < n; ++jcol)
        m_i += std::abs(svd.v(jcol, i)) * rho[jcol];
      m_i /= sigma;

      const double gamma_i = gamma_max_ * std::min(1.0, 1.0 / m_i);

      // phi_i = (alpha_i / sigma_i) v_i, clamped to gamma_i.
      linalg::VecX phi(n);
      const double scale = alpha / sigma;
      for (std::size_t jcol = 0; jcol < n; ++jcol)
        phi[jcol] = scale * svd.v(jcol, i);
      clampMaxAbs(phi, gamma_i);
      dtheta += phi;
    }

    if (!any_direction) {
      result.status = Status::kStalled;
      return result;
    }
    clampMaxAbs(dtheta, gamma_max_);

    result.theta += dtheta;
    if (options_.clamp_to_limits)
      result.theta = chain_.clampToLimits(result.theta);
    ++result.iterations;
    ++result.speculation_load;
  }

  const JtIterationHead head =
      jtIterationHead(chain_, result.theta, target, ws_);
  ++result.fk_evaluations;
  result.error = head.error;
  result.status = head.error < options_.accuracy ? Status::kConverged
                                                 : Status::kMaxIterations;
  return result;
}

}  // namespace dadu::ik
