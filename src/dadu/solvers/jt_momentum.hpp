// Jacobian transpose with heavy-ball momentum — an alternative
// acceleration of the transpose method that the paper did NOT take,
// included so the ablation can compare "remember the last step"
// (momentum, free on any hardware) against "search the current step"
// (Quick-IK's speculation, which needs the parallel fabric):
//
//     delta_k = alpha J^T e + beta * delta_{k-1};   theta += delta_k
//
// with alpha from Eq. 8 and the classic momentum coefficient beta.
// Momentum damps steepest descent's zig-zag and typically lands
// between jt-eq8 and quick-ik in iteration count.
#pragma once

#include "dadu/solvers/ik_solver.hpp"
#include "dadu/solvers/jt_common.hpp"

namespace dadu::ik {

class JtMomentumSolver final : public IkSolver {
 public:
  JtMomentumSolver(kin::Chain chain, SolveOptions options, double beta = 0.7)
      : chain_(std::move(chain)), options_(options), beta_(beta) {}

  SolveResult solve(const linalg::Vec3& target,
                    const linalg::VecX& seed) override;
  std::string name() const override { return "jt-momentum"; }
  const kin::Chain& chain() const override { return chain_; }
  const SolveOptions& options() const override { return options_; }
  double beta() const { return beta_; }

 private:
  kin::Chain chain_;
  SolveOptions options_;
  double beta_;
  JtWorkspace ws_;
};

}  // namespace dadu::ik
