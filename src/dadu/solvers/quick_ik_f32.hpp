// Quick-IK with a single-precision speculative datapath.
//
// Models an IKAcc whose Forward Kinematics Units are built from FP32
// arithmetic: the serial head (Jacobian, alpha_base) stays in double —
// it runs once per iteration and would live in the SPU where a wider
// datapath is affordable — while the 64 speculative FK evaluations use
// the float pipeline, as the SSU array would.  The selection argmin
// operates on float-derived errors; the solver's convergence check
// re-measures the chosen candidate in double so the reported accuracy
// is honest.
#pragma once

#include "dadu/solvers/ik_solver.hpp"
#include "dadu/solvers/jt_common.hpp"

namespace dadu::ik {

class QuickIkF32Solver final : public IkSolver {
 public:
  QuickIkF32Solver(kin::Chain chain, SolveOptions options);

  SolveResult solve(const linalg::Vec3& target,
                    const linalg::VecX& seed) override;
  std::string name() const override { return "quick-ik-f32"; }
  const kin::Chain& chain() const override { return chain_; }
  const SolveOptions& options() const override { return options_; }

 private:
  kin::Chain chain_;
  SolveOptions options_;
  JtWorkspace ws_;
  std::vector<linalg::VecX> theta_k_;
  std::vector<double> error_k_;
};

}  // namespace dadu::ik
