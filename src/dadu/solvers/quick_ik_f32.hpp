// Quick-IK with a single-precision speculative datapath.
//
// Models an IKAcc whose Forward Kinematics Units are built from FP32
// arithmetic: the serial head (Jacobian, alpha_base) stays in double —
// it runs once per iteration and would live in the SPU where a wider
// datapath is affordable — while the 64 speculative FK evaluations use
// the float pipeline, as the SSU array would.  The selection argmin
// operates on float-derived errors; the solver's convergence check
// re-measures the chosen candidate in double so the reported accuracy
// is honest.
#pragma once

#include <vector>

#include "dadu/kinematics/forward_batch.hpp"
#include "dadu/solvers/ik_solver.hpp"
#include "dadu/solvers/jt_common.hpp"

namespace dadu::ik {

class QuickIkF32Solver final : public IkSolver {
 public:
  QuickIkF32Solver(kin::Chain chain, SolveOptions options);

  SolveResult solve(const linalg::Vec3& target,
                    const linalg::VecX& seed) override;
  std::string name() const override { return "quick-ik-f32"; }
  const kin::Chain& chain() const override { return chain_; }
  const SolveOptions& options() const override { return options_; }
  void setDeadline(std::chrono::steady_clock::time_point d) override {
    options_.deadline = d;
  }

 private:
  kin::Chain chain_;
  SolveOptions options_;
  JtWorkspace ws_;
  // Batched speculation workspace on the float datapath (candidates
  // and errors stay double, matching the scalar f32 path).
  kin::BatchedForward batch_{kin::BatchedForward::Precision::kF32};
  std::vector<double> alphas_;
  linalg::VecX candidate_;  ///< winner staging, adopted only on improvement
};

}  // namespace dadu::ik
