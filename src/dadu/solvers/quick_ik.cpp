#include "dadu/solvers/quick_ik.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <stdexcept>

#include "dadu/kinematics/backends/spec_backend.hpp"

namespace dadu::ik {
namespace {

// Minimum lanes per worker chunk: below this the per-wake cost exceeds
// the arithmetic and a chunk should stay on the caller (also keeps a
// vector register's worth of contiguous lanes per worker).
constexpr std::size_t kLaneGrain = 8;

}  // namespace

QuickIkSolver::QuickIkSolver(kin::Chain chain, SolveOptions options,
                             Execution execution, std::size_t threads)
    : chain_(std::move(chain)), options_(options), execution_(execution) {
  if (options_.speculations < 1)
    throw std::invalid_argument("Quick-IK requires at least 1 speculation");
  if (execution_ == Execution::kThreadPool)
    pool_ = std::make_unique<par::ThreadPool>(threads);
  const auto max_spec = static_cast<std::size_t>(options_.speculations);
  batch_.reset(chain_, max_spec);
  alphas_.resize(max_spec);
}

SolveResult QuickIkSolver::solve(const linalg::Vec3& target,
                                 const linalg::VecX& seed) {
  validateInputs(chain_, target, seed);

  const int max_spec = options_.speculations;
  const auto lanes = static_cast<std::size_t>(max_spec);
  SolveResult result;
  result.theta = seed;
  if (options_.record_history)
    result.error_history.reserve(
        static_cast<std::size_t>(std::max(options_.max_iterations, 0)) + 1);

  if (options_.max_iterations <= 0) {
    // Zero budget: report the seed's error honestly.
    const JtIterationHead head =
        jtIterationHead(chain_, result.theta, target, ws_);
    ++result.fk_evaluations;
    result.error = head.error;
    result.status = head.error < options_.accuracy ? Status::kConverged
                                                   : Status::kMaxIterations;
    return result;
  }

  // One sweep closure per solve (not per iteration): every capture is
  // stable across iterations — result.theta is updated in place — so
  // the pool dispatch allocates nothing inside the iteration loop.
  std::function<void(std::size_t, std::size_t)> pooled_sweep;
  if (execution_ == Execution::kThreadPool)
    pooled_sweep = [this, &target, &result](std::size_t lo, std::size_t hi) {
      batch_.evaluateLanes(chain_, result.theta, ws_.dtheta_base,
                           alphas_.data(), target, options_.clamp_to_limits,
                           lo, hi);
    };

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const JtIterationHead head =
        jtIterationHead(chain_, result.theta, target, ws_);
    ++result.fk_evaluations;
    if (options_.record_history) result.error_history.push_back(head.error);
    result.error = head.error;

    if (head.error < options_.accuracy) {
      result.status = Status::kConverged;
      return result;
    }
    if (head.stalled) {
      result.status = Status::kStalled;
      return result;
    }
    // Watchdog: bail with the best-so-far iterate before paying for
    // another speculative sweep.
    if (options_.hasDeadline() && options_.deadlineExpired(clock())) {
      result.status = Status::kTimedOut;
      return result;
    }

    // Speculative search (Algorithm 1, lines 6-15): all Max candidates
    // advance through one batched chain walk.  Serial execution is a
    // single kernel call; the thread pool splits the batch into
    // contiguous lane chunks, one per worker, each writing its own
    // disjoint slice of the shared SoA workspace.
    for (std::size_t idx = 0; idx < lanes; ++idx)
      alphas_[idx] = (static_cast<double>(idx + 1) / max_spec) *
                     head.alpha_base;  // Eq. 9
    if (execution_ == Execution::kThreadPool) {
      // Grain rounds up to the backend's lane multiple so worker
      // chunks land on vector-register boundaries.
      const std::size_t grain =
          std::max(kLaneGrain, batch_.backend().caps().lane_multiple);
      pool_->parallelForChunked(0, lanes, grain, pooled_sweep);
    } else {
      batch_.evaluateLanes(chain_, result.theta, ws_.dtheta_base,
                           alphas_.data(), target, options_.clamp_to_limits,
                           0, lanes);
    }
    result.fk_evaluations += max_spec;
    result.speculation_load += max_spec;
    ++result.iterations;

    // Parameter selection (line 16): argmin error, smallest k on ties,
    // deterministic regardless of execution strategy.
    const std::vector<double>& error_k = batch_.errors();
    std::size_t best = 0;
    for (std::size_t idx = 1; idx < lanes; ++idx)
      if (error_k[idx] < error_k[best]) best = idx;

    // Monotone descent guard: adopt the winner only if it improves on
    // the pre-sweep error.  The alpha ladder is deterministic, so a
    // sweep that cannot improve now never will — keep the current
    // theta (result.error already holds head.error) and stop rather
    // than stepping to a worse configuration.  Projected descent
    // (clamp_to_limits) is exempt: the projection legitimately visits
    // worse errors while sliding along the joint-limit boundary, and
    // adoption moves theta so the next sweep is not a repeat.
    if (!options_.clamp_to_limits && !(error_k[best] < head.error)) {
      result.status = Status::kStalled;
      return result;
    }

    batch_.candidateInto(best, result.theta);
    result.error = error_k[best];

    if (error_k[best] < options_.accuracy) {  // line 12-13 early exit
      result.status = Status::kConverged;
      if (options_.record_history) result.error_history.push_back(result.error);
      return result;
    }
  }

  result.status = result.error < options_.accuracy ? Status::kConverged
                                                   : Status::kMaxIterations;
  // Budget exhausted after an adopting sweep: the adopted error was
  // never recorded (the loop head only logs pre-sweep errors).
  if (options_.record_history) result.error_history.push_back(result.error);
  return result;
}

void QuickIkSolver::solveMany(const BatchLane* lanes, BatchLaneResult* out,
                              std::size_t n) {
  // The fused path shares one serial chain walk across lanes; with
  // pool execution each solve already fans out internally, so batching
  // them serially would serialize the pool's parallelism.
  if (execution_ != Execution::kSerial || n <= 1) {
    IkSolver::solveMany(lanes, out, n);
    return;
  }

  // Chunk the burst so one lockstep's working set (n*K candidate and
  // accumulator lanes plus n Jacobian heads) stays cache-resident:
  // with the paper-default 64 speculations the fused sweep measured
  // fastest around 256 total SoA lanes (4 requests) and ~20% slower by
  // 1024, purely from cache pressure.  Chunks also retire early
  // requests sooner — the same completion order a per-request worker
  // would produce.  The budget comes from the speculation backend's
  // capabilities, not a local constant; when K alone exceeds it
  // (chunk degenerates to one request per lockstep) the kernel's own
  // walk slicing keeps each contiguous walk within the budget, so a
  // K=512 burst no longer streams 512-lane walks through cache.
  const std::size_t max_fused =
      many_batch_.backend().caps().max_fused_lanes;
  const auto K = static_cast<std::size_t>(options_.speculations);
  const std::size_t chunk = std::max<std::size_t>(1, max_fused / K);
  for (std::size_t base = 0; base < n; base += chunk)
    solveManyFused(lanes + base, out + base, std::min(chunk, n - base));
}

void QuickIkSolver::solveManyFused(const BatchLane* lanes,
                                   BatchLaneResult* out, std::size_t n) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point batch_start = clockNow();
  const int max_spec = options_.speculations;
  const auto K = static_cast<std::size_t>(max_spec);

  many_batch_.reset(chain_, n * K);
  if (many_alphas_.size() < n * K) many_alphas_.resize(n * K);
  if (many_ws_.size() < n) many_ws_.resize(n);
  if (many_head_error_.size() < n) many_head_error_.resize(n);
  if (many_active_.size() < n) many_active_.resize(n);
  many_groups_.reserve(n);
  many_swept_.reserve(n);

  const auto retire = [&](std::size_t g) {
    many_active_[g] = 0;
    out[g].solve_ms =
        std::chrono::duration<double, std::milli>(clockNow() - batch_start)
            .count();
  };
  const auto fail = [&](std::size_t g) {
    out[g].error = std::current_exception();
    retire(g);
  };

  // Per-lane setup: validate, seed, and (zero-budget case) report the
  // seed's error honestly, exactly as the head of solve() does.
  for (std::size_t g = 0; g < n; ++g) {
    out[g] = BatchLaneResult{};
    many_active_[g] = 0;
    SolveResult& r = out[g].result;
    try {
      validateInputs(chain_, lanes[g].target, *lanes[g].seed);
    } catch (...) {
      fail(g);
      continue;
    }
    r.theta = *lanes[g].seed;
    if (options_.record_history)
      r.error_history.reserve(
          static_cast<std::size_t>(std::max(options_.max_iterations, 0)) + 1);
    if (options_.max_iterations <= 0) {
      try {
        const JtIterationHead head =
            jtIterationHead(chain_, r.theta, lanes[g].target, many_ws_[g]);
        ++r.fk_evaluations;
        r.error = head.error;
        r.status = head.error < options_.accuracy ? Status::kConverged
                                                  : Status::kMaxIterations;
      } catch (...) {
        fail(g);
        continue;
      }
      retire(g);
      continue;
    }
    many_active_[g] = 1;
  }
  if (options_.max_iterations <= 0) return;

  // Lockstep iteration: phase 1 runs every live lane's serial head
  // (Jacobian, dtheta_base, alpha_base — where the per-lane fault point
  // and watchdog fire), phase 2 fuses all surviving lanes' speculative
  // sweeps into one grouped chain walk, phase 3 does per-lane argmin
  // selection and the monotone-descent guard.  A lane that converges,
  // stalls, times out or throws retires immediately; the rest keep
  // iterating.  Per lane the statement order matches solve() exactly.
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    many_groups_.clear();
    many_swept_.clear();
    for (std::size_t g = 0; g < n; ++g) {
      if (!many_active_[g]) continue;
      SolveResult& r = out[g].result;
      JtIterationHead head;
      try {
        head = jtIterationHead(chain_, r.theta, lanes[g].target, many_ws_[g]);
      } catch (...) {
        fail(g);
        continue;
      }
      ++r.fk_evaluations;
      if (options_.record_history) r.error_history.push_back(head.error);
      r.error = head.error;

      if (head.error < options_.accuracy) {
        r.status = Status::kConverged;
        retire(g);
        continue;
      }
      if (head.stalled) {
        r.status = Status::kStalled;
        retire(g);
        continue;
      }
      if (lanes[g].deadline != Clock::time_point{} &&
          clockNow() >= lanes[g].deadline) {
        r.status = Status::kTimedOut;
        retire(g);
        continue;
      }

      many_head_error_[g] = head.error;
      double* alpha = many_alphas_.data() + g * K;
      for (std::size_t idx = 0; idx < K; ++idx)
        alpha[idx] = (static_cast<double>(idx + 1) / max_spec) *
                     head.alpha_base;  // Eq. 9
      many_groups_.push_back({&r.theta, &many_ws_[g].dtheta_base,
                              lanes[g].target, g * K, g * K + K});
      many_swept_.push_back(g);
    }
    if (many_swept_.empty()) return;

    // The fused sweep: one chain walk advances every lane of every
    // surviving request.
    many_batch_.evaluateGrouped(chain_, many_groups_.data(),
                                many_groups_.size(), many_alphas_.data(),
                                options_.clamp_to_limits);

    const std::vector<double>& error_k = many_batch_.errors();
    for (const std::size_t g : many_swept_) {
      SolveResult& r = out[g].result;
      r.fk_evaluations += max_spec;
      r.speculation_load += max_spec;
      ++r.iterations;

      std::size_t best = g * K;
      for (std::size_t idx = g * K + 1; idx < g * K + K; ++idx)
        if (error_k[idx] < error_k[best]) best = idx;

      if (!options_.clamp_to_limits &&
          !(error_k[best] < many_head_error_[g])) {
        r.status = Status::kStalled;
        retire(g);
        continue;
      }

      many_batch_.candidateInto(best, r.theta);
      r.error = error_k[best];

      if (error_k[best] < options_.accuracy) {
        r.status = Status::kConverged;
        if (options_.record_history) r.error_history.push_back(r.error);
        retire(g);
        continue;
      }
    }
  }

  // Budget exhausted for whoever is still live.
  for (std::size_t g = 0; g < n; ++g) {
    if (!many_active_[g]) continue;
    SolveResult& r = out[g].result;
    r.status = r.error < options_.accuracy ? Status::kConverged
                                           : Status::kMaxIterations;
    if (options_.record_history) r.error_history.push_back(r.error);
    retire(g);
  }
}

}  // namespace dadu::ik
