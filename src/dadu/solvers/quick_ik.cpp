#include "dadu/solvers/quick_ik.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <stdexcept>

namespace dadu::ik {
namespace {

// Minimum lanes per worker chunk: below this the per-wake cost exceeds
// the arithmetic and a chunk should stay on the caller (also keeps a
// vector register's worth of contiguous lanes per worker).
constexpr std::size_t kLaneGrain = 8;

}  // namespace

QuickIkSolver::QuickIkSolver(kin::Chain chain, SolveOptions options,
                             Execution execution, std::size_t threads)
    : chain_(std::move(chain)), options_(options), execution_(execution) {
  if (options_.speculations < 1)
    throw std::invalid_argument("Quick-IK requires at least 1 speculation");
  if (execution_ == Execution::kThreadPool)
    pool_ = std::make_unique<par::ThreadPool>(threads);
  const auto max_spec = static_cast<std::size_t>(options_.speculations);
  batch_.reset(chain_, max_spec);
  alphas_.resize(max_spec);
}

SolveResult QuickIkSolver::solve(const linalg::Vec3& target,
                                 const linalg::VecX& seed) {
  validateInputs(chain_, target, seed);

  const int max_spec = options_.speculations;
  const auto lanes = static_cast<std::size_t>(max_spec);
  SolveResult result;
  result.theta = seed;
  if (options_.record_history)
    result.error_history.reserve(
        static_cast<std::size_t>(std::max(options_.max_iterations, 0)) + 1);

  if (options_.max_iterations <= 0) {
    // Zero budget: report the seed's error honestly.
    const JtIterationHead head =
        jtIterationHead(chain_, result.theta, target, ws_);
    ++result.fk_evaluations;
    result.error = head.error;
    result.status = head.error < options_.accuracy ? Status::kConverged
                                                   : Status::kMaxIterations;
    return result;
  }

  // One sweep closure per solve (not per iteration): every capture is
  // stable across iterations — result.theta is updated in place — so
  // the pool dispatch allocates nothing inside the iteration loop.
  std::function<void(std::size_t, std::size_t)> pooled_sweep;
  if (execution_ == Execution::kThreadPool)
    pooled_sweep = [this, &target, &result](std::size_t lo, std::size_t hi) {
      batch_.evaluateLanes(chain_, result.theta, ws_.dtheta_base,
                           alphas_.data(), target, options_.clamp_to_limits,
                           lo, hi);
    };

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const JtIterationHead head =
        jtIterationHead(chain_, result.theta, target, ws_);
    ++result.fk_evaluations;
    if (options_.record_history) result.error_history.push_back(head.error);
    result.error = head.error;

    if (head.error < options_.accuracy) {
      result.status = Status::kConverged;
      return result;
    }
    if (head.stalled) {
      result.status = Status::kStalled;
      return result;
    }
    // Watchdog: bail with the best-so-far iterate before paying for
    // another speculative sweep.
    if (options_.hasDeadline() && options_.deadlineExpired()) {
      result.status = Status::kTimedOut;
      return result;
    }

    // Speculative search (Algorithm 1, lines 6-15): all Max candidates
    // advance through one batched chain walk.  Serial execution is a
    // single kernel call; the thread pool splits the batch into
    // contiguous lane chunks, one per worker, each writing its own
    // disjoint slice of the shared SoA workspace.
    for (std::size_t idx = 0; idx < lanes; ++idx)
      alphas_[idx] = (static_cast<double>(idx + 1) / max_spec) *
                     head.alpha_base;  // Eq. 9
    if (execution_ == Execution::kThreadPool) {
      pool_->parallelForChunked(0, lanes, kLaneGrain, pooled_sweep);
    } else {
      batch_.evaluateLanes(chain_, result.theta, ws_.dtheta_base,
                           alphas_.data(), target, options_.clamp_to_limits,
                           0, lanes);
    }
    result.fk_evaluations += max_spec;
    result.speculation_load += max_spec;
    ++result.iterations;

    // Parameter selection (line 16): argmin error, smallest k on ties,
    // deterministic regardless of execution strategy.
    const std::vector<double>& error_k = batch_.errors();
    std::size_t best = 0;
    for (std::size_t idx = 1; idx < lanes; ++idx)
      if (error_k[idx] < error_k[best]) best = idx;

    // Monotone descent guard: adopt the winner only if it improves on
    // the pre-sweep error.  The alpha ladder is deterministic, so a
    // sweep that cannot improve now never will — keep the current
    // theta (result.error already holds head.error) and stop rather
    // than stepping to a worse configuration.  Projected descent
    // (clamp_to_limits) is exempt: the projection legitimately visits
    // worse errors while sliding along the joint-limit boundary, and
    // adoption moves theta so the next sweep is not a repeat.
    if (!options_.clamp_to_limits && !(error_k[best] < head.error)) {
      result.status = Status::kStalled;
      return result;
    }

    batch_.candidateInto(best, result.theta);
    result.error = error_k[best];

    if (error_k[best] < options_.accuracy) {  // line 12-13 early exit
      result.status = Status::kConverged;
      if (options_.record_history) result.error_history.push_back(result.error);
      return result;
    }
  }

  result.status = result.error < options_.accuracy ? Status::kConverged
                                                   : Status::kMaxIterations;
  // Budget exhausted after an adopting sweep: the adopted error was
  // never recorded (the loop head only logs pre-sweep errors).
  if (options_.record_history) result.error_history.push_back(result.error);
  return result;
}

}  // namespace dadu::ik
