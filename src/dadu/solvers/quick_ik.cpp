#include "dadu/solvers/quick_ik.hpp"

#include <cassert>
#include <stdexcept>

#include "dadu/kinematics/forward.hpp"

namespace dadu::ik {

QuickIkSolver::QuickIkSolver(kin::Chain chain, SolveOptions options,
                             Execution execution, std::size_t threads)
    : chain_(std::move(chain)), options_(options), execution_(execution) {
  if (options_.speculations < 1)
    throw std::invalid_argument("Quick-IK requires at least 1 speculation");
  if (execution_ == Execution::kThreadPool)
    pool_ = std::make_unique<par::ThreadPool>(threads);
  theta_k_.assign(options_.speculations, linalg::VecX(chain_.dof()));
  error_k_.assign(options_.speculations, 0.0);
}

SolveResult QuickIkSolver::solve(const linalg::Vec3& target,
                                 const linalg::VecX& seed) {
  validateInputs(chain_, target, seed);

  const int max_spec = options_.speculations;
  SolveResult result;
  result.theta = seed;

  if (options_.max_iterations <= 0) {
    // Zero budget: report the seed's error honestly.
    const JtIterationHead head =
        jtIterationHead(chain_, result.theta, target, ws_);
    ++result.fk_evaluations;
    result.error = head.error;
    result.status = head.error < options_.accuracy ? Status::kConverged
                                                   : Status::kMaxIterations;
    return result;
  }

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const JtIterationHead head =
        jtIterationHead(chain_, result.theta, target, ws_);
    ++result.fk_evaluations;
    if (options_.record_history) result.error_history.push_back(head.error);
    result.error = head.error;

    if (head.error < options_.accuracy) {
      result.status = Status::kConverged;
      return result;
    }
    if (head.stalled) {
      result.status = Status::kStalled;
      return result;
    }

    // Speculative search (Algorithm 1, lines 6-15).  Each k is fully
    // independent: own candidate vector, own FK pass.
    const auto speculate = [&](std::size_t idx) {
      const int k = static_cast<int>(idx) + 1;
      const double alpha_k =
          (static_cast<double>(k) / max_spec) * head.alpha_base;  // Eq. 9
      linalg::axpyInto(alpha_k, ws_.dtheta_base, result.theta, theta_k_[idx]);
      if (options_.clamp_to_limits)
        theta_k_[idx] = chain_.clampToLimits(theta_k_[idx]);
      const linalg::Vec3 x_k = kin::endEffectorPosition(chain_, theta_k_[idx]);
      error_k_[idx] = (target - x_k).norm();
    };

    if (execution_ == Execution::kThreadPool) {
      pool_->parallelFor(0, static_cast<std::size_t>(max_spec), speculate);
    } else {
      for (std::size_t idx = 0; idx < static_cast<std::size_t>(max_spec);
           ++idx)
        speculate(idx);
    }
    result.fk_evaluations += max_spec;
    result.speculation_load += max_spec;
    ++result.iterations;

    // Parameter selection (line 16): argmin error, smallest k on ties,
    // deterministic regardless of execution strategy.
    std::size_t best = 0;
    for (std::size_t idx = 1; idx < static_cast<std::size_t>(max_spec); ++idx)
      if (error_k_[idx] < error_k_[best]) best = idx;

    result.theta = theta_k_[best];
    result.error = error_k_[best];

    if (error_k_[best] < options_.accuracy) {  // line 12-13 early exit
      result.status = Status::kConverged;
      if (options_.record_history) result.error_history.push_back(result.error);
      return result;
    }
  }

  result.status = result.error < options_.accuracy ? Status::kConverged
                                                   : Status::kMaxIterations;
  return result;
}

}  // namespace dadu::ik
