#include "dadu/solvers/dls_weighted.hpp"

#include <cmath>
#include <stdexcept>

#include "dadu/linalg/cholesky.hpp"

namespace dadu::ik {

WeightedDlsSolver::WeightedDlsSolver(kin::Chain chain, SolveOptions options,
                                     linalg::VecX weights, double lambda,
                                     double max_task_step)
    : chain_(std::move(chain)),
      options_(options),
      inv_weights_(weights.size()),
      lambda_(lambda),
      max_task_step_(max_task_step) {
  if (weights.size() != chain_.dof())
    throw std::invalid_argument("WeightedDls: weight count != dof");
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (!(weights[i] > 0.0) || !std::isfinite(weights[i]))
      throw std::invalid_argument("WeightedDls: weights must be positive");
    inv_weights_[i] = 1.0 / weights[i];
  }
}

SolveResult WeightedDlsSolver::solve(const linalg::Vec3& target,
                                     const linalg::VecX& seed) {
  validateInputs(chain_, target, seed);

  SolveResult result;
  result.theta = seed;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const JtIterationHead head =
        jtIterationHead(chain_, result.theta, target, ws_);
    ++result.fk_evaluations;
    if (options_.record_history) result.error_history.push_back(head.error);
    result.error = head.error;

    if (head.error < options_.accuracy) {
      result.status = Status::kConverged;
      return result;
    }

    linalg::Vec3 step = head.error_vec;
    if (max_task_step_ > 0.0 && head.error > max_task_step_)
      step *= max_task_step_ / head.error;

    // A = J W^-1 J^T + lambda^2 I  (3x3): accumulate column-wise.
    linalg::Mat3 g = linalg::Mat3::zero();
    for (std::size_t c = 0; c < chain_.dof(); ++c) {
      const linalg::Vec3 col = ws_.j.col3(c);
      g += linalg::Mat3::outer(col, col) * inv_weights_[c];
    }
    linalg::MatX a(3, 3);
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 3; ++c) a(r, c) = g(r, c);
    for (std::size_t d = 0; d < 3; ++d) a(d, d) += lambda_ * lambda_;

    const auto y = linalg::choleskySolve(a, {step.x, step.y, step.z});
    if (!y) {
      result.status = Status::kStalled;
      return result;
    }
    // dtheta = W^-1 J^T y.
    linalg::VecX dtheta;
    linalg::mulTransposed3(ws_.j, {(*y)[0], (*y)[1], (*y)[2]}, dtheta);
    for (std::size_t i = 0; i < dtheta.size(); ++i)
      dtheta[i] *= inv_weights_[i];

    result.theta += dtheta;
    if (options_.clamp_to_limits)
      result.theta = chain_.clampToLimits(result.theta);
    ++result.iterations;
    ++result.speculation_load;
  }

  const JtIterationHead head =
      jtIterationHead(chain_, result.theta, target, ws_);
  ++result.fk_evaluations;
  result.error = head.error;
  result.status = head.error < options_.accuracy ? Status::kConverged
                                                 : Status::kMaxIterations;
  return result;
}

}  // namespace dadu::ik
