// Jacobian transpose with a fixed scalar step size.
//
// Ablation baseline: the paper motivates Eq. 8 (and then Quick-IK's
// speculative search) by the sensitivity of the transpose method to
// alpha — "for a sufficiently small alpha > 0 the error decreases",
// but tiny alpha crawls.  This solver makes that trade-off measurable.
#pragma once

#include "dadu/solvers/ik_solver.hpp"
#include "dadu/solvers/jt_common.hpp"

namespace dadu::ik {

class JtFixedAlphaSolver final : public IkSolver {
 public:
  JtFixedAlphaSolver(kin::Chain chain, SolveOptions options, double alpha)
      : chain_(std::move(chain)), options_(options), alpha_(alpha) {}

  SolveResult solve(const linalg::Vec3& target,
                    const linalg::VecX& seed) override;
  std::string name() const override { return "jt-fixed-alpha"; }
  const kin::Chain& chain() const override { return chain_; }
  const SolveOptions& options() const override { return options_; }
  void setDeadline(std::chrono::steady_clock::time_point d) override {
    options_.deadline = d;
  }
  double alpha() const { return alpha_; }

 private:
  kin::Chain chain_;
  SolveOptions options_;
  double alpha_;
  JtWorkspace ws_;
};

}  // namespace dadu::ik
