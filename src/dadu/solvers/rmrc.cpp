#include "dadu/solvers/rmrc.hpp"

#include <cmath>

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/jacobian.hpp"
#include "dadu/linalg/cholesky.hpp"

namespace dadu::ik {

RmrcResult trackRmrc(const kin::Chain& chain,
                     const std::vector<linalg::Vec3>& path,
                     const linalg::VecX& q0, const RmrcOptions& options) {
  RmrcResult result;
  if (path.empty()) return result;
  chain.requireSize(q0);

  linalg::VecX q = q0;
  linalg::MatX j;
  std::vector<linalg::Mat4> frames;
  linalg::Vec3 ee;

  result.joint_path.reserve(path.size());
  result.tracking_error.reserve(path.size());
  double sq_sum = 0.0;

  for (std::size_t k = 0; k < path.size(); ++k) {
    kin::positionJacobian(chain, q, j, frames, ee);

    // Desired task velocity: feedforward along the path + drift
    // correction towards the current waypoint.
    linalg::Vec3 v = (path[k] - ee) * options.feedback_gain;
    if (k + 1 < path.size())
      v += (path[k + 1] - path[k]) / options.dt;

    // theta_dot = J^T (J J^T + lambda^2 I)^-1 v (damped RMRC).
    const linalg::Mat3 g = linalg::gram3(j);
    linalg::MatX a(3, 3);
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 3; ++c) a(r, c) = g(r, c);
    for (std::size_t d = 0; d < 3; ++d)
      a(d, d) += options.lambda * options.lambda;
    const auto y = linalg::choleskySolve(a, {v.x, v.y, v.z});
    if (y) {
      linalg::VecX qdot;
      linalg::mulTransposed3(j, {(*y)[0], (*y)[1], (*y)[2]}, qdot);
      linalg::axpy(options.dt, qdot, q);
    }
    // On a Cholesky failure (NaN poisoning) we freeze; the error trace
    // records the consequence rather than crashing the controller.

    const double err = (path[k] - kin::endEffectorPosition(chain, q)).norm();
    result.joint_path.push_back(q);
    result.tracking_error.push_back(err);
    result.max_error = std::max(result.max_error, err);
    sq_sum += err * err;
  }

  result.rms_error =
      std::sqrt(sq_sum / static_cast<double>(path.size()));
  return result;
}

}  // namespace dadu::ik
