#include "dadu/solvers/restart.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace dadu::ik {
namespace {

// Local SplitMix64: restart configurations must be reproducible and
// independent of the workload library.
struct SplitMix64 {
  std::uint64_t state;
  double angle() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
    return (2.0 * u - 1.0) * std::numbers::pi;
  }
};

}  // namespace

RestartSolver::RestartSolver(std::unique_ptr<IkSolver> inner, int max_restarts,
                             std::uint64_t restart_seed)
    : inner_(std::move(inner)),
      max_restarts_(max_restarts),
      restart_seed_(restart_seed) {
  if (!inner_) throw std::invalid_argument("RestartSolver: null inner solver");
  if (max_restarts_ < 0)
    throw std::invalid_argument("RestartSolver: negative restart count");
}

SolveResult RestartSolver::solve(const linalg::Vec3& target,
                                 const linalg::VecX& seed) {
  SolveResult best = inner_->solve(target, seed);
  last_attempts_ = 1;
  long long total_iterations = best.iterations;
  long long total_fk = best.fk_evaluations;
  long long total_load = best.speculation_load;
  if (best.converged()) return best;

  SplitMix64 rng{restart_seed_ ^
                 (static_cast<std::uint64_t>(
                      std::llround(target.x * 1e6 + target.y * 1e3)) *
                  0x2545f4914f6cdd1dULL)};
  const kin::Chain& robot = inner_->chain();

  for (int attempt = 0; attempt < max_restarts_; ++attempt) {
    linalg::VecX restart(robot.dof());
    for (std::size_t i = 0; i < restart.size(); ++i)
      restart[i] = robot.joint(i).clamp(rng.angle());

    SolveResult r = inner_->solve(target, restart);
    ++last_attempts_;
    total_iterations += r.iterations;
    total_fk += r.fk_evaluations;
    total_load += r.speculation_load;
    if (r.error < best.error || r.converged()) best = std::move(r);
    if (best.converged()) break;
  }

  best.iterations = static_cast<int>(total_iterations);
  best.fk_evaluations = total_fk;
  best.speculation_load = total_load;
  return best;
}

}  // namespace dadu::ik
