// Deterministic pseudo-random number generation for workloads.
//
// Every experiment in the paper runs "1K target positions" per DOF
// configuration; for the reproduction to be comparable across solvers
// and across runs, target sets must be a pure function of (dof, index).
// SplitMix64 is tiny, splittable by construction (seed arithmetic), and
// passes BigCrush — more than enough for workload sampling.
#pragma once

#include <cstdint>
#include <numbers>

namespace dadu::workload {

/// SplitMix64 PRNG (Steele et al., "Fast splittable pseudorandom number
/// generators").
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Derive an independent stream, e.g. one per (dof, target index).
  static Rng forStream(std::uint64_t seed, std::uint64_t stream) {
    return Rng(seed ^ (stream * 0x9e3779b97f4a7c15ULL + 0xbf58476d1ce4e5b9ULL));
  }

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }
  /// Uniform angle in [-pi, pi).
  double angle() { return uniform(-std::numbers::pi, std::numbers::pi); }
  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return next() % n; }

 private:
  std::uint64_t state_;
};

}  // namespace dadu::workload
