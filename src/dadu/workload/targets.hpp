// Target-position workload generation.
//
// The paper's evaluation solves batches of random target positions per
// DOF configuration.  To guarantee each target is actually attainable
// (the paper reports convergence for all methods), targets are sampled
// by drawing a random joint configuration and running forward
// kinematics — the classic "reachable by construction" scheme.  Seeds
// are fixed per (chain dof, index) so that every solver in a comparison
// sees the identical workload.
#pragma once

#include <cstdint>
#include <vector>

#include "dadu/kinematics/chain.hpp"
#include "dadu/linalg/vec.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::workload {

/// One IK task: target position plus the start configuration the solver
/// is seeded with.  The generating configuration is retained so tests
/// can verify the target is attainable exactly.
struct IkTask {
  linalg::Vec3 target;
  linalg::VecX seed;        ///< solver start configuration
  linalg::VecX generator;   ///< configuration whose FK equals target
};

/// Options for target sampling.
struct TargetGenOptions {
  std::uint64_t seed = 2017;  ///< base seed (DAC'17 vintage)
  /// Start configuration: uniform per joint in +- this (rad).  The
  /// paper initialises theta randomly (Algorithm 1 line 1), so the
  /// default spans the full circle; narrow it for warm-start studies.
  double seed_joint_range = 3.141592653589793;
  /// Re-draw targets closer to the base than this fraction of max reach
  /// (near-base targets put the chain close to fold-over singularities
  /// that are about chain geometry, not solver quality).
  double min_radius_fraction = 0.15;
  int max_redraws = 64;
};

/// Generate `count` reachable tasks for `chain`.
std::vector<IkTask> generateTasks(const kin::Chain& chain, int count,
                                  const TargetGenOptions& opts = {});

/// Single task for (chain, index); generateTasks(c, n)[i] ==
/// generateTask(c, i) — benches that shard work rely on this.
IkTask generateTask(const kin::Chain& chain, int index,
                    const TargetGenOptions& opts = {});

/// Clustered workload for warm-start studies: `count` tasks whose
/// targets bunch around `clusters` centers (task i orbits center
/// i % clusters).  Each target is the FK of the center's generating
/// configuration perturbed by at most `joint_spread` rad per joint, so
/// every task stays reachable by construction while its target lands
/// within a small workspace neighbourhood of the center — the traffic
/// shape a seed cache exists for.  Seeds are random full-range, same
/// as generateTasks.  Deterministic in (chain dof, index, opts.seed).
std::vector<IkTask> generateClusteredTasks(const kin::Chain& chain, int count,
                                           int clusters,
                                           double joint_spread = 0.05,
                                           const TargetGenOptions& opts = {});

/// One task of a multi-robot workload: which registered spec it is for
/// plus the task itself (generated against that spec's chain).
struct SpecTask {
  std::uint32_t spec_id = 0;
  IkTask task;
};

/// Interleaved multi-robot workload: `count` tasks spread over
/// `chains` (chains[s] is the chain registered under spec id s) by a
/// deterministic mix drawn from `mix_seed`.  The subsequence for spec
/// s is exactly generateTask(chains[s], 0..k) in order — so a
/// multi-spec run and a per-spec single-robot run solve the identical
/// per-spec workload, which is what makes the routing-equivalence
/// benches and tests apples-to-apples.
std::vector<SpecTask> generateSpecMixTasks(
    const std::vector<kin::Chain>& chains, int count,
    std::uint64_t mix_seed = 2017, const TargetGenOptions& opts = {});

}  // namespace dadu::workload
