#include "dadu/workload/trajectory.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "dadu/kinematics/workspace.hpp"
#include "dadu/linalg/quaternion.hpp"

namespace dadu::workload {

std::vector<linalg::Vec3> lineTrajectory(const linalg::Vec3& a,
                                         const linalg::Vec3& b, int points) {
  std::vector<linalg::Vec3> path;
  path.reserve(std::max(points, 1));
  if (points <= 1) {
    path.push_back(a);
    return path;
  }
  for (int i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / (points - 1);
    path.push_back(a + (b - a) * t);
  }
  return path;
}

std::vector<linalg::Vec3> circleTrajectory(const linalg::Vec3& center,
                                           double radius,
                                           const linalg::Vec3& u,
                                           const linalg::Vec3& v, int points) {
  // Gram-Schmidt orthonormalisation of the plane basis.
  const linalg::Vec3 e1 = u.normalized();
  linalg::Vec3 w = v - e1 * v.dot(e1);
  const linalg::Vec3 e2 = w.normalized();

  std::vector<linalg::Vec3> path;
  path.reserve(std::max(points, 1));
  for (int i = 0; i < points; ++i) {
    const double t =
        2.0 * std::numbers::pi * static_cast<double>(i) / std::max(points, 1);
    path.push_back(center + e1 * (radius * std::cos(t)) +
                   e2 * (radius * std::sin(t)));
  }
  return path;
}

std::vector<linalg::Vec3> lissajousTrajectory(const linalg::Vec3& center,
                                              double amplitude, int a, int b,
                                              int c, double phase,
                                              int points) {
  std::vector<linalg::Vec3> path;
  path.reserve(std::max(points, 1));
  for (int i = 0; i < points; ++i) {
    const double t =
        2.0 * std::numbers::pi * static_cast<double>(i) / std::max(points, 1);
    path.push_back(center + linalg::Vec3{std::sin(a * t),
                                         std::sin(b * t + phase),
                                         std::sin(c * t)} *
                                amplitude);
  }
  return path;
}

std::vector<linalg::Vec3> fitToWorkspace(const kin::Chain& chain,
                                         std::vector<linalg::Vec3> path,
                                         double margin_fraction) {
  if (path.empty()) return path;
  const kin::ReachBall ball = kin::reachBall(chain);
  const double allowed = ball.radius * (1.0 - margin_fraction);

  double worst = 0.0;
  for (const auto& p : path)
    worst = std::max(worst, (p - ball.center).norm());
  if (worst <= allowed || worst == 0.0) return path;

  const double scale = allowed / worst;
  for (auto& p : path) p = ball.center + (p - ball.center) * scale;
  return path;
}

}  // namespace dadu::workload

namespace dadu::workload {

std::vector<kin::Pose> poseTrajectory(const kin::Pose& start,
                                      const kin::Pose& end, int points) {
  std::vector<kin::Pose> path;
  path.reserve(std::max(points, 1));
  if (points <= 1) {
    path.push_back(start);
    return path;
  }
  const linalg::Quaternion qa = linalg::Quaternion::fromMatrix(start.orientation);
  const linalg::Quaternion qb = linalg::Quaternion::fromMatrix(end.orientation);
  for (int i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / (points - 1);
    kin::Pose p;
    p.position = start.position + (end.position - start.position) * t;
    p.orientation = linalg::slerp(qa, qb, t).toMatrix();
    path.push_back(p);
  }
  return path;
}

}  // namespace dadu::workload
