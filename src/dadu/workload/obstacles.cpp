#include "dadu/workload/obstacles.hpp"

#include <cmath>

#include "dadu/kinematics/workspace.hpp"
#include "dadu/workload/rng.hpp"

namespace dadu::workload {

geom::Obstacles generateObstacleField(
    const kin::Chain& chain, const std::vector<linalg::Vec3>& protected_points,
    const ObstacleFieldOptions& options) {
  Rng rng(options.seed ^ 0x0b57ac1e5ULL);
  const kin::ReachBall ball = kin::reachBall(chain);
  const double reach = ball.radius;

  geom::Obstacles field;
  field.reserve(options.count);
  for (int i = 0; i < options.count; ++i) {
    bool placed = false;
    for (int attempt = 0; attempt < options.max_redraws_per_obstacle;
         ++attempt) {
      geom::Sphere candidate;
      candidate.radius =
          reach * rng.uniform(options.min_radius, options.max_radius);
      // Uniform direction via rejection from the cube, radius in
      // [0.2, 0.9] of reach so obstacles sit in the useful workspace.
      linalg::Vec3 dir;
      do {
        dir = {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
      } while (dir.squaredNorm() > 1.0 || dir.squaredNorm() < 1e-6);
      candidate.center =
          ball.center + dir.normalized() * (reach * rng.uniform(0.2, 0.9));

      bool clear = true;
      for (const linalg::Vec3& p : protected_points) {
        if ((p - candidate.center).norm() <
            candidate.radius + options.keepout) {
          clear = false;
          break;
        }
      }
      if (clear) {
        field.push_back(candidate);
        placed = true;
        break;
      }
    }
    if (!placed) break;  // budget exhausted: return what we have
  }
  return field;
}

}  // namespace dadu::workload
