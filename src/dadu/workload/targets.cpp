#include "dadu/workload/targets.hpp"

#include <cmath>
#include <numbers>

#include "dadu/kinematics/forward.hpp"
#include "dadu/workload/rng.hpp"

namespace dadu::workload {
namespace {

linalg::VecX randomConfiguration(const kin::Chain& chain, Rng& rng) {
  linalg::VecX q(chain.dof());
  for (std::size_t i = 0; i < chain.dof(); ++i) {
    const kin::Joint& j = chain.joint(i);
    const double lo = std::isfinite(j.min) ? j.min : -std::numbers::pi;
    const double hi = std::isfinite(j.max) ? j.max : std::numbers::pi;
    q[i] = rng.uniform(lo, hi);
  }
  return q;
}

}  // namespace

IkTask generateTask(const kin::Chain& chain, int index,
                    const TargetGenOptions& opts) {
  Rng rng = Rng::forStream(opts.seed,
                           chain.dof() * 0x10001ULL + static_cast<std::uint64_t>(index));
  const double min_radius = opts.min_radius_fraction * chain.maxReach();

  IkTask task;
  for (int attempt = 0; attempt <= opts.max_redraws; ++attempt) {
    task.generator = randomConfiguration(chain, rng);
    task.target = kin::endEffectorPosition(chain, task.generator);
    const double r = (task.target - chain.base().position()).norm();
    if (r >= min_radius) break;
    // else: fold-over draw; redraw (keep last if budget exhausted)
  }

  task.seed = linalg::VecX(chain.dof());
  for (std::size_t i = 0; i < chain.dof(); ++i)
    task.seed[i] = rng.uniform(-opts.seed_joint_range, opts.seed_joint_range);
  return task;
}

std::vector<IkTask> generateTasks(const kin::Chain& chain, int count,
                                  const TargetGenOptions& opts) {
  std::vector<IkTask> tasks;
  tasks.reserve(count);
  for (int i = 0; i < count; ++i) tasks.push_back(generateTask(chain, i, opts));
  return tasks;
}

}  // namespace dadu::workload
