#include "dadu/workload/targets.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "dadu/kinematics/forward.hpp"
#include "dadu/workload/rng.hpp"

namespace dadu::workload {
namespace {

linalg::VecX randomConfiguration(const kin::Chain& chain, Rng& rng) {
  linalg::VecX q(chain.dof());
  for (std::size_t i = 0; i < chain.dof(); ++i) {
    const kin::Joint& j = chain.joint(i);
    const double lo = std::isfinite(j.min) ? j.min : -std::numbers::pi;
    const double hi = std::isfinite(j.max) ? j.max : std::numbers::pi;
    q[i] = rng.uniform(lo, hi);
  }
  return q;
}

}  // namespace

IkTask generateTask(const kin::Chain& chain, int index,
                    const TargetGenOptions& opts) {
  Rng rng = Rng::forStream(opts.seed,
                           chain.dof() * 0x10001ULL + static_cast<std::uint64_t>(index));
  const double min_radius = opts.min_radius_fraction * chain.maxReach();

  IkTask task;
  for (int attempt = 0; attempt <= opts.max_redraws; ++attempt) {
    task.generator = randomConfiguration(chain, rng);
    task.target = kin::endEffectorPosition(chain, task.generator);
    const double r = (task.target - chain.base().position()).norm();
    if (r >= min_radius) break;
    // else: fold-over draw; redraw (keep last if budget exhausted)
  }

  task.seed = linalg::VecX(chain.dof());
  for (std::size_t i = 0; i < chain.dof(); ++i)
    task.seed[i] = rng.uniform(-opts.seed_joint_range, opts.seed_joint_range);
  return task;
}

std::vector<IkTask> generateTasks(const kin::Chain& chain, int count,
                                  const TargetGenOptions& opts) {
  std::vector<IkTask> tasks;
  tasks.reserve(count);
  for (int i = 0; i < count; ++i) tasks.push_back(generateTask(chain, i, opts));
  return tasks;
}

std::vector<IkTask> generateClusteredTasks(const kin::Chain& chain, int count,
                                           int clusters, double joint_spread,
                                           const TargetGenOptions& opts) {
  clusters = std::max(clusters, 1);
  std::vector<IkTask> centers;
  centers.reserve(clusters);
  for (int c = 0; c < clusters; ++c)
    centers.push_back(generateTask(chain, c, opts));

  std::vector<IkTask> tasks;
  tasks.reserve(count);
  for (int i = 0; i < count; ++i) {
    const IkTask& center = centers[static_cast<std::size_t>(i % clusters)];
    // Separate stream offset so clustered tasks never replay the
    // center/task streams (0x20001 vs generateTask's 0x10001).
    Rng rng = Rng::forStream(
        opts.seed,
        chain.dof() * 0x20001ULL + static_cast<std::uint64_t>(i));

    IkTask task;
    task.generator = center.generator;
    for (std::size_t j = 0; j < chain.dof(); ++j) {
      task.generator[j] += rng.uniform(-joint_spread, joint_spread);
      const kin::Joint& joint = chain.joint(j);
      if (std::isfinite(joint.min))
        task.generator[j] = std::max(task.generator[j], joint.min);
      if (std::isfinite(joint.max))
        task.generator[j] = std::min(task.generator[j], joint.max);
    }
    task.target = kin::endEffectorPosition(chain, task.generator);
    task.seed = linalg::VecX(chain.dof());
    for (std::size_t j = 0; j < chain.dof(); ++j)
      task.seed[j] = rng.uniform(-opts.seed_joint_range, opts.seed_joint_range);
    tasks.push_back(std::move(task));
  }
  return tasks;
}

std::vector<SpecTask> generateSpecMixTasks(const std::vector<kin::Chain>& chains,
                                           int count, std::uint64_t mix_seed,
                                           const TargetGenOptions& opts) {
  std::vector<SpecTask> tasks;
  if (chains.empty() || count <= 0) return tasks;
  // The mix stream only picks WHICH spec each slot belongs to; the
  // tasks themselves come from each chain's own generateTask stream,
  // indexed densely per spec, so the per-spec subsequence is invariant
  // under the mix (see header contract).
  Rng mix = Rng::forStream(mix_seed, 0x5becull);
  std::vector<int> next_index(chains.size(), 0);
  tasks.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto s = static_cast<std::size_t>(mix.below(chains.size()));
    SpecTask st;
    st.spec_id = static_cast<std::uint32_t>(s);
    st.task = generateTask(chains[s], next_index[s]++, opts);
    tasks.push_back(std::move(st));
  }
  return tasks;
}

}  // namespace dadu::workload
