// Task-space trajectory generators for the tracking examples and the
// warm-start evaluation: sequences of nearby targets, as produced by a
// robot controller commanding the end-effector along a path.
#pragma once

#include <vector>

#include "dadu/kinematics/chain.hpp"
#include "dadu/kinematics/jacobian_full.hpp"
#include "dadu/linalg/vec.hpp"

namespace dadu::workload {

/// Straight line from a to b, inclusive endpoints.
std::vector<linalg::Vec3> lineTrajectory(const linalg::Vec3& a,
                                         const linalg::Vec3& b, int points);

/// Circle of `radius` around `center` in the plane spanned by `u`, `v`
/// (orthonormalised internally).
std::vector<linalg::Vec3> circleTrajectory(const linalg::Vec3& center,
                                           double radius,
                                           const linalg::Vec3& u,
                                           const linalg::Vec3& v, int points);

/// 3-D Lissajous figure: center + A*(sin(a t), sin(b t + phase), sin(c t)).
std::vector<linalg::Vec3> lissajousTrajectory(const linalg::Vec3& center,
                                              double amplitude, int a, int b,
                                              int c, double phase, int points);

/// Scale/translate a trajectory so every point lies inside the chain's
/// reach ball with the given margin fraction; keeps the path shape.
std::vector<linalg::Vec3> fitToWorkspace(const kin::Chain& chain,
                                         std::vector<linalg::Vec3> path,
                                         double margin_fraction = 0.2);

/// Pose trajectory: linear position interpolation + quaternion slerp
/// between two poses, inclusive endpoints — the waypoint stream a
/// Cartesian controller feeds the pose-IK solvers.
std::vector<kin::Pose> poseTrajectory(const kin::Pose& start,
                                      const kin::Pose& end, int points);

}  // namespace dadu::workload
