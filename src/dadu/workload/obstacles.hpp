// Random obstacle-field generation for collision-aware IK and motion
// planning workloads: fields that are dense enough to matter but
// guaranteed to keep given key points (start pose, target) free.
#pragma once

#include <cstdint>

#include "dadu/geometry/robot_geometry.hpp"
#include "dadu/kinematics/chain.hpp"
#include "dadu/linalg/vec.hpp"

namespace dadu::workload {

struct ObstacleFieldOptions {
  int count = 6;
  double min_radius = 0.05;  ///< fraction of chain reach
  double max_radius = 0.12;  ///< fraction of chain reach
  /// Obstacles keep at least this clearance (absolute metres) from
  /// every protected point.
  double keepout = 0.05;
  std::uint64_t seed = 1;
  int max_redraws_per_obstacle = 64;
};

/// Sample spherical obstacles inside the chain's reach ball, rejecting
/// spheres that violate the keepout around any protected point.  May
/// return fewer than `count` obstacles if the redraw budget runs out
/// (dense keepouts).
geom::Obstacles generateObstacleField(
    const kin::Chain& chain, const std::vector<linalg::Vec3>& protected_points,
    const ObstacleFieldOptions& options = {});

}  // namespace dadu::workload
