#include "dadu/geometry/robot_geometry.hpp"

#include <limits>

#include "dadu/kinematics/forward.hpp"

namespace dadu::geom {

RobotGeometry::RobotGeometry(kin::Chain chain, double link_radius)
    : chain_(std::move(chain)), link_radius_(link_radius) {}

std::vector<Capsule> RobotGeometry::linkCapsules(const linalg::VecX& q) const {
  const auto frames = kin::linkFrames(chain_, q);
  std::vector<Capsule> capsules;
  capsules.reserve(frames.size());
  linalg::Vec3 prev = chain_.base().position();
  for (const auto& frame : frames) {
    capsules.push_back({prev, frame.position(), link_radius_});
    prev = frame.position();
  }
  return capsules;
}

double RobotGeometry::selfClearance(const linalg::VecX& q) const {
  const auto capsules = linkCapsules(q);
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i + 2 < capsules.size(); ++i) {
    // Skip the immediate neighbour (shares a joint).
    for (std::size_t j = i + 2; j < capsules.size(); ++j) {
      best = std::min(best, capsuleCapsuleClearance(capsules[i], capsules[j]));
    }
  }
  return best;
}

double RobotGeometry::environmentClearance(const linalg::VecX& q,
                                           const Obstacles& obstacles) const {
  const auto capsules = linkCapsules(q);
  double best = std::numeric_limits<double>::infinity();
  for (const Capsule& link : capsules)
    for (const Sphere& obstacle : obstacles)
      best = std::min(best, capsuleSphereClearance(link, obstacle));
  return best;
}

bool RobotGeometry::collisionFree(const linalg::VecX& q,
                                  const Obstacles& obstacles,
                                  double margin) const {
  if (!obstacles.empty() && environmentClearance(q, obstacles) < margin)
    return false;
  return selfClearance(q) >= margin;
}

}  // namespace dadu::geom
