#include "dadu/geometry/distance.hpp"

#include <algorithm>
#include <cmath>

namespace dadu::geom {

linalg::Vec3 closestPointOnSegment(const linalg::Vec3& a,
                                   const linalg::Vec3& b,
                                   const linalg::Vec3& p) {
  const linalg::Vec3 ab = b - a;
  const double len_sq = ab.squaredNorm();
  if (len_sq <= 0.0) return a;  // degenerate segment
  const double t = std::clamp((p - a).dot(ab) / len_sq, 0.0, 1.0);
  return a + ab * t;
}

double pointSegmentDistance(const linalg::Vec3& p, const linalg::Vec3& a,
                            const linalg::Vec3& b) {
  return (p - closestPointOnSegment(a, b, p)).norm();
}

double segmentSegmentDistance(const linalg::Vec3& p1, const linalg::Vec3& q1,
                              const linalg::Vec3& p2, const linalg::Vec3& q2) {
  // Ericson, "Real-Time Collision Detection", 5.1.9 — closest points of
  // two segments, with all degenerate cases clamped.
  const linalg::Vec3 d1 = q1 - p1;
  const linalg::Vec3 d2 = q2 - p2;
  const linalg::Vec3 r = p1 - p2;
  const double a = d1.squaredNorm();
  const double e = d2.squaredNorm();
  const double f = d2.dot(r);

  double s = 0.0, t = 0.0;
  constexpr double kEps = 1e-30;

  if (a <= kEps && e <= kEps) {
    // Both segments are points.
    return (p1 - p2).norm();
  }
  if (a <= kEps) {
    t = std::clamp(f / e, 0.0, 1.0);
  } else {
    const double c = d1.dot(r);
    if (e <= kEps) {
      s = std::clamp(-c / a, 0.0, 1.0);
    } else {
      const double b = d1.dot(d2);
      const double denom = a * e - b * b;
      if (denom > kEps) {
        s = std::clamp((b * f - c * e) / denom, 0.0, 1.0);
      }
      t = (b * s + f) / e;
      if (t < 0.0) {
        t = 0.0;
        s = std::clamp(-c / a, 0.0, 1.0);
      } else if (t > 1.0) {
        t = 1.0;
        s = std::clamp((b - c) / a, 0.0, 1.0);
      }
    }
  }

  const linalg::Vec3 c1 = p1 + d1 * s;
  const linalg::Vec3 c2 = p2 + d2 * t;
  return (c1 - c2).norm();
}

double capsuleCapsuleClearance(const Capsule& a, const Capsule& b) {
  return segmentSegmentDistance(a.a, a.b, b.a, b.b) - a.radius - b.radius;
}

double capsuleSphereClearance(const Capsule& c, const Sphere& s) {
  return pointSegmentDistance(s.center, c.a, c.b) - c.radius - s.radius;
}

}  // namespace dadu::geom
