// Collision-aware IK: wraps any solver with a collision filter and
// deterministic restarts until a collision-free solution is found.
//
// Redundant manipulators have continuum solution sets for one target;
// restarting the inner solver from different random configurations
// samples distinct basins and usually finds a free solution within a
// few attempts.  (Gradient-based obstacle avoidance in the null space
// is the complementary technique — see NullSpaceDlsSolver — this
// wrapper is the robust, solver-agnostic fallback.)
#pragma once

#include <cstdint>
#include <memory>

#include "dadu/geometry/robot_geometry.hpp"
#include "dadu/solvers/ik_solver.hpp"

namespace dadu::geom {

struct CollisionAwareResult {
  ik::SolveResult solve;       ///< best attempt's solver result
  bool collision_free = false; ///< the returned theta passed the filter
  int attempts = 0;
  double clearance = 0.0;      ///< min clearance of the returned theta

  bool success() const { return solve.converged() && collision_free; }
};

class CollisionAwareSolver {
 public:
  /// Takes ownership of `inner`; `margin` is the required clearance.
  /// `check_self` additionally enforces self-clearance — appropriate
  /// for sparse arms; hyper-redundant snakes with coarse capsule
  /// models usually disable it (their proxy capsules overlap in almost
  /// every useful pose) and rely on a finer body model instead.
  CollisionAwareSolver(std::unique_ptr<ik::IkSolver> inner,
                       RobotGeometry geometry, Obstacles obstacles,
                       double margin = 0.0, int max_attempts = 8,
                       std::uint64_t restart_seed = 1, bool check_self = true);

  CollisionAwareResult solve(const linalg::Vec3& target,
                             const linalg::VecX& seed);

  const RobotGeometry& geometry() const { return geometry_; }
  const Obstacles& obstacles() const { return obstacles_; }

 private:
  std::unique_ptr<ik::IkSolver> inner_;
  RobotGeometry geometry_;
  Obstacles obstacles_;
  double margin_;
  int max_attempts_;
  std::uint64_t restart_seed_;
  bool check_self_;
};

}  // namespace dadu::geom
