#include "dadu/geometry/collision_aware_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace dadu::geom {
namespace {

struct SplitMix64 {
  std::uint64_t state;
  double angle() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
    return (2.0 * u - 1.0) * std::numbers::pi;
  }
};

}  // namespace

CollisionAwareSolver::CollisionAwareSolver(std::unique_ptr<ik::IkSolver> inner,
                                           RobotGeometry geometry,
                                           Obstacles obstacles, double margin,
                                           int max_attempts,
                                           std::uint64_t restart_seed,
                                           bool check_self)
    : inner_(std::move(inner)),
      geometry_(std::move(geometry)),
      obstacles_(std::move(obstacles)),
      margin_(margin),
      max_attempts_(max_attempts),
      restart_seed_(restart_seed),
      check_self_(check_self) {
  if (!inner_)
    throw std::invalid_argument("CollisionAwareSolver: null inner solver");
  if (max_attempts_ < 1)
    throw std::invalid_argument("CollisionAwareSolver: needs >= 1 attempt");
  if (inner_->chain().dof() != geometry_.chain().dof())
    throw std::invalid_argument(
        "CollisionAwareSolver: solver and geometry model different robots");
}

CollisionAwareResult CollisionAwareSolver::solve(const linalg::Vec3& target,
                                                 const linalg::VecX& seed) {
  const kin::Chain& robot = inner_->chain();
  SplitMix64 rng{restart_seed_};

  CollisionAwareResult best;
  best.clearance = -std::numeric_limits<double>::infinity();
  int attempts_made = 0;

  linalg::VecX attempt_seed = seed;
  for (int attempt = 0; attempt < max_attempts_; ++attempt) {
    ik::SolveResult r = inner_->solve(target, attempt_seed);
    ++attempts_made;
    CollisionAwareResult candidate;
    candidate.clearance = std::min(
        check_self_ ? geometry_.selfClearance(r.theta)
                    : std::numeric_limits<double>::infinity(),
        obstacles_.empty()
            ? std::numeric_limits<double>::infinity()
            : geometry_.environmentClearance(r.theta, obstacles_));
    candidate.collision_free = candidate.clearance >= margin_;
    candidate.solve = std::move(r);

    const bool better =
        (candidate.success() && !best.success()) ||
        (candidate.success() == best.success() &&
         candidate.clearance > best.clearance);
    if (attempt == 0 || better) best = std::move(candidate);
    if (best.success()) break;

    // Fresh random restart configuration for the next attempt.
    attempt_seed = linalg::VecX(robot.dof());
    for (std::size_t i = 0; i < attempt_seed.size(); ++i)
      attempt_seed[i] = robot.joint(i).clamp(rng.angle());
  }
  best.attempts = attempts_made;
  return best;
}

}  // namespace dadu::geom
