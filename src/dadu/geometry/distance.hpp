// Exact distance queries between the primitives.
#pragma once

#include "dadu/geometry/primitives.hpp"

namespace dadu::geom {

/// Closest point on segment [a, b] to point p.
linalg::Vec3 closestPointOnSegment(const linalg::Vec3& a,
                                   const linalg::Vec3& b,
                                   const linalg::Vec3& p);

/// Distance from point p to segment [a, b].
double pointSegmentDistance(const linalg::Vec3& p, const linalg::Vec3& a,
                            const linalg::Vec3& b);

/// Minimum distance between segments [p1, q1] and [p2, q2] (robust for
/// degenerate/parallel segments).
double segmentSegmentDistance(const linalg::Vec3& p1, const linalg::Vec3& q1,
                              const linalg::Vec3& p2, const linalg::Vec3& q2);

/// Signed clearance between two capsules: surface distance, negative
/// when penetrating.
double capsuleCapsuleClearance(const Capsule& a, const Capsule& b);

/// Signed clearance between a capsule and a sphere.
double capsuleSphereClearance(const Capsule& c, const Sphere& s);

}  // namespace dadu::geom
