// Robot body geometry: link capsules derived from the kinematic chain,
// plus self-collision and environment-collision queries — the safety
// layer a deployed IK solver must consult before commanding a solution.
#pragma once

#include <vector>

#include "dadu/geometry/distance.hpp"
#include "dadu/kinematics/chain.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::geom {

/// The environment: spherical obstacles (the standard proxy set).
using Obstacles = std::vector<Sphere>;

/// Body model: one capsule per link at a given configuration.
class RobotGeometry {
 public:
  /// `link_radius` is applied to every link capsule.  Links whose
  /// segment is degenerate (coincident frame origins — common for
  /// intersecting-axis wrists) become spheres of the same radius.
  explicit RobotGeometry(kin::Chain chain, double link_radius = 0.03);

  const kin::Chain& chain() const { return chain_; }
  double linkRadius() const { return link_radius_; }

  /// Capsules of every link at configuration q (base->frame0 is link 0).
  std::vector<Capsule> linkCapsules(const linalg::VecX& q) const;

  /// Smallest clearance between any pair of non-adjacent links
  /// (adjacent links share a joint and always "touch"); negative =
  /// self-penetration.
  double selfClearance(const linalg::VecX& q) const;

  /// Smallest clearance between any link and any obstacle.
  double environmentClearance(const linalg::VecX& q,
                              const Obstacles& obstacles) const;

  /// True iff q is free of self- and environment collisions with
  /// `margin` to spare.
  bool collisionFree(const linalg::VecX& q, const Obstacles& obstacles,
                     double margin = 0.0) const;

 private:
  kin::Chain chain_;
  double link_radius_;
};

}  // namespace dadu::geom
