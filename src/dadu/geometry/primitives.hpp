// Geometric primitives for robot-body and obstacle modelling.
//
// Links are capsules (swept spheres over the link segment) — the
// standard proxy geometry for manipulator collision checking: distance
// queries reduce to segment-segment distances, cheap enough to run
// inside an IK loop.
#pragma once

#include "dadu/linalg/vec.hpp"

namespace dadu::geom {

struct Sphere {
  linalg::Vec3 center;
  double radius = 0.0;
};

/// Line segment from a to b swept by a sphere of `radius`.
struct Capsule {
  linalg::Vec3 a;
  linalg::Vec3 b;
  double radius = 0.0;
};

}  // namespace dadu::geom
