// Fixed-size thread pool with blocking parallel-for loops.
//
// This is the "multithreads architecture" of the paper's Section 4:
// Quick-IK's speculative searches are independent within an iteration
// and are fanned out over worker threads, exactly as the paper fans
// them over GPU threads or SSUs.  The pool is created once per solver
// and reused across iterations (thread creation would dominate
// otherwise, the software analogue of the paper's kernel-launch
// overhead observation).
//
// Two dispatch mechanisms coexist:
//  - submit()/wait(): a queue of std::function tasks for irregular
//    workloads (one heap-backed closure per task).
//  - parallelForChunked(): a bulk loop descriptor shared by all
//    workers.  The caller's function is referenced by pointer and the
//    chunk table lives in a pre-reserved member vector, so a steady-
//    state solver iteration enqueues no std::function objects and
//    performs no allocations — one notify wakes every worker and each
//    claims whole chunks under a single short critical section.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace dadu::par {

class ThreadPool {
 public:
  /// `threads` = 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const { return workers_.size(); }

  /// Run fn(i) for i in [begin, end) across the pool and block until
  /// all complete.  Work is split into contiguous blocks, one per
  /// worker (speculation counts are small, 16..128, so static
  /// partitioning is both sufficient and deterministic).  Runs inline
  /// on the caller — no queue, no lock — when the range has a single
  /// index or the pool a single worker.
  void parallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn);

  /// Run fn(lo, hi) over a partition of [begin, end) into at most
  /// threadCount() contiguous chunks of at least `grain` indices each,
  /// and block until all complete.  This is the lane-chunk dispatch
  /// Quick-IK's batched speculation kernel wants: one call per worker
  /// instead of one closure per index, zero allocations in steady
  /// state.  Runs inline when a single chunk results (range smaller
  /// than 2*grain, or a single-worker pool).  Blocking and
  /// non-reentrant: at most one bulk loop may be in flight per pool.
  void parallelForChunked(std::size_t begin, std::size_t end,
                          std::size_t grain,
                          const std::function<void(std::size_t, std::size_t)>& fn);

  /// Submit one task; returns immediately.  Exposed for tests and
  /// irregular workloads.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and all workers are idle.
  void wait();

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;

  // Bulk (chunked parallel-for) state, guarded by mutex_: the caller's
  // loop body by pointer, the chunk table (pre-reserved to the worker
  // count), the next unclaimed chunk and the count still running.
  const std::function<void(std::size_t, std::size_t)>* bulk_fn_ = nullptr;
  std::vector<std::pair<std::size_t, std::size_t>> bulk_chunks_;
  std::size_t bulk_next_ = 0;
  std::size_t bulk_pending_ = 0;
};

}  // namespace dadu::par
