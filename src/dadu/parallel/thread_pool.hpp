// Fixed-size thread pool with a blocking parallel-for.
//
// This is the "multithreads architecture" of the paper's Section 4:
// Quick-IK's speculative searches are independent within an iteration
// and are fanned out over worker threads, exactly as the paper fans
// them over GPU threads or SSUs.  The pool is created once per solver
// and reused across iterations (thread creation would dominate
// otherwise, the software analogue of the paper's kernel-launch
// overhead observation).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dadu::par {

class ThreadPool {
 public:
  /// `threads` = 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const { return workers_.size(); }

  /// Run fn(i) for i in [begin, end) across the pool and block until
  /// all complete.  Work is split into contiguous blocks, one per
  /// worker (speculation counts are small, 16..128, so static
  /// partitioning is both sufficient and deterministic).  With an
  /// empty pool (threads == 1 at construction with inline mode) the
  /// loop runs inline on the caller.
  void parallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn);

  /// Submit one task; returns immediately.  parallelFor is built on
  /// this; exposed for tests and irregular workloads.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and all workers are idle.
  void wait();

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace dadu::par
