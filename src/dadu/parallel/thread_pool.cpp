#include "dadu/parallel/thread_pool.hpp"

#include <algorithm>

namespace dadu::par {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = std::max<std::size_t>(1, threadCount());
  if (workers == 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t blocks = std::min(workers, n);
  const std::size_t chunk = (n + blocks - 1) / blocks;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = begin + b * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    submit([&fn, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  wait();
}

}  // namespace dadu::par
