#include "dadu/parallel/thread_pool.hpp"

#include <algorithm>

namespace dadu::par {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  bulk_chunks_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::workerLoop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    cv_task_.wait(lock, [this] {
      return stopping_ || !tasks_.empty() || bulk_next_ < bulk_chunks_.size();
    });
    if (bulk_next_ < bulk_chunks_.size()) {
      // Claim the next lane chunk of the in-flight bulk loop.  The
      // loop body is invoked through a caller-owned function pointer:
      // nothing was queued or allocated to get here.
      const auto [lo, hi] = bulk_chunks_[bulk_next_++];
      const auto* fn = bulk_fn_;
      lock.unlock();
      (*fn)(lo, hi);
      lock.lock();
      if (--bulk_pending_ == 0) cv_done_.notify_all();
      continue;
    }
    if (stopping_ && tasks_.empty()) return;
    std::function<void()> task = std::move(tasks_.front());
    tasks_.pop();
    ++in_flight_;
    lock.unlock();
    task();
    lock.lock();
    --in_flight_;
    if (tasks_.empty() && in_flight_ == 0) cv_done_.notify_all();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  // Fast path: nothing to fan out — run inline with no queue or lock.
  if (end - begin <= 1 || threadCount() <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const auto body = [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  };
  parallelForChunked(begin, end, 1, body);
}

void ThreadPool::parallelForChunked(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t n = end - begin;
  const std::size_t chunks =
      std::min(std::max<std::size_t>(1, threadCount()), (n + grain - 1) / grain);
  if (chunks <= 1 || threadCount() <= 1) {
    fn(begin, end);
    return;
  }
  const std::size_t chunk = (n + chunks - 1) / chunks;
  {
    std::lock_guard lock(mutex_);
    bulk_chunks_.clear();
    bulk_chunks_.reserve(chunks);  // no-op after the reserve in the ctor
    for (std::size_t lo = begin; lo < end; lo += chunk)
      bulk_chunks_.emplace_back(lo, std::min(end, lo + chunk));
    bulk_fn_ = &fn;
    bulk_next_ = 0;
    bulk_pending_ = bulk_chunks_.size();
  }
  cv_task_.notify_all();
  {
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [this] { return bulk_pending_ == 0; });
    bulk_chunks_.clear();
    bulk_next_ = 0;
    bulk_fn_ = nullptr;
  }
}

}  // namespace dadu::par
