#include "dadu/simulation/control_loop.hpp"

#include <algorithm>
#include <cmath>

#include "dadu/kinematics/forward.hpp"

namespace dadu::sim {

ControlLoopResult simulateTracking(const kin::Chain& chain,
                                   const Reference& reference,
                                   const IkOracle& ik,
                                   const linalg::VecX& q0,
                                   const ControlLoopConfig& config) {
  ControlLoopResult result;
  chain.requireSize(q0);

  const int ticks = std::max(
      1, static_cast<int>(std::lround(config.duration_s / config.tick_s)));
  const int latency_ticks = std::max(
      0, static_cast<int>(std::ceil(config.solver_latency_s / config.tick_s)));

  linalg::VecX q = q0;           // actual joints
  linalg::VecX setpoint = q0;    // newest completed IK result
  // One request in flight: result value and completion tick.
  linalg::VecX pending = q0;
  int pending_done_tick = 0;     // a request issued at t=0 for ref(0)
  bool pending_valid = true;
  pending = ik(reference(0.0), q0);
  pending_done_tick = latency_ticks;

  double sq_sum = 0.0;
  result.error_trace.reserve(ticks);

  for (int tick = 0; tick < ticks; ++tick) {
    const double t = tick * config.tick_s;

    // Completed request becomes the setpoint; immediately issue the
    // next one for the reference's *current* position.
    if (pending_valid && tick >= pending_done_tick) {
      setpoint = pending;
      ++result.ik_solves;
      pending = ik(reference(t), setpoint);
      pending_done_tick = tick + std::max(latency_ticks, 1);
    }

    // Joints slew towards the setpoint under the rate limit.
    const double max_step = config.joint_rate_limit * config.tick_s;
    for (std::size_t i = 0; i < q.size(); ++i) {
      const double d = setpoint[i] - q[i];
      q[i] += std::clamp(d, -max_step, max_step);
    }

    const double err =
        (reference(t) - kin::endEffectorPosition(chain, q)).norm();
    result.error_trace.push_back(err);
    result.max_error = std::max(result.max_error, err);
    sq_sum += err * err;
  }

  result.rms_error = std::sqrt(sq_sum / static_cast<double>(ticks));
  return result;
}

}  // namespace dadu::sim
