// Control-loop co-simulation: what IK solver latency costs in tracking
// accuracy.
//
// The paper's case for hardware IK is a real-time argument ("the IK
// solver in ROS will take over 1 second ... cannot satisfy the
// criteria for real-time robotic control").  This module quantifies
// it: a discrete controller commands a robot along a moving task-space
// reference; IK results arrive `solver_latency` seconds after they are
// requested (computed for the reference position at request time), and
// the joints slew towards the newest available solution at a bounded
// rate.  Stale solutions chase a reference that has moved on — the
// tracking error grows with latency, and the bench sweeping CPU / GPU
// / IKAcc latencies turns Table 2's milliseconds into task-space
// centimetres.
#pragma once

#include <functional>
#include <vector>

#include "dadu/kinematics/chain.hpp"
#include "dadu/linalg/vec.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::sim {

struct ControlLoopConfig {
  double tick_s = 1e-3;          ///< controller period (1 kHz)
  double solver_latency_s = 0.0; ///< request-to-result IK latency
  double joint_rate_limit = 3.0; ///< max |theta_dot| per joint (rad/s)
  double duration_s = 4.0;       ///< simulated time
};

struct ControlLoopResult {
  double rms_error = 0.0;   ///< task error over the run (m)
  double max_error = 0.0;
  int ik_solves = 0;        ///< IK requests completed during the run
  std::vector<double> error_trace;  ///< per-tick task error
};

/// Reference path: task-space position as a function of time.
using Reference = std::function<linalg::Vec3(double t)>;

/// Inverse kinematics oracle: joint configuration for a target, warm
/// started from the provided seed (wrap any IkSolver).
using IkOracle =
    std::function<linalg::VecX(const linalg::Vec3& target,
                               const linalg::VecX& warm_start)>;

/// Run the loop: at any moment at most one IK request is in flight;
/// when it completes (after solver_latency), its result becomes the
/// joint-space setpoint and the next request is issued for the
/// reference position at that instant.
ControlLoopResult simulateTracking(const kin::Chain& chain,
                                   const Reference& reference,
                                   const IkOracle& ik,
                                   const linalg::VecX& q0,
                                   const ControlLoopConfig& config);

}  // namespace dadu::sim
