// dadu_fault: deterministic, seed-reproducible fault injection.
//
// The serving stack (IkService -> IkServer -> IkClient) is validated
// under failure by *injecting* faults at named points rather than
// hoping production discovers them.  A FaultPlan is a list of rules —
// each names an injection point, an action, and a trigger — armed on
// the process-wide FaultInjector.  Code under test declares points
// with one call:
//
//     fault::inject("service.worker.solve");          // may sleep/throw
//     if (fault::decide("net.server.read")) { ... }   // site interprets
//
// Production cost: when no plan is armed, every injection point is a
// single relaxed atomic load and a predictable branch — no lock, no
// allocation, no map lookup.  Sites stay in release builds so test
// binaries and production binaries exercise identical code paths.
//
// Determinism: every rule owns a splitmix64 RNG seeded from
// plan.seed ^ fnv1a(point) ^ rule-index.  Probability draws and
// corruption streams therefore replay exactly for a given seed and
// per-point hit order (single-threaded sites such as the net event
// loop replay bit-for-bit; multi-threaded sites replay per-point
// counts deterministically and per-hit assignment up to scheduling).
// A chaos run's seed is all that is needed to reproduce it.
//
// Actions are interpreted by the site (documented per point below):
//   kDelay     sleep for delay_ms (inject() performs it)
//   kError     throw std::runtime_error(message) (inject() performs it)
//   kDrop      site discards the operation (close a socket, drop a frame)
//   kCorrupt   site corrupts its payload via corrupt_seed
//   kTruncate  site limits this I/O operation to max_bytes
//   kEintr     site behaves as if the syscall returned EINTR
//
// Injection points threaded through the stack:
//   solver.iterate            head of every JT-family solver iteration:
//                             kDelay = slow iterations (exercises the
//                             cooperative deadline watchdog), kError =
//                             solver failure mid-solve
//   service.worker.stall      worker pause before deadline check (kDelay)
//   service.worker.solve      before the solver runs: kDelay = slow
//                             solve (counted in solve_ms), kError =
//                             solver throw
//   service.seed_cache.seed   after a cache hit: kCorrupt poisons the
//                             warm-start seed (finite garbage)
//   net.server.read           kTruncate/kEintr on recv, kCorrupt flips
//                             received bytes, kDrop aborts the
//                             connection, kDelay stalls the loop
//   net.server.write          kTruncate/kEintr on send, kDrop aborts
//   net.client.write          kTruncate on send, kCorrupt flips the
//                             outgoing frame, kDrop closes the socket
//   net.client.read           kTruncate on recv, kDrop closes
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dadu/platform/clock.hpp"

namespace dadu::fault {

enum class Action : std::uint8_t {
  kNone,
  kDelay,
  kError,
  kDrop,
  kCorrupt,
  kTruncate,
  kEintr,
};

std::string toString(Action a);

/// When a rule fires.  All conditions must hold; `probability` is
/// evaluated last (so it only consumes an RNG draw when the structural
/// conditions pass, keeping nth-hit plans deterministic).
struct Trigger {
  double probability = 1.0;  ///< chance per eligible hit
  std::uint64_t nth = 0;     ///< fire only on hit #nth of the point (1-based; 0 = any)
  std::uint64_t after = 0;   ///< eligible only once the point has seen this many hits
  std::uint64_t limit = 0;   ///< max fires for this rule (0 = unlimited; 1 = once)
};

/// One injection rule: at `point`, under `trigger`, perform `action`.
struct Rule {
  std::string point;
  Action action = Action::kError;
  Trigger trigger;
  double delay_ms = 1.0;                   ///< kDelay sleep
  std::size_t max_bytes = 1;               ///< kTruncate I/O cap
  std::string message = "injected fault";  ///< kError exception text
};

/// What a site should do for this hit.  kNone (operator bool false)
/// means proceed normally.
struct Decision {
  Action action = Action::kNone;
  double delay_ms = 0.0;
  std::size_t max_bytes = 0;
  std::uint64_t corrupt_seed = 0;  ///< deterministic corruption stream
  std::string message;

  explicit operator bool() const { return action != Action::kNone; }
};

/// A reproducible failure scenario: a seed plus rules.  Fluent helpers
/// cover the common shapes; `rules` may also be filled directly.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<Rule> rules;

  FaultPlan& add(Rule rule) {
    rules.push_back(std::move(rule));
    return *this;
  }
  FaultPlan& delayAt(std::string point, double ms, Trigger t = {}) {
    return add({std::move(point), Action::kDelay, t, ms, 1, {}});
  }
  FaultPlan& errorAt(std::string point, std::string message, Trigger t = {}) {
    return add({std::move(point), Action::kError, t, 0.0, 1,
                std::move(message)});
  }
  FaultPlan& dropAt(std::string point, Trigger t = {}) {
    return add({std::move(point), Action::kDrop, t, 0.0, 1, {}});
  }
  FaultPlan& corruptAt(std::string point, Trigger t = {}) {
    return add({std::move(point), Action::kCorrupt, t, 0.0, 1, {}});
  }
  FaultPlan& truncateAt(std::string point, std::size_t max_bytes,
                        Trigger t = {}) {
    return add({std::move(point), Action::kTruncate, t, 0.0, max_bytes, {}});
  }
  FaultPlan& eintrAt(std::string point, Trigger t = {}) {
    return add({std::move(point), Action::kEintr, t, 0.0, 1, {}});
  }
};

/// Process-wide injector.  Disarmed by default; arm() installs a plan,
/// disarm() restores the zero-cost path.  Hit/fire counters survive
/// disarm() until the next arm() so tests can assert after tearing the
/// plan down.
class FaultInjector {
 public:
  /// The singleton every injection point consults.
  static FaultInjector& global();

  /// True iff a plan is armed anywhere in the process.  This is the
  /// whole production cost of an injection point: one relaxed load.
  static bool armed() {
    return armed_flag_.load(std::memory_order_relaxed);
  }

  void arm(FaultPlan plan);
  void disarm();

  /// Decide what happens at `point` for this hit: counts the hit,
  /// walks the point's rules in plan order, and returns the first
  /// firing rule's decision (kNone when nothing fires).  Thread-safe;
  /// only ever called with a plan armed.
  Decision decide(const char* point);

  /// Test observability: hits seen / rules fired at one point, and
  /// fires across all points, since the last arm().
  std::uint64_t hits(const std::string& point) const;
  std::uint64_t fires(const std::string& point) const;
  std::uint64_t totalFires() const;

 private:
  struct RuleState {
    std::size_t rule_index = 0;   ///< into plan_.rules
    std::uint64_t rng = 0;        ///< splitmix64 state
    std::uint64_t fired = 0;
  };
  struct PointState {
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    std::vector<RuleState> rules;  ///< rules matching this point, plan order
  };

  static std::atomic<bool> armed_flag_;

  mutable std::mutex mutex_;
  FaultPlan plan_;
  std::unordered_map<std::string, PointState> points_;
  std::uint64_t total_fires_ = 0;
};

/// Injection-point spelling for sites that can tolerate an exception:
/// executes kDelay (sleeps) and kError (throws std::runtime_error)
/// internally, returns everything else for the site to interpret.
/// Disarmed: one branch, returns kNone.
Decision inject(const char* point);

/// Clock-aware spelling: identical to inject() except kDelay sleeps on
/// the Clock seam — a real clock blocks the thread, a virtual clock
/// charges the delay to simulated time (the deterministic simulation
/// harness runs chaos delays for free in wall time).  Null clock is
/// exactly inject().
Decision inject(const char* point, const platform::Clock* clock);

/// Injection-point spelling for sites that must not throw (socket
/// loops): never sleeps or throws, pure decision.
inline Decision decide(const char* point) {
  if (!FaultInjector::armed()) return {};
  return FaultInjector::global().decide(point);
}

/// Deterministically flip a few bytes of `data` (at least one when
/// len > 0) from the `seed` stream — the kCorrupt helper for byte
/// payloads (wire frames).
void corruptBytes(std::uint8_t* data, std::size_t len, std::uint64_t seed);

/// Deterministically overwrite doubles with large-but-finite garbage —
/// the kCorrupt helper for numeric payloads (poisoned seeds).  Never
/// produces NaN/inf: a poisoned seed must reach the solver, not trip
/// input validation.
void corruptDoubles(double* data, std::size_t len, std::uint64_t seed);

/// RAII plan for tests: arms on construction, disarms on destruction.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan) {
    FaultInjector::global().arm(std::move(plan));
  }
  ~ScopedFaultPlan() { FaultInjector::global().disarm(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace dadu::fault
