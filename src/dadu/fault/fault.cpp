#include "dadu/fault/fault.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace dadu::fault {
namespace {

/// splitmix64: tiny, full-period, and the classic seed expander —
/// exactly what a reproducible per-rule stream needs.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double nextUnit(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::string toString(Action a) {
  switch (a) {
    case Action::kNone: return "none";
    case Action::kDelay: return "delay";
    case Action::kError: return "error";
    case Action::kDrop: return "drop";
    case Action::kCorrupt: return "corrupt";
    case Action::kTruncate: return "truncate";
    case Action::kEintr: return "eintr";
  }
  return "unknown";
}

std::atomic<bool> FaultInjector::armed_flag_{false};

FaultInjector& FaultInjector::global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_ = std::move(plan);
  points_.clear();
  total_fires_ = 0;
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const Rule& rule = plan_.rules[i];
    RuleState state;
    state.rule_index = i;
    state.rng = plan_.seed ^ fnv1a(rule.point) ^
                (0x9e3779b97f4a7c15ull * (i + 1));
    points_[rule.point].rules.push_back(state);
  }
  armed_flag_.store(true, std::memory_order_release);
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_flag_.store(false, std::memory_order_release);
  plan_.rules.clear();
  // points_ is kept: tests assert hit/fire counters after disarming.
}

Decision FaultInjector::decide(const char* point) {
  std::lock_guard<std::mutex> lock(mutex_);
  // decide() can race a concurrent disarm(): the armed() fast path is
  // deliberately unlocked, so re-check under the lock.
  if (!armed_flag_.load(std::memory_order_relaxed)) return {};

  PointState& ps = points_[point];
  ps.hits++;
  for (RuleState& rs : ps.rules) {
    const Rule& rule = plan_.rules[rs.rule_index];
    const Trigger& t = rule.trigger;
    if (t.after != 0 && ps.hits <= t.after) continue;
    if (t.nth != 0 && ps.hits != t.nth) continue;
    if (t.limit != 0 && rs.fired >= t.limit) continue;
    if (t.probability < 1.0 && nextUnit(rs.rng) >= t.probability) continue;

    rs.fired++;
    ps.fires++;
    total_fires_++;

    Decision d;
    d.action = rule.action;
    d.delay_ms = rule.delay_ms;
    d.max_bytes = rule.max_bytes;
    d.corrupt_seed = splitmix64(rs.rng);
    d.message = rule.message;
    return d;
  }
  return {};
}

std::uint64_t FaultInjector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

std::uint64_t FaultInjector::fires(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

std::uint64_t FaultInjector::totalFires() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_fires_;
}

Decision inject(const char* point) { return inject(point, nullptr); }

Decision inject(const char* point, const platform::Clock* clock) {
  if (!FaultInjector::armed()) return {};
  Decision d = FaultInjector::global().decide(point);
  switch (d.action) {
    case Action::kDelay:
      platform::sleepOn(clock, d.delay_ms);
      break;
    case Action::kError:
      throw std::runtime_error(d.message);
    default:
      break;
  }
  return d;
}

void corruptBytes(std::uint8_t* data, std::size_t len, std::uint64_t seed) {
  if (len == 0) return;
  // Flip 1..4 bytes at deterministic offsets; XOR with a nonzero mask
  // so a flip never leaves the byte unchanged.
  const std::size_t flips = 1 + (splitmix64(seed) % 4);
  for (std::size_t i = 0; i < flips; ++i) {
    const std::size_t at = splitmix64(seed) % len;
    std::uint8_t mask = static_cast<std::uint8_t>(splitmix64(seed));
    if (mask == 0) mask = 0xa5;
    data[at] ^= mask;
  }
}

void corruptDoubles(double* data, std::size_t len, std::uint64_t seed) {
  if (len == 0) return;
  const std::size_t hits = 1 + (splitmix64(seed) % len);
  for (std::size_t i = 0; i < hits; ++i) {
    const std::size_t at = splitmix64(seed) % len;
    // Large-but-finite garbage in [-100, 100): poisoned joint angles
    // far outside any sane configuration, yet valid solver input.
    data[at] = (nextUnit(seed) - 0.5) * 200.0;
  }
}

}  // namespace dadu::fault
