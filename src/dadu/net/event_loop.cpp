#include "dadu/net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace dadu::net {
namespace {

[[noreturn]] void throwErrno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " +
                           std::strerror(errno));
}

}  // namespace

EventLoop::EventLoop(const platform::Clock* clock) : clock_(clock) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throwErrno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throwErrno("eventfd");
  }
  add(wake_fd_, EPOLLIN, [this](std::uint32_t) {
    std::uint64_t drained = 0;
    // Coalesce: one read clears every pending wakeup() poke.
    while (::read(wake_fd_, &drained, sizeof drained) > 0) {
    }
    if (wakeup_handler_) wakeup_handler_();
  });
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add(int fd, std::uint32_t events, FdHandler handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0)
    throwErrno("epoll_ctl(ADD)");
  handlers_[fd] = std::make_shared<FdHandler>(std::move(handler));
}

void EventLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0)
    throwErrno("epoll_ctl(MOD)");
}

void EventLoop::remove(int fd) {
  // Kernels before 2.6.9 demanded a non-null event; any modern one
  // accepts nullptr.  A failure here (fd already closed) is benign.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::setTick(double interval_ms, std::function<void()> handler) {
  tick_interval_ms_ = interval_ms;
  tick_handler_ = std::move(handler);
  next_tick_ = platform::clockNow(clock_) +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double, std::milli>(interval_ms));
}

void EventLoop::setWakeupHandler(std::function<void()> handler) {
  wakeup_handler_ = std::move(handler);
}

void EventLoop::maybeTick() {
  if (!tick_handler_) return;
  const auto now = platform::clockNow(clock_);
  if (now < next_tick_) return;
  next_tick_ = now +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double, std::milli>(
                       tick_interval_ms_));
  tick_handler_();
}

int EventLoop::runOnce(int timeout_ms) {
  if (tick_handler_) {
    const auto now = platform::clockNow(clock_);
    const double until_tick =
        std::chrono::duration<double, std::milli>(next_tick_ - now).count();
    const int capped = until_tick <= 0.0
                           ? 0
                           : static_cast<int>(until_tick) + 1;
    if (timeout_ms < 0 || capped < timeout_ms) timeout_ms = capped;
  }

  std::array<epoll_event, 64> events;
  const int n = ::epoll_wait(epoll_fd_, events.data(),
                             static_cast<int>(events.size()), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throwErrno("epoll_wait");
  }
  for (int i = 0; i < n; ++i) {
    const auto it = handlers_.find(events[static_cast<std::size_t>(i)].data.fd);
    if (it == handlers_.end()) continue;  // removed earlier this round
    // Copy the shared handle: the handler may remove (and so erase)
    // itself while running.
    const std::shared_ptr<FdHandler> handler = it->second;
    (*handler)(events[static_cast<std::size_t>(i)].events);
  }
  maybeTick();
  return n;
}

void EventLoop::run() {
  while (!stop_.load(std::memory_order_acquire)) runOnce(-1);
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_release);
  wakeup();
}

void EventLoop::wakeup() {
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wake.
  [[maybe_unused]] const auto written = ::write(wake_fd_, &one, sizeof one);
}

}  // namespace dadu::net
