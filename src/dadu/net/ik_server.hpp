// Non-blocking TCP front-end for IkService: the ingress path.
//
// One epoll EventLoop on one thread owns every socket.  The request
// path never blocks that thread:
//
//   readable -> parse frames off the connection's in-buffer
//            -> IkService::submit(request, completion)   [callback API]
//   worker   -> completion pushes {conn, response} onto the
//               CompletionSink and pokes the loop's eventfd
//   loop     -> drains the sink, serializes responses into the
//               connection's out-buffer, lets EPOLLOUT flush them.
//
// Robustness decisions, each load-bearing:
//   - malformed frame  => close that connection only, count it;
//   - oversized length => malformed immediately (never buffered);
//   - wrong version    => kUnsupportedVersion error frame, then close;
//   - slow reader      => when a connection's out-buffer passes
//     write_buffer_limit, stop reading its requests (clear EPOLLIN)
//     until the buffer drains below half — responses only come from
//     reads, so per-connection memory is bounded;
//   - max_connections  => accept() then immediately close, counted;
//   - idle timeout     => tick sweep closes quiet connections with no
//     in-flight work;
//   - shutdown drain   => listener closes first, reads stop, every
//     dispatched request completes and flushes (bounded by
//     drain_timeout_ms), then connections close and the loop exits.
//
// Completions can outlive the server only until stop() returns: drain
// waits for in-flight work, and the CompletionSink is shared_ptr-owned
// by every pending callback, so a late completion after a drain
// timeout writes into an orphaned sink instead of freed memory.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "dadu/net/buffer.hpp"
#include "dadu/net/event_loop.hpp"
#include "dadu/net/net_stats.hpp"
#include "dadu/net/wire.hpp"
#include "dadu/obs/histogram.hpp"
#include "dadu/obs/sharded_counters.hpp"
#include "dadu/service/ik_service.hpp"

namespace dadu::registry {
class SpecRouter;
}

namespace dadu::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see IkServer::port()
  int backlog = 128;
  std::size_t max_connections = 256;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Out-buffer bytes above which a connection's reads pause (slow
  /// reader backpressure); reads resume below half of this.
  std::size_t write_buffer_limit = 4u << 20;
  std::size_t read_chunk_bytes = 64 * 1024;
  double idle_timeout_ms = 0.0;  ///< close quiet connections (0 = never)
  double tick_interval_ms = 50.0;
  /// stop() waits this long for in-flight solves to complete and
  /// responses to flush before closing connections anyway.
  double drain_timeout_ms = 5000.0;
  /// Single-spec mode (the IkService constructor): the one robot spec
  /// this server fronts; requests carrying any other id get a
  /// kUnknownSpec error.  Ignored in router mode, where the SpecRouter's
  /// registry decides which spec ids exist.
  std::uint32_t robot_spec_id = 0;
  /// Bucket ladder for the frame-size / wire-latency histograms.
  obs::LatencyHistogram::Config latency;
  std::size_t stat_shards = 0;  ///< 0 = hardware concurrency
  /// Time source for idle sweeps, drain deadlines and wire-latency
  /// timestamps (null = real steady clock).  Sockets and epoll always
  /// run in real time; the clock seam only moves the *timestamps* so
  /// tests can pin idle/drain arithmetic.
  const platform::Clock* clock = nullptr;
};

class IkServer {
 public:
  /// Single-spec mode: every request must carry config.robot_spec_id.
  /// Does not start anything; `service` must outlive the server.
  IkServer(service::IkService& service, ServerConfig config = {});

  /// Multi-spec mode: requests route by wire spec_id through `router`
  /// (one serving lane per registered robot); ids the router does not
  /// know get a kUnknownSpec error.  `router` must outlive the server.
  IkServer(registry::SpecRouter& router, ServerConfig config = {});
  ~IkServer();  ///< stop()

  IkServer(const IkServer&) = delete;
  IkServer& operator=(const IkServer&) = delete;

  /// Bind, listen, and spawn the loop thread.  Throws
  /// std::runtime_error on socket/bind/listen failure.
  void start();

  /// Graceful drain (see file comment), then join the loop thread.
  /// Idempotent; safe from any one thread except the loop itself.
  void stop();

  bool running() const { return started_.load() && !stopped_.load(); }
  /// The bound port (resolves config.port == 0 to the real one).
  /// Valid after start().
  std::uint16_t port() const { return port_; }
  const std::string& address() const { return config_.bind_address; }

  NetStats stats() const;
  obs::MetricsSnapshot metrics() const { return toMetricsSnapshot(stats()); }
  std::size_t activeConnections() const { return active_conns_.load(); }
  const ServerConfig& config() const { return config_; }

 private:
  /// Logical counter ids for the sharded stat slots.
  enum Counter : std::size_t {
    kAccepted,
    kRejectedLimit,
    kClosedPeer,
    kClosedProtocol,
    kClosedIdle,
    kClosedShutdown,
    kClosedError,
    kFramesReceived,
    kMalformedFrames,
    kResponsesSent,
    kErrorsSent,
    kBytesRead,
    kBytesWritten,
    kRequestsDispatched,
    kRequestsCompleted,
    kShedDraining,
    kReadPauses,
    kSpecMismatch,
    kCounterCount,
  };

  /// Why a connection is being closed (selects the stat bucket).
  enum class CloseReason {
    kPeer,
    kProtocol,
    kIdle,
    kShutdown,
    kError,
  };

  struct Connection {
    std::uint64_t id = 0;
    int fd = -1;
    ByteBuffer in;
    ByteBuffer out;
    std::size_t in_flight = 0;   ///< dispatched, completion not yet seen
    bool reads_paused = false;   ///< EPOLLIN cleared (backpressure/drain)
    bool peer_eof = false;       ///< remote shut down its write side
    bool close_after_flush = false;
    std::chrono::steady_clock::time_point last_activity{};
  };

  /// One finished request travelling worker -> loop.  `failed` carries
  /// solver-exception completions that must become kError frames.
  struct PendingCompletion {
    std::uint64_t conn_id = 0;
    std::uint64_t request_id = 0;
    std::chrono::steady_clock::time_point dispatched{};
    service::Response response;
  };

  /// The worker->loop hand-off: a locked vector plus the eventfd that
  /// pokes the loop.  shared_ptr-held by every in-flight completion
  /// callback so it outlives the server on a drain timeout.  A
  /// completion arriving after the loop died (a solve that outlived
  /// drain_timeout_ms) is *orphaned*: counted, never delivered — the
  /// silent-drop the dadu_net_orphaned_completions counter replaces.
  struct CompletionSink {
    std::mutex mutex;
    std::vector<PendingCompletion> items;
    EventLoop* loop = nullptr;  ///< nulled under mutex when loop dies
    std::uint64_t orphaned = 0;  ///< completions into a dead sink

    void push(PendingCompletion item);
  };

  // Loop-thread-only internals.
  void onAcceptable();
  void onConnectionEvent(std::uint64_t conn_id, std::uint32_t events);
  void onReadable(Connection& conn);
  void onWritable(Connection& conn);
  void parseFrames(Connection& conn);
  void handleRequest(Connection& conn, const WireRequest& request);
  void drainCompletions();
  void queueError(Connection& conn, std::uint64_t request_id,
                  WireErrorCode code, const std::string& message);
  void afterEnqueue(Connection& conn);
  void updateReadInterest(Connection& conn);
  void closeConnection(std::uint64_t conn_id, CloseReason reason);
  void onTick();
  void beginDrain();
  bool drainComplete() const;
  std::uint32_t interestOf(const Connection& conn) const;

  /// Exactly one of these is set (single-spec vs router mode).
  service::IkService* service_ = nullptr;
  registry::SpecRouter* router_ = nullptr;
  ServerConfig config_;
  EventLoop loop_;
  std::thread thread_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<std::uint64_t, Connection> conns_;
  std::vector<std::uint8_t> read_chunk_;  ///< loop-thread scratch
  std::size_t dispatched_pending_ = 0;  ///< sum of conn.in_flight
  std::shared_ptr<CompletionSink> sink_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::size_t> active_conns_{0};
  bool drain_deadline_set_ = false;
  std::chrono::steady_clock::time_point drain_deadline_{};
  std::mutex stop_mutex_;

  obs::ShardedCounters counters_;
  obs::LatencyHistogram frame_hist_;
  obs::LatencyHistogram e2e_hist_;
};

}  // namespace dadu::net
