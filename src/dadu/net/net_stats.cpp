#include "dadu/net/net_stats.hpp"

#include <utility>

namespace dadu::net {

obs::MetricsSnapshot toMetricsSnapshot(const NetStats& stats) {
  obs::MetricsSnapshot snap;
  const auto counter = [&](const char* name, std::uint64_t value) {
    snap.counters.push_back({std::string("dadu_net_") + name, value});
  };
  counter("connections_accepted", stats.connections_accepted);
  counter("connections_rejected_limit", stats.connections_rejected_limit);
  counter("connections_closed_peer", stats.closed_by_peer);
  counter("connections_closed_protocol", stats.closed_protocol);
  counter("connections_closed_idle", stats.closed_idle);
  counter("connections_closed_shutdown", stats.closed_shutdown);
  counter("connections_closed_error", stats.closed_error);
  counter("frames_received", stats.frames_received);
  counter("malformed_frames", stats.malformed_frames);
  counter("responses_sent", stats.responses_sent);
  counter("errors_sent", stats.errors_sent);
  counter("bytes_read", stats.bytes_read);
  counter("bytes_written", stats.bytes_written);
  counter("requests_dispatched", stats.requests_dispatched);
  counter("requests_completed", stats.requests_completed);
  counter("shed_draining", stats.shed_draining);
  counter("read_pauses", stats.read_pauses);
  counter("spec_mismatch", stats.spec_mismatch);
  counter("orphaned_completions", stats.orphaned_completions);

  snap.gauges.push_back(
      {"dadu_net_connections_active",
       static_cast<double>(stats.connections_active), "conns"});

  snap.histograms.push_back(
      {"dadu_net_frame_bytes", stats.frame_bytes_hist, "bytes"});
  snap.histograms.push_back(
      {"dadu_net_wire_e2e_ms", stats.wire_e2e_hist, "ms"});
  return snap;
}

obs::MetricsSnapshot merge(obs::MetricsSnapshot a,
                           const obs::MetricsSnapshot& b) {
  a.counters.insert(a.counters.end(), b.counters.begin(), b.counters.end());
  a.gauges.insert(a.gauges.end(), b.gauges.begin(), b.gauges.end());
  a.histograms.insert(a.histograms.end(), b.histograms.begin(),
                      b.histograms.end());
  a.infos.insert(a.infos.end(), b.infos.begin(), b.infos.end());
  return a;
}

}  // namespace dadu::net
