#include "dadu/net/ik_client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "dadu/fault/fault.hpp"

namespace dadu::net {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

[[noreturn]] void throwErrno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

/// One non-blocking connect attempt with a poll() deadline.  Returns
/// the connected fd or -1.
int tryConnect(const std::string& host, std::uint16_t port,
               double timeout_ms) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("IkClient: bad address '" + host + "'");
  }

  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0)
    return fd;
  if (errno != EINPROGRESS) {
    ::close(fd);
    return -1;
  }
  pollfd pfd{fd, POLLOUT, 0};
  const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
  if (ready <= 0) {
    ::close(fd);
    return -1;
  }
  int err = 0;
  socklen_t err_len = sizeof err;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 ||
      err != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void setTimeouts(int fd, double io_timeout_ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(io_timeout_ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>(
      (io_timeout_ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

}  // namespace

IkClient::~IkClient() { close(); }

IkClient::IkClient(IkClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_),
      config_(other.config_),
      in_(std::move(other.in_)),
      strays_(std::move(other.strays_)),
      host_(std::move(other.host_)),
      port_(other.port_),
      retry_rng_(other.retry_rng_),
      // Transfer, don't copy: a copied budget could be spent twice (a
      // call on the moved-from client fails reconnect but still burns
      // retries), and copied stats double-count in any sum over
      // clients.  The moved-from client keeps no budget and no stats.
      retry_budget_(std::exchange(other.retry_budget_, 0)),
      retry_stats_(std::exchange(other.retry_stats_, {})) {}

IkClient& IkClient::operator=(IkClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = other.next_id_;
    config_ = other.config_;
    in_ = std::move(other.in_);
    strays_ = std::move(other.strays_);
    host_ = std::move(other.host_);
    port_ = other.port_;
    retry_rng_ = other.retry_rng_;
    // Transfer, don't copy — see the move constructor.
    retry_budget_ = std::exchange(other.retry_budget_, 0);
    retry_stats_ = std::exchange(other.retry_stats_, {});
  }
  return *this;
}

void IkClient::connect(const std::string& host, std::uint16_t port,
                       ClientConfig config) {
  close();
  config_ = config;
  host_ = host;
  port_ = port;
  retry_rng_ = config_.retry.seed;
  retry_budget_ = config_.retry.budget;
  retry_stats_ = {};
  dial();
}

void IkClient::dial() {
  for (int attempt = 0; attempt < config_.connect_attempts; ++attempt) {
    if (attempt > 0)
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          config_.retry_backoff_ms));
    const int fd = tryConnect(host_, port_, config_.connect_timeout_ms);
    if (fd < 0) continue;
    // Blocking mode from here on: the client's contract is synchronous
    // I/O with per-syscall timeouts.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
    setTimeouts(fd, config_.io_timeout_ms);
    const int on = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof on);
    fd_ = fd;
    return;
  }
  throw std::runtime_error("IkClient: cannot connect to " + host_ + ":" +
                           std::to_string(port_) + " after " +
                           std::to_string(config_.connect_attempts) +
                           " attempts");
}

void IkClient::reconnect() {
  close();
  dial();
  ++retry_stats_.reconnects;
}

void IkClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  in_.clear();
  strays_.clear();
}

void IkClient::sendAll(const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  std::uint8_t scratch[512];  ///< kCorrupt works on a copy, not the frame
  while (sent < len) {
    std::size_t want = len - sent;
    const std::uint8_t* src = data + sent;
    if (fault::FaultInjector::armed()) {
      const fault::Decision injected = fault::decide("net.client.write");
      if (injected.action == fault::Action::kDrop) {
        close();
        throw std::runtime_error("IkClient: connection dropped (injected)");
      }
      if (injected.action == fault::Action::kEintr)
        continue;  // as if send() returned EINTR: hit counted, loop retries
      if (injected.action == fault::Action::kDelay)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(injected.delay_ms));
      if (injected.action == fault::Action::kTruncate)
        want = std::min(want, std::max<std::size_t>(injected.max_bytes, 1));
      if (injected.action == fault::Action::kCorrupt) {
        want = std::min(want, sizeof scratch);
        std::memcpy(scratch, src, want);
        fault::corruptBytes(scratch, want, injected.corrupt_seed);
        src = scratch;
      }
    }
    const ssize_t n = ::send(fd_, src, want, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throwErrno("IkClient send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::uint64_t IkClient::sendRequest(const service::Request& request) {
  return sendRequest(request, config_.spec_id);
}

std::uint64_t IkClient::sendRequest(const service::Request& request,
                                    std::uint32_t spec_id) {
  if (fd_ < 0) throw std::runtime_error("IkClient: not connected");
  WireRequest wire;
  wire.id = next_id_++;
  wire.spec_id = spec_id;
  wire.use_seed_cache = request.use_seed_cache;
  wire.priority = request.priority;
  wire.target[0] = request.target.x;
  wire.target[1] = request.target.y;
  wire.target[2] = request.target.z;
  wire.deadline_ms = request.deadline_ms;
  wire.seed.assign(request.seed.begin(), request.seed.end());

  std::vector<std::uint8_t> frame;
  encodeRequest(wire, frame);
  sendAll(frame.data(), frame.size());
  return wire.id;
}

ClientReply IkClient::receiveAny() {
  if (fd_ < 0) throw std::runtime_error("IkClient: not connected");
  std::uint8_t chunk[16 * 1024];
  for (;;) {
    DecodedFrame frame;
    const DecodeStatus status = decodeFrame(in_.data(), in_.size(),
                                            config_.max_frame_bytes, frame);
    switch (status) {
      case DecodeStatus::kOk: {
        in_.consume(frame.consumed);
        ClientReply reply;
        if (frame.type == MsgType::kResponse) {
          reply.type = MsgType::kResponse;
          reply.response = std::move(frame.response);
        } else if (frame.type == MsgType::kError) {
          reply.type = MsgType::kError;
          reply.error = std::move(frame.error);
        } else {
          throw std::runtime_error(
              "IkClient: server sent a request frame");
        }
        return reply;
      }
      case DecodeStatus::kMalformed:
        throw std::runtime_error("IkClient: malformed frame from server");
      case DecodeStatus::kUnsupportedVersion:
        throw std::runtime_error("IkClient: server wire version mismatch");
      case DecodeStatus::kNeedMore:
        break;
    }
    std::size_t want = sizeof chunk;
    bool corrupt_read = false;
    std::uint64_t corrupt_seed = 0;
    if (fault::FaultInjector::armed()) {
      const fault::Decision injected = fault::decide("net.client.read");
      if (injected.action == fault::Action::kDrop) {
        close();
        throw std::runtime_error("IkClient: connection dropped (injected)");
      }
      if (injected.action == fault::Action::kEintr)
        continue;  // as if recv() returned EINTR
      if (injected.action == fault::Action::kDelay)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(injected.delay_ms));
      if (injected.action == fault::Action::kTruncate)
        want = std::min(want, std::max<std::size_t>(injected.max_bytes, 1));
      if (injected.action == fault::Action::kCorrupt) {
        corrupt_read = true;
        corrupt_seed = injected.corrupt_seed;
      }
    }
    const ssize_t n = ::recv(fd_, chunk, want, 0);
    if (n == 0)
      throw std::runtime_error("IkClient: connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw std::runtime_error("IkClient: receive timeout");
      throwErrno("IkClient recv");
    }
    if (corrupt_read)
      fault::corruptBytes(chunk, static_cast<std::size_t>(n), corrupt_seed);
    in_.append(chunk, static_cast<std::size_t>(n));
  }
}

ClientReply IkClient::waitFor(std::uint64_t id) {
  const auto it = strays_.find(id);
  if (it != strays_.end()) {
    ClientReply reply = std::move(it->second);
    strays_.erase(it);
    return reply;
  }
  for (;;) {
    ClientReply reply = receiveAny();
    if (reply.id() == id) return reply;
    strays_.emplace(reply.id(), std::move(reply));
  }
}

service::Response IkClient::call(const service::Request& request) {
  return call(request, config_.spec_id);
}

service::Response IkClient::call(const service::Request& request,
                                 std::uint32_t spec_id) {
  const std::uint64_t id = sendRequest(request, spec_id);
  ClientReply reply = waitFor(id);
  if (reply.type == MsgType::kError)
    throw WireErrorException(std::move(reply.error));
  return toServiceResponse(reply.response);
}

bool IkClient::scheduleRetry(int attempt) {
  const RetryPolicy& policy = config_.retry;
  if (attempt >= policy.max_attempts) return false;
  if (retry_budget_ == 0) {
    ++retry_stats_.budget_exhausted;
    return false;
  }
  --retry_budget_;
  ++retry_stats_.retries;
  double backoff = policy.base_backoff_ms *
                   std::ldexp(1.0, std::min(attempt - 1, 30));
  backoff = std::min(backoff, policy.max_backoff_ms);
  // Deterministic jitter: scale backoff by a uniform draw from
  // [1 - jitter, 1] so retrying clients desynchronize instead of
  // stampeding the recovering server in lockstep.
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  const double u = static_cast<double>(splitmix64(retry_rng_) >> 11) *
                   0x1p-53;  // uniform [0, 1)
  backoff *= (1.0 - jitter) + jitter * u;
  if (backoff > 0.0)
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff));
  return true;
}

service::Response IkClient::callWithRetry(const service::Request& request) {
  return callWithRetry(request, config_.spec_id);
}

service::Response IkClient::callWithRetry(const service::Request& request,
                                          std::uint32_t spec_id) {
  for (int attempt = 1;; ++attempt) {
    ++retry_stats_.attempts;
    try {
      if (fd_ < 0) reconnect();
      service::Response response = call(request, spec_id);
      // Transient server-state rejections (queue full, breaker open,
      // draining) are worth another try; terminal rejections and
      // kDeadlineExceeded (the caller's latency budget — spending more
      // time violates it) return as-is.
      if (response.status == service::ResponseStatus::kRejected &&
          isRetryable(response.reject_reason) && scheduleRetry(attempt))
        continue;
      return response;
    } catch (const WireErrorException& e) {
      if (!isRetryable(e.error().code) || !scheduleRetry(attempt)) throw;
    } catch (const std::runtime_error&) {
      // Transport failure (EOF, timeout, reset, injected drop): the
      // socket's framing state is unknown, so rebuild it next attempt.
      close();
      if (!scheduleRetry(attempt)) throw;
    }
  }
}

}  // namespace dadu::net
