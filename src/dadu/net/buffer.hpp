// Growable byte buffer with an amortised-O(1) consume front.
//
// Both sides of the wire need the same two motions: append bytes as
// they arrive (or are serialized) and consume whole frames off the
// front.  A std::vector plus a head offset gives contiguous storage
// for the frame decoder (which wants one flat [data, size) span) while
// keeping consume() from memmoving on every frame — the head only
// compacts when the dead prefix outgrows the live bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace dadu::net {

class ByteBuffer {
 public:
  /// Live (unconsumed) bytes.
  const std::uint8_t* data() const { return storage_.data() + head_; }
  std::size_t size() const { return storage_.size() - head_; }
  bool empty() const { return size() == 0; }

  void append(const void* bytes, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(bytes);
    storage_.insert(storage_.end(), p, p + len);
  }

  /// Drop `len` bytes off the front (len <= size()).
  void consume(std::size_t len) {
    head_ += len;
    if (head_ >= storage_.size()) {
      storage_.clear();
      head_ = 0;
    } else if (head_ > storage_.size() - head_) {
      // Dead prefix outweighs live bytes: compact once.
      storage_.erase(storage_.begin(),
                     storage_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  void clear() {
    storage_.clear();
    head_ = 0;
  }

 private:
  std::vector<std::uint8_t> storage_;
  std::size_t head_ = 0;
};

}  // namespace dadu::net
