// Single-threaded epoll event loop.
//
// One thread calls run(); every fd handler, the wakeup handler and the
// tick handler execute on that thread, so loop-owned state (the
// server's connection table) needs no locks.  Two thread-safe entry
// points exist for everyone else: wakeup() — poke the loop's eventfd
// so it drains whatever cross-thread queue the wakeup handler guards —
// and stop().  This is the classic reactor shape (libevent/muduo);
// epoll is level-triggered, which keeps partial-read/-write handling
// straightforward: the fd stays ready until the buffer is drained.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "dadu/platform/clock.hpp"

namespace dadu::net {

class EventLoop {
 public:
  /// Invoked with the ready epoll event mask (EPOLLIN | EPOLLOUT | ...).
  using FdHandler = std::function<void(std::uint32_t events)>;

  /// Creates the epoll instance and the internal wakeup eventfd.
  /// Throws std::runtime_error if either cannot be created.  `clock`
  /// is the Clock seam for tick scheduling (null = real steady clock);
  /// with a virtual clock, tests drive runOnce(0) and advance the
  /// clock to fire ticks without sleeping.  epoll_wait itself always
  /// blocks in real time — the simulation harness replaces the socket
  /// layer (SimTransport), not epoll.
  explicit EventLoop(const platform::Clock* clock = nullptr);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // --- loop-thread-only interface -----------------------------------
  /// Watch `fd` for `events`.  The handler may add/modify/remove any
  /// fd, including its own.  Throws on epoll_ctl failure.
  void add(int fd, std::uint32_t events, FdHandler handler);
  void modify(int fd, std::uint32_t events);
  /// Stop watching `fd` (does not close it).  Safe against pending
  /// events in the current dispatch round: they are skipped.
  void remove(int fd);
  bool watching(int fd) const { return handlers_.count(fd) != 0; }

  /// Dispatch until stop().  Runs the tick handler (if set) at least
  /// every tick interval.
  void run();
  /// One epoll_wait + dispatch round with the given cap on blocking
  /// time; returns the number of fd events handled.  Exposed for tests
  /// and for callers embedding the loop in their own thread.
  int runOnce(int timeout_ms);

  /// Called on the loop thread every `interval_ms` (best effort, also
  /// between bursts of events).  One tick handler at a time.
  void setTick(double interval_ms, std::function<void()> handler);

  /// Called on the loop thread after wakeup() was poked (coalesced:
  /// many wakeup() calls may fold into one invocation).
  void setWakeupHandler(std::function<void()> handler);

  // --- thread-safe interface ----------------------------------------
  /// Make run() return after the current dispatch round.
  void stop();
  /// Poke the loop: runOnce() returns promptly and the wakeup handler
  /// runs.  Async-signal-safe is NOT guaranteed (it takes no lock but
  /// writes an fd owned by the loop; call only while the loop object
  /// is alive).
  void wakeup();

  bool stopped() const { return stop_.load(std::memory_order_acquire); }

 private:
  void maybeTick();

  const platform::Clock* clock_ = nullptr;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  // shared_ptr so a handler that removes another fd mid-round cannot
  // free a std::function the dispatcher is still holding.
  std::unordered_map<int, std::shared_ptr<FdHandler>> handlers_;
  std::function<void()> wakeup_handler_;
  std::function<void()> tick_handler_;
  double tick_interval_ms_ = 0.0;
  std::chrono::steady_clock::time_point next_tick_{};
};

}  // namespace dadu::net
