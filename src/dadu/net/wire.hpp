// dadu_net binary wire protocol: length-prefixed frames, version 1.
//
// Every message on a connection is one frame:
//
//   offset  size  field
//   0       4     payload length N (bytes after this field), u32 LE
//   4       1     protocol version (kWireVersion)
//   5       1     message type (MsgType)
//   6       8     request id, u64 LE (echoed verbatim in the reply;
//                 0 when the sender has none, e.g. a pre-parse error)
//   14      N-10  type-specific body
//
// Request body (kRequest, client -> server):
//   u32 spec id  — which robot the server must be serving
//   u8  flags    — bit 0: allow the warm-start seed cache
//                  bits 1-2: priority (0 = normal, 1 = low, 2 = high;
//                  3 reserved, decodes as normal)
//   f64 target x, y, z
//   f64 deadline ms (0 = none)
//   u32 seed length S, then S f64 joint angles (S = 0: solver default)
//
// Response body (kResponse, server -> client):
//   u8  service status (service::ResponseStatus)
//   u8  reject reason  (service::RejectReason)
//   u8  solver status  (ik::Status; meaningful iff service status solved)
//   u8  seeded-from-cache flag
//   i32 iterations
//   f64 final error
//   f64 queue ms, f64 solve ms
//   u32 theta length T, then T f64 joint angles
//
// Error body (kError, server -> client):
//   u16 error code (WireErrorCode)
//   u32 message length M, then M bytes of UTF-8 text
//
// All integers and doubles are little-endian; doubles are IEEE-754
// bit patterns (std::bit_cast through u64), so a round trip is
// bit-exact.  Versioning rules: the version byte must equal
// kWireVersion; a server receiving a newer/older version answers
// kUnsupportedVersion and closes.  New fields append to bodies (old
// decoders key off the length); incompatible layout changes bump the
// version byte.  A frame that violates the grammar (short payload,
// length over the negotiated cap, unknown type, body length mismatch)
// is malformed: the receiver closes that connection — and only that
// connection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dadu/service/request.hpp"

namespace dadu::net {

inline constexpr std::uint8_t kWireVersion = 1;
/// Bytes of the length prefix.
inline constexpr std::size_t kLengthBytes = 4;
/// Fixed payload prologue: version + type + request id.
inline constexpr std::size_t kPayloadHeaderBytes = 1 + 1 + 8;
/// Default cap on one frame's payload (tunable per server/client).
inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

enum class MsgType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  kError = 3,
};

/// Error-frame codes, classified retryable vs terminal (see
/// isRetryable below and the ARCHITECTURE.md wire table).  Retryable
/// means the same request may succeed later against the same (or a
/// replacement) server: the condition is about the server's current
/// state, not about the request.  Terminal means retrying the
/// identical request is pointless — the request itself (or the
/// protocol pairing) is wrong.
enum class WireErrorCode : std::uint16_t {
  kUnsupportedVersion = 1,  ///< version byte != kWireVersion (terminal)
  kUnknownSpec = 2,         ///< spec id not served here (terminal)
  kInternal = 3,            ///< solver threw; message carries what() (terminal)
  kShuttingDown = 4,        ///< server is draining (retryable)
  kBadRequest = 5,          ///< well-framed but invalid content, e.g.
                            ///< non-finite target or negative deadline
                            ///< (terminal; rejected before dispatch)
};

std::string toString(WireErrorCode code);

/// Retryable vs terminal taxonomy for the client retry policy.
bool isRetryable(WireErrorCode code);

/// Same taxonomy for service-level rejections travelling inside a
/// kResponse frame: kQueueFull / kOverloaded / kShutdown describe a
/// transient server state (retry with backoff); kInternalError means
/// this request makes the solver throw (terminal).
bool isRetryable(service::RejectReason reason);

/// Decoded kRequest frame.
struct WireRequest {
  std::uint64_t id = 0;
  std::uint32_t spec_id = 0;
  bool use_seed_cache = true;
  service::Priority priority = service::Priority::kNormal;
  double target[3] = {0.0, 0.0, 0.0};
  double deadline_ms = 0.0;
  std::vector<double> seed;
};

/// Decoded kResponse frame.
struct WireResponse {
  std::uint64_t id = 0;
  std::uint8_t status = 0;         ///< service::ResponseStatus
  std::uint8_t reject_reason = 0;  ///< service::RejectReason
  std::uint8_t solver_status = 0;  ///< ik::Status
  bool seeded_from_cache = false;
  std::int32_t iterations = 0;
  double error = 0.0;
  double queue_ms = 0.0;
  double solve_ms = 0.0;
  std::vector<double> theta;
};

/// Decoded kError frame.
struct WireError {
  std::uint64_t id = 0;
  WireErrorCode code = WireErrorCode::kInternal;
  std::string message;
};

/// Append one complete frame for the message to `out`.
void encodeRequest(const WireRequest& request, std::vector<std::uint8_t>& out);
void encodeResponse(const WireResponse& response,
                    std::vector<std::uint8_t>& out);
void encodeError(const WireError& error, std::vector<std::uint8_t>& out);

enum class DecodeStatus {
  kOk,                  ///< one frame decoded; `consumed` bytes used
  kNeedMore,            ///< prefix of a valid frame; wait for more bytes
  kMalformed,           ///< grammar violation; close the connection
  kUnsupportedVersion,  ///< well-framed but wrong version; error + close
};

/// One decoded frame; `type` selects which member is meaningful.
struct DecodedFrame {
  MsgType type = MsgType::kRequest;
  std::uint8_t version = 0;
  std::uint64_t request_id = 0;  ///< valid for kOk and kUnsupportedVersion
  std::size_t consumed = 0;      ///< bytes of input the frame occupied
  WireRequest request;
  WireResponse response;
  WireError error;
};

/// Try to decode one frame from [data, data+len).  Never reads past
/// `len`.  `max_frame_bytes` caps the declared payload length — a
/// larger declaration is malformed *immediately*, before buffering.
DecodeStatus decodeFrame(const std::uint8_t* data, std::size_t len,
                         std::size_t max_frame_bytes, DecodedFrame& out);

/// Wire request -> service request (spec id and request id are
/// connection-layer concerns and do not cross this boundary).
service::Request toServiceRequest(const WireRequest& request);

/// Service response -> wire response for request `id`.
WireResponse toWireResponse(std::uint64_t id,
                            const service::Response& response);

/// Wire response -> service response (the client-side inverse of
/// toWireResponse; theta/error/iterations land in Response::result).
service::Response toServiceResponse(const WireResponse& response);

}  // namespace dadu::net
