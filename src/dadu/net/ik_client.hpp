// Blocking client for the dadu_net wire protocol.
//
// One IkClient owns one TCP connection.  Two usage shapes:
//
//   synchronous RPC      — call(request) sends and waits for that
//                          reply (the quickstart / CLI shape);
//   pipelined streaming  — sendRequest() any number of requests, then
//                          waitFor(id)/receiveAny() to collect replies.
//                          Replies can arrive in ANY order (service
//                          workers finish out of order); the client
//                          buffers strays by id so waitFor(id) is safe
//                          under pipelining.
//
// connect() retries with backoff — the standard "server still binding"
// race killer for tests and load generators.  The client is blocking
// by design: callers that want concurrency open more connections
// (that is what bench/net_throughput does); the server side is the
// non-blocking half of the system.  Not thread-safe: one thread per
// client.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "dadu/net/buffer.hpp"
#include "dadu/net/wire.hpp"
#include "dadu/service/request.hpp"

namespace dadu::net {

struct ClientConfig {
  double connect_timeout_ms = 1000.0;  ///< per connect() attempt
  int connect_attempts = 20;           ///< total tries before giving up
  double retry_backoff_ms = 50.0;      ///< sleep between attempts
  double io_timeout_ms = 30000.0;      ///< per send/recv syscall
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  std::uint32_t spec_id = 0;           ///< stamped into every request
};

/// One reply off the wire: either a response or an error frame.
struct ClientReply {
  MsgType type = MsgType::kResponse;
  WireResponse response;  ///< meaningful iff type == kResponse
  WireError error;        ///< meaningful iff type == kError
  std::uint64_t id() const {
    return type == MsgType::kError ? error.id : response.id;
  }
};

/// Thrown when the server answers a request with a kError frame.
class WireErrorException : public std::runtime_error {
 public:
  explicit WireErrorException(WireError error)
      : std::runtime_error("wire error [" + net::toString(error.code) +
                           "]: " + error.message),
        error_(std::move(error)) {}
  const WireError& error() const { return error_; }

 private:
  WireError error_;
};

class IkClient {
 public:
  IkClient() = default;
  ~IkClient();

  IkClient(const IkClient&) = delete;
  IkClient& operator=(const IkClient&) = delete;
  IkClient(IkClient&& other) noexcept;
  IkClient& operator=(IkClient&& other) noexcept;

  /// Connect (with retries) to host:port.  Throws std::runtime_error
  /// when every attempt fails.
  void connect(const std::string& host, std::uint16_t port,
               ClientConfig config = {});
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one request frame; returns the assigned request id.  Never
  /// waits for the reply — pipeline as many as you like.
  std::uint64_t sendRequest(const service::Request& request);

  /// Next reply off the wire, whatever request it answers.  Throws on
  /// EOF, timeout, or protocol violation.
  ClientReply receiveAny();

  /// Reply to request `id`, buffering any other replies that arrive
  /// first (so interleaved pipelined replies are not lost).
  ClientReply waitFor(std::uint64_t id);

  /// Synchronous RPC: sendRequest + waitFor, decoded back into the
  /// service's Response type.  Throws WireErrorException if the server
  /// answered with an error frame.
  service::Response call(const service::Request& request);

  const ClientConfig& config() const { return config_; }

 private:
  void sendAll(const std::uint8_t* data, std::size_t len);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  ClientConfig config_;
  ByteBuffer in_;
  std::unordered_map<std::uint64_t, ClientReply> strays_;
};

}  // namespace dadu::net
