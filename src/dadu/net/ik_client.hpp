// Blocking client for the dadu_net wire protocol.
//
// One IkClient owns one TCP connection.  Two usage shapes:
//
//   synchronous RPC      — call(request) sends and waits for that
//                          reply (the quickstart / CLI shape);
//   pipelined streaming  — sendRequest() any number of requests, then
//                          waitFor(id)/receiveAny() to collect replies.
//                          Replies can arrive in ANY order (service
//                          workers finish out of order); the client
//                          buffers strays by id so waitFor(id) is safe
//                          under pipelining.
//
// connect() retries with backoff — the standard "server still binding"
// race killer for tests and load generators.  The client is blocking
// by design: callers that want concurrency open more connections
// (that is what bench/net_throughput does); the server side is the
// non-blocking half of the system.  Not thread-safe: one thread per
// client.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "dadu/net/buffer.hpp"
#include "dadu/net/wire.hpp"
#include "dadu/service/request.hpp"

namespace dadu::net {

/// Request-level retry knobs for callWithRetry().  Retries are
/// at-least-once: a transport failure after the frame left the socket
/// may mean the server solved the request and the reply was lost, so
/// the retried solve runs again.  IK solves are idempotent, which is
/// why this is the default policy and not an option to agonize over.
struct RetryPolicy {
  int max_attempts = 3;          ///< total tries per call (1 = no retry)
  double base_backoff_ms = 10.0; ///< first retry sleep; doubles per retry
  double max_backoff_ms = 500.0; ///< backoff ceiling
  double jitter = 0.5;           ///< fraction of backoff randomized [0,1]
  /// Retries (not first attempts) allowed across the client's lifetime.
  /// A retry storm against a dying server burns this out and turns
  /// every failure terminal instead of amplifying the outage.
  std::uint64_t budget = 1000;
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;  ///< jitter RNG seed
};

struct ClientConfig {
  double connect_timeout_ms = 1000.0;  ///< per connect() attempt
  int connect_attempts = 20;           ///< total tries before giving up
  double retry_backoff_ms = 50.0;      ///< sleep between attempts
  double io_timeout_ms = 30000.0;      ///< per send/recv syscall
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  std::uint32_t spec_id = 0;           ///< stamped into every request
  RetryPolicy retry;                   ///< callWithRetry() behavior
};

/// What callWithRetry() has done so far (cumulative per client).
struct RetryStats {
  std::uint64_t attempts = 0;          ///< every try, including firsts
  std::uint64_t retries = 0;           ///< tries after a retryable failure
  std::uint64_t reconnects = 0;        ///< sockets rebuilt mid-call
  std::uint64_t budget_exhausted = 0;  ///< failures gone terminal on budget
};

/// One reply off the wire: either a response or an error frame.
struct ClientReply {
  MsgType type = MsgType::kResponse;
  WireResponse response;  ///< meaningful iff type == kResponse
  WireError error;        ///< meaningful iff type == kError
  std::uint64_t id() const {
    return type == MsgType::kError ? error.id : response.id;
  }
};

/// Thrown when the server answers a request with a kError frame.
class WireErrorException : public std::runtime_error {
 public:
  explicit WireErrorException(WireError error)
      : std::runtime_error("wire error [" + net::toString(error.code) +
                           "]: " + error.message),
        error_(std::move(error)) {}
  const WireError& error() const { return error_; }

 private:
  WireError error_;
};

class IkClient {
 public:
  IkClient() = default;
  ~IkClient();

  IkClient(const IkClient&) = delete;
  IkClient& operator=(const IkClient&) = delete;
  IkClient(IkClient&& other) noexcept;
  IkClient& operator=(IkClient&& other) noexcept;

  /// Connect (with retries) to host:port.  Throws std::runtime_error
  /// when every attempt fails.
  void connect(const std::string& host, std::uint16_t port,
               ClientConfig config = {});
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one request frame; returns the assigned request id.  Never
  /// waits for the reply — pipeline as many as you like.  Stamped with
  /// the connection's spec id (ClientConfig::spec_id / setSpecId).
  std::uint64_t sendRequest(const service::Request& request);

  /// Same, stamped with an explicit robot spec — the per-call shape for
  /// talking to a multi-spec server over one connection.
  std::uint64_t sendRequest(const service::Request& request,
                            std::uint32_t spec_id);

  /// Change the spec id stamped into subsequent requests (the
  /// connection-level default; per-call overloads win for one frame).
  /// A multi-spec server routes per request, so flipping specs
  /// mid-connection is legal and cheap.
  void setSpecId(std::uint32_t spec_id) { config_.spec_id = spec_id; }
  std::uint32_t specId() const { return config_.spec_id; }

  /// Next reply off the wire, whatever request it answers.  Throws on
  /// EOF, timeout, or protocol violation.
  ClientReply receiveAny();

  /// Reply to request `id`, buffering any other replies that arrive
  /// first (so interleaved pipelined replies are not lost).
  ClientReply waitFor(std::uint64_t id);

  /// Synchronous RPC: sendRequest + waitFor, decoded back into the
  /// service's Response type.  Throws WireErrorException if the server
  /// answered with an error frame.
  service::Response call(const service::Request& request);
  service::Response call(const service::Request& request,
                         std::uint32_t spec_id);

  /// call() wrapped in the config's RetryPolicy: retries transport
  /// failures (EOF, timeout, reset — reconnecting first) and *retryable*
  /// wire errors (see isRetryable); terminal wire errors rethrow
  /// immediately.  Exponential backoff with deterministic jitter;
  /// stops early when the retry budget is spent.  At-least-once — see
  /// RetryPolicy.
  service::Response callWithRetry(const service::Request& request);
  service::Response callWithRetry(const service::Request& request,
                                  std::uint32_t spec_id);

  const ClientConfig& config() const { return config_; }
  const RetryStats& retryStats() const { return retry_stats_; }

 private:
  void sendAll(const std::uint8_t* data, std::size_t len);
  void dial();  ///< the connect-attempt loop (fills fd_ or throws)
  void reconnect();
  bool scheduleRetry(int attempt);  ///< false = go terminal; true = slept

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  ClientConfig config_;
  ByteBuffer in_;
  std::unordered_map<std::uint64_t, ClientReply> strays_;

  // Reconnect target (remembered by connect()) and retry machinery.
  std::string host_;
  std::uint16_t port_ = 0;
  std::uint64_t retry_rng_ = 0;       ///< splitmix64 state for jitter
  std::uint64_t retry_budget_ = 0;    ///< retries left (from policy)
  RetryStats retry_stats_;
};

}  // namespace dadu::net
