#include "dadu/net/ik_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "dadu/fault/fault.hpp"
#include "dadu/registry/spec_router.hpp"

namespace dadu::net {
namespace {

using Clock = std::chrono::steady_clock;

double msBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

[[noreturn]] void throwErrno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

/// Every write path here and in IkClient uses MSG_NOSIGNAL, but any
/// future write that forgets it would kill the whole process with
/// SIGPIPE on a dead peer — ignore it once, process-wide, at the first
/// server start (the standard belt-and-braces for socket daemons).
void ignoreSigpipeOnce() {
  static const bool done = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

/// Frame payloads are bytes, not milliseconds: give their histogram a
/// ladder that spans tiny control frames to the max frame cap.
obs::LatencyHistogram::Config frameBytesLadder() {
  obs::LatencyHistogram::Config config;
  config.min_value = 16.0;
  config.max_value = 1e8;
  config.buckets_per_decade = 4;
  return config;
}

}  // namespace

void IkServer::CompletionSink::push(PendingCompletion item) {
  std::lock_guard<std::mutex> lock(mutex);
  if (!loop) {
    // The loop is gone (drain timed out and stop() returned before
    // this solve finished): the reply has nowhere to go.  Count it —
    // an orphaned completion is an operator signal, not a silent drop.
    ++orphaned;
    return;
  }
  items.push_back(std::move(item));
  // Poke under the lock: stop() nulls `loop` under the same lock after
  // joining the loop thread, so the EventLoop we poke is always alive.
  loop->wakeup();
}

IkServer::IkServer(service::IkService& service, ServerConfig config)
    : service_(&service),
      config_(std::move(config)),
      loop_(config_.clock),
      sink_(std::make_shared<CompletionSink>()),
      counters_(kCounterCount, config_.stat_shards),
      frame_hist_(frameBytesLadder()),
      e2e_hist_(config_.latency) {
  sink_->loop = &loop_;
}

IkServer::IkServer(registry::SpecRouter& router, ServerConfig config)
    : router_(&router),
      config_(std::move(config)),
      loop_(config_.clock),
      sink_(std::make_shared<CompletionSink>()),
      counters_(kCounterCount, config_.stat_shards),
      frame_hist_(frameBytesLadder()),
      e2e_hist_(config_.latency) {
  sink_->loop = &loop_;
}

IkServer::~IkServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void IkServer::start() {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  if (started_.load()) throw std::runtime_error("IkServer: already started");
  ignoreSigpipeOnce();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) throwErrno("socket");
  const int on = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &on, sizeof on);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("IkServer: bad bind address '" +
                             config_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throwErrno("bind");
  }
  if (::listen(listen_fd_, config_.backlog) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throwErrno("listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  loop_.add(listen_fd_, EPOLLIN, [this](std::uint32_t) { onAcceptable(); });
  loop_.setWakeupHandler([this] {
    drainCompletions();
    if (draining_.load(std::memory_order_acquire)) beginDrain();
  });
  loop_.setTick(config_.tick_interval_ms, [this] { onTick(); });

  started_.store(true);
  thread_ = std::thread([this] { loop_.run(); });
}

void IkServer::stop() {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  if (!started_.load() || stopped_.load()) return;
  draining_.store(true, std::memory_order_release);
  loop_.wakeup();
  if (thread_.joinable()) thread_.join();
  {
    // From here no loop thread exists; late completions (drain timed
    // out) must not poke a dead loop.  Anything still parked in the
    // sink was pushed after the loop's last drain — those replies are
    // orphaned too.
    std::lock_guard<std::mutex> sink_lock(sink_->mutex);
    sink_->loop = nullptr;
    sink_->orphaned += sink_->items.size();
    sink_->items.clear();
  }
  stopped_.store(true, std::memory_order_release);
}

// ------------------------------------------------------------- accept

void IkServer::onAcceptable() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept errors (ECONNABORTED, EMFILE): skip
    }
    if (draining_.load(std::memory_order_acquire) ||
        conns_.size() >= config_.max_connections) {
      counters_.add(kRejectedLimit);
      ::close(fd);
      continue;
    }
    const int on = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof on);

    const std::uint64_t conn_id = next_conn_id_++;
    Connection conn;
    conn.id = conn_id;
    conn.fd = fd;
    conn.last_activity = platform::clockNow(config_.clock);
    conns_.emplace(conn_id, std::move(conn));
    loop_.add(fd, EPOLLIN, [this, conn_id](std::uint32_t events) {
      onConnectionEvent(conn_id, events);
    });
    counters_.add(kAccepted);
    active_conns_.fetch_add(1, std::memory_order_relaxed);
  }
}

// --------------------------------------------------------- connection

std::uint32_t IkServer::interestOf(const Connection& conn) const {
  std::uint32_t events = 0;
  if (!conn.reads_paused && !conn.peer_eof && !conn.close_after_flush &&
      !draining_.load(std::memory_order_acquire))
    events |= EPOLLIN;
  if (!conn.out.empty()) events |= EPOLLOUT;
  return events;
}

void IkServer::updateReadInterest(Connection& conn) {
  if (loop_.watching(conn.fd)) loop_.modify(conn.fd, interestOf(conn));
}

void IkServer::onConnectionEvent(std::uint64_t conn_id, std::uint32_t events) {
  {
    const auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    if (events & (EPOLLERR | EPOLLHUP)) {
      closeConnection(conn_id, CloseReason::kError);
      return;
    }
    if (events & EPOLLIN) onReadable(it->second);
  }
  // onReadable may have closed (and erased) the connection: re-find.
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  if (events & EPOLLOUT) onWritable(it->second);
}

void IkServer::onReadable(Connection& conn) {
  read_chunk_.resize(config_.read_chunk_bytes);
  bool saw_eof = false;
  for (;;) {
    std::size_t want = read_chunk_.size();
    fault::Decision injected;
    if (fault::FaultInjector::armed()) {
      injected = fault::decide("net.server.read");
      switch (injected.action) {
        case fault::Action::kDrop:  // peer vanishes mid-stream
          closeConnection(conn.id, CloseReason::kError);
          return;
        case fault::Action::kEintr:  // as if recv() returned EINTR
          goto done_reading;
        case fault::Action::kTruncate:  // short read
          want = std::min(want, std::max<std::size_t>(injected.max_bytes, 1));
          break;
        case fault::Action::kDelay:  // stall the whole loop
          std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
              injected.delay_ms));
          break;
        default:
          break;
      }
    }
    {
      const ssize_t n = ::recv(conn.fd, read_chunk_.data(), want, 0);
      if (n > 0) {
        if (injected.action == fault::Action::kCorrupt)
          fault::corruptBytes(read_chunk_.data(), static_cast<std::size_t>(n),
                              injected.corrupt_seed);
        conn.in.append(read_chunk_.data(), static_cast<std::size_t>(n));
        counters_.add(kBytesRead, static_cast<std::uint64_t>(n));
        conn.last_activity = platform::clockNow(config_.clock);
        if (static_cast<std::size_t>(n) < want) break;
        continue;
      }
      if (n == 0) {
        saw_eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      closeConnection(conn.id, CloseReason::kError);
      return;
    }
  }
done_reading:

  // parseFrames may close (and erase) `conn`, so the id must be read
  // out *before* the call — conn.id afterwards would be use-after-free.
  const std::uint64_t conn_id = conn.id;
  parseFrames(conn);
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& live = it->second;

  if (saw_eof) {
    // Half-close: the peer finished sending but may still be reading.
    // Flush everything in flight, then close from our side.
    live.peer_eof = true;
    if (live.out.empty() && live.in_flight == 0) {
      closeConnection(live.id, CloseReason::kPeer);
      return;
    }
    live.close_after_flush = true;
  }
  updateReadInterest(live);
}

void IkServer::parseFrames(Connection& conn) {
  while (!conn.in.empty()) {
    DecodedFrame frame;
    const DecodeStatus status = decodeFrame(conn.in.data(), conn.in.size(),
                                            config_.max_frame_bytes, frame);
    switch (status) {
      case DecodeStatus::kNeedMore:
        return;
      case DecodeStatus::kMalformed:
        counters_.add(kMalformedFrames);
        closeConnection(conn.id, CloseReason::kProtocol);
        return;
      case DecodeStatus::kUnsupportedVersion:
        counters_.add(kMalformedFrames);
        queueError(conn, frame.request_id, WireErrorCode::kUnsupportedVersion,
                   "server speaks wire version " +
                       std::to_string(int{kWireVersion}));
        conn.in.clear();  // nothing further is trustworthy
        conn.close_after_flush = true;
        return;
      case DecodeStatus::kOk:
        break;
    }
    conn.in.consume(frame.consumed);
    counters_.add(kFramesReceived);
    frame_hist_.record(
        static_cast<double>(frame.consumed - kLengthBytes));
    if (frame.type != MsgType::kRequest) {
      // Clients must not send responses/errors at a server.
      counters_.add(kMalformedFrames);
      closeConnection(conn.id, CloseReason::kProtocol);
      return;
    }
    handleRequest(conn, frame.request);
  }
}

void IkServer::handleRequest(Connection& conn, const WireRequest& request) {
  if (draining_.load(std::memory_order_acquire)) {
    counters_.add(kShedDraining);
    queueError(conn, request.id, WireErrorCode::kShuttingDown,
               "server is draining");
    return;
  }
  // Spec routing: pick the serving lane for this request's spec_id.
  // Router mode consults the registry; single-spec mode accepts exactly
  // the configured id.  Either way a mismatch is an error frame on this
  // request only — the connection (and its other requests) live on.
  service::IkService* target = service_;
  if (router_) {
    target = router_->serviceFor(request.spec_id);
    if (!target) {
      counters_.add(kSpecMismatch);
      queueError(conn, request.id, WireErrorCode::kUnknownSpec,
                 "no robot registered for spec " +
                     std::to_string(request.spec_id));
      return;
    }
  } else if (request.spec_id != config_.robot_spec_id) {
    counters_.add(kSpecMismatch);
    queueError(conn, request.id, WireErrorCode::kUnknownSpec,
               "server serves spec " + std::to_string(config_.robot_spec_id) +
                   ", not " + std::to_string(request.spec_id));
    return;
  }
  // Content validation before burning a dispatch: a non-finite target
  // or negative deadline would only make the solver throw later — the
  // terminal kBadRequest verdict is cheaper for everyone up front.
  if (!std::isfinite(request.target[0]) || !std::isfinite(request.target[1]) ||
      !std::isfinite(request.target[2]) ||
      !std::isfinite(request.deadline_ms) || request.deadline_ms < 0.0) {
    queueError(conn, request.id, WireErrorCode::kBadRequest,
               "non-finite target or bad deadline");
    return;
  }

  conn.in_flight++;
  dispatched_pending_++;
  counters_.add(kRequestsDispatched);

  PendingCompletion pending;
  pending.conn_id = conn.id;
  pending.request_id = request.id;
  pending.dispatched = platform::clockNow(config_.clock);
  target->submit(
      toServiceRequest(request),
      // The callback runs on a service worker (or inline on admission
      // reject); it only touches the shared sink, never loop state.
      [sink = sink_, pending = std::move(pending)](
          service::Response response) mutable {
        pending.response = std::move(response);
        sink->push(std::move(pending));
      });
}

void IkServer::drainCompletions() {
  std::vector<PendingCompletion> done;
  {
    std::lock_guard<std::mutex> lock(sink_->mutex);
    done.swap(sink_->items);
  }
  const auto now = platform::clockNow(config_.clock);
  for (PendingCompletion& item : done) {
    dispatched_pending_--;
    counters_.add(kRequestsCompleted);
    e2e_hist_.record(msBetween(item.dispatched, now));

    const auto it = conns_.find(item.conn_id);
    if (it == conns_.end()) continue;  // connection died mid-solve
    Connection& conn = it->second;
    conn.in_flight--;

    const service::Response& r = item.response;
    if (r.status == service::ResponseStatus::kRejected &&
        r.reject_reason == service::RejectReason::kInternalError) {
      queueError(conn, item.request_id, WireErrorCode::kInternal, r.message);
    } else {
      std::vector<std::uint8_t> encoded;
      encodeResponse(toWireResponse(item.request_id, r), encoded);
      conn.out.append(encoded.data(), encoded.size());
      counters_.add(kResponsesSent);
      afterEnqueue(conn);
    }
  }
}

void IkServer::queueError(Connection& conn, std::uint64_t request_id,
                          WireErrorCode code, const std::string& message) {
  WireError error;
  error.id = request_id;
  error.code = code;
  error.message = message;
  std::vector<std::uint8_t> encoded;
  encodeError(error, encoded);
  conn.out.append(encoded.data(), encoded.size());
  counters_.add(kErrorsSent);
  afterEnqueue(conn);
}

void IkServer::afterEnqueue(Connection& conn) {
  // Slow-reader backpressure: responses pile up only while we keep
  // reading requests, so capping the out-buffer by pausing reads
  // bounds per-connection memory.
  if (!conn.reads_paused && conn.out.size() > config_.write_buffer_limit) {
    conn.reads_paused = true;
    counters_.add(kReadPauses);
  }
  updateReadInterest(conn);
}

void IkServer::onWritable(Connection& conn) {
  while (!conn.out.empty()) {
    std::size_t want = conn.out.size();
    if (fault::FaultInjector::armed()) {
      const fault::Decision injected = fault::decide("net.server.write");
      if (injected.action == fault::Action::kDrop) {
        closeConnection(conn.id, CloseReason::kError);
        return;
      }
      if (injected.action == fault::Action::kEintr)
        break;  // as if send() returned EINTR; level-triggered retry
      if (injected.action == fault::Action::kTruncate)
        want = std::min(want, std::max<std::size_t>(injected.max_bytes, 1));
    }
    const ssize_t n = ::send(conn.fd, conn.out.data(), want, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out.consume(static_cast<std::size_t>(n));
      counters_.add(kBytesWritten, static_cast<std::uint64_t>(n));
      conn.last_activity = platform::clockNow(config_.clock);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR))
      break;
    closeConnection(conn.id, CloseReason::kError);
    return;
  }

  if (conn.reads_paused && conn.out.size() < config_.write_buffer_limit / 2) {
    conn.reads_paused = false;
    parseFrames(conn);  // frames may have been buffered while paused
    const auto it = conns_.find(conn.id);
    if (it == conns_.end()) return;
  }
  if (conn.out.empty() && conn.close_after_flush && conn.in_flight == 0) {
    closeConnection(conn.id, conn.peer_eof ? CloseReason::kPeer
                                           : CloseReason::kProtocol);
    return;
  }
  updateReadInterest(conn);
}

void IkServer::closeConnection(std::uint64_t conn_id, CloseReason reason) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  loop_.remove(conn.fd);
  ::close(conn.fd);
  switch (reason) {
    case CloseReason::kPeer:
      counters_.add(kClosedPeer);
      break;
    case CloseReason::kProtocol:
      counters_.add(kClosedProtocol);
      break;
    case CloseReason::kIdle:
      counters_.add(kClosedIdle);
      break;
    case CloseReason::kShutdown:
      counters_.add(kClosedShutdown);
      break;
    case CloseReason::kError:
      counters_.add(kClosedError);
      break;
  }
  // In-flight completions for this connection still arrive; the sink
  // drain drops them by failed lookup and keeps dispatched_pending_
  // (the global drain condition) exact.
  conns_.erase(it);
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
}

// -------------------------------------------------------------- drain

void IkServer::beginDrain() {
  if (drain_deadline_set_) {
    if (drainComplete() || platform::clockNow(config_.clock) >= drain_deadline_) {
      std::vector<std::uint64_t> ids;
      ids.reserve(conns_.size());
      for (const auto& [id, conn] : conns_) ids.push_back(id);
      for (std::uint64_t id : ids)
        closeConnection(id, CloseReason::kShutdown);
      loop_.stop();
    }
    return;
  }
  // First sight of the drain flag on the loop thread: listener closes
  // before anything else so no new work can arrive, reads stop, and
  // what is already dispatched gets to finish and flush.
  drain_deadline_set_ = true;
  drain_deadline_ =
      platform::clockNow(config_.clock) + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             config_.drain_timeout_ms));
  if (listen_fd_ >= 0) {
    loop_.remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& [id, conn] : conns_) updateReadInterest(conn);
  beginDrain();  // re-enter to handle the already-drained case
}

bool IkServer::drainComplete() const {
  if (dispatched_pending_ != 0) return false;
  for (const auto& [id, conn] : conns_)
    if (!conn.out.empty()) return false;
  return true;
}

void IkServer::onTick() {
  if (draining_.load(std::memory_order_acquire)) {
    beginDrain();
    return;
  }
  if (config_.idle_timeout_ms <= 0.0) return;
  const auto now = platform::clockNow(config_.clock);
  std::vector<std::uint64_t> idle;
  for (const auto& [id, conn] : conns_)
    if (conn.in_flight == 0 && conn.out.empty() &&
        msBetween(conn.last_activity, now) > config_.idle_timeout_ms)
      idle.push_back(id);
  for (std::uint64_t id : idle) closeConnection(id, CloseReason::kIdle);
}

// -------------------------------------------------------------- stats

NetStats IkServer::stats() const {
  const std::vector<std::uint64_t> totals = counters_.snapshot();
  NetStats snapshot;
  snapshot.connections_accepted = totals[kAccepted];
  snapshot.connections_active = active_conns_.load(std::memory_order_relaxed);
  snapshot.connections_rejected_limit = totals[kRejectedLimit];
  snapshot.closed_by_peer = totals[kClosedPeer];
  snapshot.closed_protocol = totals[kClosedProtocol];
  snapshot.closed_idle = totals[kClosedIdle];
  snapshot.closed_shutdown = totals[kClosedShutdown];
  snapshot.closed_error = totals[kClosedError];
  snapshot.frames_received = totals[kFramesReceived];
  snapshot.malformed_frames = totals[kMalformedFrames];
  snapshot.responses_sent = totals[kResponsesSent];
  snapshot.errors_sent = totals[kErrorsSent];
  snapshot.bytes_read = totals[kBytesRead];
  snapshot.bytes_written = totals[kBytesWritten];
  snapshot.requests_dispatched = totals[kRequestsDispatched];
  snapshot.requests_completed = totals[kRequestsCompleted];
  snapshot.shed_draining = totals[kShedDraining];
  snapshot.read_pauses = totals[kReadPauses];
  snapshot.spec_mismatch = totals[kSpecMismatch];
  {
    std::lock_guard<std::mutex> lock(sink_->mutex);
    snapshot.orphaned_completions = sink_->orphaned;
  }
  snapshot.frame_bytes_hist = frame_hist_.snapshot();
  snapshot.wire_e2e_hist = e2e_hist_.snapshot();
  return snapshot;
}

}  // namespace dadu::net
