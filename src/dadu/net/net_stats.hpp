// Wire-level serving statistics (snapshot type).
//
// IkServer keeps its live counters in the same lock-free machinery as
// the service layer (obs::ShardedCounters + obs::LatencyHistogram);
// stats() aggregates them into this snapshot.  Connection counters are
// per-state — every accepted connection ends in exactly one of the
// closed_* buckets — so `accepted - sum(closed_*)` is always the live
// connection count, cross-checkable against the `active` gauge.
#pragma once

#include <cstdint>

#include "dadu/obs/export.hpp"
#include "dadu/obs/histogram.hpp"

namespace dadu::net {

struct NetStats {
  // Connection lifecycle (per-state counters).
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;       ///< gauge: open right now
  std::uint64_t connections_rejected_limit = 0;  ///< over max_connections
  std::uint64_t closed_by_peer = 0;      ///< orderly remote close
  std::uint64_t closed_protocol = 0;     ///< malformed frame / bad version
  std::uint64_t closed_idle = 0;         ///< idle-timeout sweep
  std::uint64_t closed_shutdown = 0;     ///< server drain/stop
  std::uint64_t closed_error = 0;        ///< socket error (EPOLLERR, EPIPE...)

  // Frame traffic.
  std::uint64_t frames_received = 0;   ///< well-formed frames parsed
  std::uint64_t malformed_frames = 0;  ///< grammar violations seen
  std::uint64_t responses_sent = 0;
  std::uint64_t errors_sent = 0;       ///< kError frames sent
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  // Dispatch and backpressure.
  std::uint64_t requests_dispatched = 0;  ///< handed to IkService
  std::uint64_t requests_completed = 0;   ///< completions written back
  std::uint64_t shed_draining = 0;        ///< refused: server draining
  std::uint64_t read_pauses = 0;   ///< times a slow reader paused reads
  /// Requests answered kUnknownSpec: the wire spec_id named a robot
  /// this server does not serve (wrong single-spec id, or an id absent
  /// from the registry in router mode).  Only that request errors; the
  /// connection survives.  A climbing rate means clients are stamping
  /// the wrong spec or pointing at the wrong shard.
  std::uint64_t spec_mismatch = 0;
  /// Solves that outlived the drain timeout and completed into a dead
  /// sink: the reply had nowhere to go.  Nonzero after a stop() means
  /// drain_timeout_ms is shorter than the worst-case solve.
  std::uint64_t orphaned_completions = 0;

  // Distributions: received-frame payload sizes (bytes) and wire-level
  // end-to-end latency (frame parsed -> response queued for write, ms).
  obs::HistogramSnapshot frame_bytes_hist;
  obs::HistogramSnapshot wire_e2e_hist;
};

/// Flatten into the exporter model under the `dadu_net_` prefix for
/// obs::renderPrometheus / renderJson / renderText.
obs::MetricsSnapshot toMetricsSnapshot(const NetStats& stats);

/// Concatenate two exporter snapshots (e.g. dadu_service_* ++
/// dadu_net_*) into one dump.
obs::MetricsSnapshot merge(obs::MetricsSnapshot a,
                           const obs::MetricsSnapshot& b);

}  // namespace dadu::net
